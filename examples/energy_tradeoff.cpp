// Energy/area vs accuracy: the full trade-off the paper's abstract
// describes. Trains an unpruned and a C/F-pruned model, then reports
// crossbar count, array+periphery energy, area, and non-ideal accuracy
// side by side across crossbar sizes.
//
//   ./energy_tradeoff [--sparsity=0.8] [--sizes=16,32,64]
#include "core/evaluator.h"
#include "data/synthetic.h"
#include "map/compression.h"
#include "map/energy.h"
#include "nn/trainer.h"
#include "nn/vgg.h"
#include "prune/prune.h"
#include "util/csv.h"
#include "util/flags.h"

#include <cstdio>

int main(int argc, char** argv) {
    using namespace xs;
    const util::Flags flags(argc, argv);
    const double sparsity = flags.get_double("sparsity", 0.8);
    const auto sizes = flags.get_int_list("sizes", {16, 32, 64});

    const data::SyntheticSpec spec = data::cifar10_like();
    const auto tt = data::generate_split(spec, flags.get_int("train-count", 1280),
                                         flags.get_int("test-count", 512));

    nn::VggConfig vgg;
    vgg.width = flags.get_double("width", 0.125);
    nn::TrainConfig train;
    train.epochs = flags.get_int("epochs", 4);

    util::Rng rng_a(7);
    nn::Sequential dense = nn::build_vgg(vgg, rng_a);
    nn::train(dense, tt.train, &tt.test, train);

    util::Rng rng_b(7);
    nn::Sequential pruned = nn::build_vgg(vgg, rng_b);
    prune::PruneConfig pc;
    pc.method = prune::Method::kChannelFilter;
    pc.sparsity = sparsity;
    const prune::MaskSet masks = prune::prune_at_init(pruned, pc);
    nn::train(pruned, tt.train, &tt.test, train, masks.hook());

    const map::EnergyConfig energy_config;
    util::TextTable table({"model", "xbar", "tiles", "energy/pass (nJ)",
                           "area (mm^2)", "non-ideal acc"});
    for (const auto size : sizes) {
        for (const bool is_pruned : {false, true}) {
            nn::Sequential& model = is_pruned ? pruned : dense;
            const auto method = is_pruned ? prune::Method::kChannelFilter
                                          : prune::Method::kNone;
            xbar::CrossbarConfig xc;
            xc.size = size;
            const auto energy = map::estimate_energy(model, method, xc, energy_config);
            core::EvalConfig eval;
            eval.xbar = xc;
            eval.method = method;
            const auto r = core::evaluate_on_crossbars(model, tt.test, eval);
            table.add_row({is_pruned ? "C/F pruned" : "unpruned",
                           std::to_string(size), std::to_string(energy.tiles),
                           util::fmt(energy.total_energy_pj() / 1e3, 2),
                           util::fmt(energy.area_um2 / 1e6, 3),
                           util::fmt(r.accuracy) + "%"});
        }
    }
    std::printf("%s\n", table.str().c_str());
    std::printf("Sparser models save energy and area but lose more accuracy to\n"
                "non-idealities — the paper's central trade-off.\n");
    return 0;
}
