// Mitigation demo: C/F-pruned VGG11 mapped onto non-ideal crossbars with
// (a) no mitigation, (b) crossbar-column rearrangement R, and (c) WCT —
// the paper's §VI strategies. A thin SweepSpec driver: the mitigation axis
// is the grid, repeats aggregate to mean±std, and interrupted runs resume
// (results/mitigation_demo.csv).
//
//   ./mitigation_demo [--sparsity=0.8] [--xbar=64] [--wct-percentile=0.9]
//                     [--backends=circuit,fast] [--shards=N] [--resume]
#include "core/experiments.h"
#include "sweep/runner.h"
#include "util/csv.h"
#include "util/flags.h"

#include <cstdio>

int main(int argc, char** argv) {
    using namespace xs;
    const util::Flags flags(argc, argv);
    core::ExperimentContext ctx(flags);
    // --sparsity is this demo's historical flag name; it wins over the
    // shared --sparsity10 default.
    const double sparsity = flags.get_double("sparsity", ctx.sparsity_for(10));

    // Start from the shared axis parser (picks up --backends & friends),
    // then pin the axes this demo owns.
    sweep::SweepSpec spec = sweep::parse_sweep_spec(flags);
    spec.variants = {flags.get_string("variant", "vgg11")};
    spec.class_counts = {10};
    spec.prunes = {{prune::Method::kChannelFilter, sparsity}};
    spec.mitigations = {{/*wct=*/false, /*rearrange=*/false},
                        {/*wct=*/false, /*rearrange=*/true},
                        {/*wct=*/true, /*rearrange=*/false}};
    spec.sizes = {flags.get_int("xbar", 64)};
    spec.sigmas = {ctx.sigma()};
    spec.repeats = ctx.eval_repeats();

    sweep::SweepOptions opts;
    opts.shards = flags.get_int("shards", 0);
    opts.resume = flags.get_bool("resume", false);
    opts.csv_name = "mitigation_demo.csv";
    opts.manifest_name = "mitigation_demo_manifest.jsonl";

    sweep::SweepRunner runner(ctx, spec, opts);
    const sweep::SweepSummary summary = runner.run();

    std::printf("C/F-pruned %s (s=%.2f) on %lldx%lld crossbars\n",
                spec.variants.front().c_str(), sparsity,
                static_cast<long long>(spec.sizes.front()),
                static_cast<long long>(spec.sizes.front()));
    util::TextTable table({"mitigation", "backend", "software", "crossbar", "NF"});
    for (const sweep::GroupRow& row : summary.rows) {
        if (!row.complete()) continue;
        table.add_row({row.cell.mitigation.name(),
                       xbar::backend_name(row.cell.backend),
                       util::fmt(row.software_acc) + "%",
                       util::fmt(row.acc_mean) + "±" + util::fmt(row.acc_std) + "%",
                       util::fmt(row.nf_mean, 4)});
    }
    std::printf("%s\n", table.str().c_str());
    std::printf("(aggregates written to %s)\n", summary.csv_path.c_str());
    return 0;
}
