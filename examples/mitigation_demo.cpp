// Mitigation demo: C/F-pruned VGG11 mapped onto non-ideal crossbars with
// (a) no mitigation, (b) crossbar-column rearrangement R, and (c) WCT —
// the paper's §VI strategies.
//
//   ./mitigation_demo [--sparsity=0.8] [--xbar=64] [--wct-percentile=0.9]
#include "core/evaluator.h"
#include "core/wct.h"
#include "data/synthetic.h"
#include "nn/trainer.h"
#include "nn/vgg.h"
#include "prune/prune.h"
#include "util/flags.h"

#include <cstdio>

int main(int argc, char** argv) {
    using namespace xs;
    const util::Flags flags(argc, argv);
    const double sparsity = flags.get_double("sparsity", 0.8);
    const std::int64_t size = flags.get_int("xbar", 64);

    const data::SyntheticSpec spec = data::cifar10_like();
    const auto tt = data::generate_split(spec, flags.get_int("train-count", 1280),
                                         flags.get_int("test-count", 512));

    nn::VggConfig vgg;
    vgg.width = flags.get_double("width", 0.125);
    nn::TrainConfig train;
    train.epochs = flags.get_int("epochs", 4);

    util::Rng rng(7);
    nn::Sequential model = nn::build_vgg(vgg, rng);
    prune::PruneConfig pc;
    pc.method = prune::Method::kChannelFilter;
    pc.sparsity = sparsity;
    const prune::MaskSet masks = prune::prune_at_init(model, pc);
    nn::train(model, tt.train, &tt.test, train, masks.hook());
    const double software = nn::evaluate(model, tt.test);

    core::EvalConfig eval;
    eval.xbar.size = size;
    eval.method = prune::Method::kChannelFilter;

    const auto plain = core::evaluate_on_crossbars(model, tt.test, eval);

    eval.rearrange = true;
    const auto with_r = core::evaluate_on_crossbars(model, tt.test, eval);
    eval.rearrange = false;

    // WCT: clip + 2-epoch fine-tune, then map with the frozen w_ref scale.
    core::WctConfig wct_config;
    wct_config.percentile = flags.get_double("wct-percentile", 0.9);
    const core::WctResult wct = core::apply_wct(model, tt.train, &tt.test, masks,
                                                wct_config);
    const double software_wct = nn::evaluate(model, tt.test);
    eval.w_ref = wct.w_ref;
    const auto with_wct = core::evaluate_on_crossbars(model, tt.test, eval);

    std::printf("C/F-pruned VGG11 (s=%.2f) on %lldx%lld crossbars\n", sparsity,
                static_cast<long long>(size), static_cast<long long>(size));
    std::printf("  software:                %6.2f %%\n", software);
    std::printf("  non-ideal, no mitigation:%6.2f %%   (NF %.4f)\n",
                plain.accuracy, plain.nf_mean);
    std::printf("  + rearrangement R:       %6.2f %%   (NF %.4f)\n",
                with_r.accuracy, with_r.nf_mean);
    std::printf("  WCT (software %.2f%%):   %6.2f %%   (NF %.4f)\n", software_wct,
                with_wct.accuracy, with_wct.nf_mean);
    return 0;
}
