// Structured pruning on crossbars: train an unpruned and a C/F-pruned VGG11
// side by side, compare software accuracy, crossbar counts (compression
// rate), and on-crossbar accuracy across crossbar sizes — the core trade-off
// the paper studies (§V).
//
//   ./prune_and_map [--method=cf|xcs|xrs] [--sparsity=0.8] [--sizes=16,32,64]
#include "core/evaluator.h"
#include "data/synthetic.h"
#include "map/compression.h"
#include "nn/trainer.h"
#include "nn/vgg.h"
#include "prune/prune.h"
#include "prune/stats.h"
#include "util/csv.h"
#include "util/flags.h"

#include <cstdio>

int main(int argc, char** argv) {
    using namespace xs;
    const util::Flags flags(argc, argv);

    const auto method = prune::method_from_name(flags.get_string("method", "cf"));
    const double sparsity = flags.get_double("sparsity", 0.8);
    const auto sizes = flags.get_int_list("sizes", {16, 32, 64});

    const data::SyntheticSpec spec = data::cifar10_like();
    const auto tt = data::generate_split(spec, flags.get_int("train-count", 1280),
                                         flags.get_int("test-count", 512));

    nn::VggConfig vgg;
    vgg.width = flags.get_double("width", 0.125);
    nn::TrainConfig train;
    train.epochs = flags.get_int("epochs", 4);
    train.verbose = flags.get_bool("verbose", false);

    // --- unpruned baseline ---
    util::Rng rng_a(7);
    nn::Sequential dense = nn::build_vgg(vgg, rng_a);
    nn::train(dense, tt.train, &tt.test, train);
    const double dense_sw = nn::evaluate(dense, tt.test);

    // --- pruned-at-init, then trained ---
    util::Rng rng_b(7);
    nn::Sequential pruned = nn::build_vgg(vgg, rng_b);
    prune::PruneConfig pc;
    pc.method = method;
    pc.sparsity = sparsity;
    const prune::MaskSet masks = prune::prune_at_init(pruned, pc);
    nn::train(pruned, tt.train, &tt.test, train, masks.hook());
    const double pruned_sw = nn::evaluate(pruned, tt.test);

    std::printf("method=%s sparsity=%.2f\n", prune::method_name(method).c_str(),
                sparsity);
    std::printf("software accuracy: unpruned %.2f%%, pruned %.2f%%\n", dense_sw,
                pruned_sw);
    std::printf("element sparsity of pruned model: %.3f\n\n",
                prune::model_sparsity(pruned));

    util::TextTable table({"xbar", "dense #xb", "pruned #xb", "compression",
                           "dense acc (ni)", "pruned acc (ni)"});
    for (const auto size : sizes) {
        const auto dense_budget =
            map::count_crossbars(dense, prune::Method::kNone, size);
        const auto pruned_budget = map::count_crossbars(pruned, method, size);

        core::EvalConfig eval;
        eval.xbar.size = size;
        eval.method = prune::Method::kNone;
        const auto dense_hw = core::evaluate_on_crossbars(dense, tt.test, eval);
        eval.method = method;
        const auto pruned_hw = core::evaluate_on_crossbars(pruned, tt.test, eval);

        table.add_row({std::to_string(size) + "x" + std::to_string(size),
                       std::to_string(dense_budget.total),
                       std::to_string(pruned_budget.total),
                       util::fmt(static_cast<double>(dense_budget.total) /
                                 static_cast<double>(pruned_budget.total)) + "x",
                       util::fmt(dense_hw.accuracy) + "%",
                       util::fmt(pruned_hw.accuracy) + "%"});
    }
    std::printf("%s\n", table.str().c_str());
    return 0;
}
