// Quickstart: train a small VGG11 on the synthetic 10-class dataset, map it
// onto non-ideal 32×32 crossbars, and compare software vs on-crossbar
// accuracy.
//
//   ./quickstart [--width=0.125] [--epochs=4] [--train-count=1280]
#include "core/evaluator.h"
#include "data/synthetic.h"
#include "nn/trainer.h"
#include "nn/vgg.h"
#include "util/flags.h"
#include "util/log.h"

#include <cstdio>

int main(int argc, char** argv) {
    using namespace xs;
    const util::Flags flags(argc, argv);

    // 1. Data: a CIFAR10-like synthetic set (32×32 RGB, 10 classes).
    const data::SyntheticSpec spec = data::cifar10_like();
    const auto tt = data::generate_split(spec, flags.get_int("train-count", 1280),
                                         flags.get_int("test-count", 512));

    // 2. Model: width-scaled VGG11 with batch norm.
    nn::VggConfig vgg;
    vgg.variant = "vgg11";
    vgg.num_classes = 10;
    vgg.width = flags.get_double("width", 0.125);
    util::Rng rng(7);
    nn::Sequential model = nn::build_vgg(vgg, rng);
    std::printf("model:\n%s\n", model.summary().c_str());

    // 3. Train.
    nn::TrainConfig train;
    train.epochs = flags.get_int("epochs", 4);
    train.verbose = true;
    nn::train(model, tt.train, &tt.test, train);
    const double software = nn::evaluate(model, tt.test);

    // 4. Map onto non-ideal crossbars and evaluate.
    core::EvalConfig eval;
    eval.xbar.size = flags.get_int("xbar", 32);
    const core::EvalResult hw = core::evaluate_on_crossbars(model, tt.test, eval);

    std::printf("\nsoftware accuracy:    %6.2f %%\n", software);
    std::printf("on-crossbar accuracy: %6.2f %%  (%lld crossbars of %lldx%lld, "
                "mean NF %.4f)\n",
                hw.accuracy, static_cast<long long>(hw.total_tiles),
                static_cast<long long>(eval.xbar.size),
                static_cast<long long>(eval.xbar.size), hw.nf_mean);
    return 0;
}
