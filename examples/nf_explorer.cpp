// NF explorer: sweep crossbar size and conductance level and print the
// non-ideality factor of a uniform crossbar — a direct view of the physics
// that drives everything else (paper §II-A: NF = (I_ideal − I_ni)/I_ideal).
//
//   ./nf_explorer [--sizes=16,32,64,128] [--levels=8]
#include "util/csv.h"
#include "util/flags.h"
#include "xbar/degrade.h"

#include <cstdio>

int main(int argc, char** argv) {
    using namespace xs;
    const util::Flags flags(argc, argv);
    const auto sizes = flags.get_int_list("sizes", {16, 32, 64, 128});
    const std::int64_t levels = flags.get_int("levels", 8);

    std::printf("NF of a uniform crossbar (all devices at conductance G)\n");
    util::TextTable table({"G (uS)", "16x16", "32x32", "64x64", "128x128"});

    xbar::DeviceConfig device;
    device.sigma_variation = 0.0;  // deterministic physics only

    for (std::int64_t level = 0; level < levels; ++level) {
        const double g = device.g_min() +
                         (device.g_max() - device.g_min()) *
                             static_cast<double>(level) /
                             static_cast<double>(levels - 1);
        std::vector<std::string> row{util::fmt(g * 1e6, 1)};
        for (const auto size : sizes) {
            xbar::CrossbarConfig config;
            config.size = size;
            config.device = device;
            tensor::Tensor gmat({size, size}, static_cast<float>(g));
            row.push_back(util::fmt(xbar::non_ideality_factor(gmat, config), 4));
        }
        table.add_row(row);
    }
    std::printf("%s\n", table.str().c_str());
    std::printf("Low-conductance synapses suffer far less IR-drop — the fact\n"
                "both mitigations (R and WCT) exploit.\n");
    return 0;
}
