// Generic declarative sweep driver: expand a SweepSpec from CLI flags
// and/or a spec file, execute it sharded and resumable, and print the
// paper-style accuracy-vs-crossbar-size table.
//
//   ./sweep_runner --variants=vgg11 --prune=none,cf:0.8 --sizes=16,32,64
//       --mitigations=none,rearrange --sweep-repeats=3 --shards=4
//   ./sweep_runner --spec=grid.sweep --resume
//   ./sweep_runner --spec=grid.sweep --dry-run
//   ./sweep_runner --backends=circuit,fast --cell-budget-ms=60000
//
// --dry-run prints the expanded grid (cell count, axis values, distinct
// models to prepare) and exits without training or executing anything.
// --cell-budget-ms=N warns on cells slower than N ms (and fails the sweep
// with --cell-budget-abort); every cell's wall time lands in the manifest.
//
// Spec files hold the same keys as the flags, one `key = value` per line
// ('#' comments); CLI flags override the file. Experiment-scale flags
// (--width, --train-count, --epochs, --out-dir, …) are shared with every
// other driver via core::ExperimentContext.
#include "core/experiments.h"
#include "sweep/runner.h"
#include "util/flags.h"

#include <cstdio>

int main(int argc, char** argv) {
    using namespace xs;
    const util::Flags flags(argc, argv);
    core::ExperimentContext ctx(flags);

    sweep::SweepSpec spec = sweep::parse_sweep_spec(flags);
    if (flags.get_bool("dry-run", false)) {
        std::printf("%s", sweep::dry_run_report(ctx, spec).c_str());
        return 0;
    }

    sweep::SweepOptions opts;
    opts.shards = flags.get_int("shards", 0);
    opts.resume = flags.get_bool("resume", false);
    opts.max_cells = flags.get_int("max-cells", -1);
    opts.csv_name = flags.get_string("csv", "sweep.csv");
    opts.manifest_name = flags.get_string("manifest", "sweep_manifest.jsonl");
    opts.cell_budget_ms = flags.get_double("cell-budget-ms", 0.0);
    opts.cell_budget_abort = flags.get_bool("cell-budget-abort", false);

    std::printf("sweep: %s\n", spec.describe().c_str());
    sweep::SweepRunner runner(ctx, spec, opts);
    const sweep::SweepSummary summary = runner.run();

    std::printf("\n%s\n", sweep::accuracy_vs_size_table(summary).c_str());
    std::printf("cells: %lld total, %lld executed, %lld resumed, %lld pending\n",
                static_cast<long long>(summary.cells_total),
                static_cast<long long>(summary.cells_executed),
                static_cast<long long>(summary.cells_resumed),
                static_cast<long long>(summary.cells_pending));
    if (opts.cell_budget_ms > 0.0)
        std::printf("cells over %.0f ms budget: %lld\n", opts.cell_budget_ms,
                    static_cast<long long>(summary.cells_over_budget));
    std::printf("aggregate CSV: %s\nmanifest:      %s\n",
                summary.csv_path.c_str(), summary.manifest_path.c_str());
    if (summary.cells_pending > 0)
        std::printf("(incomplete — rerun with --resume to finish)\n");
    return 0;
}
