// Generic declarative sweep driver: expand a SweepSpec from CLI flags
// and/or a spec file, execute it sharded and resumable, and print the
// paper-style accuracy-vs-crossbar-size table.
//
//   ./sweep_runner --variants=vgg11 --prune=none,cf:0.8 --sizes=16,32,64
//       --mitigations=none,rearrange --sweep-repeats=3 --shards=4
//   ./sweep_runner --spec=grid.sweep --resume
//   ./sweep_runner --spec=grid.sweep --dry-run
//   ./sweep_runner --backends=circuit,fast --cell-budget-ms=60000
//   ./sweep_runner --workers=4 --cell-budget-ms=60000 --cell-retries=2
//
// --dry-run prints the expanded grid (cell count, axis values, distinct
// models to prepare) and exits without training or executing anything.
//
// --workers=N switches from in-process shards to crash-isolated process
// supervision (DESIGN.md §9): N forked copies of this binary execute the
// cells, dead or hung workers are respawned and their cells re-dealt
// (--cell-budget-ms is the per-cell watchdog deadline), failing cells are
// retried --cell-retries times with --retry-backoff-ms exponential backoff
// and then quarantined in the manifest instead of aborting. The aggregate
// CSV is byte-identical to a single-process run. --worker / --wire-* are
// the internal child-process entry, never passed by hand.
//
// Without --workers, --cell-budget-ms=N warns on cells slower than N ms
// (and fails the sweep with --cell-budget-abort); every cell's wall time
// lands in the manifest either way.
//
// --agent=host:port joins a sweep_serve coordinator instead of running a
// sweep of its own (DESIGN.md §11): the spec/experiment flags must match
// the service's (the join handshake checks the fingerprint), --workers is
// this host's advertised capacity, and the agent reconnects with capped
// exponential backoff (--agent-backoff-ms, --agent-reconnects) when the
// service drops.
//
// Spec files hold the same keys as the flags, one `key = value` per line
// ('#' comments); CLI flags override the file. Experiment-scale flags
// (--width, --train-count, --epochs, --out-dir, …) are shared with every
// other driver via core::ExperimentContext.
//
// Telemetry (DESIGN.md §10):
//   --metrics-out=metrics.json  write the merged counter/histogram snapshot
//   --trace=out.json            chrome://tracing span timeline (workers
//                               write out.json.w<pid> — one file each)
//   --progress-sec=N            heartbeat on stderr every N seconds
#include "core/experiments.h"
#include "sweep/net.h"
#include "sweep/runner.h"
#include "sweep/service.h"
#include "sweep/supervisor.h"
#include "util/flags.h"
#include "util/log.h"
#include "util/trace.h"

#include <cstdio>
#include <string>
#include <unistd.h>

int main(int argc, char** argv) {
    using namespace xs;
    const util::Flags flags(argc, argv);
    core::ExperimentContext ctx(flags);
    sweep::SweepSpec spec = sweep::parse_sweep_spec(flags);
    const std::string trace_path = flags.get_string("trace", "");

    if (flags.get_bool("worker", false)) {
        // Each worker traces into its own file: spans from different
        // processes cannot share one buffer, and chrome://tracing loads the
        // per-pid files side by side anyway.
        if (!trace_path.empty())
            util::trace::start(trace_path + ".w" + std::to_string(::getpid()));
        const int rc = sweep::worker_main(
            ctx, spec, static_cast<int>(flags.get_int("wire-in", -1)),
            static_cast<int>(flags.get_int("wire-out", -1)));
        util::trace::stop_and_write();
        return rc;
    }

    // Agent mode (DESIGN.md §11): join a sweep_serve coordinator and execute
    // whatever cells it deals, on a local worker pool, until it shuts us
    // down. --workers is advertised as this host's capacity; the agent
    // reconnects with capped exponential backoff when the service drops.
    const std::string agent = flags.get_string("agent", "");
    if (!agent.empty()) {
        sweep::AgentOptions a;
        if (!sweep::net::parse_hostport(agent, a.host, a.port)) {
            util::log_error("bad --agent='" + agent + "' (want host:port)");
            return 2;
        }
        a.workers = flags.get_int("workers", 2);
        a.worker_cmd = sweep::worker_command_from_argv(argc, argv);
        a.max_worker_restarts = flags.get_int("worker-restarts", 4);
        a.reconnect_backoff_ms = flags.get_double("agent-backoff-ms", 250.0);
        a.max_reconnects = flags.get_int("agent-reconnects", -1);
        return sweep::run_agent(ctx, spec, a);
    }

    if (flags.get_bool("dry-run", false)) {
        std::printf("%s", sweep::dry_run_report(ctx, spec).c_str());
        return 0;
    }

    sweep::SweepOptions opts;
    opts.shards = flags.get_int("shards", 0);
    opts.resume = flags.get_bool("resume", false);
    opts.max_cells = flags.get_int("max-cells", -1);
    opts.csv_name = flags.get_string("csv", "sweep.csv");
    opts.manifest_name = flags.get_string("manifest", "sweep_manifest.jsonl");
    opts.cell_budget_ms = flags.get_double("cell-budget-ms", 0.0);
    opts.cell_budget_abort = flags.get_bool("cell-budget-abort", false);
    opts.progress_sec = flags.get_double("progress-sec", 0.0);
    // --repeat-batch=off pins the legacy one-evaluation-per-cell path; the
    // aggregate CSV is byte-identical either way (cold-start lanes), which
    // ci.sh checks as an end-to-end equivalence smoke.
    opts.repeat_batch = flags.get_bool("repeat-batch", true);

    if (!trace_path.empty()) util::trace::start(trace_path);
    std::printf("sweep: %s\n", spec.describe().c_str());
    sweep::SweepSummary summary;
    const std::int64_t workers = flags.get_int("workers", 0);
    if (workers > 0) {
        sweep::SupervisorOptions sup;
        sup.workers = workers;
        sup.worker_cmd = sweep::worker_command_from_argv(argc, argv);
        sup.max_cell_retries = flags.get_int("cell-retries", 2);
        sup.retry_backoff_ms = flags.get_double("retry-backoff-ms", 250.0);
        sup.max_worker_restarts = flags.get_int("worker-restarts", 4);
        summary = sweep::run_supervised(ctx, spec, opts, sup);
    } else {
        sweep::SweepRunner runner(ctx, spec, opts);
        summary = runner.run();
    }

    std::printf("\n%s\n", sweep::accuracy_vs_size_table(summary).c_str());
    std::printf("cells: %lld total, %lld executed, %lld resumed, %lld pending\n",
                static_cast<long long>(summary.cells_total),
                static_cast<long long>(summary.cells_executed),
                static_cast<long long>(summary.cells_resumed),
                static_cast<long long>(summary.cells_pending));
    if (workers > 0)
        std::printf("supervision: %lld worker restart(s), %lld watchdog "
                    "kill(s), %lld cell retr%s\n",
                    static_cast<long long>(summary.worker_restarts),
                    static_cast<long long>(summary.watchdog_kills),
                    static_cast<long long>(summary.cell_retries),
                    summary.cell_retries == 1 ? "y" : "ies");
    if (workers > 0 && opts.cell_budget_ms > 0.0)
        std::printf("cells over %.0f ms budget: %lld\n", opts.cell_budget_ms,
                    static_cast<long long>(summary.cells_over_budget));
    else if (opts.cell_budget_ms > 0.0)
        std::printf("cells over %.0f ms budget: %lld\n", opts.cell_budget_ms,
                    static_cast<long long>(summary.cells_over_budget));
    if (summary.cells_failed > 0) {
        std::printf("quarantined cells: %lld\n",
                    static_cast<long long>(summary.cells_failed));
        for (const std::string& id : summary.failed_cells)
            std::printf("  failed: %s\n", id.c_str());
    }
    if (summary.manifest_lines_skipped > 0)
        std::printf("corrupt manifest lines skipped: %lld\n",
                    static_cast<long long>(summary.manifest_lines_skipped));
    std::printf("aggregate CSV: %s\nmanifest:      %s\n",
                summary.csv_path.c_str(), summary.manifest_path.c_str());

    const std::string metrics_out = flags.get_string("metrics-out", "");
    if (!metrics_out.empty()) {
        if (summary.metrics_json.empty()) {
            util::log_warn("--metrics-out=" + metrics_out +
                           " requested but telemetry is compiled out "
                           "(XS_TELEMETRY=OFF); nothing written");
        } else {
            std::FILE* f = std::fopen(metrics_out.c_str(), "wb");
            if (f == nullptr ||
                std::fwrite(summary.metrics_json.data(), 1,
                            summary.metrics_json.size(),
                            f) != summary.metrics_json.size()) {
                util::log_error("failed to write --metrics-out=" + metrics_out);
                if (f) std::fclose(f);
                return 1;
            }
            std::fputc('\n', f);
            std::fclose(f);
            std::printf("metrics:       %s\n", metrics_out.c_str());
        }
    }
    const std::string trace_written = util::trace::stop_and_write();
    if (!trace_written.empty())
        std::printf("trace:         %s\n", trace_written.c_str());

    if (summary.cells_pending > 0)
        std::printf("(incomplete — rerun with --resume to finish)\n");
    return 0;
}
