// Multi-host sweep coordinator (DESIGN.md §11): own the grid, the manifest,
// and the aggregate CSV, and deal cells as leases to agent hosts that join
// over TCP.
//
//   ./sweep_serve --spec=grid.sweep --port=7473 --cell-budget-ms=60000
//   ./sweep_runner --spec=grid.sweep --agent=hostA:7473 --workers=8
//
// Agents run the same spec and experiment flags (the kJoin handshake checks
// the configuration fingerprint and rejects a mismatch loudly) and execute
// cells on their local forked worker pools. A host that misses
// --heartbeat-misses heartbeats or holds a cell past --cell-budget-ms has
// its cells re-dealt with exponential backoff; a slow host's late duplicate
// ack is deduped against the manifest, so the aggregate CSV is
// byte-identical to a single-process run at any host count.
//
// SIGTERM/SIGINT (or --drain) drain gracefully: stop dealing, wait out
// in-flight leases, collect per-host telemetry, and exit with the manifest
// resumable — rerun with --resume to finish.
#include "core/experiments.h"
#include "sweep/runner.h"
#include "sweep/service.h"
#include "util/flags.h"
#include "util/log.h"

#include <csignal>
#include <cstdio>
#include <string>

extern "C" void xs_serve_on_signal(int) { xs::sweep::request_drain(); }

int main(int argc, char** argv) {
    using namespace xs;
    const util::Flags flags(argc, argv);
    core::ExperimentContext ctx(flags);
    sweep::SweepSpec spec = sweep::parse_sweep_spec(flags);

    sweep::SweepOptions opts;
    opts.resume = flags.get_bool("resume", false);
    opts.max_cells = flags.get_int("max-cells", -1);
    opts.csv_name = flags.get_string("csv", "sweep.csv");
    opts.manifest_name = flags.get_string("manifest", "sweep_manifest.jsonl");
    opts.cell_budget_ms = flags.get_double("cell-budget-ms", 0.0);
    opts.progress_sec = flags.get_double("progress-sec", 0.0);

    sweep::ServiceOptions svc;
    svc.port = static_cast<std::uint16_t>(flags.get_int("port", 7473));
    svc.heartbeat_ms = flags.get_double("heartbeat-ms", 1000.0);
    svc.heartbeat_misses = flags.get_int("heartbeat-misses", 3);
    svc.max_cell_retries = flags.get_int("cell-retries", 2);
    svc.retry_backoff_ms = flags.get_double("retry-backoff-ms", 250.0);
    svc.drain = flags.get_bool("drain", false);

    std::signal(SIGTERM, xs_serve_on_signal);
    std::signal(SIGINT, xs_serve_on_signal);

    std::printf("serve: %s\n", spec.describe().c_str());
    const sweep::SweepSummary summary =
        sweep::run_service(ctx, spec, opts, svc);

    std::printf("\n%s\n", sweep::accuracy_vs_size_table(summary).c_str());
    std::printf("cells: %lld total, %lld executed, %lld resumed, %lld pending\n",
                static_cast<long long>(summary.cells_total),
                static_cast<long long>(summary.cells_executed),
                static_cast<long long>(summary.cells_resumed),
                static_cast<long long>(summary.cells_pending));
    std::printf("service: %lld host join(s), %lld duplicate ack(s) deduped, "
                "%lld cell retr%s\n",
                static_cast<long long>(summary.hosts_joined),
                static_cast<long long>(summary.duplicate_acks),
                static_cast<long long>(summary.cell_retries),
                summary.cell_retries == 1 ? "y" : "ies");
    if (opts.cell_budget_ms > 0.0)
        std::printf("cells over %.0f ms budget: %lld\n", opts.cell_budget_ms,
                    static_cast<long long>(summary.cells_over_budget));
    if (summary.cells_failed > 0) {
        std::printf("quarantined cells: %lld\n",
                    static_cast<long long>(summary.cells_failed));
        for (const std::string& id : summary.failed_cells)
            std::printf("  failed: %s\n", id.c_str());
    }
    if (summary.manifest_lines_skipped > 0)
        std::printf("corrupt manifest lines skipped: %lld\n",
                    static_cast<long long>(summary.manifest_lines_skipped));
    std::printf("aggregate CSV: %s\nmanifest:      %s\n",
                summary.csv_path.c_str(), summary.manifest_path.c_str());

    const std::string metrics_out = flags.get_string("metrics-out", "");
    if (!metrics_out.empty()) {
        if (summary.metrics_json.empty()) {
            util::log_warn("--metrics-out=" + metrics_out +
                           " requested but telemetry is compiled out "
                           "(XS_TELEMETRY=OFF); nothing written");
        } else {
            std::FILE* f = std::fopen(metrics_out.c_str(), "wb");
            if (f == nullptr ||
                std::fwrite(summary.metrics_json.data(), 1,
                            summary.metrics_json.size(),
                            f) != summary.metrics_json.size()) {
                util::log_error("failed to write --metrics-out=" + metrics_out);
                if (f) std::fclose(f);
                return 1;
            }
            std::fputc('\n', f);
            std::fclose(f);
            std::printf("metrics:       %s\n", metrics_out.c_str());
        }
    }

    if (summary.cells_pending > 0)
        std::printf("(incomplete — rerun with --resume to finish)\n");
    return 0;
}
