// Parasitic sweep: train (or load) the unpruned VGG11 once, then sweep
// crossbar size × interconnect-resistance scale and report the accuracy and
// NF surface. Useful for calibrating the simulator against published
// degradation levels.
//
//   ./parasitic_sweep [--scales=0.5,0.75,1.0] [--sizes=16,32,64]
#include "core/experiments.h"
#include "util/csv.h"
#include "util/flags.h"

#include <cstdio>

int main(int argc, char** argv) {
    using namespace xs;
    const util::Flags flags(argc, argv);
    core::ExperimentContext ctx(flags);

    std::vector<double> scales;
    for (const auto s : flags.get_int_list("scales-pct", {50, 75, 100}))
        scales.push_back(static_cast<double>(s) / 100.0);

    const auto spec = ctx.spec("vgg11", 10, prune::Method::kNone, 0.0);
    core::PreparedModel& model = ctx.prepared(spec);
    const auto& tt = ctx.dataset(10);
    std::printf("software accuracy: %.2f%%\n\n", model.software_accuracy);

    util::TextTable table({"scale", "xbar", "accuracy", "drop", "NF"});
    for (const double scale : scales) {
        for (const auto size : ctx.sizes()) {
            core::EvalConfig eval = ctx.eval_config(model, prune::Method::kNone, size);
            eval.xbar.parasitics.r_driver *= scale;
            eval.xbar.parasitics.r_wire_row *= scale;
            eval.xbar.parasitics.r_wire_col *= scale;
            eval.xbar.parasitics.r_sense *= scale;
            const auto r = core::evaluate_on_crossbars(model.model, tt.test, eval);
            table.add_row({util::fmt(scale, 2), std::to_string(size),
                           util::fmt(r.accuracy) + "%",
                           util::fmt(model.software_accuracy - r.accuracy),
                           util::fmt(r.nf_mean, 4)});
        }
    }
    std::printf("%s\n", table.str().c_str());
    return 0;
}
