// Parasitic sweep: the unpruned VGG11 swept over crossbar size ×
// interconnect-resistance scale, reporting the accuracy and NF surface.
// Useful for calibrating the simulator against published degradation
// levels. A thin SweepSpec driver: the grid runs sharded and resumable,
// and repeats aggregate to mean±std (results/parasitic_sweep.csv).
//
//   ./parasitic_sweep [--scales-pct=50,75,100] [--sizes=16,32,64]
//                     [--shards=N] [--resume]
#include "core/experiments.h"
#include "sweep/runner.h"
#include "util/csv.h"
#include "util/flags.h"

#include <cstdio>

int main(int argc, char** argv) {
    using namespace xs;
    const util::Flags flags(argc, argv);
    core::ExperimentContext ctx(flags);

    sweep::SweepSpec spec;
    spec.variants = {flags.get_string("variant", "vgg11")};
    spec.class_counts = {10};
    spec.prunes = {{prune::Method::kNone, 0.0}};
    spec.mitigations = {{}};
    spec.sizes = ctx.sizes();
    spec.sigmas = {ctx.sigma()};
    spec.parasitic_scales.clear();
    for (const auto pct : flags.get_int_list("scales-pct", {50, 75, 100}))
        spec.parasitic_scales.push_back(static_cast<double>(pct) / 100.0);
    spec.repeats = ctx.eval_repeats();

    sweep::SweepOptions opts;
    opts.shards = flags.get_int("shards", 0);
    opts.resume = flags.get_bool("resume", false);
    opts.csv_name = "parasitic_sweep.csv";
    opts.manifest_name = "parasitic_sweep_manifest.jsonl";

    sweep::SweepRunner runner(ctx, spec, opts);
    const sweep::SweepSummary summary = runner.run();

    util::TextTable table({"scale", "xbar", "accuracy", "drop", "NF"});
    for (const sweep::GroupRow& row : summary.rows) {
        if (!row.complete()) continue;
        table.add_row({util::fmt(row.cell.parasitic_scale, 2),
                       std::to_string(row.cell.xbar_size),
                       util::fmt(row.acc_mean) + "±" + util::fmt(row.acc_std) + "%",
                       util::fmt(row.software_acc - row.acc_mean),
                       util::fmt(row.nf_mean, 4)});
    }
    std::printf("software accuracy: %.2f%%\n\n",
                summary.rows.empty() ? 0.0 : summary.rows.front().software_acc);
    std::printf("%s\n", table.str().c_str());
    std::printf("(aggregates written to %s)\n", summary.csv_path.c_str());
    return 0;
}
