// Fig. 3(c): accuracy vs crossbar size for unpruned and structure-pruned
// (s = 0.8) VGG16 on the CIFAR10-like set — same protocol as Fig. 3(a) with
// the deeper network. Paper shape: same ordering at 16/32; at 64×64 the C/F
// curve can cross above the unpruned one.
//
// A thin SweepSpec driver (DESIGN.md §7): sharded, resumable, repeats
// aggregated to mean±std (results/fig3c_vgg16_cifar10.csv).
//
//   ./bench_fig3c [--sizes=16,32,64] [--backends=circuit] [--shards=N]
//                 [--resume]
#include "core/experiments.h"
#include "sweep/runner.h"
#include "util/flags.h"

#include <cstdio>

int main(int argc, char** argv) {
    using namespace xs;
    const util::Flags flags(argc, argv);
    core::ExperimentContext ctx(flags);
    const double s = ctx.sparsity_for(10);

    sweep::SweepSpec spec = sweep::parse_sweep_spec(flags);
    spec.variants = {"vgg16"};
    spec.class_counts = {10};
    spec.prunes = {{prune::Method::kNone, 0.0},
                   {prune::Method::kChannelFilter, s},
                   {prune::Method::kXbarColumn, s},
                   {prune::Method::kXbarRow, s}};
    spec.mitigations = {{}};
    spec.sizes = ctx.sizes();
    spec.sigmas = {ctx.sigma()};
    spec.repeats = ctx.eval_repeats();

    sweep::SweepOptions opts;
    opts.shards = flags.get_int("shards", 0);
    opts.resume = flags.get_bool("resume", false);
    opts.csv_name = "fig3c_vgg16_cifar10.csv";
    opts.manifest_name = "fig3c_vgg16_cifar10_manifest.jsonl";

    std::printf("Fig 3(c): VGG16 / CIFAR10-like, s=%.2f — accuracy vs crossbar size\n\n",
                s);
    sweep::SweepRunner runner(ctx, spec, opts);
    const sweep::SweepSummary summary = runner.run();

    std::printf("\n%s\n", sweep::accuracy_vs_size_table(summary).c_str());
    std::printf("(aggregates written to %s)\n", summary.csv_path.c_str());
    return 0;
}
