// Fig. 3(c): accuracy vs crossbar size for unpruned and structure-pruned
// (s = 0.8) VGG16 on the CIFAR10-like set — same protocol as Fig. 3(a) with
// the deeper network. Paper shape: same ordering at 16/32; at 64×64 the C/F
// curve can cross above the unpruned one.
#include "core/experiments.h"
#include "util/csv.h"
#include "util/flags.h"

#include <cstdio>

int main(int argc, char** argv) {
    using namespace xs;
    const util::Flags flags(argc, argv);
    core::ExperimentContext ctx(flags);
    const double s = ctx.sparsity_for(10);

    struct Scheme {
        const char* label;
        prune::Method method;
        double sparsity;
    };
    const Scheme schemes[] = {
        {"unpruned", prune::Method::kNone, 0.0},
        {"C/F", prune::Method::kChannelFilter, s},
        {"XCS", prune::Method::kXbarColumn, s},
        {"XRS", prune::Method::kXbarRow, s},
    };

    util::CsvWriter csv(ctx.csv_path("fig3c_vgg16_cifar10.csv"),
                        {"scheme", "xbar_size", "software_acc", "crossbar_acc",
                         "nf_mean", "tiles"});
    util::TextTable table({"scheme", "software", "16x16", "32x32", "64x64"});

    std::printf("Fig 3(c): VGG16 / CIFAR10-like, s=%.2f — accuracy vs crossbar size\n\n",
                s);
    for (const auto& scheme : schemes) {
        auto& model =
            ctx.prepared(ctx.spec("vgg16", 10, scheme.method, scheme.sparsity));
        std::vector<std::string> row{scheme.label,
                                     util::fmt(model.software_accuracy) + "%"};
        for (const auto size : ctx.sizes()) {
            const auto eval = ctx.eval_config(model, scheme.method, size);
            const auto r = core::evaluate_on_crossbars(model.model,
                                                       ctx.dataset(10).test, eval);
            csv.row(scheme.label, size, model.software_accuracy, r.accuracy,
                    r.nf_mean, r.total_tiles);
            row.push_back(util::fmt(r.accuracy) + "%");
        }
        table.add_row(row);
    }
    std::printf("%s\n", table.str().c_str());
    std::printf("(series written to results/fig3c_vgg16_cifar10.csv)\n");
    return 0;
}
