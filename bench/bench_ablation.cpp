// Ablation bench (DESIGN.md §6 design choices): the C/F-pruned VGG11/CIFAR10
// model mapped under the default non-ideality stack plus one knob changed at
// a time — write quantization, stuck-at faults, IR-drop column compensation
// ([12]-style baseline), and the paper's two mitigations, on equal footing.
//
// A thin SweepSpec driver (DESIGN.md §7): every ablation case is a
// one-group sweep over the engine's axes (sigma, parasitic scale, faults,
// quant-levels, mitigations), so each case inherits sharded execution,
// resumable manifests, lane-batched Monte-Carlo repeats, and deterministic
// mean±std aggregation instead of a hand-written evaluation loop.
//
//   ./bench_ablation [--xbar=64] [--sweep-repeats=N] [--resume]
#include "core/experiments.h"
#include "sweep/runner.h"
#include "util/csv.h"
#include "util/flags.h"

#include <cstdio>
#include <vector>

int main(int argc, char** argv) {
    using namespace xs;
    const util::Flags flags(argc, argv);
    core::ExperimentContext ctx(flags);
    const double s = ctx.sparsity_for(10);
    const std::int64_t size = flags.get_int("xbar", 64);

    const sweep::PruneSetting unpruned{prune::Method::kNone, 0.0};
    const sweep::PruneSetting cf{prune::Method::kChannelFilter, s};

    // One knob per case; everything else stays at the default stack.
    struct Case {
        const char* label;
        const char* slug;  // manifest/CSV file name component
        sweep::PruneSetting prune;
        sweep::Mitigation mitigation;
        double sigma;
        double parasitic_scale;
        sweep::FaultSetting faults;
        std::int64_t quant_levels;
    };
    const double sig = ctx.sigma();
    const sweep::Mitigation none{};
    const std::vector<Case> cases = {
        {"unpruned baseline", "unpruned", unpruned, none, sig, 1.0, {}, 0},
        {"C/F baseline", "cf", cf, none, sig, 1.0, {}, 0},
        {"C/F, no variation", "novar", cf, none, 0.0, 1.0, {}, 0},
        {"C/F, no parasitics", "nopar", cf, none, sig, 0.0, {}, 0},
        {"C/F + 6-bit write quant", "q64", cf, none, sig, 1.0, {}, 64},
        {"C/F + 4-bit write quant", "q16", cf, none, sig, 1.0, {}, 16},
        {"C/F + 1% stuck faults", "f1", cf, none, sig, 1.0, {0.005, 0.005}, 0},
        {"C/F + 5% stuck faults", "f5", cf, none, sig, 1.0, {0.025, 0.025}, 0},
        {"C/F + column compensation", "comp", cf, {false, false, true}, sig,
         1.0, {}, 0},
        {"C/F + R", "r", cf, {false, true, false}, sig, 1.0, {}, 0},
        {"C/F + R + compensation", "rcomp", cf, {false, true, true}, sig, 1.0,
         {}, 0},
        {"WCT + C/F", "wct", cf, {true, false, false}, sig, 1.0, {}, 0},
    };

    util::CsvWriter csv(ctx.csv_path("ablation.csv"),
                        {"variant", "xbar_size", "accuracy", "nf_mean"});
    util::TextTable table({"variant", "software", "accuracy", "NF"});

    std::printf(
        "Ablation: C/F-pruned VGG11/CIFAR10 (s=%.2f) on %lldx%lld crossbars\n\n",
        s, static_cast<long long>(size), static_cast<long long>(size));

    for (const Case& c : cases) {
        sweep::SweepSpec spec;
        spec.class_counts = {10};
        spec.prunes = {c.prune};
        spec.mitigations = {c.mitigation};
        spec.sizes = {size};
        spec.sigmas = {c.sigma};
        spec.parasitic_scales = {c.parasitic_scale};
        spec.faults = {c.faults};
        spec.quant_levels = {c.quant_levels};
        spec.repeats = ctx.eval_repeats();

        sweep::SweepOptions opts;
        opts.shards = flags.get_int("shards", 0);
        opts.resume = flags.get_bool("resume", false);
        opts.csv_name = std::string("ablation_") + c.slug + "_sweep.csv";
        opts.manifest_name =
            std::string("ablation_") + c.slug + "_manifest.jsonl";

        const sweep::SweepSummary summary =
            sweep::SweepRunner(ctx, spec, opts).run();
        if (summary.rows.empty() || !summary.rows.front().complete()) {
            table.add_row({c.label, "--", "--", "--"});
            continue;
        }
        const sweep::GroupRow& row = summary.rows.front();
        csv.row(c.label, size, row.acc_mean, row.nf_mean);
        table.add_row({c.label, util::fmt(row.software_acc) + "%",
                       util::fmt(row.acc_mean) + "%",
                       util::fmt(row.nf_mean, 4)});
    }
    std::printf("%s\n", table.str().c_str());
    std::printf("(rows written to results/ablation.csv)\n");
    return 0;
}
