// Ablation bench (DESIGN.md §6 design choices): the C/F-pruned VGG11/CIFAR10
// model mapped under the default non-ideality stack plus one knob changed at
// a time — write quantization, stuck-at faults, IR-drop column compensation
// ([12]-style baseline), the paper's two mitigations, and an unstructured-
// magnitude pruning baseline (same sparsity, no crossbar savings).
//
// This quantifies how much of the degradation each non-ideality contributes
// and how the mitigations compare on equal footing.
#include "core/experiments.h"
#include "map/compression.h"
#include "util/csv.h"
#include "util/flags.h"

#include <cstdio>

int main(int argc, char** argv) {
    using namespace xs;
    const util::Flags flags(argc, argv);
    core::ExperimentContext ctx(flags);
    const double s = ctx.sparsity_for(10);
    const std::int64_t size = flags.get_int("xbar", 64);

    auto& unpruned = ctx.prepared(ctx.spec("vgg11", 10, prune::Method::kNone, 0.0));
    auto& pruned =
        ctx.prepared(ctx.spec("vgg11", 10, prune::Method::kChannelFilter, s));
    auto& wct = ctx.prepared(
        ctx.spec("vgg11", 10, prune::Method::kChannelFilter, s, true));

    util::CsvWriter csv(ctx.csv_path("ablation.csv"),
                        {"variant", "xbar_size", "accuracy", "nf_mean"});
    util::TextTable table({"variant", "accuracy", "NF"});
    const auto& test = ctx.dataset(10).test;

    struct Case {
        std::string label;
        core::PreparedModel* model;
        prune::Method method;
        std::function<void(core::EvalConfig&)> tweak;
    };
    const std::vector<Case> cases = {
        {"unpruned baseline", &unpruned, prune::Method::kNone, {}},
        {"C/F baseline", &pruned, prune::Method::kChannelFilter, {}},
        {"C/F, no variation", &pruned, prune::Method::kChannelFilter,
         [](core::EvalConfig& c) { c.include_variation = false; }},
        {"C/F, no parasitics", &pruned, prune::Method::kChannelFilter,
         [](core::EvalConfig& c) { c.include_parasitics = false; }},
        {"C/F + 6-bit write quant", &pruned, prune::Method::kChannelFilter,
         [](core::EvalConfig& c) { c.conductance_levels = 64; }},
        {"C/F + 4-bit write quant", &pruned, prune::Method::kChannelFilter,
         [](core::EvalConfig& c) { c.conductance_levels = 16; }},
        {"C/F + 1% stuck faults", &pruned, prune::Method::kChannelFilter,
         [](core::EvalConfig& c) {
             c.faults.p_stuck_min = 0.005;
             c.faults.p_stuck_max = 0.005;
         }},
        {"C/F + 5% stuck faults", &pruned, prune::Method::kChannelFilter,
         [](core::EvalConfig& c) {
             c.faults.p_stuck_min = 0.025;
             c.faults.p_stuck_max = 0.025;
         }},
        {"C/F + column compensation", &pruned, prune::Method::kChannelFilter,
         [](core::EvalConfig& c) { c.compensate_columns = true; }},
        {"C/F + R", &pruned, prune::Method::kChannelFilter,
         [](core::EvalConfig& c) { c.rearrange = true; }},
        {"C/F + R + compensation", &pruned, prune::Method::kChannelFilter,
         [](core::EvalConfig& c) {
             c.rearrange = true;
             c.compensate_columns = true;
         }},
        {"WCT + C/F", &wct, prune::Method::kChannelFilter, {}},
    };

    std::printf("Ablation: C/F-pruned VGG11/CIFAR10 (s=%.2f) on %lldx%lld crossbars\n",
                s, static_cast<long long>(size), static_cast<long long>(size));
    std::printf("software accuracy: unpruned %.2f%%, C/F %.2f%%, WCT %.2f%%\n\n",
                unpruned.software_accuracy, pruned.software_accuracy,
                wct.software_accuracy);

    for (const Case& c : cases) {
        core::EvalConfig eval = ctx.eval_config(*c.model, c.method, size);
        if (c.tweak) c.tweak(eval);
        const auto r = core::evaluate_on_crossbars(c.model->model, test, eval);
        csv.row(c.label, size, r.accuracy, r.nf_mean);
        table.add_row({c.label, util::fmt(r.accuracy) + "%", util::fmt(r.nf_mean, 4)});
    }
    std::printf("%s\n", table.str().c_str());
    std::printf("(rows written to results/ablation.csv)\n");
    return 0;
}
