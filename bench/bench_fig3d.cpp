// Fig. 3(d): average non-ideality factor (NF) of the unpruned vs C/F-pruned
// VGG11/CIFAR10 weight matrices when the crossbar grows from 32×32 to 64×64.
// Paper shape: NF grows with crossbar size for both; the growth *rate* is
// higher for the unpruned network (it maps onto many more crossbars).
//
// Thin driver over the declarative sweep engine in NF-only mode
// (SweepSpec::nf_only): measure_nf with variation disabled is deterministic,
// so the grid runs with repeats = 1 and the figure CSV is derived from the
// sweep rows instead of a hand-written loop.
#include "core/experiments.h"
#include "sweep/runner.h"
#include "util/csv.h"
#include "util/flags.h"

#include <cstdio>
#include <map>

int main(int argc, char** argv) {
    using namespace xs;
    const util::Flags flags(argc, argv);
    core::ExperimentContext ctx(flags);
    const double s = ctx.sparsity_for(10);

    sweep::SweepSpec spec;
    spec.prunes = {{prune::Method::kNone, 0.0},
                   {prune::Method::kChannelFilter, s}};
    spec.sizes = {32, 64};
    spec.sigmas = {ctx.sigma()};
    spec.nf_only = true;  // no inference pass, no variation → deterministic
    spec.repeats = 1;

    sweep::SweepOptions opts;
    opts.csv_name = "fig3d_sweep.csv";
    opts.manifest_name = "fig3d_manifest.jsonl";
    opts.resume = flags.get_bool("resume", false);
    opts.shards = flags.get_int("shards", 0);

    std::printf("Fig 3(d): average NF, unpruned vs C/F (s=%.2f) VGG11/CIFAR10\n\n",
                s);
    const sweep::SweepSummary summary =
        sweep::SweepRunner(ctx, spec, opts).run();

    // Historical figure CSV plus the NF @32→@64 growth table, from the
    // aggregated rows (expansion order: scheme outer, size inner).
    util::CsvWriter csv(ctx.csv_path("fig3d_nf_vs_size.csv"),
                        {"scheme", "xbar_size", "nf_mean", "tiles"});
    std::map<std::string, std::map<std::int64_t, const sweep::GroupRow*>> by;
    for (const sweep::GroupRow& row : summary.rows) {
        if (!row.complete()) continue;
        const char* label = row.cell.prune.method == prune::Method::kNone
                                ? "unpruned"
                                : "C/F";
        csv.row(label, row.cell.xbar_size, row.nf_mean, row.tiles);
        by[label][row.cell.xbar_size] = &row;
    }
    csv.flush();

    util::TextTable table({"scheme", "NF @32x32", "NF @64x64", "delta",
                           "tiles@32", "tiles@64"});
    for (const char* label : {"unpruned", "C/F"}) {
        const auto& sizes = by[label];
        if (sizes.count(32) == 0 || sizes.count(64) == 0) continue;
        const sweep::GroupRow& r32 = *sizes.at(32);
        const sweep::GroupRow& r64 = *sizes.at(64);
        table.add_row({label, util::fmt(r32.nf_mean, 4), util::fmt(r64.nf_mean, 4),
                       util::fmt(r64.nf_mean - r32.nf_mean, 4),
                       std::to_string(r32.tiles), std::to_string(r64.tiles)});
    }
    std::printf("%s\n", table.str().c_str());
    std::printf("(series written to results/fig3d_nf_vs_size.csv)\n");
    return 0;
}
