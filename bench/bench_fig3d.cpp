// Fig. 3(d): average non-ideality factor (NF) of the unpruned vs C/F-pruned
// VGG11/CIFAR10 weight matrices when the crossbar grows from 32×32 to 64×64.
// Paper shape: NF grows with crossbar size for both; the growth *rate* is
// higher for the unpruned network (it maps onto many more crossbars).
#include "core/experiments.h"
#include "util/csv.h"
#include "util/flags.h"

#include <cstdio>

int main(int argc, char** argv) {
    using namespace xs;
    const util::Flags flags(argc, argv);
    core::ExperimentContext ctx(flags);
    const double s = ctx.sparsity_for(10);

    util::CsvWriter csv(ctx.csv_path("fig3d_nf_vs_size.csv"),
                        {"scheme", "xbar_size", "nf_mean", "tiles"});
    util::TextTable table({"scheme", "NF @32x32", "NF @64x64", "delta", "tiles@32",
                           "tiles@64"});

    std::printf("Fig 3(d): average NF, unpruned vs C/F (s=%.2f) VGG11/CIFAR10\n\n", s);
    struct Scheme {
        const char* label;
        prune::Method method;
        double sparsity;
    };
    for (const auto& scheme :
         {Scheme{"unpruned", prune::Method::kNone, 0.0},
          Scheme{"C/F", prune::Method::kChannelFilter, s}}) {
        auto& model =
            ctx.prepared(ctx.spec("vgg11", 10, scheme.method, scheme.sparsity));
        double nf32 = 0.0, nf64 = 0.0;
        std::int64_t t32 = 0, t64 = 0;
        for (const std::int64_t size : {32, 64}) {
            core::EvalConfig eval = ctx.eval_config(model, scheme.method, size);
            eval.include_variation = false;  // NF is a parasitics metric
            const auto r = core::measure_nf(model.model, eval);
            csv.row(scheme.label, size, r.nf_mean, r.total_tiles);
            if (size == 32) {
                nf32 = r.nf_mean;
                t32 = r.total_tiles;
            } else {
                nf64 = r.nf_mean;
                t64 = r.total_tiles;
            }
        }
        table.add_row({scheme.label, util::fmt(nf32, 4), util::fmt(nf64, 4),
                       util::fmt(nf64 - nf32, 4), std::to_string(t32),
                       std::to_string(t64)});
    }
    std::printf("%s\n", table.str().c_str());
    std::printf("(series written to results/fig3d_nf_vs_size.csv)\n");
    return 0;
}
