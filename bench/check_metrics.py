#!/usr/bin/env python3
"""Validate sweep telemetry artifacts (DESIGN.md §10).

Usage: check_metrics.py [--clean] METRICS_JSON [TRACE_JSON] [MANIFEST_JSONL]

Checks, in order:
  * METRICS_JSON parses and has exactly the schema keys "counters" and
    "histograms"; counter values are non-negative integers; every histogram
    is self-consistent (count == sum(buckets), sum == 0 when count == 0,
    buckets no longer than the 64 fixed log2 slots).
  * The sweep counters are present; with --clean (a run known free of
    crashes and retries) additionally sweep.cells.done ==
    sweep.cells.executed — every executed cell was acknowledged and
    recorded. Without --clean the equality is not an invariant: a killed
    worker's executed-count dies with it (its kMetrics frame is only sent
    on clean shutdown) and retried cells execute more than once.
  * TRACE_JSON (when given) is a chrome://tracing file: non-empty
    traceEvents, each a complete "X" event with name/ph/ts/dur/pid/tid.
  * MANIFEST_JSONL (when given) is cross-checked against the counters:
    sweep.cells.done == number of ok cell records (the acknowledgement
    count), and the trailing {"metrics": ...} record matches METRICS_JSON.

Exits nonzero with a message on the first violation. Only meaningful on a
fresh (non --resume) run: resumed cells are replayed from the manifest, not
re-executed, so the counters intentionally cover executed cells only.
"""
import json
import sys


def fail(msg):
    print(f"check_metrics: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_metrics(metrics, clean):
    if set(metrics.keys()) != {"counters", "histograms"}:
        fail(f"schema keys {sorted(metrics.keys())} != ['counters', 'histograms']")
    counters, histograms = metrics["counters"], metrics["histograms"]
    for name, v in counters.items():
        if not isinstance(v, int) or v < 0:
            fail(f"counter {name} = {v!r} is not a non-negative integer")
    for name, h in histograms.items():
        if set(h.keys()) != {"count", "sum", "buckets"}:
            fail(f"histogram {name} keys {sorted(h.keys())}")
        if len(h["buckets"]) > 64:
            fail(f"histogram {name} has {len(h['buckets'])} buckets (max 64)")
        if sum(h["buckets"]) != h["count"]:
            fail(f"histogram {name}: sum(buckets) {sum(h['buckets'])} != count {h['count']}")
        if h["count"] == 0 and h["sum"] != 0:
            fail(f"histogram {name}: empty but sum {h['sum']}")
        if not name.endswith(".ns"):
            fail(f"histogram {name} does not carry the .ns unit suffix")

    done = counters.get("sweep.cells.done")
    executed = counters.get("sweep.cells.executed")
    if done is None or executed is None:
        fail("sweep.cells.done / sweep.cells.executed counters missing")
    if clean and done != executed:
        fail(f"sweep.cells.done {done} != sweep.cells.executed {executed}")
    return counters


def check_trace(path):
    with open(path) as f:
        trace = json.load(f)
    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: traceEvents missing or empty")
    for e in events:
        for key in ("name", "ph", "ts", "dur", "pid", "tid"):
            if key not in e:
                fail(f"{path}: event {e} lacks '{key}'")
        if e["ph"] != "X" or e["dur"] < 0:
            fail(f"{path}: malformed complete event {e}")
    print(f"check_metrics: {path}: {len(events)} trace events ok")


def check_manifest(path, counters, metrics):
    acks = 0
    recorded_metrics = None
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            if line.startswith('{"metrics":'):
                recorded_metrics = json.loads(line)["metrics"]
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn records are the loader's concern, not ours
            if "cell" in rec and rec.get("status", "ok") == "ok":
                acks += 1
    if counters["sweep.cells.done"] != acks:
        fail(f"sweep.cells.done {counters['sweep.cells.done']} != "
             f"{acks} ok manifest records")
    if recorded_metrics is None:
        fail(f"{path}: no {{\"metrics\": ...}} record")
    if recorded_metrics != metrics:
        fail(f"{path}: recorded metrics differ from the metrics JSON")
    print(f"check_metrics: {path}: {acks} acks match sweep.cells.done")


def main(argv):
    args = argv[1:]
    clean = "--clean" in args
    args = [a for a in args if a != "--clean"]
    if not args:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(args[0]) as f:
        metrics = json.load(f)
    counters = check_metrics(metrics, clean)
    print(f"check_metrics: {args[0]}: {len(counters)} counters, "
          f"{len(metrics['histograms'])} histograms ok")
    if len(args) > 1:
        check_trace(args[1])
    if len(args) > 2:
        check_manifest(args[2], counters, metrics)
    print("check_metrics: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
