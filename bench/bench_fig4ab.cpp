// Fig. 4(a,b): accuracy vs crossbar size for unpruned, C/F-pruned, and
// C/F-pruned + column rearrangement R — VGG11 (a) and VGG16 (b) on the
// CIFAR10-like set (s = 0.8). Paper shape: R recovers several percent of the
// C/F accuracy loss, most visibly on larger crossbars (~9 % for VGG11 at
// 64×64, ~6 % for VGG16 at 32×32).
#include "core/experiments.h"
#include "util/csv.h"
#include "util/flags.h"

#include <cstdio>
#include <sstream>

int main(int argc, char** argv) {
    using namespace xs;
    const util::Flags flags(argc, argv);
    core::ExperimentContext ctx(flags);
    const double s = ctx.sparsity_for(10);

    util::CsvWriter csv(ctx.csv_path("fig4ab_rearrangement_cifar10.csv"),
                        {"variant", "scheme", "xbar_size", "software_acc",
                         "crossbar_acc", "nf_mean"});

    std::vector<std::string> variants;
    {
        std::stringstream ss(flags.get_string("variants", "vgg11,vgg16"));
        std::string item;
        while (std::getline(ss, item, ','))
            if (!item.empty()) variants.push_back(item);
    }
    for (const std::string& variant : variants) {
        std::printf("Fig 4(%s): %s / CIFAR10-like, s=%.2f\n\n",
                    variant == "vgg11" ? "a" : "b", variant.c_str(), s);
        util::TextTable table({"scheme", "software", "16x16", "32x32", "64x64"});

        auto& unpruned = ctx.prepared(ctx.spec(variant, 10, prune::Method::kNone, 0.0));
        auto& pruned =
            ctx.prepared(ctx.spec(variant, 10, prune::Method::kChannelFilter, s));

        struct Row {
            const char* label;
            core::PreparedModel* model;
            prune::Method method;
            bool rearrange;
        };
        const Row rows[] = {
            {"unpruned", &unpruned, prune::Method::kNone, false},
            {"C/F", &pruned, prune::Method::kChannelFilter, false},
            {"C/F + R", &pruned, prune::Method::kChannelFilter, true},
        };
        for (const Row& row : rows) {
            std::vector<std::string> cells{
                row.label, util::fmt(row.model->software_accuracy) + "%"};
            for (const auto size : ctx.sizes()) {
                const auto eval =
                    ctx.eval_config(*row.model, row.method, size, row.rearrange);
                const auto r = core::evaluate_on_crossbars(
                    row.model->model, ctx.dataset(10).test, eval);
                csv.row(variant, row.label, size, row.model->software_accuracy,
                        r.accuracy, r.nf_mean);
                cells.push_back(util::fmt(r.accuracy) + "%");
            }
            table.add_row(cells);
        }
        std::printf("%s\n", table.str().c_str());
    }
    std::printf("(series written to results/fig4ab_rearrangement_cifar10.csv)\n");
    return 0;
}
