// Fig. 4(a,b): accuracy vs crossbar size for unpruned, C/F-pruned, and
// C/F-pruned + column rearrangement R — VGG11 (a) and VGG16 (b) on the
// CIFAR10-like set (s = 0.8). Paper shape: R recovers several percent of the
// C/F accuracy loss, most visibly on larger crossbars (~9 % for VGG11 at
// 64×64, ~6 % for VGG16 at 32×32).
//
// Thin driver over the declarative sweep engine (sweep/runner.h): each
// scheme runs as its own SweepSpec over the size axis — the scheme set is
// not a cartesian product (the paper applies R to the pruned model only) —
// so the bench inherits sharded execution, resumable manifests, and
// deterministic mean±std aggregation; the figure CSV is derived from the
// sweep rows instead of a hand-written evaluation loop.
//
//   ./bench_fig4ab [--variants=vgg11,vgg16] [--sizes=16,32,64]
//                  [--shards=N] [--resume]
#include "core/experiments.h"
#include "sweep/runner.h"
#include "util/csv.h"
#include "util/flags.h"

#include <cstdio>
#include <sstream>
#include <vector>

int main(int argc, char** argv) {
    using namespace xs;
    const util::Flags flags(argc, argv);
    core::ExperimentContext ctx(flags);
    const double s = ctx.sparsity_for(10);

    util::CsvWriter csv(ctx.csv_path("fig4ab_rearrangement_cifar10.csv"),
                        {"variant", "scheme", "xbar_size", "software_acc",
                         "crossbar_acc", "nf_mean"});

    std::vector<std::string> variants;
    {
        std::stringstream ss(flags.get_string("variants", "vgg11,vgg16"));
        std::string item;
        while (std::getline(ss, item, ','))
            if (!item.empty()) variants.push_back(item);
    }

    struct Scheme {
        const char* label;
        const char* slug;  // manifest/CSV file name component
        sweep::PruneSetting prune;
        sweep::Mitigation mitigation;
    };
    const Scheme schemes[] = {
        {"unpruned", "unpruned", {prune::Method::kNone, 0.0}, {}},
        {"C/F", "cf", {prune::Method::kChannelFilter, s}, {}},
        {"C/F + R", "cf_r", {prune::Method::kChannelFilter, s}, {false, true}},
    };

    for (const std::string& variant : variants) {
        std::printf("Fig 4(%s): %s / CIFAR10-like, s=%.2f\n\n",
                    variant == "vgg11" ? "a" : "b", variant.c_str(), s);

        std::vector<std::string> headers{"scheme", "software"};
        for (const auto size : ctx.sizes())
            headers.push_back(std::to_string(size) + "x" + std::to_string(size));
        util::TextTable table(headers);

        for (const Scheme& scheme : schemes) {
            sweep::SweepSpec spec;
            spec.variants = {variant};
            spec.class_counts = {10};
            spec.prunes = {scheme.prune};
            spec.mitigations = {scheme.mitigation};
            spec.sizes = ctx.sizes();
            spec.sigmas = {ctx.sigma()};
            spec.repeats = ctx.eval_repeats();

            sweep::SweepOptions opts;
            opts.shards = flags.get_int("shards", 0);
            opts.resume = flags.get_bool("resume", false);
            opts.csv_name =
                "fig4ab_" + variant + "_" + scheme.slug + "_sweep.csv";
            opts.manifest_name =
                "fig4ab_" + variant + "_" + scheme.slug + "_manifest.jsonl";

            const sweep::SweepSummary summary =
                sweep::SweepRunner(ctx, spec, opts).run();

            std::vector<std::string> cells{scheme.label, "--"};
            for (const sweep::GroupRow& row : summary.rows) {
                if (!row.complete()) {
                    cells.push_back("--");
                    continue;
                }
                cells[1] = util::fmt(row.software_acc) + "%";
                csv.row(variant, scheme.label, row.cell.xbar_size,
                        row.software_acc, row.acc_mean, row.nf_mean);
                cells.push_back(util::fmt(row.acc_mean) + "%");
            }
            table.add_row(cells);
        }
        std::printf("%s\n", table.str().c_str());
    }
    std::printf("(series written to results/fig4ab_rearrangement_cifar10.csv)\n");
    return 0;
}
