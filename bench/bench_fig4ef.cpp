// Fig. 4(e,f): accuracy vs crossbar size for unpruned, C/F-pruned, and
// WCT + C/F-pruned VGG11 — CIFAR10-like (e, s = 0.8) and CIFAR100-like
// (f, s = 0.6). Paper shape: the WCT model holds its accuracy nearly flat
// across crossbar sizes and beats the unpruned model on large crossbars
// (~6–7 % at 64×64 / 32×32).
//
// Thin driver over the declarative sweep engine (sweep/runner.h): each
// scheme runs as its own SweepSpec over the size axis — the scheme set is
// not a cartesian product (WCT applies to the pruned model only) — so the
// bench inherits sharded execution, resumable manifests, and deterministic
// mean±std aggregation; the figure CSV is derived from the sweep rows
// instead of a hand-written evaluation loop.
//
//   ./bench_fig4ef [--sizes=16,32,64] [--shards=N] [--resume]
#include "core/experiments.h"
#include "sweep/runner.h"
#include "util/csv.h"
#include "util/flags.h"

#include <cstdio>
#include <vector>

int main(int argc, char** argv) {
    using namespace xs;
    const util::Flags flags(argc, argv);
    core::ExperimentContext ctx(flags);

    util::CsvWriter csv(ctx.csv_path("fig4ef_wct.csv"),
                        {"dataset", "scheme", "xbar_size", "software_acc",
                         "crossbar_acc", "nf_mean"});

    for (const std::int64_t classes : {10, 100}) {
        const double s = ctx.sparsity_for(classes);
        std::printf(
            "Fig 4(%s): VGG11 / CIFAR%lld-like, s=%.2f — WCT mitigation\n\n",
            classes == 10 ? "e" : "f", static_cast<long long>(classes), s);

        struct Scheme {
            const char* label;
            const char* slug;  // manifest/CSV file name component
            sweep::PruneSetting prune;
            sweep::Mitigation mitigation;
        };
        const Scheme schemes[] = {
            {"unpruned", "unpruned", {prune::Method::kNone, 0.0}, {}},
            {"C/F", "cf", {prune::Method::kChannelFilter, s}, {}},
            {"WCT + C/F", "wct_cf", {prune::Method::kChannelFilter, s},
             {true, false}},
        };

        std::vector<std::string> headers{"scheme", "software"};
        for (const auto size : ctx.sizes())
            headers.push_back(std::to_string(size) + "x" + std::to_string(size));
        util::TextTable table(headers);

        for (const Scheme& scheme : schemes) {
            sweep::SweepSpec spec;
            spec.class_counts = {classes};
            spec.prunes = {scheme.prune};
            spec.mitigations = {scheme.mitigation};
            spec.sizes = ctx.sizes();
            spec.sigmas = {ctx.sigma()};
            spec.repeats = ctx.eval_repeats();

            sweep::SweepOptions opts;
            opts.shards = flags.get_int("shards", 0);
            opts.resume = flags.get_bool("resume", false);
            opts.csv_name = "fig4ef_c" + std::to_string(classes) + "_" +
                            scheme.slug + "_sweep.csv";
            opts.manifest_name = "fig4ef_c" + std::to_string(classes) + "_" +
                                 scheme.slug + "_manifest.jsonl";

            const sweep::SweepSummary summary =
                sweep::SweepRunner(ctx, spec, opts).run();

            std::vector<std::string> cells{scheme.label, "--"};
            for (const sweep::GroupRow& row : summary.rows) {
                if (!row.complete()) {
                    cells.push_back("--");
                    continue;
                }
                cells[1] = util::fmt(row.software_acc) + "%";
                csv.row(classes, scheme.label, row.cell.xbar_size,
                        row.software_acc, row.acc_mean, row.nf_mean);
                cells.push_back(util::fmt(row.acc_mean) + "%");
            }
            table.add_row(cells);
        }
        std::printf("%s\n", table.str().c_str());
    }
    std::printf("(series written to results/fig4ef_wct.csv)\n");
    return 0;
}
