// Fig. 4(e,f): accuracy vs crossbar size for unpruned, C/F-pruned, and
// WCT + C/F-pruned VGG11 — CIFAR10-like (e, s = 0.8) and CIFAR100-like
// (f, s = 0.6). Paper shape: the WCT model holds its accuracy nearly flat
// across crossbar sizes and beats the unpruned model on large crossbars
// (~6–7 % at 64×64 / 32×32).
#include "core/experiments.h"
#include "util/csv.h"
#include "util/flags.h"

#include <cstdio>

int main(int argc, char** argv) {
    using namespace xs;
    const util::Flags flags(argc, argv);
    core::ExperimentContext ctx(flags);

    util::CsvWriter csv(ctx.csv_path("fig4ef_wct.csv"),
                        {"dataset", "scheme", "xbar_size", "software_acc",
                         "crossbar_acc", "nf_mean"});

    for (const std::int64_t classes : {10, 100}) {
        const double s = ctx.sparsity_for(classes);
        std::printf("Fig 4(%s): VGG11 / CIFAR%lld-like, s=%.2f — WCT mitigation\n\n",
                    classes == 10 ? "e" : "f", static_cast<long long>(classes), s);
        util::TextTable table({"scheme", "software", "16x16", "32x32", "64x64"});

        auto& unpruned =
            ctx.prepared(ctx.spec("vgg11", classes, prune::Method::kNone, 0.0));
        auto& pruned = ctx.prepared(
            ctx.spec("vgg11", classes, prune::Method::kChannelFilter, s));
        auto& wct = ctx.prepared(
            ctx.spec("vgg11", classes, prune::Method::kChannelFilter, s, true));

        struct Row {
            const char* label;
            core::PreparedModel* model;
        };
        const Row rows[] = {
            {"unpruned", &unpruned},
            {"C/F", &pruned},
            {"WCT + C/F", &wct},
        };
        for (const Row& row : rows) {
            const prune::Method method = row.model == &unpruned
                                             ? prune::Method::kNone
                                             : prune::Method::kChannelFilter;
            std::vector<std::string> cells{
                row.label, util::fmt(row.model->software_accuracy) + "%"};
            for (const auto size : ctx.sizes()) {
                const auto eval = ctx.eval_config(*row.model, method, size);
                const auto r = core::evaluate_on_crossbars(
                    row.model->model, ctx.dataset(classes).test, eval);
                csv.row(classes, row.label, size, row.model->software_accuracy,
                        r.accuracy, r.nf_mean);
                cells.push_back(util::fmt(r.accuracy) + "%");
            }
            table.add_row(cells);
        }
        std::printf("%s\n", table.str().c_str());
    }
    std::printf("(series written to results/fig4ef_wct.csv)\n");
    return 0;
}
