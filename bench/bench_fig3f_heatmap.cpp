// Fig. 3(f): |W| heatmaps of the 3rd and 5th conv layers of the C/F-pruned
// VGG16/CIFAR10 model, before and after the column rearrangement R
// (centre-out order, as in the paper's visualization). Emits one CSV per
// heatmap into results/; the paper's visual — light (low-|w|) columns
// concentrated at the centre after R — can be confirmed with any plotter.
// An ASCII digest (per-column mean |w| profile) is printed to stdout.
//
// Thin driver over the declarative sweep engine (sweep/runner.h), like
// fig3a–3d: the quantitative side of the figure — does R actually lower the
// tile-average non-ideality factor? — is a none-vs-rearrange nf_only
// SweepSpec, so the bench inherits sharded execution, the resumable
// manifest, and the deterministic aggregate; the historical
// fig3f_rearrange_nf.csv is derived from the summary rows. The heatmap
// dumps then reuse the sweep's prepared-model cache via ctx.prepared().
#include "core/experiments.h"
#include "core/rearrange.h"
#include "map/compaction.h"
#include "map/matrix_view.h"
#include "sweep/runner.h"
#include "util/csv.h"
#include "util/flags.h"

#include <cmath>
#include <cstdio>
#include <fstream>

namespace {

void dump_matrix(const std::string& path, const xs::tensor::Tensor& m) {
    std::ofstream os(path);
    for (std::int64_t r = 0; r < m.dim(0); ++r) {
        for (std::int64_t c = 0; c < m.dim(1); ++c) {
            if (c) os << ',';
            os << std::fabs(m.at(r, c));
        }
        os << '\n';
    }
}

void ascii_profile(const char* tag, const xs::tensor::Tensor& m) {
    // Column-mean |w| quantized into 8 shade levels across up to 64 buckets.
    const std::int64_t cols = m.dim(1);
    const std::int64_t buckets = std::min<std::int64_t>(cols, 64);
    std::vector<double> profile(static_cast<std::size_t>(buckets), 0.0);
    double peak = 1e-12;
    for (std::int64_t b = 0; b < buckets; ++b) {
        const std::int64_t c0 = b * cols / buckets, c1 = (b + 1) * cols / buckets;
        double acc = 0.0;
        std::int64_t n = 0;
        for (std::int64_t c = c0; c < std::max(c1, c0 + 1); ++c)
            for (std::int64_t r = 0; r < m.dim(0); ++r) {
                acc += std::fabs(m.at(r, c));
                ++n;
            }
        profile[static_cast<std::size_t>(b)] = acc / static_cast<double>(n);
        peak = std::max(peak, profile[static_cast<std::size_t>(b)]);
    }
    static const char shades[] = " .:-=+*#@";
    std::printf("  %-22s |", tag);
    for (const double v : profile) {
        const int level = static_cast<int>(v / peak * 8.0);
        std::printf("%c", shades[std::min(level, 8)]);
    }
    std::printf("|\n");
}

}  // namespace

int main(int argc, char** argv) {
    using namespace xs;
    const util::Flags flags(argc, argv);
    core::ExperimentContext ctx(flags);
    const std::string variant = flags.get_string("variant", "vgg16");
    const double s = ctx.sparsity_for(10);

    // Quantitative companion to the heatmaps: tile-average NF with and
    // without R, per crossbar size. nf_only cells are deterministic
    // (variation disabled), so one repeat suffices.
    sweep::SweepSpec spec;
    spec.variants = {variant};
    spec.prunes = {{prune::Method::kChannelFilter, s}};
    spec.mitigations = {{/*wct=*/false, /*rearrange=*/false},
                        {/*wct=*/false, /*rearrange=*/true}};
    spec.sizes = ctx.sizes();
    spec.sigmas = {ctx.sigma()};
    spec.repeats = 1;
    spec.nf_only = true;

    sweep::SweepOptions opts;
    opts.csv_name = "fig3f_sweep.csv";
    opts.manifest_name = "fig3f_manifest.jsonl";
    opts.resume = flags.get_bool("resume", false);
    opts.shards = flags.get_int("shards", 0);

    std::printf("Fig 3(f): C/F-pruned %s / CIFAR10-like — rearrangement "
                "heatmaps + NF sweep (s=%.2f)\n\n", variant.c_str(), s);
    const sweep::SweepSummary summary =
        sweep::SweepRunner(ctx, spec, opts).run();

    // Historical figure CSV, one row per (mitigation, size) in grid order.
    util::CsvWriter csv(ctx.csv_path("fig3f_rearrange_nf.csv"),
                        {"mitigation", "xbar_size", "nf_mean", "tiles"});
    for (const sweep::GroupRow& row : summary.rows) {
        if (!row.complete()) continue;
        csv.row(row.cell.mitigation.name(), row.cell.xbar_size, row.nf_mean,
                row.tiles);
    }
    csv.flush();

    // The sweep prepared (or loaded) the model; the heatmaps reuse it.
    auto& model =
        ctx.prepared(ctx.spec(variant, 10, prune::Method::kChannelFilter, s));
    for (const std::string layer_name : {"conv3", "conv5"}) {
        nn::Layer* layer = model.model.find(layer_name);
        if (!layer) continue;
        const tensor::Tensor matrix = map::extract_matrix(*layer);
        const map::Compaction compaction = map::compact_dense(matrix);

        const auto r = core::compute_rearrangement(compaction.matrix,
                                                   core::RearrangeOrder::kCenterOut);
        const tensor::Tensor rearranged = core::apply_columns(compaction.matrix, r);

        dump_matrix(ctx.csv_path("fig3f_" + variant + "_" + layer_name + "_before.csv"),
                    compaction.matrix);
        dump_matrix(ctx.csv_path("fig3f_" + variant + "_" + layer_name + "_after.csv"),
                    rearranged);

        std::printf("%s (%lld x %lld after T):\n", layer_name.c_str(),
                    static_cast<long long>(compaction.matrix.dim(0)),
                    static_cast<long long>(compaction.matrix.dim(1)));
        ascii_profile("before R", compaction.matrix);
        ascii_profile("after R (centre-out)", rearranged);
        std::printf("\n");
    }
    std::printf("(NF series written to results/fig3f_rearrange_nf.csv, full "
                "heatmaps to results/fig3f_*.csv)\n");
    return 0;
}
