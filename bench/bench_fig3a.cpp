// Fig. 3(a): inference accuracy vs crossbar size for the unpruned and
// structure-pruned (C/F, XCS, XRS; s = 0.8) VGG11 on the CIFAR10-like set.
//
// Paper shape: all curves fall as the crossbar grows; the pruned curves fall
// faster than the unpruned one (≈ −21 % unpruned vs −24…−39 % pruned at
// 64×64 relative to software).
//
// A thin SweepSpec driver (DESIGN.md §7): the scheme × size grid runs
// sharded and resumable, Monte-Carlo repeats aggregate to mean±std, and the
// aggregate CSV lands in results/fig3a_<variant>_cifar10.csv.
//
//   ./bench_fig3a [--variant=vgg11] [--sizes=16,32,64] [--backends=circuit]
//                 [--shards=N] [--resume]
#include "core/experiments.h"
#include "sweep/runner.h"
#include "util/flags.h"

#include <cstdio>

int main(int argc, char** argv) {
    using namespace xs;
    const util::Flags flags(argc, argv);
    core::ExperimentContext ctx(flags);
    const std::string variant = flags.get_string("variant", "vgg11");
    const double s = ctx.sparsity_for(10);

    sweep::SweepSpec spec = sweep::parse_sweep_spec(flags);
    spec.variants = {variant};
    spec.class_counts = {10};
    spec.prunes = {{prune::Method::kNone, 0.0},
                   {prune::Method::kChannelFilter, s},
                   {prune::Method::kXbarColumn, s},
                   {prune::Method::kXbarRow, s}};
    spec.mitigations = {{}};
    spec.sizes = ctx.sizes();
    spec.sigmas = {ctx.sigma()};
    spec.repeats = ctx.eval_repeats();

    sweep::SweepOptions opts;
    opts.shards = flags.get_int("shards", 0);
    opts.resume = flags.get_bool("resume", false);
    opts.csv_name = "fig3a_" + variant + "_cifar10.csv";
    opts.manifest_name = "fig3a_" + variant + "_cifar10_manifest.jsonl";

    std::printf("Fig 3(a): %s / CIFAR10-like, s=%.2f — accuracy vs crossbar size\n\n",
                variant.c_str(), s);
    sweep::SweepRunner runner(ctx, spec, opts);
    const sweep::SweepSummary summary = runner.run();

    std::printf("\n%s\n", sweep::accuracy_vs_size_table(summary).c_str());
    std::printf("(aggregates written to %s)\n", summary.csv_path.c_str());
    return 0;
}
