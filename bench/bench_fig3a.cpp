// Fig. 3(a): inference accuracy vs crossbar size for the unpruned and
// structure-pruned (C/F, XCS, XRS; s = 0.8) VGG11 on the CIFAR10-like set.
//
// Paper shape: all curves fall as the crossbar grows; the pruned curves fall
// faster than the unpruned one (≈ −21 % unpruned vs −24…−39 % pruned at
// 64×64 relative to software).
#include "core/experiments.h"
#include "util/csv.h"
#include "util/flags.h"

#include <cstdio>

int main(int argc, char** argv) {
    using namespace xs;
    const util::Flags flags(argc, argv);
    core::ExperimentContext ctx(flags);
    const std::string variant = flags.get_string("variant", "vgg11");
    const double s = ctx.sparsity_for(10);

    struct Scheme {
        const char* label;
        prune::Method method;
        double sparsity;
    };
    const Scheme schemes[] = {
        {"unpruned", prune::Method::kNone, 0.0},
        {"C/F", prune::Method::kChannelFilter, s},
        {"XCS", prune::Method::kXbarColumn, s},
        {"XRS", prune::Method::kXbarRow, s},
    };

    util::CsvWriter csv(ctx.csv_path("fig3a_" + variant + "_cifar10.csv"),
                        {"scheme", "xbar_size", "software_acc", "crossbar_acc",
                         "nf_mean", "tiles"});
    util::TextTable table({"scheme", "software", "16x16", "32x32", "64x64"});

    std::printf("Fig 3(a): %s / CIFAR10-like, s=%.2f — accuracy vs crossbar size\n\n",
                variant.c_str(), s);
    for (const auto& scheme : schemes) {
        auto& model = ctx.prepared(
            ctx.spec(variant, 10, scheme.method, scheme.sparsity));
        std::vector<std::string> row{scheme.label,
                                     util::fmt(model.software_accuracy) + "%"};
        for (const auto size : ctx.sizes()) {
            const auto eval = ctx.eval_config(model, scheme.method, size);
            const auto r = core::evaluate_on_crossbars(model.model,
                                                       ctx.dataset(10).test, eval);
            csv.row(scheme.label, size, model.software_accuracy, r.accuracy,
                    r.nf_mean, r.total_tiles);
            row.push_back(util::fmt(r.accuracy) + "%");
        }
        table.add_row(row);
    }
    std::printf("%s\n", table.str().c_str());
    std::printf("(series written to results/fig3a_%s_cifar10.csv)\n", variant.c_str());
    return 0;
}
