// Fig. 3(b): accuracy vs crossbar size for C/F-pruned VGG11/CIFAR10 at
// different sparsity ratios. Paper shape: lower sparsity → smaller
// non-ideal accuracy degradation.
#include "core/experiments.h"
#include "util/csv.h"
#include "util/flags.h"

#include <cstdio>
#include <vector>

int main(int argc, char** argv) {
    using namespace xs;
    const util::Flags flags(argc, argv);
    core::ExperimentContext ctx(flags);

    std::vector<double> sparsities;
    for (const auto pct : flags.get_int_list("sparsities-pct", {50, 65, 80}))
        sparsities.push_back(static_cast<double>(pct) / 100.0);

    util::CsvWriter csv(ctx.csv_path("fig3b_vgg11_cifar10_sparsity.csv"),
                        {"sparsity", "xbar_size", "software_acc", "crossbar_acc",
                         "nf_mean"});
    util::TextTable table({"sparsity", "software", "16x16", "32x32", "64x64"});

    std::printf("Fig 3(b): C/F-pruned VGG11 / CIFAR10-like — sparsity sweep\n\n");
    for (const double s : sparsities) {
        auto& model = ctx.prepared(
            ctx.spec("vgg11", 10, prune::Method::kChannelFilter, s));
        std::vector<std::string> row{util::fmt(s, 2),
                                     util::fmt(model.software_accuracy) + "%"};
        for (const auto size : ctx.sizes()) {
            const auto eval =
                ctx.eval_config(model, prune::Method::kChannelFilter, size);
            const auto r = core::evaluate_on_crossbars(model.model,
                                                       ctx.dataset(10).test, eval);
            csv.row(s, size, model.software_accuracy, r.accuracy, r.nf_mean);
            row.push_back(util::fmt(r.accuracy) + "%");
        }
        table.add_row(row);
    }
    std::printf("%s\n", table.str().c_str());
    std::printf("(series written to results/fig3b_vgg11_cifar10_sparsity.csv)\n");
    return 0;
}
