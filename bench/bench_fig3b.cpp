// Fig. 3(b): accuracy vs crossbar size for C/F-pruned VGG11/CIFAR10 at
// different sparsity ratios. Paper shape: lower sparsity → smaller
// non-ideal accuracy degradation.
//
// Thin driver over the declarative sweep engine (sweep/runner.h): the
// sparsity × size grid is a SweepSpec, so the bench inherits sharded
// execution, the resumable manifest, and the deterministic aggregate — the
// figure CSV is derived from the sweep rows instead of a hand-written loop.
#include "core/experiments.h"
#include "sweep/runner.h"
#include "util/csv.h"
#include "util/flags.h"

#include <cstdio>
#include <vector>

int main(int argc, char** argv) {
    using namespace xs;
    const util::Flags flags(argc, argv);
    core::ExperimentContext ctx(flags);

    sweep::SweepSpec spec;
    spec.prunes.clear();
    for (const auto pct : flags.get_int_list("sparsities-pct", {50, 65, 80}))
        spec.prunes.push_back({prune::Method::kChannelFilter,
                               static_cast<double>(pct) / 100.0});
    spec.sizes = ctx.sizes();
    spec.sigmas = {ctx.sigma()};
    spec.repeats = ctx.eval_repeats();

    sweep::SweepOptions opts;
    opts.csv_name = "fig3b_sweep.csv";
    opts.manifest_name = "fig3b_manifest.jsonl";
    opts.resume = flags.get_bool("resume", false);
    opts.shards = flags.get_int("shards", 0);

    std::printf("Fig 3(b): C/F-pruned VGG11 / CIFAR10-like — sparsity sweep\n\n");
    const sweep::SweepSummary summary =
        sweep::SweepRunner(ctx, spec, opts).run();

    // Historical figure CSV, one row per (sparsity, size) in grid order.
    util::CsvWriter csv(ctx.csv_path("fig3b_vgg11_cifar10_sparsity.csv"),
                        {"sparsity", "xbar_size", "software_acc", "crossbar_acc",
                         "nf_mean"});
    for (const sweep::GroupRow& row : summary.rows) {
        if (!row.complete()) continue;
        csv.row(row.cell.prune.sparsity, row.cell.xbar_size, row.software_acc,
                row.acc_mean, row.nf_mean);
    }
    csv.flush();

    std::printf("%s\n", sweep::accuracy_vs_size_table(summary).c_str());
    std::printf("(series written to results/fig3b_vgg11_cifar10_sparsity.csv)\n");
    return 0;
}
