#!/usr/bin/env bash
# Run the kernel micro-benchmarks, write machine-readable JSON so the perf
# trajectory can be tracked across PRs, and print a seed-vs-current
# comparison table (benchmarks new since the seed show "--" in the seed
# column).
#
# Usage: bench/run_bench.sh [build-dir] [output-json]
#   build-dir    defaults to ./build (configured+built if missing)
#   output-json  defaults to BENCH_micro.json in the repo root
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
out_json="${2:-$repo_root/BENCH_micro.json}"

if [[ ! -x "$build_dir/bench_micro" ]]; then
  cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release
  cmake --build "$build_dir" -j"$(nproc)" --target bench_micro
fi

"$build_dir/bench_micro" \
  --benchmark_format=json \
  --benchmark_out="$out_json" \
  --benchmark_out_format=json \
  --benchmark_repetitions="${BENCH_REPETITIONS:-1}" \
  "${@:3}"

echo "wrote $out_json"

# Seed-vs-current comparison table.
seed_json="$repo_root/bench/BENCH_micro.seed.json"
if command -v python3 >/dev/null 2>&1 && [[ -f "$seed_json" ]]; then
  python3 - "$seed_json" "$out_json" <<'PY'
import json, sys

def load(path):
    with open(path) as f:
        data = json.load(f)
    out = {}
    for b in data.get("benchmarks", []):
        if b.get("run_type", "iteration") != "iteration":
            continue
        out.setdefault(b["name"], b)  # first repetition wins
    return out

seed, cur = load(sys.argv[1]), load(sys.argv[2])

def fmt(ns):
    if ns is None:
        return "--"
    for unit, scale in (("s", 1e9), ("ms", 1e6), ("us", 1e3)):
        if ns >= scale:
            return f"{ns / scale:.3g}{unit}"
    return f"{ns:.3g}ns"

def in_ns(entry):
    if entry is None:
        return None
    scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}[entry.get("time_unit", "ns")]
    return entry["real_time"] * scale

width = max(len(n) for n in cur) if cur else 9
print(f"\n{'benchmark':<{width}}  {'seed':>9}  {'current':>9}  {'speedup':>8}")
print("-" * (width + 32))
for name, entry in cur.items():
    c = in_ns(entry)
    s = in_ns(seed.get(name))
    speedup = "--" if s is None else f"{s / c:.2f}x"
    print(f"{name:<{width}}  {fmt(s):>9}  {fmt(c):>9}  {speedup:>8}")
PY
fi
