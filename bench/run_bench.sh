#!/usr/bin/env bash
# Run the kernel micro-benchmarks and write machine-readable JSON so the
# perf trajectory can be tracked across PRs.
#
# Usage: bench/run_bench.sh [build-dir] [output-json]
#   build-dir    defaults to ./build (configured+built if missing)
#   output-json  defaults to BENCH_micro.json in the repo root
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
out_json="${2:-$repo_root/BENCH_micro.json}"

if [[ ! -x "$build_dir/bench_micro" ]]; then
  cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release
  cmake --build "$build_dir" -j"$(nproc)" --target bench_micro
fi

"$build_dir/bench_micro" \
  --benchmark_format=json \
  --benchmark_out="$out_json" \
  --benchmark_out_format=json \
  --benchmark_repetitions="${BENCH_REPETITIONS:-1}" \
  "${@:3}"

echo "wrote $out_json"
