// Table I: software accuracies of the trained model variants, and the
// crossbar-compression-rate on 32×32 crossbars.
//
// A thin SweepSpec driver (DESIGN.md §7), like the figure benches: the
// variant × scheme grid runs one nf-only sweep per class count — sharded,
// resumable, manifested — and the table's software accuracies come from the
// sweep's aggregate rows (the sweep engine resolves the same width-scaled
// trained models through the on-disk cache). Compression rates are purely
// structural — they depend only on the pruning masks and matrix shapes — so
// they are computed at the paper's full network width (--compression-width,
// default 1.0) from freshly pruned-at-init models, which reproduces the
// magnitude of the paper's numbers (C/F ≈ 19.7× at s = 0.8, XCS/XRS ≈ 4–6×).
//
//   ./bench_table1 [--variants=vgg11,vgg16] [--compression-xbar=32]
//                  [--shards=N] [--resume]
#include "core/experiments.h"
#include "map/compression.h"
#include "nn/vgg.h"
#include "prune/prune.h"
#include "sweep/runner.h"
#include "util/csv.h"
#include "util/flags.h"

#include <cstdio>
#include <map>
#include <sstream>

namespace {

double structural_compression(const std::string& variant, std::int64_t classes,
                              xs::prune::Method method, double sparsity,
                              double width, std::int64_t xbar_size) {
    using namespace xs;
    nn::VggConfig vc;
    vc.variant = variant;
    vc.num_classes = classes;
    vc.width = width;
    util::Rng rng(1234);
    nn::Sequential model = nn::build_vgg(vc, rng);
    prune::PruneConfig pc;
    pc.method = method;
    pc.sparsity = sparsity;
    pc.segment_size = xbar_size;
    prune::prune_at_init(model, pc);
    return map::count_crossbars(model, method, xbar_size).compression_rate();
}

}  // namespace

int main(int argc, char** argv) {
    using namespace xs;
    const util::Flags flags(argc, argv);
    core::ExperimentContext ctx(flags);
    const double comp_width = flags.get_double("compression-width", 1.0);
    const std::int64_t comp_xbar = flags.get_int("compression-xbar", 32);

    util::CsvWriter csv(ctx.csv_path("table1.csv"),
                        {"dataset", "network", "scheme", "sparsity",
                         "software_acc", "compression_rate"});

    std::vector<std::string> variants;
    {
        std::stringstream ss(flags.get_string("variants", "vgg11,vgg16"));
        std::string item;
        while (std::getline(ss, item, ','))
            if (!item.empty()) variants.push_back(item);
    }

    for (const std::int64_t classes : {10, 100}) {
        const double s = ctx.sparsity_for(classes);
        std::printf("Table I — CIFAR%lld-like: software accuracy  ||  "
                    "crossbar-compression-rate (%lldx%lld, width %.2f)\n\n",
                    static_cast<long long>(classes),
                    static_cast<long long>(comp_xbar),
                    static_cast<long long>(comp_xbar), comp_width);

        struct Scheme {
            const char* label;
            prune::Method method;
        };
        std::vector<Scheme> schemes = {{"unpruned", prune::Method::kNone},
                                       {"C/F", prune::Method::kChannelFilter}};
        if (classes == 10) {
            schemes.push_back({"XCS", prune::Method::kXbarColumn});
            schemes.push_back({"XRS", prune::Method::kXbarRow});
        }

        // One nf-only sweep over variant × scheme: no inference pass, no
        // device variation — each cell deterministically prepares (or loads)
        // its trained model and reports its software accuracy.
        sweep::SweepSpec spec;
        spec.variants = variants;
        spec.class_counts = {classes};
        spec.prunes.clear();
        for (const auto& scheme : schemes)
            spec.prunes.push_back(
                {scheme.method,
                 scheme.method == prune::Method::kNone ? 0.0 : s});
        spec.sizes = {comp_xbar};
        spec.sigmas = {ctx.sigma()};
        spec.repeats = 1;
        spec.nf_only = true;

        sweep::SweepOptions opts;
        opts.shards = flags.get_int("shards", 0);
        opts.resume = flags.get_bool("resume", false);
        opts.csv_name = "table1_c" + std::to_string(classes) + "_sweep.csv";
        opts.manifest_name =
            "table1_c" + std::to_string(classes) + "_manifest.jsonl";
        const sweep::SweepSummary summary =
            sweep::SweepRunner(ctx, spec, opts).run();

        // (variant, scheme) → sweep row, keyed the way the table iterates.
        std::map<std::pair<std::string, prune::Method>, const sweep::GroupRow*>
            rows;
        for (const sweep::GroupRow& row : summary.rows)
            if (row.complete())
                rows[{row.cell.variant, row.cell.prune.method}] = &row;

        std::vector<std::string> header{"network"};
        for (const auto& scheme : schemes)
            header.push_back(std::string(scheme.label) +
                             (scheme.method == prune::Method::kNone
                                  ? ""
                                  : " (s=" + util::fmt(s, 1) + ")"));
        util::TextTable table(header);

        for (const std::string& variant : variants) {
            std::vector<std::string> row{variant};
            for (const auto& scheme : schemes) {
                const double sp =
                    scheme.method == prune::Method::kNone ? 0.0 : s;
                const auto it = rows.find({variant, scheme.method});
                if (it == rows.end()) {  // interrupted sweep (--max-cells)
                    row.push_back("--");
                    continue;
                }
                std::string cell = util::fmt(it->second->software_acc) + "%";
                double comp = 0.0;
                if (scheme.method != prune::Method::kNone) {
                    comp = structural_compression(variant, classes,
                                                  scheme.method, sp,
                                                  comp_width, comp_xbar);
                    cell += " || " + util::fmt(comp) + "x";
                } else {
                    cell += " || --";
                }
                csv.row(classes, variant, scheme.label, sp,
                        it->second->software_acc, comp);
                row.push_back(cell);
            }
            table.add_row(row);
        }
        std::printf("%s\n", table.str().c_str());
    }
    std::printf("(rows written to results/table1.csv)\n");
    return 0;
}
