// Kernel micro-benchmarks (google-benchmark): GEMM, im2col, the crossbar
// circuit solver, tile degradation, dataset synthesis, and the end-to-end
// inference/evaluation paths — the kernels whose cost determines experiment
// time.
#include "core/evaluator.h"
#include "data/synthetic.h"
#include "nn/infer.h"
#include "nn/trainer.h"
#include "nn/vgg.h"
#include "tensor/gemm.h"
#include "tensor/im2col.h"
#include "tensor/ops.h"
#include "xbar/degrade.h"
#include "xbar/mapper.h"
#include "xbar/solver.h"

#include <benchmark/benchmark.h>

namespace {

using namespace xs;

void BM_Gemm(benchmark::State& state) {
    const auto n = state.range(0);
    util::Rng rng(1);
    tensor::Tensor a({n, n}), b({n, n}), c({n, n});
    tensor::fill_normal(a, rng, 0.0f, 1.0f);
    tensor::fill_normal(b, rng, 0.0f, 1.0f);
    for (auto _ : state) {
        tensor::gemm(n, n, n, 1.0f, a.data(), n, b.data(), n, 0.0f, c.data(), n);
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

// Pruned-weight inference: A is 90 % zeros, exercising the row-sparse path.
void BM_GemmSparse(benchmark::State& state) {
    const auto n = state.range(0);
    util::Rng rng(1);
    tensor::Tensor a({n, n}), b({n, n}), c({n, n});
    tensor::fill_normal(a, rng, 0.0f, 1.0f);
    tensor::fill_normal(b, rng, 0.0f, 1.0f);
    for (std::int64_t i = 0; i < a.numel(); ++i)
        if (rng.uniform() < 0.9) a[i] = 0.0f;
    for (auto _ : state) {
        tensor::gemm(n, n, n, 1.0f, a.data(), n, b.data(), n, 0.0f, c.data(), n);
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmSparse)->Arg(128)->Arg(256);

void BM_Im2col(benchmark::State& state) {
    const std::int64_t c = state.range(0), s = 32, k = 3;
    util::Rng rng(2);
    tensor::Tensor x({c, s, s});
    tensor::fill_normal(x, rng, 0.0f, 1.0f);
    tensor::Tensor col({c * k * k, s * s});
    for (auto _ : state) {
        tensor::im2col(x.data(), c, s, s, k, k, 1, 1, col.data());
        benchmark::DoNotOptimize(col.data());
    }
}
BENCHMARK(BM_Im2col)->Arg(16)->Arg(64);

void BM_CircuitSolve(benchmark::State& state) {
    const auto size = state.range(0);
    xbar::CrossbarConfig config;
    config.size = size;
    util::Rng rng(3);
    tensor::Tensor g({size, size});
    for (std::int64_t i = 0; i < g.numel(); ++i)
        g[i] = static_cast<float>(
            rng.uniform(config.device.g_min(), config.device.g_max()));
    const std::vector<double> v(static_cast<std::size_t>(size), 0.25);
    const xbar::CircuitSolver solver(config);
    for (auto _ : state) {
        const auto sol = solver.solve(g, v);
        benchmark::DoNotOptimize(sol.currents.data());
    }
}
BENCHMARK(BM_CircuitSolve)->Arg(16)->Arg(32)->Arg(64);

// A stream of distinct random conductance tiles, mimicking the pipeline's
// tile sequence (each tile's variation/fault draw differs).
std::vector<tensor::Tensor> random_tiles(std::int64_t size, std::size_t count,
                                         std::uint64_t seed) {
    xbar::DeviceConfig device;
    util::Rng rng(seed);
    std::vector<tensor::Tensor> tiles;
    for (std::size_t t = 0; t < count; ++t) {
        tensor::Tensor g({size, size});
        for (std::int64_t i = 0; i < g.numel(); ++i)
            g[i] = static_cast<float>(
                rng.uniform(device.g_min(), device.g_max()));
        tiles.push_back(std::move(g));
    }
    return tiles;
}

// The zero-allocation pipeline path: caller-owned workspace, factored
// sweeps, each solve warm-started from the previous (different) tile's
// converged voltages — the pattern the evaluator's tile loop produces.
void BM_CircuitSolveWorkspace(benchmark::State& state) {
    const auto size = state.range(0);
    xbar::CrossbarConfig config;
    config.size = size;
    const auto tiles = random_tiles(size, 16, 3);
    const std::vector<double> v(static_cast<std::size_t>(size), 0.25);
    const xbar::CircuitSolver solver(config);
    xbar::SolveWorkspace ws;
    std::size_t t = 0;
    for (auto _ : state) {
        solver.solve(tiles[t], v.data(), ws);
        t = (t + 1) % tiles.size();
        benchmark::DoNotOptimize(ws.currents.data());
    }
}
BENCHMARK(BM_CircuitSolveWorkspace)->Arg(16)->Arg(32)->Arg(64);

void BM_DenseMnaSolve(benchmark::State& state) {
    const auto size = state.range(0);
    xbar::CrossbarConfig config;
    config.size = size;
    util::Rng rng(4);
    tensor::Tensor g({size, size});
    for (std::int64_t i = 0; i < g.numel(); ++i)
        g[i] = static_cast<float>(
            rng.uniform(config.device.g_min(), config.device.g_max()));
    const std::vector<double> v(static_cast<std::size_t>(size), 0.25);
    const xbar::CircuitSolver solver(config);
    for (auto _ : state) {
        const auto sol = solver.solve_dense(g, v);
        benchmark::DoNotOptimize(sol.currents.data());
    }
}
BENCHMARK(BM_DenseMnaSolve)->Arg(8)->Arg(16);

void BM_DegradeTile(benchmark::State& state) {
    const auto size = state.range(0);
    xbar::CrossbarConfig config;
    config.size = size;
    util::Rng rng(5);
    tensor::Tensor g({size, size});
    for (std::int64_t i = 0; i < g.numel(); ++i)
        g[i] = static_cast<float>(
            rng.uniform(config.device.g_min(), config.device.g_max()));
    for (auto _ : state) {
        const auto r = xbar::degrade_tile(g, config);
        benchmark::DoNotOptimize(r.g_eff.data());
    }
}
BENCHMARK(BM_DegradeTile)->Arg(16)->Arg(32)->Arg(64);

void BM_DegradeTileWorkspace(benchmark::State& state) {
    const auto size = state.range(0);
    xbar::CrossbarConfig config;
    config.size = size;
    const auto tiles = random_tiles(size, 16, 5);
    const xbar::CircuitSolver solver(config);
    xbar::DegradeWorkspace ws;
    xbar::TileDegradeResult out;
    std::size_t t = 0;
    for (auto _ : state) {
        xbar::degrade_tile(tiles[t], solver, ws, out);
        t = (t + 1) % tiles.size();
        benchmark::DoNotOptimize(out.g_eff.data());
    }
}
BENCHMARK(BM_DegradeTileWorkspace)->Arg(16)->Arg(32)->Arg(64);

void BM_DegradeMacMatrix(benchmark::State& state) {
    const auto size = state.range(0);
    util::Rng rng(6);
    tensor::Tensor m({256, 128});
    tensor::fill_normal(m, rng, 0.0f, 0.1f);
    core::EvalConfig config;
    config.xbar.size = size;
    for (auto _ : state) {
        core::DegradeStats stats;
        util::Rng vr(7);
        const auto out = core::degrade_mac_matrix(m, config, 0.4, vr, stats);
        benchmark::DoNotOptimize(out.data());
    }
}
BENCHMARK(BM_DegradeMacMatrix)->Arg(32)->Arg(64);

// Same matrix through the bucket-calibrated fast backend (DESIGN.md §8).
// Each iteration rebuilds the pipeline, but the calibration cache is shared
// process-wide per config, so bucket solves run only in the first
// iteration: the gated number is the amortized steady state a sweep sees
// (mean + α-fold per tile), not calibration cost.
void BM_DegradeMacMatrixFast(benchmark::State& state) {
    const auto size = state.range(0);
    util::Rng rng(6);
    tensor::Tensor m({256, 128});
    tensor::fill_normal(m, rng, 0.0f, 0.1f);
    core::EvalConfig config;
    config.xbar.size = size;
    config.backend = xbar::BackendKind::kFast;
    for (auto _ : state) {
        core::DegradeStats stats;
        util::Rng vr(7);
        const auto out = core::degrade_mac_matrix(m, config, 0.4, vr, stats);
        benchmark::DoNotOptimize(out.data());
    }
}
BENCHMARK(BM_DegradeMacMatrixFast)->Arg(32)->Arg(64);

void BM_SyntheticGeneration(benchmark::State& state) {
    data::SyntheticSpec spec = data::cifar10_like(9);
    for (auto _ : state) {
        const auto d = data::generate(spec, state.range(0));
        benchmark::DoNotOptimize(d.images.data());
    }
}
BENCHMARK(BM_SyntheticGeneration)->Arg(64);

// End-to-end eval-mode forward of a VGG-style batch through the fused
// zero-allocation inference engine (DESIGN.md §6). The argument is the
// channel-width multiplier in 1/16ths (4 → width 0.25).
void BM_Forward(benchmark::State& state) {
    nn::VggConfig vc;
    vc.width = static_cast<double>(state.range(0)) / 16.0;
    util::Rng rng(20);
    nn::Sequential model = nn::build_vgg(vc, rng);
    nn::InferenceEngine engine(model);
    tensor::Tensor x({16, 3, 32, 32});
    tensor::fill_normal(x, rng, 0.0f, 1.0f);
    engine.forward(x);  // warm-up: arenas, scratch, pack buffers
    for (auto _ : state) {
        const tensor::Tensor& y = engine.forward(x);
        benchmark::DoNotOptimize(y.data());
    }
    state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_Forward)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

// The pre-engine reference path (allocating Layer::forward per layer,
// unfused BN/ReLU): the baseline BM_Forward is measured against.
void BM_ForwardReference(benchmark::State& state) {
    nn::VggConfig vc;
    vc.width = static_cast<double>(state.range(0)) / 16.0;
    util::Rng rng(20);
    nn::Sequential model = nn::build_vgg(vc, rng);
    tensor::Tensor x({16, 3, 32, 32});
    tensor::fill_normal(x, rng, 0.0f, 1.0f);
    for (auto _ : state) {
        const tensor::Tensor y = model.forward(x, /*training=*/false);
        benchmark::DoNotOptimize(y.data());
    }
    state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_ForwardReference)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

// Full Monte-Carlo crossbar evaluation at `repeats` repeats: the workload
// whose cost dominates sweep time. Shared by the three variants below.
void run_evaluate_bench(benchmark::State& state, bool repeat_batch) {
    nn::VggConfig vc;
    vc.width = 0.0625;
    util::Rng rng(21);
    nn::Sequential model = nn::build_vgg(vc, rng);
    nn::Dataset test;
    test.num_classes = 10;
    test.images = tensor::Tensor({32, 3, 32, 32});
    tensor::fill_normal(test.images, rng, 0.0f, 1.0f);
    test.labels.resize(32);
    for (std::size_t i = 0; i < 32; ++i)
        test.labels[i] = static_cast<std::int64_t>(i % 10);
    core::EvalConfig config;
    config.xbar.size = 32;
    config.repeats = state.range(0);
    config.repeat_batch = repeat_batch;
    for (auto _ : state) {
        const core::EvalResult r =
            core::evaluate_on_crossbars(model, test, config);
        benchmark::DoNotOptimize(r.accuracy);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}

// The default path (repeat_batch defaults on, DESIGN.md §12): every
// repeat's W′ compiles into a packed engine instance, circuit solves batch
// across repeat lanes, and inference runs all repeats in one pass.
// Argument = number of repeats. cpu_time counts the calling thread only —
// the group pipeline compiles group g+1 on a producer thread while the
// main thread runs batched inference on group g, so wall is the number to
// compare across variants.
void BM_EvaluateOnCrossbars(benchmark::State& state) {
    run_evaluate_bench(state, /*repeat_batch=*/true);
}
BENCHMARK(BM_EvaluateOnCrossbars)->Arg(4)->Unit(benchmark::kMillisecond);

// The explicitly-batched variant at both a full group (4 repeats = one
// solver-lane group) and two pipelined groups (8): the scaling guard for
// the compile-once/forward-batched path.
void BM_EvaluateOnCrossbarsBatched(benchmark::State& state) {
    run_evaluate_bench(state, /*repeat_batch=*/true);
}
BENCHMARK(BM_EvaluateOnCrossbarsBatched)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

// The legacy sequential repeat loop (degrade → refresh → evaluate per
// repeat, degrade overlapped on a producer thread) — the A/B reference the
// batched path is gated ≥2x against. Same workload as above.
void BM_EvaluateOnCrossbarsUnbatched(benchmark::State& state) {
    run_evaluate_bench(state, /*repeat_batch=*/false);
}
BENCHMARK(BM_EvaluateOnCrossbarsUnbatched)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_ConductanceMapping(benchmark::State& state) {
    xbar::DeviceConfig device;
    util::Rng rng(10);
    tensor::Tensor w({64, 64});
    tensor::fill_normal(w, rng, 0.0f, 0.1f);
    const xbar::ConductanceMapper mapper(device, 0.4);
    tensor::Tensor gp, gn;
    for (auto _ : state) {
        mapper.to_differential(w, gp, gn);
        const auto back = mapper.from_differential(gp, gn);
        benchmark::DoNotOptimize(back.data());
    }
}
BENCHMARK(BM_ConductanceMapping);

}  // namespace
