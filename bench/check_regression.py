#!/usr/bin/env python3
"""Bench regression gate: fail when any micro-benchmark got slower than the
recorded baseline by more than the tolerance.

Usage:
    check_regression.py CURRENT.json [CURRENT2.json ...] --baseline BASELINE.json
                        [--tolerance PCT] [--metric cpu_time|real_time]

Each CURRENT.json is a google-benchmark JSON report of the build under test;
several reports combine by per-benchmark minimum, which is how ci.sh retries
a failing gate: rerunning the suite and re-gating on the min of all runs
rejects transient machine noise while a real regression stays slow in every
run.
BASELINE.json records the expected current performance (bench/
BENCH_micro.baseline.json, regenerated on the reference machine whenever a
PR intentionally shifts performance: run bench/run_bench.sh and copy the
matching entries, or rerun the gate command from ci.sh and copy its output
JSON). The baseline is machine-specific — refresh it when the reference
hardware changes.

Exit status: 0 when no benchmark regresses more than the tolerance,
1 otherwise. Benchmarks new since the baseline pass with a note; benchmarks
missing from the current run are reported (a silently dropped benchmark
could hide a regression) but do not fail the gate.
"""

import argparse
import json
import sys

UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load(path, metric):
    """name -> time in ns; the min over 'iteration' entries (repetitions)
    per benchmark — the noise-robust statistic for a timing gate."""
    with open(path) as f:
        data = json.load(f)
    out = {}
    for b in data.get("benchmarks", []):
        if b.get("run_type", "iteration") != "iteration":
            continue
        scale = UNIT_NS[b.get("time_unit", "ns")]
        name = b["run_name"] if "run_name" in b else b["name"]
        ns = b[metric] * scale
        out[name] = min(out.get(name, ns), ns)
    return out


def fmt(ns):
    for unit, scale in (("s", 1e9), ("ms", 1e6), ("us", 1e3)):
        if ns >= scale:
            return f"{ns / scale:.3g}{unit}"
    return f"{ns:.3g}ns"


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("current", nargs="+",
                    help="current-run reports; several combine by min")
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--tolerance", type=float, default=15.0,
                    help="max allowed regression in percent (default 15)")
    ap.add_argument("--metric", default="cpu_time",
                    choices=("cpu_time", "real_time"),
                    help="cpu_time (default; steadier on shared machines) "
                         "or real_time")
    args = ap.parse_args()

    current = {}
    for path in args.current:
        for name, ns in load(path, args.metric).items():
            current[name] = min(current.get(name, ns), ns)
    baseline = load(args.baseline, args.metric)

    regressions, improvements, new = [], [], []
    width = max((len(n) for n in current), default=9)
    print(f"{'benchmark':<{width}}  {'baseline':>9}  {'current':>9}  {'delta':>8}")
    print("-" * (width + 32))
    for name, cur in current.items():
        base = baseline.get(name)
        if base is None:
            new.append(name)
            print(f"{name:<{width}}  {'--':>9}  {fmt(cur):>9}  {'new':>8}")
            continue
        delta = (cur / base - 1.0) * 100.0
        print(f"{name:<{width}}  {fmt(base):>9}  {fmt(cur):>9}  {delta:>+7.1f}%")
        if delta > args.tolerance:
            regressions.append((name, delta))
        elif delta < -args.tolerance:
            improvements.append((name, delta))

    missing = sorted(set(baseline) - set(current))
    if missing:
        print(f"\nWARNING: in baseline but not measured: {', '.join(missing)}")
    if new:
        print(f"\nnote: new since baseline (no gate): {', '.join(new)}")
    if improvements:
        names = ", ".join(f"{n} ({d:+.1f}%)" for n, d in improvements)
        print(f"note: faster than baseline — consider refreshing it: {names}")

    if regressions:
        print(f"\nFAIL: regression beyond {args.tolerance:.0f}% "
              f"({args.metric}):", file=sys.stderr)
        for name, delta in regressions:
            print(f"  {name}: {delta:+.1f}%", file=sys.stderr)
        return 1
    print(f"\nbench gate OK ({args.metric}, tolerance {args.tolerance:.0f}%)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
