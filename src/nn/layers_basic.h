// Stateless / lightweight layers: ReLU, MaxPool2d, AvgPool2d, Flatten,
// Dropout.
#pragma once

#include "nn/layer.h"
#include "util/rng.h"

#include <vector>

namespace xs::nn {

class ReLU : public Layer {
public:
    Tensor forward(const Tensor& x, bool training) override;
    Tensor backward(const Tensor& dy) override;
    std::string type() const override { return "ReLU"; }

private:
    Tensor input_;
};

// Non-overlapping max pooling (kernel == stride), the VGG configuration.
class MaxPool2d : public Layer {
public:
    explicit MaxPool2d(std::int64_t kernel);

    Tensor forward(const Tensor& x, bool training) override;
    Tensor backward(const Tensor& dy) override;
    std::string type() const override { return "MaxPool2d"; }
    std::string describe() const override;
    std::int64_t kernel() const { return kernel_; }

private:
    std::int64_t kernel_;
    tensor::Shape in_shape_;
    std::vector<std::int64_t> argmax_;  // flat input index per output element
};

class AvgPool2d : public Layer {
public:
    explicit AvgPool2d(std::int64_t kernel);

    Tensor forward(const Tensor& x, bool training) override;
    Tensor backward(const Tensor& dy) override;
    std::string type() const override { return "AvgPool2d"; }
    std::string describe() const override;
    std::int64_t kernel() const { return kernel_; }

private:
    std::int64_t kernel_;
    tensor::Shape in_shape_;
};

// (N, C, H, W) -> (N, C*H*W)
class Flatten : public Layer {
public:
    Tensor forward(const Tensor& x, bool training) override;
    Tensor backward(const Tensor& dy) override;
    std::string type() const override { return "Flatten"; }

private:
    tensor::Shape in_shape_;
};

// Inverted dropout: scales kept activations by 1/(1-p) during training so
// inference is a no-op.
class Dropout : public Layer {
public:
    Dropout(float p, util::Rng& rng);

    Tensor forward(const Tensor& x, bool training) override;
    Tensor backward(const Tensor& dy) override;
    std::string type() const override { return "Dropout"; }
    std::string describe() const override;
    // Inverted dropout: inference is exactly the identity.
    bool identity_at_inference() const override { return true; }

private:
    float p_;
    util::Rng rng_;
    Tensor mask_;
    bool mask_valid_ = false;
};

}  // namespace xs::nn
