#include "nn/loss.h"

#include "tensor/ops.h"

#include <algorithm>
#include <cmath>

namespace xs::nn {

using tensor::check;
using tensor::Tensor;

Tensor softmax(const Tensor& logits) {
    check(logits.rank() == 2, "softmax expects (N, classes)");
    const std::int64_t n = logits.dim(0), k = logits.dim(1);
    Tensor out(logits.shape());
    for (std::int64_t i = 0; i < n; ++i) {
        const float* row = logits.data() + i * k;
        float* orow = out.data() + i * k;
        float m = row[0];
        for (std::int64_t j = 1; j < k; ++j) m = std::max(m, row[j]);
        double z = 0.0;
        for (std::int64_t j = 0; j < k; ++j) {
            orow[j] = std::exp(row[j] - m);
            z += orow[j];
        }
        const float inv_z = static_cast<float>(1.0 / z);
        for (std::int64_t j = 0; j < k; ++j) orow[j] *= inv_z;
    }
    return out;
}

LossResult softmax_cross_entropy(const Tensor& logits,
                                 const std::vector<std::int64_t>& labels) {
    check(logits.rank() == 2, "softmax_cross_entropy expects (N, classes)");
    const std::int64_t n = logits.dim(0), k = logits.dim(1);
    check(static_cast<std::int64_t>(labels.size()) == n,
          "softmax_cross_entropy: label count mismatch");

    LossResult result;
    result.grad = softmax(logits);
    const float inv_n = 1.0f / static_cast<float>(n);

    double loss = 0.0;
    for (std::int64_t i = 0; i < n; ++i) {
        const std::int64_t y = labels[static_cast<std::size_t>(i)];
        check(y >= 0 && y < k, "softmax_cross_entropy: label out of range");
        float* grow = result.grad.data() + i * k;
        // top-1 before mutating the row
        std::int64_t best = 0;
        for (std::int64_t j = 1; j < k; ++j)
            if (grow[j] > grow[best]) best = j;
        if (best == y) ++result.correct;

        const double p = std::max(static_cast<double>(grow[y]), 1e-12);
        loss -= std::log(p);
        grow[y] -= 1.0f;
        for (std::int64_t j = 0; j < k; ++j) grow[j] *= inv_n;
    }
    result.loss = loss / static_cast<double>(n);
    return result;
}

}  // namespace xs::nn
