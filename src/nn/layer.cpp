#include "nn/layer.h"

// Currently the Layer base is header-only; this TU anchors the vtable.

namespace xs::nn {}
