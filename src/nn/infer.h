// Zero-allocation inference engine over a Sequential layer stack
// (DESIGN.md §6).
//
// The training-oriented Layer::forward path allocates a fresh output tensor
// per layer and, pre-guard, cached a deep copy of every input. For the
// Monte-Carlo evaluation loop — thousands of eval-mode forward passes over
// the same network — that cost dominates once the crossbar solve is fast.
// The engine instead compiles the layer stack into a step plan once and
// streams activations through a two-buffer ping-pong arena:
//
//  * Conv2d (+ following BatchNorm2d, + following ReLU) become ONE step:
//    the BN affine is folded into the conv weights/bias at refresh() time,
//    the whole batch runs as a single tiled GEMM against weights packed
//    once per refresh, and the bias+ReLU epilogue runs on each GEMM tile
//    while it is hot — eliminating two full passes over every activation
//    map plus the per-call weight packing.
//  * im2col writes the packed-B panel layout directly (im2col_pack_b), so
//    the GEMM's column-packing pass disappears; the panel buffer grows
//    once and is reused across batches, layers, and refresh cycles.
//  * Conv activations stay channel-major ("CN": channels × batch·H·W)
//    through the conv trunk, so batched GEMM outputs need no reshuffle;
//    Flatten transposes back to batch-major once, on the smallest map.
//  * Linear (+ following ReLU) is fused the same way.
//  * Dropout (identity at inference) is skipped.
//
// Weight swapping: refresh(mac_overrides) rebuilds the folded weights from
// externally supplied MAC matrices (the evaluator's degraded W′) WITHOUT
// touching the model — folding happens after the swap, per refresh, so BN
// folding composes correctly with per-repeat degraded weights.
//
// After a warm-up forward, steady-state forwards of the same batch shape
// perform zero heap allocations (pinned by tests/nn_infer_test.cpp).
#pragma once

#include "nn/sequential.h"
#include "tensor/gemm.h"
#include "tensor/tensor.h"

#include <cstdint>
#include <vector>

namespace xs::nn {

class BatchNorm2d;
class Conv2d;
class Linear;

// One compiled weight set for an InferenceEngine: per mappable layer the
// folded weights (BN composed in at compile time), folded bias, and — for
// conv steps — the GEMM panel-packed A matrix. Instances are engine-shaped
// but engine-independent storage, so the Monte-Carlo evaluator can hold R
// degraded instances and run them all through one engine (forward_batched)
// instead of refresh()ing between repeats. Storage is reused across
// recompiles of the same model shape.
struct CompiledInstance {
    struct Slot {
        Tensor w;  // folded weights: conv (Cout × patch), linear (in × out)
        Tensor b;  // folded bias; empty when the step has no epilogue
        tensor::PackedGemmA wpack;  // conv only: panel-packed w
    };
    std::vector<Slot> slots;  // ordered like map::mappable_layers(model)
};

class InferenceEngine {
public:
    // Compiles the plan and folds the current parameters (refresh()).
    // The engine keeps pointers into `model`; it must outlive the engine
    // and its layer structure must not change (weights may).
    explicit InferenceEngine(Sequential& model);

    // Non-copyable (owns arenas keyed to the plan), movable.
    InferenceEngine(const InferenceEngine&) = delete;
    InferenceEngine& operator=(const InferenceEngine&) = delete;
    InferenceEngine(InferenceEngine&&) = default;
    InferenceEngine& operator=(InferenceEngine&&) = default;

    // Rebuild folded weights/biases from the model's current parameters.
    // Call after any parameter mutation (training step, weight injection).
    void refresh();

    // Same, but each mappable (Conv2d/Linear) layer takes its MAC matrix
    // (rows = inputs × cols = outputs, the map::extract_matrix orientation)
    // from `mac_overrides`, ordered like map::mappable_layers(model); null
    // entries fall back to the layer's own parameters. This is how degraded
    // crossbar weights W′ are evaluated without mutating the model.
    void refresh(const std::vector<const tensor::Tensor*>& mac_overrides);

    // Eval-mode forward. The returned reference points at an engine-owned
    // buffer and stays valid until the next forward call on this engine.
    const Tensor& forward(const Tensor& x);
    // Zero-copy variant reading the batch straight from caller storage
    // (e.g. a contiguous slice of a dataset tensor).
    const Tensor& forward(const float* x, const tensor::Shape& shape);

    // Compile one mappable layer's folded weight set into `out` (slot
    // storage reused when already shaped). `mac_override` follows the same
    // contract as refresh(): a (inputs × outputs) MAC matrix, or null for
    // the layer's own parameters. Folding runs in double and the conv pack
    // is rebuilt, exactly like refresh_step — an instance compiled from the
    // same MAC matrices is bit-identical to a refresh()ed engine.
    void compile_instance_slot(std::size_t slot,
                               const tensor::Tensor* mac_override,
                               CompiledInstance& out) const;
    // All slots at once; `mac_overrides` empty means model parameters.
    void compile_instance(
        const std::vector<const tensor::Tensor*>& mac_overrides,
        CompiledInstance& out) const;

    // Evaluate `count` compiled instances over ONE input batch in a single
    // pass: lanes share the input (and the first conv's im2col pack) and
    // produce a lane-major stacked output — rows [r·n, (r+1)·n) are
    // instance r's result, bit-identical to refresh()+forward() per lane.
    // The returned reference points at an engine-owned buffer and stays
    // valid until the next forward/forward_batched call on this engine.
    // Steady state performs no heap allocation (kGeneric fallback steps
    // excepted).
    const Tensor& forward_batched(const float* x, const tensor::Shape& shape,
                                  const CompiledInstance* const* instances,
                                  std::size_t count);

    // Number of mappable layers the plan found (refresh override slots).
    std::size_t mappable_count() const { return mappable_count_; }

private:
    struct Step {
        enum class Kind {
            kConv,      // Conv2d [+ folded BN] [+ fused ReLU]
            kLinear,    // Linear [+ fused ReLU]
            kBatchNorm, // standalone BatchNorm2d (eval statistics)
            kReLU,      // standalone ReLU (in-place on the arena)
            kMaxPool,
            kAvgPool,
            kFlatten,
            kGeneric,   // fallback: Layer::forward(x, false) — allocates
        };
        Kind kind;
        Layer* layer = nullptr;
        BatchNorm2d* bn = nullptr;  // folded into kConv when non-null
        bool relu = false;          // fused ReLU epilogue
        bool epilogue = false;      // bias add and/or ReLU needed
        // Geometry captured at plan time (layer structure is immutable).
        std::int64_t cin = 0, cout = 0, k = 0, stride = 0, pad = 0, patch = 0;
        std::int64_t in_features = 0, out_features = 0;
        std::int64_t pool_kernel = 0;
        Tensor w;  // folded weights: kConv (Cout × patch), kLinear (in × out)
        Tensor b;  // folded bias (Cout) / (out); empty when !epilogue
        // Conv weights packed once per refresh for the batched tile GEMM —
        // the per-call sparsity scan and A-packing drop out of the batch
        // loop (pruned layers stay on the zero-skip path instead).
        tensor::PackedGemmA wpack;
    };

    void build_plan(Sequential& model);
    // Shared folding kernel: refresh_step writes into the step's own
    // buffers, compile_instance_slot into an instance slot.
    void fold_step(const Step& step, const Tensor* mac_override, Tensor& w,
                   Tensor& b, tensor::PackedGemmA& wpack) const;
    void refresh_step(Step& step, const Tensor* mac_override);

    const Tensor& run(const float* x, const tensor::Shape& shape);

    std::vector<Step> steps_;
    std::vector<std::size_t> mappable_steps_;  // steps_ indices of mappables
    std::size_t mappable_count_ = 0;
    // Activation ping-pong buffers and the packed im2col panel store live in
    // a per-thread scratch arena shared by every engine on the thread (see
    // engine_scratch() in infer.cpp): evaluators build a fresh engine per
    // Monte-Carlo evaluation, and per-engine buffers would hand their multi-MB
    // allocations back to the OS each time — repaying page faults and zero
    // fills on every eval. Only the final output is engine-owned (out_), so
    // the documented "valid until the next forward on this engine" contract
    // survives other engines running on the same thread in between.
    Tensor out_;               // last forward's output (engine-owned copy)
    tensor::Shape cur_shape_;  // logical NCHW shape of the current buffer
};

}  // namespace xs::nn
