#include "nn/conv2d.h"

#include "tensor/gemm.h"
#include "tensor/im2col.h"
#include "tensor/ops.h"
#include "util/parallel.h"

#include <sstream>

namespace xs::nn {

using tensor::check;
using tensor::shape_to_string;

Conv2d::Conv2d(std::int64_t in_channels, std::int64_t out_channels,
               std::int64_t kernel, std::int64_t stride, std::int64_t pad,
               util::Rng& rng, bool bias)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      pad_(pad),
      has_bias_(bias) {
    check(in_channels > 0 && out_channels > 0 && kernel > 0 && stride > 0,
          "Conv2d: dimensions must be positive");
    weight_ = Param("weight", Tensor({out_channels, in_channels, kernel, kernel}));
    tensor::fill_kaiming(weight_.value, rng, in_channels * kernel * kernel);
    if (has_bias_) bias_ = Param("bias", Tensor({out_channels}));
}

Tensor Conv2d::forward(const Tensor& x, bool training) {
    if (x.rank() != 4 || x.dim(1) != in_channels_)  // lazy message: hot path
        check(false, "Conv2d " + name() + ": bad input shape " +
                         shape_to_string(x.shape()));
    const std::int64_t n = x.dim(0), h = x.dim(2), w = x.dim(3);
    out_h_ = tensor::conv_out_size(h, kernel_, stride_, pad_);
    out_w_ = tensor::conv_out_size(w, kernel_, stride_, pad_);
    const std::int64_t patch = in_channels_ * kernel_ * kernel_;
    const std::int64_t out_hw = out_h_ * out_w_;

    Tensor y({n, out_channels_, out_h_, out_w_});
    if (training) {
        input_ = x;
        // Backward needs every image's column buffer; reuse the existing
        // tensors' storage instead of reallocating them each batch.
        if (cols_.size() < static_cast<std::size_t>(n))
            cols_.resize(static_cast<std::size_t>(n));
        // Images are independent: parallelize the batch across workers.
        util::parallel_for(0, static_cast<std::size_t>(n), [&](std::size_t idx) {
            const auto i = static_cast<std::int64_t>(idx);
            Tensor& col = cols_[idx];
            col.reset(patch, out_hw);
            tensor::im2col(x.data() + i * in_channels_ * h * w, in_channels_, h,
                           w, kernel_, kernel_, stride_, pad_, col.data());
            // y_i (Cout × out_hw) = W (Cout × patch) · col (patch × out_hw)
            tensor::gemm_serial(out_channels_, out_hw, patch, 1.0f,
                                weight_.value.data(), patch, col.data(), out_hw,
                                0.0f, y.data() + i * out_channels_ * out_hw,
                                out_hw);
        });
    } else {
        // Eval mode: one im2col scratch per worker slot, shared by all the
        // images that worker processes (no per-image buffers, no input copy).
        if (eval_cols_.size() < util::worker_count())
            eval_cols_.resize(util::worker_count());
        util::parallel_for_workers(
            0, static_cast<std::size_t>(n),
            [&](std::size_t wkr, std::size_t lo, std::size_t hi) {
                Tensor& col = eval_cols_[wkr];
                col.reset(patch, out_hw);
                for (std::size_t idx = lo; idx < hi; ++idx) {
                    const auto i = static_cast<std::int64_t>(idx);
                    tensor::im2col(x.data() + i * in_channels_ * h * w,
                                   in_channels_, h, w, kernel_, kernel_, stride_,
                                   pad_, col.data());
                    tensor::gemm_serial(out_channels_, out_hw, patch, 1.0f,
                                        weight_.value.data(), patch, col.data(),
                                        out_hw, 0.0f,
                                        y.data() + i * out_channels_ * out_hw,
                                        out_hw);
                }
            });
    }
    if (has_bias_) {
        float* py = y.data();
        for (std::int64_t i = 0; i < n; ++i)
            for (std::int64_t c = 0; c < out_channels_; ++c) {
                const float b = bias_.value[c];
                float* row = py + (i * out_channels_ + c) * out_hw;
                for (std::int64_t p = 0; p < out_hw; ++p) row[p] += b;
            }
    }
    return y;
}

Tensor Conv2d::backward(const Tensor& dy) {
    const std::int64_t n = input_.dim(0), h = input_.dim(2), w = input_.dim(3);
    const std::int64_t patch = in_channels_ * kernel_ * kernel_;
    const std::int64_t out_hw = out_h_ * out_w_;
    check(dy.rank() == 4 && dy.dim(0) == n && dy.dim(1) == out_channels_ &&
              dy.dim(2) == out_h_ && dy.dim(3) == out_w_,
          "Conv2d " + name() + ": bad grad shape " + shape_to_string(dy.shape()));

    Tensor dx({n, in_channels_, h, w});

    // Phase 1 — input gradients, parallel over images (disjoint dx slices).
    util::parallel_for(0, static_cast<std::size_t>(n), [&](std::size_t idx) {
        const auto i = static_cast<std::int64_t>(idx);
        const float* dyi = dy.data() + i * out_channels_ * out_hw;
        Tensor dcol({patch, out_hw});
        // dcol (patch × out_hw) = Wᵀ (patch × Cout) · dy_i (Cout × out_hw)
        for (std::int64_t c = 0; c < out_channels_; ++c) {
            const float* wr = weight_.value.data() + c * patch;
            const float* dyr = dyi + c * out_hw;
            for (std::int64_t p = 0; p < patch; ++p) {
                const float wcp = wr[p];
                if (wcp == 0.0f) continue;
                float* dcr = dcol.data() + p * out_hw;
                for (std::int64_t q = 0; q < out_hw; ++q) dcr[q] += wcp * dyr[q];
            }
        }
        tensor::col2im(dcol.data(), in_channels_, h, w, kernel_, kernel_, stride_,
                       pad_, dx.data() + i * in_channels_ * h * w);
    });

    // Phase 2 — weight/bias gradients, parallel over output channels
    // (disjoint dW rows): dW[c,p] += Σ_i Σ_q dy_i[c,q] · col_i[p,q].
    util::parallel_for(0, static_cast<std::size_t>(out_channels_),
                       [&](std::size_t cidx) {
        const auto c = static_cast<std::int64_t>(cidx);
        float* dwr = weight_.grad.data() + c * patch;
        double bias_acc = 0.0;
        for (std::int64_t i = 0; i < n; ++i) {
            const float* dyr = dy.data() + (i * out_channels_ + c) * out_hw;
            const Tensor& col = cols_[static_cast<std::size_t>(i)];
            for (std::int64_t p = 0; p < patch; ++p) {
                const float* colr = col.data() + p * out_hw;
                double acc = 0.0;
                for (std::int64_t q = 0; q < out_hw; ++q)
                    acc += static_cast<double>(dyr[q]) * colr[q];
                dwr[p] += static_cast<float>(acc);
            }
            if (has_bias_)
                for (std::int64_t q = 0; q < out_hw; ++q) bias_acc += dyr[q];
        }
        if (has_bias_) bias_.grad[c] += static_cast<float>(bias_acc);
    });
    return dx;
}

std::vector<Param*> Conv2d::params() {
    std::vector<Param*> ps{&weight_};
    if (has_bias_) ps.push_back(&bias_);
    return ps;
}

std::string Conv2d::describe() const {
    std::ostringstream os;
    os << "Conv2d(" << in_channels_ << " -> " << out_channels_ << ", k=" << kernel_
       << ", s=" << stride_ << ", p=" << pad_ << (has_bias_ ? "" : ", no bias")
       << ")";
    return os.str();
}

}  // namespace xs::nn
