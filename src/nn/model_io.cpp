#include "nn/model_io.h"

#include "nn/batchnorm.h"
#include "tensor/serialize.h"

#include <cstdint>
#include <fstream>
#include <map>
#include <stdexcept>

namespace xs::nn {
namespace {

void write_string(std::ostream& os, const std::string& s) {
    const auto len = static_cast<std::uint32_t>(s.size());
    os.write(reinterpret_cast<const char*>(&len), sizeof(len));
    os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string read_string(std::istream& is) {
    std::uint32_t len = 0;
    is.read(reinterpret_cast<char*>(&len), sizeof(len));
    if (!is || len > (1u << 20)) throw std::runtime_error("bad string in model file");
    std::string s(len, '\0');
    is.read(s.data(), len);
    if (!is) throw std::runtime_error("truncated string in model file");
    return s;
}

// Collect every named tensor in the model: parameters plus BN running stats.
std::map<std::string, tensor::Tensor*> named_tensors(Sequential& model) {
    std::map<std::string, tensor::Tensor*> out;
    for (auto& np : model.named_params()) out[np.qualified_name] = &np.param->value;
    model.for_each([&out](Layer& layer) {
        if (auto* bn = dynamic_cast<BatchNorm2d*>(&layer)) {
            out[layer.name() + ".running_mean"] = &bn->running_mean();
            out[layer.name() + ".running_var"] = &bn->running_var();
        }
    });
    return out;
}

}  // namespace

void save_model(Sequential& model, const std::string& path) {
    std::ofstream os(path, std::ios::binary);
    if (!os) throw std::runtime_error("cannot open '" + path + "' for writing");
    const auto tensors = named_tensors(model);
    const auto count = static_cast<std::uint32_t>(tensors.size());
    os.write("XSMD", 4);
    os.write(reinterpret_cast<const char*>(&count), sizeof(count));
    for (const auto& [name, t] : tensors) {
        write_string(os, name);
        tensor::write_tensor(os, *t);
    }
    if (!os) throw std::runtime_error("failed writing model to '" + path + "'");
}

bool load_model(Sequential& model, const std::string& path) {
    std::ifstream is(path, std::ios::binary);
    if (!is) return false;
    char magic[4];
    is.read(magic, 4);
    if (!is || std::string(magic, 4) != "XSMD")
        throw std::runtime_error("bad model magic in '" + path + "'");
    std::uint32_t count = 0;
    is.read(reinterpret_cast<char*>(&count), sizeof(count));

    auto tensors = named_tensors(model);
    if (count != tensors.size())
        throw std::runtime_error("model file '" + path + "' has " +
                                 std::to_string(count) + " tensors, expected " +
                                 std::to_string(tensors.size()));
    for (std::uint32_t i = 0; i < count; ++i) {
        const std::string name = read_string(is);
        tensor::Tensor t = tensor::read_tensor(is);
        const auto it = tensors.find(name);
        if (it == tensors.end())
            throw std::runtime_error("unknown tensor '" + name + "' in '" + path + "'");
        if (it->second->shape() != t.shape())
            throw std::runtime_error("shape mismatch for '" + name + "' in '" + path + "'");
        *it->second = std::move(t);
    }
    return true;
}

}  // namespace xs::nn
