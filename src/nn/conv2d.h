// 2-D convolution implemented as im2col + GEMM — the same unrolling used to
// form the 2-D weight matrices that get partitioned onto crossbars.
#pragma once

#include "nn/layer.h"
#include "util/rng.h"

namespace xs::nn {

class Conv2d : public Layer {
public:
    // Square kernels, symmetric padding. Weight layout: (Cout, Cin, k, k);
    // flattened row-major this is exactly the (Cout × Cin·k·k) MAC matrix.
    Conv2d(std::int64_t in_channels, std::int64_t out_channels, std::int64_t kernel,
           std::int64_t stride, std::int64_t pad, util::Rng& rng, bool bias = true);

    Tensor forward(const Tensor& x, bool training) override;
    Tensor backward(const Tensor& dy) override;
    std::vector<Param*> params() override;
    std::string type() const override { return "Conv2d"; }
    std::string describe() const override;

    std::int64_t in_channels() const { return in_channels_; }
    std::int64_t out_channels() const { return out_channels_; }
    std::int64_t kernel() const { return kernel_; }
    std::int64_t stride() const { return stride_; }
    std::int64_t pad() const { return pad_; }

    Param& weight() { return weight_; }
    const Param& weight() const { return weight_; }
    bool has_bias() const { return has_bias_; }
    Param& bias() { return bias_; }

private:
    std::int64_t in_channels_, out_channels_, kernel_, stride_, pad_;
    bool has_bias_;
    Param weight_;
    Param bias_;

    // Cached for backward (training-mode forwards only; eval-mode forwards
    // keep no per-call state).
    Tensor input_;                      // (N, C, H, W)
    std::vector<Tensor> cols_;          // per-image im2col buffers (reused)
    std::vector<Tensor> eval_cols_;     // per-worker im2col scratch (eval)
    std::int64_t out_h_ = 0, out_w_ = 0;
};

}  // namespace xs::nn
