#include "nn/linear.h"

#include "tensor/gemm.h"
#include "tensor/ops.h"

#include <sstream>

namespace xs::nn {

using tensor::check;
using tensor::shape_to_string;

Linear::Linear(std::int64_t in_features, std::int64_t out_features, util::Rng& rng,
               bool bias)
    : in_features_(in_features), out_features_(out_features), has_bias_(bias) {
    check(in_features > 0 && out_features > 0, "Linear: dimensions must be positive");
    weight_ = Param("weight", Tensor({out_features, in_features}));
    tensor::fill_kaiming(weight_.value, rng, in_features);
    if (has_bias_) bias_ = Param("bias", Tensor({out_features}));
}

Tensor Linear::forward(const Tensor& x, bool training) {
    if (x.rank() != 2 || x.dim(1) != in_features_)  // lazy message: hot path
        check(false, "Linear " + name() + ": bad input shape " +
                         shape_to_string(x.shape()));
    if (training) input_ = x;  // backward needs x for the weight gradient
    const std::int64_t n = x.dim(0);
    Tensor y({n, out_features_});
    // y = x (n × in) · Wᵀ (in × out)
    for (std::int64_t i = 0; i < n; ++i) {
        const float* xi = x.data() + i * in_features_;
        float* yi = y.data() + i * out_features_;
        for (std::int64_t o = 0; o < out_features_; ++o) {
            const float* wr = weight_.value.data() + o * in_features_;
            double acc = has_bias_ ? bias_.value[o] : 0.0f;
            for (std::int64_t j = 0; j < in_features_; ++j)
                acc += static_cast<double>(xi[j]) * wr[j];
            yi[o] = static_cast<float>(acc);
        }
    }
    return y;
}

Tensor Linear::backward(const Tensor& dy) {
    const std::int64_t n = input_.dim(0);
    check(dy.rank() == 2 && dy.dim(0) == n && dy.dim(1) == out_features_,
          "Linear " + name() + ": bad grad shape " + shape_to_string(dy.shape()));
    // dW (out × in) += dyᵀ (out × n) · x (n × in)
    tensor::gemm(out_features_, in_features_, n, 1.0f,
                 tensor::transpose(dy).data(), n, input_.data(), in_features_,
                 1.0f, weight_.grad.data(), in_features_);
    // dx (n × in) = dy (n × out) · W (out × in)
    Tensor dx({n, in_features_});
    tensor::gemm(n, in_features_, out_features_, 1.0f, dy.data(), out_features_,
                 weight_.value.data(), in_features_, 0.0f, dx.data(), in_features_);
    if (has_bias_) {
        for (std::int64_t i = 0; i < n; ++i) {
            const float* dyr = dy.data() + i * out_features_;
            for (std::int64_t o = 0; o < out_features_; ++o) bias_.grad[o] += dyr[o];
        }
    }
    return dx;
}

std::vector<Param*> Linear::params() {
    std::vector<Param*> ps{&weight_};
    if (has_bias_) ps.push_back(&bias_);
    return ps;
}

std::string Linear::describe() const {
    std::ostringstream os;
    os << "Linear(" << in_features_ << " -> " << out_features_
       << (has_bias_ ? "" : ", no bias") << ")";
    return os.str();
}

}  // namespace xs::nn
