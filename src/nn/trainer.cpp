#include "nn/trainer.h"

#include "nn/infer.h"
#include "tensor/ops.h"
#include "util/log.h"

#include <algorithm>
#include <cstring>
#include <memory>
#include <sstream>

namespace xs::nn {

using tensor::check;
using tensor::Tensor;

void gather_batch(const Dataset& data, const std::vector<std::size_t>& order,
                  std::size_t start, std::size_t count, Tensor& images,
                  std::vector<std::int64_t>& labels) {
    const auto& shape = data.images.shape();
    const std::int64_t item = data.images.numel() / shape[0];
    tensor::Shape batch_shape = shape;
    batch_shape[0] = static_cast<std::int64_t>(count);
    if (images.shape() != batch_shape) images = Tensor(batch_shape);
    labels.resize(count);
    for (std::size_t i = 0; i < count; ++i) {
        const std::size_t src = order[start + i];
        std::memcpy(images.data() + static_cast<std::int64_t>(i) * item,
                    data.images.data() + static_cast<std::int64_t>(src) * item,
                    static_cast<std::size_t>(item) * sizeof(float));
        labels[i] = data.labels[src];
    }
}

double evaluate(InferenceEngine& engine, const Dataset& data,
                std::int64_t batch_size) {
    const std::int64_t n = data.size();
    if (n == 0) return 0.0;
    // Evaluation order is the identity, so a batch is a contiguous row range
    // of the dataset tensor: forward a view straight into its storage
    // instead of building an order vector and memcpy'ing every batch.
    const std::int64_t item = data.images.numel() / data.images.dim(0);
    tensor::Shape batch_shape = data.images.shape();
    std::int64_t correct = 0;
    for (std::int64_t start = 0; start < n; start += batch_size) {
        const std::int64_t count = std::min(batch_size, n - start);
        batch_shape[0] = count;
        const Tensor& logits =
            engine.forward(data.images.data() + start * item, batch_shape);
        for (std::int64_t i = 0; i < count; ++i)
            if (tensor::argmax_row(logits, i) ==
                data.labels[static_cast<std::size_t>(start + i)])
                ++correct;
    }
    return 100.0 * static_cast<double>(correct) / static_cast<double>(n);
}

double evaluate(Sequential& model, const Dataset& data, std::int64_t batch_size) {
    InferenceEngine engine(model);
    return evaluate(engine, data, batch_size);
}

std::vector<EpochStats> train(Sequential& model, const Dataset& train_data,
                              const Dataset* test_data, const TrainConfig& config,
                              const StepHook& hook) {
    check(train_data.size() > 0, "train: empty dataset");
    util::Rng rng(config.seed);

    std::unique_ptr<Optimizer> opt;
    if (config.optimizer == "sgd") {
        opt = std::make_unique<Sgd>(model.params(), config.lr, config.momentum,
                                    config.weight_decay);
    } else {
        opt = std::make_unique<Adam>(model.params(), config.lr, 0.9f, 0.999f, 1e-8f,
                                     config.weight_decay);
    }

    // Masks/clips must hold from step zero (prune-at-init).
    if (hook) hook(model);

    std::vector<EpochStats> history;
    const std::size_t n = static_cast<std::size_t>(train_data.size());
    float lr = config.lr;

    Tensor batch;
    std::vector<std::int64_t> labels;
    for (std::int64_t epoch = 0; epoch < config.epochs; ++epoch) {
        util::Stopwatch watch;
        opt->set_lr(lr);
        const std::vector<std::size_t> order = rng.permutation(n);

        double loss_sum = 0.0;
        std::int64_t correct = 0, seen = 0, steps = 0;
        for (std::size_t start = 0; start < n;
             start += static_cast<std::size_t>(config.batch_size)) {
            const std::size_t count = std::min(
                static_cast<std::size_t>(config.batch_size), n - start);
            gather_batch(train_data, order, start, count, batch, labels);

            model.zero_grad();
            const Tensor logits = model.forward(batch, /*training=*/true);
            LossResult loss = softmax_cross_entropy(logits, labels);
            model.backward(loss.grad);
            opt->step();
            if (hook) hook(model);

            loss_sum += loss.loss;
            correct += loss.correct;
            seen += static_cast<std::int64_t>(count);
            ++steps;
        }

        EpochStats stats;
        stats.train_loss = loss_sum / static_cast<double>(std::max<std::int64_t>(steps, 1));
        stats.train_acc = 100.0 * static_cast<double>(correct) /
                          static_cast<double>(std::max<std::int64_t>(seen, 1));
        if (test_data) stats.test_acc = evaluate(model, *test_data);
        stats.seconds = watch.seconds();
        history.push_back(stats);

        if (config.verbose) {
            std::ostringstream os;
            os << "epoch " << (epoch + 1) << "/" << config.epochs << " loss="
               << stats.train_loss << " train_acc=" << stats.train_acc << "%";
            if (test_data) os << " test_acc=" << stats.test_acc << "%";
            os << " (" << stats.seconds << "s)";
            util::log_info(os.str());
        }
        lr *= config.lr_decay;
    }
    return history;
}

}  // namespace xs::nn
