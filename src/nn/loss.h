// Softmax cross-entropy on logits, with the fused gradient (softmax − onehot)/N.
#pragma once

#include "tensor/tensor.h"

#include <cstdint>
#include <vector>

namespace xs::nn {

struct LossResult {
    double loss = 0.0;          // mean over the batch
    tensor::Tensor grad;        // dL/dlogits, same shape as logits
    std::int64_t correct = 0;   // top-1 hits in the batch
};

// logits: (N, classes); labels: N entries in [0, classes).
LossResult softmax_cross_entropy(const tensor::Tensor& logits,
                                 const std::vector<std::int64_t>& labels);

// Row-wise softmax (numerically stabilized); used for probability readout.
tensor::Tensor softmax(const tensor::Tensor& logits);

}  // namespace xs::nn
