// Mini-batch trainer with pluggable optimizer and a post-step hook. The hook
// is how pruning masks (src/prune) and WCT weight clipping (src/core) stay
// enforced during training without the trainer knowing about either.
#pragma once

#include "nn/loss.h"
#include "nn/optimizer.h"
#include "nn/sequential.h"
#include "util/rng.h"

#include <functional>
#include <string>
#include <vector>

namespace xs::nn {

// A labelled image set: images (N, C, H, W), labels[i] in [0, classes).
struct Dataset {
    Tensor images;
    std::vector<std::int64_t> labels;
    std::int64_t num_classes = 0;

    std::int64_t size() const { return images.rank() ? images.dim(0) : 0; }
};

struct TrainConfig {
    std::int64_t epochs = 10;
    std::int64_t batch_size = 32;
    float lr = 2e-3f;
    std::string optimizer = "adam";  // "adam" | "sgd"
    float momentum = 0.9f;
    float weight_decay = 1e-4f;
    float lr_decay = 0.85f;  // multiplicative per-epoch decay
    std::uint64_t seed = 1;
    bool verbose = false;
};

struct EpochStats {
    double train_loss = 0.0;
    double train_acc = 0.0;
    double test_acc = 0.0;
    double seconds = 0.0;
};

// Called after every optimizer step (e.g. to re-apply pruning masks).
using StepHook = std::function<void(Sequential&)>;

class InferenceEngine;

// Top-1 accuracy (%) of `model` on `data`, evaluated in inference mode
// through a fused InferenceEngine (nn/infer.h) built for the call.
double evaluate(Sequential& model, const Dataset& data, std::int64_t batch_size = 64);

// Same, reusing a caller-owned engine (and its warmed arenas/scratch) —
// the Monte-Carlo evaluator calls this once per repeat. Identity-order
// evaluation forwards contiguous views straight into the dataset tensor:
// no batch gather, no memcpy.
double evaluate(InferenceEngine& engine, const Dataset& data,
                std::int64_t batch_size = 64);

// Trains in place; returns per-epoch stats. If `test` is non-null its
// accuracy is recorded each epoch.
std::vector<EpochStats> train(Sequential& model, const Dataset& train_data,
                              const Dataset* test_data, const TrainConfig& config,
                              const StepHook& hook = {});

// Copy a batch of rows (by index) out of a dataset.
void gather_batch(const Dataset& data, const std::vector<std::size_t>& order,
                  std::size_t start, std::size_t count, Tensor& images,
                  std::vector<std::int64_t>& labels);

}  // namespace xs::nn
