#include "nn/optimizer.h"

#include <cmath>

namespace xs::nn {

Sgd::Sgd(std::vector<Param*> params, float lr, float momentum, float weight_decay)
    : Optimizer(std::move(params)), momentum_(momentum), weight_decay_(weight_decay) {
    lr_ = lr;
    velocity_.reserve(params_.size());
    for (const Param* p : params_) velocity_.emplace_back(p->value.shape());
}

void Sgd::step() {
    for (std::size_t i = 0; i < params_.size(); ++i) {
        Param& p = *params_[i];
        Tensor& vel = velocity_[i];
        float* pv = p.value.data();
        float* pg = p.grad.data();
        float* pm = vel.data();
        for (std::int64_t j = 0; j < p.value.numel(); ++j) {
            const float g = pg[j] + weight_decay_ * pv[j];
            pm[j] = momentum_ * pm[j] + g;
            pv[j] -= lr_ * pm[j];
        }
    }
}

Adam::Adam(std::vector<Param*> params, float lr, float beta1, float beta2,
           float eps, float weight_decay)
    : Optimizer(std::move(params)),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
    lr_ = lr;
    m_.reserve(params_.size());
    v_.reserve(params_.size());
    for (const Param* p : params_) {
        m_.emplace_back(p->value.shape());
        v_.emplace_back(p->value.shape());
    }
}

void Adam::step() {
    ++t_;
    const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
    const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
    const float step_size = static_cast<float>(lr_ * std::sqrt(bc2) / bc1);

    for (std::size_t i = 0; i < params_.size(); ++i) {
        Param& p = *params_[i];
        float* pv = p.value.data();
        float* pg = p.grad.data();
        float* pm = m_[i].data();
        float* ps = v_[i].data();
        for (std::int64_t j = 0; j < p.value.numel(); ++j) {
            const float g = pg[j];
            pm[j] = beta1_ * pm[j] + (1.0f - beta1_) * g;
            ps[j] = beta2_ * ps[j] + (1.0f - beta2_) * g * g;
            pv[j] -= step_size * pm[j] / (std::sqrt(ps[j]) + eps_) +
                     lr_ * weight_decay_ * pv[j];
        }
    }
}

}  // namespace xs::nn
