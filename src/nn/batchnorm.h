// BatchNorm2d over (N, C, H, W): per-channel normalization with learnable
// affine. Kept in the digital periphery on hardware — crossbar non-idealities
// apply only to conv/linear weight matrices (see DESIGN.md §2).
#pragma once

#include "nn/layer.h"

#include <cmath>

namespace xs::nn {

class BatchNorm2d : public Layer {
public:
    explicit BatchNorm2d(std::int64_t channels, float eps = 1e-5f,
                         float momentum = 0.1f);

    Tensor forward(const Tensor& x, bool training) override;
    Tensor backward(const Tensor& dy) override;
    std::vector<Param*> params() override { return {&gamma_, &beta_}; }
    std::string type() const override { return "BatchNorm2d"; }
    std::string describe() const override;

    std::int64_t channels() const { return channels_; }
    float eps() const { return eps_; }

    // Inference-mode per-channel affine y = s·x + t from the running
    // statistics, in double precision — the single definition shared by the
    // eval forward and the inference engine's BN folding (DESIGN.md §6).
    void inference_affine(std::int64_t c, double& s, double& t) const {
        const double inv_std =
            1.0 / std::sqrt(static_cast<double>(running_var_[c]) + eps_);
        s = static_cast<double>(gamma_.value[c]) * inv_std;
        t = static_cast<double>(beta_.value[c]) - s * running_mean_[c];
    }

    Param& gamma() { return gamma_; }
    Param& beta() { return beta_; }
    Tensor& running_mean() { return running_mean_; }
    Tensor& running_var() { return running_var_; }

private:
    std::int64_t channels_;
    float eps_, momentum_;
    Param gamma_, beta_;
    Tensor running_mean_, running_var_;

    // Cached batch statistics for backward.
    Tensor input_;
    std::vector<double> batch_mean_, batch_inv_std_;
};

}  // namespace xs::nn
