// Fully-connected layer: y = x·Wᵀ + b, weights (out × in) so a row is one
// output neuron — the same matrix orientation the crossbar mapper consumes
// (columns of the transposed matrix are crossbar columns).
#pragma once

#include "nn/layer.h"
#include "util/rng.h"

namespace xs::nn {

class Linear : public Layer {
public:
    Linear(std::int64_t in_features, std::int64_t out_features, util::Rng& rng,
           bool bias = true);

    Tensor forward(const Tensor& x, bool training) override;
    Tensor backward(const Tensor& dy) override;
    std::vector<Param*> params() override;
    std::string type() const override { return "Linear"; }
    std::string describe() const override;

    std::int64_t in_features() const { return in_features_; }
    std::int64_t out_features() const { return out_features_; }
    Param& weight() { return weight_; }
    const Param& weight() const { return weight_; }
    bool has_bias() const { return has_bias_; }
    Param& bias() { return bias_; }

private:
    std::int64_t in_features_, out_features_;
    bool has_bias_;
    Param weight_;  // (out, in)
    Param bias_;    // (out)
    Tensor input_;  // (N, in) cached for backward
};

}  // namespace xs::nn
