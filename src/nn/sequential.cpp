#include "nn/sequential.h"

#include "tensor/tensor.h"

#include <sstream>

namespace xs::nn {

Layer& Sequential::add(LayerPtr layer, std::string name) {
    if (name.empty()) {
        std::ostringstream os;
        os << layer->type() << layers_.size();
        name = os.str();
    }
    tensor::check(by_name_.count(name) == 0,
                  "Sequential: duplicate layer name '" + name + "'");
    layer->set_name(name);
    by_name_[name] = layer.get();
    layers_.push_back(std::move(layer));
    return *layers_.back();
}

Tensor Sequential::forward(const Tensor& x, bool training) {
    Tensor h = x;
    for (auto& l : layers_) {
        // Skipping inference-identity layers (Dropout) avoids a full
        // activation copy per layer; the fused path lives in nn/infer.h.
        if (!training && l->identity_at_inference()) continue;
        h = l->forward(h, training);
    }
    return h;
}

Tensor Sequential::backward(const Tensor& dy) {
    Tensor g = dy;
    for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
        g = (*it)->backward(g);
    return g;
}

void Sequential::zero_grad() {
    for (auto& l : layers_)
        for (Param* p : l->params()) p->zero_grad();
}

Layer* Sequential::find(const std::string& name) {
    const auto it = by_name_.find(name);
    return it == by_name_.end() ? nullptr : it->second;
}

std::vector<Sequential::NamedParam> Sequential::named_params() {
    std::vector<NamedParam> out;
    for (auto& l : layers_)
        for (Param* p : l->params())
            out.push_back({l->name() + "." + p->name, p});
    return out;
}

std::vector<Param*> Sequential::params() {
    std::vector<Param*> out;
    for (auto& l : layers_)
        for (Param* p : l->params()) out.push_back(p);
    return out;
}

std::int64_t Sequential::param_count() const {
    std::int64_t n = 0;
    for (const auto& l : layers_)
        for (Param* p : const_cast<Layer&>(*l).params()) n += p->value.numel();
    return n;
}

void Sequential::for_each(const std::function<void(Layer&)>& fn) {
    for (auto& l : layers_) fn(*l);
}

std::string Sequential::summary() const {
    std::ostringstream os;
    for (const auto& l : layers_)
        os << l->name() << ": " << l->describe() << '\n';
    os << "total params: " << param_count() << '\n';
    return os.str();
}

}  // namespace xs::nn
