// VGG11 / VGG16 builders with a width multiplier so the same topology the
// paper evaluates (8 or 13 conv layers + classifier, BN, 2×2 max-pools)
// trains in CPU-budget time. Width only scales channel counts; the crossbar
// mapping, compression arithmetic, and pruning structure are unaffected.
#pragma once

#include "nn/sequential.h"
#include "util/rng.h"

#include <string>
#include <vector>

namespace xs::nn {

struct VggConfig {
    std::string variant = "vgg11";  // "vgg11" | "vgg16"
    std::int64_t num_classes = 10;
    std::int64_t in_channels = 3;
    std::int64_t input_size = 32;   // square input
    double width = 1.0;             // channel multiplier
    std::int64_t min_channels = 8;  // floor after scaling
    bool batch_norm = true;
    float classifier_dropout = 0.0f;
};

// Per-conv-layer output channels for a variant/width ("M" pool positions are
// implicit in build_vgg). Exposed so pruners/benches can reason about shape.
std::vector<std::int64_t> vgg_channels(const VggConfig& config);

// Builds the network; conv layers are named conv1..convN, the final
// classifier fc1 (these names are what the mapping pipeline looks up).
Sequential build_vgg(const VggConfig& config, util::Rng& rng);

// Names of the conv layers of a variant, in order ("conv1", ...).
std::vector<std::string> vgg_conv_names(const VggConfig& config);

}  // namespace xs::nn
