#include "nn/infer.h"

#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/layers_basic.h"
#include "nn/linear.h"
#include "tensor/gemm.h"
#include "tensor/im2col.h"
#include "util/metrics.h"
#include "util/parallel.h"
#include "util/trace.h"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace xs::nn {

using tensor::check;
using tensor::Shape;
using tensor::Tensor;

namespace {

// Raw-dispatch contexts: plain structs passed by pointer through the
// allocation-free parallel_for_workers overload. All fields are set before
// the dispatch and only read (or written at disjoint offsets) inside.

// Phase 1 of a conv step: batched im2col straight into packed-B panels.
// Workers split the panel range; panels write disjoint regions.
struct PackCtx {
    const float* x;
    float* packed;
    std::int64_t n, cin, h, w, s_img, s_c, k, stride, pad;
};

void pack_kernel(void* pv, std::size_t /*worker*/, std::size_t lo,
                 std::size_t hi) {
    PackCtx& ctx = *static_cast<PackCtx*>(pv);
    tensor::im2col_pack_b(ctx.x, ctx.n, ctx.cin, ctx.h, ctx.w, ctx.s_img,
                          ctx.s_c, ctx.k, ctx.k, ctx.stride, ctx.pad,
                          ctx.packed, static_cast<std::int64_t>(lo),
                          static_cast<std::int64_t>(hi));
}

// Phase 2: tiled GEMM over (row-panel × n-block) tiles with the fused
// bias+ReLU epilogue. Workers split the tile range; tiles write disjoint
// C regions.
struct TileCtx {
    const tensor::PackedGemmA* wpack;
    const float* wraw;  // folded weights (cout × patch), sparse fallback
    const float* packed;
    float* y;  // channel-major (cout × n·out_hw)
    const float* bias;
    std::int64_t lda, n_cols;
    bool relu;
};

void gemm_tile_kernel(void* pv, std::size_t /*worker*/, std::size_t lo,
                      std::size_t hi) {
    TileCtx& ctx = *static_cast<TileCtx*>(pv);
    tensor::gemm_prepacked_tiles(*ctx.wpack, ctx.wraw, ctx.lda, ctx.packed,
                                 ctx.n_cols, ctx.y, ctx.n_cols, ctx.bias,
                                 ctx.relu, static_cast<std::int64_t>(lo),
                                 static_cast<std::int64_t>(hi));
}

// Pooling is plane-local, so one kernel serves both activation layouts
// (batch-major NCHW and the engine's channel-major CN): plane i of the
// input maps to plane i of the output in either ordering.
struct PoolCtx {
    const float* x;
    float* y;
    std::int64_t h, w, k, oh, ow;
    bool is_max;
};

void pool_kernel(void* pv, std::size_t /*worker*/, std::size_t lo,
                 std::size_t hi) {
    PoolCtx& ctx = *static_cast<PoolCtx*>(pv);
    const std::int64_t plane_in = ctx.h * ctx.w;
    const std::int64_t plane_out = ctx.oh * ctx.ow;
    const float inv = 1.0f / static_cast<float>(ctx.k * ctx.k);
    for (std::size_t idx = lo; idx < hi; ++idx) {
        const float* plane = ctx.x + static_cast<std::int64_t>(idx) * plane_in;
        float* out = ctx.y + static_cast<std::int64_t>(idx) * plane_out;
        if (ctx.is_max && ctx.k == 2) {
            // The VGG configuration: a branch-free 2×2 max the compiler can
            // vectorize with pairwise shuffles.
            for (std::int64_t oi = 0; oi < ctx.oh; ++oi) {
                const float* r0 = plane + 2 * oi * ctx.w;
                const float* r1 = r0 + ctx.w;
                float* o = out + oi * ctx.ow;
                for (std::int64_t oj = 0; oj < ctx.ow; ++oj)
                    o[oj] = std::max(std::max(r0[2 * oj], r0[2 * oj + 1]),
                                     std::max(r1[2 * oj], r1[2 * oj + 1]));
            }
            continue;
        }
        for (std::int64_t oi = 0; oi < ctx.oh; ++oi)
            for (std::int64_t oj = 0; oj < ctx.ow; ++oj) {
                if (ctx.is_max) {
                    float best = plane[oi * ctx.k * ctx.w + oj * ctx.k];
                    for (std::int64_t ki = 0; ki < ctx.k; ++ki)
                        for (std::int64_t kj = 0; kj < ctx.k; ++kj)
                            best = std::max(best,
                                            plane[(oi * ctx.k + ki) * ctx.w +
                                                  (oj * ctx.k + kj)]);
                    out[oi * ctx.ow + oj] = best;
                } else {
                    double acc = 0.0;
                    for (std::int64_t ki = 0; ki < ctx.k; ++ki)
                        for (std::int64_t kj = 0; kj < ctx.k; ++kj)
                            acc += plane[(oi * ctx.k + ki) * ctx.w +
                                         (oj * ctx.k + kj)];
                    out[oi * ctx.ow + oj] = static_cast<float>(acc) * inv;
                }
            }
    }
}

// Per-thread scratch shared by every engine on the thread: the activation
// ping-pong pair (scalar run() and forward_batched() use it in turn — a
// forward is synchronous, so the two never overlap on one thread) and the
// packed im2col panel store. Evaluators construct a fresh engine per
// Monte-Carlo evaluation; engine-owned buffers this large (multi-MB) would be
// mmap'd by the allocator and returned to the OS on every engine destruction,
// repaying page faults and zero fills each eval. Thread-locality makes the
// sharing race-free; the engine copies its final output out of the arena
// before returning (InferenceEngine::out_), so callers never hold references
// into this scratch.
struct EngineScratch {
    Tensor arena[2];            // ping-pong activation buffers
    std::vector<float> packedb;  // packed im2col panels, grown once and
                                 // reused across layers/batches/engines
};

EngineScratch& engine_scratch() {
    static thread_local EngineScratch scratch;
    return scratch;
}

}  // namespace

InferenceEngine::InferenceEngine(Sequential& model) {
    build_plan(model);
    refresh();
}

void InferenceEngine::build_plan(Sequential& model) {
    const std::size_t count = model.size();
    const auto next_real = [&model, count](std::size_t j) {
        while (j < count && model.layer(j).identity_at_inference()) ++j;
        return j;
    };
    std::size_t i = next_real(0);
    while (i < count) {
        Layer* l = &model.layer(i);
        std::size_t next = next_real(i + 1);
        Step s;
        s.layer = l;
        if (auto* conv = dynamic_cast<Conv2d*>(l)) {
            s.kind = Step::Kind::kConv;
            s.cin = conv->in_channels();
            s.cout = conv->out_channels();
            s.k = conv->kernel();
            s.stride = conv->stride();
            s.pad = conv->pad();
            s.patch = s.cin * s.k * s.k;
            if (next < count) {
                auto* bn = dynamic_cast<BatchNorm2d*>(&model.layer(next));
                if (bn && bn->channels() == s.cout) {
                    s.bn = bn;
                    next = next_real(next + 1);
                }
            }
            if (next < count && dynamic_cast<ReLU*>(&model.layer(next))) {
                s.relu = true;
                next = next_real(next + 1);
            }
            s.epilogue = s.relu || s.bn != nullptr || conv->has_bias();
            ++mappable_count_;
        } else if (auto* fc = dynamic_cast<Linear*>(l)) {
            s.kind = Step::Kind::kLinear;
            s.in_features = fc->in_features();
            s.out_features = fc->out_features();
            if (next < count && dynamic_cast<ReLU*>(&model.layer(next))) {
                s.relu = true;
                next = next_real(next + 1);
            }
            s.epilogue = s.relu || fc->has_bias();
            ++mappable_count_;
        } else if (dynamic_cast<BatchNorm2d*>(l) != nullptr) {
            s.kind = Step::Kind::kBatchNorm;
        } else if (dynamic_cast<ReLU*>(l) != nullptr) {
            s.kind = Step::Kind::kReLU;
        } else if (auto* mp = dynamic_cast<MaxPool2d*>(l)) {
            s.kind = Step::Kind::kMaxPool;
            s.pool_kernel = mp->kernel();
        } else if (auto* ap = dynamic_cast<AvgPool2d*>(l)) {
            s.kind = Step::Kind::kAvgPool;
            s.pool_kernel = ap->kernel();
        } else if (dynamic_cast<Flatten*>(l) != nullptr) {
            s.kind = Step::Kind::kFlatten;
        } else {
            s.kind = Step::Kind::kGeneric;
        }
        if (s.kind == Step::Kind::kConv || s.kind == Step::Kind::kLinear)
            mappable_steps_.push_back(steps_.size());
        steps_.push_back(std::move(s));
        i = next;
    }
}

void InferenceEngine::refresh() {
    static const std::vector<const Tensor*> kNoOverrides;
    refresh(kNoOverrides);
}

void InferenceEngine::refresh(const std::vector<const Tensor*>& mac_overrides) {
    check(mac_overrides.empty() || mac_overrides.size() == mappable_count_,
          "InferenceEngine::refresh: override count must match mappable layers");
    std::size_t slot = 0;
    for (Step& s : steps_) {
        if (s.kind != Step::Kind::kConv && s.kind != Step::Kind::kLinear)
            continue;
        const Tensor* ov =
            mac_overrides.empty() ? nullptr : mac_overrides[slot];
        ++slot;
        refresh_step(s, ov);
    }
}

void InferenceEngine::fold_step(const Step& step, const Tensor* mac_override,
                                Tensor& w, Tensor& b,
                                tensor::PackedGemmA& wpack) const {
    if (step.kind == Step::Kind::kConv) {
        auto* conv = static_cast<Conv2d*>(step.layer);
        const std::int64_t cout = step.cout, patch = step.patch;
        if (mac_override)
            check(mac_override->rank() == 2 && mac_override->dim(0) == patch &&
                      mac_override->dim(1) == cout,
                  "InferenceEngine: conv MAC override shape mismatch");
        w.reset(cout, patch);
        if (step.epilogue && b.numel() != cout) b = Tensor({cout});
        const float* src = conv->weight().value.data();  // (cout × patch)
        for (std::int64_t c = 0; c < cout; ++c) {
            // BN folding in double: y = s·(conv(x) + bias) + t with the
            // affine from BatchNorm2d::inference_affine → W′ = s·W,
            // b′ = s·bias + t.
            double s = 1.0, t = 0.0;
            if (step.bn) step.bn->inference_affine(c, s, t);
            if (step.epilogue) {
                const double bias =
                    conv->has_bias() ? conv->bias().value[c] : 0.0;
                b[c] = static_cast<float>(s * bias + t);
            }
            float* dst = w.data() + c * patch;
            if (mac_override) {
                // MAC orientation is (patch × cout): transposed read, once
                // per refresh — this replaces the inject/restore transposes.
                const float* m = mac_override->data();
                for (std::int64_t p = 0; p < patch; ++p)
                    dst[p] = static_cast<float>(s * m[p * cout + c]);
            } else {
                const float* row = src + c * patch;
                for (std::int64_t p = 0; p < patch; ++p)
                    dst[p] = static_cast<float>(s * row[p]);
            }
        }
        tensor::gemm_pack_a(cout, patch, w.data(), patch, wpack);
        return;
    }
    auto* fc = static_cast<Linear*>(step.layer);
    const std::int64_t in = step.in_features, out = step.out_features;
    if (mac_override)
        check(mac_override->rank() == 2 && mac_override->dim(0) == in &&
                  mac_override->dim(1) == out,
              "InferenceEngine: linear MAC override shape mismatch");
    w.reset(in, out);
    if (step.epilogue && b.numel() != out) b = Tensor({out});
    if (mac_override) {
        std::memcpy(w.data(), mac_override->data(),
                    static_cast<std::size_t>(in * out) * sizeof(float));
    } else {
        const float* src = fc->weight().value.data();  // (out × in)
        for (std::int64_t j = 0; j < in; ++j)
            for (std::int64_t o = 0; o < out; ++o)
                w.data()[j * out + o] = src[o * in + j];
    }
    if (step.epilogue)
        for (std::int64_t o = 0; o < out; ++o)
            b[o] = fc->has_bias() ? fc->bias().value[o] : 0.0f;
}

void InferenceEngine::refresh_step(Step& step, const Tensor* mac_override) {
    fold_step(step, mac_override, step.w, step.b, step.wpack);
}

void InferenceEngine::compile_instance_slot(std::size_t slot,
                                            const Tensor* mac_override,
                                            CompiledInstance& out) const {
    check(slot < mappable_count_,
          "InferenceEngine::compile_instance_slot: slot out of range");
    XS_TIMER_NS("nn.compile.ns");
    if (out.slots.size() != mappable_count_) out.slots.resize(mappable_count_);
    CompiledInstance::Slot& s = out.slots[slot];
    fold_step(steps_[mappable_steps_[slot]], mac_override, s.w, s.b, s.wpack);
}

void InferenceEngine::compile_instance(
    const std::vector<const Tensor*>& mac_overrides,
    CompiledInstance& out) const {
    check(mac_overrides.empty() || mac_overrides.size() == mappable_count_,
          "InferenceEngine::compile_instance: override count mismatch");
    for (std::size_t slot = 0; slot < mappable_count_; ++slot)
        compile_instance_slot(
            slot, mac_overrides.empty() ? nullptr : mac_overrides[slot], out);
}

const Tensor& InferenceEngine::forward(const Tensor& x) {
    return run(x.data(), x.shape());
}

const Tensor& InferenceEngine::forward(const float* x, const Shape& shape) {
    return run(x, shape);
}

const Tensor& InferenceEngine::run(const float* x, const Shape& shape) {
    XS_TIMER_NS("nn.forward.ns");
    XS_COUNT("nn.forwards", 1);
    XS_TRACE_SPAN("forward");
    EngineScratch& scratch = engine_scratch();
    Tensor* const arena_ = scratch.arena;
    std::vector<float>& packedb_ = scratch.packedb;
    cur_shape_ = shape;  // capacity-reusing copy
    const float* cur = x;
    int cur_arena = -1;   // -1: reading caller storage (zero-copy input)
    bool cn = false;      // channel-major (C × N·HW) conv-trunk layout
    const auto dst_of = [](int arena) { return arena == 0 ? 1 : 0; };

    // CN → batch-major NCHW conversion (per-(channel, image) plane memcpy),
    // used at the flatten boundary, before generic fallbacks, and when a
    // model ends inside the conv trunk.
    const auto to_batch_major = [&]() {
        const std::int64_t n = cur_shape_[0], c = cur_shape_[1],
                           hw = cur_shape_[2] * cur_shape_[3];
        const int dst = dst_of(cur_arena);
        Tensor& y = arena_[dst];
        y.reset(cur_shape_);
        for (std::int64_t ch = 0; ch < c; ++ch)
            for (std::int64_t i = 0; i < n; ++i)
                std::memcpy(y.data() + (i * c + ch) * hw,
                            cur + (ch * n + i) * hw,
                            static_cast<std::size_t>(hw) * sizeof(float));
        cur = y.data();
        cur_arena = dst;
        cn = false;
    };

    for (Step& step : steps_) {
        switch (step.kind) {
            case Step::Kind::kConv: {
                XS_TIMER_NS("nn.step.conv.ns");
                XS_TRACE_SPAN("conv");
                check(cur_shape_.size() == 4 && cur_shape_[1] == step.cin,
                      "InferenceEngine: conv input shape mismatch");
                const std::int64_t n = cur_shape_[0], h = cur_shape_[2],
                                   w = cur_shape_[3];
                const std::int64_t oh =
                    tensor::conv_out_size(h, step.k, step.stride, step.pad);
                const std::int64_t ow =
                    tensor::conv_out_size(w, step.k, step.stride, step.pad);
                const std::int64_t n_cols = n * oh * ow;
                // Phase 1: batched im2col into packed panels (one buffer,
                // grown once, reused across layers and batches).
                const std::int64_t packed_size =
                    tensor::packed_b_size(step.patch, n_cols);
                if (static_cast<std::int64_t>(packedb_.size()) < packed_size)
                    packedb_.resize(static_cast<std::size_t>(packed_size));
                PackCtx pctx;
                pctx.x = cur;
                pctx.packed = packedb_.data();
                pctx.n = n;
                pctx.cin = step.cin;
                pctx.h = h;
                pctx.w = w;
                pctx.s_img = cn ? h * w : step.cin * h * w;
                pctx.s_c = cn ? n * h * w : h * w;
                pctx.k = step.k;
                pctx.stride = step.stride;
                pctx.pad = step.pad;
                // Phase 2 state: one tiled GEMM for the whole batch,
                // channel-major output, epilogue fused into each tile.
                const int dst = dst_of(cur_arena);
                Tensor& y = arena_[dst];
                y.reset(step.cout, n_cols);
                TileCtx tctx;
                tctx.wpack = &step.wpack;
                tctx.wraw = step.w.data();
                tctx.packed = packedb_.data();
                tctx.y = y.data();
                tctx.bias = step.epilogue ? step.b.data() : nullptr;
                tctx.lda = step.patch;
                tctx.n_cols = n_cols;
                tctx.relu = step.relu;
                // Walk kPackNc-wide n-blocks, running the GEMM tiles of a
                // block right after packing its panels so the packed data is
                // consumed while still cache-resident (a whole-layer pack
                // would stream megabytes through L2 twice). Tile index
                // nb·row_panels + ip makes each block's tiles contiguous.
                const std::int64_t total_panels =
                    tensor::packed_b_panels(n_cols);
                const std::int64_t block_panels =
                    tensor::kPackNc / tensor::kPackNr;
                const std::int64_t row_panels =
                    (step.cout + tensor::kPackMr - 1) / tensor::kPackMr;
                const std::int64_t n_blocks =
                    (total_panels + block_panels - 1) / block_panels;
                // Per-block pack/kernel timing is detail-gated
                // (XS_METRICS=detail): always-on it would add hundreds of
                // clock reads per layer to the hottest loop in the engine.
                const bool split_timing = util::metrics::detail_enabled();
                std::uint64_t pack_ns = 0, kernel_ns = 0;
                for (std::int64_t nb = 0; nb < n_blocks; ++nb) {
                    const std::int64_t p_lo = nb * block_panels;
                    const std::int64_t p_hi =
                        std::min(total_panels, p_lo + block_panels);
                    const std::uint64_t t0 =
                        split_timing ? util::metrics::detail::now_ns() : 0;
                    util::parallel_for_workers(
                        static_cast<std::size_t>(p_lo),
                        static_cast<std::size_t>(p_hi), &pack_kernel, &pctx);
                    const std::uint64_t t1 =
                        split_timing ? util::metrics::detail::now_ns() : 0;
                    util::parallel_for_workers(
                        static_cast<std::size_t>(nb * row_panels),
                        static_cast<std::size_t>((nb + 1) * row_panels),
                        &gemm_tile_kernel, &tctx);
                    if (split_timing) {
                        pack_ns += t1 - t0;
                        kernel_ns += util::metrics::detail::now_ns() - t1;
                    }
                }
                if (split_timing) {
                    static const util::metrics::Histogram pack_hist =
                        util::metrics::histogram("gemm.pack.ns");
                    static const util::metrics::Histogram kernel_hist =
                        util::metrics::histogram("gemm.kernel.ns");
                    pack_hist.record(pack_ns);
                    kernel_hist.record(kernel_ns);
                }
                cur = y.data();
                cur_arena = dst;
                cn = true;
                cur_shape_.resize(4);
                cur_shape_[0] = n;
                cur_shape_[1] = step.cout;
                cur_shape_[2] = oh;
                cur_shape_[3] = ow;
                break;
            }
            case Step::Kind::kLinear: {
                XS_TIMER_NS("nn.step.linear.ns");
                XS_TRACE_SPAN("linear");
                check(cur_shape_.size() == 2 &&
                          cur_shape_[1] == step.in_features,
                      "InferenceEngine: linear input shape mismatch");
                const std::int64_t n = cur_shape_[0];
                const std::int64_t in = step.in_features,
                                   out = step.out_features;
                const int dst = dst_of(cur_arena);
                Tensor& y = arena_[dst];
                y.reset(n, out);
                // y (n × out) = x (n × in) · W_folded (in × out)
                tensor::gemm_serial(n, out, in, 1.0f, cur, in, step.w.data(),
                                    out, 0.0f, y.data(), out);
                if (step.epilogue) {
                    for (std::int64_t i = 0; i < n; ++i) {
                        float* row = y.data() + i * out;
                        if (step.relu) {
                            for (std::int64_t o = 0; o < out; ++o)
                                row[o] = std::max(row[o] + step.b[o], 0.0f);
                        } else {
                            for (std::int64_t o = 0; o < out; ++o)
                                row[o] += step.b[o];
                        }
                    }
                }
                cur = y.data();
                cur_arena = dst;
                cur_shape_.resize(2);
                cur_shape_[0] = n;
                cur_shape_[1] = out;
                break;
            }
            case Step::Kind::kBatchNorm: {
                check(cur_shape_.size() == 4,
                      "InferenceEngine: BatchNorm expects NCHW input");
                auto* bn = static_cast<BatchNorm2d*>(step.layer);
                check(cur_shape_[1] == bn->channels(),
                      "InferenceEngine: BatchNorm channel mismatch");
                const std::int64_t n = cur_shape_[0], c = cur_shape_[1],
                                   hw = cur_shape_[2] * cur_shape_[3];
                const int dst = dst_of(cur_arena);
                Tensor& y = arena_[dst];
                if (cn) {
                    y.reset(c, n * hw);
                } else {
                    y.reset(cur_shape_);
                }
                for (std::int64_t ch = 0; ch < c; ++ch) {
                    double sd, td;
                    bn->inference_affine(ch, sd, td);
                    const float s = static_cast<float>(sd);
                    const float t = static_cast<float>(td);
                    if (cn) {
                        // Channel-major: the whole channel is one run.
                        const float* px = cur + ch * n * hw;
                        float* py = y.data() + ch * n * hw;
                        for (std::int64_t q = 0; q < n * hw; ++q)
                            py[q] = s * px[q] + t;
                        continue;
                    }
                    for (std::int64_t i = 0; i < n; ++i) {
                        const float* px = cur + (i * c + ch) * hw;
                        float* py = y.data() + (i * c + ch) * hw;
                        for (std::int64_t q = 0; q < hw; ++q)
                            py[q] = s * px[q] + t;
                    }
                }
                cur = y.data();
                cur_arena = dst;
                break;
            }
            case Step::Kind::kReLU: {
                const std::int64_t numel = tensor::shape_numel(cur_shape_);
                if (cur_arena >= 0) {
                    // The activation already lives in the arena: clamp it in
                    // place, no buffer hop.
                    float* p = arena_[cur_arena].data();
                    for (std::int64_t i = 0; i < numel; ++i)
                        if (p[i] < 0.0f) p[i] = 0.0f;
                } else {
                    Tensor& y = arena_[0];
                    y.reset(cur_shape_);
                    for (std::int64_t i = 0; i < numel; ++i)
                        y[i] = cur[i] > 0.0f ? cur[i] : 0.0f;
                    cur = y.data();
                    cur_arena = 0;
                }
                break;
            }
            case Step::Kind::kMaxPool:
            case Step::Kind::kAvgPool: {
                check(cur_shape_.size() == 4,
                      "InferenceEngine: pool expects NCHW input");
                const std::int64_t n = cur_shape_[0], c = cur_shape_[1],
                                   h = cur_shape_[2], w = cur_shape_[3];
                const std::int64_t k = step.pool_kernel;
                check(h % k == 0 && w % k == 0,
                      "InferenceEngine: pool input not divisible by kernel");
                const std::int64_t oh = h / k, ow = w / k;
                const int dst = dst_of(cur_arena);
                Tensor& y = arena_[dst];
                if (cn) {
                    y.reset(c, n * oh * ow);
                } else {
                    y.reset(n, c, oh, ow);
                }
                PoolCtx ctx;
                ctx.x = cur;
                ctx.y = y.data();
                ctx.h = h;
                ctx.w = w;
                ctx.k = k;
                ctx.oh = oh;
                ctx.ow = ow;
                ctx.is_max = step.kind == Step::Kind::kMaxPool;
                // Plane i → plane i in both layouts, so one dispatch over
                // all n·c planes serves NCHW and CN alike.
                util::parallel_for_workers(0, static_cast<std::size_t>(n * c),
                                           &pool_kernel, &ctx);
                cur = y.data();
                cur_arena = dst;
                cur_shape_.resize(4);
                cur_shape_[0] = n;
                cur_shape_[1] = c;
                cur_shape_[2] = oh;
                cur_shape_[3] = ow;
                break;
            }
            case Step::Kind::kFlatten: {
                check(!cur_shape_.empty(),
                      "InferenceEngine: flatten expects a batch dimension");
                if (cn) to_batch_major();  // one transpose, smallest map
                const std::int64_t n = cur_shape_[0];
                const std::int64_t numel = tensor::shape_numel(cur_shape_);
                cur_shape_.resize(2);
                cur_shape_[0] = n;
                cur_shape_[1] = n > 0 ? numel / n : 0;
                break;  // beyond the transpose the buffer is untouched
            }
            case Step::Kind::kGeneric: {
                // Correctness fallback for layer types the engine doesn't
                // know: route through the allocating Layer::forward.
                if (cn) to_batch_major();
                if (cur_arena < 0) {
                    Tensor& in = arena_[0];
                    in.reset(cur_shape_);
                    std::memcpy(in.data(), cur,
                                static_cast<std::size_t>(in.numel()) *
                                    sizeof(float));
                    cur_arena = 0;
                } else {
                    arena_[cur_arena].reset(cur_shape_);  // metadata only
                }
                const int dst = dst_of(cur_arena);
                arena_[dst] =
                    step.layer->forward(arena_[cur_arena], /*training=*/false);
                cur = arena_[dst].data();
                cur_arena = dst;
                cur_shape_ = arena_[dst].shape();
                break;
            }
        }
    }

    if (cn) to_batch_major();  // model ends inside the conv trunk
    // Copy the result out of the shared per-thread arena: the returned
    // reference must survive other engines forwarding on this thread.
    out_.reset(cur_shape_);
    std::memcpy(out_.data(), cur,
                static_cast<std::size_t>(out_.numel()) * sizeof(float));
    return out_;
}

const Tensor& InferenceEngine::forward_batched(
    const float* x, const Shape& shape, const CompiledInstance* const* instances,
    std::size_t count) {
    check(count >= 1, "InferenceEngine::forward_batched: need ≥1 instance");
    for (std::size_t r = 0; r < count; ++r)
        check(instances[r] != nullptr &&
                  instances[r]->slots.size() == mappable_count_,
              "InferenceEngine::forward_batched: instance slot count mismatch");
    XS_TIMER_NS("nn.forward.ns");
    XS_COUNT("nn.forwards", static_cast<std::uint64_t>(count));
    XS_TRACE_SPAN("forward_batched");

    EngineScratch& scratch = engine_scratch();
    Tensor* const batch_arena_ = scratch.arena;
    std::vector<float>& packedb_ = scratch.packedb;
    const std::int64_t R = static_cast<std::int64_t>(count);
    cur_shape_ = shape;
    const float* cur = x;
    int cur_arena = -1;  // index into batch_arena_ once an arena is written
    bool cn = false;     // channel-major conv-trunk layout (per lane block)
    // While `uniform`, every lane shares one activation — the caller's
    // input, untouched (weightless prefix steps that would write a buffer
    // materialize lanes first). Divergence happens at the first step that
    // reads instance weights; until then packing/pooling work is done once
    // for all R lanes.
    bool uniform = true;
    std::size_t slot = 0;
    const auto dst_of = [](int arena) { return arena == 0 ? 1 : 0; };
    const auto block_numel = [&]() { return tensor::shape_numel(cur_shape_); };

    // Copy the shared activation into R lane blocks; from here on each lane
    // transforms its own block.
    const auto materialize_lanes = [&]() {
        const std::int64_t block = block_numel();
        const int dst = dst_of(cur_arena);
        Tensor& y = batch_arena_[dst];
        y.reset(R, block);
        for (std::int64_t r = 0; r < R; ++r)
            std::memcpy(y.data() + r * block, cur,
                        static_cast<std::size_t>(block) * sizeof(float));
        cur = y.data();
        cur_arena = dst;
        uniform = false;
    };

    // Per-lane CN → batch-major transpose (flatten boundary / trunk end).
    const auto to_batch_major_lanes = [&]() {
        const std::int64_t n = cur_shape_[0], c = cur_shape_[1],
                           hw = cur_shape_[2] * cur_shape_[3];
        const std::int64_t block = n * c * hw;
        const int dst = dst_of(cur_arena);
        Tensor& y = batch_arena_[dst];
        y.reset(R, block);
        for (std::int64_t r = 0; r < R; ++r) {
            const float* src = cur + r * block;
            float* dp = y.data() + r * block;
            for (std::int64_t ch = 0; ch < c; ++ch)
                for (std::int64_t i = 0; i < n; ++i)
                    std::memcpy(dp + (i * c + ch) * hw, src + (ch * n + i) * hw,
                                static_cast<std::size_t>(hw) * sizeof(float));
        }
        cur = y.data();
        cur_arena = dst;
        cn = false;
    };

    for (Step& step : steps_) {
        if (uniform) {
            if (step.kind == Step::Kind::kFlatten) {
                check(!cur_shape_.empty(),
                      "InferenceEngine: flatten expects a batch dimension");
                const std::int64_t n = cur_shape_[0];
                const std::int64_t numel = block_numel();
                cur_shape_.resize(2);
                cur_shape_[0] = n;
                cur_shape_[1] = n > 0 ? numel / n : 0;
                continue;
            }
            if (step.kind != Step::Kind::kConv &&
                step.kind != Step::Kind::kLinear)
                materialize_lanes();
        }
        switch (step.kind) {
            case Step::Kind::kConv: {
                XS_TIMER_NS("nn.step.conv.ns");
                XS_TRACE_SPAN("conv");
                check(cur_shape_.size() == 4 && cur_shape_[1] == step.cin,
                      "InferenceEngine: conv input shape mismatch");
                const std::int64_t n = cur_shape_[0], h = cur_shape_[2],
                                   w = cur_shape_[3];
                const std::int64_t oh =
                    tensor::conv_out_size(h, step.k, step.stride, step.pad);
                const std::int64_t ow =
                    tensor::conv_out_size(w, step.k, step.stride, step.pad);
                const std::int64_t n_cols = n * oh * ow;
                const std::int64_t in_block = block_numel();
                const std::int64_t out_block = step.cout * n_cols;
                const std::int64_t packed_size =
                    tensor::packed_b_size(step.patch, n_cols);
                if (static_cast<std::int64_t>(packedb_.size()) < packed_size)
                    packedb_.resize(static_cast<std::size_t>(packed_size));
                const int dst = dst_of(cur_arena);
                Tensor& y = batch_arena_[dst];
                y.reset(R, out_block);
                PackCtx pctx;
                pctx.packed = packedb_.data();
                pctx.n = n;
                pctx.cin = step.cin;
                pctx.h = h;
                pctx.w = w;
                pctx.s_img = cn ? h * w : step.cin * h * w;
                pctx.s_c = cn ? n * h * w : h * w;
                pctx.k = step.k;
                pctx.stride = step.stride;
                pctx.pad = step.pad;
                TileCtx tctx;
                tctx.packed = packedb_.data();
                tctx.lda = step.patch;
                tctx.n_cols = n_cols;
                tctx.relu = step.relu;
                const std::int64_t total_panels =
                    tensor::packed_b_panels(n_cols);
                const std::int64_t block_panels =
                    tensor::kPackNc / tensor::kPackNr;
                const std::int64_t row_panels =
                    (step.cout + tensor::kPackMr - 1) / tensor::kPackMr;
                const std::int64_t n_blocks =
                    (total_panels + block_panels - 1) / block_panels;
                const auto set_lane = [&](std::int64_t r) {
                    const CompiledInstance::Slot& sl = instances[r]->slots[slot];
                    tctx.wpack = &sl.wpack;
                    tctx.wraw = sl.w.data();
                    tctx.bias = step.epilogue ? sl.b.data() : nullptr;
                    tctx.y = y.data() + r * out_block;
                };
                const bool split_timing = util::metrics::detail_enabled();
                std::uint64_t pack_ns = 0, kernel_ns = 0;
                const auto run_blocks = [&]() {
                    for (std::int64_t nb = 0; nb < n_blocks; ++nb) {
                        const std::int64_t p_lo = nb * block_panels;
                        const std::int64_t p_hi =
                            std::min(total_panels, p_lo + block_panels);
                        const std::uint64_t t0 =
                            split_timing ? util::metrics::detail::now_ns() : 0;
                        util::parallel_for_workers(
                            static_cast<std::size_t>(p_lo),
                            static_cast<std::size_t>(p_hi), &pack_kernel,
                            &pctx);
                        if (split_timing) {
                            const std::uint64_t t1 =
                                util::metrics::detail::now_ns();
                            pack_ns += t1 - t0;
                            kernel_ns -= t1;  // closed after the GEMM below
                        }
                        if (uniform) {
                            // Shared input: pack each n-block once and GEMM
                            // it for every instance while cache-resident —
                            // the R-fold pack amortization that makes the
                            // repeat batch cheaper than R forwards.
                            for (std::int64_t r = 0; r < R; ++r) {
                                set_lane(r);
                                util::parallel_for_workers(
                                    static_cast<std::size_t>(nb * row_panels),
                                    static_cast<std::size_t>((nb + 1) *
                                                             row_panels),
                                    &gemm_tile_kernel, &tctx);
                            }
                        } else {
                            util::parallel_for_workers(
                                static_cast<std::size_t>(nb * row_panels),
                                static_cast<std::size_t>((nb + 1) * row_panels),
                                &gemm_tile_kernel, &tctx);
                        }
                        if (split_timing)
                            kernel_ns += util::metrics::detail::now_ns();
                    }
                };
                if (uniform) {
                    pctx.x = cur;
                    run_blocks();
                    uniform = false;
                } else {
                    for (std::int64_t r = 0; r < R; ++r) {
                        pctx.x = cur + r * in_block;
                        set_lane(r);
                        run_blocks();
                    }
                }
                if (split_timing) {
                    static const util::metrics::Histogram pack_hist =
                        util::metrics::histogram("gemm.pack.ns");
                    static const util::metrics::Histogram kernel_hist =
                        util::metrics::histogram("gemm.kernel.ns");
                    pack_hist.record(pack_ns);
                    kernel_hist.record(kernel_ns);
                }
                cur = y.data();
                cur_arena = dst;
                cn = true;
                cur_shape_.resize(4);
                cur_shape_[0] = n;
                cur_shape_[1] = step.cout;
                cur_shape_[2] = oh;
                cur_shape_[3] = ow;
                ++slot;
                break;
            }
            case Step::Kind::kLinear: {
                XS_TIMER_NS("nn.step.linear.ns");
                XS_TRACE_SPAN("linear");
                check(cur_shape_.size() == 2 &&
                          cur_shape_[1] == step.in_features,
                      "InferenceEngine: linear input shape mismatch");
                const std::int64_t n = cur_shape_[0];
                const std::int64_t in = step.in_features,
                                   out = step.out_features;
                const std::int64_t in_block = n * in, out_block = n * out;
                const int dst = dst_of(cur_arena);
                Tensor& y = batch_arena_[dst];
                y.reset(R, out_block);
                for (std::int64_t r = 0; r < R; ++r) {
                    const CompiledInstance::Slot& sl = instances[r]->slots[slot];
                    const float* xr = uniform ? cur : cur + r * in_block;
                    float* yr = y.data() + r * out_block;
                    tensor::gemm_serial(n, out, in, 1.0f, xr, in, sl.w.data(),
                                        out, 0.0f, yr, out);
                    if (step.epilogue) {
                        for (std::int64_t i = 0; i < n; ++i) {
                            float* row = yr + i * out;
                            if (step.relu) {
                                for (std::int64_t o = 0; o < out; ++o)
                                    row[o] = std::max(row[o] + sl.b[o], 0.0f);
                            } else {
                                for (std::int64_t o = 0; o < out; ++o)
                                    row[o] += sl.b[o];
                            }
                        }
                    }
                }
                cur = y.data();
                cur_arena = dst;
                uniform = false;
                cur_shape_.resize(2);
                cur_shape_[0] = n;
                cur_shape_[1] = out;
                ++slot;
                break;
            }
            case Step::Kind::kBatchNorm: {
                check(cur_shape_.size() == 4,
                      "InferenceEngine: BatchNorm expects NCHW input");
                auto* bn = static_cast<BatchNorm2d*>(step.layer);
                check(cur_shape_[1] == bn->channels(),
                      "InferenceEngine: BatchNorm channel mismatch");
                const std::int64_t n = cur_shape_[0], c = cur_shape_[1],
                                   hw = cur_shape_[2] * cur_shape_[3];
                const std::int64_t block = n * c * hw;
                const int dst = dst_of(cur_arena);
                Tensor& y = batch_arena_[dst];
                y.reset(R, block);
                for (std::int64_t ch = 0; ch < c; ++ch) {
                    double sd, td;
                    bn->inference_affine(ch, sd, td);
                    const float s = static_cast<float>(sd);
                    const float t = static_cast<float>(td);
                    for (std::int64_t r = 0; r < R; ++r) {
                        const float* src = cur + r * block;
                        float* dp = y.data() + r * block;
                        if (cn) {
                            const float* px = src + ch * n * hw;
                            float* py = dp + ch * n * hw;
                            for (std::int64_t q = 0; q < n * hw; ++q)
                                py[q] = s * px[q] + t;
                            continue;
                        }
                        for (std::int64_t i = 0; i < n; ++i) {
                            const float* px = src + (i * c + ch) * hw;
                            float* py = dp + (i * c + ch) * hw;
                            for (std::int64_t q = 0; q < hw; ++q)
                                py[q] = s * px[q] + t;
                        }
                    }
                }
                cur = y.data();
                cur_arena = dst;
                break;
            }
            case Step::Kind::kReLU: {
                // Once diverged the activation always lives in a batch
                // arena: clamp all lanes in one pass, no buffer hop.
                float* p = batch_arena_[cur_arena].data();
                const std::int64_t numel = R * block_numel();
                for (std::int64_t i = 0; i < numel; ++i)
                    if (p[i] < 0.0f) p[i] = 0.0f;
                break;
            }
            case Step::Kind::kMaxPool:
            case Step::Kind::kAvgPool: {
                check(cur_shape_.size() == 4,
                      "InferenceEngine: pool expects NCHW input");
                const std::int64_t n = cur_shape_[0], c = cur_shape_[1],
                                   h = cur_shape_[2], w = cur_shape_[3];
                const std::int64_t k = step.pool_kernel;
                check(h % k == 0 && w % k == 0,
                      "InferenceEngine: pool input not divisible by kernel");
                const std::int64_t oh = h / k, ow = w / k;
                const int dst = dst_of(cur_arena);
                Tensor& y = batch_arena_[dst];
                y.reset(R, c * n * oh * ow);
                PoolCtx ctx;
                ctx.x = cur;
                ctx.y = y.data();
                ctx.h = h;
                ctx.w = w;
                ctx.k = k;
                ctx.oh = oh;
                ctx.ow = ow;
                ctx.is_max = step.kind == Step::Kind::kMaxPool;
                // Lane blocks are contiguous and pooling is plane-local, so
                // one dispatch over all R·n·c planes serves every lane.
                util::parallel_for_workers(
                    0, static_cast<std::size_t>(R * n * c), &pool_kernel, &ctx);
                cur = y.data();
                cur_arena = dst;
                cur_shape_.resize(4);
                cur_shape_[0] = n;
                cur_shape_[1] = c;
                cur_shape_[2] = oh;
                cur_shape_[3] = ow;
                break;
            }
            case Step::Kind::kFlatten: {
                check(!cur_shape_.empty(),
                      "InferenceEngine: flatten expects a batch dimension");
                if (cn) to_batch_major_lanes();
                const std::int64_t n = cur_shape_[0];
                const std::int64_t numel = block_numel();
                cur_shape_.resize(2);
                cur_shape_[0] = n;
                cur_shape_[1] = n > 0 ? numel / n : 0;
                break;
            }
            case Step::Kind::kGeneric: {
                // Correctness fallback: route each lane's block through the
                // allocating Layer::forward (kGeneric allocates in the
                // scalar path too).
                if (cn) to_batch_major_lanes();
                const std::int64_t in_block = block_numel();
                Tensor in(cur_shape_);
                const int dst = dst_of(cur_arena);
                Tensor& y = batch_arena_[dst];
                std::int64_t out_block = 0;
                Shape out_shape;
                for (std::int64_t r = 0; r < R; ++r) {
                    std::memcpy(in.data(), cur + r * in_block,
                                static_cast<std::size_t>(in_block) *
                                    sizeof(float));
                    const Tensor out =
                        step.layer->forward(in, /*training=*/false);
                    if (r == 0) {
                        out_block = out.numel();
                        out_shape = out.shape();
                        y.reset(R, out_block);
                    }
                    std::memcpy(y.data() + r * out_block, out.data(),
                                static_cast<std::size_t>(out_block) *
                                    sizeof(float));
                }
                cur = y.data();
                cur_arena = dst;
                cur_shape_ = out_shape;
                break;
            }
        }
    }

    if (uniform) materialize_lanes();  // weightless model: identical lanes
    if (cn) to_batch_major_lanes();
    check(!cur_shape_.empty(),
          "InferenceEngine::forward_batched: scalar output shape");
    cur_shape_[0] *= R;  // lane-major stacking along the batch dimension
    // Copy the stacked result out of the shared per-thread arena: the
    // returned reference must survive other engines forwarding on this
    // thread.
    out_.reset(cur_shape_);
    std::memcpy(out_.data(), cur,
                static_cast<std::size_t>(out_.numel()) * sizeof(float));
    return out_;
}

}  // namespace xs::nn
