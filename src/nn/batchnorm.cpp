#include "nn/batchnorm.h"

#include "tensor/ops.h"

#include <cmath>
#include <sstream>

namespace xs::nn {

using tensor::check;
using tensor::shape_to_string;

BatchNorm2d::BatchNorm2d(std::int64_t channels, float eps, float momentum)
    : channels_(channels), eps_(eps), momentum_(momentum) {
    check(channels > 0, "BatchNorm2d: channels must be positive");
    gamma_ = Param("gamma", Tensor({channels}, 1.0f));
    beta_ = Param("beta", Tensor({channels}, 0.0f));
    running_mean_ = Tensor({channels}, 0.0f);
    running_var_ = Tensor({channels}, 1.0f);
}

Tensor BatchNorm2d::forward(const Tensor& x, bool training) {
    if (x.rank() != 4 || x.dim(1) != channels_)  // lazy message: hot path
        check(false, "BatchNorm2d " + name() + ": bad input " +
                         shape_to_string(x.shape()));
    const std::int64_t n = x.dim(0), hw = x.dim(2) * x.dim(3);
    const std::int64_t count = n * hw;

    Tensor y(x.shape());
    if (!training) {
        // Inference: running statistics only, expressed as a per-channel
        // affine y = s·x + t — one pass, no cached state. (The inference
        // engine folds this same affine into the preceding conv's weights;
        // see DESIGN.md §6.)
        for (std::int64_t c = 0; c < channels_; ++c) {
            double sd, td;
            inference_affine(c, sd, td);
            const float s = static_cast<float>(sd);
            const float t = static_cast<float>(td);
            for (std::int64_t i = 0; i < n; ++i) {
                const float* px = x.data() + (i * channels_ + c) * hw;
                float* py = y.data() + (i * channels_ + c) * hw;
                for (std::int64_t q = 0; q < hw; ++q) py[q] = s * px[q] + t;
            }
        }
        return y;
    }

    input_ = x;
    batch_mean_.assign(static_cast<std::size_t>(channels_), 0.0);
    batch_inv_std_.assign(static_cast<std::size_t>(channels_), 0.0);

    for (std::int64_t c = 0; c < channels_; ++c) {
        double mean, var;
        {
            double acc = 0.0;
            for (std::int64_t i = 0; i < n; ++i) {
                const float* p = x.data() + (i * channels_ + c) * hw;
                for (std::int64_t q = 0; q < hw; ++q) acc += p[q];
            }
            mean = acc / static_cast<double>(count);
            double vacc = 0.0;
            for (std::int64_t i = 0; i < n; ++i) {
                const float* p = x.data() + (i * channels_ + c) * hw;
                for (std::int64_t q = 0; q < hw; ++q) {
                    const double d = p[q] - mean;
                    vacc += d * d;
                }
            }
            var = vacc / static_cast<double>(count);
            running_mean_[c] = static_cast<float>((1.0 - momentum_) * running_mean_[c] +
                                                  momentum_ * mean);
            running_var_[c] = static_cast<float>((1.0 - momentum_) * running_var_[c] +
                                                 momentum_ * var);
        }
        const double inv_std = 1.0 / std::sqrt(var + eps_);
        batch_mean_[static_cast<std::size_t>(c)] = mean;
        batch_inv_std_[static_cast<std::size_t>(c)] = inv_std;
        const float g = gamma_.value[c], b = beta_.value[c];
        for (std::int64_t i = 0; i < n; ++i) {
            const float* px = x.data() + (i * channels_ + c) * hw;
            float* py = y.data() + (i * channels_ + c) * hw;
            for (std::int64_t q = 0; q < hw; ++q)
                py[q] = static_cast<float>(g * (px[q] - mean) * inv_std + b);
        }
    }
    return y;
}

Tensor BatchNorm2d::backward(const Tensor& dy) {
    const std::int64_t n = input_.dim(0), hw = input_.dim(2) * input_.dim(3);
    const std::int64_t count = n * hw;
    check(dy.same_shape(input_), "BatchNorm2d " + name() + ": grad shape mismatch");

    Tensor dx(input_.shape());
    for (std::int64_t c = 0; c < channels_; ++c) {
        const double mean = batch_mean_[static_cast<std::size_t>(c)];
        const double inv_std = batch_inv_std_[static_cast<std::size_t>(c)];
        const double g = gamma_.value[c];

        // Accumulate dL/dgamma, dL/dbeta, and the two reduction terms of the
        // batch-norm backward formula.
        double sum_dy = 0.0, sum_dy_xhat = 0.0;
        for (std::int64_t i = 0; i < n; ++i) {
            const float* pdy = dy.data() + (i * channels_ + c) * hw;
            const float* px = input_.data() + (i * channels_ + c) * hw;
            for (std::int64_t q = 0; q < hw; ++q) {
                const double xhat = (px[q] - mean) * inv_std;
                sum_dy += pdy[q];
                sum_dy_xhat += pdy[q] * xhat;
            }
        }
        gamma_.grad[c] += static_cast<float>(sum_dy_xhat);
        beta_.grad[c] += static_cast<float>(sum_dy);

        const double inv_count = 1.0 / static_cast<double>(count);
        for (std::int64_t i = 0; i < n; ++i) {
            const float* pdy = dy.data() + (i * channels_ + c) * hw;
            const float* px = input_.data() + (i * channels_ + c) * hw;
            float* pdx = dx.data() + (i * channels_ + c) * hw;
            for (std::int64_t q = 0; q < hw; ++q) {
                const double xhat = (px[q] - mean) * inv_std;
                pdx[q] = static_cast<float>(
                    g * inv_std *
                    (pdy[q] - inv_count * (sum_dy + xhat * sum_dy_xhat)));
            }
        }
    }
    return dx;
}

std::string BatchNorm2d::describe() const {
    std::ostringstream os;
    os << "BatchNorm2d(" << channels_ << ")";
    return os.str();
}

}  // namespace xs::nn
