// Optimizers: SGD with momentum + weight decay, and Adam. Weight decay is
// decoupled (AdamW-style) for Adam and classic L2 for SGD.
#pragma once

#include "nn/layer.h"

#include <vector>

namespace xs::nn {

class Optimizer {
public:
    explicit Optimizer(std::vector<Param*> params) : params_(std::move(params)) {}
    virtual ~Optimizer() = default;

    virtual void step() = 0;

    void set_lr(float lr) { lr_ = lr; }
    float lr() const { return lr_; }

protected:
    std::vector<Param*> params_;
    float lr_ = 0.01f;
};

class Sgd : public Optimizer {
public:
    Sgd(std::vector<Param*> params, float lr, float momentum = 0.9f,
        float weight_decay = 0.0f);

    void step() override;

private:
    float momentum_, weight_decay_;
    std::vector<Tensor> velocity_;
};

class Adam : public Optimizer {
public:
    Adam(std::vector<Param*> params, float lr, float beta1 = 0.9f,
         float beta2 = 0.999f, float eps = 1e-8f, float weight_decay = 0.0f);

    void step() override;

private:
    float beta1_, beta2_, eps_, weight_decay_;
    std::int64_t t_ = 0;
    std::vector<Tensor> m_, v_;
};

}  // namespace xs::nn
