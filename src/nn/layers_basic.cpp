#include "nn/layers_basic.h"

#include "tensor/ops.h"

#include <limits>
#include <sstream>

namespace xs::nn {

using tensor::check;

// ---- ReLU ----

Tensor ReLU::forward(const Tensor& x, bool training) {
    if (training) input_ = x;  // backward needs the pre-activation sign
    Tensor y = x;
    float* p = y.data();
    for (std::int64_t i = 0; i < y.numel(); ++i)
        if (p[i] < 0.0f) p[i] = 0.0f;
    return y;
}

Tensor ReLU::backward(const Tensor& dy) {
    check(dy.same_shape(input_), "ReLU: grad shape mismatch");
    Tensor dx = dy;
    const float* px = input_.data();
    float* pd = dx.data();
    for (std::int64_t i = 0; i < dx.numel(); ++i)
        if (px[i] <= 0.0f) pd[i] = 0.0f;
    return dx;
}

// ---- MaxPool2d ----

MaxPool2d::MaxPool2d(std::int64_t kernel) : kernel_(kernel) {
    check(kernel > 0, "MaxPool2d: kernel must be positive");
}

Tensor MaxPool2d::forward(const Tensor& x, bool training) {
    check(x.rank() == 4, "MaxPool2d: expects NCHW input");
    const std::int64_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
    check(h % kernel_ == 0 && w % kernel_ == 0,
          "MaxPool2d: input spatial size must be divisible by kernel");
    const std::int64_t oh = h / kernel_, ow = w / kernel_;
    in_shape_ = x.shape();
    Tensor y({n, c, oh, ow});
    // The argmax routing table is backward-only state.
    if (training) argmax_.assign(static_cast<std::size_t>(y.numel()), 0);

    std::int64_t out_idx = 0;
    for (std::int64_t i = 0; i < n; ++i)
        for (std::int64_t ch = 0; ch < c; ++ch) {
            const float* plane = x.data() + (i * c + ch) * h * w;
            for (std::int64_t oi = 0; oi < oh; ++oi)
                for (std::int64_t oj = 0; oj < ow; ++oj, ++out_idx) {
                    float best = -std::numeric_limits<float>::infinity();
                    std::int64_t best_idx = 0;
                    for (std::int64_t ki = 0; ki < kernel_; ++ki)
                        for (std::int64_t kj = 0; kj < kernel_; ++kj) {
                            const std::int64_t idx =
                                (oi * kernel_ + ki) * w + (oj * kernel_ + kj);
                            if (plane[idx] > best) {
                                best = plane[idx];
                                best_idx = idx;
                            }
                        }
                    y[out_idx] = best;
                    if (training)
                        argmax_[static_cast<std::size_t>(out_idx)] =
                            (i * c + ch) * h * w + best_idx;
                }
        }
    return y;
}

Tensor MaxPool2d::backward(const Tensor& dy) {
    check(static_cast<std::size_t>(dy.numel()) == argmax_.size(),
          "MaxPool2d: grad size mismatch");
    Tensor dx(in_shape_);
    for (std::int64_t i = 0; i < dy.numel(); ++i)
        dx[argmax_[static_cast<std::size_t>(i)]] += dy[i];
    return dx;
}

std::string MaxPool2d::describe() const {
    std::ostringstream os;
    os << "MaxPool2d(" << kernel_ << ")";
    return os.str();
}

// ---- AvgPool2d ----

AvgPool2d::AvgPool2d(std::int64_t kernel) : kernel_(kernel) {
    check(kernel > 0, "AvgPool2d: kernel must be positive");
}

Tensor AvgPool2d::forward(const Tensor& x, bool /*training*/) {
    check(x.rank() == 4, "AvgPool2d: expects NCHW input");
    const std::int64_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
    check(h % kernel_ == 0 && w % kernel_ == 0,
          "AvgPool2d: input spatial size must be divisible by kernel");
    const std::int64_t oh = h / kernel_, ow = w / kernel_;
    in_shape_ = x.shape();
    Tensor y({n, c, oh, ow});
    const float inv = 1.0f / static_cast<float>(kernel_ * kernel_);

    std::int64_t out_idx = 0;
    for (std::int64_t i = 0; i < n; ++i)
        for (std::int64_t ch = 0; ch < c; ++ch) {
            const float* plane = x.data() + (i * c + ch) * h * w;
            for (std::int64_t oi = 0; oi < oh; ++oi)
                for (std::int64_t oj = 0; oj < ow; ++oj, ++out_idx) {
                    double acc = 0.0;
                    for (std::int64_t ki = 0; ki < kernel_; ++ki)
                        for (std::int64_t kj = 0; kj < kernel_; ++kj)
                            acc += plane[(oi * kernel_ + ki) * w + (oj * kernel_ + kj)];
                    y[out_idx] = static_cast<float>(acc) * inv;
                }
        }
    return y;
}

Tensor AvgPool2d::backward(const Tensor& dy) {
    const std::int64_t n = in_shape_[0], c = in_shape_[1], h = in_shape_[2],
                       w = in_shape_[3];
    const std::int64_t oh = h / kernel_, ow = w / kernel_;
    Tensor dx(in_shape_);
    const float inv = 1.0f / static_cast<float>(kernel_ * kernel_);

    std::int64_t out_idx = 0;
    for (std::int64_t i = 0; i < n; ++i)
        for (std::int64_t ch = 0; ch < c; ++ch) {
            float* plane = dx.data() + (i * c + ch) * h * w;
            for (std::int64_t oi = 0; oi < oh; ++oi)
                for (std::int64_t oj = 0; oj < ow; ++oj, ++out_idx) {
                    const float g = dy[out_idx] * inv;
                    for (std::int64_t ki = 0; ki < kernel_; ++ki)
                        for (std::int64_t kj = 0; kj < kernel_; ++kj)
                            plane[(oi * kernel_ + ki) * w + (oj * kernel_ + kj)] += g;
                }
        }
    return dx;
}

std::string AvgPool2d::describe() const {
    std::ostringstream os;
    os << "AvgPool2d(" << kernel_ << ")";
    return os.str();
}

// ---- Flatten ----

Tensor Flatten::forward(const Tensor& x, bool /*training*/) {
    in_shape_ = x.shape();
    const std::int64_t n = x.dim(0);
    return x.reshaped({n, x.numel() / n});
}

Tensor Flatten::backward(const Tensor& dy) { return dy.reshaped(in_shape_); }

// ---- Dropout ----

Dropout::Dropout(float p, util::Rng& rng) : p_(p), rng_(rng.split(0xd20u)) {
    check(p >= 0.0f && p < 1.0f, "Dropout: p must be in [0, 1)");
}

Tensor Dropout::forward(const Tensor& x, bool training) {
    if (!training || p_ == 0.0f) {
        mask_valid_ = false;
        return x;
    }
    mask_ = Tensor(x.shape());
    mask_valid_ = true;
    const float keep_scale = 1.0f / (1.0f - p_);
    Tensor y = x;
    float* pm = mask_.data();
    float* py = y.data();
    for (std::int64_t i = 0; i < y.numel(); ++i) {
        const bool keep = rng_.uniform() >= p_;
        pm[i] = keep ? keep_scale : 0.0f;
        py[i] *= pm[i];
    }
    return y;
}

Tensor Dropout::backward(const Tensor& dy) {
    if (!mask_valid_) return dy;
    return tensor::mul(dy, mask_);
}

std::string Dropout::describe() const {
    std::ostringstream os;
    os << "Dropout(" << p_ << ")";
    return os.str();
}

}  // namespace xs::nn
