// Layer abstraction: explicit forward/backward with cached activations.
//
// The library deliberately avoids a general autograd graph — every layer
// knows its own backward rule, which keeps the implementation small,
// deterministic, and easy to verify with finite differences (see
// tests/nn_gradcheck_test.cpp).
#pragma once

#include "tensor/tensor.h"

#include <memory>
#include <string>
#include <vector>

namespace xs::nn {

using tensor::Tensor;

// A trainable parameter: value + gradient accumulated during backward.
struct Param {
    std::string name;   // unique within a model, e.g. "conv3.weight"
    Tensor value;
    Tensor grad;

    Param() = default;
    Param(std::string n, Tensor v) : name(std::move(n)), value(std::move(v)) {
        grad = Tensor(value.shape());
    }

    void zero_grad() { grad.zero(); }
};

class Layer {
public:
    virtual ~Layer() = default;

    // Forward pass. `training` toggles BN batch statistics / dropout, and
    // gates every backward cache: layers must keep NO per-call state when
    // `training` is false, so eval-mode forwards are side-effect free and an
    // inference engine (nn/infer.h) can stream activations through
    // caller-owned arenas without the layers retaining copies.
    virtual Tensor forward(const Tensor& x, bool training) = 0;

    // Backward pass: receives dL/dy, accumulates parameter grads, returns
    // dL/dx. Must be called after the matching forward(x, /*training=*/true).
    virtual Tensor backward(const Tensor& dy) = 0;

    // True when the layer is the identity at inference time (e.g. Dropout):
    // Sequential::forward and the inference engine skip such layers entirely
    // instead of copying the activation through them.
    virtual bool identity_at_inference() const { return false; }

    // Trainable parameters (empty for stateless layers).
    virtual std::vector<Param*> params() { return {}; }

    // Layer kind, e.g. "Conv2d".
    virtual std::string type() const = 0;

    // Instance name assigned by the model builder, e.g. "conv3".
    const std::string& name() const { return name_; }
    void set_name(std::string name) { name_ = std::move(name); }

    // Human-readable one-line description for model summaries.
    virtual std::string describe() const { return type(); }

private:
    std::string name_;
};

using LayerPtr = std::unique_ptr<Layer>;

}  // namespace xs::nn
