// Sequential model container with named layers and parameter enumeration.
#pragma once

#include "nn/layer.h"

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace xs::nn {

class Sequential {
public:
    Sequential() = default;

    // Non-copyable (layers own cached state), movable.
    Sequential(const Sequential&) = delete;
    Sequential& operator=(const Sequential&) = delete;
    Sequential(Sequential&&) = default;
    Sequential& operator=(Sequential&&) = default;

    // Appends a layer; if `name` is empty a unique "<type><index>" is chosen.
    Layer& add(LayerPtr layer, std::string name = "");

    Tensor forward(const Tensor& x, bool training);
    // Full backward through all layers; returns dL/dinput.
    Tensor backward(const Tensor& dy);

    void zero_grad();

    std::size_t size() const { return layers_.size(); }
    Layer& layer(std::size_t i) { return *layers_[i]; }
    const Layer& layer(std::size_t i) const { return *layers_[i]; }

    // Layer lookup by instance name; nullptr when absent.
    Layer* find(const std::string& name);

    // All trainable parameters with model-scoped names ("conv1.weight").
    struct NamedParam {
        std::string qualified_name;
        Param* param;
    };
    std::vector<NamedParam> named_params();
    std::vector<Param*> params();

    std::int64_t param_count() const;

    // Apply fn to every layer (e.g. to collect conv layers for mapping).
    void for_each(const std::function<void(Layer&)>& fn);

    std::string summary() const;

private:
    std::vector<LayerPtr> layers_;
    std::map<std::string, Layer*> by_name_;
};

}  // namespace xs::nn
