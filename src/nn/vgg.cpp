#include "nn/vgg.h"

#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/layers_basic.h"
#include "nn/linear.h"
#include "tensor/tensor.h"

#include <algorithm>
#include <memory>

namespace xs::nn {
namespace {

// -1 encodes a 2×2 max-pool ("M" in the torchvision configuration strings).
const std::vector<std::int64_t>& plan(const std::string& variant) {
    static const std::vector<std::int64_t> vgg11 = {64, -1, 128, -1, 256, 256, -1,
                                                    512, 512, -1, 512, 512, -1};
    static const std::vector<std::int64_t> vgg16 = {
        64, 64, -1, 128, 128, -1, 256, 256, 256, -1,
        512, 512, 512, -1, 512, 512, 512, -1};
    if (variant == "vgg16") return vgg16;
    tensor::check(variant == "vgg11", "unknown VGG variant '" + variant + "'");
    return vgg11;
}

std::int64_t scaled(std::int64_t base, const VggConfig& config) {
    const auto c = static_cast<std::int64_t>(base * config.width + 0.5);
    return std::max(c, config.min_channels);
}

}  // namespace

std::vector<std::int64_t> vgg_channels(const VggConfig& config) {
    std::vector<std::int64_t> out;
    for (const auto entry : plan(config.variant))
        if (entry > 0) out.push_back(scaled(entry, config));
    return out;
}

std::vector<std::string> vgg_conv_names(const VggConfig& config) {
    std::vector<std::string> names;
    std::size_t idx = 1;
    for (const auto entry : plan(config.variant))
        if (entry > 0) names.push_back("conv" + std::to_string(idx++));
    return names;
}

Sequential build_vgg(const VggConfig& config, util::Rng& rng) {
    Sequential model;
    std::int64_t in_c = config.in_channels;
    std::int64_t spatial = config.input_size;
    std::size_t conv_idx = 1, pool_idx = 1, misc_idx = 1;

    for (const auto entry : plan(config.variant)) {
        if (entry < 0) {
            tensor::check(spatial % 2 == 0, "VGG: input size not divisible by pools");
            model.add(std::make_unique<MaxPool2d>(2),
                      "pool" + std::to_string(pool_idx++));
            spatial /= 2;
            continue;
        }
        const std::int64_t out_c = scaled(entry, config);
        const std::string id = std::to_string(conv_idx);
        // Bias is folded into BN when BN is on (standard practice).
        model.add(std::make_unique<Conv2d>(in_c, out_c, 3, 1, 1, rng,
                                           /*bias=*/!config.batch_norm),
                  "conv" + id);
        if (config.batch_norm)
            model.add(std::make_unique<BatchNorm2d>(out_c), "bn" + id);
        model.add(std::make_unique<ReLU>(), "relu" + std::to_string(misc_idx++));
        in_c = out_c;
        ++conv_idx;
    }

    model.add(std::make_unique<Flatten>(), "flatten");
    const std::int64_t features = in_c * spatial * spatial;
    if (config.classifier_dropout > 0.0f)
        model.add(std::make_unique<Dropout>(config.classifier_dropout, rng), "drop1");
    model.add(std::make_unique<Linear>(features, config.num_classes, rng), "fc1");
    return model;
}

}  // namespace xs::nn
