// Model checkpointing: parameters + BatchNorm running statistics, keyed by
// qualified name. Loading requires an architecturally identical model (the
// benches rebuild from the same VggConfig and then restore).
#pragma once

#include "nn/sequential.h"

#include <string>

namespace xs::nn {

void save_model(Sequential& model, const std::string& path);

// Returns false if the file does not exist; throws on corrupt/mismatched data.
bool load_model(Sequential& model, const std::string& path);

}  // namespace xs::nn
