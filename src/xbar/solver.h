// Nodal circuit solver for a parasitic X×X crossbar (paper Fig. 1(a)).
//
// Network: every crosspoint (i, j) has a row node and a column node bridged
// by the device conductance G_ij. Row nodes chain through Rwire_row and are
// fed from V_in[i] through Rdriver; column nodes chain through Rwire_col and
// terminate through Rsense into virtual ground.
//
// The solver uses line relaxation: alternating exact tridiagonal (Thomas)
// solves of every row chain and every column chain. Wire conductances are
// orders of magnitude above device conductances, so the cross-coupling is
// weak and the iteration converges in a handful of sweeps — much faster than
// point Gauss–Seidel on the same 2·X² system. A dense Gaussian-elimination
// reference (solve_dense) validates it in the test suite.
//
// The hot entry point is the SolveWorkspace overload (DESIGN.md §4): each
// chain's tridiagonal factorization is computed once per solve and reused
// across sweeps, all scratch lives in a caller-owned workspace so the steady
// state performs no heap allocation, and the previous converged voltages can
// warm-start the next solve. Optional SOR over-relaxation is available via
// set_relaxation().
#pragma once

#include "tensor/tensor.h"
#include "xbar/config.h"

#include <vector>

namespace xs::xbar {

// Reusable scratch for CircuitSolver::solve. Buffers grow on demand and are
// never shrunk; after the first solve of a given size, subsequent solves of
// the same size perform zero heap allocations. `vr`/`vc` double as the
// warm-start state: when `warm` is true and the size matches, the next solve
// iterates from the previous converged voltages instead of the flat initial
// guess (a large win across Monte-Carlo repeats and neighbouring tiles,
// whose conductance fields are statistically similar).
struct SolveWorkspace {
    // Node voltages, row-major X×X, double precision (float storage would
    // stall convergence). Valid after a solve; inputs when warm.
    std::vector<double> vr, vc;
    // Sensed per-column output currents (A). Valid after a solve.
    std::vector<double> currents;

    // Per-solve internals: device conductances promoted to double (row- and
    // column-major) and the precomputed Thomas factors of every row/column
    // chain (forward multipliers `m` and reciprocal pivots `inv_d`).
    std::vector<double> g_row, g_col;
    std::vector<double> row_m, row_inv_d;
    std::vector<double> col_m, col_inv_d;
    std::vector<double> rhs;

    std::int64_t n = 0;   // provisioned size
    bool warm = false;    // vr/vc hold a previous solution of size n

    // Outputs of the last solve.
    int iterations = 0;
    double max_delta = 0.0;
    bool converged = false;

    // Provision all buffers for size `size`; drops warm state on resize.
    void ensure(std::int64_t size);
    // Force the next solve to start from the flat initial guess.
    void invalidate() { warm = false; }
};

// Upper bound on the lanes one batched solve processes; callers chunk larger
// repeat counts into groups of this size. Eight doubles fill one AVX-512
// vector (two AVX2 vectors), so the lane loops below vectorize fully.
inline constexpr int kMaxSolveLanes = 8;

// Reusable scratch for CircuitSolver::solve_batched: `lanes` independent
// same-size systems solved together, with every buffer lane-interleaved
// (entry k of lane r lives at index k·lanes + r) so the per-lane inner loops
// are unit-stride vector operations. Warm-start state is per lane: lane r of
// the next batch iterates from lane r's previous converged voltages, giving
// each Monte-Carlo repeat the same warm chain it would have had solving
// alone.
struct BatchedSolveWorkspace {
    std::vector<double> vr, vc;    // node voltages, lane-interleaved
    std::vector<double> currents;  // per-column sensed currents, n×lanes

    // Per-solve internals (see SolveWorkspace). Unlike the scalar
    // workspace, only the reciprocal pivots are stored: the sweep kernel is
    // bandwidth-bound, and the forward multiplier m_k = -gw · inv_d_{k-1}
    // is one multiply away from data the back-substitution streams anyway —
    // recomputing it drops a whole factor array from every sweep. There is
    // also no transposed g copy: lane-major layout puts each element on its
    // own cacheline, so the column half-sweep strides through g_row.
    std::vector<double> g_row;
    std::vector<double> row_inv_d, col_inv_d;
    std::vector<double> rhs;

    std::int64_t n = 0;  // provisioned size
    int lanes = 0;       // provisioned lane count

    // Per-lane warm-start validity and last-solve outputs.
    std::uint8_t warm[kMaxSolveLanes] = {};
    int iterations[kMaxSolveLanes] = {};
    double max_delta[kMaxSolveLanes] = {};
    std::uint8_t converged[kMaxSolveLanes] = {};

    // Provision for (size × lane_count); drops all warm state on change.
    void ensure(std::int64_t size, int lane_count);
    // Force every lane of the next solve to start from the flat guess.
    void invalidate() {
        for (int r = 0; r < kMaxSolveLanes; ++r) warm[r] = 0;
    }
};

struct SolveResult {
    std::vector<double> currents;  // sensed output current per column (A)
    tensor::Tensor v_row;          // row-node voltages (X×X)
    tensor::Tensor v_col;          // column-node voltages (X×X)
    int iterations = 0;            // relaxation sweeps used
    double max_delta = 0.0;        // final sweep's largest voltage update
    bool converged = false;        // tolerance reached within max_sweeps
};

class CircuitSolver {
public:
    explicit CircuitSolver(const CrossbarConfig& config);

    // Solve node voltages/currents for conductances `g` (X×X, siemens) and
    // input voltages `v_in` (X). Parasitic resistances of exactly zero are
    // treated as near-ideal (1 nΩ) conductors.
    SolveResult solve(const tensor::Tensor& g, const std::vector<double>& v_in) const;

    // Zero-allocation variant: results land in ws.vr / ws.vc / ws.currents
    // (plus ws.iterations / ws.max_delta / ws.converged). Returns the
    // converged flag. Warm-starts from ws when it holds a same-size solution.
    bool solve(const tensor::Tensor& g, const double* v_in,
               SolveWorkspace& ws) const;

    // Solve `lanes` (≤ kMaxSolveLanes) independent conductance fields that
    // share the same input voltages in one pass, vectorizing the chain
    // recurrences across lanes. Each lane runs the identical sweep sequence
    // as the scalar overload and freezes at its own convergence sweep, so
    // lane r's voltages, currents, iteration count, and convergence flag are
    // bit-identical to a scalar solve of g[r] with the same warm state.
    void solve_batched(const tensor::Tensor* const* g, int lanes,
                       const double* v_in, BatchedSolveWorkspace& ws) const;

    // Parasitic-free dot product I_j = Σ_i G_ij · V_i.
    std::vector<double> ideal_currents(const tensor::Tensor& g,
                                       const std::vector<double>& v_in) const;
    // Allocation-free variant; `out` must hold X doubles.
    void ideal_currents(const tensor::Tensor& g, const double* v_in,
                        double* out) const;

    // Dense modified-nodal-analysis reference with partial pivoting; O((2X²)³),
    // intended for validation at small X.
    SolveResult solve_dense(const tensor::Tensor& g,
                            const std::vector<double>& v_in) const;

    const CrossbarConfig& config() const { return config_; }

    // Iteration controls. omega is the SOR over-relaxation factor applied to
    // each line update (1.0 = plain alternating line relaxation; values in
    // (1, 2) can cut the sweep count on strongly-coupled configurations).
    void set_tolerance(double volts) { tolerance_ = volts; }
    void set_max_sweeps(int sweeps) { max_sweeps_ = sweeps; }
    void set_relaxation(double omega) { omega_ = omega; }
    double tolerance() const { return tolerance_; }
    int max_sweeps() const { return max_sweeps_; }
    double relaxation() const { return omega_; }

private:
    CrossbarConfig config_;
    double g_driver_, g_wire_row_, g_wire_col_, g_sense_;
    double tolerance_ = 1e-12;  // volts, on the max node update per sweep
    int max_sweeps_ = 20000;
    double omega_ = 1.0;
};

}  // namespace xs::xbar
