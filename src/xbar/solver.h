// Nodal circuit solver for a parasitic X×X crossbar (paper Fig. 1(a)).
//
// Network: every crosspoint (i, j) has a row node and a column node bridged
// by the device conductance G_ij. Row nodes chain through Rwire_row and are
// fed from V_in[i] through Rdriver; column nodes chain through Rwire_col and
// terminate through Rsense into virtual ground.
//
// The solver uses line relaxation: alternating exact tridiagonal (Thomas)
// solves of every row chain and every column chain. Wire conductances are
// orders of magnitude above device conductances, so the cross-coupling is
// weak and the iteration converges in a handful of sweeps — much faster than
// point Gauss–Seidel on the same 2·X² system. A dense Gaussian-elimination
// reference (solve_dense) validates it in the test suite.
#pragma once

#include "tensor/tensor.h"
#include "xbar/config.h"

#include <vector>

namespace xs::xbar {

struct SolveResult {
    std::vector<double> currents;  // sensed output current per column (A)
    tensor::Tensor v_row;          // row-node voltages (X×X)
    tensor::Tensor v_col;          // column-node voltages (X×X)
    int iterations = 0;            // relaxation sweeps used
    double max_delta = 0.0;        // final sweep's largest voltage update
};

class CircuitSolver {
public:
    explicit CircuitSolver(const CrossbarConfig& config);

    // Solve node voltages/currents for conductances `g` (X×X, siemens) and
    // input voltages `v_in` (X). Parasitic resistances of exactly zero are
    // treated as near-ideal (1 nΩ) conductors.
    SolveResult solve(const tensor::Tensor& g, const std::vector<double>& v_in) const;

    // Parasitic-free dot product I_j = Σ_i G_ij · V_i.
    std::vector<double> ideal_currents(const tensor::Tensor& g,
                                       const std::vector<double>& v_in) const;

    // Dense modified-nodal-analysis reference with partial pivoting; O((2X²)³),
    // intended for validation at small X.
    SolveResult solve_dense(const tensor::Tensor& g,
                            const std::vector<double>& v_in) const;

    const CrossbarConfig& config() const { return config_; }

private:
    CrossbarConfig config_;
    double g_driver_, g_wire_row_, g_wire_col_, g_sense_;
    double tolerance_ = 1e-12;  // volts, on the max node update per sweep
    int max_sweeps_ = 20000;
};

}  // namespace xs::xbar
