// Weight ↔ conductance conversion (the "functional modelling" stage of the
// paper's Fig. 2 framework).
//
// Linear mapping with an explicit reference scale:
//     G(|w|) = G_MIN + (|w| / w_ref) · (G_MAX − G_MIN)
// Signs are handled differentially: w = w⁺ − w⁻ with the positive and
// negative parts programmed on separate arrays; the recombined effective
// weight is (G⁺ − G⁻) / k with k = (G_MAX − G_MIN)/w_ref. Keeping w_ref
// frozen across model variants is what gives WCT its low-conductance
// operating region (DESIGN.md §2).
#pragma once

#include "tensor/tensor.h"
#include "xbar/config.h"

namespace xs::xbar {

class ConductanceMapper {
public:
    // w_ref must be positive; weights with |w| > w_ref are clamped to G_MAX.
    ConductanceMapper(const DeviceConfig& device, double w_ref);

    double w_ref() const { return w_ref_; }
    double slope() const { return slope_; }  // k = (G_MAX−G_MIN)/w_ref

    // |w| -> conductance in [G_MIN, G_MAX].
    double to_conductance(double w_abs) const;

    // Differential pair for a signed tile: g_pos/g_neg are tile-shaped.
    // Output tensors are reused when already weight-shaped (no allocation).
    void to_differential(const tensor::Tensor& weights, tensor::Tensor& g_pos,
                         tensor::Tensor& g_neg) const;

    // Effective signed weight of a (possibly degraded) differential pair.
    tensor::Tensor from_differential(const tensor::Tensor& g_pos,
                                     const tensor::Tensor& g_neg) const;
    // Allocation-free variant: reuses `w` when already pair-shaped.
    void from_differential_into(const tensor::Tensor& g_pos,
                                const tensor::Tensor& g_neg,
                                tensor::Tensor& w) const;

private:
    DeviceConfig device_;
    double w_ref_;
    double slope_;
};

}  // namespace xs::xbar
