#include "xbar/pipeline.h"

#include "util/trace.h"
#include "xbar/quantize.h"

namespace xs::xbar {

using tensor::Tensor;

void compensate_columns(Tensor& g_eff, const Tensor& g_before,
                        TileStageContext& ctx) {
    const std::int64_t n = g_eff.dim(0);
    ctx.col_before.assign(static_cast<std::size_t>(n), 0.0);
    ctx.col_after.assign(static_cast<std::size_t>(n), 0.0);
    const float* gb = g_before.data();
    float* ge = g_eff.data();
    for (std::int64_t i = 0; i < n; ++i) {
        const float* gbi = gb + i * n;
        const float* gei = ge + i * n;
        for (std::int64_t j = 0; j < n; ++j) {
            ctx.col_before[static_cast<std::size_t>(j)] += gbi[j];
            ctx.col_after[static_cast<std::size_t>(j)] += gei[j];
        }
    }
    // Reuse col_after as the per-column gain, then scale in one row-major
    // pass (a per-column inner loop would stride through the whole array n
    // times).
    for (std::int64_t j = 0; j < n; ++j) {
        const double after = ctx.col_after[static_cast<std::size_t>(j)];
        ctx.col_after[static_cast<std::size_t>(j)] =
            after <= 0.0
                ? 1.0
                : ctx.col_before[static_cast<std::size_t>(j)] / after;
    }
    for (std::int64_t i = 0; i < n; ++i) {
        float* gei = ge + i * n;
        for (std::int64_t j = 0; j < n; ++j)
            gei[j] *=
                static_cast<float>(ctx.col_after[static_cast<std::size_t>(j)]);
    }
}

namespace {

class QuantizeStage final : public TileStage {
public:
    QuantizeStage(const DeviceConfig& device, std::int64_t levels)
        : device_(device), levels_(levels) {}
    const char* name() const override { return "quantize"; }
    void apply(TileStageContext& ctx) const override {
        quantize_conductance(*ctx.pos, device_, levels_);
        quantize_conductance(*ctx.neg, device_, levels_);
    }

private:
    DeviceConfig device_;
    std::int64_t levels_;
};

class VariationStage final : public TileStage {
public:
    explicit VariationStage(const DeviceConfig& device) : device_(device) {}
    const char* name() const override { return "variation"; }
    void apply(TileStageContext& ctx) const override {
        apply_variation(*ctx.pos, device_, *ctx.rng);
        apply_variation(*ctx.neg, device_, *ctx.rng);
    }

private:
    DeviceConfig device_;
};

class FaultStage final : public TileStage {
public:
    FaultStage(const DeviceConfig& device, const FaultConfig& faults)
        : device_(device), faults_(faults) {}
    const char* name() const override { return "faults"; }
    void apply(TileStageContext& ctx) const override {
        apply_stuck_faults(*ctx.pos, device_, faults_, *ctx.rng);
        apply_stuck_faults(*ctx.neg, device_, faults_, *ctx.rng);
    }

private:
    DeviceConfig device_;
    FaultConfig faults_;
};

// Degrade both arrays through the backend and retarget the active pair at
// the G′ buffers, keeping the pre-parasitic pair reachable for compensation.
class ParasiticStage final : public TileStage {
public:
    explicit ParasiticStage(const CrossbarBackend& backend)
        : backend_(backend),
          circuit_(dynamic_cast<const CircuitBackend*>(&backend)) {}
    const char* name() const override { return "parasitics"; }
    void apply(TileStageContext& ctx) const override {
        backend_.degrade(*ctx.pos, ctx.ws, ctx.pos_result);
        backend_.degrade(*ctx.neg, ctx.ws, ctx.neg_result);
        finish(ctx);
    }

    // Batch the circuit solves across repeat lanes. When both differential
    // arrays of every lane fit the solver's lane budget, pos and neg solve
    // together in ONE call (pos in lanes [0,count), neg in [count,2·count)) —
    // at count = 4 that fills all kMaxSolveLanes and the solver's per-lane
    // inner loops span a full 512-bit double vector. The solves are
    // independent, so cold-start results stay bit-identical to the scalar
    // path; warm starts then chain pos→pos and neg→neg per repeat lane
    // instead of the scalar pos→neg interleave (differences far below float
    // resolution, and only in the already-unpinned warm multi-repeat case —
    // a single lane keeps the scalar chain order exactly).
    void apply_batch(TileStageContext* const* lanes, int count,
                     BatchedDegradeWorkspace& ws) const override {
        if (circuit_ == nullptr || count > kMaxSolveLanes) {
            for (int r = 0; r < count; ++r) apply(*lanes[r]);
            return;
        }
        const Tensor* g[kMaxSolveLanes] = {};
        TileDegradeResult* res[kMaxSolveLanes] = {};
        if (count > 1 && 2 * count <= kMaxSolveLanes) {
            for (int r = 0; r < count; ++r) {
                g[r] = lanes[r]->pos;
                res[r] = &lanes[r]->pos_result;
                g[count + r] = lanes[r]->neg;
                res[count + r] = &lanes[r]->neg_result;
            }
            circuit_->degrade_batch(g, 2 * count, ws, res);
        } else {
            for (int r = 0; r < count; ++r) {
                g[r] = lanes[r]->pos;
                res[r] = &lanes[r]->pos_result;
            }
            circuit_->degrade_batch(g, count, ws, res);
            for (int r = 0; r < count; ++r) {
                g[r] = lanes[r]->neg;
                res[r] = &lanes[r]->neg_result;
            }
            circuit_->degrade_batch(g, count, ws, res);
        }
        for (int r = 0; r < count; ++r) finish(*lanes[r]);
    }

private:
    static void finish(TileStageContext& ctx) {
        ctx.converged = ctx.pos_result.converged && ctx.neg_result.converged;
        ctx.nf = 0.5 * (ctx.pos_result.nf + ctx.neg_result.nf);
        ctx.pre_pos = ctx.pos;
        ctx.pre_neg = ctx.neg;
        ctx.pos = &ctx.pos_result.g_eff;
        ctx.neg = &ctx.neg_result.g_eff;
    }

    const CrossbarBackend& backend_;
    const CircuitBackend* circuit_;
};

class CompensateStage final : public TileStage {
public:
    const char* name() const override { return "compensate"; }
    void apply(TileStageContext& ctx) const override {
        tensor::check(ctx.pre_pos != nullptr,
                      "compensate stage requires a preceding parasitic stage");
        compensate_columns(*ctx.pos, *ctx.pre_pos, ctx);
        compensate_columns(*ctx.neg, *ctx.pre_neg, ctx);
    }
};

}  // namespace

void TilePipeline::set_backend(std::unique_ptr<CrossbarBackend> backend) {
    backend_ = std::move(backend);
}

void TilePipeline::add(std::unique_ptr<TileStage> stage) {
#if XS_TELEMETRY_ENABLED
    stage_timers_.push_back(util::metrics::histogram(
        std::string("xbar.stage.") + stage->name() + ".ns"));
#endif
    stages_.push_back(std::move(stage));
}

void TilePipeline::run(TileStageContext& ctx) const {
#if XS_TELEMETRY_ENABLED
    XS_TIMER_NS("xbar.tile.ns");
    for (std::size_t i = 0; i < stages_.size(); ++i) {
        util::trace::Span span(stages_[i]->name());
        util::metrics::ScopedTimerNs stage_timer(stage_timers_[i]);
        stages_[i]->apply(ctx);
    }
#else
    for (const auto& stage : stages_) stage->apply(ctx);
#endif
}

void TilePipeline::run_batch(TileStageContext* const* lanes, int count,
                             BatchedDegradeWorkspace& ws) const {
#if XS_TELEMETRY_ENABLED
    XS_TIMER_NS("xbar.tile.ns");
    for (std::size_t i = 0; i < stages_.size(); ++i) {
        util::trace::Span span(stages_[i]->name());
        util::metrics::ScopedTimerNs stage_timer(stage_timers_[i]);
        stages_[i]->apply_batch(lanes, count, ws);
    }
#else
    for (const auto& stage : stages_) stage->apply_batch(lanes, count, ws);
#endif
}

std::string TilePipeline::describe() const {
    if (stages_.empty()) return "identity";
    std::string out;
    for (const auto& stage : stages_) {
        if (!out.empty()) out += "|";
        out += stage->name();
        if (stage->name() == std::string("parasitics") && backend_) {
            out += "[";
            out += backend_->name();
            out += "]";
        }
    }
    return out;
}

TilePipeline build_tile_pipeline(const PipelineSpec& spec) {
    TilePipeline pipeline;
    if (spec.conductance_levels >= 2)
        pipeline.add(std::make_unique<QuantizeStage>(spec.xbar.device,
                                                     spec.conductance_levels));
    if (spec.include_variation)
        pipeline.add(std::make_unique<VariationStage>(spec.xbar.device));
    if (spec.faults.any())
        pipeline.add(std::make_unique<FaultStage>(spec.xbar.device, spec.faults));
    const bool parasitics =
        spec.include_parasitics && spec.backend != BackendKind::kIdeal;
    if (parasitics) {
        pipeline.set_backend(make_backend(spec.backend, spec.xbar,
                                          spec.warm_start_solves,
                                          spec.fast_buckets));
        pipeline.add(std::make_unique<ParasiticStage>(*pipeline.backend()));
        if (spec.compensate_columns)
            pipeline.add(std::make_unique<CompensateStage>());
    }
    return pipeline;
}

}  // namespace xs::xbar
