// Crossbar device + circuit parameters (paper Fig. 1(a) / Fig. 2 table).
//
// Device-agnostic regime following the authors' companion papers
// (RxNN, NEAT, SwitchX): R_MIN = 20 kΩ, R_MAX = 200 kΩ (ON/OFF = 10),
// Rdriver = 100 Ω, Rwire_row = 2.5 Ω/segment, Rwire_col = 2.5 Ω/segment,
// Rsense = 100 Ω, Gaussian conductance variation. The interconnect values
// are calibrated so the layer-average NF lands in the regime the paper
// reports (accuracy losses of ~5 % at 16×16 growing to tens of % at 64×64).
#pragma once

#include <cstdint>
#include <string>

namespace xs::xbar {

struct DeviceConfig {
    double r_min = 20e3;   // ohms, lowest programmable resistance (G_MAX)
    double r_max = 200e3;  // ohms, highest programmable resistance (G_MIN)
    // Relative device-to-device conductance variation (sigma/G), applied as
    // G ← G·(1 + ε), ε ~ N(0, sigma). 0 disables variation.
    double sigma_variation = 0.10;

    double g_max() const { return 1.0 / r_min; }
    double g_min() const { return 1.0 / r_max; }
    double on_off_ratio() const { return r_max / r_min; }
};

struct ParasiticsConfig {
    double r_driver = 27.0;     // input driver source resistance (ohms)
    double r_wire_row = 0.9;    // word-line wire resistance per cell (ohms)
    double r_wire_col = 0.9;    // bit-line wire resistance per cell (ohms)
    double r_sense = 27.0;      // sense amplifier input resistance (ohms)
    double v_nom = 0.25;        // nominal read voltage used for calibration (V)

    // Convenience: an ideal (parasitic-free) configuration.
    static ParasiticsConfig ideal();
};

struct CrossbarConfig {
    std::int64_t size = 32;  // X in an X×X array
    DeviceConfig device;
    ParasiticsConfig parasitics;

    std::string describe() const;
};

}  // namespace xs::xbar
