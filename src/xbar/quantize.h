// Write-precision modelling: real memristive devices can only be programmed
// to a finite number of conductance levels. quantize_conductance() snaps a
// conductance matrix onto a uniform grid of `levels` states between G_MIN
// and G_MAX (inclusive), which is the standard "write quantization" model.
//
// (Read-side ADC quantization acts on per-input column currents and cannot
// be folded into an equivalent weight matrix; it is out of scope for the
// W′-folding pipeline — see DESIGN.md §2.)
#pragma once

#include "tensor/tensor.h"
#include "xbar/config.h"

#include <cstdint>

namespace xs::xbar {

// Snap every entry to the nearest of `levels` uniform conductance states.
// levels must be ≥ 2; entries are clamped to [G_MIN, G_MAX] first.
void quantize_conductance(tensor::Tensor& g, const DeviceConfig& device,
                          std::int64_t levels);

// The grid step for a given level count.
double conductance_step(const DeviceConfig& device, std::int64_t levels);

}  // namespace xs::xbar
