#include "xbar/mapper.h"

#include <algorithm>
#include <cmath>

namespace xs::xbar {

using tensor::Tensor;

ConductanceMapper::ConductanceMapper(const DeviceConfig& device, double w_ref)
    : device_(device), w_ref_(w_ref) {
    tensor::check(w_ref > 0.0, "ConductanceMapper: w_ref must be positive");
    slope_ = (device_.g_max() - device_.g_min()) / w_ref_;
}

double ConductanceMapper::to_conductance(double w_abs) const {
    const double g = device_.g_min() + slope_ * w_abs;
    return std::clamp(g, device_.g_min(), device_.g_max());
}

void ConductanceMapper::to_differential(const Tensor& weights, Tensor& g_pos,
                                        Tensor& g_neg) const {
    if (!g_pos.same_shape(weights)) g_pos = Tensor(weights.shape());
    if (!g_neg.same_shape(weights)) g_neg = Tensor(weights.shape());
    const float* w = weights.data();
    float* gp = g_pos.data();
    float* gn = g_neg.data();
    for (std::int64_t i = 0; i < weights.numel(); ++i) {
        const double wp = w[i] > 0.0f ? w[i] : 0.0;
        const double wn = w[i] < 0.0f ? -w[i] : 0.0;
        gp[i] = static_cast<float>(to_conductance(wp));
        gn[i] = static_cast<float>(to_conductance(wn));
    }
}

void ConductanceMapper::from_differential_into(const Tensor& g_pos,
                                               const Tensor& g_neg,
                                               Tensor& w) const {
    tensor::check(g_pos.same_shape(g_neg),
                  "from_differential: pos/neg shape mismatch");
    if (!w.same_shape(g_pos)) w = Tensor(g_pos.shape());
    const float* gp = g_pos.data();
    const float* gn = g_neg.data();
    float* pw = w.data();
    const double inv_k = 1.0 / slope_;
    for (std::int64_t i = 0; i < w.numel(); ++i)
        pw[i] = static_cast<float>((static_cast<double>(gp[i]) - gn[i]) * inv_k);
}

Tensor ConductanceMapper::from_differential(const Tensor& g_pos,
                                            const Tensor& g_neg) const {
    Tensor w;
    from_differential_into(g_pos, g_neg, w);
    return w;
}

}  // namespace xs::xbar
