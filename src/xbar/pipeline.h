// Composable tile non-ideality pipeline (DESIGN.md §8).
//
// The paper's evaluation flow (Fig. 2) applies a sequence of independent
// non-ideality stages to every crossbar tile's differential conductance
// pair: write quantization, Gaussian device variation, stuck-at faults, the
// parasitic circuit model, and optional digital column compensation. This
// header turns that sequence into data — an ordered list of TileStages built
// from the evaluation config — so a new scenario (drift, write noise, ADC
// quantization, …) plugs in as one new stage instead of another branch in
// the evaluator's tile loop.
//
// All mutable per-tile state lives in a TileStageContext owned by the
// calling worker: stages transform the context's *active* differential pair
// in place (the parasitic stage retargets the active pointers at its G′
// buffers and exposes the pre-parasitic pair for the compensation stage).
// After warm-up a worker's context performs no heap allocation, preserving
// the zero-allocation steady state of the solve pipeline (DESIGN.md §4).
#pragma once

#include "tensor/tensor.h"
#include "util/metrics.h"
#include "util/rng.h"
#include "xbar/backend.h"
#include "xbar/config.h"
#include "xbar/degrade.h"
#include "xbar/faults.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace xs::xbar {

// Per-worker pipeline state, reused across tiles, layers and Monte-Carlo
// repeats. begin_tile() rebinds it to the next tile's differential pair.
struct TileStageContext {
    // Active differential pair. Stages read and write through these; a stage
    // may retarget them at its own output buffers (parasitic stage → G′).
    tensor::Tensor* pos = nullptr;
    tensor::Tensor* neg = nullptr;
    // Pre-parasitic pair, set by the parasitic stage for compensation.
    const tensor::Tensor* pre_pos = nullptr;
    const tensor::Tensor* pre_neg = nullptr;
    // Per-tile RNG stream (deterministic regardless of the tile partition).
    util::Rng* rng = nullptr;

    // Per-tile outputs, reset by begin_tile().
    double nf = 0.0;        // average NF over both arrays (parasitic stage)
    bool converged = true;  // circuit solves reached tolerance

    // Worker-lifetime scratch (grown once, then reused).
    DegradeWorkspace ws;
    TileDegradeResult pos_result, neg_result;
    std::vector<double> col_before, col_after;  // compensation column sums

    void begin_tile(tensor::Tensor& g_pos, tensor::Tensor& g_neg,
                    util::Rng& tile_rng) {
        pos = &g_pos;
        neg = &g_neg;
        pre_pos = pre_neg = nullptr;
        rng = &tile_rng;
        nf = 0.0;
        converged = true;
    }
};

// One non-ideality transformation of the active differential pair. Stages
// are immutable after construction and shared by all workers; anything
// mutable lives in the per-worker context.
class TileStage {
public:
    virtual ~TileStage() = default;
    virtual const char* name() const = 0;
    virtual void apply(TileStageContext& ctx) const = 0;

    // Apply the stage to `count` per-repeat contexts of the same tile at
    // once. The default per-lane loop is correct for every stage (each lane
    // has its own RNG stream and buffers); the parasitic stage overrides it
    // to batch the circuit solves across lanes. `ws` is the caller-owned
    // batched solver scratch, live for the worker's lane group so per-lane
    // warm chains persist across tiles exactly like the scalar workspace.
    virtual void apply_batch(TileStageContext* const* lanes, int count,
                             BatchedDegradeWorkspace& ws) const {
        (void)ws;
        for (int r = 0; r < count; ++r) apply(*lanes[r]);
    }
};

// An ordered stage list plus the backend the parasitic stage solves with.
class TilePipeline {
public:
    TilePipeline() = default;
    TilePipeline(TilePipeline&&) = default;
    TilePipeline& operator=(TilePipeline&&) = default;

    void set_backend(std::unique_ptr<CrossbarBackend> backend);
    void add(std::unique_ptr<TileStage> stage);

    // Apply every stage in order to the context's active pair. Each stage is
    // timed into an "xbar.stage.<name>.ns" histogram (registered once in
    // add()) and wrapped in a trace span; the whole tile lands in
    // "xbar.tile.ns".
    void run(TileStageContext& ctx) const;

    // Apply every stage to `count` per-repeat contexts of one tile, letting
    // stages batch across the repeat lanes (one timer record covers the
    // whole lane group). Lane r's outputs are bit-identical to run(ctx[r]).
    void run_batch(TileStageContext* const* lanes, int count,
                   BatchedDegradeWorkspace& ws) const;

    std::size_t size() const { return stages_.size(); }
    const CrossbarBackend* backend() const { return backend_.get(); }
    // "quantize|variation|faults|parasitics[circuit]|compensate", or
    // "identity" for an empty pipeline.
    std::string describe() const;

private:
    std::unique_ptr<CrossbarBackend> backend_;
    std::vector<std::unique_ptr<TileStage>> stages_;
    // One per stage, parallel to stages_ (empty with XS_TELEMETRY=OFF).
    std::vector<util::metrics::Histogram> stage_timers_;
};

// Everything the stage list depends on; core::EvalConfig maps onto this
// 1:1 (core/evaluator.cpp) so existing configs behave identically.
struct PipelineSpec {
    CrossbarConfig xbar;
    std::int64_t conductance_levels = 0;  // ≥2 enables write quantization
    bool include_variation = true;
    FaultConfig faults;
    bool include_parasitics = true;
    bool compensate_columns = false;
    bool warm_start_solves = true;
    BackendKind backend = BackendKind::kCircuit;
    std::int64_t fast_buckets = 64;
};

// Build the stage list for `spec`, in the fixed order quantize → variation →
// faults → parasitics → compensate, each included only when its config
// switch asks for it. BackendKind::kIdeal (like include_parasitics = false)
// elides the parasitic and compensation stages entirely — the pass-through
// is free rather than a copy.
TilePipeline build_tile_pipeline(const PipelineSpec& spec);

// Digital per-column gain correction calibrated at v_nom ([Liu et al.,
// ICCAD'14]): scale G′ columns so the calibration-point column currents
// match `g_before`. Exposed for the compensation stage and tests; `ctx`
// provides the column-sum scratch.
void compensate_columns(tensor::Tensor& g_eff, const tensor::Tensor& g_before,
                        TileStageContext& ctx);

}  // namespace xs::xbar
