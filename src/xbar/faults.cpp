#include "xbar/faults.h"

namespace xs::xbar {

std::int64_t apply_stuck_faults(tensor::Tensor& g, const DeviceConfig& device,
                                const FaultConfig& faults, util::Rng& rng) {
    tensor::check(faults.p_stuck_min >= 0.0 && faults.p_stuck_max >= 0.0 &&
                      faults.p_stuck_min + faults.p_stuck_max <= 1.0,
                  "apply_stuck_faults: invalid fault probabilities");
    if (!faults.any()) return 0;

    const float g_min = static_cast<float>(device.g_min());
    const float g_max = static_cast<float>(device.g_max());
    std::int64_t faulted = 0;
    float* p = g.data();
    for (std::int64_t i = 0; i < g.numel(); ++i) {
        const double u = rng.uniform();
        if (u < faults.p_stuck_min) {
            p[i] = g_min;
            ++faulted;
        } else if (u < faults.p_stuck_min + faults.p_stuck_max) {
            p[i] = g_max;
            ++faulted;
        }
    }
    return faulted;
}

}  // namespace xs::xbar
