#include "xbar/backend.h"

#include "util/metrics.h"
#include "util/trace.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

namespace xs::xbar {

using tensor::Tensor;

const char* backend_name(BackendKind kind) {
    switch (kind) {
        case BackendKind::kCircuit: return "circuit";
        case BackendKind::kFast: return "fast";
        case BackendKind::kIdeal: return "ideal";
    }
    return "circuit";
}

BackendKind backend_from_name(const std::string& name) {
    if (name == "circuit") return BackendKind::kCircuit;
    if (name == "fast") return BackendKind::kFast;
    if (name == "ideal") return BackendKind::kIdeal;
    tensor::check(false, "xbar: unknown backend '" + name +
                             "' (expected circuit, fast, or ideal)");
    return BackendKind::kCircuit;
}

CircuitBackend::CircuitBackend(const CrossbarConfig& config, bool warm_start)
    : solver_(config), warm_start_(warm_start) {}

void CircuitBackend::degrade(const Tensor& g, DegradeWorkspace& ws,
                             TileDegradeResult& out) const {
    XS_COUNT("xbar.circuit.tiles", 1);
    if (!warm_start_) ws.solve.invalidate();
    degrade_tile(g, solver_, ws, out);
}

void CircuitBackend::degrade_batch(const Tensor* const* g, int lanes,
                                   BatchedDegradeWorkspace& ws,
                                   TileDegradeResult* const* out) const {
    XS_COUNT("xbar.circuit.tiles", static_cast<std::uint64_t>(lanes));
    if (!warm_start_) ws.solve.invalidate();
    degrade_tile_batched(g, lanes, solver_, ws, out);
}

namespace {

// Process-wide registry of calibration caches, keyed by every parameter the
// α field depends on. Entries live for the process (bounded by the distinct
// crossbar configurations a run touches — a handful per sweep).
std::string fast_cache_key(const CrossbarConfig& c, std::int64_t buckets) {
    std::ostringstream os;
    os.precision(17);
    os << c.size << '/' << c.device.r_min << '/' << c.device.r_max << '/'
       << c.parasitics.r_driver << '/' << c.parasitics.r_wire_row << '/'
       << c.parasitics.r_wire_col << '/' << c.parasitics.r_sense << '/'
       << c.parasitics.v_nom << '/' << buckets;
    return os.str();
}

}  // namespace

FastBackend::FastBackend(const CrossbarConfig& config, std::int64_t buckets)
    : config_(config), solver_(config), buckets_(std::max<std::int64_t>(buckets, 1)) {
    // The variation stage clamps conductances to [G_MIN/2, 2·G_MAX], so tile
    // means live in the same interval.
    g_lo_ = config.device.g_min() * 0.5;
    const double g_hi = config.device.g_max() * 2.0;
    g_step_ = (g_hi - g_lo_) / static_cast<double>(buckets_);

    static std::mutex registry_mu;
    static std::map<std::string, std::shared_ptr<SharedCache>> registry;
    std::lock_guard<std::mutex> lock(registry_mu);
    auto& entry = registry[fast_cache_key(config_, buckets_)];
    if (!entry) entry = std::make_shared<SharedCache>(buckets_);
    cache_ = entry;
}

std::int64_t FastBackend::calibrations() const {
    std::lock_guard<std::mutex> lock(cache_->build_mu);
    return static_cast<std::int64_t>(cache_->owned.size());
}

const FastBackend::Calibration& FastBackend::calibration_for(
    std::int64_t bucket) const {
#if XS_TELEMETRY_ENABLED
    // Hoisted out of the branches: registering inside a branch would
    // allocate on the first cache *hit*, after warm-up already promised a
    // zero-allocation steady state.
    static const util::metrics::Counter hits =
        util::metrics::counter("xbar.fast.calibration_hits");
    static const util::metrics::Counter builds =
        util::metrics::counter("xbar.fast.calibration_builds");
#endif
    // Lock-free fast path: the pointer is published with release order once
    // the calibration is fully built.
    auto& slot = cache_->slots[static_cast<std::size_t>(bucket)];
    if (const Calibration* cal = slot.load(std::memory_order_acquire)) {
#if XS_TELEMETRY_ENABLED
        hits.add(1);
#endif
        return *cal;
    }

    std::lock_guard<std::mutex> lock(cache_->build_mu);
    if (const Calibration* cal = slot.load(std::memory_order_acquire)) {
#if XS_TELEMETRY_ENABLED
        hits.add(1);
#endif
        return *cal;  // another builder published it meanwhile
    }
#if XS_TELEMETRY_ENABLED
    builds.add(1);
#endif
    XS_TRACE_SPAN("fast.calibrate");

    // One exact solve of the uniform bucket-center tile at the calibration
    // input. Cold-started and a function of the bucket only, so the cached
    // field is identical no matter which tile or thread populates it.
    const std::int64_t n = config_.size;
    const double center =
        g_lo_ + (static_cast<double>(bucket) + 0.5) * g_step_;
    Tensor g_cal({n, n});
    float* gc = g_cal.data();
    for (std::int64_t k = 0; k < n * n; ++k)
        gc[k] = static_cast<float>(center);
    const std::vector<double> v_in(static_cast<std::size_t>(n),
                                   config_.parasitics.v_nom);
    SolveWorkspace solve_ws;
    solver_.solve(g_cal, v_in.data(), solve_ws);

    auto cal = std::make_unique<Calibration>();
    cal->sweeps = solve_ws.iterations;
    cal->converged = solve_ws.converged;
    cal->alpha = Tensor({n, n});
    const double inv_v = 1.0 / config_.parasitics.v_nom;
    float* a = cal->alpha.data();
    for (std::int64_t k = 0; k < n * n; ++k) {
        const double ratio = (solve_ws.vr[static_cast<std::size_t>(k)] -
                              solve_ws.vc[static_cast<std::size_t>(k)]) *
                             inv_v;
        a[k] = static_cast<float>(std::max(0.0, ratio));
    }
    const Calibration* published = cal.get();
    cache_->owned.push_back(std::move(cal));
    slot.store(published, std::memory_order_release);
    return *published;
}

void FastBackend::degrade(const Tensor& g, DegradeWorkspace& ws,
                          TileDegradeResult& out) const {
    XS_COUNT("xbar.fast.tiles", 1);
    const std::int64_t n = config_.size;
    tensor::check(g.rank() == 2 && g.dim(0) == n && g.dim(1) == n,
                  "FastBackend: conductance matrix shape mismatch");

    const float* gp = g.data();
    double sum = 0.0;
    for (std::int64_t k = 0; k < n * n; ++k) sum += gp[k];
    const double mean = sum / static_cast<double>(n * n);
    const std::int64_t bucket = std::clamp<std::int64_t>(
        static_cast<std::int64_t>((mean - g_lo_) / g_step_), 0, buckets_ - 1);
    const Calibration& cal = calibration_for(bucket);

    if (!(out.g_eff.rank() == 2 && out.g_eff.dim(0) == n && out.g_eff.dim(1) == n))
        out.g_eff = Tensor({n, n});
    // ws.v_in / ws.ideal double as the per-column effective / ideal current
    // accumulators (÷ v_nom); assign() reuses their grown capacity, so the
    // steady state stays allocation-free.
    ws.v_in.assign(static_cast<std::size_t>(n), 0.0);
    ws.ideal.assign(static_cast<std::size_t>(n), 0.0);
    const float* a = cal.alpha.data();
    float* ge = out.g_eff.data();
    for (std::int64_t i = 0; i < n; ++i) {
        const float* gi = gp + i * n;
        const float* ai = a + i * n;
        float* gei = ge + i * n;
        for (std::int64_t j = 0; j < n; ++j) {
            const double eff = static_cast<double>(ai[j]) * gi[j];
            gei[j] = static_cast<float>(eff);
            ws.v_in[static_cast<std::size_t>(j)] += eff;
            ws.ideal[static_cast<std::size_t>(j)] += gi[j];
        }
    }

    double nf_sum = 0.0;
    std::int64_t nf_count = 0;
    for (std::int64_t j = 0; j < n; ++j) {
        const double ideal = ws.ideal[static_cast<std::size_t>(j)];
        if (ideal <= 0.0) continue;
        nf_sum += (ideal - ws.v_in[static_cast<std::size_t>(j)]) / ideal;
        ++nf_count;
    }
    out.nf = nf_count ? nf_sum / static_cast<double>(nf_count) : 0.0;
    // A surrogate tile is only as trustworthy as the calibration solve its
    // α field folded; an unconverged bucket solve used to be dropped here
    // and the tile reported clean. Now it surfaces through the stage
    // context into the evaluator's solver-failure count like any circuit
    // non-convergence.
    out.converged = cal.converged;
    out.sweeps = cal.sweeps;
}

void IdealBackend::degrade(const Tensor& g, DegradeWorkspace& ws,
                           TileDegradeResult& out) const {
    (void)ws;
    const std::int64_t n = config_.size;
    tensor::check(g.rank() == 2 && g.dim(0) == n && g.dim(1) == n,
                  "IdealBackend: conductance matrix shape mismatch");
    if (!(out.g_eff.rank() == 2 && out.g_eff.dim(0) == n && out.g_eff.dim(1) == n))
        out.g_eff = Tensor({n, n});
    std::copy(g.data(), g.data() + n * n, out.g_eff.data());
    out.nf = 0.0;
    out.converged = true;
    out.sweeps = 0;
}

std::unique_ptr<CrossbarBackend> make_backend(BackendKind kind,
                                              const CrossbarConfig& config,
                                              bool warm_start,
                                              std::int64_t fast_buckets) {
    switch (kind) {
        case BackendKind::kFast:
            return std::make_unique<FastBackend>(config, fast_buckets);
        case BackendKind::kIdeal:
            return std::make_unique<IdealBackend>(config);
        case BackendKind::kCircuit:
        default:
            return std::make_unique<CircuitBackend>(config, warm_start);
    }
}

}  // namespace xs::xbar
