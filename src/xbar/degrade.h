// Non-ideality injection for one crossbar tile: Gaussian device variation
// plus the RxNN-style linearized parasitic model, and the non-ideality
// factor (NF) metric of paper §II-A.
#pragma once

#include "tensor/tensor.h"
#include "util/rng.h"
#include "xbar/config.h"
#include "xbar/solver.h"

namespace xs::xbar {

// G ← G·(1+ε), ε ~ N(0, sigma_variation), clamped to [G_MIN/2, 2·G_MAX]
// so extreme draws stay physical. No-op when sigma_variation == 0.
void apply_variation(tensor::Tensor& g, const DeviceConfig& device,
                     util::Rng& rng);

struct TileDegradeResult {
    tensor::Tensor g_eff;   // non-ideal conductances G′ (X×X)
    double nf = 0.0;        // average NF over columns at the calibration input
    bool converged = true;  // circuit solve reached tolerance
    int sweeps = 0;         // relaxation sweeps the solve used
};

// Reusable scratch for degrade_tile: the circuit-solver workspace plus the
// calibration input vector and the ideal-current buffer. One instance per
// worker thread; reusing it across tiles keeps the steady state free of
// heap allocations and lets the solver warm-start from the previous tile's
// converged voltages (DESIGN.md §4).
struct DegradeWorkspace {
    SolveWorkspace solve;
    std::vector<double> v_in;
    std::vector<double> ideal;
};

// Fast-model calibration (DESIGN.md §2): solve the parasitic network once at
// all-rows = v_nom, then fold each device's voltage-division ratio into an
// equivalent conductance  G′_ij = G_ij · (V_row(i,j) − V_col(i,j)) / v_nom.
// The resulting G′ reproduces the non-ideal column currents exactly at the
// calibration input and captures the tile-composition coupling (tiles dense
// in high conductances sag more).
TileDegradeResult degrade_tile(const tensor::Tensor& g,
                               const CrossbarConfig& config);

// Zero-allocation variant for the tile pipeline: the caller owns the solver,
// the workspace, and the result (whose g_eff storage is reused when already
// tile-shaped). Steady state performs no heap allocation.
void degrade_tile(const tensor::Tensor& g, const CircuitSolver& solver,
                  DegradeWorkspace& ws, TileDegradeResult& out);

// Scratch for degrade_tile_batched: the lane-batched solver workspace, a
// scalar workspace for the deterministic cold retry of a lane whose warm
// solve failed, and the shared calibration buffers.
struct BatchedDegradeWorkspace {
    BatchedSolveWorkspace solve;
    SolveWorkspace retry;
    std::vector<double> v_in;
    std::vector<double> ideal;
};

// Degrade `lanes` (≤ kMaxSolveLanes) same-size tiles in one batched solve.
// Lane r's g_eff / nf / converged / sweeps are bit-identical to a scalar
// degrade_tile of g[r] with the same per-lane warm state, including the
// cold-retry rule for a failed warm-started solve. out[r]'s g_eff storage is
// reused when already tile-shaped, so steady state allocates nothing.
void degrade_tile_batched(const tensor::Tensor* const* g, int lanes,
                          const CircuitSolver& solver,
                          BatchedDegradeWorkspace& ws,
                          TileDegradeResult* const* out);

// NF = (I_ideal − I_nonideal) / I_ideal at the all-v_nom input, averaged over
// columns with nonzero ideal current.
double non_ideality_factor(const tensor::Tensor& g, const CrossbarConfig& config);

}  // namespace xs::xbar
