#include "xbar/quantize.h"

#include <algorithm>
#include <cmath>

namespace xs::xbar {

double conductance_step(const DeviceConfig& device, std::int64_t levels) {
    tensor::check(levels >= 2, "quantize_conductance: need at least 2 levels");
    return (device.g_max() - device.g_min()) / static_cast<double>(levels - 1);
}

void quantize_conductance(tensor::Tensor& g, const DeviceConfig& device,
                          std::int64_t levels) {
    const double step = conductance_step(device, levels);
    const double g_min = device.g_min();
    const double g_max = device.g_max();
    float* p = g.data();
    for (std::int64_t i = 0; i < g.numel(); ++i) {
        const double clamped = std::clamp(static_cast<double>(p[i]), g_min, g_max);
        const double level = std::round((clamped - g_min) / step);
        p[i] = static_cast<float>(g_min + level * step);
    }
}

}  // namespace xs::xbar
