// Interchangeable crossbar evaluation backends (DESIGN.md §8).
//
// A CrossbarBackend turns one tile's programmed conductances G into the
// effective non-ideal conductances G′ plus the tile's non-ideality factor.
// Three implementations cover the fidelity/throughput space the framework
// needs (RxNN and GENIEx make the same split):
//
//  * circuit — the exact warm-started line-relaxation solve of xbar/solver.h
//              folded through the voltage-division model of xbar/degrade.h.
//              The fidelity reference; bit-identical to the historical
//              evaluator path.
//  * fast    — a calibration-folded linear surrogate: the parasitic network
//              is solved once per *tile composition bucket* (tiles bucketed
//              by mean conductance) at the uniform calibration point, and the
//              folded voltage-division ratios α_ij are reused for every tile
//              in the bucket, across Monte-Carlo repeats. O(X²) per tile
//              instead of a relaxation solve.
//  * ideal   — pass-through (G′ = G, NF = 0), for pure quantization / fault
//              studies with the parasitic stage disabled.
//
// Backends are stateless per tile call except for caller-owned workspaces
// (and the fast backend's internal calibration cache, which is thread-safe
// and deterministic: a bucket's α field depends only on the bucket center,
// never on which tile or thread triggered it).
#pragma once

#include "tensor/tensor.h"
#include "xbar/config.h"
#include "xbar/degrade.h"
#include "xbar/solver.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace xs::xbar {

enum class BackendKind { kCircuit, kFast, kIdeal };

// "circuit" / "fast" / "ideal".
const char* backend_name(BackendKind kind);
// Inverse of backend_name; throws on unknown names.
BackendKind backend_from_name(const std::string& name);

class CrossbarBackend {
public:
    virtual ~CrossbarBackend() = default;
    virtual BackendKind kind() const = 0;
    const char* name() const { return backend_name(kind()); }

    // Degrade one X×X conductance tile into out.g_eff (storage reused when
    // already tile-shaped) and fill out.nf / out.converged / out.sweeps.
    // `ws` is per-worker scratch; steady state performs no heap allocation.
    virtual void degrade(const tensor::Tensor& g, DegradeWorkspace& ws,
                         TileDegradeResult& out) const = 0;
};

// Exact parasitic solve (today's Thomas/SOR pipeline). When `warm_start` is
// false every solve starts from the flat initial guess, making results
// independent of the tile partition (DESIGN.md §7).
class CircuitBackend final : public CrossbarBackend {
public:
    CircuitBackend(const CrossbarConfig& config, bool warm_start);

    BackendKind kind() const override { return BackendKind::kCircuit; }
    void degrade(const tensor::Tensor& g, DegradeWorkspace& ws,
                 TileDegradeResult& out) const override;

    // Degrade `lanes` (≤ kMaxSolveLanes) same-size tiles in one lane-batched
    // solve. Lane r is bit-identical to degrade(g[r]) with the same warm
    // state: in cold mode every lane restarts flat per call, in warm mode
    // each lane carries its own warm chain across calls.
    void degrade_batch(const tensor::Tensor* const* g, int lanes,
                       BatchedDegradeWorkspace& ws,
                       TileDegradeResult* const* out) const;

    const CircuitSolver& solver() const { return solver_; }

private:
    CircuitSolver solver_;
    bool warm_start_;
};

// Calibration-folded linear surrogate (DESIGN.md §8). Tiles are bucketed by
// mean conductance over the physical range [G_MIN/2, 2·G_MAX] (the variation
// clamp bounds); each bucket's α field comes from one cold parasitic solve
// of the uniform tile G ≡ bucket-center at the all-v_nom input:
//     α_ij = (V_row(i,j) − V_col(i,j)) / v_nom,   G′_ij = α_ij · G_ij.
// The α field captures the position dependence (devices far from driver and
// sense sag most) and, through the bucket, the first-order composition
// dependence (denser tiles sag more); it is exact for the uniform tile at
// the calibration input. NF follows without a solve: per column,
// NF_j = 1 − Σ_i α_ij G_ij / Σ_i G_ij.
class FastBackend final : public CrossbarBackend {
public:
    explicit FastBackend(const CrossbarConfig& config,
                         std::int64_t buckets = 64);

    BackendKind kind() const override { return BackendKind::kFast; }
    void degrade(const tensor::Tensor& g, DegradeWorkspace& ws,
                 TileDegradeResult& out) const override;

    // Calibration solves performed so far (≤ buckets; for tests/telemetry).
    std::int64_t calibrations() const;

private:
    struct Calibration {
        tensor::Tensor alpha;   // X×X voltage-division ratios
        int sweeps = 0;         // relaxation sweeps of the bucket solve
        bool converged = true;  // bucket solve reached tolerance; every
                                // tile folded through this α inherits it
    };
    // Bucket → α field, built lazily. A calibration is a pure function of
    // (config, bucket count, bucket index), so the cache is shared
    // process-wide between backends of identical configuration — a sweep's
    // Monte-Carlo repeats and same-config cells never re-solve a bucket.
    // The hot path is one lock-free acquire-load per tile array: `slots`
    // holds an atomic pointer per bucket, published with release order once
    // built. The mutex only serializes builders (and never blocks readers
    // of already-published buckets).
    struct SharedCache {
        explicit SharedCache(std::int64_t buckets)
            : slots(static_cast<std::size_t>(buckets)) {}
        std::vector<std::atomic<const Calibration*>> slots;
        std::mutex build_mu;
        std::vector<std::unique_ptr<Calibration>> owned;  // under build_mu
    };
    const Calibration& calibration_for(std::int64_t bucket) const;

    CrossbarConfig config_;
    CircuitSolver solver_;
    std::int64_t buckets_;
    double g_lo_, g_step_;  // bucket grid over [G_MIN/2, 2·G_MAX]
    std::shared_ptr<SharedCache> cache_;
};

// Pass-through: G′ = G, NF = 0. The stage builder skips the parasitic stage
// entirely for this backend; the implementation exists so the backend axis
// is total and directly exercisable.
class IdealBackend final : public CrossbarBackend {
public:
    explicit IdealBackend(const CrossbarConfig& config) : config_(config) {}

    BackendKind kind() const override { return BackendKind::kIdeal; }
    void degrade(const tensor::Tensor& g, DegradeWorkspace& ws,
                 TileDegradeResult& out) const override;

private:
    CrossbarConfig config_;
};

// Factory over the kind axis. `warm_start` only affects kCircuit;
// `fast_buckets` only affects kFast.
std::unique_ptr<CrossbarBackend> make_backend(BackendKind kind,
                                              const CrossbarConfig& config,
                                              bool warm_start,
                                              std::int64_t fast_buckets);

}  // namespace xs::xbar
