#include "xbar/solver.h"

#include "util/metrics.h"

#include <algorithm>
#include <cmath>

namespace xs::xbar {

using tensor::check;
using tensor::Tensor;

// Independent tridiagonal chains processed simultaneously by the batched
// kernel so their serial recurrences hide each other's FP latency. Sizes the
// rhs scratch (kChainUnroll per-chain slices); see solve_batched_impl.
inline constexpr int kChainUnroll = 4;

namespace {

// A resistance of exactly zero means "ideal conductor"; represent it with a
// huge-but-finite conductance to keep the linear algebra well posed.
double safe_conductance(double resistance) {
    return resistance <= 0.0 ? 1e9 : 1.0 / resistance;
}

// Per-call parameters of a batched solve, captured once so the templated
// kernel below does not need access to CircuitSolver internals.
struct BatchedSolveParams {
    std::int64_t n;
    double gdrv, gwr, gwc, gsn;
    double omega, tolerance;
    int max_sweeps;
};

// Lane-templated kernel: L is a compile-time constant so every `for r < L`
// loop unrolls/vectorizes into straight vector code. The arithmetic mirrors
// CircuitSolver::solve expression-for-expression — each lane must produce
// bit-identical results to a scalar solve, which the equivalence tests pin.
// Lanes that converge freeze (their voltages stop updating) while the sweep
// loop continues for the rest; a frozen lane's state is exactly the state
// the scalar solve would have returned.
//
// Chains are processed kChainUnroll at a time. Each chain's recurrence is a
// serial dependency (step j needs step j-1, a division chain in the
// factorization), so a single chain leaves the FP units mostly idle waiting
// on latency; interleaving independent chains fills those stall cycles.
// Within a chain the expressions — and hence every lane's bit pattern — are
// untouched; only the order *across* chains changes, and chains within a
// half-sweep neither read nor write each other's state.
template <int L>
void solve_batched_impl(const BatchedSolveParams& p,
                        const tensor::Tensor* const* g, const double* v_in,
                        BatchedSolveWorkspace& ws) {
    const std::int64_t n = p.n;
    const double gdrv = p.gdrv, gwr = p.gwr, gwc = p.gwc, gsn = p.gsn;
    constexpr int CU = kChainUnroll;

    // Lane-major spread of the conductance tiles: r innermost so every
    // (i,j) writes one full gr cacheline (L = 8 doubles) and the L source
    // tensors stream sequentially, instead of revisiting each destination
    // line once per lane. No transposed copy: lane-major means element
    // (i,j) occupies exactly one cacheline whatever the traversal order,
    // so the column half-sweep walks this same array with an n·L stride
    // (constant — the prefetcher tracks it) instead of paying a second
    // n²·L spread per solve.
    double* gr = ws.g_row.data();
    const float* gf[L];
    for (int r = 0; r < L; ++r) gf[r] = g[r]->data();
    for (std::int64_t k = 0; k < n * n; ++k) {
        double* grd = gr + k * L;
        for (int r = 0; r < L; ++r) grd[r] = gf[r][k];
    }

    // The Thomas factors (reciprocal pivots; the forward multiplier is
    // recomputed as the identical -gw·inv product, so identical bits) are
    // NOT built in a standalone pass: sweep 0's forward eliminations below
    // compute each chain's factors inline, right before the value that
    // needs them — the factor recurrence and the elimination visit the
    // same gr/gc/inv streams in the same order, so fusing them removes one
    // full re-stream of both arrays per solve without touching any
    // expression.

    double* vr = ws.vr.data();
    double* vc = ws.vc.data();
    // Captured before the warm-start init below: when every lane cold-starts,
    // vc is identically +0.0 entering sweep 0, so the g·vc terms of the first
    // row half-sweep are exactly +0.0 (conductances are finite, no NaN/Inf)
    // and the loads can be skipped — the RHS keeps a literal 0.0 operand in
    // their place so every sum keeps its bit pattern (signed zeros included).
    bool cold_entry = true;
    for (int r = 0; r < L; ++r)
        if (ws.warm[r]) cold_entry = false;
    for (int r = 0; r < L; ++r) {
        if (ws.warm[r]) continue;
        for (std::int64_t i = 0; i < n; ++i) {
            const double vi = v_in[i];
            for (std::int64_t j = 0; j < n; ++j) vr[(i * n + j) * L + r] = vi;
        }
        for (std::int64_t k = 0; k < n * n; ++k) vc[k * L + r] = 0.0;
    }

    const double omega = p.omega;
    double* rb = ws.rhs.data();
    bool active[L];
    double sweep_delta[L];
    for (int r = 0; r < L; ++r) {
        active[r] = true;
        ws.iterations[r] = 0;
        ws.max_delta[r] = 0.0;
        ws.converged[r] = 0;
    }
    int n_active = L;
    for (int sweep = 0; sweep < p.max_sweeps && n_active > 0; ++sweep) {
        for (int r = 0; r < L; ++r) sweep_delta[r] = 0.0;

        // Row chains, kChainUnroll interleaved. The recurrences run
        // unguarded for every lane (cheaper than masking and they only write
        // scratch); the voltage update is lane-gated so frozen lanes keep
        // their converged state untouched. Chains only read vc and write
        // their own vr rows, so interleaving cannot reorder visible effects;
        // sweep_delta is a max-reduction, commutative exactly.
        for (std::int64_t i0 = 0; i0 < n; i0 += CU) {
            const int nc = static_cast<int>(std::min<std::int64_t>(CU, n - i0));
            const double* grow[CU];
            double* inv[CU];
            double* vri[CU];
            const double* vci[CU];
            double* rc[CU];
            for (int c = 0; c < nc; ++c) {
                const std::int64_t i = i0 + c;
                grow[c] = gr + i * n * L;
                inv[c] = ws.row_inv_d.data() + i * n * L;
                vri[c] = vr + i * n * L;
                vci[c] = vc + i * n * L;
                rc[c] = rb + c * n * L;
            }
            if (sweep > 0) {
                for (int c = 0; c < nc; ++c)
                    for (int r = 0; r < L; ++r)
                        rc[c][r] = grow[c][r] * vci[c][r] + gdrv * v_in[i0 + c];
                for (std::int64_t j = 1; j < n; ++j)
                    for (int c = 0; c < nc; ++c)
                        for (int r = 0; r < L; ++r) {
                            const double mj = -gwr * inv[c][(j - 1) * L + r];
                            rc[c][j * L + r] =
                                grow[c][j * L + r] * vci[c][j * L + r] -
                                mj * rc[c][(j - 1) * L + r];
                        }
            } else if (cold_entry) {
                // Sweep 0, every lane cold: factor + elimination fused, and
                // the g·vc term replaced by the literal 0.0 it equals.
                for (int c = 0; c < nc; ++c)
                    for (int r = 0; r < L; ++r) {
                        const double d0 =
                            gdrv + (n > 1 ? gwr : 0.0) + grow[c][r];
                        inv[c][r] = 1.0 / d0;
                        rc[c][r] = 0.0 + gdrv * v_in[i0 + c];
                    }
                for (std::int64_t j = 1; j < n; ++j)
                    for (int c = 0; c < nc; ++c)
                        for (int r = 0; r < L; ++r) {
                            const double mj = -gwr * inv[c][(j - 1) * L + r];
                            const double dj = gwr + (j + 1 < n ? gwr : 0.0) +
                                              grow[c][j * L + r] + mj * gwr;
                            inv[c][j * L + r] = 1.0 / dj;
                            rc[c][j * L + r] =
                                0.0 - mj * rc[c][(j - 1) * L + r];
                        }
            } else {
                // Sweep 0 with warm lanes: factor + elimination fused, full
                // RHS (vc carries the warm state).
                for (int c = 0; c < nc; ++c)
                    for (int r = 0; r < L; ++r) {
                        const double d0 =
                            gdrv + (n > 1 ? gwr : 0.0) + grow[c][r];
                        inv[c][r] = 1.0 / d0;
                        rc[c][r] =
                            grow[c][r] * vci[c][r] + gdrv * v_in[i0 + c];
                    }
                for (std::int64_t j = 1; j < n; ++j)
                    for (int c = 0; c < nc; ++c)
                        for (int r = 0; r < L; ++r) {
                            const double mj = -gwr * inv[c][(j - 1) * L + r];
                            const double dj = gwr + (j + 1 < n ? gwr : 0.0) +
                                              grow[c][j * L + r] + mj * gwr;
                            inv[c][j * L + r] = 1.0 / dj;
                            rc[c][j * L + r] =
                                grow[c][j * L + r] * vci[c][j * L + r] -
                                mj * rc[c][(j - 1) * L + r];
                        }
            }
            // Back-substitution with the voltage update fused into it: the
            // update of element j reads only rc[j] (final once written) and
            // vr[j], and sweep_delta is a commutative max-reduction, so
            // folding it here instead of a separate pass changes no bits —
            // it just avoids re-streaming rc and vr once per half-sweep.
            for (int c = 0; c < nc; ++c)
                for (int r = 0; r < L; ++r) {
                    const double x =
                        rc[c][(n - 1) * L + r] * inv[c][(n - 1) * L + r];
                    rc[c][(n - 1) * L + r] = x;
                    const double d = x - vri[c][(n - 1) * L + r];
                    if (active[r]) {
                        sweep_delta[r] = std::max(sweep_delta[r], std::fabs(d));
                        vri[c][(n - 1) * L + r] += omega * d;
                    }
                }
            for (std::int64_t j = n - 2; j >= 0; --j)
                for (int c = 0; c < nc; ++c)
                    for (int r = 0; r < L; ++r) {
                        const double x =
                            (rc[c][j * L + r] + gwr * rc[c][(j + 1) * L + r]) *
                            inv[c][j * L + r];
                        rc[c][j * L + r] = x;
                        const double d = x - vri[c][j * L + r];
                        if (active[r]) {
                            sweep_delta[r] =
                                std::max(sweep_delta[r], std::fabs(d));
                            vri[c][j * L + r] += omega * d;
                        }
                    }
        }

        // Column chains, same interleave (read vr, write own vc columns).
        for (std::int64_t j0 = 0; j0 < n; j0 += CU) {
            const int nc = static_cast<int>(std::min<std::int64_t>(CU, n - j0));
            const double* gcol[CU];
            double* inv[CU];
            double* rc[CU];
            // Column c's conductances live in gr at stride S = n·L: element
            // i of chain j is gr[(i·n + j)·L .. +L) — one full cacheline,
            // exactly what a dedicated transposed copy would read.
            const std::int64_t S = n * L;
            for (int c = 0; c < nc; ++c) {
                const std::int64_t j = j0 + c;
                gcol[c] = gr + j * L;
                inv[c] = ws.col_inv_d.data() + j * n * L;
                rc[c] = rb + c * n * L;
            }
            if (sweep > 0) {
                for (int c = 0; c < nc; ++c)
                    for (int r = 0; r < L; ++r)
                        rc[c][r] = gcol[c][r] * vr[(j0 + c) * L + r];
                for (std::int64_t i = 1; i < n; ++i)
                    for (int c = 0; c < nc; ++c)
                        for (int r = 0; r < L; ++r) {
                            const double mi = -gwc * inv[c][(i - 1) * L + r];
                            rc[c][i * L + r] =
                                gcol[c][i * S + r] *
                                    vr[(i * n + (j0 + c)) * L + r] -
                                mi * rc[c][(i - 1) * L + r];
                        }
            } else {
                // Sweep 0: factor + elimination fused (vr is never zero, so
                // there is no cold specialization on the column half-sweep).
                for (int c = 0; c < nc; ++c)
                    for (int r = 0; r < L; ++r) {
                        const double d0 = (n > 1 ? gwc : gsn) + gcol[c][r];
                        inv[c][r] = 1.0 / d0;
                        rc[c][r] = gcol[c][r] * vr[(j0 + c) * L + r];
                    }
                for (std::int64_t i = 1; i < n; ++i)
                    for (int c = 0; c < nc; ++c)
                        for (int r = 0; r < L; ++r) {
                            const double mi = -gwc * inv[c][(i - 1) * L + r];
                            const double di = gwc + (i + 1 < n ? gwc : gsn) +
                                              gcol[c][i * S + r] + mi * gwc;
                            inv[c][i * L + r] = 1.0 / di;
                            rc[c][i * L + r] =
                                gcol[c][i * S + r] *
                                    vr[(i * n + (j0 + c)) * L + r] -
                                mi * rc[c][(i - 1) * L + r];
                        }
            }
            // Fused back-substitution + update, as in the row pass.
            for (int c = 0; c < nc; ++c)
                for (int r = 0; r < L; ++r) {
                    const double x =
                        rc[c][(n - 1) * L + r] * inv[c][(n - 1) * L + r];
                    rc[c][(n - 1) * L + r] = x;
                    double& v = vc[((n - 1) * n + (j0 + c)) * L + r];
                    const double d = x - v;
                    if (active[r]) {
                        sweep_delta[r] = std::max(sweep_delta[r], std::fabs(d));
                        v += omega * d;
                    }
                }
            for (std::int64_t i = n - 2; i >= 0; --i)
                for (int c = 0; c < nc; ++c)
                    for (int r = 0; r < L; ++r) {
                        const double x =
                            (rc[c][i * L + r] + gwc * rc[c][(i + 1) * L + r]) *
                            inv[c][i * L + r];
                        rc[c][i * L + r] = x;
                        double& v = vc[(i * n + (j0 + c)) * L + r];
                        const double d = x - v;
                        if (active[r]) {
                            sweep_delta[r] =
                                std::max(sweep_delta[r], std::fabs(d));
                            v += omega * d;
                        }
                    }
        }

        for (int r = 0; r < L; ++r) {
            if (!active[r]) continue;
            // Matches the scalar bookkeeping: on the convergence sweep the
            // scalar loop executes `++sweep; break`, so iterations counts
            // the sweep that met tolerance.
            ws.iterations[r] = sweep + 1;
            ws.max_delta[r] = sweep_delta[r];
            if (sweep_delta[r] < p.tolerance) {
                ws.converged[r] = 1;
                active[r] = false;
                --n_active;
            }
        }
    }
    for (int r = 0; r < L; ++r) ws.warm[r] = ws.converged[r];
    for (std::int64_t j = 0; j < n; ++j)
        for (int r = 0; r < L; ++r)
            ws.currents[j * L + r] = vc[((n - 1) * n + j) * L + r] * gsn;
}

}  // namespace

void SolveWorkspace::ensure(std::int64_t size) {
    if (n == size) return;
    const auto nn = static_cast<std::size_t>(size * size);
    const auto ns = static_cast<std::size_t>(size);
    vr.resize(nn);
    vc.resize(nn);
    g_row.resize(nn);
    g_col.resize(nn);
    row_m.resize(nn);
    row_inv_d.resize(nn);
    col_m.resize(nn);
    col_inv_d.resize(nn);
    rhs.resize(ns);
    currents.resize(ns);
    n = size;
    warm = false;
}

void BatchedSolveWorkspace::ensure(std::int64_t size, int lane_count) {
    if (n == size && lanes == lane_count) return;
    const auto nn = static_cast<std::size_t>(size * size * lane_count);
    const auto ns = static_cast<std::size_t>(size * lane_count);
    vr.resize(nn);
    vc.resize(nn);
    g_row.resize(nn);
    row_inv_d.resize(nn);
    col_inv_d.resize(nn);
    rhs.resize(ns * static_cast<std::size_t>(kChainUnroll));
    currents.resize(ns);
    n = size;
    lanes = lane_count;
    invalidate();
}

CircuitSolver::CircuitSolver(const CrossbarConfig& config) : config_(config) {
    g_driver_ = safe_conductance(config.parasitics.r_driver);
    g_wire_row_ = safe_conductance(config.parasitics.r_wire_row);
    g_wire_col_ = safe_conductance(config.parasitics.r_wire_col);
    g_sense_ = safe_conductance(config.parasitics.r_sense);
}

void CircuitSolver::ideal_currents(const Tensor& g, const double* v_in,
                                   double* out) const {
    const std::int64_t n = config_.size;
    check(g.rank() == 2 && g.dim(0) == n && g.dim(1) == n,
          "CircuitSolver: conductance matrix shape mismatch");
    std::fill(out, out + n, 0.0);
    for (std::int64_t i = 0; i < n; ++i) {
        const float* row = g.data() + i * n;
        const double vi = v_in[i];
        for (std::int64_t j = 0; j < n; ++j)
            out[j] += static_cast<double>(row[j]) * vi;
    }
}

std::vector<double> CircuitSolver::ideal_currents(
    const Tensor& g, const std::vector<double>& v_in) const {
    check(static_cast<std::int64_t>(v_in.size()) == config_.size,
          "CircuitSolver: input voltage count mismatch");
    std::vector<double> out(v_in.size());
    ideal_currents(g, v_in.data(), out.data());
    return out;
}

bool CircuitSolver::solve(const Tensor& g, const double* v_in,
                          SolveWorkspace& ws) const {
    const std::int64_t n = config_.size;
    check(g.rank() == 2 && g.dim(0) == n && g.dim(1) == n,
          "CircuitSolver: conductance matrix shape mismatch");
    ws.ensure(n);
    XS_TIMER_NS("xbar.solve.ns");
    XS_COUNT("xbar.solve.solves", 1);
#if XS_TELEMETRY_ENABLED
    // Handles hoisted out of their conditions: a branch-local XS_COUNT
    // would register (and allocate) on the first *taken* branch, breaking
    // the zero-allocation steady state when e.g. the first warm start
    // happens after warm-up.
    static const util::metrics::Counter warm_starts =
        util::metrics::counter("xbar.solve.warm_starts");
    static const util::metrics::Counter unconverged =
        util::metrics::counter("xbar.solve.unconverged");
    if (ws.warm) warm_starts.add(1);
#endif

    const double gdrv = g_driver_, gwr = g_wire_row_, gwc = g_wire_col_,
                 gsn = g_sense_;

    // Promote the device conductances to double, row- and column-major, so
    // the sweeps below touch contiguous memory in both directions.
    const float* gf = g.data();
    double* gr = ws.g_row.data();
    double* gc = ws.g_col.data();
    for (std::int64_t i = 0; i < n; ++i) {
        const float* src = gf + i * n;
        double* dst = gr + i * n;
        for (std::int64_t j = 0; j < n; ++j) {
            const double v = src[j];
            dst[j] = v;
            gc[j * n + i] = v;
        }
    }

    // Factor every chain's tridiagonal matrix once (it is constant across
    // sweeps; only the right-hand side changes). For a chain with diagonal
    // d_k and constant off-diagonal -w, forward elimination gives
    // m_k = -w / d'_{k-1}, d'_k = d_k + m_k·w; we store m_k and 1/d'_k so a
    // sweep is pure multiply-adds.
    for (std::int64_t i = 0; i < n; ++i) {
        const double* grow = gr + i * n;
        double* m = ws.row_m.data() + i * n;
        double* inv = ws.row_inv_d.data() + i * n;
        double d = gdrv + (n > 1 ? gwr : 0.0) + grow[0];
        m[0] = 0.0;
        inv[0] = 1.0 / d;
        for (std::int64_t j = 1; j < n; ++j) {
            const double mj = -gwr * inv[j - 1];
            d = gwr + (j + 1 < n ? gwr : 0.0) + grow[j] + mj * gwr;
            m[j] = mj;
            inv[j] = 1.0 / d;
        }
    }
    for (std::int64_t j = 0; j < n; ++j) {
        const double* gcol = gc + j * n;
        double* m = ws.col_m.data() + j * n;
        double* inv = ws.col_inv_d.data() + j * n;
        double d = (n > 1 ? gwc : gsn) + gcol[0];
        m[0] = 0.0;
        inv[0] = 1.0 / d;
        for (std::int64_t i = 1; i < n; ++i) {
            const double mi = -gwc * inv[i - 1];
            d = gwc + (i + 1 < n ? gwc : gsn) + gcol[i] + mi * gwc;
            m[i] = mi;
            inv[i] = 1.0 / d;
        }
    }

    double* vr = ws.vr.data();
    double* vc = ws.vc.data();
    if (!ws.warm) {
        // Initial guess: rows at their source voltage, columns at ground.
        for (std::int64_t i = 0; i < n; ++i) {
            const double vi = v_in[i];
            double* row = vr + i * n;
            for (std::int64_t j = 0; j < n; ++j) row[j] = vi;
        }
        std::fill(vc, vc + n * n, 0.0);
    }

    const double omega = omega_;
    double* r = ws.rhs.data();
    double max_delta = 0.0;
    int sweep = 0;
    for (; sweep < max_sweeps_; ++sweep) {
        max_delta = 0.0;

        // Row chains: unknowns V_r(i, 0..n-1) with V_c frozen.
        for (std::int64_t i = 0; i < n; ++i) {
            const double* grow = gr + i * n;
            const double* m = ws.row_m.data() + i * n;
            const double* inv = ws.row_inv_d.data() + i * n;
            double* vri = vr + i * n;
            const double* vci = vc + i * n;
            r[0] = grow[0] * vci[0] + gdrv * v_in[i];
            for (std::int64_t j = 1; j < n; ++j)
                r[j] = grow[j] * vci[j] - m[j] * r[j - 1];
            r[n - 1] *= inv[n - 1];
            for (std::int64_t j = n - 2; j >= 0; --j)
                r[j] = (r[j] + gwr * r[j + 1]) * inv[j];
            for (std::int64_t j = 0; j < n; ++j) {
                const double d = r[j] - vri[j];
                max_delta = std::max(max_delta, std::fabs(d));
                vri[j] += omega * d;
            }
        }

        // Column chains: unknowns V_c(0..n-1, j) with V_r frozen. The bottom
        // node's sense conductance couples to ground (0 V): no rhs term.
        for (std::int64_t j = 0; j < n; ++j) {
            const double* gcol = gc + j * n;
            const double* m = ws.col_m.data() + j * n;
            const double* inv = ws.col_inv_d.data() + j * n;
            r[0] = gcol[0] * vr[j];
            for (std::int64_t i = 1; i < n; ++i)
                r[i] = gcol[i] * vr[i * n + j] - m[i] * r[i - 1];
            r[n - 1] *= inv[n - 1];
            for (std::int64_t i = n - 2; i >= 0; --i)
                r[i] = (r[i] + gwc * r[i + 1]) * inv[i];
            for (std::int64_t i = 0; i < n; ++i) {
                double& v = vc[i * n + j];
                const double d = r[i] - v;
                max_delta = std::max(max_delta, std::fabs(d));
                v += omega * d;
            }
        }

        if (max_delta < tolerance_) {
            ++sweep;
            break;
        }
    }

    ws.iterations = sweep;
    ws.max_delta = max_delta;
    ws.converged = max_delta < tolerance_;
    XS_COUNT("xbar.solve.sweeps", static_cast<std::uint64_t>(sweep));
#if XS_TELEMETRY_ENABLED
    if (!ws.converged) unconverged.add(1);
#endif
    // Only a converged field is worth warm-starting from; after a failed
    // solve the next one restarts cold, so bad state never propagates.
    ws.warm = ws.converged;
    for (std::int64_t j = 0; j < n; ++j)
        ws.currents[static_cast<std::size_t>(j)] = vc[(n - 1) * n + j] * gsn;
    return ws.converged;
}

void CircuitSolver::solve_batched(const Tensor* const* g, int lanes,
                                  const double* v_in,
                                  BatchedSolveWorkspace& ws) const {
    const std::int64_t n = config_.size;
    check(lanes >= 1 && lanes <= kMaxSolveLanes,
          "CircuitSolver: batched lane count out of range");
    for (int r = 0; r < lanes; ++r)
        check(g[r]->rank() == 2 && g[r]->dim(0) == n && g[r]->dim(1) == n,
              "CircuitSolver: conductance matrix shape mismatch");
    ws.ensure(n, lanes);
    XS_TIMER_NS("xbar.solve.ns");
    XS_COUNT("xbar.solve.solves", static_cast<std::uint64_t>(lanes));
#if XS_TELEMETRY_ENABLED
    static const util::metrics::Counter warm_starts =
        util::metrics::counter("xbar.solve.warm_starts");
    static const util::metrics::Counter unconverged =
        util::metrics::counter("xbar.solve.unconverged");
    for (int r = 0; r < lanes; ++r)
        if (ws.warm[r]) warm_starts.add(1);
#endif

    const BatchedSolveParams p{n,           g_driver_, g_wire_row_,
                               g_wire_col_, g_sense_,  omega_,
                               tolerance_,  max_sweeps_};
    switch (lanes) {
        case 1: solve_batched_impl<1>(p, g, v_in, ws); break;
        case 2: solve_batched_impl<2>(p, g, v_in, ws); break;
        case 3: solve_batched_impl<3>(p, g, v_in, ws); break;
        case 4: solve_batched_impl<4>(p, g, v_in, ws); break;
        case 5: solve_batched_impl<5>(p, g, v_in, ws); break;
        case 6: solve_batched_impl<6>(p, g, v_in, ws); break;
        case 7: solve_batched_impl<7>(p, g, v_in, ws); break;
        case 8: solve_batched_impl<8>(p, g, v_in, ws); break;
        default: break;
    }

    std::uint64_t total_sweeps = 0;
    for (int r = 0; r < lanes; ++r)
        total_sweeps += static_cast<std::uint64_t>(ws.iterations[r]);
    XS_COUNT("xbar.solve.sweeps", total_sweeps);
#if XS_TELEMETRY_ENABLED
    for (int r = 0; r < lanes; ++r)
        if (!ws.converged[r]) unconverged.add(1);
#endif
}

SolveResult CircuitSolver::solve(const Tensor& g,
                                 const std::vector<double>& v_in) const {
    const std::int64_t n = config_.size;
    check(static_cast<std::int64_t>(v_in.size()) == n,
          "CircuitSolver: input voltage count mismatch");

    // Buffer reuse across calls on the same thread; the cold start is kept
    // (no warm-start) so results never depend on unrelated earlier solves.
    static thread_local SolveWorkspace ws;
    ws.invalidate();
    solve(g, v_in.data(), ws);

    SolveResult result;
    result.v_row = Tensor({n, n});
    result.v_col = Tensor({n, n});
    for (std::int64_t i = 0; i < n; ++i)
        for (std::int64_t j = 0; j < n; ++j) {
            result.v_row.at(i, j) = static_cast<float>(ws.vr[static_cast<std::size_t>(i * n + j)]);
            result.v_col.at(i, j) = static_cast<float>(ws.vc[static_cast<std::size_t>(i * n + j)]);
        }
    result.currents.assign(ws.currents.begin(), ws.currents.end());
    result.iterations = ws.iterations;
    result.max_delta = ws.max_delta;
    result.converged = ws.converged;
    return result;
}

SolveResult CircuitSolver::solve_dense(const Tensor& g,
                                       const std::vector<double>& v_in) const {
    const std::int64_t n = config_.size;
    check(g.rank() == 2 && g.dim(0) == n && g.dim(1) == n,
          "CircuitSolver: conductance matrix shape mismatch");
    const std::int64_t unknowns = 2 * n * n;  // row nodes then column nodes

    // Assemble the full nodal matrix A·v = b. Index r(i,j) = i*n+j,
    // c(i,j) = n*n + i*n + j.
    std::vector<double> a(static_cast<std::size_t>(unknowns * unknowns), 0.0);
    std::vector<double> b(static_cast<std::size_t>(unknowns), 0.0);
    auto A = [&](std::int64_t r, std::int64_t c) -> double& {
        return a[static_cast<std::size_t>(r * unknowns + c)];
    };
    auto stamp = [&](std::int64_t u, std::int64_t v, double cond) {
        // Conductance between unknowns u and v (v = -1 means ground).
        A(u, u) += cond;
        if (v >= 0) {
            A(v, v) += cond;
            A(u, v) -= cond;
            A(v, u) -= cond;
        }
    };

    for (std::int64_t i = 0; i < n; ++i) {
        for (std::int64_t j = 0; j < n; ++j) {
            const std::int64_t r = i * n + j;
            const std::int64_t c = n * n + i * n + j;
            // device
            stamp(r, c, g.at(i, j));
            // row wire to the right neighbour
            if (j + 1 < n) stamp(r, i * n + j + 1, g_wire_row_);
            // driver into the first row node (source through Rdriver)
            if (j == 0) {
                A(r, r) += g_driver_;
                b[static_cast<std::size_t>(r)] +=
                    g_driver_ * v_in[static_cast<std::size_t>(i)];
            }
            // column wire down
            if (i + 1 < n) stamp(c, n * n + (i + 1) * n + j, g_wire_col_);
            // sense resistor to ground at the bottom
            if (i == n - 1) A(c, c) += g_sense_;
        }
    }

    // Gaussian elimination with partial pivoting.
    for (std::int64_t k = 0; k < unknowns; ++k) {
        std::int64_t pivot = k;
        for (std::int64_t r = k + 1; r < unknowns; ++r)
            if (std::fabs(A(r, k)) > std::fabs(A(pivot, k))) pivot = r;
        if (pivot != k) {
            for (std::int64_t cidx = 0; cidx < unknowns; ++cidx)
                std::swap(A(k, cidx), A(pivot, cidx));
            std::swap(b[static_cast<std::size_t>(k)], b[static_cast<std::size_t>(pivot)]);
        }
        const double pk = A(k, k);
        check(std::fabs(pk) > 1e-30, "solve_dense: singular nodal matrix");
        for (std::int64_t r = k + 1; r < unknowns; ++r) {
            const double m = A(r, k) / pk;
            if (m == 0.0) continue;
            for (std::int64_t cidx = k; cidx < unknowns; ++cidx)
                A(r, cidx) -= m * A(k, cidx);
            b[static_cast<std::size_t>(r)] -= m * b[static_cast<std::size_t>(k)];
        }
    }
    std::vector<double> v(static_cast<std::size_t>(unknowns));
    for (std::int64_t k = unknowns; k-- > 0;) {
        double acc = b[static_cast<std::size_t>(k)];
        for (std::int64_t cidx = k + 1; cidx < unknowns; ++cidx)
            acc -= A(k, cidx) * v[static_cast<std::size_t>(cidx)];
        v[static_cast<std::size_t>(k)] = acc / A(k, k);
    }

    SolveResult result;
    result.v_row = Tensor({n, n});
    result.v_col = Tensor({n, n});
    for (std::int64_t i = 0; i < n; ++i)
        for (std::int64_t j = 0; j < n; ++j) {
            result.v_row.at(i, j) = static_cast<float>(v[static_cast<std::size_t>(i * n + j)]);
            result.v_col.at(i, j) =
                static_cast<float>(v[static_cast<std::size_t>(n * n + i * n + j)]);
        }
    result.currents.resize(static_cast<std::size_t>(n));
    for (std::int64_t j = 0; j < n; ++j)
        result.currents[static_cast<std::size_t>(j)] =
            v[static_cast<std::size_t>(n * n + (n - 1) * n + j)] * g_sense_;
    result.iterations = 1;
    result.converged = true;
    return result;
}

}  // namespace xs::xbar
