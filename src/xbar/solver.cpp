#include "xbar/solver.h"

#include <algorithm>
#include <cmath>

namespace xs::xbar {

using tensor::check;
using tensor::Tensor;

namespace {

// A resistance of exactly zero means "ideal conductor"; represent it with a
// huge-but-finite conductance to keep the linear algebra well posed.
double safe_conductance(double resistance) {
    return resistance <= 0.0 ? 1e9 : 1.0 / resistance;
}

// Thomas algorithm for a tridiagonal system; diag/lower/upper/rhs size n.
// lower[k] couples unknown k to k-1; upper[k] couples k to k+1.
void thomas_solve(std::vector<double>& diag, std::vector<double>& lower,
                  std::vector<double>& upper, std::vector<double>& rhs,
                  std::vector<double>& x) {
    const std::size_t n = diag.size();
    for (std::size_t k = 1; k < n; ++k) {
        const double m = lower[k] / diag[k - 1];
        diag[k] -= m * upper[k - 1];
        rhs[k] -= m * rhs[k - 1];
    }
    x[n - 1] = rhs[n - 1] / diag[n - 1];
    for (std::size_t k = n - 1; k-- > 0;)
        x[k] = (rhs[k] - upper[k] * x[k + 1]) / diag[k];
}

}  // namespace

CircuitSolver::CircuitSolver(const CrossbarConfig& config) : config_(config) {
    g_driver_ = safe_conductance(config.parasitics.r_driver);
    g_wire_row_ = safe_conductance(config.parasitics.r_wire_row);
    g_wire_col_ = safe_conductance(config.parasitics.r_wire_col);
    g_sense_ = safe_conductance(config.parasitics.r_sense);
}

std::vector<double> CircuitSolver::ideal_currents(
    const Tensor& g, const std::vector<double>& v_in) const {
    const std::int64_t n = config_.size;
    check(g.rank() == 2 && g.dim(0) == n && g.dim(1) == n,
          "CircuitSolver: conductance matrix shape mismatch");
    check(static_cast<std::int64_t>(v_in.size()) == n,
          "CircuitSolver: input voltage count mismatch");
    std::vector<double> out(static_cast<std::size_t>(n), 0.0);
    for (std::int64_t i = 0; i < n; ++i) {
        const float* row = g.data() + i * n;
        const double vi = v_in[static_cast<std::size_t>(i)];
        for (std::int64_t j = 0; j < n; ++j)
            out[static_cast<std::size_t>(j)] += static_cast<double>(row[j]) * vi;
    }
    return out;
}

SolveResult CircuitSolver::solve(const Tensor& g,
                                 const std::vector<double>& v_in) const {
    const std::int64_t n = config_.size;
    check(g.rank() == 2 && g.dim(0) == n && g.dim(1) == n,
          "CircuitSolver: conductance matrix shape mismatch");
    check(static_cast<std::int64_t>(v_in.size()) == n,
          "CircuitSolver: input voltage count mismatch");

    SolveResult result;
    result.v_row = Tensor({n, n});
    result.v_col = Tensor({n, n});
    // Initial guess: rows at their source voltage, columns at ground.
    for (std::int64_t i = 0; i < n; ++i)
        for (std::int64_t j = 0; j < n; ++j)
            result.v_row.at(i, j) = static_cast<float>(v_in[static_cast<std::size_t>(i)]);

    // Double-precision working copies (float storage would stall convergence).
    std::vector<double> vr(static_cast<std::size_t>(n * n));
    std::vector<double> vc(static_cast<std::size_t>(n * n), 0.0);
    for (std::int64_t i = 0; i < n; ++i)
        for (std::int64_t j = 0; j < n; ++j)
            vr[static_cast<std::size_t>(i * n + j)] = v_in[static_cast<std::size_t>(i)];

    std::vector<double> diag(static_cast<std::size_t>(n)),
        lower(static_cast<std::size_t>(n)), upper(static_cast<std::size_t>(n)),
        rhs(static_cast<std::size_t>(n)), x(static_cast<std::size_t>(n));

    double max_delta = 0.0;
    int sweep = 0;
    for (; sweep < max_sweeps_; ++sweep) {
        max_delta = 0.0;

        // Row chains: unknowns V_r(i, 0..n-1) with V_c frozen.
        for (std::int64_t i = 0; i < n; ++i) {
            const float* grow = g.data() + i * n;
            for (std::int64_t j = 0; j < n; ++j) {
                const double gl = j == 0 ? g_driver_ : g_wire_row_;
                const double gr = j + 1 < n ? g_wire_row_ : 0.0;
                const double gd = grow[j];
                const auto jj = static_cast<std::size_t>(j);
                diag[jj] = gl + gr + gd;
                lower[jj] = j == 0 ? 0.0 : -g_wire_row_;
                upper[jj] = j + 1 < n ? -g_wire_row_ : 0.0;
                rhs[jj] = gd * vc[static_cast<std::size_t>(i * n + j)] +
                          (j == 0 ? gl * v_in[static_cast<std::size_t>(i)] : 0.0);
            }
            thomas_solve(diag, lower, upper, rhs, x);
            for (std::int64_t j = 0; j < n; ++j) {
                auto& v = vr[static_cast<std::size_t>(i * n + j)];
                max_delta = std::max(max_delta, std::fabs(x[static_cast<std::size_t>(j)] - v));
                v = x[static_cast<std::size_t>(j)];
            }
        }

        // Column chains: unknowns V_c(0..n-1, j) with V_r frozen.
        for (std::int64_t j = 0; j < n; ++j) {
            for (std::int64_t i = 0; i < n; ++i) {
                const double gu = i == 0 ? 0.0 : g_wire_col_;
                const double gd = i + 1 < n ? g_wire_col_ : g_sense_;
                const double gdev = g.at(i, j);
                const auto ii = static_cast<std::size_t>(i);
                diag[ii] = gu + gd + gdev;
                lower[ii] = i == 0 ? 0.0 : -g_wire_col_;
                upper[ii] = i + 1 < n ? -g_wire_col_ : 0.0;
                // Bottom node's gd couples to ground (0 V): no rhs term.
                rhs[ii] = gdev * vr[static_cast<std::size_t>(i * n + j)];
            }
            thomas_solve(diag, lower, upper, rhs, x);
            for (std::int64_t i = 0; i < n; ++i) {
                auto& v = vc[static_cast<std::size_t>(i * n + j)];
                max_delta = std::max(max_delta, std::fabs(x[static_cast<std::size_t>(i)] - v));
                v = x[static_cast<std::size_t>(i)];
            }
        }

        if (max_delta < tolerance_) {
            ++sweep;
            break;
        }
    }

    result.iterations = sweep;
    result.max_delta = max_delta;
    for (std::int64_t i = 0; i < n; ++i)
        for (std::int64_t j = 0; j < n; ++j) {
            result.v_row.at(i, j) = static_cast<float>(vr[static_cast<std::size_t>(i * n + j)]);
            result.v_col.at(i, j) = static_cast<float>(vc[static_cast<std::size_t>(i * n + j)]);
        }
    result.currents.resize(static_cast<std::size_t>(n));
    for (std::int64_t j = 0; j < n; ++j)
        result.currents[static_cast<std::size_t>(j)] =
            vc[static_cast<std::size_t>((n - 1) * n + j)] * g_sense_;
    return result;
}

SolveResult CircuitSolver::solve_dense(const Tensor& g,
                                       const std::vector<double>& v_in) const {
    const std::int64_t n = config_.size;
    check(g.rank() == 2 && g.dim(0) == n && g.dim(1) == n,
          "CircuitSolver: conductance matrix shape mismatch");
    const std::int64_t unknowns = 2 * n * n;  // row nodes then column nodes

    // Assemble the full nodal matrix A·v = b. Index r(i,j) = i*n+j,
    // c(i,j) = n*n + i*n + j.
    std::vector<double> a(static_cast<std::size_t>(unknowns * unknowns), 0.0);
    std::vector<double> b(static_cast<std::size_t>(unknowns), 0.0);
    auto A = [&](std::int64_t r, std::int64_t c) -> double& {
        return a[static_cast<std::size_t>(r * unknowns + c)];
    };
    auto stamp = [&](std::int64_t u, std::int64_t v, double cond) {
        // Conductance between unknowns u and v (v = -1 means ground).
        A(u, u) += cond;
        if (v >= 0) {
            A(v, v) += cond;
            A(u, v) -= cond;
            A(v, u) -= cond;
        }
    };

    for (std::int64_t i = 0; i < n; ++i) {
        for (std::int64_t j = 0; j < n; ++j) {
            const std::int64_t r = i * n + j;
            const std::int64_t c = n * n + i * n + j;
            // device
            stamp(r, c, g.at(i, j));
            // row wire to the right neighbour
            if (j + 1 < n) stamp(r, i * n + j + 1, g_wire_row_);
            // driver into the first row node (source through Rdriver)
            if (j == 0) {
                A(r, r) += g_driver_;
                b[static_cast<std::size_t>(r)] +=
                    g_driver_ * v_in[static_cast<std::size_t>(i)];
            }
            // column wire down
            if (i + 1 < n) stamp(c, n * n + (i + 1) * n + j, g_wire_col_);
            // sense resistor to ground at the bottom
            if (i == n - 1) A(c, c) += g_sense_;
        }
    }

    // Gaussian elimination with partial pivoting.
    for (std::int64_t k = 0; k < unknowns; ++k) {
        std::int64_t pivot = k;
        for (std::int64_t r = k + 1; r < unknowns; ++r)
            if (std::fabs(A(r, k)) > std::fabs(A(pivot, k))) pivot = r;
        if (pivot != k) {
            for (std::int64_t cidx = 0; cidx < unknowns; ++cidx)
                std::swap(A(k, cidx), A(pivot, cidx));
            std::swap(b[static_cast<std::size_t>(k)], b[static_cast<std::size_t>(pivot)]);
        }
        const double pk = A(k, k);
        check(std::fabs(pk) > 1e-30, "solve_dense: singular nodal matrix");
        for (std::int64_t r = k + 1; r < unknowns; ++r) {
            const double m = A(r, k) / pk;
            if (m == 0.0) continue;
            for (std::int64_t cidx = k; cidx < unknowns; ++cidx)
                A(r, cidx) -= m * A(k, cidx);
            b[static_cast<std::size_t>(r)] -= m * b[static_cast<std::size_t>(k)];
        }
    }
    std::vector<double> v(static_cast<std::size_t>(unknowns));
    for (std::int64_t k = unknowns; k-- > 0;) {
        double acc = b[static_cast<std::size_t>(k)];
        for (std::int64_t cidx = k + 1; cidx < unknowns; ++cidx)
            acc -= A(k, cidx) * v[static_cast<std::size_t>(cidx)];
        v[static_cast<std::size_t>(k)] = acc / A(k, k);
    }

    SolveResult result;
    result.v_row = Tensor({n, n});
    result.v_col = Tensor({n, n});
    for (std::int64_t i = 0; i < n; ++i)
        for (std::int64_t j = 0; j < n; ++j) {
            result.v_row.at(i, j) = static_cast<float>(v[static_cast<std::size_t>(i * n + j)]);
            result.v_col.at(i, j) =
                static_cast<float>(v[static_cast<std::size_t>(n * n + i * n + j)]);
        }
    result.currents.resize(static_cast<std::size_t>(n));
    for (std::int64_t j = 0; j < n; ++j)
        result.currents[static_cast<std::size_t>(j)] =
            v[static_cast<std::size_t>(n * n + (n - 1) * n + j)] * g_sense_;
    result.iterations = 1;
    return result;
}

}  // namespace xs::xbar
