#include "xbar/solver.h"

#include "util/metrics.h"

#include <algorithm>
#include <cmath>

namespace xs::xbar {

using tensor::check;
using tensor::Tensor;

namespace {

// A resistance of exactly zero means "ideal conductor"; represent it with a
// huge-but-finite conductance to keep the linear algebra well posed.
double safe_conductance(double resistance) {
    return resistance <= 0.0 ? 1e9 : 1.0 / resistance;
}

}  // namespace

void SolveWorkspace::ensure(std::int64_t size) {
    if (n == size) return;
    const auto nn = static_cast<std::size_t>(size * size);
    const auto ns = static_cast<std::size_t>(size);
    vr.resize(nn);
    vc.resize(nn);
    g_row.resize(nn);
    g_col.resize(nn);
    row_m.resize(nn);
    row_inv_d.resize(nn);
    col_m.resize(nn);
    col_inv_d.resize(nn);
    rhs.resize(ns);
    currents.resize(ns);
    n = size;
    warm = false;
}

CircuitSolver::CircuitSolver(const CrossbarConfig& config) : config_(config) {
    g_driver_ = safe_conductance(config.parasitics.r_driver);
    g_wire_row_ = safe_conductance(config.parasitics.r_wire_row);
    g_wire_col_ = safe_conductance(config.parasitics.r_wire_col);
    g_sense_ = safe_conductance(config.parasitics.r_sense);
}

void CircuitSolver::ideal_currents(const Tensor& g, const double* v_in,
                                   double* out) const {
    const std::int64_t n = config_.size;
    check(g.rank() == 2 && g.dim(0) == n && g.dim(1) == n,
          "CircuitSolver: conductance matrix shape mismatch");
    std::fill(out, out + n, 0.0);
    for (std::int64_t i = 0; i < n; ++i) {
        const float* row = g.data() + i * n;
        const double vi = v_in[i];
        for (std::int64_t j = 0; j < n; ++j)
            out[j] += static_cast<double>(row[j]) * vi;
    }
}

std::vector<double> CircuitSolver::ideal_currents(
    const Tensor& g, const std::vector<double>& v_in) const {
    check(static_cast<std::int64_t>(v_in.size()) == config_.size,
          "CircuitSolver: input voltage count mismatch");
    std::vector<double> out(v_in.size());
    ideal_currents(g, v_in.data(), out.data());
    return out;
}

bool CircuitSolver::solve(const Tensor& g, const double* v_in,
                          SolveWorkspace& ws) const {
    const std::int64_t n = config_.size;
    check(g.rank() == 2 && g.dim(0) == n && g.dim(1) == n,
          "CircuitSolver: conductance matrix shape mismatch");
    ws.ensure(n);
    XS_TIMER_NS("xbar.solve.ns");
    XS_COUNT("xbar.solve.solves", 1);
#if XS_TELEMETRY_ENABLED
    // Handles hoisted out of their conditions: a branch-local XS_COUNT
    // would register (and allocate) on the first *taken* branch, breaking
    // the zero-allocation steady state when e.g. the first warm start
    // happens after warm-up.
    static const util::metrics::Counter warm_starts =
        util::metrics::counter("xbar.solve.warm_starts");
    static const util::metrics::Counter unconverged =
        util::metrics::counter("xbar.solve.unconverged");
    if (ws.warm) warm_starts.add(1);
#endif

    const double gdrv = g_driver_, gwr = g_wire_row_, gwc = g_wire_col_,
                 gsn = g_sense_;

    // Promote the device conductances to double, row- and column-major, so
    // the sweeps below touch contiguous memory in both directions.
    const float* gf = g.data();
    double* gr = ws.g_row.data();
    double* gc = ws.g_col.data();
    for (std::int64_t i = 0; i < n; ++i) {
        const float* src = gf + i * n;
        double* dst = gr + i * n;
        for (std::int64_t j = 0; j < n; ++j) {
            const double v = src[j];
            dst[j] = v;
            gc[j * n + i] = v;
        }
    }

    // Factor every chain's tridiagonal matrix once (it is constant across
    // sweeps; only the right-hand side changes). For a chain with diagonal
    // d_k and constant off-diagonal -w, forward elimination gives
    // m_k = -w / d'_{k-1}, d'_k = d_k + m_k·w; we store m_k and 1/d'_k so a
    // sweep is pure multiply-adds.
    for (std::int64_t i = 0; i < n; ++i) {
        const double* grow = gr + i * n;
        double* m = ws.row_m.data() + i * n;
        double* inv = ws.row_inv_d.data() + i * n;
        double d = gdrv + (n > 1 ? gwr : 0.0) + grow[0];
        m[0] = 0.0;
        inv[0] = 1.0 / d;
        for (std::int64_t j = 1; j < n; ++j) {
            const double mj = -gwr * inv[j - 1];
            d = gwr + (j + 1 < n ? gwr : 0.0) + grow[j] + mj * gwr;
            m[j] = mj;
            inv[j] = 1.0 / d;
        }
    }
    for (std::int64_t j = 0; j < n; ++j) {
        const double* gcol = gc + j * n;
        double* m = ws.col_m.data() + j * n;
        double* inv = ws.col_inv_d.data() + j * n;
        double d = (n > 1 ? gwc : gsn) + gcol[0];
        m[0] = 0.0;
        inv[0] = 1.0 / d;
        for (std::int64_t i = 1; i < n; ++i) {
            const double mi = -gwc * inv[i - 1];
            d = gwc + (i + 1 < n ? gwc : gsn) + gcol[i] + mi * gwc;
            m[i] = mi;
            inv[i] = 1.0 / d;
        }
    }

    double* vr = ws.vr.data();
    double* vc = ws.vc.data();
    if (!ws.warm) {
        // Initial guess: rows at their source voltage, columns at ground.
        for (std::int64_t i = 0; i < n; ++i) {
            const double vi = v_in[i];
            double* row = vr + i * n;
            for (std::int64_t j = 0; j < n; ++j) row[j] = vi;
        }
        std::fill(vc, vc + n * n, 0.0);
    }

    const double omega = omega_;
    double* r = ws.rhs.data();
    double max_delta = 0.0;
    int sweep = 0;
    for (; sweep < max_sweeps_; ++sweep) {
        max_delta = 0.0;

        // Row chains: unknowns V_r(i, 0..n-1) with V_c frozen.
        for (std::int64_t i = 0; i < n; ++i) {
            const double* grow = gr + i * n;
            const double* m = ws.row_m.data() + i * n;
            const double* inv = ws.row_inv_d.data() + i * n;
            double* vri = vr + i * n;
            const double* vci = vc + i * n;
            r[0] = grow[0] * vci[0] + gdrv * v_in[i];
            for (std::int64_t j = 1; j < n; ++j)
                r[j] = grow[j] * vci[j] - m[j] * r[j - 1];
            r[n - 1] *= inv[n - 1];
            for (std::int64_t j = n - 2; j >= 0; --j)
                r[j] = (r[j] + gwr * r[j + 1]) * inv[j];
            for (std::int64_t j = 0; j < n; ++j) {
                const double d = r[j] - vri[j];
                max_delta = std::max(max_delta, std::fabs(d));
                vri[j] += omega * d;
            }
        }

        // Column chains: unknowns V_c(0..n-1, j) with V_r frozen. The bottom
        // node's sense conductance couples to ground (0 V): no rhs term.
        for (std::int64_t j = 0; j < n; ++j) {
            const double* gcol = gc + j * n;
            const double* m = ws.col_m.data() + j * n;
            const double* inv = ws.col_inv_d.data() + j * n;
            r[0] = gcol[0] * vr[j];
            for (std::int64_t i = 1; i < n; ++i)
                r[i] = gcol[i] * vr[i * n + j] - m[i] * r[i - 1];
            r[n - 1] *= inv[n - 1];
            for (std::int64_t i = n - 2; i >= 0; --i)
                r[i] = (r[i] + gwc * r[i + 1]) * inv[i];
            for (std::int64_t i = 0; i < n; ++i) {
                double& v = vc[i * n + j];
                const double d = r[i] - v;
                max_delta = std::max(max_delta, std::fabs(d));
                v += omega * d;
            }
        }

        if (max_delta < tolerance_) {
            ++sweep;
            break;
        }
    }

    ws.iterations = sweep;
    ws.max_delta = max_delta;
    ws.converged = max_delta < tolerance_;
    XS_COUNT("xbar.solve.sweeps", static_cast<std::uint64_t>(sweep));
#if XS_TELEMETRY_ENABLED
    if (!ws.converged) unconverged.add(1);
#endif
    // Only a converged field is worth warm-starting from; after a failed
    // solve the next one restarts cold, so bad state never propagates.
    ws.warm = ws.converged;
    for (std::int64_t j = 0; j < n; ++j)
        ws.currents[static_cast<std::size_t>(j)] = vc[(n - 1) * n + j] * gsn;
    return ws.converged;
}

SolveResult CircuitSolver::solve(const Tensor& g,
                                 const std::vector<double>& v_in) const {
    const std::int64_t n = config_.size;
    check(static_cast<std::int64_t>(v_in.size()) == n,
          "CircuitSolver: input voltage count mismatch");

    // Buffer reuse across calls on the same thread; the cold start is kept
    // (no warm-start) so results never depend on unrelated earlier solves.
    static thread_local SolveWorkspace ws;
    ws.invalidate();
    solve(g, v_in.data(), ws);

    SolveResult result;
    result.v_row = Tensor({n, n});
    result.v_col = Tensor({n, n});
    for (std::int64_t i = 0; i < n; ++i)
        for (std::int64_t j = 0; j < n; ++j) {
            result.v_row.at(i, j) = static_cast<float>(ws.vr[static_cast<std::size_t>(i * n + j)]);
            result.v_col.at(i, j) = static_cast<float>(ws.vc[static_cast<std::size_t>(i * n + j)]);
        }
    result.currents.assign(ws.currents.begin(), ws.currents.end());
    result.iterations = ws.iterations;
    result.max_delta = ws.max_delta;
    result.converged = ws.converged;
    return result;
}

SolveResult CircuitSolver::solve_dense(const Tensor& g,
                                       const std::vector<double>& v_in) const {
    const std::int64_t n = config_.size;
    check(g.rank() == 2 && g.dim(0) == n && g.dim(1) == n,
          "CircuitSolver: conductance matrix shape mismatch");
    const std::int64_t unknowns = 2 * n * n;  // row nodes then column nodes

    // Assemble the full nodal matrix A·v = b. Index r(i,j) = i*n+j,
    // c(i,j) = n*n + i*n + j.
    std::vector<double> a(static_cast<std::size_t>(unknowns * unknowns), 0.0);
    std::vector<double> b(static_cast<std::size_t>(unknowns), 0.0);
    auto A = [&](std::int64_t r, std::int64_t c) -> double& {
        return a[static_cast<std::size_t>(r * unknowns + c)];
    };
    auto stamp = [&](std::int64_t u, std::int64_t v, double cond) {
        // Conductance between unknowns u and v (v = -1 means ground).
        A(u, u) += cond;
        if (v >= 0) {
            A(v, v) += cond;
            A(u, v) -= cond;
            A(v, u) -= cond;
        }
    };

    for (std::int64_t i = 0; i < n; ++i) {
        for (std::int64_t j = 0; j < n; ++j) {
            const std::int64_t r = i * n + j;
            const std::int64_t c = n * n + i * n + j;
            // device
            stamp(r, c, g.at(i, j));
            // row wire to the right neighbour
            if (j + 1 < n) stamp(r, i * n + j + 1, g_wire_row_);
            // driver into the first row node (source through Rdriver)
            if (j == 0) {
                A(r, r) += g_driver_;
                b[static_cast<std::size_t>(r)] +=
                    g_driver_ * v_in[static_cast<std::size_t>(i)];
            }
            // column wire down
            if (i + 1 < n) stamp(c, n * n + (i + 1) * n + j, g_wire_col_);
            // sense resistor to ground at the bottom
            if (i == n - 1) A(c, c) += g_sense_;
        }
    }

    // Gaussian elimination with partial pivoting.
    for (std::int64_t k = 0; k < unknowns; ++k) {
        std::int64_t pivot = k;
        for (std::int64_t r = k + 1; r < unknowns; ++r)
            if (std::fabs(A(r, k)) > std::fabs(A(pivot, k))) pivot = r;
        if (pivot != k) {
            for (std::int64_t cidx = 0; cidx < unknowns; ++cidx)
                std::swap(A(k, cidx), A(pivot, cidx));
            std::swap(b[static_cast<std::size_t>(k)], b[static_cast<std::size_t>(pivot)]);
        }
        const double pk = A(k, k);
        check(std::fabs(pk) > 1e-30, "solve_dense: singular nodal matrix");
        for (std::int64_t r = k + 1; r < unknowns; ++r) {
            const double m = A(r, k) / pk;
            if (m == 0.0) continue;
            for (std::int64_t cidx = k; cidx < unknowns; ++cidx)
                A(r, cidx) -= m * A(k, cidx);
            b[static_cast<std::size_t>(r)] -= m * b[static_cast<std::size_t>(k)];
        }
    }
    std::vector<double> v(static_cast<std::size_t>(unknowns));
    for (std::int64_t k = unknowns; k-- > 0;) {
        double acc = b[static_cast<std::size_t>(k)];
        for (std::int64_t cidx = k + 1; cidx < unknowns; ++cidx)
            acc -= A(k, cidx) * v[static_cast<std::size_t>(cidx)];
        v[static_cast<std::size_t>(k)] = acc / A(k, k);
    }

    SolveResult result;
    result.v_row = Tensor({n, n});
    result.v_col = Tensor({n, n});
    for (std::int64_t i = 0; i < n; ++i)
        for (std::int64_t j = 0; j < n; ++j) {
            result.v_row.at(i, j) = static_cast<float>(v[static_cast<std::size_t>(i * n + j)]);
            result.v_col.at(i, j) =
                static_cast<float>(v[static_cast<std::size_t>(n * n + i * n + j)]);
        }
    result.currents.resize(static_cast<std::size_t>(n));
    for (std::int64_t j = 0; j < n; ++j)
        result.currents[static_cast<std::size_t>(j)] =
            v[static_cast<std::size_t>(n * n + (n - 1) * n + j)] * g_sense_;
    result.iterations = 1;
    result.converged = true;
    return result;
}

}  // namespace xs::xbar
