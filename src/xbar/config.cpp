#include "xbar/config.h"

#include <sstream>

namespace xs::xbar {

ParasiticsConfig ParasiticsConfig::ideal() {
    ParasiticsConfig p;
    p.r_driver = 0.0;
    p.r_wire_row = 0.0;
    p.r_wire_col = 0.0;
    p.r_sense = 0.0;
    return p;
}

std::string CrossbarConfig::describe() const {
    std::ostringstream os;
    os << size << "x" << size << " crossbar, R_MIN=" << device.r_min / 1e3
       << "k R_MAX=" << device.r_max / 1e3 << "k (ON/OFF "
       << device.on_off_ratio() << "), Rdriver=" << parasitics.r_driver
       << " Rwire_row=" << parasitics.r_wire_row
       << " Rwire_col=" << parasitics.r_wire_col
       << " Rsense=" << parasitics.r_sense
       << " sigma=" << device.sigma_variation;
    return os.str();
}

}  // namespace xs::xbar
