// Stuck-at-fault injection: a fraction of memristive devices cannot be
// programmed and are stuck at the lowest (SA0, open-like) or highest (SA1,
// short-like) conductance. Standard defect model for crossbar yield studies.
#pragma once

#include "tensor/tensor.h"
#include "util/rng.h"
#include "xbar/config.h"

namespace xs::xbar {

struct FaultConfig {
    double p_stuck_min = 0.0;  // probability a device is stuck at G_MIN (SA0)
    double p_stuck_max = 0.0;  // probability a device is stuck at G_MAX (SA1)

    bool any() const { return p_stuck_min > 0.0 || p_stuck_max > 0.0; }
};

// Overwrite randomly chosen entries with G_MIN / G_MAX per the fault rates.
// Draws are independent per device; deterministic for a given rng state.
// Returns the number of faulted devices.
std::int64_t apply_stuck_faults(tensor::Tensor& g, const DeviceConfig& device,
                                const FaultConfig& faults, util::Rng& rng);

}  // namespace xs::xbar
