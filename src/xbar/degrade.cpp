#include "xbar/degrade.h"

#include <algorithm>
#include <cmath>

namespace xs::xbar {

using tensor::Tensor;

void apply_variation(Tensor& g, const DeviceConfig& device, util::Rng& rng) {
    if (device.sigma_variation <= 0.0) return;
    const float lo = static_cast<float>(device.g_min() * 0.5);
    const float hi = static_cast<float>(device.g_max() * 2.0);
    float* p = g.data();
    for (std::int64_t i = 0; i < g.numel(); ++i) {
        const double eps = rng.normal(0.0, device.sigma_variation);
        p[i] = std::clamp(static_cast<float>(p[i] * (1.0 + eps)), lo, hi);
    }
}

TileDegradeResult degrade_tile(const Tensor& g, const CrossbarConfig& config) {
    const std::int64_t n = config.size;
    tensor::check(g.rank() == 2 && g.dim(0) == n && g.dim(1) == n,
                  "degrade_tile: conductance matrix shape mismatch");
    const double v_nom = config.parasitics.v_nom;
    const std::vector<double> v_in(static_cast<std::size_t>(n), v_nom);

    const CircuitSolver solver(config);
    const SolveResult sol = solver.solve(g, v_in);

    TileDegradeResult result;
    result.g_eff = Tensor({n, n});
    const double inv_v = 1.0 / v_nom;
    for (std::int64_t i = 0; i < n; ++i)
        for (std::int64_t j = 0; j < n; ++j) {
            const double alpha =
                (static_cast<double>(sol.v_row.at(i, j)) - sol.v_col.at(i, j)) * inv_v;
            // Attenuation can only reduce the device's effective drive; tiny
            // negative values from numerical round-off are clamped away.
            result.g_eff.at(i, j) = static_cast<float>(
                std::max(0.0, alpha) * static_cast<double>(g.at(i, j)));
        }

    const std::vector<double> ideal = solver.ideal_currents(g, v_in);
    double nf_sum = 0.0;
    std::int64_t nf_count = 0;
    for (std::int64_t j = 0; j < n; ++j) {
        const double ii = ideal[static_cast<std::size_t>(j)];
        if (ii <= 0.0) continue;
        nf_sum += (ii - sol.currents[static_cast<std::size_t>(j)]) / ii;
        ++nf_count;
    }
    result.nf = nf_count ? nf_sum / static_cast<double>(nf_count) : 0.0;
    return result;
}

double non_ideality_factor(const Tensor& g, const CrossbarConfig& config) {
    return degrade_tile(g, config).nf;
}

}  // namespace xs::xbar
