#include "xbar/degrade.h"

#include <algorithm>
#include <cmath>

namespace xs::xbar {

using tensor::Tensor;

void apply_variation(Tensor& g, const DeviceConfig& device, util::Rng& rng) {
    if (device.sigma_variation <= 0.0) return;
    const float lo = static_cast<float>(device.g_min() * 0.5);
    const float hi = static_cast<float>(device.g_max() * 2.0);
    float* p = g.data();
    for (std::int64_t i = 0; i < g.numel(); ++i) {
        const double eps = rng.normal(0.0, device.sigma_variation);
        p[i] = std::clamp(static_cast<float>(p[i] * (1.0 + eps)), lo, hi);
    }
}

void degrade_tile(const Tensor& g, const CircuitSolver& solver,
                  DegradeWorkspace& ws, TileDegradeResult& out) {
    const CrossbarConfig& config = solver.config();
    const std::int64_t n = config.size;
    tensor::check(g.rank() == 2 && g.dim(0) == n && g.dim(1) == n,
                  "degrade_tile: conductance matrix shape mismatch");
    const double v_nom = config.parasitics.v_nom;
    ws.v_in.assign(static_cast<std::size_t>(n), v_nom);
    ws.ideal.resize(static_cast<std::size_t>(n));

    const bool was_warm = ws.solve.warm && ws.solve.n == n;
    if (!solver.solve(g, ws.v_in.data(), ws.solve) && was_warm) {
        // A warm-started solve that ran out of sweeps would leave voltages
        // that depend on whatever the workspace solved before. Retry cold so
        // an unconverged result is at least deterministic.
        ws.solve.invalidate();
        solver.solve(g, ws.v_in.data(), ws.solve);
    }
    out.converged = ws.solve.converged;
    out.sweeps = ws.solve.iterations;

    if (!(out.g_eff.rank() == 2 && out.g_eff.dim(0) == n && out.g_eff.dim(1) == n))
        out.g_eff = Tensor({n, n});
    const double inv_v = 1.0 / v_nom;
    const float* gp = g.data();
    float* ge = out.g_eff.data();
    const double* vr = ws.solve.vr.data();
    const double* vc = ws.solve.vc.data();
    for (std::int64_t k = 0; k < n * n; ++k) {
        const double alpha = (vr[k] - vc[k]) * inv_v;
        // Attenuation can only reduce the device's effective drive; tiny
        // negative values from numerical round-off are clamped away.
        ge[k] = static_cast<float>(std::max(0.0, alpha) *
                                   static_cast<double>(gp[k]));
    }

    solver.ideal_currents(g, ws.v_in.data(), ws.ideal.data());
    double nf_sum = 0.0;
    std::int64_t nf_count = 0;
    for (std::int64_t j = 0; j < n; ++j) {
        const double ii = ws.ideal[static_cast<std::size_t>(j)];
        if (ii <= 0.0) continue;
        nf_sum += (ii - ws.solve.currents[static_cast<std::size_t>(j)]) / ii;
        ++nf_count;
    }
    out.nf = nf_count ? nf_sum / static_cast<double>(nf_count) : 0.0;
}

TileDegradeResult degrade_tile(const Tensor& g, const CrossbarConfig& config) {
    const CircuitSolver solver(config);
    DegradeWorkspace ws;
    TileDegradeResult result;
    degrade_tile(g, solver, ws, result);
    return result;
}

double non_ideality_factor(const Tensor& g, const CrossbarConfig& config) {
    return degrade_tile(g, config).nf;
}

}  // namespace xs::xbar
