#include "xbar/degrade.h"

#include <algorithm>
#include <cmath>

namespace xs::xbar {

using tensor::Tensor;

void apply_variation(Tensor& g, const DeviceConfig& device, util::Rng& rng) {
    if (device.sigma_variation <= 0.0) return;
    const float lo = static_cast<float>(device.g_min() * 0.5);
    const float hi = static_cast<float>(device.g_max() * 2.0);
    float* p = g.data();
    // Standard-normal draws in blocks (identical stream to per-element
    // rng.normal calls), scaled exactly as normal(0, σ) = σ·normal() so the
    // per-element arithmetic is unchanged. The draw buffer keeps the RNG out
    // of the clamp loop's dependency chain; 1024 doubles covers a full
    // 32×32 tile in one fill.
    constexpr std::int64_t kChunk = 1024;
    double eps[kChunk];
    for (std::int64_t start = 0; start < g.numel(); start += kChunk) {
        const std::int64_t c = std::min(kChunk, g.numel() - start);
        rng.normal_fill(eps, static_cast<std::size_t>(c));
        for (std::int64_t i = 0; i < c; ++i) {
            const double e = device.sigma_variation * eps[i];
            p[start + i] = std::clamp(
                static_cast<float>(p[start + i] * (1.0 + e)), lo, hi);
        }
    }
}

void degrade_tile(const Tensor& g, const CircuitSolver& solver,
                  DegradeWorkspace& ws, TileDegradeResult& out) {
    const CrossbarConfig& config = solver.config();
    const std::int64_t n = config.size;
    tensor::check(g.rank() == 2 && g.dim(0) == n && g.dim(1) == n,
                  "degrade_tile: conductance matrix shape mismatch");
    const double v_nom = config.parasitics.v_nom;
    ws.v_in.assign(static_cast<std::size_t>(n), v_nom);
    ws.ideal.resize(static_cast<std::size_t>(n));

    const bool was_warm = ws.solve.warm && ws.solve.n == n;
    if (!solver.solve(g, ws.v_in.data(), ws.solve) && was_warm) {
        // A warm-started solve that ran out of sweeps would leave voltages
        // that depend on whatever the workspace solved before. Retry cold so
        // an unconverged result is at least deterministic.
        ws.solve.invalidate();
        solver.solve(g, ws.v_in.data(), ws.solve);
    }
    out.converged = ws.solve.converged;
    out.sweeps = ws.solve.iterations;

    if (!(out.g_eff.rank() == 2 && out.g_eff.dim(0) == n && out.g_eff.dim(1) == n))
        out.g_eff = Tensor({n, n});
    const double inv_v = 1.0 / v_nom;
    const float* gp = g.data();
    float* ge = out.g_eff.data();
    const double* vr = ws.solve.vr.data();
    const double* vc = ws.solve.vc.data();
    for (std::int64_t k = 0; k < n * n; ++k) {
        const double alpha = (vr[k] - vc[k]) * inv_v;
        // Attenuation can only reduce the device's effective drive; tiny
        // negative values from numerical round-off are clamped away.
        ge[k] = static_cast<float>(std::max(0.0, alpha) *
                                   static_cast<double>(gp[k]));
    }

    solver.ideal_currents(g, ws.v_in.data(), ws.ideal.data());
    double nf_sum = 0.0;
    std::int64_t nf_count = 0;
    for (std::int64_t j = 0; j < n; ++j) {
        const double ii = ws.ideal[static_cast<std::size_t>(j)];
        if (ii <= 0.0) continue;
        nf_sum += (ii - ws.solve.currents[static_cast<std::size_t>(j)]) / ii;
        ++nf_count;
    }
    out.nf = nf_count ? nf_sum / static_cast<double>(nf_count) : 0.0;
}

void degrade_tile_batched(const Tensor* const* g, int lanes,
                          const CircuitSolver& solver,
                          BatchedDegradeWorkspace& ws,
                          TileDegradeResult* const* out) {
    const CrossbarConfig& config = solver.config();
    const std::int64_t n = config.size;
    const double v_nom = config.parasitics.v_nom;
    ws.v_in.assign(static_cast<std::size_t>(n), v_nom);
    ws.ideal.resize(static_cast<std::size_t>(n));

    bool was_warm[kMaxSolveLanes] = {};
    for (int r = 0; r < lanes; ++r)
        was_warm[r] = ws.solve.warm[r] != 0 && ws.solve.n == n &&
                      ws.solve.lanes == lanes;
    solver.solve_batched(g, lanes, ws.v_in.data(), ws.solve);

    const int L = lanes;
    for (int r = 0; r < L; ++r) {
        if (ws.solve.converged[r] || !was_warm[r]) continue;
        // Same rule as the scalar path: a warm-started solve that ran out of
        // sweeps retries cold so the unconverged result is deterministic.
        // The retry runs through the scalar solver (bit-identical to the
        // scalar retry) and its state is spliced back into the lane so the
        // warm chain continues exactly as it would have solo.
        ws.retry.invalidate();
        solver.solve(*g[r], ws.v_in.data(), ws.retry);
        for (std::int64_t k = 0; k < n * n; ++k) {
            ws.solve.vr[static_cast<std::size_t>(k * L + r)] =
                ws.retry.vr[static_cast<std::size_t>(k)];
            ws.solve.vc[static_cast<std::size_t>(k * L + r)] =
                ws.retry.vc[static_cast<std::size_t>(k)];
        }
        for (std::int64_t j = 0; j < n; ++j)
            ws.solve.currents[static_cast<std::size_t>(j * L + r)] =
                ws.retry.currents[static_cast<std::size_t>(j)];
        ws.solve.iterations[r] = ws.retry.iterations;
        ws.solve.max_delta[r] = ws.retry.max_delta;
        ws.solve.converged[r] = ws.retry.converged ? 1 : 0;
        ws.solve.warm[r] = ws.retry.warm ? 1 : 0;
    }

    const double inv_v = 1.0 / v_nom;
    const double* vr = ws.solve.vr.data();
    const double* vc = ws.solve.vc.data();
    for (int r = 0; r < L; ++r) {
        TileDegradeResult& o = *out[r];
        o.converged = ws.solve.converged[r] != 0;
        o.sweeps = ws.solve.iterations[r];

        if (!(o.g_eff.rank() == 2 && o.g_eff.dim(0) == n && o.g_eff.dim(1) == n))
            o.g_eff = Tensor({n, n});
        const float* gp = g[r]->data();
        float* ge = o.g_eff.data();
        for (std::int64_t k = 0; k < n * n; ++k) {
            const double alpha = (vr[k * L + r] - vc[k * L + r]) * inv_v;
            ge[k] = static_cast<float>(std::max(0.0, alpha) *
                                       static_cast<double>(gp[k]));
        }

        solver.ideal_currents(*g[r], ws.v_in.data(), ws.ideal.data());
        double nf_sum = 0.0;
        std::int64_t nf_count = 0;
        for (std::int64_t j = 0; j < n; ++j) {
            const double ii = ws.ideal[static_cast<std::size_t>(j)];
            if (ii <= 0.0) continue;
            nf_sum +=
                (ii - ws.solve.currents[static_cast<std::size_t>(j * L + r)]) / ii;
            ++nf_count;
        }
        o.nf = nf_count ? nf_sum / static_cast<double>(nf_count) : 0.0;
    }
}

TileDegradeResult degrade_tile(const Tensor& g, const CrossbarConfig& config) {
    const CircuitSolver solver(config);
    DegradeWorkspace ws;
    TileDegradeResult result;
    degrade_tile(g, solver, ws, result);
    return result;
}

double non_ideality_factor(const Tensor& g, const CrossbarConfig& config) {
    return degrade_tile(g, config).nf;
}

}  // namespace xs::xbar
