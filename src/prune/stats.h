// Sparsity reporting: per-layer element sparsity and structured-zero counts
// (zero filters / zero rows / zero segments), for tables and sanity checks.
#pragma once

#include "nn/sequential.h"

#include <cstdint>
#include <string>
#include <vector>

namespace xs::prune {

struct LayerSparsity {
    std::string layer;
    std::int64_t rows = 0;          // MAC-matrix rows (Cin·k·k or in_features)
    std::int64_t cols = 0;          // MAC-matrix cols (Cout or out_features)
    std::int64_t zeros = 0;         // zero weight entries
    std::int64_t total = 0;         // weight entries
    std::int64_t zero_cols = 0;     // all-zero matrix columns (pruned filters)
    std::int64_t zero_rows = 0;     // all-zero matrix rows (pruned channels)

    double element_sparsity() const {
        return total ? static_cast<double>(zeros) / static_cast<double>(total) : 0.0;
    }
};

// One entry per mapped (conv/linear) layer, in network order.
std::vector<LayerSparsity> layer_sparsity(nn::Sequential& model);

// Whole-model element sparsity over mapped layers.
double model_sparsity(nn::Sequential& model);

std::string sparsity_report(nn::Sequential& model);

}  // namespace xs::prune
