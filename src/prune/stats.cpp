#include "prune/stats.h"

#include "nn/conv2d.h"
#include "nn/linear.h"

#include <sstream>

namespace xs::prune {
namespace {

LayerSparsity analyze(const std::string& name, const float* w, std::int64_t rows,
                      std::int64_t cols, bool row_major_cols_first) {
    // `row_major_cols_first` = true when w is laid out (cols, rows) — the
    // conv/linear parameter layout; the MAC matrix is its transpose.
    LayerSparsity s;
    s.layer = name;
    s.rows = rows;
    s.cols = cols;
    s.total = rows * cols;
    auto value = [&](std::int64_t r, std::int64_t c) {
        return row_major_cols_first ? w[c * rows + r] : w[r * cols + c];
    };
    for (std::int64_t r = 0; r < rows; ++r)
        for (std::int64_t c = 0; c < cols; ++c)
            if (value(r, c) == 0.0f) ++s.zeros;
    for (std::int64_t c = 0; c < cols; ++c) {
        bool all_zero = true;
        for (std::int64_t r = 0; r < rows && all_zero; ++r)
            if (value(r, c) != 0.0f) all_zero = false;
        if (all_zero) ++s.zero_cols;
    }
    for (std::int64_t r = 0; r < rows; ++r) {
        bool all_zero = true;
        for (std::int64_t c = 0; c < cols && all_zero; ++c)
            if (value(r, c) != 0.0f) all_zero = false;
        if (all_zero) ++s.zero_rows;
    }
    return s;
}

}  // namespace

std::vector<LayerSparsity> layer_sparsity(nn::Sequential& model) {
    std::vector<LayerSparsity> out;
    model.for_each([&out](nn::Layer& layer) {
        if (auto* conv = dynamic_cast<nn::Conv2d*>(&layer)) {
            const std::int64_t rows =
                conv->in_channels() * conv->kernel() * conv->kernel();
            out.push_back(analyze(layer.name(), conv->weight().value.data(), rows,
                                  conv->out_channels(), true));
        } else if (auto* fc = dynamic_cast<nn::Linear*>(&layer)) {
            out.push_back(analyze(layer.name(), fc->weight().value.data(),
                                  fc->in_features(), fc->out_features(), true));
        }
    });
    return out;
}

double model_sparsity(nn::Sequential& model) {
    std::int64_t zeros = 0, total = 0;
    for (const auto& s : layer_sparsity(model)) {
        zeros += s.zeros;
        total += s.total;
    }
    return total ? static_cast<double>(zeros) / static_cast<double>(total) : 0.0;
}

std::string sparsity_report(nn::Sequential& model) {
    std::ostringstream os;
    for (const auto& s : layer_sparsity(model)) {
        os << s.layer << ": " << s.rows << "x" << s.cols << " sparsity "
           << s.element_sparsity() << " zero_cols " << s.zero_cols << "/" << s.cols
           << " zero_rows " << s.zero_rows << "/" << s.rows << '\n';
    }
    return os.str();
}

}  // namespace xs::prune
