// Crossbar-aware structured pruning at initialization (paper §II-B, §III).
//
// Three schemes:
//  * C/F  — channel/filter pruning: whole conv filters are removed, together
//           with the corresponding input channels of the next layer (and the
//           BN scale/shift of removed channels);
//  * XCS  — crossbar-column sparsity: within a layer's 2-D MAC matrix
//           (rows = Cin·k·k inputs, cols = filters), segments of
//           `segment_size` consecutive rows in one column are pruned;
//  * XRS  — crossbar-row sparsity: segments of consecutive columns in one
//           row are pruned.
//
// Scores are structure L2 norms of the freshly initialized weights (the
// prune-at-init protocol of [Frankle et al.]); the lowest-scoring fraction
// `sparsity` per layer is removed.
#pragma once

#include "nn/sequential.h"
#include "prune/mask.h"

#include <cstdint>
#include <string>

namespace xs::prune {

enum class Method {
    kNone,
    kChannelFilter,  // C/F
    kXbarColumn,     // XCS
    kXbarRow,        // XRS
    kUnstructured,   // element-wise magnitude baseline: same parameter
                     // sparsity, but scattered zeros save no crossbars —
                     // the contrast that motivates crossbar-aware pruning
};

std::string method_name(Method method);
Method method_from_name(const std::string& name);

struct PruneConfig {
    Method method = Method::kChannelFilter;
    double sparsity = 0.8;           // fraction pruned per layer
    std::int64_t segment_size = 32;  // XCS/XRS segment granularity (crossbar dim)
    bool spare_first_conv = true;    // common practice: keep the stem dense
    bool prune_classifier_inputs = true;  // C/F: drop FC inputs of pruned channels
};

// Builds masks from the model's current (initialization) weights and applies
// them once. Re-apply after every optimizer step via MaskSet::hook().
MaskSet prune_at_init(nn::Sequential& model, const PruneConfig& config);

}  // namespace xs::prune
