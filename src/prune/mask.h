// Binary keep/prune masks over model parameters. Masks are created once by
// the pruners (prune.h) and re-applied after every optimizer step via the
// trainer hook, implementing "structured pruning at initialization followed
// by training" (paper §III).
#pragma once

#include "nn/sequential.h"
#include "nn/trainer.h"

#include <map>
#include <string>

namespace xs::prune {

class MaskSet {
public:
    // Register a mask for a qualified parameter name (e.g. "conv3.weight").
    // Mask entries are 1 (keep) or 0 (prune); shape must match the parameter.
    void add(const std::string& qualified_param, tensor::Tensor mask);

    bool empty() const { return masks_.empty(); }
    std::size_t size() const { return masks_.size(); }

    const tensor::Tensor* find(const std::string& qualified_param) const;

    // Zero out pruned entries of every masked parameter in `model`.
    void apply(nn::Sequential& model) const;

    // Trainer hook re-applying the masks (bind with std::ref semantics: the
    // MaskSet must outlive the returned hook).
    nn::StepHook hook() const;

    // Fraction of masked-parameter entries that are pruned.
    double sparsity() const;

    // Reconstruct a mask set from a model whose weights already contain
    // structural zeros (e.g. after loading a pruned checkpoint): every
    // exactly-zero entry is treated as pruned.
    static MaskSet from_zeros(nn::Sequential& model);

private:
    std::map<std::string, tensor::Tensor> masks_;
};

}  // namespace xs::prune
