#include "prune/prune.h"

#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

namespace xs::prune {

using nn::BatchNorm2d;
using nn::Conv2d;
using nn::Layer;
using nn::Linear;
using tensor::check;
using tensor::Tensor;

std::string method_name(Method method) {
    switch (method) {
        case Method::kNone: return "unpruned";
        case Method::kChannelFilter: return "cf";
        case Method::kXbarColumn: return "xcs";
        case Method::kXbarRow: return "xrs";
        case Method::kUnstructured: return "unstructured";
    }
    return "?";
}

Method method_from_name(const std::string& name) {
    if (name == "unpruned" || name == "none") return Method::kNone;
    if (name == "cf") return Method::kChannelFilter;
    if (name == "xcs") return Method::kXbarColumn;
    if (name == "xrs") return Method::kXbarRow;
    if (name == "unstructured") return Method::kUnstructured;
    check(false, "unknown pruning method '" + name + "'");
    return Method::kNone;
}

namespace {

// Indices of the `keep` largest scores (ties broken by index for determinism).
std::vector<bool> keep_top(const std::vector<double>& scores, std::int64_t keep) {
    const auto n = static_cast<std::int64_t>(scores.size());
    std::vector<std::int64_t> order(static_cast<std::size_t>(n));
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&scores](std::int64_t a, std::int64_t b) {
                         return scores[static_cast<std::size_t>(a)] >
                                scores[static_cast<std::size_t>(b)];
                     });
    std::vector<bool> kept(static_cast<std::size_t>(n), false);
    for (std::int64_t i = 0; i < std::min(keep, n); ++i)
        kept[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])] = true;
    return kept;
}

std::int64_t keep_count(std::int64_t total, double sparsity) {
    const auto keep =
        static_cast<std::int64_t>(std::llround((1.0 - sparsity) * static_cast<double>(total)));
    return std::max<std::int64_t>(keep, 1);
}

// ---- C/F pruning ----

void prune_channel_filter(nn::Sequential& model, const PruneConfig& config,
                          MaskSet& masks) {
    // kept[c] for the channels feeding the *next* layer; starts all-true for
    // the image input channels.
    std::vector<bool> prev_kept;
    bool first_conv = true;
    std::int64_t prev_channels = -1;

    for (std::size_t li = 0; li < model.size(); ++li) {
        Layer& layer = model.layer(li);
        if (auto* conv = dynamic_cast<Conv2d*>(&layer)) {
            const std::int64_t cout = conv->out_channels();
            const std::int64_t cin = conv->in_channels();
            const std::int64_t k = conv->kernel();
            if (prev_kept.empty()) prev_kept.assign(static_cast<std::size_t>(cin), true);
            check(static_cast<std::int64_t>(prev_kept.size()) == cin,
                  "C/F pruning: channel bookkeeping mismatch at " + layer.name());

            std::vector<bool> kept;
            if (first_conv && config.spare_first_conv) {
                kept.assign(static_cast<std::size_t>(cout), true);
            } else {
                std::vector<double> scores(static_cast<std::size_t>(cout), 0.0);
                const std::int64_t per_filter = cin * k * k;
                const float* w = conv->weight().value.data();
                for (std::int64_t f = 0; f < cout; ++f) {
                    double acc = 0.0;
                    for (std::int64_t j = 0; j < per_filter; ++j) {
                        const double x = w[f * per_filter + j];
                        acc += x * x;
                    }
                    scores[static_cast<std::size_t>(f)] = acc;
                }
                kept = keep_top(scores, keep_count(cout, config.sparsity));
            }
            first_conv = false;

            Tensor wmask({cout, cin, k, k}, 0.0f);
            for (std::int64_t f = 0; f < cout; ++f) {
                if (!kept[static_cast<std::size_t>(f)]) continue;
                for (std::int64_t c = 0; c < cin; ++c) {
                    if (!prev_kept[static_cast<std::size_t>(c)]) continue;
                    for (std::int64_t a = 0; a < k; ++a)
                        for (std::int64_t b = 0; b < k; ++b)
                            wmask.at(f, c, a, b) = 1.0f;
                }
            }
            masks.add(layer.name() + ".weight", std::move(wmask));
            if (conv->has_bias()) {
                Tensor bmask({cout}, 0.0f);
                for (std::int64_t f = 0; f < cout; ++f)
                    if (kept[static_cast<std::size_t>(f)]) bmask[f] = 1.0f;
                masks.add(layer.name() + ".bias", std::move(bmask));
            }
            prev_kept = kept;
            prev_channels = cout;
        } else if (auto* bn = dynamic_cast<BatchNorm2d*>(&layer)) {
            // Pruned channels must stay exactly zero through BN: zero the
            // affine scale *and* shift of removed channels.
            if (prev_channels != bn->channels()) continue;
            Tensor gmask({bn->channels()}, 0.0f);
            for (std::int64_t c = 0; c < bn->channels(); ++c)
                if (prev_kept[static_cast<std::size_t>(c)]) gmask[c] = 1.0f;
            Tensor bmask = gmask;
            masks.add(layer.name() + ".gamma", std::move(gmask));
            masks.add(layer.name() + ".beta", std::move(bmask));
        } else if (auto* fc = dynamic_cast<Linear*>(&layer)) {
            // Classifier: remove the input features of pruned channels (the
            // paper's "rows of the weight matrix of the next DNN layer").
            if (!config.prune_classifier_inputs || prev_kept.empty()) break;
            const std::int64_t in = fc->in_features();
            const std::int64_t out = fc->out_features();
            const auto channels = static_cast<std::int64_t>(prev_kept.size());
            check(in % channels == 0,
                  "C/F pruning: classifier features not divisible by channels");
            const std::int64_t spatial = in / channels;
            Tensor wmask({out, in}, 0.0f);
            for (std::int64_t o = 0; o < out; ++o)
                for (std::int64_t j = 0; j < in; ++j)
                    if (prev_kept[static_cast<std::size_t>(j / spatial)])
                        wmask.at(o, j) = 1.0f;
            masks.add(layer.name() + ".weight", std::move(wmask));
            break;  // only the first FC touches conv feature maps
        }
    }
}

// ---- unstructured magnitude pruning ----

// Element-wise baseline: per conv layer, zero the lowest-|w| fraction.
void prune_unstructured(nn::Sequential& model, const PruneConfig& config,
                        MaskSet& masks) {
    bool first_conv = true;
    for (std::size_t li = 0; li < model.size(); ++li) {
        Layer& layer = model.layer(li);
        auto* conv = dynamic_cast<Conv2d*>(&layer);
        if (!conv) continue;
        if (first_conv && config.spare_first_conv) {
            first_conv = false;
            continue;
        }
        first_conv = false;
        const Tensor& w = conv->weight().value;
        std::vector<double> scores(static_cast<std::size_t>(w.numel()));
        for (std::int64_t i = 0; i < w.numel(); ++i)
            scores[static_cast<std::size_t>(i)] = std::fabs(w[i]);
        const auto kept = keep_top(scores, keep_count(w.numel(), config.sparsity));
        Tensor mask(w.shape(), 0.0f);
        for (std::int64_t i = 0; i < w.numel(); ++i)
            if (kept[static_cast<std::size_t>(i)]) mask[i] = 1.0f;
        masks.add(layer.name() + ".weight", std::move(mask));
    }
}

// ---- XCS / XRS pruning ----

// Prune (block, column) or (row, block) segments of each conv layer's MAC
// matrix. The conv weight tensor is (Cout, Cin, k, k) = (cols, rows) of the
// MAC matrix, i.e. matrix entry (r, c) = weight[c*rows + r] when flattened.
void prune_segments(nn::Sequential& model, const PruneConfig& config,
                    bool column_segments, MaskSet& masks) {
    bool first_conv = true;
    for (std::size_t li = 0; li < model.size(); ++li) {
        Layer& layer = model.layer(li);
        auto* conv = dynamic_cast<Conv2d*>(&layer);
        if (!conv) continue;
        const std::int64_t rows = conv->in_channels() * conv->kernel() * conv->kernel();
        const std::int64_t cols = conv->out_channels();
        if (first_conv && config.spare_first_conv) {
            first_conv = false;
            continue;
        }
        first_conv = false;

        const std::int64_t seg = config.segment_size;
        const float* w = conv->weight().value.data();  // (cols, rows) layout
        Tensor mask(conv->weight().value.shape(), 1.0f);
        float* pm = mask.data();

        if (column_segments) {
            // XCS: segments of `seg` consecutive rows within one column.
            const std::int64_t blocks = (rows + seg - 1) / seg;
            std::vector<double> scores(static_cast<std::size_t>(blocks * cols), 0.0);
            for (std::int64_t c = 0; c < cols; ++c)
                for (std::int64_t b = 0; b < blocks; ++b) {
                    double acc = 0.0;
                    const std::int64_t r1 = std::min(rows, (b + 1) * seg);
                    for (std::int64_t r = b * seg; r < r1; ++r) {
                        const double x = w[c * rows + r];
                        acc += x * x;
                    }
                    scores[static_cast<std::size_t>(b * cols + c)] = acc;
                }
            const auto kept =
                keep_top(scores, keep_count(blocks * cols, config.sparsity));
            for (std::int64_t c = 0; c < cols; ++c)
                for (std::int64_t b = 0; b < blocks; ++b) {
                    if (kept[static_cast<std::size_t>(b * cols + c)]) continue;
                    const std::int64_t r1 = std::min(rows, (b + 1) * seg);
                    for (std::int64_t r = b * seg; r < r1; ++r)
                        pm[c * rows + r] = 0.0f;
                }
        } else {
            // XRS: segments of `seg` consecutive columns within one row.
            const std::int64_t blocks = (cols + seg - 1) / seg;
            std::vector<double> scores(static_cast<std::size_t>(blocks * rows), 0.0);
            for (std::int64_t r = 0; r < rows; ++r)
                for (std::int64_t b = 0; b < blocks; ++b) {
                    double acc = 0.0;
                    const std::int64_t c1 = std::min(cols, (b + 1) * seg);
                    for (std::int64_t c = b * seg; c < c1; ++c) {
                        const double x = w[c * rows + r];
                        acc += x * x;
                    }
                    scores[static_cast<std::size_t>(b * rows + r)] = acc;
                }
            const auto kept =
                keep_top(scores, keep_count(blocks * rows, config.sparsity));
            for (std::int64_t r = 0; r < rows; ++r)
                for (std::int64_t b = 0; b < blocks; ++b) {
                    if (kept[static_cast<std::size_t>(b * rows + r)]) continue;
                    const std::int64_t c1 = std::min(cols, (b + 1) * seg);
                    for (std::int64_t c = b * seg; c < c1; ++c)
                        pm[c * rows + r] = 0.0f;
                }
        }
        masks.add(layer.name() + ".weight", std::move(mask));
    }
}

}  // namespace

MaskSet prune_at_init(nn::Sequential& model, const PruneConfig& config) {
    check(config.sparsity >= 0.0 && config.sparsity < 1.0,
          "prune_at_init: sparsity must be in [0, 1)");
    check(config.segment_size > 0, "prune_at_init: segment_size must be positive");

    MaskSet masks;
    switch (config.method) {
        case Method::kNone:
            break;
        case Method::kChannelFilter:
            prune_channel_filter(model, config, masks);
            break;
        case Method::kXbarColumn:
            prune_segments(model, config, /*column_segments=*/true, masks);
            break;
        case Method::kXbarRow:
            prune_segments(model, config, /*column_segments=*/false, masks);
            break;
        case Method::kUnstructured:
            prune_unstructured(model, config, masks);
            break;
    }
    masks.apply(model);
    return masks;
}

}  // namespace xs::prune
