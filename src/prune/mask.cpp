#include "prune/mask.h"

#include "tensor/ops.h"

namespace xs::prune {

using tensor::Tensor;

void MaskSet::add(const std::string& qualified_param, Tensor mask) {
    tensor::check(masks_.count(qualified_param) == 0,
                  "MaskSet: duplicate mask for '" + qualified_param + "'");
    masks_.emplace(qualified_param, std::move(mask));
}

const Tensor* MaskSet::find(const std::string& qualified_param) const {
    const auto it = masks_.find(qualified_param);
    return it == masks_.end() ? nullptr : &it->second;
}

void MaskSet::apply(nn::Sequential& model) const {
    for (auto& np : model.named_params()) {
        const auto it = masks_.find(np.qualified_name);
        if (it == masks_.end()) continue;
        tensor::check(it->second.same_shape(np.param->value),
                      "MaskSet: mask/param shape mismatch for '" +
                          np.qualified_name + "'");
        tensor::mul_inplace(np.param->value, it->second);
    }
}

nn::StepHook MaskSet::hook() const {
    return [this](nn::Sequential& model) { apply(model); };
}

double MaskSet::sparsity() const {
    std::int64_t total = 0, pruned = 0;
    for (const auto& [name, mask] : masks_) {
        total += mask.numel();
        const float* p = mask.data();
        for (std::int64_t i = 0; i < mask.numel(); ++i)
            if (p[i] == 0.0f) ++pruned;
    }
    return total == 0 ? 0.0
                      : static_cast<double>(pruned) / static_cast<double>(total);
}

MaskSet MaskSet::from_zeros(nn::Sequential& model) {
    MaskSet set;
    for (auto& np : model.named_params()) {
        const Tensor& v = np.param->value;
        bool any_zero = false;
        const float* pv = v.data();
        for (std::int64_t i = 0; i < v.numel(); ++i)
            if (pv[i] == 0.0f) {
                any_zero = true;
                break;
            }
        if (!any_zero) continue;
        Tensor mask(v.shape(), 1.0f);
        float* pm = mask.data();
        for (std::int64_t i = 0; i < v.numel(); ++i)
            if (pv[i] == 0.0f) pm[i] = 0.0f;
        set.add(np.qualified_name, std::move(mask));
    }
    return set;
}

}  // namespace xs::prune
