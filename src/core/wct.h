// Weight-Constrained-Training (paper §VI-B, motivated by NEAT).
//
// From the trained weight distribution of every mappable layer a cut-off
// W_cut is chosen (a percentile of the non-zero |w| values). Weights are
// transformed w ← min(|w|, W_cut)·sign(w) and the model is fine-tuned for a
// couple of epochs with the clip (and any pruning masks) re-applied after
// each step. At mapping time the weight→conductance scale stays frozen at
// the pre-clip per-layer max|w| (returned in `w_ref`), so the WCT model
// occupies only the robust low-conductance region of the devices.
#pragma once

#include "nn/sequential.h"
#include "nn/trainer.h"
#include "prune/mask.h"

#include <map>
#include <string>
#include <vector>

namespace xs::core {

struct WctConfig {
    double percentile = 0.80;  // W_cut percentile over non-zero |w|
    nn::TrainConfig finetune;  // defaults overridden to 2 epochs, small LR

    WctConfig() {
        finetune.epochs = 2;
        finetune.lr = 5e-4f;
        finetune.lr_decay = 0.7f;
    }
};

struct WctResult {
    std::map<std::string, double> w_cut;  // per mapped layer
    std::map<std::string, double> w_ref;  // frozen pre-clip scale per layer
    std::vector<nn::EpochStats> history;
};

// Clip the weights of every mappable layer to the given cut-offs.
void clip_weights(nn::Sequential& model,
                  const std::map<std::string, double>& w_cut);

// Percentile (0..1] of the non-zero |w| values of a flat weight array.
double nonzero_abs_percentile(const tensor::Tensor& weights, double percentile);

// Full WCT: choose cut-offs, clip, fine-tune with masks + clip enforced.
// `masks` may be empty (unpruned model). The model is modified in place.
WctResult apply_wct(nn::Sequential& model, const nn::Dataset& train,
                    const nn::Dataset* test, const prune::MaskSet& masks,
                    const WctConfig& config);

}  // namespace xs::core
