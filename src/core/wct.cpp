#include "core/wct.h"

#include "map/matrix_view.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace xs::core {

using tensor::Tensor;

double nonzero_abs_percentile(const Tensor& weights, double percentile) {
    return tensor::abs_percentile_nonzero(weights, percentile);
}

namespace {

Tensor* layer_weights(nn::Layer& layer) {
    if (auto* conv = dynamic_cast<nn::Conv2d*>(&layer)) return &conv->weight().value;
    if (auto* fc = dynamic_cast<nn::Linear*>(&layer)) return &fc->weight().value;
    return nullptr;
}

}  // namespace

void clip_weights(nn::Sequential& model,
                  const std::map<std::string, double>& w_cut) {
    for (nn::Layer* layer : map::mappable_layers(model)) {
        const auto it = w_cut.find(layer->name());
        if (it == w_cut.end() || it->second <= 0.0) continue;
        const float cut = static_cast<float>(it->second);
        Tensor* w = layer_weights(*layer);
        float* p = w->data();
        for (std::int64_t i = 0; i < w->numel(); ++i)
            p[i] = std::clamp(p[i], -cut, cut);
    }
}

WctResult apply_wct(nn::Sequential& model, const nn::Dataset& train,
                    const nn::Dataset* test, const prune::MaskSet& masks,
                    const WctConfig& config) {
    WctResult result;
    for (nn::Layer* layer : map::mappable_layers(model)) {
        const Tensor* w = layer_weights(*layer);
        // Freeze the mapping scale at the same robust percentile the
        // evaluator would use for the *unconstrained* model, so WCT weights
        // occupy only the low-conductance sub-range after clipping.
        const double w_ref = tensor::abs_percentile_nonzero(*w, 0.995);
        const double cut = nonzero_abs_percentile(*w, config.percentile);
        result.w_ref[layer->name()] = w_ref > 0.0 ? w_ref : 1.0;
        result.w_cut[layer->name()] = cut;
    }

    clip_weights(model, result.w_cut);

    const nn::StepHook hook = [&masks, &result](nn::Sequential& m) {
        if (!masks.empty()) masks.apply(m);
        clip_weights(m, result.w_cut);
    };
    result.history = nn::train(model, train, test, config.finetune, hook);
    return result;
}

}  // namespace xs::core
