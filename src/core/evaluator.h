// The hardware evaluation framework of the paper's Fig. 2: unroll every
// conv/linear layer to a MAC matrix, apply the pruning-scheme transformation
// T (and optionally the mitigation R), partition into crossbars, convert to
// conductances, inject circuit + device non-idealities, convert back, apply
// R⁻¹ and T⁻¹, and run inference with the resulting non-ideal weights W′.
#pragma once

#include "core/rearrange.h"
#include "nn/sequential.h"
#include "nn/trainer.h"
#include "prune/prune.h"
#include "xbar/backend.h"
#include "xbar/config.h"
#include "xbar/faults.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace xs::core {

struct EvalConfig {
    xbar::CrossbarConfig xbar;
    // Which T-transformation / tiling the scheme uses. kNone = dense mapping.
    prune::Method method = prune::Method::kNone;
    // Mitigation R (crossbar-column rearrangement).
    bool rearrange = false;
    RearrangeOrder order = RearrangeOrder::kAscending;
    // Per-layer weight→conductance reference scale. Layers absent from the
    // map use the `w_ref_percentile` of their non-zero |w| (outlier-robust);
    // WCT evaluation passes the frozen pre-clip scales here (DESIGN.md §2).
    std::map<std::string, double> w_ref;
    double w_ref_percentile = 0.995;
    // Device-variation RNG seed (deterministic per layer/tile).
    std::uint64_t seed = 7;
    // Monte-Carlo repeats over the device-variation draw; accuracy and NF
    // are averaged (chip-to-chip variability averaging).
    std::int64_t repeats = 1;
    bool include_parasitics = true;
    bool include_variation = true;
    // Warm-start each tile's circuit solve from the previous converged
    // voltages of the same worker (DESIGN.md §4). In the physical parasitic
    // regime the residual differences sit far below float resolution, but
    // strictly bit-identical results across machines with different worker
    // counts require disabling this (each solve then starts cold).
    bool warm_start_solves = true;
    // Which crossbar backend degrades each tile (xbar/backend.h, DESIGN.md
    // §8): kCircuit = exact parasitic solve (fidelity reference), kFast =
    // bucket-calibrated linear surrogate (~O(X²) per tile), kIdeal =
    // pass-through (equivalent to include_parasitics = false).
    xbar::BackendKind backend = xbar::BackendKind::kCircuit;
    // Mean-conductance calibration buckets for the fast backend's α cache.
    std::int64_t fast_buckets = 64;

    // ---- optional extensions (all off by default) ----
    // Finite write precision: number of programmable conductance levels
    // (0 = continuous devices).
    std::int64_t conductance_levels = 0;
    // Stuck-at-fault rates.
    xbar::FaultConfig faults;
    // Digital per-column gain correction calibrated at v_nom — the classic
    // IR-drop compensation baseline ([Liu et al., ICCAD'14], ref. [12] of
    // the paper). Exactly restores each column's calibration-point current;
    // residual error remains for other inputs.
    bool compensate_columns = false;
    // Evaluate all Monte-Carlo repeats in one lane-batched pass (DESIGN.md
    // §12): every repeat shares each tile's deterministic prep, circuit
    // solves batch across repeat lanes (xbar/solver.h), and each repeat's
    // W′ is compiled into a packed engine instance so inference runs once
    // with the repeat dimension as an extra batch axis (nn/infer.h
    // forward_batched). With cold-start solves (warm_start_solves = false)
    // results are bit-identical to the sequential loop; warm starts chain
    // within a repeat lane instead of across repeats, so warm multi-repeat
    // runs can differ by solver residuals far below float resolution.
    // false = the sequential per-repeat degrade→refresh→evaluate loop.
    bool repeat_batch = true;
};

struct LayerEvalStats {
    std::string layer;
    std::int64_t rows = 0, cols = 0;  // matrix dims actually mapped (post-T)
    std::int64_t tiles = 0;
    std::int64_t unconverged = 0;  // tiles whose circuit solve hit max_sweeps
    double nf_mean = 0.0;  // average NF over this layer's tiles (both arrays)
    double w_ref = 0.0;
};

struct DegradeStats {
    std::int64_t tiles = 0;
    double nf_sum = 0.0;
    std::int64_t nf_tiles = 0;
    std::int64_t unconverged = 0;  // tiles whose circuit solve hit max_sweeps

    double nf_mean() const {
        return nf_tiles ? nf_sum / static_cast<double>(nf_tiles) : 0.0;
    }
};

struct EvalResult {
    double accuracy = 0.0;          // % on the provided test set
    double nf_mean = 0.0;           // tile-average NF across all layers
    std::int64_t total_tiles = 0;   // logical crossbars mapped (one repeat)
    // Solves that hit max_sweeps, summed over ALL Monte-Carlo repeats —
    // compare against total_tiles × repeats, not total_tiles.
    std::int64_t unconverged_tiles = 0;
    std::vector<LayerEvalStats> layers;
};

// Degrade one MAC matrix through the full T→R→tile→G→G′→W′→R⁻¹→T⁻¹ pipeline.
// `w_ref` must be positive. Stats (tile/NF counts) accumulate into `stats`.
tensor::Tensor degrade_mac_matrix(const tensor::Tensor& matrix,
                                  const EvalConfig& config, double w_ref,
                                  util::Rng& rng, DegradeStats& stats);

// Produce the non-ideal weight matrices for every mappable layer of `model`
// without touching the model, keyed by layer name.
std::map<std::string, tensor::Tensor> degrade_model_matrices(
    nn::Sequential& model, const EvalConfig& config,
    std::vector<LayerEvalStats>* layer_stats);

// Full evaluation: degrade W′ and measure test accuracy; the model itself is
// never mutated — W′ reaches a per-call inference engine (nn/infer.h) as
// folded-weight overrides. The deterministic mapping stages (T-compaction,
// R-rearrangement, tiling, w_ref) are computed once and reused across all
// `config.repeats`; each repeat only redoes the stochastic stages
// (variation, faults, circuit solve), and repeat r+1's degradation overlaps
// repeat r's inference on a producer thread (DESIGN.md §6).
EvalResult evaluate_on_crossbars(nn::Sequential& model, const nn::Dataset& test,
                                 const EvalConfig& config);

// One EvalResult per entry of `seeds`: repeat r degrades with seed seeds[r]
// and all repeats evaluate in a single lane-batched pass (config.repeats is
// ignored — the seed list IS the repeat axis). evaluate_on_crossbars with
// repeat_batch = true is this plus the repeat averaging; sweeps call it
// directly with one group's per-cell seeds so the group's repeats share the
// deterministic mapping work and one inference engine while every repeat
// still produces its own CellResult.
std::vector<EvalResult> evaluate_repeats_on_crossbars(
    nn::Sequential& model, const nn::Dataset& test, const EvalConfig& config,
    const std::vector<std::uint64_t>& seeds);

// NF measurement only (paper Fig. 3(d)) — no inference pass.
EvalResult measure_nf(nn::Sequential& model, const EvalConfig& config);

}  // namespace xs::core
