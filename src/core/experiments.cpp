#include "core/experiments.h"

#include "util/log.h"

#include <filesystem>

namespace xs::core {

ExperimentContext::ExperimentContext(const util::Flags& flags) {
    width_ = flags.get_double("width", 0.1875);
    train_count_ = flags.get_int("train-count", 2048);
    test_count_ = flags.get_int("test-count", 512);
    epochs_ = flags.get_int("epochs", 5);
    batch_ = flags.get_int("batch", 32);
    sizes_ = flags.get_int_list("sizes", {16, 32, 64});
    sigma_ = flags.get_double("sigma", 0.10);
    sparsity10_ = flags.get_double("sparsity10", 0.8);
    sparsity100_ = flags.get_double("sparsity100", 0.6);
    seed_ = static_cast<std::uint64_t>(flags.get_int("seed", 11));
    eval_repeats_ = flags.get_int("eval-repeats", 2);
    cache_dir_ = flags.get_string("cache-dir", "results/models");
    out_dir_ = flags.get_string("out-dir", "results");
    verbose_ = flags.get_bool("verbose", false);
    if (verbose_) util::set_log_level(util::LogLevel::kDebug);
}

double ExperimentContext::sparsity_for(std::int64_t num_classes) const {
    return num_classes >= 100 ? sparsity100_ : sparsity10_;
}

const data::TrainTest& ExperimentContext::dataset(std::int64_t num_classes) {
    auto it = datasets_.find(num_classes);
    if (it != datasets_.end()) return it->second;
    const data::SyntheticSpec spec = num_classes >= 100
                                         ? data::cifar100_like(seed_ + 100)
                                         : data::cifar10_like(seed_);
    util::log_info("generating " + std::to_string(num_classes) + "-class dataset (" +
                   std::to_string(train_count_) + " train / " +
                   std::to_string(test_count_) + " test)");
    auto [pos, inserted] = datasets_.emplace(
        num_classes, data::generate_split(spec, train_count_, test_count_));
    (void)inserted;
    return pos->second;
}

ModelSpec ExperimentContext::spec(const std::string& variant,
                                  std::int64_t num_classes, prune::Method method,
                                  double sparsity, bool wct) const {
    ModelSpec s;
    s.vgg.variant = variant;
    s.vgg.num_classes = num_classes;
    s.vgg.width = width_;
    s.data = num_classes >= 100 ? data::cifar100_like(seed_ + 100)
                                : data::cifar10_like(seed_);
    s.train_count = train_count_;
    s.test_count = test_count_;
    s.prune.method = method;
    s.prune.sparsity = sparsity;
    s.train.epochs = epochs_;
    s.train.batch_size = batch_;
    s.train.seed = seed_ + 3;
    s.train.verbose = verbose_;
    s.init_seed = seed_ + 7;
    s.wct = wct;
    return s;
}

PreparedModel& ExperimentContext::prepared(const ModelSpec& spec) {
    const std::string key = spec.key();
    auto it = models_.find(key);
    if (it != models_.end()) return *it->second;
    const data::TrainTest& tt = dataset(spec.vgg.num_classes);
    auto model = std::make_unique<PreparedModel>(
        prepare_model(spec, tt.train, tt.test, cache_dir_, /*verbose=*/true));
    auto [pos, inserted] = models_.emplace(key, std::move(model));
    (void)inserted;
    return *pos->second;
}

xbar::CrossbarConfig ExperimentContext::xbar(std::int64_t size) const {
    xbar::CrossbarConfig config;
    config.size = size;
    config.device.sigma_variation = sigma_;
    return config;
}

EvalConfig ExperimentContext::eval_config(const PreparedModel& model,
                                          prune::Method method, std::int64_t size,
                                          bool rearrange) const {
    EvalConfig config;
    config.xbar = xbar(size);
    config.method = method;
    config.rearrange = rearrange;
    config.w_ref = model.w_ref;  // empty unless WCT
    config.seed = seed_ + 77;
    config.repeats = eval_repeats_;
    return config;
}

std::string ExperimentContext::csv_path(const std::string& name) const {
    std::filesystem::create_directories(out_dir_);
    return out_dir_ + "/" + name;
}

}  // namespace xs::core
