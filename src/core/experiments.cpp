#include "core/experiments.h"

#include "util/log.h"

#include <exception>
#include <filesystem>
#include <sstream>

namespace xs::core {

ExperimentContext::ExperimentContext(const util::Flags& flags) {
    width_ = flags.get_double("width", 0.1875);
    train_count_ = flags.get_int("train-count", 2048);
    test_count_ = flags.get_int("test-count", 512);
    epochs_ = flags.get_int("epochs", 5);
    batch_ = flags.get_int("batch", 32);
    sizes_ = flags.get_int_list("sizes", {16, 32, 64});
    sigma_ = flags.get_double("sigma", 0.10);
    sparsity10_ = flags.get_double("sparsity10", 0.8);
    sparsity100_ = flags.get_double("sparsity100", 0.6);
    wct_percentile_ = flags.get_double("wct-percentile", WctConfig().percentile);
    seed_ = static_cast<std::uint64_t>(flags.get_int("seed", 11));
    eval_repeats_ = flags.get_int("eval-repeats", 2);
    cache_dir_ = flags.get_string("cache-dir", "results/models");
    out_dir_ = flags.get_string("out-dir", "results");
    verbose_ = flags.get_bool("verbose", false);
    if (verbose_) util::set_log_level(util::LogLevel::kDebug);
}

double ExperimentContext::sparsity_for(std::int64_t num_classes) const {
    return num_classes >= 100 ? sparsity100_ : sparsity10_;
}

template <typename Key, typename T, typename Build>
T& ExperimentContext::prepared_slot(
    std::map<Key, std::shared_ptr<Slot<T>>>& cache, const Key& key,
    const Build& build) {
    std::shared_ptr<Slot<T>> slot;
    bool builder = false;
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto& entry = cache[key];
        if (!entry) {
            entry = std::make_shared<Slot<T>>();
            builder = true;
        }
        slot = entry;
    }
    if (builder) {
        std::unique_ptr<T> value;
        std::exception_ptr error;
        try {
            value = build();
        } catch (...) {
            error = std::current_exception();
        }
        if (error) {
            // Evict so a later request retries the build (a transient
            // failure must not poison the cache); current waiters keep the
            // slot alive via their shared_ptr and rethrow the stored error.
            std::lock_guard<std::mutex> lock(mu_);
            const auto it = cache.find(key);
            if (it != cache.end() && it->second == slot) cache.erase(it);
        }
        {
            std::lock_guard<std::mutex> lock(slot->m);
            slot->value = std::move(value);
            slot->error = error;
            slot->ready = true;
        }
        slot->cv.notify_all();
    } else {
        std::unique_lock<std::mutex> lock(slot->m);
        slot->cv.wait(lock, [&] { return slot->ready; });
    }
    if (slot->error) std::rethrow_exception(slot->error);
    return *slot->value;
}

const data::TrainTest& ExperimentContext::dataset(std::int64_t num_classes) {
    return prepared_slot(datasets_, num_classes, [&] {
        const data::SyntheticSpec spec = num_classes >= 100
                                             ? data::cifar100_like(seed_ + 100)
                                             : data::cifar10_like(seed_);
        util::log_info("generating " + std::to_string(num_classes) +
                       "-class dataset (" + std::to_string(train_count_) +
                       " train / " + std::to_string(test_count_) + " test)");
        return std::make_unique<data::TrainTest>(
            data::generate_split(spec, train_count_, test_count_));
    });
}

ModelSpec ExperimentContext::spec(const std::string& variant,
                                  std::int64_t num_classes, prune::Method method,
                                  double sparsity, bool wct) const {
    ModelSpec s;
    s.vgg.variant = variant;
    s.vgg.num_classes = num_classes;
    s.vgg.width = width_;
    s.data = num_classes >= 100 ? data::cifar100_like(seed_ + 100)
                                : data::cifar10_like(seed_);
    s.train_count = train_count_;
    s.test_count = test_count_;
    s.prune.method = method;
    s.prune.sparsity = sparsity;
    s.train.epochs = epochs_;
    s.train.batch_size = batch_;
    s.train.seed = seed_ + 3;
    s.train.verbose = verbose_;
    s.init_seed = seed_ + 7;
    s.wct = wct;
    s.wct_config.percentile = wct_percentile_;
    return s;
}

PreparedModel& ExperimentContext::prepared(const ModelSpec& spec) {
    return prepared_slot(models_, spec.key(), [&] {
        const data::TrainTest& tt = dataset(spec.vgg.num_classes);
        return std::make_unique<PreparedModel>(
            prepare_model(spec, tt.train, tt.test, cache_dir_, /*verbose=*/true));
    });
}

xbar::CrossbarConfig ExperimentContext::xbar(std::int64_t size) const {
    xbar::CrossbarConfig config;
    config.size = size;
    config.device.sigma_variation = sigma_;
    return config;
}

EvalConfig ExperimentContext::eval_config(const PreparedModel& model,
                                          prune::Method method, std::int64_t size,
                                          bool rearrange) const {
    EvalConfig config;
    config.xbar = xbar(size);
    config.method = method;
    config.rearrange = rearrange;
    config.w_ref = model.w_ref;  // empty unless WCT
    config.seed = seed_ + 77;
    config.repeats = eval_repeats_;
    return config;
}

std::string ExperimentContext::csv_path(const std::string& name) const {
    std::filesystem::create_directories(out_dir_);
    return out_dir_ + "/" + name;
}

std::string ExperimentContext::fingerprint() const {
    std::ostringstream os;
    os << "w" << width_ << "/n" << train_count_ << "/t" << test_count_ << "/e"
       << epochs_ << "/b" << batch_ << "/seed" << seed_ << "/wp"
       << wct_percentile_;
    return os.str();
}

}  // namespace xs::core
