// Model preparation with on-disk caching. The benchmark binaries share
// trained models: the first bench that needs "VGG11/C10-like, C/F s=0.8"
// trains and caches it; every other bench (and re-run) loads the checkpoint.
#pragma once

#include "core/wct.h"
#include "data/synthetic.h"
#include "nn/trainer.h"
#include "nn/vgg.h"
#include "prune/prune.h"

#include <map>
#include <memory>
#include <string>

namespace xs::core {

struct ModelSpec {
    nn::VggConfig vgg;
    data::SyntheticSpec data;
    std::int64_t train_count = 2560;
    std::int64_t test_count = 512;
    prune::PruneConfig prune;  // method kNone => unpruned
    nn::TrainConfig train;
    bool wct = false;
    WctConfig wct_config;
    std::uint64_t init_seed = 11;

    // Filesystem-safe cache key covering every field that changes weights.
    std::string key() const;
};

struct PreparedModel {
    nn::Sequential model;
    prune::MaskSet masks;
    double software_accuracy = 0.0;  // % on the spec's test split
    std::map<std::string, double> w_ref;  // non-empty for WCT models
    bool from_cache = false;
};

// Train (or load from `cache_dir`) the model described by `spec`, using the
// provided train/test datasets (they must match spec.data/train_count —
// callers generate them once and share across specs).
PreparedModel prepare_model(const ModelSpec& spec, const nn::Dataset& train_data,
                            const nn::Dataset& test_data,
                            const std::string& cache_dir, bool verbose);

}  // namespace xs::core
