#include "core/rearrange.h"

#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace xs::core {

using tensor::check;
using tensor::Tensor;

double column_score(const Tensor& matrix, std::int64_t col) {
    check(matrix.rank() == 2, "column_score: expects a rank-2 matrix");
    const std::int64_t rows = matrix.dim(0);
    double mu = 0.0;
    for (std::int64_t r = 0; r < rows; ++r) mu += std::fabs(matrix.at(r, col));
    mu /= static_cast<double>(rows);
    double var = 0.0;
    for (std::int64_t r = 0; r < rows; ++r) {
        const double d = std::fabs(matrix.at(r, col)) - mu;
        var += d * d;
    }
    const double sigma = std::sqrt(var / static_cast<double>(rows));
    return std::sqrt(mu * sigma);
}

Rearrangement compute_rearrangement(const Tensor& matrix, RearrangeOrder order) {
    check(matrix.rank() == 2, "compute_rearrangement: expects a rank-2 matrix");
    const std::int64_t cols = matrix.dim(1);
    std::vector<double> scores(static_cast<std::size_t>(cols));
    for (std::int64_t c = 0; c < cols; ++c)
        scores[static_cast<std::size_t>(c)] = column_score(matrix, c);

    std::vector<std::int64_t> ascending(static_cast<std::size_t>(cols));
    std::iota(ascending.begin(), ascending.end(), 0);
    std::stable_sort(ascending.begin(), ascending.end(),
                     [&scores](std::int64_t a, std::int64_t b) {
                         return scores[static_cast<std::size_t>(a)] <
                                scores[static_cast<std::size_t>(b)];
                     });

    Rearrangement r;
    if (order == RearrangeOrder::kAscending) {
        r.perm = std::move(ascending);
        return r;
    }
    // Centre-out: place the lowest scores in the middle positions, growing
    // outward alternately left/right, so heatmaps show light centres and
    // dark peripheries as in the paper's Fig. 3(f).
    r.perm.assign(static_cast<std::size_t>(cols), 0);
    std::int64_t left = (cols - 1) / 2, right = (cols - 1) / 2 + 1;
    bool to_left = true;
    for (const std::int64_t col : ascending) {
        if (to_left && left >= 0) {
            r.perm[static_cast<std::size_t>(left--)] = col;
        } else if (right < cols) {
            r.perm[static_cast<std::size_t>(right++)] = col;
        } else {
            r.perm[static_cast<std::size_t>(left--)] = col;
        }
        to_left = !to_left;
    }
    return r;
}

Tensor apply_columns(const Tensor& matrix, const Rearrangement& r) {
    check(matrix.rank() == 2 &&
              matrix.dim(1) == static_cast<std::int64_t>(r.perm.size()),
          "apply_columns: permutation size mismatch");
    const std::int64_t rows = matrix.dim(0), cols = matrix.dim(1);
    Tensor out({rows, cols});
    for (std::int64_t c = 0; c < cols; ++c) {
        const std::int64_t src = r.perm[static_cast<std::size_t>(c)];
        for (std::int64_t row = 0; row < rows; ++row)
            out.at(row, c) = matrix.at(row, src);
    }
    return out;
}

Tensor invert_columns(const Tensor& matrix, const Rearrangement& r) {
    check(matrix.rank() == 2 &&
              matrix.dim(1) == static_cast<std::int64_t>(r.perm.size()),
          "invert_columns: permutation size mismatch");
    const std::int64_t rows = matrix.dim(0), cols = matrix.dim(1);
    Tensor out({rows, cols});
    for (std::int64_t c = 0; c < cols; ++c) {
        const std::int64_t dst = r.perm[static_cast<std::size_t>(c)];
        for (std::int64_t row = 0; row < rows; ++row)
            out.at(row, dst) = matrix.at(row, c);
    }
    return out;
}

}  // namespace xs::core
