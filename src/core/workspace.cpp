#include "core/workspace.h"

#include "nn/model_io.h"
#include "util/csv.h"
#include "util/log.h"

#include <filesystem>
#include <fstream>
#include <iomanip>
#include <sstream>

namespace xs::core {
namespace {

std::string sanitize(double v) {
    std::ostringstream os;
    os << v;
    std::string s = os.str();
    for (auto& ch : s)
        if (ch == '.' || ch == '-') ch = 'p';
    return s;
}

// Sidecar metadata: accuracy and (for WCT) the frozen w_ref scales.
struct Meta {
    double accuracy = 0.0;
    std::map<std::string, double> w_ref;
};

void write_meta(const std::string& path, const Meta& meta) {
    std::ofstream os(path);
    os << std::setprecision(17) << "accuracy " << meta.accuracy << '\n';
    for (const auto& [layer, v] : meta.w_ref) os << "w_ref " << layer << ' ' << v << '\n';
}

bool read_meta(const std::string& path, Meta& meta) {
    std::ifstream is(path);
    if (!is) return false;
    std::string tag;
    while (is >> tag) {
        if (tag == "accuracy") {
            is >> meta.accuracy;
        } else if (tag == "w_ref") {
            std::string layer;
            double v;
            is >> layer >> v;
            meta.w_ref[layer] = v;
        } else {
            return false;
        }
    }
    return true;
}

}  // namespace

std::string ModelSpec::key() const {
    std::ostringstream os;
    os << vgg.variant << "_c" << vgg.num_classes << "_w" << sanitize(vgg.width)
       << "_n" << train_count << "_e" << train.epochs << "_b" << train.batch_size
       << "_lr" << sanitize(train.lr) << "_" << train.optimizer << "_s"
       << train.seed << "_i" << init_seed << "_d" << data.seed << "_j"
       << sanitize(data.class_jitter) << "_pn" << sanitize(data.pixel_noise)
       << "_" << prune::method_name(prune.method);
    if (prune.method != prune::Method::kNone)
        os << sanitize(prune.sparsity) << "_seg" << prune.segment_size;
    if (wct)
        os << "_wct" << sanitize(wct_config.percentile) << "_we"
           << wct_config.finetune.epochs;
    return os.str();
}

PreparedModel prepare_model(const ModelSpec& spec, const nn::Dataset& train_data,
                            const nn::Dataset& test_data,
                            const std::string& cache_dir, bool verbose) {
    namespace fs = std::filesystem;
    PreparedModel prepared;

    util::Rng init_rng(spec.init_seed);
    prepared.model = nn::build_vgg(spec.vgg, init_rng);

    const std::string base = cache_dir.empty()
                                 ? std::string()
                                 : cache_dir + "/" + spec.key();
    if (!cache_dir.empty()) fs::create_directories(cache_dir);

    if (!base.empty() && fs::exists(base + ".bin")) {
        Meta meta;
        if (nn::load_model(prepared.model, base + ".bin") &&
            read_meta(base + ".meta", meta)) {
            prepared.software_accuracy = meta.accuracy;
            prepared.w_ref = meta.w_ref;
            prepared.masks = prune::MaskSet::from_zeros(prepared.model);
            prepared.from_cache = true;
            if (verbose)
                util::log_info("loaded cached model " + spec.key() + " (acc " +
                               util::fmt(meta.accuracy) + "%)");
            return prepared;
        }
    }

    // Prune at initialization, then train with the masks enforced.
    if (spec.prune.method != prune::Method::kNone)
        prepared.masks = prune::prune_at_init(prepared.model, spec.prune);

    if (verbose)
        util::log_info("training " + spec.key() + " (" +
                       std::to_string(prepared.model.param_count()) + " params)");
    const nn::StepHook hook = prepared.masks.empty()
                                  ? nn::StepHook{}
                                  : prepared.masks.hook();
    nn::train(prepared.model, train_data, &test_data, spec.train, hook);

    if (spec.wct) {
        WctConfig wct_config = spec.wct_config;
        wct_config.finetune.seed = spec.train.seed + 1;
        wct_config.finetune.batch_size = spec.train.batch_size;
        wct_config.finetune.optimizer = spec.train.optimizer;
        wct_config.finetune.verbose = spec.train.verbose;
        const WctResult wct = apply_wct(prepared.model, train_data, &test_data,
                                        prepared.masks, wct_config);
        prepared.w_ref = wct.w_ref;
    }

    prepared.software_accuracy = nn::evaluate(prepared.model, test_data);
    if (verbose)
        util::log_info("trained " + spec.key() + ": software accuracy " +
                       util::fmt(prepared.software_accuracy) + "%");

    if (!base.empty()) {
        nn::save_model(prepared.model, base + ".bin");
        Meta meta;
        meta.accuracy = prepared.software_accuracy;
        meta.w_ref = prepared.w_ref;
        write_meta(base + ".meta", meta);
    }
    return prepared;
}

}  // namespace xs::core
