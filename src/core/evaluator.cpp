#include "core/evaluator.h"

#include "map/compaction.h"
#include "map/matrix_view.h"
#include "map/tiling.h"
#include "nn/infer.h"
#include "tensor/ops.h"
#include "util/metrics.h"
#include "util/parallel.h"
#include "util/trace.h"
#include "xbar/mapper.h"
#include "xbar/pipeline.h"

#include <algorithm>
#include <cstring>
#include <future>

namespace xs::core {

using tensor::Tensor;

namespace {

map::Tiling make_tiling(const Tensor& work, prune::Method method,
                        std::int64_t xbar_size) {
    switch (method) {
        case prune::Method::kXbarColumn:
            return map::tile_xcs(work, xbar_size);
        case prune::Method::kXbarRow:
            return map::tile_xrs(work, xbar_size);
        case prune::Method::kNone:
        case prune::Method::kChannelFilter:
        default:
            return map::tile_dense(work.dim(0), work.dim(1), xbar_size);
    }
}

// The deterministic mapping stages for one MAC matrix: T-compaction, the R
// column rearrangement, and the tiling, all computed once so Monte-Carlo
// repeats only redo the stochastic stages (variation / faults / solve).
// `work` is only materialized when T or R actually transforms the matrix;
// otherwise the caller's original matrix is the mapping target (avoiding a
// second resident copy of every layer's weights).
struct MatrixPlan {
    bool use_compaction = false;
    bool transformed = false;
    map::Compaction compaction;
    Rearrangement rearrangement;
    Tensor work;  // post-T/R mapping target (empty when !transformed)
    map::Tiling tiling;

    const Tensor& mapping_target(const Tensor& matrix) const {
        return transformed ? work : matrix;
    }
};

MatrixPlan build_matrix_plan(const Tensor& matrix, const EvalConfig& config) {
    tensor::check(matrix.rank() == 2, "degrade_mac_matrix: expects rank-2 matrix");
    MatrixPlan plan;
    // T: C/F-pruned matrices are compacted (zero rows/columns eliminated).
    plan.use_compaction = config.method == prune::Method::kChannelFilter;
    if (plan.use_compaction) {
        plan.compaction = map::compact_dense(matrix);
        // uncompact() only needs the index lists, so the compacted weights
        // move into `work` rather than living twice in the cached plan.
        plan.work = std::move(plan.compaction.matrix);
        plan.transformed = true;
    }
    // Mitigation R on the compacted matrix.
    if (config.rearrange) {
        const Tensor& base = plan.mapping_target(matrix);
        plan.rearrangement = compute_rearrangement(base, config.order);
        plan.work = apply_columns(base, plan.rearrangement);
        plan.transformed = true;
    }
    plan.tiling =
        make_tiling(plan.mapping_target(matrix), config.method, config.xbar.size);
    return plan;
}

// Per-worker scratch for the tile loop: tile/tensor buffers plus the stage
// pipeline's context (solver workspace with warm-start state, G′ buffers,
// compensation column sums). One instance per pool worker slot so the
// steady state performs no per-tile heap allocation.
struct TileWorker {
    Tensor sub, tile_w;
    Tensor g_pos, g_neg;
    xbar::TileStageContext ctx;
};

// Per-worker scratch shared across layers and Monte-Carlo repeats: create
// one per top-level degrade call chain so repeats reuse the grown buffers.
using TileWorkers = std::vector<TileWorker>;

// The non-ideality stage list for `config` (xbar/pipeline.h). Built once
// per top-level degrade call chain and shared across layers and repeats —
// the fast backend's calibration cache amortizes over the whole run.
xbar::TilePipeline build_pipeline(const EvalConfig& config) {
    xbar::PipelineSpec spec;
    spec.xbar = config.xbar;
    spec.conductance_levels = config.conductance_levels;
    spec.include_variation = config.include_variation;
    spec.faults = config.faults;
    spec.include_parasitics = config.include_parasitics;
    spec.compensate_columns = config.compensate_columns;
    spec.warm_start_solves = config.warm_start_solves;
    spec.backend = config.backend;
    spec.fast_buckets = config.fast_buckets;
    return xbar::build_tile_pipeline(spec);
}

Tensor degrade_with_plan(const MatrixPlan& plan, const Tensor& matrix,
                         const EvalConfig& config,
                         const xbar::TilePipeline& pipeline, double w_ref,
                         util::Rng& rng, DegradeStats& stats,
                         TileWorkers& workers) {
    const std::int64_t n = config.xbar.size;
    const auto& tiles = plan.tiling.tiles;
    const Tensor& source = plan.mapping_target(matrix);
    const xbar::ConductanceMapper mapper(config.xbar.device, w_ref);

    Tensor degraded = source;  // scatter target; tiles cover disjoint entries
    // Pre-split one RNG per tile so the stochastic draws stay deterministic
    // regardless of the chunk partition. Warm-started solves do depend on
    // the partition: the iteration stops on the last sweep's update, so
    // different warm-start chains can leave residuals of order
    // tolerance·ρ/(1−ρ) (ρ = contraction factor, ≤ ~1e-3 in the physical
    // wire regime — far below float resolution, but not a bit-for-bit
    // guarantee). config.warm_start_solves = false forces cold starts for
    // strict cross-machine reproducibility; unconverged solves are retried
    // cold inside degrade_tile either way.
    std::vector<util::Rng> tile_rngs;
    tile_rngs.reserve(tiles.size());
    for (std::size_t t = 0; t < tiles.size(); ++t)
        tile_rngs.push_back(rng.split(static_cast<std::uint64_t>(t) + 1));

    std::vector<double> tile_nf(tiles.size(), 0.0);
    std::vector<std::uint8_t> tile_ok(tiles.size(), 1);
    if (workers.size() < util::worker_count()) workers.resize(util::worker_count());

    util::parallel_for_workers(
        0, tiles.size(), [&](std::size_t w, std::size_t lo, std::size_t hi) {
            TileWorker& tw = workers[w];
            for (std::size_t t = lo; t < hi; ++t) {
                const map::Tile& tile = tiles[t];
                map::extract_tile_into(source, tile, n, tw.sub);
                mapper.to_differential(tw.sub, tw.g_pos, tw.g_neg);
                tw.ctx.begin_tile(tw.g_pos, tw.g_neg, tile_rngs[t]);
                pipeline.run(tw.ctx);
                tile_nf[t] = tw.ctx.nf;
                tile_ok[t] = tw.ctx.converged;
                mapper.from_differential_into(*tw.ctx.pos, *tw.ctx.neg,
                                              tw.tile_w);
                // Tiles partition the matrix, so concurrent scatters are
                // write-disjoint.
                map::scatter_tile(degraded, tile, tw.tile_w);
            }
        });

    for (std::size_t t = 0; t < tiles.size(); ++t) {
        stats.nf_sum += tile_nf[t];
        ++stats.nf_tiles;
        if (!tile_ok[t]) ++stats.unconverged;
    }
    stats.tiles += plan.tiling.count();

    // R⁻¹ then T⁻¹.
    if (config.rearrange) degraded = invert_columns(degraded, plan.rearrangement);
    if (plan.use_compaction) return map::uncompact(plan.compaction, degraded);
    return degraded;
}

// One mappable layer's cached mapping state, reused across repeats.
struct LayerPlan {
    nn::Layer* layer = nullptr;
    Tensor matrix;  // original weights (restoration copy)
    double w_ref = 0.0;
    MatrixPlan plan;
};

std::vector<LayerPlan> build_layer_plans(nn::Sequential& model,
                                         const EvalConfig& config) {
    std::vector<LayerPlan> plans;
    for (nn::Layer* layer : map::mappable_layers(model)) {
        LayerPlan lp;
        lp.layer = layer;
        lp.matrix = map::extract_matrix(*layer);

        const auto it = config.w_ref.find(layer->name());
        if (it != config.w_ref.end()) {
            lp.w_ref = it->second;
        } else {
            lp.w_ref =
                tensor::abs_percentile_nonzero(lp.matrix, config.w_ref_percentile);
        }
        if (lp.w_ref <= 0.0) lp.w_ref = 1.0;  // degenerate all-zero layer

        lp.plan = build_matrix_plan(lp.matrix, config);
        plans.push_back(std::move(lp));
    }
    return plans;
}

LayerEvalStats layer_stats_of(const LayerPlan& lp, const DegradeStats& stats) {
    LayerEvalStats ls;
    ls.layer = lp.layer->name();
    if (lp.plan.use_compaction) {
        ls.rows = static_cast<std::int64_t>(lp.plan.compaction.rows.size());
        ls.cols = static_cast<std::int64_t>(lp.plan.compaction.cols.size());
    } else {
        ls.rows = lp.matrix.dim(0);
        ls.cols = lp.matrix.dim(1);
    }
    ls.tiles = stats.tiles;
    ls.unconverged = stats.unconverged;
    ls.nf_mean = stats.nf_mean();
    ls.w_ref = lp.w_ref;
    return ls;
}

// Solver-failure accounting invariant, checked loudly on every aggregate
// result: unconverged_tiles sums solver failures over ALL Monte-Carlo
// repeats while total_tiles counts one repeat's mapping, so the bound is
// total_tiles × repeats (evaluator.h). A violation means a repeat path
// double-counted or dropped tiles — fail immediately instead of letting a
// sweep CSV silently report corrupt failure rates.
void check_failure_accounting(const EvalResult& r, std::int64_t repeats) {
    tensor::check(
        r.unconverged_tiles >= 0 &&
            r.unconverged_tiles <= r.total_tiles * repeats,
        "evaluate_on_crossbars: solver-failure accounting broken: "
        "unconverged_tiles = " + std::to_string(r.unconverged_tiles) +
            " outside [0, total_tiles × repeats = " +
            std::to_string(r.total_tiles) + " × " + std::to_string(repeats) +
            "]");
}

void finalize_nf(EvalResult& result) {
    double nf_sum = 0.0;
    std::int64_t nf_tiles = 0;
    for (const auto& ls : result.layers) {
        nf_sum += ls.nf_mean * static_cast<double>(ls.tiles);
        nf_tiles += ls.tiles;
        result.total_tiles += ls.tiles;
        result.unconverged_tiles += ls.unconverged;
    }
    result.nf_mean = nf_tiles ? nf_sum / static_cast<double>(nf_tiles) : 0.0;
}

// ---- lane-batched repeat evaluation (DESIGN.md §12) ----
// One lane per Monte-Carlo repeat of a group: each tile's deterministic prep
// (extract, differential split) runs once and is shared, the stochastic
// stages run per lane on private copies with private RNG streams (draws
// identical to the sequential path), and the parasitic stage batches the
// circuit solves across lanes (xbar/solver.h). Lane scratch persists across
// tiles and layers so a lane's warm chain mirrors a sequential repeat's
// chain; between repeat groups the warm state is dropped, so a repeat's
// chain never depends on which group it rides in.
struct BatchLane {
    Tensor g_pos, g_neg, tile_w;
    xbar::TileStageContext ctx;
};

struct BatchWorker {
    Tensor sub;                 // shared extracted tile
    Tensor base_pos, base_neg;  // shared pre-stochastic differential pair
    std::vector<BatchLane> lanes;                   // one per repeat
    std::vector<xbar::TileStageContext*> ctx_ptrs;  // lane ctx view
    // One batched solver workspace per group of kMaxSolveLanes lanes. Lane
    // warm state lives here (circuit backend) or in each lane's ctx.ws
    // (other backends' per-lane fallback).
    std::vector<xbar::BatchedDegradeWorkspace> groups;

    void ensure(std::size_t repeats) {
        if (lanes.size() == repeats) return;
        lanes.resize(repeats);
        groups.resize((repeats + xbar::kMaxSolveLanes - 1) /
                      static_cast<std::size_t>(xbar::kMaxSolveLanes));
        ctx_ptrs.resize(repeats);
        for (std::size_t r = 0; r < repeats; ++r) ctx_ptrs[r] = &lanes[r].ctx;
    }
};

}  // namespace

Tensor degrade_mac_matrix(const Tensor& matrix, const EvalConfig& config,
                          double w_ref, util::Rng& rng, DegradeStats& stats) {
    tensor::check(w_ref > 0.0, "degrade_mac_matrix: w_ref must be positive");
    const MatrixPlan plan = build_matrix_plan(matrix, config);
    const xbar::TilePipeline pipeline = build_pipeline(config);
    TileWorkers workers;
    return degrade_with_plan(plan, matrix, config, pipeline, w_ref, rng, stats,
                             workers);
}

std::map<std::string, Tensor> degrade_model_matrices(
    nn::Sequential& model, const EvalConfig& config,
    std::vector<LayerEvalStats>* layer_stats) {
    std::map<std::string, Tensor> result;
    const std::vector<LayerPlan> plans = build_layer_plans(model, config);
    const xbar::TilePipeline pipeline = build_pipeline(config);
    util::Rng rng(config.seed);
    std::uint64_t layer_tag = 1;
    TileWorkers workers;

    for (const LayerPlan& lp : plans) {
        util::Rng layer_rng = rng.split(layer_tag++);
        DegradeStats stats;
        Tensor degraded =
            degrade_with_plan(lp.plan, lp.matrix, config, pipeline, lp.w_ref,
                              layer_rng, stats, workers);
        if (layer_stats) layer_stats->push_back(layer_stats_of(lp, stats));
        result.emplace(lp.layer->name(), std::move(degraded));
    }
    return result;
}

std::vector<EvalResult> evaluate_repeats_on_crossbars(
    nn::Sequential& model, const nn::Dataset& test, const EvalConfig& config,
    const std::vector<std::uint64_t>& seeds) {
    const std::size_t R = seeds.size();
    tensor::check(R > 0, "evaluate_repeats_on_crossbars: empty seed list");
    const std::vector<LayerPlan> plans = build_layer_plans(model, config);
    nn::InferenceEngine engine(model);
    tensor::check(engine.mappable_count() == plans.size(),
                  "evaluate_repeats_on_crossbars: engine/plan mappable-layer "
                  "mismatch");
    const xbar::TilePipeline pipeline = build_pipeline(config);
    const std::int64_t n = config.xbar.size;

    // Repeats ride in groups of half the solver's lane budget, so the
    // parasitic stage fuses each group's pos+neg solves into one full-width
    // batched solve (2·kGroupLanes = kMaxSolveLanes). Groups also form the
    // producer/consumer pipeline below: while group g's batched forward runs
    // on this thread, group g+1 degrades and compiles on a producer thread.
    const std::size_t kGroupLanes =
        static_cast<std::size_t>(xbar::kMaxSolveLanes) / 2;
    const std::size_t n_groups = (R + kGroupLanes - 1) / kGroupLanes;

    std::vector<nn::CompiledInstance> instances(R);
    std::vector<std::vector<DegradeStats>> stats(
        R, std::vector<DegradeStats>(plans.size()));
    std::vector<BatchWorker> workers(util::worker_count());
    for (BatchWorker& bw : workers) bw.ensure(kGroupLanes);
    std::vector<Tensor> lane_work(kGroupLanes);  // per-lane scatter targets
    std::vector<util::Rng> tile_rngs;  // group-lane-major: [rl·T + t]
    std::vector<double> tile_nf;
    std::vector<std::uint8_t> tile_ok;

    // Degrade + fold + pack repeats [g·kGroupLanes, …) into their compiled
    // instances. Groups run strictly one at a time (the pipeline below
    // serializes them), so all the scratch above is shared; only the
    // instances and stats slots written are group-disjoint. Recorded under
    // the sweep phase namespace: per-cell phase metrics then split into
    // prepare / compile / eval without the sweep layer having to reach
    // inside the evaluator (this is a no-op label outside sweeps).
    const auto compile_group = [&](std::size_t g) {
        XS_TIMER_NS("sweep.phase.compile.ns");
        XS_TRACE_SPAN("compile_instances");
        const std::size_t lane0 = g * kGroupLanes;
        const std::size_t nl = std::min(kGroupLanes, R - lane0);
        // Every repeat starts its warm chain cold regardless of which group
        // it rides in (matching a lone run of that repeat): drop the
        // previous group's converged voltages from the batched workspace and
        // the per-lane scalar fallbacks.
        for (BatchWorker& bw : workers) {
            bw.groups[0].solve.invalidate();
            bw.groups[0].retry.invalidate();
            for (std::size_t rl = 0; rl < nl; ++rl)
                bw.lanes[rl].ctx.ws.solve.invalidate();
        }
        for (std::size_t li = 0; li < plans.size(); ++li) {
            const LayerPlan& lp = plans[li];
            const MatrixPlan& plan = lp.plan;
            const auto& tiles = plan.tiling.tiles;
            const Tensor& source = plan.mapping_target(lp.matrix);
            const xbar::ConductanceMapper mapper(config.xbar.device, lp.w_ref);
            const std::size_t T = tiles.size();

            // Per-(repeat, tile) RNG streams, exactly the sequential path's
            // Rng(seed).split(layer_tag).split(tile_tag) chain (split is
            // non-mutating, so the chain is position-independent).
            tile_rngs.clear();
            tile_rngs.reserve(nl * T);
            for (std::size_t rl = 0; rl < nl; ++rl) {
                util::Rng layer_rng = util::Rng(seeds[lane0 + rl])
                                          .split(static_cast<std::uint64_t>(li) + 1);
                for (std::size_t t = 0; t < T; ++t)
                    tile_rngs.push_back(
                        layer_rng.split(static_cast<std::uint64_t>(t) + 1));
            }
            tile_nf.assign(nl * T, 0.0);
            tile_ok.assign(nl * T, 1);
            for (std::size_t rl = 0; rl < nl; ++rl) {
                lane_work[rl].reset(source.shape());
                std::memcpy(lane_work[rl].data(), source.data(),
                            static_cast<std::size_t>(source.numel()) *
                                sizeof(float));
            }

            util::parallel_for_workers(
                0, T, [&](std::size_t w, std::size_t lo, std::size_t hi) {
                    BatchWorker& bw = workers[w];
                    for (std::size_t t = lo; t < hi; ++t) {
                        const map::Tile& tile = tiles[t];
                        map::extract_tile_into(source, tile, n, bw.sub);
                        mapper.to_differential(bw.sub, bw.base_pos,
                                               bw.base_neg);
                        const std::size_t bytes =
                            static_cast<std::size_t>(n * n) * sizeof(float);
                        for (std::size_t rl = 0; rl < nl; ++rl) {
                            BatchLane& lane = bw.lanes[rl];
                            lane.g_pos.reset(n, n);
                            lane.g_neg.reset(n, n);
                            std::memcpy(lane.g_pos.data(),
                                        bw.base_pos.data(), bytes);
                            std::memcpy(lane.g_neg.data(),
                                        bw.base_neg.data(), bytes);
                            lane.ctx.begin_tile(lane.g_pos, lane.g_neg,
                                                tile_rngs[rl * T + t]);
                        }
                        pipeline.run_batch(bw.ctx_ptrs.data(),
                                           static_cast<int>(nl),
                                           bw.groups[0]);
                        for (std::size_t rl = 0; rl < nl; ++rl) {
                            BatchLane& lane = bw.lanes[rl];
                            tile_nf[rl * T + t] = lane.ctx.nf;
                            tile_ok[rl * T + t] = lane.ctx.converged;
                            mapper.from_differential_into(
                                *lane.ctx.pos, *lane.ctx.neg, lane.tile_w);
                            // Tiles partition the matrix: write-disjoint.
                            map::scatter_tile(lane_work[rl], tile,
                                              lane.tile_w);
                        }
                    }
                });

            for (std::size_t rl = 0; rl < nl; ++rl) {
                DegradeStats& ds = stats[lane0 + rl][li];
                for (std::size_t t = 0; t < T; ++t) {
                    ds.nf_sum += tile_nf[rl * T + t];
                    ++ds.nf_tiles;
                    if (!tile_ok[rl * T + t]) ++ds.unconverged;
                }
                ds.tiles += plan.tiling.count();
            }

            // R⁻¹ then T⁻¹, then fold straight into the packed instance.
            for (std::size_t rl = 0; rl < nl; ++rl) {
                Tensor mac = std::move(lane_work[rl]);
                if (config.rearrange)
                    mac = invert_columns(mac, plan.rearrangement);
                if (plan.use_compaction)
                    mac = map::uncompact(plan.compaction, mac);
                engine.compile_instance_slot(li, &mac, instances[lane0 + rl]);
            }
        }
    };

    std::vector<const nn::CompiledInstance*> inst_ptrs(R);
    for (std::size_t r = 0; r < R; ++r) inst_ptrs[r] = &instances[r];
    std::vector<std::int64_t> correct(R, 0);
    const std::int64_t total = test.size();

    // Run group g's repeats through one batched forward pass per dataset
    // slice. Reads only inst_ptrs[lane0 …] and the engine's thread-local
    // scratch, so it is safe against the producer compiling group g+1.
    const auto infer_group = [&](std::size_t g) {
        XS_TIMER_NS("core.infer_repeat.ns");
        XS_TRACE_SPAN("infer_repeat");
        const std::size_t lane0 = g * kGroupLanes;
        const std::size_t nl = std::min(kGroupLanes, R - lane0);
        // Identity-order evaluation over contiguous dataset slices, exactly
        // nn::evaluate's batching, with the group riding one forward pass.
        const std::int64_t batch_size = 64;
        tensor::Shape batch_shape = test.images.shape();
        const std::int64_t item = total > 0 ? test.images.numel() / total : 0;
        for (std::int64_t start = 0; start < total; start += batch_size) {
            const std::int64_t count = std::min(batch_size, total - start);
            batch_shape[0] = count;
            const Tensor& logits = engine.forward_batched(
                test.images.data() + start * item, batch_shape,
                inst_ptrs.data() + lane0, nl);
            for (std::size_t rl = 0; rl < nl; ++rl)
                for (std::int64_t i = 0; i < count; ++i)
                    if (tensor::argmax_row(
                            logits,
                            static_cast<std::int64_t>(rl) * count + i) ==
                        test.labels[static_cast<std::size_t>(start + i)])
                        ++correct[lane0 + rl];
        }
    };

    // Producer/consumer pipeline over groups (DESIGN.md §12): while this
    // thread consumes group g (the batched forward), a producer thread
    // degrades and compiles group g+1. Inside an enclosing pool parallel
    // region (e.g. one cell of a sharded sweep) the producer's top-level
    // dispatch would deadlock against the region, so groups then compile
    // synchronously on this thread; results are identical either way (same
    // buffers, same per-repeat streams).
    const bool overlap = !util::in_parallel_region();
    std::future<void> producer;
    if (overlap)
        producer =
            std::async(std::launch::async, compile_group, std::size_t{0});
    for (std::size_t g = 0; g < n_groups; ++g) {
        if (overlap)
            producer.get();  // group g's instances are ready (rethrows)
        else
            compile_group(g);
        // Kick off group g+1 before consuming group g; the group scratch was
        // last touched by group g's compile, which just finished.
        if (overlap && g + 1 < n_groups)
            producer = std::async(std::launch::async, compile_group, g + 1);
        infer_group(g);
    }

    std::vector<EvalResult> out(R);
    for (std::size_t r = 0; r < R; ++r) {
        for (std::size_t li = 0; li < plans.size(); ++li)
            out[r].layers.push_back(layer_stats_of(plans[li], stats[r][li]));
        out[r].accuracy = total ? 100.0 * static_cast<double>(correct[r]) /
                                      static_cast<double>(total)
                                : 0.0;
        finalize_nf(out[r]);
    }
    return out;
}

EvalResult evaluate_on_crossbars(nn::Sequential& model, const nn::Dataset& test,
                                 const EvalConfig& config) {
    const std::int64_t repeats = std::max<std::int64_t>(config.repeats, 1);
    if (config.repeat_batch) {
        std::vector<std::uint64_t> seeds(static_cast<std::size_t>(repeats));
        for (std::int64_t r = 0; r < repeats; ++r)
            seeds[static_cast<std::size_t>(r)] =
                config.seed + static_cast<std::uint64_t>(r) * 7919;
        std::vector<EvalResult> per =
            evaluate_repeats_on_crossbars(model, test, config, seeds);
        // Identical accumulation order to the sequential loop below, so the
        // averages are bit-identical too.
        EvalResult aggregate = std::move(per[0]);
        for (std::int64_t r = 1; r < repeats; ++r) {
            const EvalResult& one = per[static_cast<std::size_t>(r)];
            aggregate.accuracy += one.accuracy;
            aggregate.nf_mean += one.nf_mean;
            aggregate.unconverged_tiles += one.unconverged_tiles;
        }
        aggregate.accuracy /= static_cast<double>(repeats);
        aggregate.nf_mean /= static_cast<double>(repeats);
        check_failure_accounting(aggregate, repeats);
        return aggregate;
    }
    // The mapping plans (and w_ref scales) are deterministic: build them once
    // and reuse across every Monte-Carlo repeat.
    const std::vector<LayerPlan> plans = build_layer_plans(model, config);
    nn::InferenceEngine engine(model);
    tensor::check(engine.mappable_count() == plans.size(),
                  "evaluate_on_crossbars: engine/plan mappable-layer mismatch");
    TileWorkers workers;  // producer-owned scratch, reused across repeats
    // One stage pipeline for every layer and repeat: the stages are
    // immutable and the fast backend's calibration cache is thread-safe, so
    // the producer thread shares it too.
    const xbar::TilePipeline pipeline = build_pipeline(config);

    // Overlapped repeat pipeline (DESIGN.md §6): while repeat r's inference
    // runs on this thread, a producer thread degrades repeat r+1's matrices
    // into the other half of a double buffer. The pool's dispatch mutex
    // serializes the two sides' parallel phases, so the overlap hides each
    // side's serial sections (plan transforms, folding, linear/argmax)
    // rather than doubling pool throughput. Each repeat's degraded W′
    // reaches the engine as a refresh() override — folded after the swap, so
    // BN folding composes with the degraded weights — and the shared model
    // is never mutated (the old path paid two inject_matrix transpose copies
    // per layer per repeat, plus a restore pass).
    struct RepeatBuffer {
        std::vector<Tensor> weights;      // per mappable layer, plan order
        std::vector<DegradeStats> stats;  // parallel to `weights`
    };
    RepeatBuffer buffers[2];
    const auto degrade_repeat = [&](std::int64_t r, RepeatBuffer& out) {
        XS_TIMER_NS("core.degrade_repeat.ns");
        XS_TRACE_SPAN("degrade_repeat");
        const std::uint64_t run_seed =
            config.seed + static_cast<std::uint64_t>(r) * 7919;
        util::Rng rng(run_seed);
        std::uint64_t layer_tag = 1;
        out.weights.resize(plans.size());
        out.stats.assign(plans.size(), DegradeStats{});
        for (std::size_t i = 0; i < plans.size(); ++i) {
            util::Rng layer_rng = rng.split(layer_tag++);
            out.weights[i] =
                degrade_with_plan(plans[i].plan, plans[i].matrix, config,
                                  pipeline, plans[i].w_ref, layer_rng,
                                  out.stats[i], workers);
        }
    };

    // When this call already runs inside a pool parallel region (e.g. one
    // cell of a sharded sweep), the producer thread's top-level dispatch
    // would block on the pool's task slot until the enclosing region ends —
    // and the region is waiting on the producer. Repeats then degrade
    // synchronously on the calling thread instead; results are identical
    // either way (same buffers, same per-repeat seeds).
    const bool overlap = !util::in_parallel_region();
    std::future<void> producer;
    if (overlap)
        producer = std::async(std::launch::async, degrade_repeat,
                              std::int64_t{0}, std::ref(buffers[0]));
    std::vector<const Tensor*> overrides(plans.size(), nullptr);
    EvalResult aggregate;
    for (std::int64_t r = 0; r < repeats; ++r) {
        if (overlap)
            producer.get();  // repeat r's weights are ready (rethrows on error)
        else
            degrade_repeat(r, buffers[r & 1]);
        RepeatBuffer& cur = buffers[r & 1];
        // Kick off repeat r+1 before consuming repeat r; the producer writes
        // the other buffer, whose previous contents were consumed at r-1.
        if (overlap && r + 1 < repeats)
            producer = std::async(std::launch::async, degrade_repeat, r + 1,
                                  std::ref(buffers[(r + 1) & 1]));

        EvalResult one;
        for (std::size_t i = 0; i < plans.size(); ++i) {
            one.layers.push_back(layer_stats_of(plans[i], cur.stats[i]));
            overrides[i] = &cur.weights[i];
        }
        {
            XS_TIMER_NS("core.infer_repeat.ns");
            XS_TRACE_SPAN("infer_repeat");
            engine.refresh(overrides);
            one.accuracy = nn::evaluate(engine, test);
        }

        finalize_nf(one);
        if (r == 0) {
            aggregate = std::move(one);
        } else {
            aggregate.accuracy += one.accuracy;
            aggregate.nf_mean += one.nf_mean;
            aggregate.unconverged_tiles += one.unconverged_tiles;
        }
    }
    aggregate.accuracy /= static_cast<double>(repeats);
    aggregate.nf_mean /= static_cast<double>(repeats);
    check_failure_accounting(aggregate, repeats);
    return aggregate;
}

EvalResult measure_nf(nn::Sequential& model, const EvalConfig& config) {
    XS_TIMER_NS("core.measure_nf.ns");
    XS_TRACE_SPAN("measure_nf");
    EvalResult result;
    degrade_model_matrices(model, config, &result.layers);
    finalize_nf(result);
    return result;
}

}  // namespace xs::core
