#include "core/evaluator.h"

#include "map/compaction.h"
#include "map/matrix_view.h"
#include "map/tiling.h"
#include "tensor/ops.h"
#include "util/parallel.h"
#include "xbar/degrade.h"
#include "xbar/mapper.h"
#include "xbar/quantize.h"

#include <algorithm>

namespace xs::core {

using tensor::Tensor;

namespace {

map::Tiling make_tiling(const Tensor& work, prune::Method method,
                        std::int64_t xbar_size) {
    switch (method) {
        case prune::Method::kXbarColumn:
            return map::tile_xcs(work, xbar_size);
        case prune::Method::kXbarRow:
            return map::tile_xrs(work, xbar_size);
        case prune::Method::kNone:
        case prune::Method::kChannelFilter:
        default:
            return map::tile_dense(work.dim(0), work.dim(1), xbar_size);
    }
}

}  // namespace

Tensor degrade_mac_matrix(const Tensor& matrix, const EvalConfig& config,
                          double w_ref, util::Rng& rng, DegradeStats& stats) {
    tensor::check(matrix.rank() == 2, "degrade_mac_matrix: expects rank-2 matrix");
    tensor::check(w_ref > 0.0, "degrade_mac_matrix: w_ref must be positive");

    // T: C/F-pruned matrices are compacted (zero rows/columns eliminated).
    const bool use_compaction = config.method == prune::Method::kChannelFilter;
    map::Compaction compaction;
    Tensor work;
    if (use_compaction) {
        compaction = map::compact_dense(matrix);
        work = compaction.matrix;
    } else {
        work = matrix;
    }

    // Mitigation R on the compacted matrix.
    Rearrangement rearrangement;
    if (config.rearrange) {
        rearrangement = compute_rearrangement(work, config.order);
        work = apply_columns(work, rearrangement);
    }

    const map::Tiling tiling = make_tiling(work, config.method, config.xbar.size);
    const xbar::ConductanceMapper mapper(config.xbar.device, w_ref);

    Tensor degraded = work;  // scatter target
    // Pre-split one RNG per tile so the parallel loop stays deterministic.
    std::vector<util::Rng> tile_rngs;
    tile_rngs.reserve(tiling.tiles.size());
    for (std::size_t t = 0; t < tiling.tiles.size(); ++t)
        tile_rngs.push_back(rng.split(static_cast<std::uint64_t>(t) + 1));

    std::vector<double> tile_nf(tiling.tiles.size(), 0.0);
    std::vector<Tensor> tile_out(tiling.tiles.size());

    // Digital column gain: scale G′ columns so the calibration-point current
    // matches the pre-parasitic array (per differential array).
    const auto compensate = [&config](Tensor& g_eff, const Tensor& g_before) {
        const std::int64_t n = config.xbar.size;
        for (std::int64_t j = 0; j < n; ++j) {
            double before = 0.0, after = 0.0;
            for (std::int64_t i = 0; i < n; ++i) {
                before += g_before.at(i, j);
                after += g_eff.at(i, j);
            }
            if (after <= 0.0) continue;
            const float gain = static_cast<float>(before / after);
            for (std::int64_t i = 0; i < n; ++i) g_eff.at(i, j) *= gain;
        }
    };

    util::parallel_for(0, tiling.tiles.size(), [&](std::size_t t) {
        const map::Tile& tile = tiling.tiles[t];
        const Tensor sub = map::extract_tile(work, tile, config.xbar.size);

        Tensor g_pos, g_neg;
        mapper.to_differential(sub, g_pos, g_neg);
        if (config.conductance_levels >= 2) {
            xbar::quantize_conductance(g_pos, config.xbar.device,
                                       config.conductance_levels);
            xbar::quantize_conductance(g_neg, config.xbar.device,
                                       config.conductance_levels);
        }
        if (config.include_variation) {
            xbar::apply_variation(g_pos, config.xbar.device, tile_rngs[t]);
            xbar::apply_variation(g_neg, config.xbar.device, tile_rngs[t]);
        }
        if (config.faults.any()) {
            xbar::apply_stuck_faults(g_pos, config.xbar.device, config.faults,
                                     tile_rngs[t]);
            xbar::apply_stuck_faults(g_neg, config.xbar.device, config.faults,
                                     tile_rngs[t]);
        }
        double nf = 0.0;
        if (config.include_parasitics) {
            const xbar::TileDegradeResult pos = xbar::degrade_tile(g_pos, config.xbar);
            const xbar::TileDegradeResult neg = xbar::degrade_tile(g_neg, config.xbar);
            if (config.compensate_columns) {
                Tensor pos_eff = pos.g_eff, neg_eff = neg.g_eff;
                compensate(pos_eff, g_pos);
                compensate(neg_eff, g_neg);
                g_pos = std::move(pos_eff);
                g_neg = std::move(neg_eff);
            } else {
                g_pos = pos.g_eff;
                g_neg = neg.g_eff;
            }
            nf = 0.5 * (pos.nf + neg.nf);
        }
        tile_out[t] = mapper.from_differential(g_pos, g_neg);
        tile_nf[t] = nf;
    });

    for (std::size_t t = 0; t < tiling.tiles.size(); ++t) {
        map::scatter_tile(degraded, tiling.tiles[t], tile_out[t]);
        stats.nf_sum += tile_nf[t];
        ++stats.nf_tiles;
    }
    stats.tiles += tiling.count();

    // R⁻¹ then T⁻¹.
    if (config.rearrange) degraded = invert_columns(degraded, rearrangement);
    if (use_compaction) return map::uncompact(compaction, degraded);
    return degraded;
}

std::map<std::string, Tensor> degrade_model_matrices(
    nn::Sequential& model, const EvalConfig& config,
    std::vector<LayerEvalStats>* layer_stats) {
    std::map<std::string, Tensor> result;
    util::Rng rng(config.seed);
    std::uint64_t layer_tag = 1;

    for (nn::Layer* layer : map::mappable_layers(model)) {
        const Tensor matrix = map::extract_matrix(*layer);

        double w_ref = 0.0;
        const auto it = config.w_ref.find(layer->name());
        if (it != config.w_ref.end()) {
            w_ref = it->second;
        } else {
            w_ref = tensor::abs_percentile_nonzero(matrix, config.w_ref_percentile);
        }
        if (w_ref <= 0.0) w_ref = 1.0;  // degenerate all-zero layer

        util::Rng layer_rng = rng.split(layer_tag++);
        DegradeStats stats;
        Tensor degraded = degrade_mac_matrix(matrix, config, w_ref, layer_rng, stats);

        if (layer_stats) {
            LayerEvalStats ls;
            ls.layer = layer->name();
            if (config.method == prune::Method::kChannelFilter) {
                const map::Compaction c = map::compact_dense(matrix);
                ls.rows = c.matrix.dim(0);
                ls.cols = c.matrix.dim(1);
            } else {
                ls.rows = matrix.dim(0);
                ls.cols = matrix.dim(1);
            }
            ls.tiles = stats.tiles;
            ls.nf_mean = stats.nf_mean();
            ls.w_ref = w_ref;
            layer_stats->push_back(std::move(ls));
        }
        result.emplace(layer->name(), std::move(degraded));
    }
    return result;
}

namespace {

EvalResult evaluate_single(nn::Sequential& model, const nn::Dataset& test,
                           const EvalConfig& config) {
    EvalResult result;
    auto degraded = degrade_model_matrices(model, config, &result.layers);

    // Swap in W′, keeping the originals for restoration.
    std::map<std::string, Tensor> originals;
    for (nn::Layer* layer : map::mappable_layers(model)) {
        originals.emplace(layer->name(), map::extract_matrix(*layer));
        map::inject_matrix(*layer, degraded.at(layer->name()));
    }

    result.accuracy = nn::evaluate(model, test);

    for (nn::Layer* layer : map::mappable_layers(model))
        map::inject_matrix(*layer, originals.at(layer->name()));

    double nf_sum = 0.0;
    std::int64_t nf_tiles = 0;
    for (const auto& ls : result.layers) {
        nf_sum += ls.nf_mean * static_cast<double>(ls.tiles);
        nf_tiles += ls.tiles;
        result.total_tiles += ls.tiles;
    }
    result.nf_mean = nf_tiles ? nf_sum / static_cast<double>(nf_tiles) : 0.0;
    return result;
}

}  // namespace

EvalResult evaluate_on_crossbars(nn::Sequential& model, const nn::Dataset& test,
                                 const EvalConfig& config) {
    const std::int64_t repeats = std::max<std::int64_t>(config.repeats, 1);
    EvalResult aggregate;
    for (std::int64_t r = 0; r < repeats; ++r) {
        EvalConfig run = config;
        run.seed = config.seed + static_cast<std::uint64_t>(r) * 7919;
        EvalResult one = evaluate_single(model, test, run);
        if (r == 0) {
            aggregate = std::move(one);
        } else {
            aggregate.accuracy += one.accuracy;
            aggregate.nf_mean += one.nf_mean;
        }
    }
    aggregate.accuracy /= static_cast<double>(repeats);
    aggregate.nf_mean /= static_cast<double>(repeats);
    return aggregate;
}

EvalResult measure_nf(nn::Sequential& model, const EvalConfig& config) {
    EvalResult result;
    degrade_model_matrices(model, config, &result.layers);
    double nf_sum = 0.0;
    std::int64_t nf_tiles = 0;
    for (const auto& ls : result.layers) {
        nf_sum += ls.nf_mean * static_cast<double>(ls.tiles);
        nf_tiles += ls.tiles;
        result.total_tiles += ls.tiles;
    }
    result.nf_mean = nf_tiles ? nf_sum / static_cast<double>(nf_tiles) : 0.0;
    return result;
}

}  // namespace xs::core
