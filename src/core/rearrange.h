// Crossbar-column rearrangement R (paper §VI-A).
//
// Every column of the (compacted) MAC matrix is scored with √(µ·σ) of its
// absolute weights; columns are then permuted so that similar-conductance
// columns land in the same crossbar tiles. Tiles dominated by
// low-conductance synapses draw small wire currents and suffer little
// IR-drop, so most tiles become near-ideal and the damage concentrates in
// the few high-conductance tiles. R is applied at mapping time only —
// R⁻¹ restores the logical column order after non-ideality injection, so
// there is no training cost and inference is unchanged functionally.
#pragma once

#include "tensor/tensor.h"

#include <cstdint>
#include <vector>

namespace xs::core {

enum class RearrangeOrder {
    kAscending,  // lowest √(µσ) first — groups low-G columns into tiles
    kCenterOut,  // lowest √(µσ) at the matrix centre (the paper's Fig. 3(f)
                 // heatmap layout); equivalent grouping, different aesthetics
};

struct Rearrangement {
    // perm[new_position] = original column index.
    std::vector<std::int64_t> perm;
};

// Column score √(µ·σ) over absolute values (paper's criterion).
double column_score(const tensor::Tensor& matrix, std::int64_t col);

Rearrangement compute_rearrangement(const tensor::Tensor& matrix,
                                    RearrangeOrder order);

// R: returns the matrix with columns permuted per `r`.
tensor::Tensor apply_columns(const tensor::Tensor& matrix, const Rearrangement& r);

// R⁻¹: undoes apply_columns.
tensor::Tensor invert_columns(const tensor::Tensor& matrix, const Rearrangement& r);

}  // namespace xs::core
