// Shared infrastructure for the bench binaries that regenerate the paper's
// tables and figures: flag-driven experiment scale, dataset/model caching,
// and standard EvalConfig construction.
//
// Common flags (all optional):
//   --width=0.1875       VGG width multiplier
//   --train-count=2048   training images per dataset
//   --test-count=512     test images
//   --epochs=5           training epochs
//   --batch=32           batch size
//   --sizes=16,32,64     crossbar sizes to sweep
//   --sigma=0.10         device variation (sigma/G)
//   --sparsity10=0.8     sparsity for the 10-class experiments (paper: 0.8)
//   --sparsity100=0.6    sparsity for the 100-class experiments (paper: 0.6)
//   --seed=11            master seed
//   --cache-dir=results/models  trained-model cache
//   --out-dir=results    CSV output directory
//   --verbose            log training progress
#pragma once

#include "core/evaluator.h"
#include "core/workspace.h"
#include "util/flags.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace xs::core {

class ExperimentContext {
public:
    explicit ExperimentContext(const util::Flags& flags);

    // ---- experiment scale (resolved from flags) ----
    double width() const { return width_; }
    const std::vector<std::int64_t>& sizes() const { return sizes_; }
    double sparsity_for(std::int64_t num_classes) const;
    const std::string& out_dir() const { return out_dir_; }
    bool verbose() const { return verbose_; }

    // Dataset for 10 or 100 classes (generated once, shared).
    const data::TrainTest& dataset(std::int64_t num_classes);

    // Model spec for a variant ("vgg11"/"vgg16"), class count and scheme.
    ModelSpec spec(const std::string& variant, std::int64_t num_classes,
                   prune::Method method, double sparsity, bool wct = false) const;

    // Train-or-load; results cached in memory by spec key as well as on disk.
    PreparedModel& prepared(const ModelSpec& spec);

    // Crossbar configuration at a given size (device/parasitics from flags).
    xbar::CrossbarConfig xbar(std::int64_t size) const;

    // Evaluation config for a prepared model (WCT models get their frozen
    // w_ref scales installed automatically).
    EvalConfig eval_config(const PreparedModel& model, prune::Method method,
                           std::int64_t size, bool rearrange = false) const;

    // CSV path under out_dir (directories created on demand).
    std::string csv_path(const std::string& name) const;

private:
    double width_;
    std::int64_t train_count_, test_count_, epochs_, batch_;
    std::vector<std::int64_t> sizes_;
    double sigma_;
    double sparsity10_, sparsity100_;
    std::int64_t eval_repeats_ = 2;
    std::uint64_t seed_;
    std::string cache_dir_, out_dir_;
    bool verbose_;

    std::map<std::int64_t, data::TrainTest> datasets_;
    std::map<std::string, std::unique_ptr<PreparedModel>> models_;
};

}  // namespace xs::core
