// Shared infrastructure for the bench binaries that regenerate the paper's
// tables and figures: flag-driven experiment scale, dataset/model caching,
// and standard EvalConfig construction.
//
// Common flags (all optional):
//   --width=0.1875       VGG width multiplier
//   --train-count=2048   training images per dataset
//   --test-count=512     test images
//   --epochs=5           training epochs
//   --batch=32           batch size
//   --sizes=16,32,64     crossbar sizes to sweep
//   --sigma=0.10         device variation (sigma/G)
//   --sparsity10=0.8     sparsity for the 10-class experiments (paper: 0.8)
//   --sparsity100=0.6    sparsity for the 100-class experiments (paper: 0.6)
//   --wct-percentile=0.8 W_cut percentile for WCT model variants
//   --seed=11            master seed
//   --cache-dir=results/models  trained-model cache
//   --out-dir=results    CSV output directory
//   --verbose            log training progress
#pragma once

#include "core/evaluator.h"
#include "core/workspace.h"
#include "util/flags.h"

#include <condition_variable>
#include <exception>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace xs::core {

class ExperimentContext {
public:
    explicit ExperimentContext(const util::Flags& flags);

    // ---- experiment scale (resolved from flags) ----
    double width() const { return width_; }
    const std::vector<std::int64_t>& sizes() const { return sizes_; }
    double sparsity_for(std::int64_t num_classes) const;
    double sigma() const { return sigma_; }
    std::uint64_t seed() const { return seed_; }
    std::int64_t eval_repeats() const { return eval_repeats_; }
    const std::string& out_dir() const { return out_dir_; }
    bool verbose() const { return verbose_; }

    // Dataset for 10 or 100 classes (generated once, shared). Thread-safe:
    // concurrent first requests for the same class count generate once;
    // the others block until the generator finishes.
    const data::TrainTest& dataset(std::int64_t num_classes);

    // Model spec for a variant ("vgg11"/"vgg16"), class count and scheme.
    ModelSpec spec(const std::string& variant, std::int64_t num_classes,
                   prune::Method method, double sparsity, bool wct = false) const;

    // Train-or-load; results cached in memory by spec key as well as on disk.
    // Thread-safe with per-key in-flight deduplication: concurrent requests
    // for the same spec train (or load) exactly once and share the result,
    // while requests for distinct specs proceed independently — a sweep grid
    // never retrains a shared model twice (DESIGN.md §7).
    PreparedModel& prepared(const ModelSpec& spec);

    // Crossbar configuration at a given size (device/parasitics from flags).
    xbar::CrossbarConfig xbar(std::int64_t size) const;

    // Evaluation config for a prepared model (WCT models get their frozen
    // w_ref scales installed automatically).
    EvalConfig eval_config(const PreparedModel& model, prune::Method method,
                           std::int64_t size, bool rearrange = false) const;

    // CSV path under out_dir (directories created on demand).
    std::string csv_path(const std::string& name) const;

    // Compact fingerprint of every context field that changes experiment
    // results (model weights, dataset, seeds). Sweep manifests record it so
    // --resume refuses to mix results from different configurations.
    std::string fingerprint() const;

private:
    // One lazily-built cache slot. The slot (not the whole cache) carries
    // the in-flight state so concurrent builders of *different* keys never
    // serialize on each other — only duplicate requests for the same key
    // wait, on the slot's condition variable. Slots are shared_ptr-owned:
    // a failed build evicts its map entry (so a later request retries) while
    // in-flight waiters keep the slot alive and observe the stored error.
    template <typename T>
    struct Slot {
        std::mutex m;
        std::condition_variable cv;
        bool ready = false;
        std::exception_ptr error;  // set when the build threw
        std::unique_ptr<T> value;
    };

    // Claim `key`'s slot in `cache` and build-or-wait via `build()`.
    template <typename Key, typename T, typename Build>
    T& prepared_slot(std::map<Key, std::shared_ptr<Slot<T>>>& cache,
                     const Key& key, const Build& build);

    double width_;
    std::int64_t train_count_, test_count_, epochs_, batch_;
    std::vector<std::int64_t> sizes_;
    double sigma_;
    double sparsity10_, sparsity100_;
    double wct_percentile_;
    std::int64_t eval_repeats_ = 2;
    std::uint64_t seed_;
    std::string cache_dir_, out_dir_;
    bool verbose_;

    std::mutex mu_;  // guards the cache maps (not the per-slot builds)
    std::map<std::int64_t, std::shared_ptr<Slot<data::TrainTest>>> datasets_;
    std::map<std::string, std::shared_ptr<Slot<PreparedModel>>> models_;
};

}  // namespace xs::core
