#include "sweep/runner.h"

#include "map/energy.h"
#include "util/csv.h"
#include "util/log.h"
#include "util/metrics.h"
#include "util/parallel.h"
#include "util/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <exception>
#include <set>
#include <sstream>

namespace xs::sweep {

namespace {

using util::fmt_g;

// The distinct models a set of cells resolves to, deduplicated by spec key
// in first-use order — shared by the runner's prepare phase and the
// --dry-run preview so the preview can never diverge from what actually
// trains.
std::vector<core::ModelSpec> distinct_model_specs(
    const core::ExperimentContext& ctx,
    const std::vector<const SweepCell*>& cells) {
    std::set<std::string> seen;
    std::vector<core::ModelSpec> specs;
    for (const SweepCell* c : cells) {
        core::ModelSpec ms = ctx.spec(c->variant, c->num_classes,
                                      c->prune.method, c->prune.sparsity,
                                      c->mitigation.wct);
        if (seen.insert(ms.key()).second) specs.push_back(std::move(ms));
    }
    return specs;
}

}  // namespace

// Execute one grid cell: resolve the prepared (cached) model, build the
// evaluation config from the cell's axes, run the crossbar evaluation for a
// single Monte-Carlo draw, and attach the analytic energy estimate. Safe to
// call concurrently from shard chunks: the context's caches are locked, the
// shared model is only read, and all scratch is call-local. Also the body
// of the supervisor's worker processes (sweep/supervisor.h).
CellResult run_sweep_cell(core::ExperimentContext& ctx, const SweepSpec& spec,
                          const SweepCell& cell) {
    XS_TIMER_NS("sweep.cell.ns");
    XS_TRACE_SPAN("cell");
    XS_COUNT("sweep.cells.executed", 1);
    const auto t0 = std::chrono::steady_clock::now();
    const core::ModelSpec model_spec =
        ctx.spec(cell.variant, cell.num_classes, cell.prune.method,
                 cell.prune.sparsity, cell.mitigation.wct);
    core::PreparedModel& model = [&]() -> core::PreparedModel& {
        XS_TIMER_NS("sweep.phase.prepare.ns");
        XS_TRACE_SPAN("cell.prepare");
        return ctx.prepared(model_spec);
    }();

    core::EvalConfig eval = ctx.eval_config(model, cell.prune.method,
                                            cell.xbar_size,
                                            cell.mitigation.rearrange);
    eval.backend = cell.backend;
    eval.xbar.device.sigma_variation = cell.sigma;
    eval.xbar.parasitics.r_driver *= cell.parasitic_scale;
    eval.xbar.parasitics.r_wire_row *= cell.parasitic_scale;
    eval.xbar.parasitics.r_wire_col *= cell.parasitic_scale;
    eval.xbar.parasitics.r_sense *= cell.parasitic_scale;
    eval.faults.p_stuck_min = cell.faults.p_stuck_min;
    eval.faults.p_stuck_max = cell.faults.p_stuck_max;
    if (cell.quant_levels > 0) eval.conductance_levels = cell.quant_levels;
    eval.compensate_columns = cell.mitigation.compensate;
    eval.repeats = 1;  // the Monte-Carlo axis lives in the grid
    eval.seed = cell_seed(ctx.seed(), cell);
    eval.warm_start_solves = spec.warm_start_solves;
    // One cell is one Monte-Carlo draw, but it still rides the compiled-
    // instance path: a single-lane batched evaluation degrades through the
    // scalar solver chain (the batch stage falls back below two lanes) and
    // is bit-identical to the sequential path — pinned by the repeat-batch
    // determinism tests — so supervisor and service workers, which execute
    // cells one at a time, stay byte-comparable with batched in-process
    // runs while sharing the pre-packed GEMM instances and the
    // degrade/forward overlap.
    eval.repeat_batch = true;

    core::EvalResult r;
    {
        XS_TIMER_NS("sweep.phase.eval.ns");
        XS_TRACE_SPAN("cell.eval");
        if (spec.nf_only) {
            // NF is a parasitics metric (paper Fig. 3(d)): no inference
            // pass, no device variation.
            eval.include_variation = false;
            r = core::measure_nf(model.model, eval);
        } else {
            const data::TrainTest& tt = ctx.dataset(cell.num_classes);
            r = core::evaluate_on_crossbars(model.model, tt.test, eval);
        }
    }
    const map::EnergyReport energy = map::estimate_energy(
        model.model, cell.prune.method, eval.xbar, map::EnergyConfig{});

    CellResult out;
    out.backend = xbar::backend_name(cell.backend);
    out.accuracy = r.accuracy;
    out.nf_mean = r.nf_mean;
    out.energy_pj = energy.total_energy_pj();
    out.software_acc = model.software_accuracy;
    out.tiles = r.total_tiles;
    out.solver_failures = r.unconverged_tiles;
    out.wall_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    return out;
}

// Execute one grid point's repeats in a single lane-batched evaluation. The
// cells share every axis except the repeat index, so one EvalConfig (built
// from the head cell exactly like run_sweep_cell builds it) serves the whole
// group; only the per-repeat seeds differ, and those reach the evaluator as
// an explicit seed list — the same cell_seed values the sequential path
// would use, so cold-start lanes reproduce run_sweep_cell bit for bit.
std::vector<CellResult> run_sweep_group(
    core::ExperimentContext& ctx, const SweepSpec& spec,
    const std::vector<const SweepCell*>& cells) {
    tensor::check(!cells.empty(), "run_sweep_group: empty cell group");
    tensor::check(!spec.nf_only,
                  "run_sweep_group: nf-only sweeps have no inference pass to "
                  "batch; use run_sweep_cell");
    const std::size_t lanes = cells.size();
    XS_TIMER_NS("sweep.cell.ns");
    XS_TRACE_SPAN("cell_group");
    XS_COUNT("sweep.cells.executed", static_cast<std::uint64_t>(lanes));
    const auto t0 = std::chrono::steady_clock::now();
    const SweepCell& head = *cells.front();
    const core::ModelSpec model_spec =
        ctx.spec(head.variant, head.num_classes, head.prune.method,
                 head.prune.sparsity, head.mitigation.wct);
    core::PreparedModel& model = [&]() -> core::PreparedModel& {
        XS_TIMER_NS("sweep.phase.prepare.ns");
        XS_TRACE_SPAN("cell.prepare");
        return ctx.prepared(model_spec);
    }();

    core::EvalConfig eval = ctx.eval_config(model, head.prune.method,
                                            head.xbar_size,
                                            head.mitigation.rearrange);
    eval.backend = head.backend;
    eval.xbar.device.sigma_variation = head.sigma;
    eval.xbar.parasitics.r_driver *= head.parasitic_scale;
    eval.xbar.parasitics.r_wire_row *= head.parasitic_scale;
    eval.xbar.parasitics.r_wire_col *= head.parasitic_scale;
    eval.xbar.parasitics.r_sense *= head.parasitic_scale;
    eval.faults.p_stuck_min = head.faults.p_stuck_min;
    eval.faults.p_stuck_max = head.faults.p_stuck_max;
    if (head.quant_levels > 0) eval.conductance_levels = head.quant_levels;
    eval.compensate_columns = head.mitigation.compensate;
    eval.warm_start_solves = spec.warm_start_solves;

    std::vector<std::uint64_t> seeds(lanes);
    for (std::size_t r = 0; r < lanes; ++r)
        seeds[r] = cell_seed(ctx.seed(), *cells[r]);

    std::vector<core::EvalResult> per;
    {
        XS_TIMER_NS("sweep.phase.eval.ns");
        XS_TRACE_SPAN("cell.eval");
        const data::TrainTest& tt = ctx.dataset(head.num_classes);
        per = core::evaluate_repeats_on_crossbars(model.model, tt.test, eval,
                                                  seeds);
    }
    const map::EnergyReport energy = map::estimate_energy(
        model.model, head.prune.method, eval.xbar, map::EnergyConfig{});

    const double wall_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - t0)
                               .count() /
                           static_cast<double>(lanes);
    std::vector<CellResult> out(lanes);
    for (std::size_t r = 0; r < lanes; ++r) {
        out[r].backend = xbar::backend_name(head.backend);
        out[r].accuracy = per[r].accuracy;
        out[r].nf_mean = per[r].nf_mean;
        out[r].energy_pj = energy.total_energy_pj();
        out[r].software_acc = model.software_accuracy;
        out[r].tiles = per[r].total_tiles;
        out[r].solver_failures = per[r].unconverged_tiles;
        out[r].wall_ms = wall_ms;
    }
    return out;
}

std::uint64_t cell_seed(std::uint64_t master_seed, const SweepCell& cell) {
    std::uint64_t h = 1469598103934665603ULL ^
                      (master_seed * 0x9E3779B97F4A7C15ULL);
    for (const char ch : cell.seed_key())
        h = (h ^ static_cast<unsigned char>(ch)) * 1099511628211ULL;
    return h + static_cast<std::uint64_t>(cell.repeat) * 0x9E3779B97F4A7C15ULL;
}

std::string sweep_config_fingerprint(const core::ExperimentContext& ctx,
                                     const SweepSpec& spec) {
    // Refusing to resume under a different configuration needs every input
    // that changes cell results: the context fingerprint, the
    // solve-determinism mode, the measurement mode, and a sampler tag —
    // bump the tag whenever the Rng draw stream changes (e.g. the
    // Box–Muller → ziggurat switch), so a manifest recorded under the old
    // sampler refuses to resume instead of mixing two draw universes into
    // one CSV no fresh run could reproduce.
    return ctx.fingerprint() + (spec.warm_start_solves ? "/warm" : "/cold") +
           (spec.nf_only ? "/nf" : "") + "/rng-zig128";
}

std::map<std::string, CellResult> load_resume_state(
    const std::string& manifest_path, const std::string& config_fp,
    SweepSummary& summary, bool& had_config) {
    ManifestLoad load = load_manifest_file(manifest_path);
    summary.manifest_lines_skipped = load.skipped_lines;
    if (load.skipped_lines > 0)
        util::log_warn("sweep: manifest '" + manifest_path + "' has " +
                       std::to_string(load.skipped_lines) +
                       " corrupt line(s); the affected cells will re-run");
    tensor::check(load.config.empty() || load.config == config_fp,
                  "sweep: manifest '" + manifest_path +
                      "' was recorded under a different configuration (" +
                      load.config + " vs " + config_fp +
                      "); rerun without --resume or delete it");
    had_config = !load.config.empty();
    summary.metrics_json = load.metrics_json;
    return std::move(load.results);
}

void merge_prior_metrics(const std::string& prior_json,
                         util::metrics::Snapshot& snap) {
    if (prior_json.empty()) return;
    util::metrics::Snapshot prior;
    if (util::metrics::from_json(prior_json, prior))
        util::metrics::merge(snap, prior);
    else
        util::log_warn(
            "sweep: resumed manifest carries an unparsable metrics record; "
            "telemetry totals restart from this run");
}

void aggregate_and_write_csv(const std::vector<SweepCell>& cells,
                             const SweepSpec& spec,
                             const std::map<std::string, CellResult>& results,
                             SweepSummary& summary) {
    XS_TIMER_NS("sweep.phase.aggregate.ns");
    XS_TRACE_SPAN("aggregate");
    // Aggregate groups in expansion order; `repeat` is the innermost axis,
    // so one group's cells are contiguous. Failed (quarantined) cells never
    // contribute numbers: their groups stay incomplete and off the CSV.
    summary.rows.clear();
    summary.cells_failed = 0;
    summary.failed_cells.clear();
    for (std::size_t i = 0; i < cells.size();) {
        GroupRow row;
        row.cell = cells[i];
        row.repeats_total = spec.repeats;
        std::vector<const CellResult*> got;
        for (std::int64_t r = 0; r < spec.repeats; ++r, ++i) {
            const auto it = results.find(cells[i].id());
            if (it == results.end()) continue;
            if (it->second.failed()) {
                ++row.repeats_failed;
                ++summary.cells_failed;
                summary.failed_cells.push_back(cells[i].id());
                continue;
            }
            got.push_back(&it->second);
        }
        row.repeats_done = static_cast<std::int64_t>(got.size());
        if (!got.empty()) {
            double acc_sum = 0.0, nf_sum = 0.0;
            for (const CellResult* r : got) {
                acc_sum += r->accuracy;
                nf_sum += r->nf_mean;
                row.solver_failures += r->solver_failures;
            }
            const double n = static_cast<double>(got.size());
            row.acc_mean = acc_sum / n;
            row.nf_mean = nf_sum / n;
            double acc_var = 0.0, nf_var = 0.0;
            for (const CellResult* r : got) {
                acc_var += (r->accuracy - row.acc_mean) * (r->accuracy - row.acc_mean);
                nf_var += (r->nf_mean - row.nf_mean) * (r->nf_mean - row.nf_mean);
            }
            row.acc_std = std::sqrt(acc_var / n);
            row.nf_std = std::sqrt(nf_var / n);
            row.software_acc = got.front()->software_acc;
            row.energy_pj = got.front()->energy_pj;
            row.tiles = got.front()->tiles;
        }
        summary.rows.push_back(std::move(row));
    }

    // Aggregate CSV: complete groups only, fixed-precision cells, expansion
    // order — the bytes depend solely on the grid and the cell results,
    // never on the execution engine (threads, processes, kills, retries,
    // resumes).
    util::CsvWriter csv(summary.csv_path,
                        {"variant", "classes", "method", "sparsity",
                         "mitigation", "backend", "xbar_size", "sigma",
                         "parasitic_scale", "p_stuck_min", "p_stuck_max",
                         "repeats", "software_acc", "acc_mean", "acc_std",
                         "nf_mean", "nf_std", "energy_pj", "tiles",
                         "solver_failures"});
    for (const GroupRow& row : summary.rows) {
        if (!row.complete()) continue;
        const SweepCell& c = row.cell;
        csv.row(c.variant, c.num_classes, prune::method_name(c.prune.method),
                fmt_g(c.prune.sparsity), c.mitigation.name(),
                xbar::backend_name(c.backend), c.xbar_size,
                fmt_g(c.sigma), fmt_g(c.parasitic_scale), fmt_g(c.faults.p_stuck_min),
                fmt_g(c.faults.p_stuck_max), row.repeats_done,
                util::fmt(row.software_acc, 4), util::fmt(row.acc_mean, 4),
                util::fmt(row.acc_std, 4), util::fmt(row.nf_mean, 6),
                util::fmt(row.nf_std, 6), util::fmt(row.energy_pj, 3),
                row.tiles, row.solver_failures);
    }
    csv.flush();
    tensor::check(csv.ok(), "sweep: failed writing '" + summary.csv_path + "'");
    if (summary.cells_failed > 0)
        util::log_warn("sweep: " + std::to_string(summary.cells_failed) +
                       " quarantined cell(s) excluded from the aggregate CSV");
}

SweepRunner::SweepRunner(core::ExperimentContext& ctx, SweepSpec spec,
                         SweepOptions opts)
    : ctx_(ctx), spec_(std::move(spec)), opts_(std::move(opts)) {}

SweepSummary SweepRunner::run() {
    const std::vector<SweepCell> cells = spec_.expand();
    SweepSummary summary;
    summary.cells_total = static_cast<std::int64_t>(cells.size());
    summary.manifest_path = ctx_.csv_path(opts_.manifest_name);
    summary.csv_path = ctx_.csv_path(opts_.csv_name);

    const std::string config_fp = sweep_config_fingerprint(ctx_, spec_);
    std::map<std::string, CellResult> results;
    bool had_config = false;
    if (opts_.resume)
        results = load_resume_state(summary.manifest_path, config_fp, summary,
                                    had_config);
    const std::string prior_metrics = summary.metrics_json;
    ManifestWriter manifest(summary.manifest_path, opts_.resume);
    tensor::check(manifest.ok(), "sweep: cannot open manifest '" +
                                     summary.manifest_path + "' for writing");
    if (!had_config) manifest.record_config(config_fp);

    // Quarantined cells carried in from the resumed manifest, for the
    // progress heartbeat (the in-process runner never quarantines itself).
    std::int64_t failed_seen = 0;
    for (const auto& kv : results)
        if (kv.second.failed()) ++failed_seen;

    // Pending cells in expansion order (resume skips recorded ones — both
    // finished and quarantined; delete the manifest to retry a quarantine).
    std::vector<std::size_t> pending;
    for (std::size_t i = 0; i < cells.size(); ++i)
        if (results.find(cells[i].id()) == results.end()) pending.push_back(i);
    summary.cells_resumed =
        summary.cells_total - static_cast<std::int64_t>(pending.size());
    if (opts_.max_cells >= 0 &&
        pending.size() > static_cast<std::size_t>(opts_.max_cells))
        pending.resize(static_cast<std::size_t>(opts_.max_cells));
    summary.cells_pending = summary.cells_total - summary.cells_resumed -
                            static_cast<std::int64_t>(pending.size());

    // Prepare every distinct model before sharding: training parallelizes
    // across the whole pool here, no shard ever stalls on another shard's
    // training, and a grid never retrains a shared model twice.
    {
        std::vector<const SweepCell*> pending_cells;
        pending_cells.reserve(pending.size());
        for (const std::size_t i : pending) pending_cells.push_back(&cells[i]);
        for (const core::ModelSpec& ms : distinct_model_specs(ctx_, pending_cells))
            ctx_.prepared(ms);
    }

    // Shard phase: shard s owns work units s, s+shards, s+2·shards, … — an
    // assignment that depends only on expansion order. Exceptions are
    // collected per shard and rethrown after the dispatch (an exception
    // escaping into the pool would terminate the process).
    const std::size_t nshards =
        opts_.shards > 0 ? static_cast<std::size_t>(opts_.shards)
                         : util::worker_count();
    std::vector<CellResult> executed(pending.size());
    std::vector<std::exception_ptr> errors(nshards);
    std::atomic<std::int64_t> completed{0};
    std::atomic<std::int64_t> over_budget{0};
    // Heartbeat state: checked after every completed cell, emitted by
    // whichever shard wins the CAS once the interval elapses.
    const util::Stopwatch run_clock;
    std::atomic<std::int64_t> last_beat_ms{0};
    const std::int64_t beat_interval_ms =
        static_cast<std::int64_t>(opts_.progress_sec * 1000.0);
    const auto maybe_heartbeat = [&](std::int64_t done) {
        if (beat_interval_ms <= 0) return;
        const auto now_ms =
            static_cast<std::int64_t>(run_clock.seconds() * 1000.0);
        std::int64_t prev = last_beat_ms.load(std::memory_order_relaxed);
        if (now_ms - prev < beat_interval_ms ||
            !last_beat_ms.compare_exchange_strong(prev, now_ms))
            return;
        const double rate =
            now_ms > 0 ? static_cast<double>(done) * 1000.0 /
                             static_cast<double>(now_ms)
                       : 0.0;
        const std::int64_t remaining =
            static_cast<std::int64_t>(pending.size()) - done;
        util::log_info(
            "progress: " + std::to_string(done) + "/" +
            std::to_string(pending.size()) + " cells (" +
            std::to_string(failed_seen) + " failed), " +
            util::fmt(rate, 2) + " cells/s, eta " +
            (rate > 0.0
                 ? util::fmt(static_cast<double>(remaining) / rate, 0) + " s"
                 : "--"));
    };
    // Work units: a unit is either one cell or a contiguous run of pending
    // cells from the same repeat group, executed as one lane-batched
    // evaluation (run_sweep_group). Repeat is the innermost expansion axis,
    // so group membership is index / repeats. Cold-start lanes are
    // bit-identical to per-cell execution, which keeps the aggregate CSV
    // independent of the batching mode; warm-start sweeps chain solves
    // differently per lane and nf-only sweeps have no inference pass, so
    // both fall back to singleton units. Units (not cells) are dealt
    // round-robin — with batching off every unit is one cell and the
    // assignment reduces to the historical cell deal.
    const bool batch_groups = opts_.repeat_batch && !spec_.nf_only &&
                              !spec_.warm_start_solves && spec_.repeats > 1;
    struct Unit {
        std::size_t begin = 0;  // index into `pending`
        std::size_t count = 0;
    };
    std::vector<Unit> units;
    units.reserve(pending.size());
    for (std::size_t p = 0; p < pending.size();) {
        std::size_t q = p + 1;
        if (batch_groups) {
            const std::size_t group =
                pending[p] / static_cast<std::size_t>(spec_.repeats);
            while (q < pending.size() &&
                   pending[q] / static_cast<std::size_t>(spec_.repeats) ==
                       group)
                ++q;
        }
        units.push_back(Unit{p, q - p});
        p = q;
    }
    // Shared per-cell bookkeeping, identical on both execution paths.
    const auto record_one = [&](std::size_t p, CellResult&& result) {
        const SweepCell& cell = cells[pending[p]];
        executed[p] = std::move(result);
        manifest.record(cell.id(), executed[p]);
        XS_COUNT("sweep.cells.done", 1);
        const std::int64_t n = ++completed;
        maybe_heartbeat(n);
        util::log_info("sweep cell " + std::to_string(n) + "/" +
                       std::to_string(pending.size()) + " " + cell.id() +
                       ": acc " + util::fmt(executed[p].accuracy) + "% (" +
                       util::fmt(executed[p].wall_ms, 0) + " ms)");
        if (opts_.cell_budget_ms > 0.0 &&
            executed[p].wall_ms > opts_.cell_budget_ms) {
            ++over_budget;
            util::log_warn("sweep cell " + cell.id() + " over budget: " +
                           util::fmt(executed[p].wall_ms, 0) + " ms > " +
                           util::fmt(opts_.cell_budget_ms, 0) + " ms");
        }
    };
    util::parallel_for_workers(
        0, nshards, [&](std::size_t, std::size_t lo, std::size_t hi) {
            for (std::size_t s = lo; s < hi; ++s) {
                try {
                    for (std::size_t u = s; u < units.size(); u += nshards) {
                        const Unit unit = units[u];
                        if (unit.count == 1) {
                            record_one(unit.begin,
                                       run_sweep_cell(ctx_, spec_,
                                                      cells[pending[unit.begin]]));
                            continue;
                        }
                        std::vector<const SweepCell*> group(unit.count);
                        for (std::size_t i = 0; i < unit.count; ++i)
                            group[i] = &cells[pending[unit.begin + i]];
                        std::vector<CellResult> results_batch =
                            run_sweep_group(ctx_, spec_, group);
                        for (std::size_t i = 0; i < unit.count; ++i)
                            record_one(unit.begin + i,
                                       std::move(results_batch[i]));
                    }
                } catch (...) {
                    errors[s] = std::current_exception();
                }
            }
        });
    for (const auto& error : errors)
        if (error) std::rethrow_exception(error);
    // A bad manifest stream (disk full, I/O error) silently drops resume
    // state — fail loudly rather than let --resume re-run finished cells.
    tensor::check(manifest.ok(), "sweep: manifest writes to '" +
                                     summary.manifest_path +
                                     "' failed; resume state is incomplete");
    summary.cells_executed = completed.load();
    summary.cells_over_budget = over_budget.load();
    // Abort only after every dispatched cell is recorded: an interrupted
    // budget run must stay resumable.
    tensor::check(!(opts_.cell_budget_abort && summary.cells_over_budget > 0),
                  "sweep: " + std::to_string(summary.cells_over_budget) +
                      " cell(s) exceeded the " +
                      util::fmt(opts_.cell_budget_ms, 0) +
                      " ms budget (--cell-budget-abort)");
    for (std::size_t p = 0; p < pending.size(); ++p)
        results[cells[pending[p]].id()] = executed[p];

    aggregate_and_write_csv(cells, spec_, results, summary);
#if XS_TELEMETRY_ENABLED
    // Snapshot after aggregation so the aggregate phase timing is included;
    // a resumed run folds the prior record's totals in first, so the
    // manifest's newest metrics record covers the whole sweep. The manifest
    // copy is an uncounted informational record.
    util::metrics::Snapshot final_snap = util::metrics::snapshot();
    merge_prior_metrics(prior_metrics, final_snap);
    summary.metrics_json = util::metrics::to_json(final_snap);
    manifest.record_metrics(summary.metrics_json);
#endif
    return summary;
}

std::string accuracy_vs_size_table(const SweepSummary& summary) {
    // Ordered unique sizes and size-independent row labels.
    std::vector<std::int64_t> sizes;
    std::vector<std::string> labels;
    std::map<std::string, std::map<std::int64_t, const GroupRow*>> grid;
    std::map<std::string, double> software;
    for (const GroupRow& row : summary.rows) {
        const SweepCell& c = row.cell;
        const std::string key = c.label(/*with_size=*/false,
                                        /*elide_defaults=*/true);
        if (grid.find(key) == grid.end()) labels.push_back(key);
        if (std::find(sizes.begin(), sizes.end(), c.xbar_size) == sizes.end())
            sizes.push_back(c.xbar_size);
        grid[key][c.xbar_size] = &row;
        if (row.complete()) software[key] = row.software_acc;
    }

    std::vector<std::string> header{"configuration", "software"};
    for (const auto size : sizes)
        header.push_back(std::to_string(size) + "x" + std::to_string(size));
    util::TextTable table(std::move(header));
    for (const std::string& label : labels) {
        std::vector<std::string> cells{label};
        const auto sw = software.find(label);
        cells.push_back(sw == software.end() ? "--"
                                             : util::fmt(sw->second) + "%");
        for (const auto size : sizes) {
            const auto it = grid[label].find(size);
            if (it == grid[label].end() || !it->second->complete()) {
                cells.push_back("--");
            } else {
                cells.push_back(util::fmt(it->second->acc_mean) + "±" +
                                util::fmt(it->second->acc_std) + "%");
            }
        }
        table.add_row(std::move(cells));
    }
    return table.str();
}

std::string dry_run_report(const core::ExperimentContext& ctx,
                           const SweepSpec& spec) {
    std::ostringstream os;
    const auto join = [&os](const char* name, const auto& values,
                            const auto& fmt_one) {
        os << "  " << name << " = ";
        bool first = true;
        for (const auto& v : values) {
            if (!first) os << ",";
            os << fmt_one(v);
            first = false;
        }
        os << "\n";
    };
    os << "dry run: " << spec.describe() << "\n";
    join("variants", spec.variants, [](const std::string& v) { return v; });
    join("classes", spec.class_counts,
         [](std::int64_t v) { return std::to_string(v); });
    join("prune", spec.prunes, [](const PruneSetting& p) {
        std::string s = prune::method_name(p.method);
        if (p.method != prune::Method::kNone) s += ":" + fmt_g(p.sparsity);
        return s;
    });
    join("mitigations", spec.mitigations,
         [](const Mitigation& m) { return m.name(); });
    join("sizes", spec.sizes, [](std::int64_t v) { return std::to_string(v); });
    join("sigmas", spec.sigmas, [](double v) { return fmt_g(v); });
    join("parasitic-scales", spec.parasitic_scales,
         [](double v) { return fmt_g(v); });
    join("faults", spec.faults, [](const FaultSetting& f) {
        return fmt_g(f.p_stuck_min) + ":" + fmt_g(f.p_stuck_max);
    });
    join("quant-levels", spec.quant_levels,
         [](std::int64_t v) { return std::to_string(v); });
    join("backends", spec.backends, [](xbar::BackendKind b) {
        return std::string(xbar::backend_name(b));
    });
    os << "  sweep-repeats = " << spec.repeats << "\n";
    os << "  warm-start = " << (spec.warm_start_solves ? "true" : "false")
       << "\n";
    if (spec.nf_only) os << "  nf-only = true\n";

    const std::vector<SweepCell> cells = spec.expand();
    os << "cells: " << cells.size() << " ("
       << (spec.repeats ? cells.size() / static_cast<std::size_t>(spec.repeats)
                        : 0)
       << " groups x " << spec.repeats << " repeats)\n";

    // Distinct models the runner's prepare phase would train or load, in
    // first-use order.
    std::vector<const SweepCell*> cell_ptrs;
    cell_ptrs.reserve(cells.size());
    for (const SweepCell& c : cells) cell_ptrs.push_back(&c);
    const std::vector<core::ModelSpec> specs =
        distinct_model_specs(ctx, cell_ptrs);
    os << "models to prepare: " << specs.size() << "\n";
    for (const core::ModelSpec& ms : specs) os << "  " << ms.key() << "\n";
    return os.str();
}

}  // namespace xs::sweep
