#include "sweep/net.h"

#include "util/faultinject.h"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace xs::sweep::net {

namespace {

std::atomic<std::int64_t> g_frames_sent{0};
std::atomic<std::int64_t> g_acks_sent{0};  // kAck frames only

void set_errstr(std::string* err, const std::string& what) {
    if (err) *err = what + ": " + std::strerror(errno);
}

// CLOEXEC so forked workers never inherit a peer's socket (a worker holding
// the coordinator's fd open would mask the coordinator's EOF-on-death, the
// same trap the supervisor pipes guard against).
bool prep_fd(int fd) {
    if (::fcntl(fd, F_SETFD, FD_CLOEXEC) != 0) return false;
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0)
        return false;
    int one = 1;
    // NODELAY may legitimately fail on non-TCP fds (socketpair tests);
    // latency is a tuning concern there, not correctness.
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return true;
}

}  // namespace

int listen_on(std::uint16_t port, std::string* err) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        set_errstr(err, "socket");
        return -1;
    }
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
    addr.sin_port = htons(port);
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
        ::listen(fd, 64) != 0 || !prep_fd(fd)) {
        set_errstr(err, "bind/listen");
        ::close(fd);
        return -1;
    }
    return fd;
}

int bound_port(int listen_fd) {
    sockaddr_in addr{};
    socklen_t len = sizeof(addr);
    if (::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0)
        return -1;
    return static_cast<int>(ntohs(addr.sin_port));
}

int accept_conn(int listen_fd) {
    for (;;) {
        const int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd >= 0) {
            if (!prep_fd(fd)) {
                ::close(fd);
                return -1;
            }
            return fd;
        }
        if (errno == EINTR) continue;
        return -1;  // EAGAIN (nothing pending) or a real error
    }
}

int connect_to(const std::string& host, std::uint16_t port, std::string* err) {
    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo* res = nullptr;
    const std::string port_str = std::to_string(port);
    const int rc = ::getaddrinfo(host.c_str(), port_str.c_str(), &hints, &res);
    if (rc != 0 || res == nullptr) {
        if (err) *err = "getaddrinfo(" + host + "): " + ::gai_strerror(rc);
        return -1;
    }
    int fd = -1;
    for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
        fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
        if (fd < 0) continue;
        if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0 && prep_fd(fd))
            break;
        ::close(fd);
        fd = -1;
    }
    ::freeaddrinfo(res);
    if (fd < 0) set_errstr(err, "connect(" + host + ":" + port_str + ")");
    return fd;
}

bool parse_hostport(const std::string& s, std::string& host,
                    std::uint16_t& port) {
    const auto colon = s.rfind(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 >= s.size())
        return false;
    char* end = nullptr;
    const std::string port_str = s.substr(colon + 1);
    const long v = std::strtol(port_str.c_str(), &end, 10);
    if (end != port_str.c_str() + port_str.size() || v <= 0 || v > 65535)
        return false;
    host = s.substr(0, colon);
    port = static_cast<std::uint16_t>(v);
    return true;
}

bool send_frame(int fd, wire::MsgType type, const std::string& payload) {
    const std::int64_t ordinal =
        g_frames_sent.fetch_add(1, std::memory_order_relaxed);
    util::fault::Action planned = util::fault::at("net-send", ordinal);
    if (type == wire::MsgType::kAck) {
        // Type-gated seam: the process-wide frame ordinal shifts with
        // heartbeat cadence and worker boot time (machine load decides
        // whether a host's Nth frame is an ack or an idle heartbeat), but
        // "the Nth result this host reports" is stable — so the failure
        // matrix aims its torn frames, blips, and stalls at acks directly.
        const std::int64_t ack_ordinal =
            g_acks_sent.fetch_add(1, std::memory_order_relaxed);
        const util::fault::Action on_ack =
            util::fault::at("net-send-ack", ack_ordinal);
        if (on_ack != util::fault::Action::kNone) planned = on_ack;
    }
    switch (planned) {
        case util::fault::Action::kNetDrop:
            // The bytes vanish on the floor; the sender believes they went.
            return true;
        case util::fault::Action::kNetDelay:
            util::fault::execute(planned, "net-send", ordinal);  // sleeps
            break;
        case util::fault::Action::kNetPartialWrite: {
            // Half a frame, then the wire goes dead: the peer's
            // MessageReader must park the torn prefix and report EOF, never
            // surface a chimera frame.
            std::string frame(5, '\0');
            frame[0] = static_cast<char>(payload.size() & 0xff);
            frame[1] = static_cast<char>((payload.size() >> 8) & 0xff);
            frame[2] = static_cast<char>((payload.size() >> 16) & 0xff);
            frame[3] = static_cast<char>((payload.size() >> 24) & 0xff);
            frame[4] = static_cast<char>(type);
            frame += payload;
            frame.resize(frame.size() > 2 ? frame.size() / 2 : frame.size());
            ::write(fd, frame.data(), frame.size());
            ::shutdown(fd, SHUT_RDWR);
            return false;
        }
        case util::fault::Action::kNetDisconnect:
            ::shutdown(fd, SHUT_RDWR);
            return false;
        default:
            break;
    }
    return wire::write_message(fd, type, payload);
}

std::int64_t frames_sent() {
    return g_frames_sent.load(std::memory_order_relaxed);
}

void reset_frames_sent() {
    g_frames_sent.store(0, std::memory_order_relaxed);
    g_acks_sent.store(0, std::memory_order_relaxed);
}

std::string encode_join(const std::string& fingerprint,
                        std::int64_t capacity) {
    return fingerprint + " " + std::to_string(capacity);
}

bool decode_join(const std::string& payload, std::string& fingerprint,
                 std::int64_t& capacity) {
    const auto space = payload.rfind(' ');
    if (space == std::string::npos || space == 0 ||
        space + 1 >= payload.size())
        return false;
    char* end = nullptr;
    const std::string cap = payload.substr(space + 1);
    const long long v = std::strtoll(cap.c_str(), &end, 10);
    if (end != cap.c_str() + cap.size() || v < 1) return false;
    fingerprint = payload.substr(0, space);
    capacity = v;
    return true;
}

std::string encode_join_ok(double heartbeat_ms, double lease_ms) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g %.17g", heartbeat_ms, lease_ms);
    return buf;
}

bool decode_join_ok(const std::string& payload, double& heartbeat_ms,
                    double& lease_ms) {
    double hb = 0.0, lease = 0.0;
    if (std::sscanf(payload.c_str(), "%lf %lf", &hb, &lease) != 2)
        return false;
    heartbeat_ms = hb;
    lease_ms = lease;
    return true;
}

std::string encode_fail(std::int64_t cell_index, const std::string& reason) {
    return std::to_string(cell_index) + " " + reason;
}

bool decode_fail(const std::string& payload, std::int64_t& cell_index,
                 std::string& reason) {
    const auto space = payload.find(' ');
    if (space == std::string::npos || space + 1 > payload.size())
        return false;
    char* end = nullptr;
    const std::string idx = payload.substr(0, space);
    const long long v = std::strtoll(idx.c_str(), &end, 10);
    if (end != idx.c_str() + idx.size() || v < 0) return false;
    cell_index = v;
    reason = payload.substr(space + 1);
    return true;
}

}  // namespace xs::sweep::net
