#include "sweep/pool.h"

#include "util/log.h"

#include <chrono>
#include <cmath>
#include <csignal>

#include <fcntl.h>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

namespace xs::sweep {

namespace {

double now_ms() {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

void close_fd(int& fd) {
    if (fd >= 0) ::close(fd);
    fd = -1;
}

std::string describe_exit(int wstatus) {
    if (WIFSIGNALED(wstatus))
        return std::string("killed by signal ") +
               std::to_string(WTERMSIG(wstatus));
    if (WIFEXITED(wstatus))
        return "exited with status " + std::to_string(WEXITSTATUS(wstatus));
    return "died (status " + std::to_string(wstatus) + ")";
}

}  // namespace

WorkerPool::WorkerPool(std::vector<std::string> cmd,
                       std::int64_t restart_budget)
    : cmd_(std::move(cmd)), restarts_left_(restart_budget) {}

WorkerPool::~WorkerPool() {
    for (PoolWorker& w : workers_) {
        if (!w.alive) continue;
        ::kill(w.pid, SIGKILL);
        ::waitpid(w.pid, nullptr, 0);
        close_fd(w.deal_fd);
        close_fd(w.ack_fd);
        w.alive = false;
    }
}

// Fork+exec one worker wired to fresh deal/ack pipes. The parent-held pipe
// ends are CLOEXEC so later-spawned siblings don't inherit them — a worker
// holding another worker's pipe would mask that worker's EOF-on-death.
// Everything the child needs (argv buffers included) is built before fork:
// between fork and exec only async-signal-safe calls run, which a forked
// child of a threaded process is restricted to.
bool WorkerPool::spawn_slot(PoolWorker& w) {
    int deal[2];  // [0] = child read, [1] = parent write
    int ack[2];   // [0] = parent read, [1] = child write
    if (::pipe(deal) != 0) return false;
    if (::pipe(ack) != 0) {
        ::close(deal[0]);
        ::close(deal[1]);
        return false;
    }
    ::fcntl(deal[1], F_SETFD, FD_CLOEXEC);
    ::fcntl(ack[0], F_SETFD, FD_CLOEXEC);
    ::fcntl(ack[0], F_SETFL, O_NONBLOCK);

    std::vector<std::string> args = cmd_;
    args.push_back("--worker");
    args.push_back("--wire-in=" + std::to_string(deal[0]));
    args.push_back("--wire-out=" + std::to_string(ack[1]));
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (std::string& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);

    const pid_t pid = ::fork();
    if (pid < 0) {
        ::close(deal[0]);
        ::close(deal[1]);
        ::close(ack[0]);
        ::close(ack[1]);
        return false;
    }
    if (pid == 0) {
        ::execv(argv[0], argv.data());
        ::_exit(127);  // exec failed; the parent sees EOF + exit 127
    }
    ::close(deal[0]);
    ::close(ack[1]);
    w.pid = pid;
    w.deal_fd = deal[1];
    w.ack_fd = ack[0];
    w.reader.reset(w.ack_fd);
    w.alive = true;
    w.ready = false;
    w.dealt = -1;
    w.deadline = 0.0;
    return true;
}

bool WorkerPool::spawn(std::size_t n) {
    workers_.resize(n);
    for (PoolWorker& w : workers_)
        if (!w.alive && !spawn_slot(w)) return false;
    return true;
}

std::size_t WorkerPool::alive_count() const {
    std::size_t n = 0;
    for (const PoolWorker& w : workers_)
        if (w.alive) ++n;
    return n;
}

std::size_t WorkerPool::busy_count() const {
    std::size_t n = 0;
    for (const PoolWorker& w : workers_)
        if (w.alive && w.dealt >= 0) ++n;
    return n;
}

void WorkerPool::kill(std::size_t i) {
    if (workers_[i].alive) ::kill(workers_[i].pid, SIGKILL);
}

std::string WorkerPool::reap_and_respawn(std::size_t i, bool& respawned) {
    PoolWorker& w = workers_[i];
    int wstatus = 0;
    ::waitpid(w.pid, &wstatus, 0);
    const std::string detail = describe_exit(wstatus);
    close_fd(w.deal_fd);
    close_fd(w.ack_fd);
    w.alive = false;
    w.dealt = -1;
    w.deadline = 0.0;
    respawned = false;
    if (restarts_left_ > 0) {
        --restarts_left_;
        if (spawn_slot(w)) {
            ++restarts_;
            respawned = true;
        }
    }
    return detail;
}

void WorkerPool::shutdown(double grace_ms, util::metrics::Snapshot* merged) {
    // Ask nicely, give the pool a moment, then insist.
    for (PoolWorker& w : workers_) {
        if (!w.alive) continue;
        wire::write_message(w.deal_fd, wire::MsgType::kShutdown, "");
        close_fd(w.deal_fd);
    }
    const double grace_deadline = now_ms() + grace_ms;
#if XS_TELEMETRY_ENABLED
    // Each worker answers kShutdown with one kMetrics frame before exiting;
    // fold those into `merged` under the same grace deadline the reaper
    // uses. A worker that dies without the frame just contributes nothing —
    // telemetry never blocks shutdown past the grace.
    if (merged != nullptr) {
        for (PoolWorker& w : workers_) {
            if (!w.alive) continue;
            wire::Message msg;
            while (true) {
                if (w.reader.pop(msg)) {  // buffered frames survive EOF
                    if (msg.type == wire::MsgType::kMetrics) {
                        util::metrics::Snapshot snap;
                        if (util::metrics::from_json(msg.payload, snap))
                            util::metrics::merge(*merged, snap);
                        else
                            util::log_warn(
                                "pool: discarding an unparsable metrics "
                                "frame from worker pid " +
                                std::to_string(w.pid));
                    }
                    continue;  // late hellos/acks carry nothing actionable
                }
                if (w.reader.finished()) break;
                const double left = grace_deadline - now_ms();
                if (left <= 0.0) break;
                pollfd pfd{w.ack_fd, POLLIN, 0};
                ::poll(&pfd, 1, static_cast<int>(std::ceil(left)));
                w.reader.fill();
            }
        }
    }
#else
    (void)merged;
#endif
    for (PoolWorker& w : workers_) {
        if (!w.alive) continue;
        int wstatus = 0;
        while (true) {
            const pid_t got = ::waitpid(w.pid, &wstatus, WNOHANG);
            if (got == w.pid || got < 0) break;
            if (now_ms() > grace_deadline) {
                ::kill(w.pid, SIGKILL);
                ::waitpid(w.pid, &wstatus, 0);
                break;
            }
            ::usleep(10 * 1000);
        }
        close_fd(w.ack_fd);
        w.alive = false;
    }
}

}  // namespace xs::sweep
