// Sharded, resumable execution of a SweepSpec grid (DESIGN.md §7).
//
// Cells are dealt round-robin onto `shards` logical shards and the shards
// run concurrently on the process-wide worker pool; every completed cell is
// appended to a JSONL manifest (sweep/manifest.h) so an interrupted sweep
// resumes with --resume, skipping finished cells. Per-cell RNG seeds derive
// from the cell's stable group id — never from shard or completion order —
// and sweep cells cold-start their circuit solves, so the aggregate CSV is
// byte-identical at any shard count, with or without interruption.
#pragma once

#include "core/experiments.h"
#include "sweep/manifest.h"
#include "sweep/spec.h"

#include <cstdint>
#include <string>
#include <vector>

namespace xs::sweep {

struct SweepOptions {
    // Logical shards; 0 = one per pool worker. Cell→shard assignment is
    // index % shards, fixed by expansion order.
    std::int64_t shards = 0;
    // Skip cells already recorded in the manifest (fresh runs truncate it).
    bool resume = false;
    std::string csv_name = "sweep.csv";
    std::string manifest_name = "sweep_manifest.jsonl";
    // Execute at most this many new cells, then stop (negative = no limit).
    // Smoke runs and the resume tests use this as a deterministic
    // mid-sweep interruption.
    std::int64_t max_cells = -1;
    // Per-cell wall-time budget in milliseconds; 0 disables budgeting.
    // Every cell's elapsed ms is recorded in the manifest (wall_ms) either
    // way; cells over budget log a warning and count into
    // SweepSummary::cells_over_budget.
    double cell_budget_ms = 0.0;
    // Escalate budget overruns to a hard failure: the sweep still finishes
    // its dispatched cells (and records them in the manifest, so --resume
    // loses nothing), then throws listing the overrun count.
    bool cell_budget_abort = false;
};

// One aggregation group (= one CSV row): all repeats of a grid point.
struct GroupRow {
    SweepCell cell;  // repeat-0 representative
    std::int64_t repeats_total = 0;
    std::int64_t repeats_done = 0;
    double software_acc = 0.0;
    double acc_mean = 0.0, acc_std = 0.0;
    double nf_mean = 0.0, nf_std = 0.0;
    double energy_pj = 0.0;
    std::int64_t tiles = 0;
    std::int64_t unconverged = 0;  // summed over repeats

    bool complete() const { return repeats_done == repeats_total; }
};

struct SweepSummary {
    std::vector<GroupRow> rows;  // expansion order; complete and partial
    std::int64_t cells_total = 0;
    std::int64_t cells_executed = 0;
    std::int64_t cells_resumed = 0;   // taken from the manifest
    std::int64_t cells_pending = 0;   // skipped by max_cells
    std::int64_t cells_over_budget = 0;  // executed cells over cell_budget_ms
    std::string csv_path;
    std::string manifest_path;
};

// Deterministic per-cell RNG seed: a function of the master seed and the
// cell's identity only (FNV-1a over the cell's seed_key, offset by the
// repeat). The backend axis is deliberately excluded: cells differing only
// in backend evaluate the same stochastic draws, so backend comparisons
// isolate model error.
std::uint64_t cell_seed(std::uint64_t master_seed, const SweepCell& cell);

class SweepRunner {
public:
    SweepRunner(core::ExperimentContext& ctx, SweepSpec spec, SweepOptions opts);

    // Prepare shared models (each once), execute pending cells sharded,
    // append the manifest, and write the aggregate CSV (complete groups
    // only, expansion order).
    SweepSummary run();

private:
    core::ExperimentContext& ctx_;
    SweepSpec spec_;
    SweepOptions opts_;
};

// Paper-style accuracy-vs-crossbar-size table: one row per group modulo the
// size axis, one column per size ("mean±std" cells; incomplete groups "--").
std::string accuracy_vs_size_table(const SweepSummary& summary);

// Expanded-grid preview for --dry-run: per-axis values, cell/group counts,
// the distinct models the grid would prepare (train or load), and the
// backends exercised. Pure formatting — nothing is trained or executed.
std::string dry_run_report(const core::ExperimentContext& ctx,
                           const SweepSpec& spec);

}  // namespace xs::sweep
