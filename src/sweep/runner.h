// Sharded, resumable execution of a SweepSpec grid (DESIGN.md §7).
//
// Work units are dealt round-robin onto `shards` logical shards and the
// shards run concurrently on the process-wide worker pool; every completed
// cell is appended to a JSONL manifest (sweep/manifest.h) so an interrupted
// sweep resumes with --resume, skipping finished cells. A unit is normally
// one grid point's pending repeats, evaluated in a single lane-batched pass
// (run_sweep_group); warm-start and nf-only sweeps, and --repeat-batch=off,
// fall back to one-cell units (run_sweep_cell). Per-cell RNG seeds derive
// from the cell's stable group id — never from shard, batching, or
// completion order — and sweep cells cold-start their circuit solves, so
// the aggregate CSV is byte-identical at any shard count, with either
// batching mode, with or without interruption.
//
// For crash isolation, the supervisor (sweep/supervisor.h) executes the
// same grid in forked worker *processes*; it shares this header's cell
// execution, fingerprinting, resume loading, and aggregation, so the two
// execution engines cannot drift apart — a supervised sweep's aggregate CSV
// is byte-identical to a single-process run of the same spec.
#pragma once

#include "core/experiments.h"
#include "sweep/manifest.h"
#include "sweep/spec.h"
#include "util/metrics.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace xs::sweep {

struct SweepOptions {
    // Logical shards; 0 = one per pool worker. Cell→shard assignment is
    // index % shards, fixed by expansion order.
    std::int64_t shards = 0;
    // Skip cells already recorded in the manifest (fresh runs truncate it).
    bool resume = false;
    std::string csv_name = "sweep.csv";
    std::string manifest_name = "sweep_manifest.jsonl";
    // Execute at most this many new cells, then stop (negative = no limit).
    // Smoke runs and the resume tests use this as a deterministic
    // mid-sweep interruption.
    std::int64_t max_cells = -1;
    // Per-cell wall-time budget in milliseconds; 0 disables budgeting.
    // In-process (SweepRunner): every cell's elapsed ms is recorded in the
    // manifest (wall_ms) either way; cells over budget log a warning and
    // count into SweepSummary::cells_over_budget. Under the supervisor the
    // budget is a hard watchdog deadline: a worker still holding the cell
    // past it is SIGKILLed and the cell re-dealt (DESIGN.md §9).
    double cell_budget_ms = 0.0;
    // Escalate budget overruns to a hard failure: the sweep still finishes
    // its dispatched cells (and records them in the manifest, so --resume
    // loses nothing), then throws listing the overrun count.
    bool cell_budget_abort = false;
    // Emit a progress heartbeat on stderr every this many seconds while
    // cells execute (cells done/failed/retried, rate, ETA, and — under the
    // supervisor — per-worker liveness). 0 disables the heartbeat.
    double progress_sec = 0.0;
    // Evaluate all pending repeats of a grid point in one lane-batched pass
    // (run_sweep_group): the group's repeats share the deterministic mapping
    // work, one compiled-instance set, and one inference engine. Cold-start
    // lanes are bit-identical to sequential per-cell execution, so the
    // aggregate CSV does not depend on this switch; warm-start and nf-only
    // sweeps fall back to per-cell execution either way. Off = the legacy
    // one-evaluation-per-cell path (what supervisor/service workers always
    // use), kept reachable for A/B timing and the equivalence smoke.
    bool repeat_batch = true;
};

// One aggregation group (= one CSV row): all repeats of a grid point.
struct GroupRow {
    SweepCell cell;  // repeat-0 representative
    std::int64_t repeats_total = 0;
    std::int64_t repeats_done = 0;    // completed ok (failed cells excluded)
    std::int64_t repeats_failed = 0;  // quarantined cells in this group
    double software_acc = 0.0;
    double acc_mean = 0.0, acc_std = 0.0;
    double nf_mean = 0.0, nf_std = 0.0;
    double energy_pj = 0.0;
    std::int64_t tiles = 0;
    std::int64_t solver_failures = 0;  // summed over repeats

    bool complete() const { return repeats_done == repeats_total; }
};

struct SweepSummary {
    std::vector<GroupRow> rows;  // expansion order; complete and partial
    std::int64_t cells_total = 0;
    std::int64_t cells_executed = 0;
    std::int64_t cells_resumed = 0;   // taken from the manifest (ok + failed)
    std::int64_t cells_pending = 0;   // skipped by max_cells
    std::int64_t cells_over_budget = 0;  // executed cells over cell_budget_ms
    // Robustness accounting (populated by the supervisor; the in-process
    // runner only carries failed cells forward from a resumed manifest).
    std::int64_t cells_failed = 0;          // quarantined, in the grid
    std::vector<std::string> failed_cells;  // their ids, expansion order
    std::int64_t worker_restarts = 0;
    std::int64_t watchdog_kills = 0;
    std::int64_t cell_retries = 0;  // supervisor re-deals after crash/hang/fail
    std::int64_t manifest_lines_skipped = 0;  // corrupt lines ignored on resume
    // Multi-host service accounting (sweep/service.h; zero elsewhere).
    std::int64_t hosts_joined = 0;    // successful kJoin handshakes, cumulative
    std::int64_t duplicate_acks = 0;  // acks deduped against recorded results
    // Merged telemetry snapshot (util/metrics.h JSON schema): this process
    // plus — under the supervisor — every worker's kMetrics frame. Also
    // appended to the manifest as an uncounted {"metrics": ...} record.
    // Empty when telemetry is compiled out.
    std::string metrics_json;
    std::string csv_path;
    std::string manifest_path;
};

// Deterministic per-cell RNG seed: a function of the master seed and the
// cell's identity only (FNV-1a over the cell's seed_key, offset by the
// repeat). The backend axis is deliberately excluded: cells differing only
// in backend evaluate the same stochastic draws, so backend comparisons
// isolate model error.
std::uint64_t cell_seed(std::uint64_t master_seed, const SweepCell& cell);

// ---- building blocks shared by SweepRunner and the supervisor ----
// Both execution engines compose exactly these, so their aggregate CSVs
// cannot diverge.

// Execute one grid cell in the calling process: resolve the prepared
// (cached) model, build the cell's EvalConfig, evaluate, attach energy.
// One cell is one Monte-Carlo draw, but it still rides the compiled-
// instance path (a single-lane batched evaluation, bit-identical to the
// sequential loop via the scalar solver fallback), so the supervisor's and
// service's per-cell workers share the pre-packed GEMM instances and the
// compile/forward overlap while staying byte-comparable with batched
// in-process runs.
CellResult run_sweep_cell(core::ExperimentContext& ctx, const SweepSpec& spec,
                          const SweepCell& cell);

// Execute all `cells` (repeats of ONE grid point, any subset, ≥1) in a
// single lane-batched evaluation: one model resolve, one compiled-instance
// set per repeat (each seeded with its own cell_seed), one batched inference
// pass. Returns one CellResult per input cell, in order, with the group wall
// time split evenly across them. With cold-start solves every lane is
// bit-identical to run_sweep_cell on the same cell; callers gate warm-start
// sweeps off this path themselves (SweepRunner::run does). Requires an
// inference pass — nf_only specs are rejected.
std::vector<CellResult> run_sweep_group(core::ExperimentContext& ctx,
                                        const SweepSpec& spec,
                                        const std::vector<const SweepCell*>& cells);

// The configuration fingerprint recorded in (and checked against) the
// manifest: experiment context + solve determinism + RNG sampler tag.
std::string sweep_config_fingerprint(const core::ExperimentContext& ctx,
                                     const SweepSpec& spec);

// Resume support: load the manifest, warn (loudly, with a count) about
// corrupt lines, and refuse a fingerprint mismatch. Returns recorded
// results (ok and failed); `summary` gets manifest_lines_skipped and — so
// telemetry totals accumulate across resumes instead of resetting — the
// prior run's metrics record into metrics_json (see merge_prior_metrics).
// `had_config` reports whether the manifest already carries a fingerprint.
std::map<std::string, CellResult> load_resume_state(
    const std::string& manifest_path, const std::string& config_fp,
    SweepSummary& summary, bool& had_config);

// Fold a resumed manifest's prior {"metrics":…} record (inner JSON; "" is a
// no-op) into `snap`, so the record appended at the end of this run carries
// the whole sweep's totals — every execution engine calls this before
// ManifestWriter::record_metrics.
void merge_prior_metrics(const std::string& prior_json,
                         util::metrics::Snapshot& snap);

// Aggregate `results` over the grid into summary.rows (expansion order) and
// write the aggregate CSV (complete groups only, fixed formatting). Failed
// cells never aggregate: their groups are incomplete, excluded from the
// CSV, and accounted in summary.cells_failed / failed_cells.
void aggregate_and_write_csv(const std::vector<SweepCell>& cells,
                             const SweepSpec& spec,
                             const std::map<std::string, CellResult>& results,
                             SweepSummary& summary);

class SweepRunner {
public:
    SweepRunner(core::ExperimentContext& ctx, SweepSpec spec, SweepOptions opts);

    // Prepare shared models (each once), execute pending cells sharded,
    // append the manifest, and write the aggregate CSV (complete groups
    // only, expansion order).
    SweepSummary run();

private:
    core::ExperimentContext& ctx_;
    SweepSpec spec_;
    SweepOptions opts_;
};

// Paper-style accuracy-vs-crossbar-size table: one row per group modulo the
// size axis, one column per size ("mean±std" cells; incomplete groups "--").
std::string accuracy_vs_size_table(const SweepSummary& summary);

// Expanded-grid preview for --dry-run: per-axis values, cell/group counts,
// the distinct models the grid would prepare (train or load), and the
// backends exercised. Pure formatting — nothing is trained or executed.
std::string dry_run_report(const core::ExperimentContext& ctx,
                           const SweepSpec& spec);

}  // namespace xs::sweep
