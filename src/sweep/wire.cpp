#include "sweep/wire.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <poll.h>
#include <unistd.h>

namespace xs::sweep::wire {

namespace {

// Little-endian u32, independent of host byte order (coordinator and worker
// are always the same binary on the same host today, but the frame layout
// should not silently depend on that).
void put_u32(char* out, std::uint32_t v) {
    out[0] = static_cast<char>(v & 0xff);
    out[1] = static_cast<char>((v >> 8) & 0xff);
    out[2] = static_cast<char>((v >> 16) & 0xff);
    out[3] = static_cast<char>((v >> 24) & 0xff);
}

std::uint32_t get_u32(const char* in) {
    return static_cast<std::uint32_t>(static_cast<unsigned char>(in[0])) |
           (static_cast<std::uint32_t>(static_cast<unsigned char>(in[1])) << 8) |
           (static_cast<std::uint32_t>(static_cast<unsigned char>(in[2])) << 16) |
           (static_cast<std::uint32_t>(static_cast<unsigned char>(in[3])) << 24);
}

bool write_all(int fd, const char* data, std::size_t len) {
    while (len > 0) {
        const ssize_t n = ::write(fd, data, len);
        if (n < 0) {
            if (errno == EINTR) continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK) {
                // Nonblocking fd with a full buffer mid-frame: dropping the
                // remaining bytes would tear the frame for the peer, and
                // retrying the write immediately would busy-loop. Park on
                // poll until the fd drains (a dead peer surfaces as
                // POLLERR/POLLHUP and the next write fails with EPIPE).
                pollfd pfd{fd, POLLOUT, 0};
                ::poll(&pfd, 1, -1);
                continue;
            }
            return false;
        }
        data += n;
        len -= static_cast<std::size_t>(n);
    }
    return true;
}

bool read_all(int fd, char* data, std::size_t len) {
    while (len > 0) {
        const ssize_t n = ::read(fd, data, len);
        if (n < 0) {
            if (errno == EINTR) continue;
            return false;
        }
        if (n == 0) return false;  // EOF mid-frame
        data += n;
        len -= static_cast<std::size_t>(n);
    }
    return true;
}

}  // namespace

bool write_message(int fd, MsgType type, const std::string& payload) {
    if (fd < 0 || payload.size() > kMaxPayload) return false;
    std::string frame(5 + payload.size(), '\0');
    put_u32(frame.data(), static_cast<std::uint32_t>(payload.size()));
    frame[4] = static_cast<char>(type);
    std::memcpy(frame.data() + 5, payload.data(), payload.size());
    return write_all(fd, frame.data(), frame.size());
}

bool read_message(int fd, Message& out) {
    char header[5];
    if (!read_all(fd, header, sizeof(header))) return false;
    const std::uint32_t len = get_u32(header);
    if (len > kMaxPayload) return false;
    out.type = static_cast<MsgType>(header[4]);
    out.payload.resize(len);
    return len == 0 || read_all(fd, out.payload.data(), len);
}

bool MessageReader::fill() {
    if (finished()) return false;
    char chunk[4096];
    for (;;) {
        const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
        if (n > 0) {
            buf_.append(chunk, static_cast<std::size_t>(n));
            continue;
        }
        if (n == 0) {
            eof_ = true;
            return false;
        }
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
        eof_ = true;  // hard read error: treat as a dead peer
        return false;
    }
}

bool MessageReader::pop(Message& out) {
    if (buf_.size() < 5) return false;
    const std::uint32_t len = get_u32(buf_.data());
    if (len > kMaxPayload) {
        corrupt_ = true;
        return false;
    }
    if (buf_.size() < 5 + static_cast<std::size_t>(len)) return false;
    out.type = static_cast<MsgType>(buf_[4]);
    out.payload.assign(buf_, 5, len);
    buf_.erase(0, 5 + static_cast<std::size_t>(len));
    return true;
}

std::string encode_deal(std::int64_t cell_index, std::int64_t attempt) {
    return std::to_string(cell_index) + " " + std::to_string(attempt);
}

bool decode_deal(const std::string& payload, std::int64_t& cell_index,
                 std::int64_t& attempt) {
    long long idx = 0, att = 0;
    if (std::sscanf(payload.c_str(), "%lld %lld", &idx, &att) != 2) return false;
    cell_index = idx;
    attempt = att;
    return true;
}

}  // namespace xs::sweep::wire
