#include "sweep/spec.h"

#include "tensor/tensor.h"  // tensor::check
#include "util/csv.h"       // util::fmt_g

#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>

namespace xs::sweep {

namespace {

using util::fmt_g;

// Checked number parsing: the whole token must be consumed, so a typo like
// "O.1" or "1e-2x" fails loudly instead of running a different grid.
double parse_double(const std::string& text) {
    char* end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    tensor::check(end == text.c_str() + text.size() && !text.empty(),
                  "sweep: malformed number '" + text + "'");
    return v;
}

std::int64_t parse_int(const std::string& text) {
    char* end = nullptr;
    const std::int64_t v = std::strtoll(text.c_str(), &end, 10);
    tensor::check(end == text.c_str() + text.size() && !text.empty(),
                  "sweep: malformed integer '" + text + "'");
    return v;
}

std::vector<std::string> split(const std::string& s, char sep) {
    std::vector<std::string> out;
    std::stringstream ss(s);
    std::string item;
    while (std::getline(ss, item, sep))
        if (!item.empty()) out.push_back(item);
    return out;
}

std::string strip(const std::string& s) {
    std::size_t b = s.find_first_not_of(" \t\r");
    if (b == std::string::npos) return "";
    std::size_t e = s.find_last_not_of(" \t\r");
    return s.substr(b, e - b + 1);
}

Mitigation parse_mitigation(const std::string& name) {
    Mitigation m;
    if (name == "none") return m;
    for (const std::string& part : split(name, '+')) {
        if (part == "wct") {
            m.wct = true;
        } else if (part == "rearrange" || part == "r") {
            m.rearrange = true;
        } else if (part == "comp" || part == "compensate") {
            m.compensate = true;
        } else {
            tensor::check(false, "sweep: unknown mitigation '" + name + "'");
        }
    }
    return m;
}

PruneSetting parse_prune(const std::string& text) {
    PruneSetting p;
    const auto colon = text.find(':');
    p.method = prune::method_from_name(text.substr(0, colon));
    if (colon != std::string::npos)
        p.sparsity = parse_double(text.substr(colon + 1));
    tensor::check(p.method == prune::Method::kNone || p.sparsity > 0.0,
                  "sweep: pruned setting '" + text + "' needs a sparsity "
                  "(method:sparsity)");
    return p;
}

FaultSetting parse_fault(const std::string& text) {
    FaultSetting f;
    const auto colon = text.find(':');
    f.p_stuck_min = parse_double(text.substr(0, colon));
    if (colon != std::string::npos)
        f.p_stuck_max = parse_double(text.substr(colon + 1));
    return f;
}

}  // namespace

std::string Mitigation::name() const {
    std::string out;
    const auto add = [&out](const char* part) {
        if (!out.empty()) out += '+';
        out += part;
    };
    if (wct) add("wct");
    if (rearrange) add("rearrange");
    if (compensate) add("comp");
    return out.empty() ? "none" : out;
}

namespace {

// Shared label builder: group_id() and seed_key() differ only in whether the
// backend axis participates (seed_key() omits it so backends share draws).
std::string cell_label(const SweepCell& cell, bool with_size,
                       bool elide_defaults, bool with_backend) {
    const SweepCell defaults;
    std::ostringstream os;
    os << cell.variant << "-c" << cell.num_classes << "/"
       << prune::method_name(cell.prune.method);
    if (cell.prune.method != prune::Method::kNone)
        os << ":" << fmt_g(cell.prune.sparsity);
    os << "/" << cell.mitigation.name();
    if (with_size) os << "/x" << cell.xbar_size;
    if (!elide_defaults || cell.sigma != defaults.sigma)
        os << "/sig" << fmt_g(cell.sigma);
    if (!elide_defaults || cell.parasitic_scale != defaults.parasitic_scale)
        os << "/par" << fmt_g(cell.parasitic_scale);
    if (!elide_defaults ||
        cell.faults.p_stuck_min != defaults.faults.p_stuck_min ||
        cell.faults.p_stuck_max != defaults.faults.p_stuck_max)
        os << "/f" << fmt_g(cell.faults.p_stuck_min) << ":"
           << fmt_g(cell.faults.p_stuck_max);
    // Like the backend below, the continuous-write default is elided even
    // from group_id(): manifests recorded before the quantization axis
    // existed keep their ids and still resume.
    if (cell.quant_levels != defaults.quant_levels)
        os << "/q" << cell.quant_levels;
    // Unlike the other axes the default backend is elided even from
    // group_id(): circuit cells keep their pre-backend-axis ids, so
    // manifests recorded before the axis existed still resume.
    if (with_backend && cell.backend != defaults.backend)
        os << "/bk-" << xbar::backend_name(cell.backend);
    return os.str();
}

}  // namespace

std::string SweepCell::group_id() const { return cell_label(*this, true, false, true); }

std::string SweepCell::seed_key() const {
    return cell_label(*this, true, false, false);
}

std::string SweepCell::label(bool with_size, bool elide_defaults) const {
    return cell_label(*this, with_size, elide_defaults, true);
}

std::string SweepCell::id() const {
    return group_id() + "/r" + std::to_string(repeat);
}

std::vector<SweepCell> SweepSpec::expand() const {
    std::vector<SweepCell> cells;
    for (const auto& variant : variants)
        for (const auto classes : class_counts)
            for (const auto& prune : prunes)
                for (const auto& mitigation : mitigations)
                    for (const auto size : sizes)
                        for (const auto sigma : sigmas)
                            for (const auto scale : parasitic_scales)
                                for (const auto& fault : faults)
                                    for (const auto quant : quant_levels)
                                        for (const auto backend : backends)
                                            for (std::int64_t r = 0; r < repeats; ++r) {
                                                SweepCell c;
                                                c.variant = variant;
                                                c.num_classes = classes;
                                                c.prune = prune;
                                                c.mitigation = mitigation;
                                                c.xbar_size = size;
                                                c.sigma = sigma;
                                                c.parasitic_scale = scale;
                                                c.faults = fault;
                                                c.quant_levels = quant;
                                                c.backend = backend;
                                                c.repeat = r;
                                                cells.push_back(std::move(c));
                                            }
    return cells;
}

std::string SweepSpec::describe() const {
    std::ostringstream os;
    auto axis = [&os](const char* name, std::size_t n) {
        os << name << "=" << n << " ";
    };
    axis("variants", variants.size());
    axis("classes", class_counts.size());
    axis("prunes", prunes.size());
    axis("mitigations", mitigations.size());
    axis("sizes", sizes.size());
    axis("sigmas", sigmas.size());
    axis("parasitic-scales", parasitic_scales.size());
    axis("faults", faults.size());
    axis("quant-levels", quant_levels.size());
    axis("backends", backends.size());
    if (nf_only) os << "nf-only ";
    os << "repeats=" << repeats << " -> "
       << variants.size() * class_counts.size() * prunes.size() *
              mitigations.size() * sizes.size() * sigmas.size() *
              parasitic_scales.size() * faults.size() * quant_levels.size() *
              backends.size() * static_cast<std::size_t>(repeats)
       << " cells";
    return os.str();
}

std::map<std::string, std::string> read_spec_file(const std::string& path) {
    std::ifstream in(path);
    tensor::check(in.good(), "sweep: cannot read spec file '" + path + "'");
    std::map<std::string, std::string> kv;
    std::string line;
    while (std::getline(in, line)) {
        const auto hash = line.find('#');
        if (hash != std::string::npos) line.erase(hash);
        line = strip(line);
        if (line.empty()) continue;
        const auto eq = line.find('=');
        tensor::check(eq != std::string::npos,
                      "sweep: spec line without '=': '" + line + "'");
        kv[strip(line.substr(0, eq))] = strip(line.substr(eq + 1));
    }
    return kv;
}

SweepSpec parse_sweep_spec(const util::Flags& flags) {
    std::map<std::string, std::string> file;
    if (flags.has("spec")) file = read_spec_file(flags.get_string("spec", ""));
    // A misspelled axis key would otherwise silently run the default grid —
    // the worst failure mode for a reproducibility tool.
    static const std::set<std::string> known = {
        "variants", "classes",          "prune",      "mitigations",
        "sizes",    "sigmas",           "faults",     "parasitic-scales",
        "quant-levels", "backends",     "sweep-repeats", "warm-start",
        "nf-only"};
    for (const auto& [key, unused] : file) {
        (void)unused;
        tensor::check(known.count(key) != 0,
                      "sweep: unknown spec-file key '" + key + "'");
    }

    // CLI wins over the spec file; the file wins over built-in defaults.
    const auto value = [&](const std::string& key) -> std::string {
        if (flags.has(key)) return flags.get_string(key, "");
        const auto it = file.find(key);
        return it == file.end() ? "" : it->second;
    };

    SweepSpec spec;
    if (const auto v = value("variants"); !v.empty()) spec.variants = split(v, ',');
    if (const auto v = value("classes"); !v.empty()) {
        spec.class_counts.clear();
        for (const auto& item : split(v, ','))
            spec.class_counts.push_back(parse_int(item));
    }
    if (const auto v = value("prune"); !v.empty()) {
        spec.prunes.clear();
        for (const auto& item : split(v, ',')) spec.prunes.push_back(parse_prune(item));
    }
    if (const auto v = value("mitigations"); !v.empty()) {
        spec.mitigations.clear();
        for (const auto& item : split(v, ','))
            spec.mitigations.push_back(parse_mitigation(item));
    }
    if (const auto v = value("sizes"); !v.empty()) {
        spec.sizes.clear();
        for (const auto& item : split(v, ','))
            spec.sizes.push_back(parse_int(item));
    }
    if (const auto v = value("sigmas"); !v.empty()) {
        spec.sigmas.clear();
        for (const auto& item : split(v, ','))
            spec.sigmas.push_back(parse_double(item));
    }
    if (const auto v = value("parasitic-scales"); !v.empty()) {
        spec.parasitic_scales.clear();
        for (const auto& item : split(v, ','))
            spec.parasitic_scales.push_back(parse_double(item));
    }
    if (const auto v = value("faults"); !v.empty()) {
        spec.faults.clear();
        for (const auto& item : split(v, ','))
            spec.faults.push_back(parse_fault(item));
    }
    if (const auto v = value("quant-levels"); !v.empty()) {
        spec.quant_levels.clear();
        for (const auto& item : split(v, ','))
            spec.quant_levels.push_back(parse_int(item));
    }
    if (const auto v = value("backends"); !v.empty()) {
        spec.backends.clear();
        for (const auto& item : split(v, ','))
            spec.backends.push_back(xbar::backend_from_name(item));
    }
    if (const auto v = value("sweep-repeats"); !v.empty())
        spec.repeats = parse_int(v);
    if (const auto v = value("warm-start"); !v.empty())
        spec.warm_start_solves = v == "true" || v == "1" || v == "yes";
    if (const auto v = value("nf-only"); !v.empty())
        spec.nf_only = v == "true" || v == "1" || v == "yes";
    tensor::check(spec.repeats >= 1, "sweep: sweep-repeats must be >= 1");
    return spec;
}

}  // namespace xs::sweep
