// Crash-isolated multi-process sweep execution (DESIGN.md §9).
//
// The supervisor runs a SweepSpec grid with the cells executed in forked
// worker *processes* instead of threads, so a crash (solver bug, OOM kill,
// injected fault) or a hang takes down one worker and one attempt of one
// cell — never the sweep. The coordinator deals cells over anonymous pipes
// (sweep/wire.h), records each acknowledged cell durably in the manifest
// (the fsync'd append *is* the ack), re-deals cells whose worker died or
// blew the watchdog deadline, retries with exponential backoff, and
// quarantines poison cells after the retry budget instead of aborting.
//
// Determinism: workers execute the exact run_sweep_cell() the in-process
// SweepRunner uses, with per-cell seeds derived from the cell identity, so
// the aggregate CSV is byte-identical at any worker count, across kills,
// retries, and resumes — and identical to a single-process run of the same
// spec (minus quarantined cells' groups).
//
// Worker processes are the *same binary* re-exec'd with --worker
// --wire-in=<fd> --wire-out=<fd> (fork alone is unsafe under the process
// thread pool; fork+exec restarts clean). The driver wires this up with
// worker_command_from_argv() + worker_main().
#pragma once

#include "core/experiments.h"
#include "sweep/runner.h"
#include "sweep/spec.h"

#include <cstdint>
#include <string>
#include <vector>

namespace xs::sweep {

struct SupervisorOptions {
    // Worker processes to fork (capped at the number of pending cells).
    std::int64_t workers = 2;
    // argv prefix of the worker command: the executable plus every
    // experiment/spec flag, so the child reconstructs an identical
    // ExperimentContext and SweepSpec. The supervisor appends
    // --worker --wire-in=<fd> --wire-out=<fd>.
    std::vector<std::string> worker_cmd;
    // Re-deal a failed cell this many times after its first attempt before
    // quarantining it (total attempts = retries + 1).
    std::int64_t max_cell_retries = 2;
    // First re-deal waits this long, doubling per attempt (250, 500, 1000…).
    double retry_backoff_ms = 250.0;
    // Worker respawns allowed across the pool before dead slots are retired
    // instead of restarted. The sweep only aborts when every slot is gone
    // and undone cells remain (the manifest keeps the resume state).
    std::int64_t max_worker_restarts = 4;
};

// Execute the sweep under process supervision. Shares resume loading,
// fingerprinting, cell execution, and aggregation with SweepRunner::run();
// opts.cell_budget_ms becomes the per-cell watchdog deadline (a worker
// holding a cell past it is SIGKILLed and the cell re-dealt). Throws only
// on coordinator-side failures (manifest I/O, fingerprint mismatch, the
// whole pool dead); per-cell failures are quarantined, not thrown.
SweepSummary run_supervised(core::ExperimentContext& ctx, const SweepSpec& spec,
                            const SweepOptions& opts,
                            const SupervisorOptions& sup);

// Child-process entry: read kDeal frames from in_fd, execute cells, write
// kAck (the cell's manifest line) / kFail (error text) to out_fd until
// kShutdown or EOF. Returns the process exit code.
int worker_main(core::ExperimentContext& ctx, const SweepSpec& spec,
                int in_fd, int out_fd);

// Build SupervisorOptions::worker_cmd from this process's argv: the
// executable resolved via /proc/self/exe (argv[0] may be PATH-relative and
// the cwd may differ) plus every original flag except the supervision ones
// (--worker, --wire-*, --workers), which the supervisor re-appends per
// worker.
std::vector<std::string> worker_command_from_argv(int argc, char** argv);

}  // namespace xs::sweep
