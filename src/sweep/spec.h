// Declarative experiment grids over the paper's evaluation axes. A SweepSpec
// names the values of every axis — model variant, class count, pruning
// method/sparsity, mitigation (WCT / rearrangement), crossbar size, device
// sigma, parasitic scale, stuck-fault rates, and the Monte-Carlo repeat —
// and expand() emits the full cartesian product as SweepCells. The runner
// (sweep/runner.h) executes cells sharded and resumable; cells that differ
// only in `repeat` aggregate into one mean±std row of the output CSV.
//
// Specs parse from CLI flags, optionally overlaid on a `key = value` spec
// file (--spec=<path>; '#' starts a comment; CLI flags win over the file).
#pragma once

#include "prune/prune.h"
#include "util/flags.h"
#include "xbar/backend.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace xs::sweep {

// One mitigation setting (paper §VI): weight-clipping training, crossbar-
// column rearrangement, and/or the [12]-style IR-drop column-compensation
// baseline, independently toggleable.
struct Mitigation {
    bool wct = false;
    bool rearrange = false;
    bool compensate = false;

    // "none" or the active toggles joined by '+' in wct/rearrange/comp
    // order (e.g. "wct+rearrange", "rearrange+comp") — also the parse
    // syntax.
    std::string name() const;
};

struct PruneSetting {
    prune::Method method = prune::Method::kNone;
    double sparsity = 0.0;
};

struct FaultSetting {
    double p_stuck_min = 0.0;  // SA0 rate
    double p_stuck_max = 0.0;  // SA1 rate
};

// One fully-resolved grid point.
struct SweepCell {
    std::string variant = "vgg11";
    std::int64_t num_classes = 10;
    PruneSetting prune;
    Mitigation mitigation;
    std::int64_t xbar_size = 32;
    double sigma = 0.10;
    double parasitic_scale = 1.0;
    FaultSetting faults;
    // Conductance write-quantization levels; 0 = continuous writes (keep
    // whatever the experiment context's evaluation default is).
    std::int64_t quant_levels = 0;
    xbar::BackendKind backend = xbar::BackendKind::kCircuit;
    std::int64_t repeat = 0;

    // Stable identifier of the cell's aggregation group (everything except
    // the repeat axis); the manifest keys off it.
    std::string group_id() const;
    // group_id() + "/r<repeat>" — the manifest key of this cell.
    std::string id() const;
    // group_id() without the backend axis: the per-cell RNG seed keys off
    // this, so cells that differ only in backend see identical stochastic
    // draws — a fast-vs-circuit accuracy gap is pure model error, never a
    // different Monte-Carlo draw.
    std::string seed_key() const;
    // Display label: group_id() optionally without the size axis and with
    // axes still at their SweepCell defaults elided (table row headers).
    std::string label(bool with_size, bool elide_defaults) const;
};

struct SweepSpec {
    std::vector<std::string> variants = {"vgg11"};
    std::vector<std::int64_t> class_counts = {10};
    std::vector<PruneSetting> prunes = {{}};
    std::vector<Mitigation> mitigations = {{}};
    std::vector<std::int64_t> sizes = {16, 32, 64};
    std::vector<double> sigmas = {0.10};
    std::vector<double> parasitic_scales = {1.0};
    std::vector<FaultSetting> faults = {{}};
    // Write-quantization axis (ablation bench): conductance level counts,
    // 0 = continuous.
    std::vector<std::int64_t> quant_levels = {0};
    // Crossbar evaluation backends (xbar/backend.h): circuit / fast / ideal.
    std::vector<xbar::BackendKind> backends = {xbar::BackendKind::kCircuit};
    // Monte-Carlo repeats; expanded as the innermost axis so one group's
    // cells are contiguous in expansion order.
    std::int64_t repeats = 2;
    // NF-measurement mode (paper Fig. 3(d)): cells run measure_nf() with
    // device variation disabled instead of a full inference pass — NF is a
    // parasitics metric and this makes each cell deterministic, so drivers
    // normally pair nf_only with repeats = 1. Accuracy columns read 0.
    bool nf_only = false;
    // Cold-start every circuit solve inside sweep cells. Warm starting
    // leaves sub-float-resolution residuals that depend on how tiles are
    // partitioned, and the partition depends on where a cell runs (inline
    // in a shard chunk vs top-level); cold starts make cell results
    // bit-identical at any --shards value (DESIGN.md §7).
    bool warm_start_solves = false;

    // Full cartesian grid in deterministic order (repeat innermost).
    std::vector<SweepCell> expand() const;
    // Human-readable axis summary, e.g. for a run banner.
    std::string describe() const;
};

// Parse a spec file into a key→value map: one `key = value` per line,
// '#' comments, blank lines ignored. Throws on unreadable files.
std::map<std::string, std::string> read_spec_file(const std::string& path);

// Resolve the sweep axes from `flags`, overlaid on --spec=<file> when given.
// Axis keys (CLI flag == spec-file key):
//   variants=vgg11,vgg16       classes=10,100
//   prune=none,cf:0.8,xcs:0.8  mitigations=none,rearrange,wct,comp,wct+r
//   sizes=16,32,64             sigmas=0.10
//   parasitic-scales=1.0       faults=0:0,0.01:0.001   (SA0:SA1)
//   quant-levels=0,64,16       backends=circuit,fast,ideal
//   sweep-repeats=2            warm-start=false
//   nf-only=false
SweepSpec parse_sweep_spec(const util::Flags& flags);

}  // namespace xs::sweep
