// Fault-tolerant multi-host sweep service (DESIGN.md §11).
//
// One coordinator (examples/sweep_serve.cpp) owns the grid, the manifest,
// and the aggregate CSV; any number of agent hosts (sweep_runner
// --agent=host:port) connect over TCP (sweep/net.h), each running the PR 6
// forked worker pool locally. Cells are scheduled as *leases*
// (sweep/lease.h): a deal carries a deadline derived from the per-cell
// wall-time budget, and a cell still unacknowledged past it is re-dealt to
// another host with exponential backoff — while the slow host's connection
// stays open, so its eventual late acknowledgement arrives and is deduped
// against the recorded results. The fsync'd manifest append is the only ack
// that counts: a duplicate ack (slow-but-alive host, or an agent replaying
// its outbox after a reconnect) is counted and dropped, never recorded
// twice, so the aggregate CSV stays byte-identical to a single-process run
// at any host count, across kills, partitions, and reconnects.
//
// Liveness is heartbeat-based: the join handshake tells the agent the
// service's heartbeat cadence and lease duration, both sides beacon every
// interval, and a host silent for `heartbeat_misses` intervals is declared
// dead — its in-flight cells re-dealt, its connection closed. Agents
// reconnect with capped exponential backoff and a fresh kJoin handshake
// (the spec/experiment fingerprint is re-checked on every join; a mismatch
// is rejected loudly), buffering outbound acks while disconnected.
#pragma once

#include "core/experiments.h"
#include "sweep/runner.h"
#include "sweep/spec.h"

#include <cstdint>
#include <string>
#include <vector>

namespace xs::sweep {

struct ServiceOptions {
    // TCP port to listen on; ignored when listen_fd >= 0.
    std::uint16_t port = 7473;
    // Pre-bound listening socket (tests bind an ephemeral port with
    // net::listen_on(0) and pass it here); the service owns and closes it.
    int listen_fd = -1;
    // Heartbeat cadence dictated to agents in the join reply, and the
    // service's own beacon interval.
    double heartbeat_ms = 1000.0;
    // A host silent for this many heartbeat intervals is declared dead.
    std::int64_t heartbeat_misses = 3;
    // Re-deal a failed cell this many times after its first attempt before
    // quarantining it (total attempts = retries + 1). Lease expiries and
    // host deaths consume attempts like worker crashes do.
    std::int64_t max_cell_retries = 2;
    // First re-deal waits this long, doubling per attempt.
    double retry_backoff_ms = 250.0;
    // Start draining immediately: deal nothing, wait out in-flight leases,
    // collect per-host metrics, aggregate what the manifest holds, and
    // return (the manifest keeps the sweep resumable). request_drain()
    // flips the same switch mid-run (SIGTERM in sweep_serve).
    bool drain = false;
};

// Run the sweep as a coordinator service. Shares resume loading,
// fingerprinting, lease scheduling, and aggregation with the supervisor;
// opts.cell_budget_ms becomes the lease duration. Blocks until every
// pending cell is acknowledged or quarantined (or the service drains).
// Throws only on coordinator-side failures (manifest I/O, listen failure);
// host deaths and per-cell failures are retried or quarantined.
SweepSummary run_service(core::ExperimentContext& ctx, const SweepSpec& spec,
                         const SweepOptions& opts, const ServiceOptions& svc);

// Async-signal-safe drain switch for the running service (and a test hook):
// stop dealing, finish in-flight leases, shut down, stay resumable.
void request_drain();
bool drain_requested();

struct AgentOptions {
    std::string host = "127.0.0.1";
    std::uint16_t port = 7473;
    // Local worker processes; advertised to the service as this host's
    // deal capacity.
    std::int64_t workers = 2;
    // Worker argv prefix, as SupervisorOptions::worker_cmd.
    std::vector<std::string> worker_cmd;
    std::int64_t max_worker_restarts = 4;
    // Reconnect backoff: first retry waits backoff_ms, doubling per
    // consecutive failure, capped at backoff_cap_ms; a successful join
    // resets the ladder.
    double reconnect_backoff_ms = 250.0;
    double reconnect_backoff_cap_ms = 5000.0;
    // Consecutive failed connect/join attempts before the agent gives up
    // (negative = keep trying forever).
    std::int64_t max_reconnects = -1;
};

// Run this process as an agent host: prepare every distinct model the grid
// can deal (agents don't know their assignment up front), spawn the local
// worker pool, join the service, and bridge deals to workers and acks back
// to the service until it sends kShutdown. Returns a process exit code;
// a fingerprint rejection is fatal (no reconnect loop can fix it).
int run_agent(core::ExperimentContext& ctx, const SweepSpec& spec,
              const AgentOptions& opts);

}  // namespace xs::sweep
