// Lease-based cell scheduling shared by the single-host supervisor
// (sweep/supervisor.h) and the multi-host service (sweep/service.h) —
// DESIGN.md §9/§11.
//
// Both coordinators solve the same problem: a set of undone cells must each
// be dealt to exactly one executor at a time, re-dealt with exponential
// backoff when the attempt fails (executor death, hang, thrown error, lease
// expiry), and quarantined after the retry budget. The only difference is
// what an "executor" is (a forked worker process vs a remote agent host),
// so that stays an opaque owner token here and the two coordinators map it
// back to their own structures.
//
// A *lease* is a deal with a deadline: the coordinator derives it from the
// per-cell wall-time budget, and a cell still in flight past its deadline
// is taken back and re-dealt. The supervisor enforces expiry with SIGKILL
// (the worker is local); the service just re-deals and lets the slow host's
// eventual duplicate ack be deduped against the recorded results — the
// durable manifest append is the only ack that counts, so determinism is
// untouched either way.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace xs::sweep {

class LeaseScheduler {
public:
    struct Entry {
        std::size_t cell_index = 0;  // into the expanded grid
        std::int64_t attempts = 0;   // deals so far (also indexes the backoff)
        double eligible_at = 0.0;    // steady-clock ms; backoff gate
        double deadline = 0.0;       // lease expiry; 0 = no lease
        std::int64_t owner = -1;     // executor token while in flight
        bool in_flight = false;
        bool done = false;  // acknowledged ok or quarantined
    };

    // `max_retries` re-deals after the first attempt (total attempts =
    // max_retries + 1); first re-deal backs off `backoff_ms`, doubling per
    // attempt.
    LeaseScheduler(std::int64_t max_retries, double backoff_ms)
        : max_retries_(max_retries), backoff_ms_(backoff_ms) {}

    void add(std::size_t cell_index) {
        Entry e;
        e.cell_index = cell_index;
        cells_.push_back(e);
    }

    std::size_t size() const { return cells_.size(); }
    bool all_done() const { return done_count_ == cells_.size(); }
    std::size_t done_count() const { return done_count_; }
    std::size_t in_flight_count() const;
    const Entry& at(std::size_t p) const { return cells_[p]; }

    // Lowest-index cell that is neither done nor in flight and whose
    // backoff has expired; -1 when nothing is eligible right now.
    std::int64_t next_eligible(double now) const;

    // Lease cell p to `owner`: consumes an attempt, arms the deadline
    // (now + lease_ms; 0 disables).
    void deal(std::size_t p, double now, double lease_ms, std::int64_t owner);

    // The deal never reached an executor (e.g. the write raced its death):
    // roll the attempt back so the retry is free.
    void undeal(std::size_t p);

    // Cell p completed (its manifest append is durable).
    void ack(std::size_t p);

    enum class FailOutcome {
        kRetry,       // backoff armed; the cell becomes eligible later
        kQuarantine,  // retry budget exhausted; caller records the failure
    };
    // The in-flight attempt on p failed (executor died, threw, or the lease
    // expired). On kQuarantine the cell is marked done — the caller must
    // append the failure-taxonomy manifest record.
    FailOutcome fail(std::size_t p, double now);

    // In-flight cells whose lease deadline has passed.
    std::vector<std::size_t> expired(double now) const;

    // Milliseconds until the next scheduling event (a backoff expiry or a
    // lease deadline), clamped to [0, cap]; cap when nothing is pending.
    double next_event_ms(double now, double cap) const;

    std::int64_t retries() const { return retries_; }
    std::int64_t attempts_of(std::size_t p) const {
        return cells_[p].attempts;
    }

private:
    std::vector<Entry> cells_;
    std::int64_t max_retries_;
    double backoff_ms_;
    std::size_t done_count_ = 0;
    std::int64_t retries_ = 0;  // re-deals scheduled by fail()
};

}  // namespace xs::sweep
