#include "sweep/lease.h"

#include <algorithm>
#include <cmath>

namespace xs::sweep {

std::size_t LeaseScheduler::in_flight_count() const {
    std::size_t n = 0;
    for (const Entry& e : cells_)
        if (e.in_flight) ++n;
    return n;
}

std::int64_t LeaseScheduler::next_eligible(double now) const {
    for (std::size_t i = 0; i < cells_.size(); ++i) {
        const Entry& e = cells_[i];
        if (!e.done && !e.in_flight && e.eligible_at <= now)
            return static_cast<std::int64_t>(i);
    }
    return -1;
}

void LeaseScheduler::deal(std::size_t p, double now, double lease_ms,
                          std::int64_t owner) {
    Entry& e = cells_[p];
    ++e.attempts;
    e.in_flight = true;
    e.owner = owner;
    e.deadline = lease_ms > 0.0 ? now + lease_ms : 0.0;
}

void LeaseScheduler::undeal(std::size_t p) {
    Entry& e = cells_[p];
    --e.attempts;
    e.in_flight = false;
    e.owner = -1;
    e.deadline = 0.0;
}

void LeaseScheduler::ack(std::size_t p) {
    Entry& e = cells_[p];
    e.in_flight = false;
    e.owner = -1;
    e.deadline = 0.0;
    if (!e.done) {
        e.done = true;
        ++done_count_;
    }
}

LeaseScheduler::FailOutcome LeaseScheduler::fail(std::size_t p, double now) {
    Entry& e = cells_[p];
    e.in_flight = false;
    e.owner = -1;
    e.deadline = 0.0;
    if (e.attempts > max_retries_) {
        e.done = true;
        ++done_count_;
        return FailOutcome::kQuarantine;
    }
    e.eligible_at =
        now + backoff_ms_ * std::pow(2.0, static_cast<double>(e.attempts - 1));
    ++retries_;
    return FailOutcome::kRetry;
}

std::vector<std::size_t> LeaseScheduler::expired(double now) const {
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < cells_.size(); ++i) {
        const Entry& e = cells_[i];
        if (e.in_flight && e.deadline > 0.0 && now >= e.deadline)
            out.push_back(i);
    }
    return out;
}

double LeaseScheduler::next_event_ms(double now, double cap) const {
    double timeout = cap;
    for (const Entry& e : cells_) {
        if (e.done) continue;
        if (e.in_flight && e.deadline > 0.0)
            timeout = std::min(timeout, e.deadline - now);
        else if (!e.in_flight && e.eligible_at > now)
            timeout = std::min(timeout, e.eligible_at - now);
    }
    return std::max(timeout, 0.0);
}

}  // namespace xs::sweep
