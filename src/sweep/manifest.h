// Crash-safe sweep progress log: one flat JSON object per line, appended and
// flushed as each cell completes. --resume reads the manifest back, skips
// every recorded cell, and aggregates from the recorded numbers — doubles
// are written with 17 significant digits so the string round-trips exactly
// and a resumed sweep reproduces the same aggregate CSV byte for byte. A
// truncated trailing line (crash mid-write) is ignored on load.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <fstream>
#include <string>

namespace xs::sweep {

// Everything a finished cell contributes to aggregation (plus wall_ms and
// backend, which are informational only and never aggregated).
struct CellResult {
    double accuracy = 0.0;      // % on the test set
    double nf_mean = 0.0;       // tile-average non-ideality factor
    double energy_pj = 0.0;     // estimated per-inference MAC-pass energy
    double software_acc = 0.0;  // the prepared model's software accuracy (%)
    std::int64_t tiles = 0;
    std::int64_t unconverged = 0;
    double wall_ms = 0.0;
    // Crossbar backend that produced this cell (xbar/backend.h). Manifests
    // predating the backend axis decode to the then-only "circuit".
    std::string backend = "circuit";
};

// {"cell":"<id>","accuracy":...,...} — one line, no trailing newline.
std::string encode_manifest_line(const std::string& cell_id, const CellResult& r);

// Inverse of encode; tolerant of field order. Returns false (and leaves the
// outputs untouched) for malformed or truncated lines.
bool decode_manifest_line(const std::string& line, std::string& cell_id,
                          CellResult& r);

// Load every well-formed line; later duplicates of a cell id win.
std::map<std::string, CellResult> load_manifest(const std::string& path);

// The manifest's first line records the configuration fingerprint
// ({"sweep_config":"…"}) so a resume under different experiment flags is
// refused instead of silently mixing two configurations' results. Returns
// "" when the manifest is absent or predates fingerprinting.
std::string load_manifest_config(const std::string& path);

// Serialized append-and-flush writer shared by all sweep shards.
class ManifestWriter {
public:
    // append=false truncates (fresh sweep); append=true resumes.
    ManifestWriter(const std::string& path, bool append);

    void record_config(const std::string& fingerprint);
    void record(const std::string& cell_id, const CellResult& r);
    bool ok() const { return out_.good(); }

private:
    std::mutex mu_;
    std::ofstream out_;
};

}  // namespace xs::sweep
