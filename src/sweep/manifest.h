// Crash-safe sweep progress log: one flat JSON object per line, appended as
// each cell completes. Every append is write + flush + fsync *before* the
// cell counts as acknowledged, so a cell recorded is a cell durably
// recorded — a power cut after the ack loses nothing. --resume reads the
// manifest back, skips every recorded cell, and aggregates from the
// recorded numbers; doubles are written with 17 significant digits so the
// string round-trips exactly and a resumed sweep reproduces the same
// aggregate CSV byte for byte.
//
// Failure taxonomy (DESIGN.md §9): cells the supervisor quarantines after
// exhausting retries are recorded as {"cell":…,"status":"failed",
// "reason":…,"attempts":N} instead of aborting the sweep. Failed cells are
// skipped on resume like finished ones but never aggregate into the CSV.
//
// The loader survives a corrupt manifest, not just a truncated tail: torn
// mid-file records (a crash between write and the next append leaves the
// next record glued onto the partial line) are skipped and counted, and the
// caller warns loudly with the count.
#pragma once

#include <cstdint>
#include <cstdio>
#include <map>
#include <mutex>
#include <string>

namespace xs::sweep {

// Everything a finished cell contributes to aggregation (plus wall_ms,
// backend and attempts, which are informational only and never aggregated).
struct CellResult {
    double accuracy = 0.0;      // % on the test set
    double nf_mean = 0.0;       // tile-average non-ideality factor
    double energy_pj = 0.0;     // estimated per-inference MAC-pass energy
    double software_acc = 0.0;  // the prepared model's software accuracy (%)
    std::int64_t tiles = 0;
    // Circuit solves that hit max_sweeps without reaching tolerance, summed
    // over the cell's tiles (propagated from xbar/solver.* through the
    // backend and TileStageContext). Manifests predating the rename decode
    // their "unconverged" field; ones predating the field decode to 0.
    std::int64_t solver_failures = 0;
    double wall_ms = 0.0;
    // Crossbar backend that produced this cell (xbar/backend.h). Manifests
    // predating the backend axis decode to the then-only "circuit".
    std::string backend = "circuit";
    // "ok" for a completed cell; "failed" for a quarantined poison cell.
    std::string status = "ok";
    std::string reason;         // failure taxonomy text for failed cells
    std::int64_t attempts = 1;  // deal attempts this outcome consumed

    bool failed() const { return status != "ok"; }
};

// {"cell":"<id>","accuracy":...,...} — one line, no trailing newline.
// Failed cells encode status/reason/attempts and omit the result numbers.
std::string encode_manifest_line(const std::string& cell_id, const CellResult& r);

// Inverse of encode; tolerant of field order and of the legacy
// "unconverged" spelling. Returns false (and leaves the outputs untouched)
// for malformed, torn, or truncated lines — including a record with another
// record glued onto it (mid-line corruption).
bool decode_manifest_line(const std::string& line, std::string& cell_id,
                          CellResult& r);

struct ManifestLoad {
    std::map<std::string, CellResult> results;  // later duplicates win
    std::string config;                // fingerprint line, "" when absent
    // Inner JSON of the last {"metrics":…} record (last-wins, like results:
    // a resumed run appends a fresh record and the newest one carries the
    // accumulated totals forward). "" when the manifest has none.
    std::string metrics_json;
    std::int64_t skipped_lines = 0;    // corrupt/torn lines ignored
};

// Load every well-formed line, the recorded config fingerprint, and the
// count of corrupt lines skipped (the caller should warn when nonzero).
ManifestLoad load_manifest_file(const std::string& path);

// Compatibility wrappers over load_manifest_file().
std::map<std::string, CellResult> load_manifest(const std::string& path);
std::string load_manifest_config(const std::string& path);

// Serialized durable append writer shared by all sweep shards (and used by
// the supervisor, where the append is the deal acknowledgement). Each
// record is written, flushed, and fsync'd before record() returns.
class ManifestWriter {
public:
    // append=false truncates (fresh sweep); append=true resumes.
    ManifestWriter(const std::string& path, bool append);
    ~ManifestWriter();
    ManifestWriter(const ManifestWriter&) = delete;
    ManifestWriter& operator=(const ManifestWriter&) = delete;

    // First line of a fresh manifest: {"sweep_config":"<fingerprint>"} so a
    // resume under different experiment flags is refused instead of
    // silently mixing two configurations' results.
    void record_config(const std::string& fingerprint);
    void record(const std::string& cell_id, const CellResult& r);
    // Uncounted informational record appended at the end of a run:
    // {"metrics":<util/metrics.h snapshot JSON>}. The loader skips it
    // silently (nested JSON would otherwise trip the torn-record check).
    void record_metrics(const std::string& metrics_json);
    bool ok() const { return ok_; }

private:
    void write_line(const std::string& line, bool count_record);

    std::mutex mu_;
    std::FILE* f_ = nullptr;
    bool ok_ = true;
    std::int64_t records_ = 0;  // fault-injection site "record"
};

}  // namespace xs::sweep
