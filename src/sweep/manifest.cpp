#include "sweep/manifest.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace xs::sweep {

namespace {

// 17 significant digits: the shortest precision that round-trips every
// double exactly through strtod.
void append_number(std::string& out, double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out += buf;
}

void append_field(std::string& out, const char* key, double v) {
    out += ",\"";
    out += key;
    out += "\":";
    append_number(out, v);
}

// Scan `line` for `"key":` and parse the number that follows. The manifest
// only ever contains flat objects with one string field (the id), so this
// does not need a general JSON parser.
bool find_number(const std::string& line, const char* key, double& out) {
    const std::string needle = "\"" + std::string(key) + "\":";
    const auto pos = line.find(needle);
    if (pos == std::string::npos) return false;
    const char* start = line.c_str() + pos + needle.size();
    char* end = nullptr;
    const double v = std::strtod(start, &end);
    if (end == start) return false;
    out = v;
    return true;
}

}  // namespace

std::string encode_manifest_line(const std::string& cell_id, const CellResult& r) {
    std::string out = "{\"cell\":\"" + cell_id + "\"";
    out += ",\"backend\":\"" + r.backend + "\"";
    append_field(out, "accuracy", r.accuracy);
    append_field(out, "nf_mean", r.nf_mean);
    append_field(out, "energy_pj", r.energy_pj);
    append_field(out, "software_acc", r.software_acc);
    append_field(out, "tiles", static_cast<double>(r.tiles));
    append_field(out, "unconverged", static_cast<double>(r.unconverged));
    append_field(out, "wall_ms", r.wall_ms);
    out += "}";
    return out;
}

bool decode_manifest_line(const std::string& line, std::string& cell_id,
                          CellResult& r) {
    if (line.empty() || line.front() != '{' || line.back() != '}') return false;
    const auto id_pos = line.find("\"cell\":\"");
    if (id_pos == std::string::npos) return false;
    const auto id_start = id_pos + std::strlen("\"cell\":\"");
    const auto id_end = line.find('"', id_start);
    if (id_end == std::string::npos) return false;

    CellResult parsed;
    double tiles = 0.0, unconverged = 0.0;
    if (!find_number(line, "accuracy", parsed.accuracy)) return false;
    if (!find_number(line, "nf_mean", parsed.nf_mean)) return false;
    if (!find_number(line, "energy_pj", parsed.energy_pj)) return false;
    if (!find_number(line, "software_acc", parsed.software_acc)) return false;
    if (!find_number(line, "tiles", tiles)) return false;
    if (!find_number(line, "unconverged", unconverged)) return false;
    find_number(line, "wall_ms", parsed.wall_ms);  // informational; optional
    // Optional (manifests predate the backend axis): "circuit" otherwise.
    const std::string bk_needle = "\"backend\":\"";
    if (const auto bk_pos = line.find(bk_needle); bk_pos != std::string::npos) {
        const auto bk_start = bk_pos + bk_needle.size();
        const auto bk_end = line.find('"', bk_start);
        if (bk_end == std::string::npos) return false;
        parsed.backend = line.substr(bk_start, bk_end - bk_start);
    }
    parsed.tiles = static_cast<std::int64_t>(tiles);
    parsed.unconverged = static_cast<std::int64_t>(unconverged);

    cell_id = line.substr(id_start, id_end - id_start);
    r = parsed;
    return true;
}

std::string load_manifest_config(const std::string& path) {
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) {
        const std::string needle = "\"sweep_config\":\"";
        const auto pos = line.find(needle);
        if (pos == std::string::npos) continue;
        const auto start = pos + needle.size();
        const auto end = line.find('"', start);
        if (end != std::string::npos) return line.substr(start, end - start);
    }
    return "";
}

std::map<std::string, CellResult> load_manifest(const std::string& path) {
    std::map<std::string, CellResult> out;
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) {
        std::string id;
        CellResult r;
        if (decode_manifest_line(line, id, r)) out[id] = r;
    }
    return out;
}

ManifestWriter::ManifestWriter(const std::string& path, bool append)
    : out_(path, append ? std::ios::app : std::ios::trunc) {}

void ManifestWriter::record_config(const std::string& fingerprint) {
    std::lock_guard<std::mutex> lock(mu_);
    out_ << "{\"sweep_config\":\"" << fingerprint << "\"}" << '\n';
    out_.flush();
}

void ManifestWriter::record(const std::string& cell_id, const CellResult& r) {
    std::lock_guard<std::mutex> lock(mu_);
    out_ << encode_manifest_line(cell_id, r) << '\n';
    out_.flush();
}

}  // namespace xs::sweep
