#include "sweep/manifest.h"

#include "util/faultinject.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <unistd.h>

namespace xs::sweep {

namespace {

// 17 significant digits: the shortest precision that round-trips every
// double exactly through strtod.
void append_number(std::string& out, double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out += buf;
}

void append_field(std::string& out, const char* key, double v) {
    out += ",\"";
    out += key;
    out += "\":";
    append_number(out, v);
}

// Reason strings carry exception text — escape the characters that would
// break the one-line flat-JSON format.
void append_escaped(std::string& out, const std::string& text) {
    for (const char c : text) {
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (c == '\n' || c == '\r') {
            out += ' ';
        } else {
            out += c;
        }
    }
}

std::string unescape(const std::string& text) {
    std::string out;
    out.reserve(text.size());
    for (std::size_t i = 0; i < text.size(); ++i) {
        if (text[i] == '\\' && i + 1 < text.size()) ++i;
        out += text[i];
    }
    return out;
}

// Scan `line` for `"key":` and parse the number that follows. The manifest
// only ever contains flat objects with a few string fields, so this does
// not need a general JSON parser.
bool find_number(const std::string& line, const char* key, double& out) {
    const std::string needle = "\"" + std::string(key) + "\":";
    const auto pos = line.find(needle);
    if (pos == std::string::npos) return false;
    const char* start = line.c_str() + pos + needle.size();
    char* end = nullptr;
    const double v = std::strtod(start, &end);
    if (end == start) return false;
    out = v;
    return true;
}

// Find `"key":"<value>"` honouring backslash escapes in the value. Returns
// false when the key is absent; `ok` reports whether the value terminated
// properly (an unterminated string means a torn line).
bool find_string(const std::string& line, const char* key, std::string& out,
                 bool& ok) {
    const std::string needle = "\"" + std::string(key) + "\":\"";
    const auto pos = line.find(needle);
    if (pos == std::string::npos) return false;
    const auto start = pos + needle.size();
    std::size_t end = start;
    while (end < line.size()) {
        if (line[end] == '\\') {
            end += 2;
            continue;
        }
        if (line[end] == '"') break;
        ++end;
    }
    ok = end < line.size();
    if (ok) out = unescape(line.substr(start, end - start));
    return true;
}

}  // namespace

std::string encode_manifest_line(const std::string& cell_id, const CellResult& r) {
    std::string out = "{\"cell\":\"" + cell_id + "\"";
    if (r.failed()) {
        out += ",\"status\":\"";
        append_escaped(out, r.status);
        out += "\",\"reason\":\"";
        append_escaped(out, r.reason);
        out += "\",\"backend\":\"" + r.backend + "\"";
        append_field(out, "attempts", static_cast<double>(r.attempts));
        out += "}";
        return out;
    }
    out += ",\"backend\":\"" + r.backend + "\"";
    append_field(out, "accuracy", r.accuracy);
    append_field(out, "nf_mean", r.nf_mean);
    append_field(out, "energy_pj", r.energy_pj);
    append_field(out, "software_acc", r.software_acc);
    append_field(out, "tiles", static_cast<double>(r.tiles));
    append_field(out, "solver_failures", static_cast<double>(r.solver_failures));
    append_field(out, "wall_ms", r.wall_ms);
    if (r.attempts > 1)
        append_field(out, "attempts", static_cast<double>(r.attempts));
    out += "}";
    return out;
}

bool decode_manifest_line(const std::string& line, std::string& cell_id,
                          CellResult& r) {
    if (line.empty() || line.front() != '{' || line.back() != '}') return false;
    // Mid-line corruption check: a torn record with the next append glued on
    // ("{\"cell\":\"a\",\"accu{\"cell\":\"b\",…}") still starts with '{' and
    // ends with '}', but a well-formed flat record contains exactly one of
    // each. Reject anything else rather than parse a chimera of two cells.
    if (std::count(line.begin(), line.end(), '{') != 1 ||
        std::count(line.begin(), line.end(), '}') != 1)
        return false;

    CellResult parsed;
    bool str_ok = false;
    std::string id;
    if (!find_string(line, "cell", id, str_ok) || !str_ok) return false;

    std::string status;
    if (find_string(line, "status", status, str_ok)) {
        if (!str_ok) return false;
        parsed.status = status;
    }
    double attempts = 1.0;
    if (find_number(line, "attempts", attempts))
        parsed.attempts = static_cast<std::int64_t>(attempts);
    if (find_string(line, "backend", parsed.backend, str_ok) && !str_ok)
        return false;

    if (parsed.failed()) {
        // Quarantined cell: no result numbers, just the taxonomy.
        if (find_string(line, "reason", parsed.reason, str_ok) && !str_ok)
            return false;
        cell_id = std::move(id);
        r = std::move(parsed);
        return true;
    }

    double tiles = 0.0, failures = 0.0;
    if (!find_number(line, "accuracy", parsed.accuracy)) return false;
    if (!find_number(line, "nf_mean", parsed.nf_mean)) return false;
    if (!find_number(line, "energy_pj", parsed.energy_pj)) return false;
    if (!find_number(line, "software_acc", parsed.software_acc)) return false;
    if (!find_number(line, "tiles", tiles)) return false;
    // Renamed in PR 6; legacy manifests spell it "unconverged", and ones
    // predating the field decode to 0 solver failures.
    if (!find_number(line, "solver_failures", failures))
        find_number(line, "unconverged", failures);
    find_number(line, "wall_ms", parsed.wall_ms);  // informational; optional
    parsed.tiles = static_cast<std::int64_t>(tiles);
    parsed.solver_failures = static_cast<std::int64_t>(failures);

    cell_id = std::move(id);
    r = std::move(parsed);
    return true;
}

ManifestLoad load_manifest_file(const std::string& path) {
    ManifestLoad load;
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty()) continue;
        // Telemetry summary record (nested JSON, so the exactly-one-brace
        // cell decoder would misread it as torn). Keep the inner snapshot,
        // last-wins: each run's record already folds in its predecessor's
        // totals, so the newest one is the whole history.
        if (line.compare(0, 12, "{\"metrics\":{") == 0) {
            if (line.back() == '}')
                load.metrics_json = line.substr(11, line.size() - 12);
            continue;
        }
        const auto cfg = line.find("\"sweep_config\":\"");
        if (cfg != std::string::npos) {
            const auto start = cfg + std::strlen("\"sweep_config\":\"");
            const auto end = line.find('"', start);
            if (end != std::string::npos)
                load.config = line.substr(start, end - start);
            continue;
        }
        std::string id;
        CellResult r;
        if (decode_manifest_line(line, id, r))
            load.results[id] = std::move(r);
        else
            ++load.skipped_lines;
    }
    return load;
}

std::map<std::string, CellResult> load_manifest(const std::string& path) {
    return load_manifest_file(path).results;
}

std::string load_manifest_config(const std::string& path) {
    return load_manifest_file(path).config;
}

ManifestWriter::ManifestWriter(const std::string& path, bool append)
    : f_(std::fopen(path.c_str(), append ? "ab" : "wb")) {
    ok_ = f_ != nullptr;
}

ManifestWriter::~ManifestWriter() {
    if (f_) std::fclose(f_);
}

void ManifestWriter::write_line(const std::string& line, bool count_record) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!f_) {
        ok_ = false;
        return;
    }
    std::string bytes = line;
    if (count_record &&
        util::fault::at("record", records_) == util::fault::Action::kTruncate) {
        // Simulate a crash mid-append: half the record, no newline. The
        // next record glues onto it — exactly the mid-line corruption the
        // resume parser must survive.
        bytes.resize(bytes.size() / 2);
    } else {
        bytes += '\n';
    }
    if (count_record) ++records_;
    if (std::fwrite(bytes.data(), 1, bytes.size(), f_) != bytes.size() ||
        std::fflush(f_) != 0 || ::fsync(fileno(f_)) != 0)
        ok_ = false;
}

void ManifestWriter::record_config(const std::string& fingerprint) {
    write_line("{\"sweep_config\":\"" + fingerprint + "\"}",
               /*count_record=*/false);
}

void ManifestWriter::record(const std::string& cell_id, const CellResult& r) {
    write_line(encode_manifest_line(cell_id, r), /*count_record=*/true);
}

void ManifestWriter::record_metrics(const std::string& metrics_json) {
    write_line("{\"metrics\":" + metrics_json + "}", /*count_record=*/false);
}

}  // namespace xs::sweep
