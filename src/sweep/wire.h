// Length-prefixed message framing for the sweep supervision pipes
// (DESIGN.md §9). The coordinator and its worker processes exchange small
// framed messages over anonymous pipes: a 4-byte little-endian payload
// length, a 1-byte type tag, then the payload bytes. Pipes deliver bytes in
// order but not in frames, so both ends reassemble; the coordinator side
// reads nonblocking through a buffering MessageReader (driven by poll),
// workers read blocking.
//
// Message flow:
//   worker → coordinator:  kHello  (ready for work)
//                          kAck    (payload = the cell's manifest JSONL line)
//                          kFail   (payload = error text; worker stays alive)
//                          kMetrics (payload = util/metrics.h snapshot JSON,
//                                    sent once in response to kShutdown)
//   coordinator → worker:  kDeal   (payload = "<cell index> <attempt>")
//                          kShutdown
//
// The kAck payload *is* the manifest line: the coordinator appends it to the
// durable manifest and that append is the acknowledgement — a worker that
// dies after computing but before the coordinator records loses nothing but
// wall time, because the cell is simply re-dealt and recomputes the same
// deterministic bytes.
#pragma once

#include <cstdint>
#include <string>

namespace xs::sweep::wire {

enum class MsgType : std::uint8_t {
    kHello = 1,
    kDeal = 2,
    kShutdown = 3,
    kAck = 4,
    kFail = 5,
    kMetrics = 6,
};

struct Message {
    MsgType type = MsgType::kHello;
    std::string payload;
};

// Payloads are manifest lines and error strings; anything larger than this
// is a corrupt stream, not a message.
constexpr std::uint32_t kMaxPayload = 1u << 20;

// Write one full frame (EINTR-safe, handles short writes). Returns false
// when the peer is gone (EPIPE/EBADF) or on any other write error.
bool write_message(int fd, MsgType type, const std::string& payload);

// Blocking read of one full frame. Returns false on EOF or a corrupt frame.
bool read_message(int fd, Message& out);

// Frame reassembly over a nonblocking fd. fill() drains whatever bytes are
// readable right now; pop() yields completed frames. EOF is sticky and
// reported only after every buffered frame has been popped.
class MessageReader {
public:
    explicit MessageReader(int fd = -1) : fd_(fd) {}
    void reset(int fd) {
        fd_ = fd;
        eof_ = false;
        corrupt_ = false;
        buf_.clear();
    }

    // Drain readable bytes into the buffer. Returns false once the stream
    // is finished (EOF or corrupt frame); buffered frames remain poppable.
    bool fill();
    bool pop(Message& out);
    bool finished() const { return eof_ || corrupt_; }

private:
    int fd_ = -1;
    bool eof_ = false;
    bool corrupt_ = false;
    std::string buf_;
};

// Deal payload codec: "<cell index> <attempt>" (both decimal).
std::string encode_deal(std::int64_t cell_index, std::int64_t attempt);
bool decode_deal(const std::string& payload, std::int64_t& cell_index,
                 std::int64_t& attempt);

}  // namespace xs::sweep::wire
