// Length-prefixed message framing for the sweep supervision transports
// (DESIGN.md §9/§11). Coordinators, agents, and worker processes exchange
// small framed messages: a 4-byte little-endian payload length, a 1-byte
// type tag, then the payload bytes. The framing is transport-agnostic —
// anonymous pipes for the single-host supervisor, TCP sockets for the
// multi-host service (sweep/net.h) — because both deliver bytes in order
// but not in frames; the receiving side reassembles, nonblocking reads
// through a buffering MessageReader (driven by poll), blocking reads
// through read_message().
//
// Message flow:
//   worker/agent → coordinator:
//       kHello  (ready for work; pipe transport only)
//       kJoin   (payload = "<fingerprint> <capacity>": an agent host offers
//                its worker capacity; a fingerprint mismatch is rejected)
//       kAck    (payload = the cell's manifest JSONL line)
//       kFail   (payload = error text on pipes;
//                "<cell index> <reason>" on sockets, where many cells are
//                in flight per peer and the text alone can't name the cell)
//       kHeartbeat (liveness beacon on the service cadence)
//       kMetrics (payload = util/metrics.h snapshot JSON,
//                 sent once in response to kShutdown)
//   coordinator → worker/agent:
//       kJoin   (payload = "<heartbeat_ms> <lease_ms>": join accepted,
//                here is the cadence and the per-deal lease budget)
//       kDeal   (payload = "<cell index> <attempt>")
//       kShutdown
//
// The kAck payload *is* the manifest line: the coordinator appends it to the
// durable manifest and that append is the acknowledgement — a worker that
// dies after computing but before the coordinator records loses nothing but
// wall time, because the cell is simply re-dealt and recomputes the same
// deterministic bytes. A *duplicate* ack (a slow-but-alive host finishing a
// cell whose lease already expired and was re-dealt) is deduped against the
// recorded results: the first durable append wins, later copies are
// dropped, so a cell is never double-recorded.
#pragma once

#include <cstdint>
#include <string>

namespace xs::sweep::wire {

enum class MsgType : std::uint8_t {
    kHello = 1,
    kDeal = 2,
    kShutdown = 3,
    kAck = 4,
    kFail = 5,
    kMetrics = 6,
    kJoin = 7,       // agent → service handshake / service → agent accept
    kHeartbeat = 8,  // liveness beacon (either direction, empty payload)
};

struct Message {
    MsgType type = MsgType::kHello;
    std::string payload;
};

// Payloads are manifest lines and error strings; anything larger than this
// is a corrupt stream, not a message.
constexpr std::uint32_t kMaxPayload = 1u << 20;

// Write one full frame (EINTR-safe, handles short writes). On a
// *nonblocking* fd a short write followed by EAGAIN polls for writability
// and resumes where it left off — the frame is either delivered whole or
// not at all, never torn, and the call never busy-loops (sockets hit this
// constantly; pipes rarely did). Returns false when the peer is gone
// (EPIPE/EBADF) or on any other write error.
bool write_message(int fd, MsgType type, const std::string& payload);

// Blocking read of one full frame. Returns false on EOF or a corrupt frame.
bool read_message(int fd, Message& out);

// Frame reassembly over a nonblocking fd. fill() drains whatever bytes are
// readable right now; pop() yields completed frames. EOF is sticky and
// reported only after every buffered frame has been popped.
class MessageReader {
public:
    explicit MessageReader(int fd = -1) : fd_(fd) {}
    void reset(int fd) {
        fd_ = fd;
        eof_ = false;
        corrupt_ = false;
        buf_.clear();
    }

    // Drain readable bytes into the buffer. Returns false once the stream
    // is finished (EOF or corrupt frame); buffered frames remain poppable.
    bool fill();
    bool pop(Message& out);
    bool finished() const { return eof_ || corrupt_; }

private:
    int fd_ = -1;
    bool eof_ = false;
    bool corrupt_ = false;
    std::string buf_;
};

// Deal payload codec: "<cell index> <attempt>" (both decimal).
std::string encode_deal(std::int64_t cell_index, std::int64_t attempt);
bool decode_deal(const std::string& payload, std::int64_t& cell_index,
                 std::int64_t& attempt);

}  // namespace xs::sweep::wire
