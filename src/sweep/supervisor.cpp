#include "sweep/supervisor.h"

#include "sweep/lease.h"
#include "sweep/pool.h"
#include "sweep/wire.h"
#include "tensor/tensor.h"
#include "util/csv.h"
#include "util/faultinject.h"
#include "util/log.h"
#include "util/metrics.h"

#include <algorithm>
#include <chrono>
#include <cerrno>
#include <cmath>
#include <csignal>
#include <cstring>
#include <set>
#include <string>

#include <poll.h>
#include <unistd.h>

namespace xs::sweep {

namespace {

double now_ms() {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

}  // namespace

int worker_main(core::ExperimentContext& ctx, const SweepSpec& spec,
                int in_fd, int out_fd) {
    util::set_log_prefix("[w" + std::to_string(::getpid()) + "] ");
    const std::vector<SweepCell> cells = spec.expand();
    if (!wire::write_message(out_fd, wire::MsgType::kHello, "")) return 1;

    wire::Message msg;
    while (wire::read_message(in_fd, msg)) {
        if (msg.type == wire::MsgType::kShutdown) {
#if XS_TELEMETRY_ENABLED
            // Parting gift: this process's telemetry, merged by the
            // coordinator into the sweep-wide snapshot.
            wire::write_message(
                out_fd, wire::MsgType::kMetrics,
                util::metrics::to_json(util::metrics::snapshot()));
#endif
            break;
        }
        if (msg.type != wire::MsgType::kDeal) {
            util::log_error("worker: unexpected message type " +
                            std::to_string(static_cast<int>(msg.type)));
            return 1;
        }
        std::int64_t index = -1, attempt = 0;
        if (!wire::decode_deal(msg.payload, index, attempt) || index < 0 ||
            index >= static_cast<std::int64_t>(cells.size())) {
            util::log_error("worker: malformed deal '" + msg.payload + "'");
            return 1;
        }
        const SweepCell& cell = cells[static_cast<std::size_t>(index)];
        XS_DLOG("worker: dealt cell " + cell.id() + " (attempt " +
                std::to_string(attempt + 1) + ")");
        try {
            // Fault-injection seam: crash/hang/fail here, by grid index, on
            // the configured attempt — the supervisor's recovery paths are
            // exercised by real SIGKILLs and real silence, not mocks.
            util::fault::execute(util::fault::at("cell", index, attempt),
                                 "cell", index);
            CellResult r = run_sweep_cell(ctx, spec, cell);
            r.attempts = attempt + 1;
            if (!wire::write_message(out_fd, wire::MsgType::kAck,
                                     encode_manifest_line(cell.id(), r)))
                return 1;
        } catch (const std::exception& e) {
            // Recoverable: report and stay alive for the next deal. The
            // coordinator owns the retry/quarantine decision.
            util::log_warn("worker: cell " + cell.id() + " failed: " +
                           e.what());
            if (!wire::write_message(out_fd, wire::MsgType::kFail, e.what()))
                return 1;
        }
    }
    return 0;
}

std::vector<std::string> worker_command_from_argv(int argc, char** argv) {
    std::vector<std::string> cmd;
    char exe[4096];
    const ssize_t n = ::readlink("/proc/self/exe", exe, sizeof(exe) - 1);
    if (n > 0) {
        exe[n] = '\0';
        cmd.push_back(exe);
    } else {
        cmd.push_back(argc > 0 ? argv[0] : "");
    }
    const auto supervision_flag = [](const std::string& a) {
        return a == "--worker" || a.rfind("--worker=", 0) == 0 ||
               a.rfind("--workers", 0) == 0 || a.rfind("--wire-in", 0) == 0 ||
               a.rfind("--wire-out", 0) == 0 || a.rfind("--agent", 0) == 0;
    };
    for (int i = 1; i < argc; ++i)
        if (!supervision_flag(argv[i])) cmd.push_back(argv[i]);
    return cmd;
}

SweepSummary run_supervised(core::ExperimentContext& ctx, const SweepSpec& spec,
                            const SweepOptions& opts,
                            const SupervisorOptions& sup) {
    tensor::check(!sup.worker_cmd.empty(),
                  "supervisor: worker_cmd is empty (use "
                  "worker_command_from_argv)");
    tensor::check(sup.workers >= 1, "supervisor: need at least one worker");

    const std::vector<SweepCell> cells = spec.expand();
    SweepSummary summary;
    summary.cells_total = static_cast<std::int64_t>(cells.size());
    summary.manifest_path = ctx.csv_path(opts.manifest_name);
    summary.csv_path = ctx.csv_path(opts.csv_name);

    const std::string config_fp = sweep_config_fingerprint(ctx, spec);
    std::map<std::string, CellResult> results;
    bool had_config = false;
    if (opts.resume)
        results = load_resume_state(summary.manifest_path, config_fp, summary,
                                    had_config);
    const std::string prior_metrics = summary.metrics_json;
    ManifestWriter manifest(summary.manifest_path, opts.resume);
    tensor::check(manifest.ok(), "supervisor: cannot open manifest '" +
                                     summary.manifest_path + "' for writing");
    if (!had_config) manifest.record_config(config_fp);

    // Undone cells in expansion order (resume skips recorded ones, failed
    // included), truncated by max_cells like the in-process runner.
    std::vector<std::size_t> undone;
    for (std::size_t i = 0; i < cells.size(); ++i)
        if (results.find(cells[i].id()) == results.end()) undone.push_back(i);
    summary.cells_resumed =
        summary.cells_total - static_cast<std::int64_t>(undone.size());
    if (opts.max_cells >= 0 &&
        undone.size() > static_cast<std::size_t>(opts.max_cells))
        undone.resize(static_cast<std::size_t>(opts.max_cells));
    summary.cells_pending = summary.cells_total - summary.cells_resumed -
                            static_cast<std::int64_t>(undone.size());

    LeaseScheduler sched(sup.max_cell_retries, sup.retry_backoff_ms);
    for (const std::size_t i : undone) sched.add(i);

    if (sched.size() == 0) {
        tensor::check(manifest.ok(),
                      "supervisor: manifest writes to '" +
                          summary.manifest_path + "' failed");
        aggregate_and_write_csv(cells, spec, results, summary);
#if XS_TELEMETRY_ENABLED
        util::metrics::Snapshot final_snap = util::metrics::snapshot();
        merge_prior_metrics(prior_metrics, final_snap);
        summary.metrics_json = util::metrics::to_json(final_snap);
        manifest.record_metrics(summary.metrics_json);
#endif
        return summary;
    }

    // Train (or load) every distinct model before forking: workers then
    // resolve the same specs from the on-disk model cache instead of each
    // training a private copy.
    {
        std::set<std::string> seen;
        for (const std::size_t i : undone) {
            const SweepCell& c = cells[i];
            core::ModelSpec ms = ctx.spec(c.variant, c.num_classes,
                                          c.prune.method, c.prune.sparsity,
                                          c.mitigation.wct);
            if (seen.insert(ms.key()).second) ctx.prepared(ms);
        }
    }

    // A worker dying mid-deal surfaces as EPIPE on our write, not a signal.
    ::signal(SIGPIPE, SIG_IGN);

    const std::size_t nworkers = static_cast<std::size_t>(
        std::min<std::int64_t>(sup.workers,
                               static_cast<std::int64_t>(sched.size())));
    WorkerPool pool(sup.worker_cmd, sup.max_worker_restarts);
    tensor::check(pool.spawn(nworkers),
                  "supervisor: failed to spawn worker process");
    std::int64_t quarantined = 0;

    // Quarantine or schedule a retry for scheduler entry p after a failed
    // attempt.
    const auto attempt_failed = [&](std::size_t p, const std::string& reason) {
        const SweepCell& cell = cells[sched.at(p).cell_index];
        const std::int64_t attempts = sched.attempts_of(p);
        if (sched.fail(p, now_ms()) == LeaseScheduler::FailOutcome::kRetry) {
            const double backoff =
                sup.retry_backoff_ms *
                std::pow(2.0, static_cast<double>(attempts - 1));
            ++summary.cell_retries;
            XS_COUNT("sweep.cells.retried", 1);
            util::log_warn("supervisor: cell " + cell.id() + " attempt " +
                           std::to_string(attempts) + " failed (" + reason +
                           "); retrying in " + util::fmt(backoff, 0) + " ms");
        } else {
            CellResult fr;
            fr.status = "failed";
            fr.reason = reason;
            fr.attempts = attempts;
            fr.backend = xbar::backend_name(cell.backend);
            manifest.record(cell.id(), fr);
            results[cell.id()] = fr;
            ++quarantined;
            util::log_warn("supervisor: quarantined cell " + cell.id() +
                           " after " + std::to_string(attempts) +
                           " attempt(s): " + reason);
        }
    };

    // Reap a dead worker, re-deal its cell, and respawn into the slot while
    // the restart budget lasts; past it the slot retires and the pool
    // shrinks (graceful degradation — only an empty pool aborts the sweep).
    const auto worker_died = [&](std::size_t wi, const std::string& how) {
        const std::int64_t dealt = pool[wi].dealt;
        bool respawned = false;
        const std::string reaped = pool.reap_and_respawn(wi, respawned);
        const std::string detail = how.empty() ? reaped : how;
        if (dealt >= 0)
            attempt_failed(static_cast<std::size_t>(dealt),
                           "worker " + detail);
        if (respawned) {
            summary.worker_restarts = pool.restarts();
            util::log_warn("supervisor: worker " + detail +
                           "; respawned as pid " +
                           std::to_string(pool[wi].pid) + " (" +
                           std::to_string(pool.restarts_left()) +
                           " restart(s) left)");
        } else {
            util::log_warn("supervisor: worker " + detail +
                           "; slot retired (restart budget exhausted)");
        }
    };

    std::vector<pollfd> fds;
    std::vector<std::size_t> fd_owner;
    const util::Stopwatch run_clock;
    double next_beat = opts.progress_sec;
    while (!sched.all_done()) {
        const double now = now_ms();

        // Deal: lowest-index eligible cell to each idle ready worker. The
        // lease deadline doubles as the watchdog deadline.
        for (std::size_t wi = 0; wi < nworkers; ++wi) {
            PoolWorker& w = pool[wi];
            if (!w.alive || !w.ready || w.dealt >= 0) continue;
            const std::int64_t p = sched.next_eligible(now);
            if (p < 0) break;  // nothing eligible right now
            const std::size_t pi = static_cast<std::size_t>(p);
            const std::size_t ci = sched.at(pi).cell_index;
            sched.deal(pi, now, opts.cell_budget_ms,
                       static_cast<std::int64_t>(wi));
            const std::string payload = wire::encode_deal(
                static_cast<std::int64_t>(ci), sched.attempts_of(pi) - 1);
            if (!wire::write_message(w.deal_fd, wire::MsgType::kDeal,
                                     payload)) {
                sched.undeal(pi);  // the deal never reached a worker
                pool.kill(wi);
                worker_died(wi, "rejected a deal (broken pipe)");
                continue;
            }
            w.dealt = p;
            w.ready = false;
        }

        // Abort only when nobody is left to make progress; the manifest
        // already holds every finished cell for --resume.
        tensor::check(pool.alive_count() > 0,
                      "supervisor: all workers dead with " +
                          std::to_string(sched.size() - sched.done_count()) +
                          " cell(s) undone; fix the fault and rerun with "
                          "--resume");

        // Poll timeout: the nearest lease deadline or backoff expiry,
        // capped at 1 s so liveness checks keep running regardless.
        double timeout = sched.next_event_ms(now, 1000.0);
        if (opts.progress_sec > 0.0)
            timeout = std::max(
                std::min(timeout,
                         (next_beat - run_clock.seconds()) * 1000.0),
                0.0);

        fds.clear();
        fd_owner.clear();
        for (std::size_t wi = 0; wi < nworkers; ++wi)
            if (pool[wi].alive) {
                fds.push_back({pool[wi].ack_fd, POLLIN, 0});
                fd_owner.push_back(wi);
            }
        ::poll(fds.data(), static_cast<nfds_t>(fds.size()),
               static_cast<int>(std::ceil(timeout)));

        // Drain acks/hellos/fails first, then the death and watchdog paths:
        // an ack already in the pipe always beats the axe.
        for (std::size_t fi = 0; fi < fds.size(); ++fi) {
            if (fds[fi].revents == 0) continue;
            PoolWorker& w = pool[fd_owner[fi]];
            w.reader.fill();
            wire::Message msg;
            while (w.reader.pop(msg)) {
                switch (msg.type) {
                    case wire::MsgType::kHello:
                        w.ready = true;
                        break;
                    case wire::MsgType::kAck: {
                        std::string id;
                        CellResult r;
                        tensor::check(
                            decode_manifest_line(msg.payload, id, r),
                            "supervisor: worker sent an undecodable ack");
                        tensor::check(
                            w.dealt >= 0 &&
                                id == cells[sched.at(static_cast<std::size_t>(
                                                         w.dealt))
                                                .cell_index]
                                          .id(),
                            "supervisor: ack for '" + id +
                                "' does not match the dealt cell");
                        manifest.record(id, r);  // durable before counted
                        results[id] = r;
                        XS_COUNT("sweep.cells.done", 1);
                        sched.ack(static_cast<std::size_t>(w.dealt));
                        ++summary.cells_executed;
                        if (opts.cell_budget_ms > 0.0 &&
                            r.wall_ms > opts.cell_budget_ms) {
                            ++summary.cells_over_budget;
                            util::log_warn(
                                "sweep cell " + id + " over budget: " +
                                util::fmt(r.wall_ms, 0) + " ms > " +
                                util::fmt(opts.cell_budget_ms, 0) + " ms");
                        }
                        w.dealt = -1;
                        w.ready = true;
                        util::log_info(
                            "sweep cell " +
                            std::to_string(sched.done_count()) + "/" +
                            std::to_string(sched.size()) + " " + id +
                            ": acc " + util::fmt(r.accuracy) + "% (" +
                            util::fmt(r.wall_ms, 0) + " ms, attempt " +
                            std::to_string(r.attempts) + ")");
                        break;
                    }
                    case wire::MsgType::kFail:
                        if (w.dealt >= 0)
                            attempt_failed(static_cast<std::size_t>(w.dealt),
                                           msg.payload);
                        w.dealt = -1;
                        w.ready = true;  // the worker itself is fine
                        break;
                    default:
                        tensor::check(false,
                                      "supervisor: unexpected message type " +
                                          std::to_string(static_cast<int>(
                                              msg.type)));
                }
            }
            if (w.reader.finished()) worker_died(fd_owner[fi], "");
        }

        // Watchdog: SIGKILL workers holding a cell past its lease. The kill
        // surfaces as EOF next iteration, but reaping here keeps the
        // re-deal latency at one loop turn.
        for (const std::size_t p : sched.expired(now_ms())) {
            const std::size_t wi =
                static_cast<std::size_t>(sched.at(p).owner);
            pool.kill(wi);
            ++summary.watchdog_kills;
            // A watchdog kill *is* a budget overrun: the attempt held the
            // cell past cell_budget_ms, so the supervised path counts it
            // like the in-process runner counts a slow cell.
            ++summary.cells_over_budget;
            worker_died(wi, "watchdog-killed after " +
                                util::fmt(opts.cell_budget_ms, 0) +
                                " ms on cell " +
                                cells[sched.at(p).cell_index].id());
        }

        // Progress heartbeat: the poll timeout is capped so this fires on
        // schedule even when the pipes are quiet.
        if (opts.progress_sec > 0.0 && run_clock.seconds() >= next_beat) {
            next_beat = run_clock.seconds() + opts.progress_sec;
            const double elapsed = run_clock.seconds();
            const double done = static_cast<double>(sched.done_count());
            const double rate = elapsed > 0.0 ? done / elapsed : 0.0;
            const double left =
                static_cast<double>(sched.size() - sched.done_count());
            util::log_info(
                "progress: " + std::to_string(sched.done_count()) + "/" +
                std::to_string(sched.size()) + " cells (" +
                std::to_string(quarantined) + " failed, " +
                std::to_string(summary.cell_retries) + " retries), " +
                util::fmt(rate, 2) + " cells/s, eta " +
                (rate > 0.0 ? util::fmt(left / rate, 0) + " s" : "?") +
                "; workers: " + std::to_string(pool.alive_count()) + "/" +
                std::to_string(nworkers) + " alive, " +
                std::to_string(pool.busy_count()) + " busy");
        }
    }

#if XS_TELEMETRY_ENABLED
    util::metrics::Snapshot merged = util::metrics::snapshot();
    pool.shutdown(5000.0, &merged);
#else
    pool.shutdown(5000.0, nullptr);
#endif

    tensor::check(manifest.ok(), "supervisor: manifest writes to '" +
                                     summary.manifest_path +
                                     "' failed; resume state is incomplete");
    aggregate_and_write_csv(cells, spec, results, summary);
#if XS_TELEMETRY_ENABLED
    merge_prior_metrics(prior_metrics, merged);
    summary.metrics_json = util::metrics::to_json(merged);
    manifest.record_metrics(summary.metrics_json);
#endif
    return summary;
}

}  // namespace xs::sweep
