#include "sweep/supervisor.h"

#include "sweep/wire.h"
#include "tensor/tensor.h"
#include "util/csv.h"
#include "util/faultinject.h"
#include "util/log.h"
#include "util/metrics.h"

#include <algorithm>
#include <chrono>
#include <cerrno>
#include <cmath>
#include <csignal>
#include <cstring>
#include <set>
#include <string>

#include <fcntl.h>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

namespace xs::sweep {

namespace {

double now_ms() {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

// One undone cell's supervision state.
struct PendingCell {
    std::size_t cell_index = 0;  // into the expanded grid
    std::int64_t attempts = 0;   // deals so far (also indexes the backoff)
    double eligible_at = 0.0;    // steady-clock ms; backoff gate
    bool in_flight = false;
    bool done = false;  // acknowledged ok or quarantined
};

struct Worker {
    pid_t pid = -1;
    int deal_fd = -1;  // coordinator → worker (blocking writes)
    int ack_fd = -1;   // worker → coordinator (nonblocking, poll-driven)
    wire::MessageReader reader;
    bool alive = false;
    bool ready = false;        // said hello / finished its last cell
    std::int64_t dealt = -1;   // pending index in flight here, -1 = idle
    double deadline = 0.0;     // watchdog: kill past this; 0 = no budget
};

void close_fd(int& fd) {
    if (fd >= 0) ::close(fd);
    fd = -1;
}

// Fork+exec one worker wired to fresh deal/ack pipes. The parent-held pipe
// ends are CLOEXEC so later-spawned siblings don't inherit them — a worker
// holding another worker's pipe would mask that worker's EOF-on-death.
// Everything the child needs (argv buffers included) is built before fork:
// between fork and exec only async-signal-safe calls run, which a forked
// child of a threaded process is restricted to.
bool spawn_worker(const std::vector<std::string>& cmd, Worker& w) {
    int deal[2];  // [0] = child read, [1] = parent write
    int ack[2];   // [0] = parent read, [1] = child write
    if (::pipe(deal) != 0) return false;
    if (::pipe(ack) != 0) {
        ::close(deal[0]);
        ::close(deal[1]);
        return false;
    }
    ::fcntl(deal[1], F_SETFD, FD_CLOEXEC);
    ::fcntl(ack[0], F_SETFD, FD_CLOEXEC);
    ::fcntl(ack[0], F_SETFL, O_NONBLOCK);

    std::vector<std::string> args = cmd;
    args.push_back("--worker");
    args.push_back("--wire-in=" + std::to_string(deal[0]));
    args.push_back("--wire-out=" + std::to_string(ack[1]));
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (std::string& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);

    const pid_t pid = ::fork();
    if (pid < 0) {
        ::close(deal[0]);
        ::close(deal[1]);
        ::close(ack[0]);
        ::close(ack[1]);
        return false;
    }
    if (pid == 0) {
        ::execv(argv[0], argv.data());
        ::_exit(127);  // exec failed; the parent sees EOF + exit 127
    }
    ::close(deal[0]);
    ::close(ack[1]);
    w.pid = pid;
    w.deal_fd = deal[1];
    w.ack_fd = ack[0];
    w.reader.reset(w.ack_fd);
    w.alive = true;
    w.ready = false;
    w.dealt = -1;
    w.deadline = 0.0;
    return true;
}

std::string describe_exit(int wstatus) {
    if (WIFSIGNALED(wstatus))
        return std::string("killed by signal ") +
               std::to_string(WTERMSIG(wstatus));
    if (WIFEXITED(wstatus))
        return "exited with status " + std::to_string(WEXITSTATUS(wstatus));
    return "died (status " + std::to_string(wstatus) + ")";
}

}  // namespace

int worker_main(core::ExperimentContext& ctx, const SweepSpec& spec,
                int in_fd, int out_fd) {
    util::set_log_prefix("[w" + std::to_string(::getpid()) + "] ");
    const std::vector<SweepCell> cells = spec.expand();
    if (!wire::write_message(out_fd, wire::MsgType::kHello, "")) return 1;

    wire::Message msg;
    while (wire::read_message(in_fd, msg)) {
        if (msg.type == wire::MsgType::kShutdown) {
#if XS_TELEMETRY_ENABLED
            // Parting gift: this process's telemetry, merged by the
            // coordinator into the sweep-wide snapshot.
            wire::write_message(
                out_fd, wire::MsgType::kMetrics,
                util::metrics::to_json(util::metrics::snapshot()));
#endif
            break;
        }
        if (msg.type != wire::MsgType::kDeal) {
            util::log_error("worker: unexpected message type " +
                            std::to_string(static_cast<int>(msg.type)));
            return 1;
        }
        std::int64_t index = -1, attempt = 0;
        if (!wire::decode_deal(msg.payload, index, attempt) || index < 0 ||
            index >= static_cast<std::int64_t>(cells.size())) {
            util::log_error("worker: malformed deal '" + msg.payload + "'");
            return 1;
        }
        const SweepCell& cell = cells[static_cast<std::size_t>(index)];
        XS_DLOG("worker: dealt cell " + cell.id() + " (attempt " +
                std::to_string(attempt + 1) + ")");
        try {
            // Fault-injection seam: crash/hang/fail here, by grid index, on
            // the configured attempt — the supervisor's recovery paths are
            // exercised by real SIGKILLs and real silence, not mocks.
            util::fault::execute(util::fault::at("cell", index, attempt),
                                 "cell", index);
            CellResult r = run_sweep_cell(ctx, spec, cell);
            r.attempts = attempt + 1;
            if (!wire::write_message(out_fd, wire::MsgType::kAck,
                                     encode_manifest_line(cell.id(), r)))
                return 1;
        } catch (const std::exception& e) {
            // Recoverable: report and stay alive for the next deal. The
            // coordinator owns the retry/quarantine decision.
            util::log_warn("worker: cell " + cell.id() + " failed: " +
                           e.what());
            if (!wire::write_message(out_fd, wire::MsgType::kFail, e.what()))
                return 1;
        }
    }
    return 0;
}

std::vector<std::string> worker_command_from_argv(int argc, char** argv) {
    std::vector<std::string> cmd;
    char exe[4096];
    const ssize_t n = ::readlink("/proc/self/exe", exe, sizeof(exe) - 1);
    if (n > 0) {
        exe[n] = '\0';
        cmd.push_back(exe);
    } else {
        cmd.push_back(argc > 0 ? argv[0] : "");
    }
    const auto supervision_flag = [](const std::string& a) {
        return a == "--worker" || a.rfind("--worker=", 0) == 0 ||
               a.rfind("--workers", 0) == 0 || a.rfind("--wire-in", 0) == 0 ||
               a.rfind("--wire-out", 0) == 0;
    };
    for (int i = 1; i < argc; ++i)
        if (!supervision_flag(argv[i])) cmd.push_back(argv[i]);
    return cmd;
}

SweepSummary run_supervised(core::ExperimentContext& ctx, const SweepSpec& spec,
                            const SweepOptions& opts,
                            const SupervisorOptions& sup) {
    tensor::check(!sup.worker_cmd.empty(),
                  "supervisor: worker_cmd is empty (use "
                  "worker_command_from_argv)");
    tensor::check(sup.workers >= 1, "supervisor: need at least one worker");

    const std::vector<SweepCell> cells = spec.expand();
    SweepSummary summary;
    summary.cells_total = static_cast<std::int64_t>(cells.size());
    summary.manifest_path = ctx.csv_path(opts.manifest_name);
    summary.csv_path = ctx.csv_path(opts.csv_name);

    const std::string config_fp = sweep_config_fingerprint(ctx, spec);
    std::map<std::string, CellResult> results;
    bool had_config = false;
    if (opts.resume)
        results = load_resume_state(summary.manifest_path, config_fp, summary,
                                    had_config);
    ManifestWriter manifest(summary.manifest_path, opts.resume);
    tensor::check(manifest.ok(), "supervisor: cannot open manifest '" +
                                     summary.manifest_path + "' for writing");
    if (!had_config) manifest.record_config(config_fp);

    // Undone cells in expansion order (resume skips recorded ones, failed
    // included), truncated by max_cells like the in-process runner.
    std::vector<PendingCell> pending;
    for (std::size_t i = 0; i < cells.size(); ++i)
        if (results.find(cells[i].id()) == results.end()) {
            PendingCell p;
            p.cell_index = i;
            pending.push_back(p);
        }
    summary.cells_resumed =
        summary.cells_total - static_cast<std::int64_t>(pending.size());
    if (opts.max_cells >= 0 &&
        pending.size() > static_cast<std::size_t>(opts.max_cells))
        pending.resize(static_cast<std::size_t>(opts.max_cells));
    summary.cells_pending = summary.cells_total - summary.cells_resumed -
                            static_cast<std::int64_t>(pending.size());

    if (pending.empty()) {
        tensor::check(manifest.ok(),
                      "supervisor: manifest writes to '" +
                          summary.manifest_path + "' failed");
        aggregate_and_write_csv(cells, spec, results, summary);
#if XS_TELEMETRY_ENABLED
        summary.metrics_json =
            util::metrics::to_json(util::metrics::snapshot());
        manifest.record_metrics(summary.metrics_json);
#endif
        return summary;
    }

    // Train (or load) every distinct model before forking: workers then
    // resolve the same specs from the on-disk model cache instead of each
    // training a private copy.
    {
        std::set<std::string> seen;
        for (const PendingCell& p : pending) {
            const SweepCell& c = cells[p.cell_index];
            core::ModelSpec ms = ctx.spec(c.variant, c.num_classes,
                                          c.prune.method, c.prune.sparsity,
                                          c.mitigation.wct);
            if (seen.insert(ms.key()).second) ctx.prepared(ms);
        }
    }

    // A worker dying mid-deal surfaces as EPIPE on our write, not a signal.
    ::signal(SIGPIPE, SIG_IGN);

    const std::size_t nworkers = static_cast<std::size_t>(
        std::min<std::int64_t>(sup.workers,
                               static_cast<std::int64_t>(pending.size())));
    std::vector<Worker> workers(nworkers);
    std::int64_t restarts_left = sup.max_worker_restarts;
    std::size_t done_count = 0;
    std::int64_t quarantined = 0;

    // Quarantine or schedule a retry for pending[p] after a failed attempt.
    const auto attempt_failed = [&](std::size_t p, const std::string& reason) {
        PendingCell& pc = pending[p];
        pc.in_flight = false;
        const SweepCell& cell = cells[pc.cell_index];
        if (pc.attempts > sup.max_cell_retries) {
            CellResult fr;
            fr.status = "failed";
            fr.reason = reason;
            fr.attempts = pc.attempts;
            fr.backend = xbar::backend_name(cell.backend);
            manifest.record(cell.id(), fr);
            results[cell.id()] = fr;
            pc.done = true;
            ++done_count;
            ++quarantined;
            util::log_warn("supervisor: quarantined cell " + cell.id() +
                           " after " + std::to_string(pc.attempts) +
                           " attempt(s): " + reason);
        } else {
            const double backoff =
                sup.retry_backoff_ms *
                std::pow(2.0, static_cast<double>(pc.attempts - 1));
            pc.eligible_at = now_ms() + backoff;
            ++summary.cell_retries;
            XS_COUNT("sweep.cells.retried", 1);
            util::log_warn("supervisor: cell " + cell.id() + " attempt " +
                           std::to_string(pc.attempts) + " failed (" + reason +
                           "); retrying in " + util::fmt(backoff, 0) + " ms");
        }
    };

    // Reap a dead worker, re-deal its cell, and respawn into the slot while
    // the restart budget lasts; past it the slot retires and the pool
    // shrinks (graceful degradation — only an empty pool aborts the sweep).
    const auto worker_died = [&](std::size_t wi, const std::string& how) {
        Worker& w = workers[wi];
        int wstatus = 0;
        ::waitpid(w.pid, &wstatus, 0);
        const std::string detail =
            how.empty() ? describe_exit(wstatus) : how;
        close_fd(w.deal_fd);
        close_fd(w.ack_fd);
        w.alive = false;
        if (w.dealt >= 0) {
            attempt_failed(static_cast<std::size_t>(w.dealt),
                           "worker " + detail);
            w.dealt = -1;
        }
        if (restarts_left > 0) {
            --restarts_left;
            if (spawn_worker(sup.worker_cmd, w)) {
                ++summary.worker_restarts;
                util::log_warn("supervisor: worker " + detail +
                               "; respawned as pid " + std::to_string(w.pid) +
                               " (" + std::to_string(restarts_left) +
                               " restart(s) left)");
                return;
            }
        }
        util::log_warn("supervisor: worker " + detail +
                       "; slot retired (restart budget exhausted)");
    };

    for (std::size_t wi = 0; wi < nworkers; ++wi)
        tensor::check(spawn_worker(sup.worker_cmd, workers[wi]),
                      "supervisor: failed to spawn worker process");

    std::vector<pollfd> fds;
    std::vector<std::size_t> fd_owner;
    const util::Stopwatch run_clock;
    double next_beat = opts.progress_sec;
    while (done_count < pending.size()) {
        const double now = now_ms();

        // Deal: lowest-index eligible cell to each idle ready worker.
        for (std::size_t wi = 0; wi < nworkers; ++wi) {
            Worker& w = workers[wi];
            if (!w.alive || !w.ready || w.dealt >= 0) continue;
            std::size_t p = pending.size();
            for (std::size_t i = 0; i < pending.size(); ++i) {
                PendingCell& pc = pending[i];
                if (!pc.done && !pc.in_flight && pc.eligible_at <= now) {
                    p = i;
                    break;
                }
            }
            if (p == pending.size()) break;  // nothing eligible right now
            PendingCell& pc = pending[p];
            ++pc.attempts;
            const std::string payload = wire::encode_deal(
                static_cast<std::int64_t>(pc.cell_index), pc.attempts - 1);
            if (!wire::write_message(w.deal_fd, wire::MsgType::kDeal,
                                     payload)) {
                --pc.attempts;  // the deal never reached a worker
                ::kill(w.pid, SIGKILL);
                worker_died(wi, "rejected a deal (broken pipe)");
                continue;
            }
            pc.in_flight = true;
            w.dealt = static_cast<std::int64_t>(p);
            w.ready = false;
            w.deadline =
                opts.cell_budget_ms > 0.0 ? now + opts.cell_budget_ms : 0.0;
        }

        // Abort only when nobody is left to make progress; the manifest
        // already holds every finished cell for --resume.
        bool any_alive = false;
        for (const Worker& w : workers) any_alive |= w.alive;
        tensor::check(any_alive,
                      "supervisor: all workers dead with " +
                          std::to_string(pending.size() - done_count) +
                          " cell(s) undone; fix the fault and rerun with "
                          "--resume");

        // Poll timeout: the nearest watchdog deadline or backoff expiry,
        // capped at 1 s so liveness checks keep running regardless.
        double timeout = 1000.0;
        for (const Worker& w : workers)
            if (w.alive && w.dealt >= 0 && w.deadline > 0.0)
                timeout = std::min(timeout, w.deadline - now);
        for (const PendingCell& pc : pending)
            if (!pc.done && !pc.in_flight && pc.eligible_at > now)
                timeout = std::min(timeout, pc.eligible_at - now);
        if (opts.progress_sec > 0.0)
            timeout =
                std::min(timeout, (next_beat - run_clock.seconds()) * 1000.0);
        timeout = std::max(timeout, 0.0);

        fds.clear();
        fd_owner.clear();
        for (std::size_t wi = 0; wi < nworkers; ++wi)
            if (workers[wi].alive) {
                fds.push_back({workers[wi].ack_fd, POLLIN, 0});
                fd_owner.push_back(wi);
            }
        ::poll(fds.data(), static_cast<nfds_t>(fds.size()),
               static_cast<int>(std::ceil(timeout)));

        // Drain acks/hellos/fails first, then the death and watchdog paths:
        // an ack already in the pipe always beats the axe.
        for (std::size_t fi = 0; fi < fds.size(); ++fi) {
            if (fds[fi].revents == 0) continue;
            Worker& w = workers[fd_owner[fi]];
            w.reader.fill();
            wire::Message msg;
            while (w.reader.pop(msg)) {
                switch (msg.type) {
                    case wire::MsgType::kHello:
                        w.ready = true;
                        break;
                    case wire::MsgType::kAck: {
                        std::string id;
                        CellResult r;
                        tensor::check(
                            decode_manifest_line(msg.payload, id, r),
                            "supervisor: worker sent an undecodable ack");
                        tensor::check(
                            w.dealt >= 0 &&
                                id ==
                                    cells[pending[static_cast<std::size_t>(
                                                      w.dealt)]
                                              .cell_index]
                                        .id(),
                            "supervisor: ack for '" + id +
                                "' does not match the dealt cell");
                        manifest.record(id, r);  // durable before counted
                        results[id] = r;
                        XS_COUNT("sweep.cells.done", 1);
                        PendingCell& pc =
                            pending[static_cast<std::size_t>(w.dealt)];
                        pc.done = true;
                        pc.in_flight = false;
                        ++done_count;
                        ++summary.cells_executed;
                        if (opts.cell_budget_ms > 0.0 &&
                            r.wall_ms > opts.cell_budget_ms) {
                            ++summary.cells_over_budget;
                            util::log_warn(
                                "sweep cell " + id + " over budget: " +
                                util::fmt(r.wall_ms, 0) + " ms > " +
                                util::fmt(opts.cell_budget_ms, 0) + " ms");
                        }
                        w.dealt = -1;
                        w.deadline = 0.0;
                        w.ready = true;
                        util::log_info(
                            "sweep cell " + std::to_string(done_count) + "/" +
                            std::to_string(pending.size()) + " " + id +
                            ": acc " + util::fmt(r.accuracy) + "% (" +
                            util::fmt(r.wall_ms, 0) + " ms, attempt " +
                            std::to_string(r.attempts) + ")");
                        break;
                    }
                    case wire::MsgType::kFail:
                        if (w.dealt >= 0)
                            attempt_failed(static_cast<std::size_t>(w.dealt),
                                           msg.payload);
                        w.dealt = -1;
                        w.deadline = 0.0;
                        w.ready = true;  // the worker itself is fine
                        break;
                    default:
                        tensor::check(false,
                                      "supervisor: unexpected message type " +
                                          std::to_string(static_cast<int>(
                                              msg.type)));
                }
            }
            if (w.reader.finished()) worker_died(fd_owner[fi], "");
        }

        // Watchdog: SIGKILL workers holding a cell past the budget. The
        // kill surfaces as EOF next iteration, but reaping here keeps the
        // re-deal latency at one loop turn.
        if (opts.cell_budget_ms > 0.0) {
            const double t = now_ms();
            for (std::size_t wi = 0; wi < nworkers; ++wi) {
                Worker& w = workers[wi];
                if (!w.alive || w.dealt < 0 || w.deadline <= 0.0 ||
                    t < w.deadline)
                    continue;
                ::kill(w.pid, SIGKILL);
                ++summary.watchdog_kills;
                // A watchdog kill *is* a budget overrun: the attempt held
                // the cell past cell_budget_ms, so the supervised path
                // counts it like the in-process runner counts a slow cell.
                ++summary.cells_over_budget;
                worker_died(wi, "watchdog-killed after " +
                                    util::fmt(opts.cell_budget_ms, 0) +
                                    " ms on cell " +
                                    cells[pending[static_cast<std::size_t>(
                                                      w.dealt)]
                                              .cell_index]
                                        .id());
            }
        }

        // Progress heartbeat: the poll timeout is capped so this fires on
        // schedule even when the pipes are quiet.
        if (opts.progress_sec > 0.0 && run_clock.seconds() >= next_beat) {
            next_beat = run_clock.seconds() + opts.progress_sec;
            std::size_t alive = 0, busy = 0;
            for (const Worker& w : workers) {
                if (!w.alive) continue;
                ++alive;
                if (w.dealt >= 0) ++busy;
            }
            const double elapsed = run_clock.seconds();
            const double rate =
                elapsed > 0.0 ? static_cast<double>(done_count) / elapsed : 0.0;
            const double left =
                static_cast<double>(pending.size() - done_count);
            util::log_info(
                "progress: " + std::to_string(done_count) + "/" +
                std::to_string(pending.size()) + " cells (" +
                std::to_string(quarantined) + " failed, " +
                std::to_string(summary.cell_retries) + " retries), " +
                util::fmt(rate, 2) + " cells/s, eta " +
                (rate > 0.0 ? util::fmt(left / rate, 0) + " s" : "?") +
                "; workers: " + std::to_string(alive) + "/" +
                std::to_string(nworkers) + " alive, " + std::to_string(busy) +
                " busy");
        }
    }

    // Orderly shutdown: ask nicely, give the pool a moment, then insist.
    for (Worker& w : workers) {
        if (!w.alive) continue;
        wire::write_message(w.deal_fd, wire::MsgType::kShutdown, "");
        close_fd(w.deal_fd);
    }
    const double grace_deadline = now_ms() + 5000.0;
#if XS_TELEMETRY_ENABLED
    // Each worker answers kShutdown with one kMetrics frame before exiting;
    // fold those into the coordinator's own snapshot under the same grace
    // deadline the reaper uses. A worker that dies without the frame just
    // contributes nothing — telemetry never blocks shutdown past the grace.
    util::metrics::Snapshot merged = util::metrics::snapshot();
    for (Worker& w : workers) {
        if (!w.alive) continue;
        wire::Message msg;
        while (true) {
            if (w.reader.pop(msg)) {  // buffered frames survive EOF
                if (msg.type == wire::MsgType::kMetrics) {
                    util::metrics::Snapshot snap;
                    if (util::metrics::from_json(msg.payload, snap))
                        util::metrics::merge(merged, snap);
                    else
                        util::log_warn(
                            "supervisor: discarding an unparsable metrics "
                            "frame from worker pid " + std::to_string(w.pid));
                }
                continue;  // late hellos/acks carry nothing actionable now
            }
            if (w.reader.finished()) break;
            const double left = grace_deadline - now_ms();
            if (left <= 0.0) break;
            pollfd pfd{w.ack_fd, POLLIN, 0};
            ::poll(&pfd, 1, static_cast<int>(std::ceil(left)));
            w.reader.fill();
        }
    }
#endif
    for (Worker& w : workers) {
        if (!w.alive) continue;
        int wstatus = 0;
        while (true) {
            const pid_t got = ::waitpid(w.pid, &wstatus, WNOHANG);
            if (got == w.pid || got < 0) break;
            if (now_ms() > grace_deadline) {
                ::kill(w.pid, SIGKILL);
                ::waitpid(w.pid, &wstatus, 0);
                break;
            }
            ::usleep(10 * 1000);
        }
        close_fd(w.ack_fd);
        w.alive = false;
    }

    tensor::check(manifest.ok(), "supervisor: manifest writes to '" +
                                     summary.manifest_path +
                                     "' failed; resume state is incomplete");
    aggregate_and_write_csv(cells, spec, results, summary);
#if XS_TELEMETRY_ENABLED
    summary.metrics_json = util::metrics::to_json(merged);
    manifest.record_metrics(summary.metrics_json);
#endif
    return summary;
}

}  // namespace xs::sweep
