#include "sweep/service.h"

#include "sweep/lease.h"
#include "sweep/net.h"
#include "sweep/pool.h"
#include "sweep/wire.h"
#include "tensor/tensor.h"
#include "util/csv.h"
#include "util/faultinject.h"
#include "util/log.h"
#include "util/metrics.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>

#include <poll.h>
#include <unistd.h>

namespace xs::sweep {

namespace {

double now_ms() {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

std::atomic<bool> g_drain{false};

// One connected agent host, joined or not. The host id is the lease owner
// token; a reconnecting agent gets a fresh id, so acks and fails from its
// previous incarnation can never be mistaken for the current lease holder.
struct Host {
    std::int64_t id = -1;
    int fd = -1;
    wire::MessageReader reader;
    bool joined = false;
    std::int64_t capacity = 0;
    // Scheduler positions dealt here and not yet acked/failed back by this
    // host. A lease that expires and is re-dealt elsewhere stays in this
    // list — the slow host's worker is still genuinely busy on it.
    std::vector<std::size_t> leased;
    double last_heard = 0.0;
    std::int64_t cells_done = 0;

    std::string name() const { return "host" + std::to_string(id); }
};

// The join handshake must prove the agent expands the *exact same grid*,
// not just the same experiment config: sweep_config_fingerprint covers the
// inputs that change a cell's result (it gates manifest resume, where a
// grown grid is legal), but an agent running --sizes=32 against a
// --sizes=16 service shares that fingerprint while producing cells this
// sweep never dealt — which must never blend into the manifest. So the
// wire fingerprint appends an order-sensitive FNV-1a hash over every
// expanded cell id plus the cell count.
std::string join_fingerprint(const std::string& config_fp,
                             const std::vector<SweepCell>& cells) {
    std::uint64_t h = 1469598103934665603ull;
    for (const SweepCell& c : cells) {
        for (const char ch : c.id())
            h = (h ^ static_cast<unsigned char>(ch)) * 1099511628211ull;
        h = (h ^ 0xffu) * 1099511628211ull;  // id separator
    }
    std::string hex(16, '0');
    for (int i = 15; i >= 0; --i, h >>= 4) hex[i] = "0123456789abcdef"[h & 15];
    return config_fp + "/grid-" + std::to_string(cells.size()) + "-" + hex;
}

}  // namespace

void request_drain() { g_drain.store(true, std::memory_order_relaxed); }
bool drain_requested() { return g_drain.load(std::memory_order_relaxed); }

SweepSummary run_service(core::ExperimentContext& ctx, const SweepSpec& spec,
                         const SweepOptions& opts, const ServiceOptions& svc) {
    const std::vector<SweepCell> cells = spec.expand();
    SweepSummary summary;
    summary.cells_total = static_cast<std::int64_t>(cells.size());
    summary.manifest_path = ctx.csv_path(opts.manifest_name);
    summary.csv_path = ctx.csv_path(opts.csv_name);

    const std::string config_fp = sweep_config_fingerprint(ctx, spec);
    const std::string join_fp = join_fingerprint(config_fp, cells);
    std::map<std::string, CellResult> results;
    bool had_config = false;
    if (opts.resume)
        results = load_resume_state(summary.manifest_path, config_fp, summary,
                                    had_config);
    const std::string prior_metrics = summary.metrics_json;
    ManifestWriter manifest(summary.manifest_path, opts.resume);
    tensor::check(manifest.ok(), "service: cannot open manifest '" +
                                     summary.manifest_path + "' for writing");
    if (!had_config) manifest.record_config(config_fp);

    std::vector<std::size_t> undone;
    for (std::size_t i = 0; i < cells.size(); ++i)
        if (results.find(cells[i].id()) == results.end()) undone.push_back(i);
    summary.cells_resumed =
        summary.cells_total - static_cast<std::int64_t>(undone.size());
    if (opts.max_cells >= 0 &&
        undone.size() > static_cast<std::size_t>(opts.max_cells))
        undone.resize(static_cast<std::size_t>(opts.max_cells));
    summary.cells_pending = summary.cells_total - summary.cells_resumed -
                            static_cast<std::int64_t>(undone.size());

    LeaseScheduler sched(svc.max_cell_retries, svc.retry_backoff_ms);
    std::map<std::string, std::size_t> id_to_sched;
    std::map<std::size_t, std::size_t> cell_to_sched;
    for (const std::size_t i : undone) {
        id_to_sched[cells[i].id()] = sched.size();
        cell_to_sched[i] = sched.size();
        sched.add(i);
    }

    util::metrics::Snapshot host_metrics;  // kMetrics frames, all hosts

    if (sched.size() == 0) {
        tensor::check(manifest.ok(), "service: manifest writes to '" +
                                         summary.manifest_path + "' failed");
        aggregate_and_write_csv(cells, spec, results, summary);
#if XS_TELEMETRY_ENABLED
        util::metrics::Snapshot final_snap = util::metrics::snapshot();
        merge_prior_metrics(prior_metrics, final_snap);
        summary.metrics_json = util::metrics::to_json(final_snap);
        manifest.record_metrics(summary.metrics_json);
#endif
        return summary;
    }

    // A host dying mid-send surfaces as EPIPE on our write, not a signal.
    ::signal(SIGPIPE, SIG_IGN);

    std::string net_err;
    const int listen_fd = svc.listen_fd >= 0
                              ? svc.listen_fd
                              : net::listen_on(svc.port, &net_err);
    tensor::check(listen_fd >= 0, "service: cannot listen: " + net_err);
    util::log_info("service: listening on port " +
                   std::to_string(net::bound_port(listen_fd)) + " with " +
                   std::to_string(sched.size()) + " cell(s) to deal");

    std::vector<std::unique_ptr<Host>> hosts;
    std::int64_t next_host_id = 0;
    std::int64_t quarantined = 0;
    const double lease_ms = opts.cell_budget_ms;

    const auto attempt_failed = [&](std::size_t p, const std::string& reason) {
        const SweepCell& cell = cells[sched.at(p).cell_index];
        const std::int64_t attempts = sched.attempts_of(p);
        if (sched.fail(p, now_ms()) == LeaseScheduler::FailOutcome::kRetry) {
            const double backoff =
                svc.retry_backoff_ms *
                std::pow(2.0, static_cast<double>(attempts - 1));
            ++summary.cell_retries;
            XS_COUNT("sweep.cells.retried", 1);
            util::log_warn("service: cell " + cell.id() + " attempt " +
                           std::to_string(attempts) + " failed (" + reason +
                           "); re-dealing in " + util::fmt(backoff, 0) +
                           " ms");
        } else {
            CellResult fr;
            fr.status = "failed";
            fr.reason = reason;
            fr.attempts = attempts;
            fr.backend = xbar::backend_name(cell.backend);
            manifest.record(cell.id(), fr);
            results[cell.id()] = fr;
            ++quarantined;
            util::log_warn("service: quarantined cell " + cell.id() +
                           " after " + std::to_string(attempts) +
                           " attempt(s): " + reason);
        }
    };

    // Declare a host dead: every lease it still owns fails (re-deal with
    // backoff elsewhere); leases it was slow on (owner already moved) just
    // vanish with it. The fd closes; a reconnecting agent is a new host.
    const auto host_dead = [&](Host& h, const std::string& why) {
        util::log_warn("service: " + h.name() + " " + why +
                       (h.leased.empty()
                            ? ""
                            : " with " + std::to_string(h.leased.size()) +
                                  " lease(s)"));
        for (const std::size_t p : h.leased)
            if (sched.at(p).in_flight && sched.at(p).owner == h.id)
                attempt_failed(p, h.name() + " " + why);
        h.leased.clear();
        ::close(h.fd);
        h.fd = -1;
    };

    const auto purge_dead = [&]() {
        hosts.erase(std::remove_if(hosts.begin(), hosts.end(),
                                   [](const std::unique_ptr<Host>& h) {
                                       return h->fd < 0;
                                   }),
                    hosts.end());
    };

    std::vector<pollfd> fds;
    std::vector<Host*> fd_host;
    const util::Stopwatch run_clock;
    double next_beat = opts.progress_sec;
    double next_hb = now_ms() + svc.heartbeat_ms;
    while (!sched.all_done()) {
        const bool draining = svc.drain || drain_requested();
        if (draining && sched.in_flight_count() == 0) break;
        const double now = now_ms();

        // Deal: fill each joined host to its capacity, lowest-index
        // eligible cell first. Draining deals nothing — in-flight leases
        // run out (ack or expiry) and the loop exits above.
        if (!draining) {
            for (auto& hp : hosts) {
                Host& h = *hp;
                if (h.fd < 0 || !h.joined) continue;
                while (static_cast<std::int64_t>(h.leased.size()) <
                       h.capacity) {
                    const std::int64_t p = sched.next_eligible(now);
                    if (p < 0) break;
                    const std::size_t pi = static_cast<std::size_t>(p);
                    const std::size_t ci = sched.at(pi).cell_index;
                    sched.deal(pi, now, lease_ms, h.id);
                    const std::string payload =
                        wire::encode_deal(static_cast<std::int64_t>(ci),
                                          sched.attempts_of(pi) - 1);
                    if (!net::send_frame(h.fd, wire::MsgType::kDeal,
                                         payload)) {
                        sched.undeal(pi);  // never reached the host
                        host_dead(h, "rejected a deal (send failed)");
                        break;
                    }
                    h.leased.push_back(pi);
                    XS_DLOG("service: dealt cell " + cells[ci].id() + " to " +
                            h.name());
                }
            }
            purge_dead();
        }

        // Poll: the listener plus every host connection. Timeout is the
        // nearest lease/backoff event, our next beacon, or the progress
        // beat — capped so heartbeat-miss checks keep running.
        double timeout = sched.next_event_ms(now, 250.0);
        timeout = std::min(timeout, next_hb - now);
        if (opts.progress_sec > 0.0)
            timeout = std::min(timeout,
                               (next_beat - run_clock.seconds()) * 1000.0);
        timeout = std::max(timeout, 0.0);

        fds.clear();
        fd_host.clear();
        fds.push_back({listen_fd, POLLIN, 0});
        fd_host.push_back(nullptr);
        for (auto& hp : hosts) {
            fds.push_back({hp->fd, POLLIN, 0});
            fd_host.push_back(hp.get());
        }
        ::poll(fds.data(), static_cast<nfds_t>(fds.size()),
               static_cast<int>(std::ceil(timeout)));

        if (fds[0].revents != 0) {
            for (;;) {
                const int cfd = net::accept_conn(listen_fd);
                if (cfd < 0) break;
                auto h = std::make_unique<Host>();
                h->id = next_host_id++;
                h->fd = cfd;
                h->reader.reset(cfd);
                h->last_heard = now_ms();
                util::log_info("service: " + h->name() + " connected");
                hosts.push_back(std::move(h));
            }
        }

        for (std::size_t fi = 1; fi < fds.size(); ++fi) {
            if (fds[fi].revents == 0) continue;
            Host& h = *fd_host[fi];
            h.last_heard = now_ms();
            h.reader.fill();
            wire::Message msg;
            while (h.fd >= 0 && h.reader.pop(msg)) {
                switch (msg.type) {
                    case wire::MsgType::kJoin: {
                        std::string fp;
                        std::int64_t capacity = 0;
                        if (!net::decode_join(msg.payload, fp, capacity)) {
                            net::send_frame(h.fd, wire::MsgType::kFail,
                                            "join rejected: malformed join");
                            host_dead(h, "sent a malformed join");
                            break;
                        }
                        if (fp != join_fp) {
                            util::log_error(
                                "service: " + h.name() +
                                " joined with a mismatched fingerprint "
                                "(service: " + join_fp + ", agent: " + fp +
                                "); rejecting — the agent is running a "
                                "different grid, spec, or experiment config");
                            net::send_frame(
                                h.fd, wire::MsgType::kFail,
                                "join rejected: fingerprint mismatch "
                                "(service: " + join_fp + ")");
                            host_dead(h, "fingerprint mismatch");
                            break;
                        }
                        h.joined = true;
                        h.capacity = capacity;
                        ++summary.hosts_joined;
                        if (!net::send_frame(
                                h.fd, wire::MsgType::kJoin,
                                net::encode_join_ok(svc.heartbeat_ms,
                                                    lease_ms)))
                            host_dead(h, "join reply failed");
                        else
                            util::log_info("service: " + h.name() +
                                           " joined with capacity " +
                                           std::to_string(capacity));
                        break;
                    }
                    case wire::MsgType::kHeartbeat:
                        break;  // last_heard already refreshed
                    case wire::MsgType::kAck: {
                        std::string id;
                        CellResult r;
                        if (!decode_manifest_line(msg.payload, id, r)) {
                            host_dead(h, "sent an undecodable ack");
                            break;
                        }
                        const auto sp = id_to_sched.find(id);
                        if (sp != id_to_sched.end()) {
                            h.leased.erase(std::remove(h.leased.begin(),
                                                       h.leased.end(),
                                                       sp->second),
                                           h.leased.end());
                        }
                        if (results.find(id) != results.end()) {
                            // The cell was already durably recorded — a
                            // slow host finishing after its lease was
                            // re-dealt, or an agent replaying its outbox
                            // after a reconnect. First append won; drop it.
                            ++summary.duplicate_acks;
                            XS_COUNT("sweep.service.duplicate_acks", 1);
                            util::log_info("service: duplicate ack for " +
                                           id + " from " + h.name() +
                                           " deduped");
                            break;
                        }
                        if (sp == id_to_sched.end()) {
                            // Belt-and-braces behind the join fingerprint:
                            // an id that is neither recorded nor scheduled
                            // is not a cell of this sweep, and recording it
                            // would poison the manifest for resume.
                            host_dead(h, "acked a cell outside this sweep "
                                         "(" + id + ")");
                            break;
                        }
                        manifest.record(id, r);  // durable before counted
                        results[id] = r;
                        XS_COUNT("sweep.cells.done", 1);
                        if (sp != id_to_sched.end()) sched.ack(sp->second);
                        ++summary.cells_executed;
                        ++h.cells_done;
                        if (opts.cell_budget_ms > 0.0 &&
                            r.wall_ms > opts.cell_budget_ms) {
                            ++summary.cells_over_budget;
                            util::log_warn(
                                "sweep cell " + id + " over budget: " +
                                util::fmt(r.wall_ms, 0) + " ms > " +
                                util::fmt(opts.cell_budget_ms, 0) + " ms");
                        }
                        util::log_info(
                            "sweep cell " +
                            std::to_string(sched.done_count()) + "/" +
                            std::to_string(sched.size()) + " " + id +
                            ": acc " + util::fmt(r.accuracy) + "% (" +
                            util::fmt(r.wall_ms, 0) + " ms, " + h.name() +
                            ", attempt " + std::to_string(r.attempts) + ")");
                        break;
                    }
                    case wire::MsgType::kFail: {
                        std::int64_t ci = -1;
                        std::string reason;
                        if (!net::decode_fail(msg.payload, ci, reason)) {
                            host_dead(h, "sent an undecodable fail");
                            break;
                        }
                        const auto cp =
                            cell_to_sched.find(static_cast<std::size_t>(ci));
                        if (cp == cell_to_sched.end()) break;
                        h.leased.erase(std::remove(h.leased.begin(),
                                                   h.leased.end(),
                                                   cp->second),
                                       h.leased.end());
                        // Owner check: a fail from a host whose lease
                        // already expired (the cell moved on) is stale —
                        // its worker slot freed up, nothing else.
                        if (sched.at(cp->second).in_flight &&
                            sched.at(cp->second).owner == h.id)
                            attempt_failed(cp->second, reason);
                        break;
                    }
                    case wire::MsgType::kMetrics: {
                        util::metrics::Snapshot snap;
                        if (util::metrics::from_json(msg.payload, snap))
                            util::metrics::merge(host_metrics, snap);
                        else
                            util::log_warn(
                                "service: discarding an unparsable metrics "
                                "frame from " + h.name());
                        break;
                    }
                    default:
                        host_dead(h, "sent unexpected message type " +
                                         std::to_string(static_cast<int>(
                                             msg.type)));
                }
            }
            if (h.fd >= 0 && h.reader.finished())
                host_dead(h, "disconnected");
        }
        purge_dead();

        // Lease expiry: take the cell back and re-deal elsewhere, but keep
        // the slow host's connection — its late ack, if it ever lands, is
        // deduped above. Determinism is untouched either way.
        for (const std::size_t p : sched.expired(now_ms())) {
            const std::int64_t owner = sched.at(p).owner;
            std::string owner_name = "host" + std::to_string(owner);
            attempt_failed(p, "lease expired on " + owner_name);
        }

        // Beacons out, silence check in. Any frame refreshes last_heard, so
        // a busy host never needs explicit heartbeats to stay alive.
        const double tnow = now_ms();
        if (tnow >= next_hb) {
            next_hb = tnow + svc.heartbeat_ms;
            for (auto& hp : hosts)
                if (hp->fd >= 0 && hp->joined &&
                    !net::send_frame(hp->fd, wire::MsgType::kHeartbeat, ""))
                    host_dead(*hp, "heartbeat send failed");
        }
        for (auto& hp : hosts)
            if (hp->fd >= 0 &&
                tnow - hp->last_heard >
                    svc.heartbeat_ms *
                        static_cast<double>(svc.heartbeat_misses))
                host_dead(*hp,
                          "missed " + std::to_string(svc.heartbeat_misses) +
                              " heartbeats");
        purge_dead();

        if (opts.progress_sec > 0.0 && run_clock.seconds() >= next_beat) {
            next_beat = run_clock.seconds() + opts.progress_sec;
            const double elapsed = run_clock.seconds();
            const double done = static_cast<double>(sched.done_count());
            const double rate = elapsed > 0.0 ? done / elapsed : 0.0;
            const double left =
                static_cast<double>(sched.size() - sched.done_count());
            std::string host_line;
            for (const auto& hp : hosts) {
                if (!hp->joined) continue;
                host_line += " " + hp->name() + ": " +
                             std::to_string(hp->leased.size()) + " busy/" +
                             std::to_string(hp->cells_done) + " done";
            }
            util::log_info(
                "progress: " + std::to_string(sched.done_count()) + "/" +
                std::to_string(sched.size()) + " cells (" +
                std::to_string(quarantined) + " failed, " +
                std::to_string(summary.cell_retries) + " retries, " +
                std::to_string(summary.duplicate_acks) + " dup acks), " +
                util::fmt(rate, 2) + " cells/s, eta " +
                (rate > 0.0 ? util::fmt(left / rate, 0) + " s" : "?") +
                "; hosts: " + std::to_string(hosts.size()) + " connected" +
                (host_line.empty() ? "" : " —" + host_line));
        }
    }

    // Orderly shutdown: every connected host gets kShutdown, drains its
    // local pool (its own 5 s grace), and answers with one kMetrics frame.
    // Our grace covers theirs; a host that dies instead contributes nothing.
    for (auto& hp : hosts)
        if (hp->fd >= 0 &&
            !net::send_frame(hp->fd, wire::MsgType::kShutdown, "")) {
            ::close(hp->fd);
            hp->fd = -1;
        }
    purge_dead();
    const double grace_deadline = now_ms() + 10000.0;
    while (!hosts.empty() && now_ms() < grace_deadline) {
        fds.clear();
        fd_host.clear();
        for (auto& hp : hosts) {
            fds.push_back({hp->fd, POLLIN, 0});
            fd_host.push_back(hp.get());
        }
        const double left = grace_deadline - now_ms();
        ::poll(fds.data(), static_cast<nfds_t>(fds.size()),
               static_cast<int>(std::ceil(std::max(left, 0.0))));
        for (std::size_t fi = 0; fi < fds.size(); ++fi) {
            if (fds[fi].revents == 0) continue;
            Host& h = *fd_host[fi];
            h.reader.fill();
            wire::Message msg;
            while (h.reader.pop(msg)) {
                if (msg.type == wire::MsgType::kAck) {
                    // A delayed ack can land during the shutdown grace (the
                    // sweep finished off a re-deal while the slow host was
                    // still computing). Same rule as the main loop: first
                    // durable append won, later copies are counted and
                    // dropped — never ignored, or the dedup accounting
                    // would depend on timing.
                    std::string id;
                    CellResult r;
                    if (decode_manifest_line(msg.payload, id, r)) {
                        if (results.find(id) != results.end()) {
                            ++summary.duplicate_acks;
                            XS_COUNT("sweep.service.duplicate_acks", 1);
                            util::log_info("service: duplicate ack for " +
                                           id + " from " + h.name() +
                                           " during shutdown deduped");
                        } else if (id_to_sched.find(id) ==
                                   id_to_sched.end()) {
                            util::log_warn("service: dropping an ack for a "
                                           "cell outside this sweep (" + id +
                                           ") from " + h.name());
                        } else {
                            manifest.record(id, r);
                            results[id] = r;
                            ++summary.cells_executed;
                            const auto sp = id_to_sched.find(id);
                            if (sp != id_to_sched.end())
                                sched.ack(sp->second);
                        }
                    }
                    continue;
                }
                if (msg.type == wire::MsgType::kMetrics) {
                    util::metrics::Snapshot snap;
                    if (util::metrics::from_json(msg.payload, snap))
                        util::metrics::merge(host_metrics, snap);
                    ::close(h.fd);  // the metrics frame is the goodbye
                    h.fd = -1;
                    break;
                }
            }
            if (h.fd >= 0 && h.reader.finished()) {
                ::close(h.fd);
                h.fd = -1;
            }
        }
        purge_dead();
    }
    for (auto& hp : hosts)
        if (hp->fd >= 0) ::close(hp->fd);
    hosts.clear();
    ::close(listen_fd);

    // Drained early: undone cells stay pending (and resumable).
    summary.cells_pending += static_cast<std::int64_t>(sched.size()) -
                             static_cast<std::int64_t>(sched.done_count());

    tensor::check(manifest.ok(), "service: manifest writes to '" +
                                     summary.manifest_path +
                                     "' failed; resume state is incomplete");
    aggregate_and_write_csv(cells, spec, results, summary);
#if XS_TELEMETRY_ENABLED
    util::metrics::Snapshot final_snap = util::metrics::snapshot();
    util::metrics::merge(final_snap, host_metrics);
    merge_prior_metrics(prior_metrics, final_snap);
    summary.metrics_json = util::metrics::to_json(final_snap);
    manifest.record_metrics(summary.metrics_json);
#endif
    return summary;
}

int run_agent(core::ExperimentContext& ctx, const SweepSpec& spec,
              const AgentOptions& opts) {
    util::set_log_prefix("[agent " + std::to_string(::getpid()) + "] ");
    tensor::check(!opts.worker_cmd.empty(),
                  "agent: worker_cmd is empty (use worker_command_from_argv)");
    tensor::check(opts.workers >= 1, "agent: need at least one worker");

    const std::vector<SweepCell> cells = spec.expand();
    const std::string join_fp =
        join_fingerprint(sweep_config_fingerprint(ctx, spec), cells);

    // Prepare every distinct model in the grid before forking workers: the
    // agent doesn't know which cells it will be dealt, and workers resolve
    // prepared specs from the on-disk model cache.
    {
        std::set<std::string> seen;
        for (const SweepCell& c : cells) {
            core::ModelSpec ms = ctx.spec(c.variant, c.num_classes,
                                          c.prune.method, c.prune.sparsity,
                                          c.mitigation.wct);
            if (seen.insert(ms.key()).second) ctx.prepared(ms);
        }
    }

    ::signal(SIGPIPE, SIG_IGN);
    WorkerPool pool(opts.worker_cmd, opts.max_worker_restarts);
    tensor::check(pool.spawn(static_cast<std::size_t>(opts.workers)),
                  "agent: failed to spawn worker process");

    std::deque<std::pair<std::int64_t, std::int64_t>> deals;  // cell, attempt
    std::deque<std::pair<wire::MsgType, std::string>> outbox;
    double heartbeat_ms = 1000.0, lease_ms = 0.0;
    int fd = -1;
    wire::MessageReader sock;
    std::int64_t failures = 0;  // consecutive connect/join failures
    double last_heard = 0.0, next_hb = 0.0;

    // Forward a frame to the service now, or park it in the outbox until
    // the next successful join — acks survive disconnects, and replaying
    // them is safe because the service dedups against recorded results.
    const auto disconnect = [&](const std::string& why) {
        if (fd < 0) return;
        util::log_warn("agent: connection lost (" + why + "); reconnecting");
        ::close(fd);
        fd = -1;
        failures = 1;
        deals.clear();  // undispatched deals re-deal service-side
    };
    const auto queue_send = [&](wire::MsgType type,
                                const std::string& payload) {
        if (fd >= 0 && net::send_frame(fd, type, payload)) return;
        outbox.emplace_back(type, payload);
        disconnect("send failed");
    };

    for (;;) {
        if (fd < 0) {
            // (Re)connect with capped exponential backoff, then the kJoin
            // handshake. A kFail reply is fatal — a fingerprint mismatch
            // cannot be fixed by retrying.
            if (opts.max_reconnects >= 0 && failures > opts.max_reconnects) {
                util::log_error("agent: giving up after " +
                                std::to_string(failures - 1) +
                                " reconnect attempt(s)");
                pool.shutdown(5000.0, nullptr);
                return 1;
            }
            if (failures > 0) {
                const double backoff = std::min(
                    opts.reconnect_backoff_ms *
                        std::pow(2.0, static_cast<double>(failures - 1)),
                    opts.reconnect_backoff_cap_ms);
                ::usleep(static_cast<useconds_t>(backoff * 1000.0));
            }
            std::string err;
            fd = net::connect_to(opts.host, opts.port, &err);
            if (fd < 0) {
                util::log_warn("agent: " + err);
                ++failures;
                continue;
            }
            sock.reset(fd);
            if (!net::send_frame(
                    fd, wire::MsgType::kJoin,
                    net::encode_join(join_fp,
                                     static_cast<std::int64_t>(pool.size())))) {
                disconnect("join send failed");
                continue;
            }
            // Wait for the join reply (bounded; a silent service means it
            // died between accept and reply — retry).
            bool ok = false, fatal = false;
            const double join_deadline = now_ms() + 10000.0;
            while (!ok && !fatal) {
                wire::Message msg;
                if (sock.pop(msg)) {
                    if (msg.type == wire::MsgType::kJoin &&
                        net::decode_join_ok(msg.payload, heartbeat_ms,
                                            lease_ms)) {
                        ok = true;
                    } else if (msg.type == wire::MsgType::kFail) {
                        util::log_error("agent: " + msg.payload);
                        fatal = true;
                    } else {
                        util::log_error("agent: unexpected join reply type " +
                                        std::to_string(
                                            static_cast<int>(msg.type)));
                        fatal = true;
                    }
                    continue;
                }
                const double left = join_deadline - now_ms();
                if (sock.finished() || left <= 0.0) break;
                pollfd pfd{fd, POLLIN, 0};
                ::poll(&pfd, 1, static_cast<int>(std::ceil(left)));
                sock.fill();
            }
            if (fatal) {
                ::close(fd);
                pool.shutdown(5000.0, nullptr);
                return 1;
            }
            if (!ok) {
                disconnect("no join reply");
                continue;
            }
            failures = 0;
            last_heard = now_ms();
            next_hb = last_heard + heartbeat_ms;
            util::log_info("agent: joined " + opts.host + ":" +
                           std::to_string(opts.port) + " (heartbeat " +
                           util::fmt(heartbeat_ms, 0) + " ms, lease " +
                           util::fmt(lease_ms, 0) + " ms)");
            while (!outbox.empty()) {
                if (fd < 0 ||
                    !net::send_frame(fd, outbox.front().first,
                                     outbox.front().second)) {
                    disconnect("outbox replay failed");
                    break;
                }
                outbox.pop_front();
            }
            continue;
        }

        // An agent with no live workers can't execute anything: exit so the
        // service's host-death path re-deals our leases immediately.
        if (pool.alive_count() == 0) {
            util::log_error(
                "agent: all workers dead (restart budget exhausted)");
            ::close(fd);
            return 1;
        }

        // Dispatch queued deals to idle ready workers.
        for (std::size_t wi = 0;
             wi < pool.size() && !deals.empty(); ++wi) {
            PoolWorker& w = pool[wi];
            if (!w.alive || !w.ready || w.dealt >= 0) continue;
            const auto [ci, attempt] = deals.front();
            if (!wire::write_message(w.deal_fd, wire::MsgType::kDeal,
                                     wire::encode_deal(ci, attempt))) {
                pool.kill(wi);
                bool respawned = false;
                const std::string detail = pool.reap_and_respawn(wi,
                                                                 respawned);
                util::log_warn("agent: worker rejected a deal (" + detail +
                               (respawned ? "); respawned" : "); retired"));
                continue;
            }
            deals.pop_front();
            w.dealt = ci;
            w.ready = false;
            // Local watchdog mirrors the service lease: a hung worker is
            // killed here and failed back, instead of silently pinning a
            // capacity slot until the service re-deals around us.
            w.deadline = lease_ms > 0.0 ? now_ms() + lease_ms : 0.0;
        }

        const double now = now_ms();
        double timeout = std::min(next_hb - now, 250.0);
        for (std::size_t wi = 0; wi < pool.size(); ++wi) {
            const PoolWorker& w = pool[wi];
            if (w.alive && w.dealt >= 0 && w.deadline > 0.0)
                timeout = std::min(timeout, w.deadline - now);
        }
        timeout = std::max(timeout, 0.0);

        std::vector<pollfd> fds;
        std::vector<std::int64_t> owner;  // -1 = socket, else worker index
        fds.push_back({fd, POLLIN, 0});
        owner.push_back(-1);
        for (std::size_t wi = 0; wi < pool.size(); ++wi)
            if (pool[wi].alive) {
                fds.push_back({pool[wi].ack_fd, POLLIN, 0});
                owner.push_back(static_cast<std::int64_t>(wi));
            }
        ::poll(fds.data(), static_cast<nfds_t>(fds.size()),
               static_cast<int>(std::ceil(timeout)));

        // Socket first: deals and shutdowns beat local bookkeeping.
        if (fds[0].revents != 0) {
            last_heard = now_ms();
            sock.fill();
            wire::Message msg;
            bool shutdown = false;
            while (fd >= 0 && sock.pop(msg)) {
                switch (msg.type) {
                    case wire::MsgType::kDeal: {
                        std::int64_t ci = -1, attempt = 0;
                        if (!wire::decode_deal(msg.payload, ci, attempt) ||
                            ci < 0 ||
                            ci >= static_cast<std::int64_t>(cells.size())) {
                            util::log_error("agent: malformed deal '" +
                                            msg.payload + "'");
                            break;
                        }
                        // Fault seam: kill/hang the whole host here, mid
                        // deal, on the configured attempt — the service's
                        // host-death recovery is exercised by a real dead
                        // process, not a mock.
                        util::fault::execute(
                            util::fault::at("agent-deal", ci, attempt),
                            "agent-deal", ci);
                        deals.emplace_back(ci, attempt);
                        break;
                    }
                    case wire::MsgType::kHeartbeat:
                        break;  // last_heard already refreshed
                    case wire::MsgType::kShutdown:
                        shutdown = true;
                        break;
                    default:
                        util::log_warn(
                            "agent: unexpected message type " +
                            std::to_string(static_cast<int>(msg.type)));
                }
                if (shutdown) break;
            }
            if (shutdown) {
#if XS_TELEMETRY_ENABLED
                util::metrics::Snapshot merged = util::metrics::snapshot();
                pool.shutdown(5000.0, &merged);
                net::send_frame(fd, wire::MsgType::kMetrics,
                                util::metrics::to_json(merged));
#else
                pool.shutdown(5000.0, nullptr);
#endif
                ::close(fd);
                util::log_info("agent: shut down by the service");
                return 0;
            }
            if (fd >= 0 && sock.finished()) disconnect("service closed");
        }

        // Silence check directly after the socket read, so a local stall (a
        // long cell, scheduler starvation, a fault-injected delay) can
        // never declare a healthy service dead while its frames sit unread
        // in our buffer — whatever arrived during the stall just refreshed
        // last_heard above.
        if (fd >= 0 && now_ms() - last_heard > heartbeat_ms * 3.0)
            disconnect("service silent for 3 heartbeats");

        for (std::size_t fi = 1; fi < fds.size(); ++fi) {
            if (fds[fi].revents == 0) continue;
            const std::size_t wi = static_cast<std::size_t>(owner[fi]);
            PoolWorker& w = pool[wi];
            if (!w.alive) continue;
            w.reader.fill();
            wire::Message msg;
            while (w.reader.pop(msg)) {
                switch (msg.type) {
                    case wire::MsgType::kHello:
                        w.ready = true;
                        break;
                    case wire::MsgType::kAck:
                        queue_send(wire::MsgType::kAck, msg.payload);
                        w.dealt = -1;
                        w.deadline = 0.0;
                        w.ready = true;
                        break;
                    case wire::MsgType::kFail:
                        if (w.dealt >= 0)
                            queue_send(wire::MsgType::kFail,
                                       net::encode_fail(w.dealt,
                                                        msg.payload));
                        w.dealt = -1;
                        w.deadline = 0.0;
                        w.ready = true;
                        break;
                    default:
                        util::log_warn(
                            "agent: unexpected worker message type " +
                            std::to_string(static_cast<int>(msg.type)));
                }
            }
            if (w.reader.finished()) {
                const std::int64_t dealt = w.dealt;
                bool respawned = false;
                const std::string detail =
                    pool.reap_and_respawn(wi, respawned);
                util::log_warn("agent: worker " + detail +
                               (respawned ? "; respawned" : "; retired"));
                if (dealt >= 0)
                    queue_send(wire::MsgType::kFail,
                               net::encode_fail(dealt, "worker " + detail));
            }
        }

        // Local watchdog: kill workers holding a cell past the lease.
        const double t = now_ms();
        for (std::size_t wi = 0; wi < pool.size(); ++wi) {
            PoolWorker& w = pool[wi];
            if (!w.alive || w.dealt < 0 || w.deadline <= 0.0 ||
                t < w.deadline)
                continue;
            const std::int64_t dealt = w.dealt;
            pool.kill(wi);
            bool respawned = false;
            const std::string detail = pool.reap_and_respawn(wi, respawned);
            util::log_warn("agent: watchdog-killed worker on cell " +
                           std::to_string(dealt) +
                           (respawned ? "; respawned" : "; retired"));
            queue_send(wire::MsgType::kFail,
                       net::encode_fail(dealt, "watchdog-killed after " +
                                                   util::fmt(lease_ms, 0) +
                                                   " ms"));
        }

        if (fd >= 0 && t >= next_hb) {
            next_hb = t + heartbeat_ms;
            if (!net::send_frame(fd, wire::MsgType::kHeartbeat, ""))
                disconnect("heartbeat send failed");
        }
    }
}

}  // namespace xs::sweep
