// Forked sweep-worker pool shared by the single-host supervisor
// (sweep/supervisor.h) and the multi-host agent (sweep/service.h run_agent)
// — DESIGN.md §9/§11.
//
// Each slot holds one `<binary> --worker --wire-in=<fd> --wire-out=<fd>`
// child process wired to fresh deal/ack pipes: fork+exec (fork alone is
// unsafe under the process thread pool), parent-held pipe ends CLOEXEC so
// later-spawned siblings don't mask each other's EOF-on-death, ack side
// nonblocking and poll-driven through a wire::MessageReader. Respawns are
// budgeted pool-wide: past the budget a dead slot retires and the pool
// shrinks gracefully instead of flapping on a persistent fault.
#pragma once

#include "sweep/wire.h"
#include "util/metrics.h"

#include <cstdint>
#include <string>
#include <vector>

#include <sys/types.h>

namespace xs::sweep {

struct PoolWorker {
    pid_t pid = -1;
    int deal_fd = -1;  // parent → worker (blocking writes)
    int ack_fd = -1;   // worker → parent (nonblocking, poll-driven)
    wire::MessageReader reader;
    bool alive = false;
    bool ready = false;       // said hello / finished its last cell
    std::int64_t dealt = -1;  // opaque work token in flight here, -1 = idle
    double deadline = 0.0;    // caller-armed watchdog; 0 = none
};

class WorkerPool {
public:
    // `cmd` is the worker argv prefix (binary + every experiment/spec
    // flag); the pool appends --worker --wire-in/--wire-out per spawn.
    WorkerPool(std::vector<std::string> cmd, std::int64_t restart_budget);
    ~WorkerPool();
    WorkerPool(const WorkerPool&) = delete;
    WorkerPool& operator=(const WorkerPool&) = delete;

    // Fill the pool with n workers. Returns false on the first spawn
    // failure (earlier spawns stay alive).
    bool spawn(std::size_t n);

    std::size_t size() const { return workers_.size(); }
    PoolWorker& operator[](std::size_t i) { return workers_[i]; }
    const PoolWorker& operator[](std::size_t i) const { return workers_[i]; }
    std::size_t alive_count() const;
    std::size_t busy_count() const;

    // Reap worker i (blocking waitpid), close its pipes, and respawn into
    // the slot while the restart budget lasts. Returns a description of how
    // the child exited; `respawned` reports whether the slot refilled (false
    // = retired). SIGKILL the pid first to turn a hang into a reapable exit.
    std::string reap_and_respawn(std::size_t i, bool& respawned);
    void kill(std::size_t i);

    std::int64_t restarts() const { return restarts_; }
    std::int64_t restarts_left() const { return restarts_left_; }

    // Orderly shutdown: send kShutdown to every live worker, collect each
    // one's parting kMetrics frame into `merged` (when telemetry is
    // compiled in; pass nullptr to skip), then reap — escalating to SIGKILL
    // past `grace_ms`. Leaves the pool empty of live workers.
    void shutdown(double grace_ms, util::metrics::Snapshot* merged);

private:
    bool spawn_slot(PoolWorker& w);

    std::vector<std::string> cmd_;
    std::vector<PoolWorker> workers_;
    std::int64_t restarts_left_;
    std::int64_t restarts_ = 0;
};

}  // namespace xs::sweep
