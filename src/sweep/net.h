// TCP transport for the distributed sweep service (DESIGN.md §11).
//
// The sweep deal/ack protocol (sweep/wire.h) was built transport-agnostic:
// frames are length-prefixed bytes, reassembled by MessageReader on the
// receiving side. This header moves those frames onto loopback or LAN
// sockets so a `sweep_serve` coordinator can deal cells to agent hosts:
//
//   - listener/connector helpers that hand back CLOEXEC'd, TCP_NODELAY,
//     nonblocking fds (the coordinator's event loop is poll-driven and a
//     slow peer must never wedge it; small frames want NODELAY because the
//     deal → ack round trip is latency, not bandwidth);
//   - send_frame(): wire::write_message plus the network fault-injection
//     sites (util/faultinject.h "net-send": net-drop, net-partial-write,
//     net-delay, net-disconnect), so the whole socket failure matrix is
//     drivable from in-repo tests over loopback;
//   - codecs for the kJoin handshake ("<fingerprint> <capacity>" from the
//     agent, "<heartbeat_ms> <lease_ms>" back on accept) and the socket
//     kFail payload ("<cell index> <reason>" — on sockets many cells are in
//     flight per peer, so failures must name their cell).
//
// SIGPIPE-proofing: sends use MSG_NOSIGNAL semantics via the process-wide
// SIGPIPE ignore the callers already install (a dead peer surfaces as EPIPE
// from write, never as a signal).
#pragma once

#include "sweep/wire.h"

#include <cstdint>
#include <string>

namespace xs::sweep::net {

// Bind + listen on `port` (0 picks an ephemeral port; read it back with
// bound_port). The fd is CLOEXEC and nonblocking, SO_REUSEADDR set so a
// restarted coordinator rebinds immediately. Returns -1 and fills `err` on
// failure.
int listen_on(std::uint16_t port, std::string* err);

// The port a listener fd actually bound (ephemeral-port discovery).
int bound_port(int listen_fd);

// Accept one pending connection: CLOEXEC, TCP_NODELAY, nonblocking.
// Returns -1 when nothing is pending (EAGAIN) or on error.
int accept_conn(int listen_fd);

// Connect to host:port (blocking connect, then the fd is switched to
// nonblocking + TCP_NODELAY + CLOEXEC). Returns -1 and fills `err` on
// failure — callers own the reconnect/backoff policy.
int connect_to(const std::string& host, std::uint16_t port, std::string* err);

// Split "host:port". Returns false on malformed input.
bool parse_hostport(const std::string& s, std::string& host,
                    std::uint16_t& port);

// Send one frame through the "net-send" fault seam. Without an armed fault
// this is exactly wire::write_message (whole frame or false, EAGAIN parks
// on poll). Injected faults: net-drop returns true having sent nothing,
// net-delay stalls then sends, net-partial-write sends a frame prefix and
// severs the connection (returns false), net-disconnect severs without
// sending (returns false). "Severs" is shutdown(2), so the peer sees EOF —
// exactly what a died host or dropped route looks like.
bool send_frame(int fd, wire::MsgType type, const std::string& payload);

// Testing hook: the process-wide "net-send" ordinal (how many frames
// send_frame has been asked to send), and a reset for test isolation.
std::int64_t frames_sent();
void reset_frames_sent();

// ---- payload codecs ----

// Agent → service: "<fingerprint> <capacity>". The fingerprint is the
// sweep_config_fingerprint() of the agent's spec/experiment flags; the
// service rejects a mismatch loudly instead of blending two configurations
// into one manifest.
std::string encode_join(const std::string& fingerprint, std::int64_t capacity);
bool decode_join(const std::string& payload, std::string& fingerprint,
                 std::int64_t& capacity);

// Service → agent on accepted join: "<heartbeat_ms> <lease_ms>" — the
// heartbeat cadence the agent must beat and the per-deal lease budget it
// should use as its local watchdog (0 = no lease).
std::string encode_join_ok(double heartbeat_ms, double lease_ms);
bool decode_join_ok(const std::string& payload, double& heartbeat_ms,
                    double& lease_ms);

// Agent → service cell failure: "<cell index> <reason>".
std::string encode_fail(std::int64_t cell_index, const std::string& reason);
bool decode_fail(const std::string& payload, std::int64_t& cell_index,
                 std::string& reason);

}  // namespace xs::sweep::net
