// Procedural image-classification datasets standing in for CIFAR10/CIFAR100
// (offline environment — see DESIGN.md §3).
//
// Each class is a prototype of oriented band-limited texture (orientation,
// spatial frequency, colour mix, harmonic content). Samples jitter every
// prototype parameter and add pixel noise, so class manifolds overlap and
// the achievable (Bayes) accuracy is bounded — tuned so small VGG models
// land at the paper's software operating points (≈84 % for the 10-class set,
// ≈50 % for the 100-class set).
#pragma once

#include "nn/trainer.h"
#include "util/rng.h"

#include <cstdint>

namespace xs::data {

struct SyntheticSpec {
    std::int64_t num_classes = 10;
    std::int64_t image_size = 32;
    std::int64_t channels = 3;
    // Pixel-level Gaussian noise stddev (images are roughly unit-range).
    float pixel_noise = 0.55f;
    // Jitter of class prototype parameters, as a fraction of the inter-class
    // spacing; larger -> more class overlap -> lower Bayes accuracy.
    float class_jitter = 0.55f;
    std::uint64_t seed = 42;
};

// CIFAR10-like defaults (10 classes, clearly separated prototypes).
SyntheticSpec cifar10_like(std::uint64_t seed = 42);
// CIFAR100-like defaults (100 finely spaced classes, heavier jitter).
SyntheticSpec cifar100_like(std::uint64_t seed = 42);

// Generate `count` labelled samples (balanced across classes, shuffled).
nn::Dataset generate(const SyntheticSpec& spec, std::int64_t count);

// Convenience: train and test splits from disjoint RNG streams.
struct TrainTest {
    nn::Dataset train;
    nn::Dataset test;
};
TrainTest generate_split(const SyntheticSpec& spec, std::int64_t train_count,
                         std::int64_t test_count);

}  // namespace xs::data
