#include "data/synthetic.h"

#include "tensor/tensor.h"

#include <cmath>

namespace xs::data {
namespace {

constexpr double kPi = 3.14159265358979323846;

// Fixed colour palette; classes cycle through it with index-dependent mixes.
constexpr float kPalette[8][3] = {
    {1.0f, 0.2f, 0.2f}, {0.2f, 1.0f, 0.3f}, {0.25f, 0.4f, 1.0f},
    {1.0f, 0.9f, 0.2f}, {0.9f, 0.3f, 1.0f}, {0.2f, 0.95f, 0.95f},
    {1.0f, 0.6f, 0.25f}, {0.75f, 0.75f, 0.75f}};

struct ClassPrototype {
    double theta;       // grating orientation
    double freq;        // cycles across the image
    double harmonic;    // relative weight of the 2nd harmonic
    float color[3];     // channel mix
    double blob_x, blob_y;  // centre of a soft intensity blob
    double blob_gain;
};

// Deterministic prototype for class c: parameters are laid out on a grid so
// that neighbouring classes are genuinely confusable once jittered.
ClassPrototype prototype(std::int64_t c, std::int64_t num_classes) {
    ClassPrototype p{};
    if (num_classes <= 10) {
        // 2 frequency bands × 5 orientations.
        const std::int64_t band = c / 5, ori = c % 5;
        p.theta = kPi * static_cast<double>(ori) / 5.0;
        p.freq = band == 0 ? 3.0 : 6.0;
        p.harmonic = 0.25 * static_cast<double>(band);
        const auto& col = kPalette[c % 8];
        p.color[0] = col[0];
        p.color[1] = col[1];
        p.color[2] = col[2];
        p.blob_x = 0.25 + 0.5 * static_cast<double>(ori) / 4.0;
        p.blob_y = band == 0 ? 0.3 : 0.7;
        p.blob_gain = 0.8;
    } else {
        // Fine grid: 10 orientations × (frequency, colour) combinations.
        const std::int64_t a = c % 10;           // orientation index
        const std::int64_t b = (c / 10) % 10;    // freq/colour index
        p.theta = kPi * static_cast<double>(a) / 10.0;
        p.freq = 2.0 + 0.65 * static_cast<double>(b);
        p.harmonic = 0.15 * static_cast<double>(b % 3);
        const auto& col = kPalette[b % 8];
        const float shade = 0.55f + 0.45f * static_cast<float>(a % 2);
        p.color[0] = col[0] * shade;
        p.color[1] = col[1] * shade;
        p.color[2] = col[2] * shade;
        p.blob_x = 0.2 + 0.6 * static_cast<double>(a) / 9.0;
        p.blob_y = 0.2 + 0.6 * static_cast<double>(b) / 9.0;
        p.blob_gain = 0.5;
    }
    return p;
}

void render_sample(const SyntheticSpec& spec, const ClassPrototype& proto,
                   util::Rng& rng, float* out) {
    const std::int64_t s = spec.image_size;
    // Per-sample jitter of the prototype parameters. The angular spacing of
    // neighbouring classes is pi/5 (10-class) or pi/10 (100-class); jitter is
    // class_jitter × half that spacing, giving controlled confusability.
    const double theta_spacing = spec.num_classes <= 10 ? kPi / 5.0 : kPi / 10.0;
    const double theta =
        proto.theta + rng.normal(0.0, spec.class_jitter * theta_spacing * 0.5);
    const double freq = proto.freq * (1.0 + rng.normal(0.0, 0.08 * spec.class_jitter * 2));
    const double phase = rng.uniform(0.0, 2.0 * kPi);
    const double amp = 0.7 + 0.6 * rng.uniform();
    const double brightness = rng.normal(0.0, 0.2);
    const double bx = proto.blob_x + rng.normal(0.0, 0.04 * spec.class_jitter * 2);
    const double by = proto.blob_y + rng.normal(0.0, 0.04 * spec.class_jitter * 2);
    float color[3];
    for (int ch = 0; ch < 3; ++ch)
        color[ch] = proto.color[ch] *
                    (1.0f + static_cast<float>(rng.normal(0.0, 0.12 * spec.class_jitter * 2)));

    const double ct = std::cos(theta), st = std::sin(theta);
    const double inv_s = 1.0 / static_cast<double>(s);
    for (std::int64_t y = 0; y < s; ++y) {
        for (std::int64_t x = 0; x < s; ++x) {
            const double u = (static_cast<double>(x) + 0.5) * inv_s;
            const double v = (static_cast<double>(y) + 0.5) * inv_s;
            const double t = u * ct + v * st;
            double wave = std::sin(2.0 * kPi * freq * t + phase);
            if (proto.harmonic > 0.0)
                wave += proto.harmonic * std::sin(4.0 * kPi * freq * t + 2.0 * phase);
            const double dx = u - bx, dy = v - by;
            const double blob = proto.blob_gain * std::exp(-(dx * dx + dy * dy) / 0.02);
            const double base = amp * wave + blob + brightness;
            for (std::int64_t ch = 0; ch < spec.channels; ++ch) {
                const float noise = static_cast<float>(rng.normal(0.0, spec.pixel_noise));
                out[(ch * s + y) * s + x] =
                    static_cast<float>(base) * color[ch % 3] + noise;
            }
        }
    }
}

}  // namespace

SyntheticSpec cifar10_like(std::uint64_t seed) {
    SyntheticSpec spec;
    spec.num_classes = 10;
    spec.pixel_noise = 1.2f;
    spec.class_jitter = 1.22f;
    spec.seed = seed;
    return spec;
}

SyntheticSpec cifar100_like(std::uint64_t seed) {
    SyntheticSpec spec;
    spec.num_classes = 100;
    spec.pixel_noise = 1.2f;
    spec.class_jitter = 1.25f;
    spec.seed = seed;
    return spec;
}

nn::Dataset generate(const SyntheticSpec& spec, std::int64_t count) {
    util::Rng rng(spec.seed);
    nn::Dataset data;
    data.num_classes = spec.num_classes;
    data.images = tensor::Tensor(
        {count, spec.channels, spec.image_size, spec.image_size});
    data.labels.resize(static_cast<std::size_t>(count));

    const std::int64_t item = spec.channels * spec.image_size * spec.image_size;
    // Balanced labels, then a deterministic shuffle.
    const std::vector<std::size_t> order = rng.permutation(static_cast<std::size_t>(count));
    for (std::int64_t i = 0; i < count; ++i) {
        const std::int64_t label =
            static_cast<std::int64_t>(order[static_cast<std::size_t>(i)]) %
            spec.num_classes;
        data.labels[static_cast<std::size_t>(i)] = label;
        util::Rng sample_rng = rng.split(static_cast<std::uint64_t>(i) * 2654435761u + 17);
        render_sample(spec, prototype(label, spec.num_classes), sample_rng,
                      data.images.data() + i * item);
    }
    return data;
}

TrainTest generate_split(const SyntheticSpec& spec, std::int64_t train_count,
                         std::int64_t test_count) {
    TrainTest tt;
    SyntheticSpec train_spec = spec;
    train_spec.seed = spec.seed * 2 + 1;
    SyntheticSpec test_spec = spec;
    test_spec.seed = spec.seed * 2 + 9876543;
    tt.train = generate(train_spec, train_count);
    tt.test = generate(test_spec, test_count);
    return tt;
}

}  // namespace xs::data
