// Deterministic fault-injection seam for robustness testing (DESIGN.md §9).
//
// The sweep supervisor's failure paths — worker crashes, hung cells, poison
// cells, torn manifest writes — are impossible to exercise reliably with
// real faults, so the code under test asks this seam "should I fail here?"
// at a handful of named sites and the XS_FAULT environment variable answers.
// Production runs never set XS_FAULT and every query is one branch on a
// null plan.
//
// Plan grammar (comma-separated actions):
//   XS_FAULT="crash@cell:7"            SIGKILL the worker dealt cell 7
//   XS_FAULT="hang@cell:3"             cell 3 blocks forever (watchdog food)
//   XS_FAULT="fail@cell:2*"            cell 2 throws on *every* attempt
//   XS_FAULT="truncate-manifest@record:1"  tear the 2nd manifest record
//   XS_FAULT="truncate-manifest"       shorthand for record:0
//   XS_FAULT="net-drop@net-send:3"     silently swallow the 4th sent frame
//   XS_FAULT="net-partial-write@net-send:2"  write half the frame, then
//                                      sever the connection (torn frame)
//   XS_FAULT="net-delay@net-send:5"    stall the send long enough for the
//                                      peer's lease/heartbeat logic to act
//   XS_FAULT="net-disconnect@net-send:0"  sever the connection instead of
//                                      sending (network blip / host death)
//   XS_FAULT="net-delay@net-send-ack:0"  same actions, but the index counts
//                                      only kAck frames — "this host's Nth
//                                      result" is deterministic where the
//                                      raw frame ordinal shifts with
//                                      heartbeat cadence and worker boot
//
// `<action>@<site>:<index>` fires when the named site is reached with that
// index on the FIRST attempt only (attempt 0) — a respawned worker retrying
// the cell proceeds cleanly, which is exactly the recover-after-crash path
// the tests need. A trailing '*' fires on every attempt (poison cells).
//
// Sites in use: "cell" (index = cell's position in the sweep expansion,
// checked by the worker loop), "record" (index = data-record ordinal of
// one ManifestWriter instance), "net-send" (index = process-wide ordinal of
// frames sent through sweep/net.h send_frame; attempt is always 0, so the
// '*' suffix is only needed to fire at one ordinal repeatedly),
// "net-send-ack" (like net-send but the index counts kAck frames only, and
// it takes precedence over a net-send match on the same frame), and
// "agent-deal" (index = the dealt cell's index, attempt = the deal's
// attempt, checked as an agent host accepts the deal — kCrash here is
// whole-host death mid-cell, workers and all; attempt-0 gating means a
// cell's first deal kills exactly one host, wherever it lands).
//
// The net-delay stall duration defaults to 1000 ms and is overridable via
// XS_FAULT_NET_DELAY_MS (tests tune it against their lease budgets).
#pragma once

#include <cstdint>
#include <string>

namespace xs::util::fault {

enum class Action {
    kNone,             // proceed normally
    kCrash,            // die without cleanup (raise SIGKILL)
    kHang,             // block forever
    kFail,             // throw a recoverable error
    kTruncate,         // write a torn (partial, unterminated) record
    // Network sites (carried out by sweep/net.h, which owns the socket):
    kNetDrop,          // swallow the frame, pretend the send succeeded
    kNetPartialWrite,  // write a frame prefix, then sever the connection
    kNetDelay,         // stall before sending (lease-expiry / late-ack food)
    kNetDisconnect,    // sever the connection instead of sending
};

// True when a fault plan is active (XS_FAULT set or install_plan() called
// with a non-empty plan).
bool enabled();

// The action planned for `site` at `index` on this `attempt` (kNone almost
// always). Thread-safe; the plan is parsed once, lazily, from XS_FAULT.
Action at(const char* site, std::int64_t index, std::int64_t attempt = 0);

// Carry out `action` at the call site: kCrash raises SIGKILL, kHang blocks
// forever, kFail throws std::runtime_error, kNetDelay sleeps the configured
// stall; kNone/kTruncate/kNet* otherwise return (the torn write or socket
// surgery is the caller's job — only it owns the bytes and the fd).
void execute(Action action, const char* site, std::int64_t index);

// The kNetDelay stall in milliseconds (XS_FAULT_NET_DELAY_MS, default 1000).
std::int64_t net_delay_ms();

// Replace the active plan ("" disables). Parses eagerly and throws on
// malformed plans. Tests use this because the XS_FAULT parse is cached:
// setenv() alone would not affect a process that already queried the seam
// (child processes re-read the inherited environment on first query).
void install_plan(const std::string& plan);

}  // namespace xs::util::fault
