// Deterministic fault-injection seam for robustness testing (DESIGN.md §9).
//
// The sweep supervisor's failure paths — worker crashes, hung cells, poison
// cells, torn manifest writes — are impossible to exercise reliably with
// real faults, so the code under test asks this seam "should I fail here?"
// at a handful of named sites and the XS_FAULT environment variable answers.
// Production runs never set XS_FAULT and every query is one branch on a
// null plan.
//
// Plan grammar (comma-separated actions):
//   XS_FAULT="crash@cell:7"            SIGKILL the worker dealt cell 7
//   XS_FAULT="hang@cell:3"             cell 3 blocks forever (watchdog food)
//   XS_FAULT="fail@cell:2*"            cell 2 throws on *every* attempt
//   XS_FAULT="truncate-manifest@record:1"  tear the 2nd manifest record
//   XS_FAULT="truncate-manifest"       shorthand for record:0
//
// `<action>@<site>:<index>` fires when the named site is reached with that
// index on the FIRST attempt only (attempt 0) — a respawned worker retrying
// the cell proceeds cleanly, which is exactly the recover-after-crash path
// the tests need. A trailing '*' fires on every attempt (poison cells).
//
// Sites in use: "cell" (index = cell's position in the sweep expansion,
// checked by the worker loop) and "record" (index = data-record ordinal of
// one ManifestWriter instance).
#pragma once

#include <cstdint>
#include <string>

namespace xs::util::fault {

enum class Action {
    kNone,      // proceed normally
    kCrash,     // die without cleanup (raise SIGKILL)
    kHang,      // block forever
    kFail,      // throw a recoverable error
    kTruncate,  // write a torn (partial, unterminated) record
};

// True when a fault plan is active (XS_FAULT set or install_plan() called
// with a non-empty plan).
bool enabled();

// The action planned for `site` at `index` on this `attempt` (kNone almost
// always). Thread-safe; the plan is parsed once, lazily, from XS_FAULT.
Action at(const char* site, std::int64_t index, std::int64_t attempt = 0);

// Carry out `action` at the call site: kCrash raises SIGKILL, kHang blocks
// forever, kFail throws std::runtime_error, kNone/kTruncate return (the
// torn write is the caller's job — only it knows the record bytes).
void execute(Action action, const char* site, std::int64_t index);

// Replace the active plan ("" disables). Parses eagerly and throws on
// malformed plans. Tests use this because the XS_FAULT parse is cached:
// setenv() alone would not affect a process that already queried the seam
// (child processes re-read the inherited environment on first query).
void install_plan(const std::string& plan);

}  // namespace xs::util::fault
