// Scoped-span tracing that emits chrome://tracing-compatible JSON.
//
// Disabled (the default) a Span costs one relaxed atomic load; no clock is
// read and nothing is buffered. start(path) arms collection: spans append
// {name, start, duration} events to per-thread buffers (preallocated, so
// the hot path stays allocation-free until a thread exceeds its reserve),
// and stop_and_write() serializes everything as a chrome trace
// ({"traceEvents":[{"ph":"X",...}]}) loadable in chrome://tracing or
// https://ui.perfetto.dev.
//
// Span names must be string literals (or otherwise outlive the trace
// session): only the pointer is stored.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#ifndef XS_TELEMETRY_ENABLED
#define XS_TELEMETRY_ENABLED 1
#endif

namespace xs::util::trace {

namespace detail {
extern std::atomic<bool> g_enabled;
void emit(const char* name, std::uint64_t t0_ns, std::uint64_t t1_ns);
std::uint64_t now_ns() noexcept;
}  // namespace detail

inline bool enabled() noexcept {
    return detail::g_enabled.load(std::memory_order_relaxed);
}

// Arm collection; events are buffered in memory until stop_and_write().
// Calling start() again discards previously buffered events.
void start(const std::string& path);

// Disarm, write the chrome trace JSON to the start() path, and clear the
// buffers. Returns the path written, or "" if tracing was never started.
std::string stop_and_write();

class Span {
public:
    explicit Span(const char* name) noexcept {
        if (enabled()) {
            name_ = name;
            t0_ = detail::now_ns();
        }
    }
    ~Span() {
        if (name_ != nullptr) detail::emit(name_, t0_, detail::now_ns());
    }
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

private:
    const char* name_ = nullptr;
    std::uint64_t t0_ = 0;
};

}  // namespace xs::util::trace

#define XS_TRACE_CAT2(a, b) a##b
#define XS_TRACE_CAT(a, b) XS_TRACE_CAT2(a, b)
#if XS_TELEMETRY_ENABLED
#define XS_TRACE_SPAN(name) \
    ::xs::util::trace::Span XS_TRACE_CAT(xs_trace_span_, __LINE__)(name)
#else
#define XS_TRACE_SPAN(name) ((void)0)
#endif
