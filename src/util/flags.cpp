#include "util/flags.h"

#include <cstdlib>
#include <sstream>

namespace xs::util {

Flags::Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            positional_.push_back(arg);
            continue;
        }
        arg = arg.substr(2);
        const auto eq = arg.find('=');
        if (eq != std::string::npos) {
            values_[arg.substr(0, eq)] = arg.substr(eq + 1);
        } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
            values_[arg] = argv[++i];
        } else {
            values_[arg] = "true";
        }
    }
}

std::string Flags::get_string(const std::string& name, const std::string& def) const {
    const auto it = values_.find(name);
    return it == values_.end() ? def : it->second;
}

std::int64_t Flags::get_int(const std::string& name, std::int64_t def) const {
    const auto it = values_.find(name);
    return it == values_.end() ? def : std::strtoll(it->second.c_str(), nullptr, 10);
}

double Flags::get_double(const std::string& name, double def) const {
    const auto it = values_.find(name);
    return it == values_.end() ? def : std::strtod(it->second.c_str(), nullptr);
}

bool Flags::get_bool(const std::string& name, bool def) const {
    const auto it = values_.find(name);
    if (it == values_.end()) return def;
    return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::vector<std::int64_t> Flags::get_int_list(const std::string& name,
                                              const std::vector<std::int64_t>& def) const {
    const auto it = values_.find(name);
    if (it == values_.end()) return def;
    std::vector<std::int64_t> out;
    std::stringstream ss(it->second);
    std::string item;
    while (std::getline(ss, item, ',')) {
        if (!item.empty()) out.push_back(std::strtoll(item.c_str(), nullptr, 10));
    }
    return out;
}

}  // namespace xs::util
