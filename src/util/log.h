// Lightweight leveled logging with a wall-clock stopwatch.
#pragma once

#include <chrono>
#include <string>

namespace xs::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

// Global minimum level; messages below it are dropped. Initialized from the
// XS_LOG environment variable (debug|info|warn|error; default info);
// set_log_level() overrides.
void set_log_level(LogLevel level);
LogLevel log_level();

// Prefix stamped on every message after the level tag. Sweep worker
// processes set "[w<pid>] " so interleaved coordinator/worker stderr stays
// attributable.
void set_log_prefix(const std::string& prefix);

void log(LogLevel level, const std::string& message);

inline void log_debug(const std::string& m) { log(LogLevel::kDebug, m); }
inline void log_info(const std::string& m) { log(LogLevel::kInfo, m); }
inline void log_warn(const std::string& m) { log(LogLevel::kWarn, m); }
inline void log_error(const std::string& m) { log(LogLevel::kError, m); }

// Debug logging that compiles out entirely with -DXS_LOG_DEBUG_ENABLED=0
// (CMake option XS_DEBUG_LOG=OFF): the message expression is never
// evaluated. With it compiled in, the level check short-circuits message
// construction when XS_LOG is above debug.
#ifndef XS_LOG_DEBUG_ENABLED
#define XS_LOG_DEBUG_ENABLED 1
#endif
#if XS_LOG_DEBUG_ENABLED
#define XS_DLOG(msg)                                                \
    do {                                                            \
        if (::xs::util::log_level() <= ::xs::util::LogLevel::kDebug) \
            ::xs::util::log_debug(msg);                             \
    } while (0)
#else
#define XS_DLOG(msg) ((void)0)
#endif

// Wall-clock stopwatch for coarse phase timing in trainers and benches.
class Stopwatch {
public:
    Stopwatch() : start_(clock::now()) {}

    void reset() { start_ = clock::now(); }

    double seconds() const {
        return std::chrono::duration<double>(clock::now() - start_).count();
    }

private:
    using clock = std::chrono::steady_clock;
    clock::time_point start_;
};

}  // namespace xs::util
