#include "util/trace.h"

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <mutex>
#include <vector>

namespace xs::util::trace {
namespace {

constexpr std::size_t kReserveEvents = 1 << 14;  // per thread, ~384 KiB

struct Event {
    const char* name;
    std::uint64_t t0_ns;
    std::uint64_t dur_ns;
};

struct ThreadBuffer {
    int tid = 0;
    std::vector<Event> events;
};

struct Session {
    std::mutex mutex;
    std::string path;
    std::uint64_t origin_ns = 0;
    bool started = false;
    int next_tid = 1;
    std::vector<ThreadBuffer*> live;
    // Buffers from exited threads, kept until stop_and_write().
    std::vector<ThreadBuffer> retired;
};

Session& session() {
    static Session* s = new Session();
    return *s;
}

struct BufferOwner {
    ThreadBuffer* buf = nullptr;
    ~BufferOwner() {
        if (!buf) return;
        Session& s = session();
        std::lock_guard<std::mutex> lock(s.mutex);
        for (auto it = s.live.begin(); it != s.live.end(); ++it) {
            if (*it == buf) {
                s.live.erase(it);
                break;
            }
        }
        s.retired.push_back(std::move(*buf));
        delete buf;
        buf = nullptr;
    }
};

thread_local BufferOwner t_buffer_owner;

ThreadBuffer& my_buffer() {
    if (!t_buffer_owner.buf) {
        ThreadBuffer* b = new ThreadBuffer();
        b->events.reserve(kReserveEvents);
        Session& s = session();
        std::lock_guard<std::mutex> lock(s.mutex);
        b->tid = s.next_tid++;
        s.live.push_back(b);
        t_buffer_owner.buf = b;
    }
    return *t_buffer_owner.buf;
}

void write_events(std::FILE* f, const ThreadBuffer& buf,
                  std::uint64_t origin_ns, int pid, bool& first) {
    for (const Event& e : buf.events) {
        std::uint64_t rel = e.t0_ns >= origin_ns ? e.t0_ns - origin_ns : 0;
        std::fprintf(f,
                     "%s{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,"
                     "\"dur\":%.3f,\"pid\":%d,\"tid\":%d}",
                     first ? "\n" : ",\n", e.name,
                     static_cast<double>(rel) / 1000.0,
                     static_cast<double>(e.dur_ns) / 1000.0, pid, buf.tid);
        first = false;
    }
}

}  // namespace

namespace detail {

std::atomic<bool> g_enabled{false};

std::uint64_t now_ns() noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

void emit(const char* name, std::uint64_t t0_ns, std::uint64_t t1_ns) {
    if (!g_enabled.load(std::memory_order_relaxed)) return;
    ThreadBuffer& buf = my_buffer();
    buf.events.push_back(
        Event{name, t0_ns, t1_ns >= t0_ns ? t1_ns - t0_ns : 0});
}

}  // namespace detail

void start(const std::string& path) {
    Session& s = session();
    std::lock_guard<std::mutex> lock(s.mutex);
    s.path = path;
    s.origin_ns = detail::now_ns();
    s.started = true;
    for (ThreadBuffer* b : s.live) b->events.clear();
    s.retired.clear();
    detail::g_enabled.store(true, std::memory_order_relaxed);
}

std::string stop_and_write() {
    Session& s = session();
    detail::g_enabled.store(false, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(s.mutex);
    if (!s.started) return "";
    std::FILE* f = std::fopen(s.path.c_str(), "w");
    if (f == nullptr) return "";
    const int pid = static_cast<int>(::getpid());
    std::fprintf(f, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    bool first = true;
    for (const ThreadBuffer* b : s.live)
        write_events(f, *b, s.origin_ns, pid, first);
    for (const ThreadBuffer& b : s.retired)
        write_events(f, b, s.origin_ns, pid, first);
    std::fprintf(f, "\n]}\n");
    std::fclose(f);
    for (ThreadBuffer* b : s.live) b->events.clear();
    s.retired.clear();
    s.started = false;
    std::string written = s.path;
    s.path.clear();
    return written;
}

}  // namespace xs::util::trace
