// Tiny CSV writer used by the benchmark harness to persist the series that
// regenerate the paper's tables and figures (one file per artifact under
// results/).
#pragma once

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace xs::util {

class CsvWriter {
public:
    // Opens `path` for writing and emits the header row immediately.
    CsvWriter(const std::string& path, const std::vector<std::string>& header);

    // Append one row; each cell is formatted with operator<<.
    template <typename... Cells>
    void row(const Cells&... cells) {
        std::ostringstream line;
        append_cells(line, cells...);
        out_ << line.str() << '\n';
    }

    void flush() { out_.flush(); }
    bool ok() const { return out_.good(); }

private:
    template <typename First, typename... Rest>
    static void append_cells(std::ostringstream& line, const First& first,
                             const Rest&... rest) {
        line << first;
        ((line << ',' << rest), ...);
    }

    std::ofstream out_;
};

// Render a simple aligned text table to stdout (paper-style rows).
class TextTable {
public:
    explicit TextTable(std::vector<std::string> header);

    void add_row(std::vector<std::string> cells);
    std::string str() const;

private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

// Format a double with fixed precision (helper for table cells).
std::string fmt(double value, int precision = 2);

// Shortest %g formatting — compact ids/labels like "0.8" or "1e-05".
std::string fmt_g(double value);

}  // namespace xs::util
