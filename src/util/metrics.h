// Process-wide telemetry: registered counters and log2-bucket latency
// histograms, sharded per thread and merged on snapshot.
//
// Design goals (DESIGN.md §10):
//  - Zero allocation in steady state: handles are registered once (function
//    local statics behind the XS_COUNT / XS_TIMER_NS macros), each thread
//    lazily allocates one fixed-size shard of relaxed atomics on first use,
//    and after that every add()/record() is a single fetch_add.
//  - Deterministic merges: snapshot() sums live shards plus the totals
//    retired by exited threads, so joined-thread writes are always visible
//    and totals are independent of thread count.
//  - Wire friendly: snapshots serialize to a small stable JSON schema that
//    sweep workers ship to the supervisor in a kMetrics frame and that
//    from_json() parses back for merging across processes.
//
// Telemetry compiles out entirely with -DXS_TELEMETRY_ENABLED=0 (CMake
// option XS_TELEMETRY=OFF): the macros become no-ops and no registry code is
// referenced from instrumented call sites.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#ifndef XS_TELEMETRY_ENABLED
#define XS_TELEMETRY_ENABLED 1
#endif

namespace xs::util::metrics {

// Histograms use log2 buckets: bucket 0 counts zero values, bucket i >= 1
// counts values in [2^(i-1), 2^i). 64 buckets cover the full uint64 range,
// which at nanosecond resolution spans sub-ns to centuries.
inline constexpr int kHistogramBuckets = 64;

namespace detail {
std::size_t register_counter(const std::string& name);
std::size_t register_histogram(const std::string& name);
void bump(std::size_t slot, std::uint64_t n) noexcept;
void record_value(std::size_t base, std::uint64_t value) noexcept;
std::uint64_t now_ns() noexcept;
}  // namespace detail

// Lightweight value handles; copyable, trivially destructible, safe to keep
// in function-local statics. add()/record() touch only the calling thread's
// shard.
class Counter {
public:
    void add(std::uint64_t n = 1) const noexcept { detail::bump(slot_, n); }

private:
    friend Counter counter(const std::string&);
    explicit Counter(std::size_t slot) : slot_(slot) {}
    std::size_t slot_;
};

class Histogram {
public:
    void record(std::uint64_t value) const noexcept {
        detail::record_value(base_, value);
    }

private:
    friend Histogram histogram(const std::string&);
    explicit Histogram(std::size_t base) : base_(base) {}
    std::size_t base_;
};

// Find-or-register by name (same name always maps to the same slots).
// Registration takes a mutex and may allocate; steady-state add/record do
// not. Throws std::runtime_error if the fixed slot capacity is exhausted.
Counter counter(const std::string& name);
Histogram histogram(const std::string& name);

// Detail mode gates instrumentation that is too fine-grained to keep on by
// default (per-block GEMM pack/kernel splits). Initialized from the
// XS_METRICS environment variable ("detail" enables it); tests and drivers
// may override programmatically.
bool detail_enabled() noexcept;
void set_detail(bool on);

// Scoped nanosecond timer recording into a histogram on destruction.
class ScopedTimerNs {
public:
    explicit ScopedTimerNs(Histogram h) : h_(h), t0_(detail::now_ns()) {}
    ~ScopedTimerNs() { h_.record(detail::now_ns() - t0_); }
    ScopedTimerNs(const ScopedTimerNs&) = delete;
    ScopedTimerNs& operator=(const ScopedTimerNs&) = delete;

private:
    Histogram h_;
    std::uint64_t t0_;
};

// Merged point-in-time view of every registered metric.
struct HistogramSnapshot {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    // Trimmed to the last non-zero bucket (may be empty / shorter than
    // kHistogramBuckets).
    std::vector<std::uint64_t> buckets;

    bool operator==(const HistogramSnapshot& o) const {
        return count == o.count && sum == o.sum && buckets == o.buckets;
    }
};

struct Snapshot {
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, HistogramSnapshot> histograms;

    bool empty() const { return counters.empty() && histograms.empty(); }
    bool operator==(const Snapshot& o) const {
        return counters == o.counters && histograms == o.histograms;
    }
};

Snapshot snapshot();
void merge(Snapshot& into, const Snapshot& from);

// Stable schema:
//   {"counters":{"name":123,...},
//    "histograms":{"name":{"count":2,"sum":30,"buckets":[0,1,1]},...}}
// from_json() accepts exactly what to_json() emits (plus insignificant
// whitespace) and returns false on malformed input without touching `out`.
std::string to_json(const Snapshot& snap);
bool from_json(const std::string& json, Snapshot& out);

// Testing hook: zero every live shard and the retired totals. Registered
// names (and handed-out handles) stay valid.
void reset();

}  // namespace xs::util::metrics

#define XS_METRICS_CAT2(a, b) a##b
#define XS_METRICS_CAT(a, b) XS_METRICS_CAT2(a, b)

#if XS_TELEMETRY_ENABLED
// Bump a named counter by n. Registration happens once per call site.
#define XS_COUNT(name, n)                                              \
    do {                                                               \
        static const ::xs::util::metrics::Counter xs_count_handle =   \
            ::xs::util::metrics::counter(name);                        \
        xs_count_handle.add(n);                                        \
    } while (0)
// Time the enclosing scope into a named nanosecond histogram.
#define XS_TIMER_NS(name)                                                     \
    static const ::xs::util::metrics::Histogram XS_METRICS_CAT(               \
        xs_timer_hist_, __LINE__) = ::xs::util::metrics::histogram(name);     \
    ::xs::util::metrics::ScopedTimerNs XS_METRICS_CAT(xs_timer_, __LINE__)(   \
        XS_METRICS_CAT(xs_timer_hist_, __LINE__))
#else
#define XS_COUNT(name, n) ((void)0)
#define XS_TIMER_NS(name) ((void)0)
#endif
