// parallel_for: split [begin, end) into contiguous chunks across a small
// persistent worker pool. Used by the GEMM and the crossbar tile pipeline.
//
// The grain is deliberately coarse — on the 2-core evaluation machines thread
// startup would otherwise dominate the small kernels.
#pragma once

#include <cstddef>
#include <functional>

namespace xs::util {

// Number of worker threads the pool was built with (>= 1).
std::size_t worker_count();

// True while the calling thread is executing a chunk of a pool dispatch
// (pool workers, or the dispatching thread during its own multi-part run).
// Callers that would otherwise start helper threads doing top-level
// dispatches of their own (e.g. the evaluator's repeat-overlap producer)
// must check this: a top-level dispatch from a helper thread blocks on the
// pool's single task slot until the enclosing region finishes, so waiting
// on such a helper from inside the region deadlocks.
bool in_parallel_region();

// Invoke fn(i) for every i in [begin, end). Blocks until complete.
// fn must be safe to call concurrently for distinct i.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn);

// Chunked variant: fn(chunk_begin, chunk_end) over a partition of the range.
void parallel_for_chunks(std::size_t begin, std::size_t end,
                         const std::function<void(std::size_t, std::size_t)>& fn);

// Chunked variant that also passes a worker slot index in [0, worker_count())
// so callers can maintain per-worker scratch state (e.g. one solver
// workspace per slot) without locking. Slots are unique per concurrently-
// executing chunk (sequential reuse is possible, concurrent reuse is not):
// top-level dispatches from distinct threads are serialized by the pool,
// and nested dispatches from inside a chunk run inline on the calling
// chunk's thread, reporting slot 0 — so per-slot state shared between a
// caller and its own nested dispatch would collide on slot 0; nested
// callbacks must use their own state.
void parallel_for_workers(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t worker, std::size_t chunk_begin,
                             std::size_t chunk_end)>& fn);

// Allocation-free dispatch: a plain function pointer plus an opaque context,
// so repeated dispatches construct no std::function and perform no heap
// allocation. This is the primitive the inference engine's steady-state
// batch loop uses (DESIGN.md §6); the std::function overloads above wrap it.
using WorkerRangeFn = void (*)(void* ctx, std::size_t worker,
                               std::size_t chunk_begin, std::size_t chunk_end);
void parallel_for_workers(std::size_t begin, std::size_t end, WorkerRangeFn fn,
                          void* ctx);

}  // namespace xs::util
