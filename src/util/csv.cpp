#include "util/csv.h"

#include <algorithm>
#include <cstdio>
#include <iomanip>

namespace xs::util {

CsvWriter::CsvWriter(const std::string& path, const std::vector<std::string>& header)
    : out_(path) {
    for (std::size_t i = 0; i < header.size(); ++i) {
        if (i) out_ << ',';
        out_ << header[i];
    }
    out_ << '\n';
}

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
    cells.resize(header_.size());
    rows_.push_back(std::move(cells));
}

namespace {

// Display width of a UTF-8 cell: count non-continuation bytes so glyphs
// like '±' don't skew the column alignment.
std::size_t display_width(const std::string& s) {
    std::size_t n = 0;
    for (const unsigned char ch : s)
        if ((ch & 0xC0) != 0x80) ++n;
    return n;
}

}  // namespace

std::string TextTable::str() const {
    std::vector<std::size_t> width(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        width[c] = display_width(header_[c]);
    for (const auto& row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], display_width(row[c]));

    std::ostringstream os;
    auto emit_row = [&](const std::vector<std::string>& row) {
        os << "| ";
        for (std::size_t c = 0; c < header_.size(); ++c) {
            const std::string& cell = c < row.size() ? row[c] : std::string();
            os << cell << std::string(width[c] - display_width(cell), ' ')
               << " | ";
        }
        os << '\n';
    };
    emit_row(header_);
    os << "|";
    for (std::size_t c = 0; c < header_.size(); ++c)
        os << std::string(width[c] + 2, '-') << "-|";
    os << '\n';
    for (const auto& row : rows_) emit_row(row);
    return os.str();
}

std::string fmt(double value, int precision) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return os.str();
}

std::string fmt_g(double value) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", value);
    return buf;
}

}  // namespace xs::util
