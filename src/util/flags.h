// Minimal command-line flag parser used by the benchmark and example
// binaries: `--name=value` or `--name value`; `--flag` alone sets a bool.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace xs::util {

class Flags {
public:
    Flags(int argc, char** argv);

    bool has(const std::string& name) const { return values_.count(name) != 0; }

    std::string get_string(const std::string& name, const std::string& def) const;
    std::int64_t get_int(const std::string& name, std::int64_t def) const;
    double get_double(const std::string& name, double def) const;
    bool get_bool(const std::string& name, bool def) const;

    // Comma-separated list of integers, e.g. --sizes=16,32,64.
    std::vector<std::int64_t> get_int_list(const std::string& name,
                                           const std::vector<std::int64_t>& def) const;

    // Positional (non-flag) arguments in order of appearance.
    const std::vector<std::string>& positional() const { return positional_; }

private:
    std::map<std::string, std::string> values_;
    std::vector<std::string> positional_;
};

}  // namespace xs::util
