#include "util/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

namespace xs::util {
namespace {

// Nested dispatch from inside a worker (or a second concurrent top-level
// dispatch) is not supported by the single-slot pool; such calls run inline.
thread_local bool tl_in_parallel_region = false;

using ChunkFn = std::function<void(std::size_t, std::size_t, std::size_t)>;
using RawFn = WorkerRangeFn;

// A tiny persistent pool: workers wait on a condition variable for a chunked
// task, execute their share, and signal completion. One pool per process.
// Tasks receive (part, lo, hi); parts are distinct per concurrent execution,
// so they double as per-worker state slots.
class Pool {
public:
    Pool() {
        const unsigned hw = std::thread::hardware_concurrency();
        const std::size_t n = hw > 1 ? hw : 1;
        for (std::size_t t = 1; t < n; ++t)
            workers_.emplace_back([this, t] { worker_loop(t); });
        count_ = n;
    }

    ~Pool() {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            shutdown_ = true;
        }
        cv_.notify_all();
        for (auto& w : workers_) w.join();
    }

    std::size_t count() const { return count_; }

    // Core dispatch: a raw function pointer + context, so the hot path
    // (steady-state inference, the tile loop) allocates nothing. The
    // std::function overload below wraps itself in a trampoline.
    void run(std::size_t begin, std::size_t end, RawFn fn, void* ctx) {
        const std::size_t total = end - begin;
        if (total == 0) return;
        // Single-part dispatches (1-worker pool, nested call, or a range of
        // one) run inline without touching pool state. In particular they
        // must not hold the dispatch mutex while running: a single-element
        // top-level range whose body re-dispatches (e.g. a 1-shard sweep
        // whose cells use the pool) would deadlock on its own lock.
        const std::size_t parts = std::min(count_, total);
        if (parts == 1 || tl_in_parallel_region) {
            fn(ctx, 0, begin, end);
            return;
        }
        // Serialize concurrent top-level dispatches from distinct threads:
        // the pool has a single task slot, and the thread-local region flag
        // cannot see another thread's in-flight dispatch.
        std::lock_guard<std::mutex> dispatch(dispatch_mutex_);
        tl_in_parallel_region = true;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            task_ = fn;
            task_ctx_ = ctx;
            task_begin_ = begin;
            task_end_ = end;
            task_parts_ = parts;
            next_part_ = 1;  // part 0 runs on the calling thread
            pending_ = parts - 1;
            ++generation_;
        }
        cv_.notify_all();
        run_part(0, begin, end, parts, fn, ctx);
        {
            std::unique_lock<std::mutex> lock(mutex_);
            done_cv_.wait(lock, [this] { return pending_ == 0; });
            task_ = nullptr;
        }
        tl_in_parallel_region = false;
    }

    void run(std::size_t begin, std::size_t end, const ChunkFn& fn) {
        run(begin, end,
            [](void* ctx, std::size_t part, std::size_t lo, std::size_t hi) {
                (*static_cast<const ChunkFn*>(ctx))(part, lo, hi);
            },
            const_cast<void*>(static_cast<const void*>(&fn)));
    }

private:
    static void run_part(std::size_t part, std::size_t begin, std::size_t end,
                         std::size_t parts, RawFn fn, void* ctx) {
        const std::size_t total = end - begin;
        const std::size_t chunk = (total + parts - 1) / parts;
        const std::size_t lo = begin + part * chunk;
        const std::size_t hi = std::min(end, lo + chunk);
        if (lo < hi) fn(ctx, part, lo, hi);
    }

    void worker_loop(std::size_t) {
        tl_in_parallel_region = true;  // workers never re-dispatch to the pool
        std::uint64_t seen_generation = 0;
        while (true) {
            RawFn fn = nullptr;
            void* ctx = nullptr;
            std::size_t part = 0, begin = 0, end = 0, parts = 0;
            {
                std::unique_lock<std::mutex> lock(mutex_);
                cv_.wait(lock, [&] {
                    return shutdown_ ||
                           (task_ != nullptr && generation_ != seen_generation &&
                            next_part_ < task_parts_);
                });
                if (shutdown_) return;
                fn = task_;
                ctx = task_ctx_;
                part = next_part_++;
                begin = task_begin_;
                end = task_end_;
                parts = task_parts_;
                if (next_part_ >= task_parts_) seen_generation = generation_;
            }
            run_part(part, begin, end, parts, fn, ctx);
            {
                std::lock_guard<std::mutex> lock(mutex_);
                if (--pending_ == 0) done_cv_.notify_all();
            }
        }
    }

    std::vector<std::thread> workers_;
    std::size_t count_ = 1;

    std::mutex dispatch_mutex_;
    std::mutex mutex_;
    std::condition_variable cv_;
    std::condition_variable done_cv_;
    RawFn task_ = nullptr;
    void* task_ctx_ = nullptr;
    std::size_t task_begin_ = 0, task_end_ = 0, task_parts_ = 0, next_part_ = 0;
    std::size_t pending_ = 0;
    std::uint64_t generation_ = 0;
    bool shutdown_ = false;
};

Pool& pool() {
    static Pool p;
    return p;
}

}  // namespace

std::size_t worker_count() { return pool().count(); }

bool in_parallel_region() { return tl_in_parallel_region; }

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn) {
    pool().run(begin, end,
               [&fn](std::size_t, std::size_t lo, std::size_t hi) {
                   for (std::size_t i = lo; i < hi; ++i) fn(i);
               });
}

void parallel_for_chunks(std::size_t begin, std::size_t end,
                         const std::function<void(std::size_t, std::size_t)>& fn) {
    pool().run(begin, end, [&fn](std::size_t, std::size_t lo, std::size_t hi) {
        fn(lo, hi);
    });
}

void parallel_for_workers(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
    pool().run(begin, end, fn);
}

void parallel_for_workers(std::size_t begin, std::size_t end, WorkerRangeFn fn,
                          void* ctx) {
    pool().run(begin, end, fn, ctx);
}

}  // namespace xs::util
