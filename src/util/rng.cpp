#include "util/rng.h"

namespace xs::util {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& s : s_) s = splitmix64(sm);
    has_cached_normal_ = false;
}

std::uint64_t Rng::next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double Rng::uniform() {
    // 53 high bits -> double in [0, 1).
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::normal() {
    if (has_cached_normal_) {
        has_cached_normal_ = false;
        return cached_normal_;
    }
    double u1 = 0.0;
    do {
        u1 = uniform();
    } while (u1 <= 1e-300);
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * 3.14159265358979323846 * u2;
    cached_normal_ = r * std::sin(theta);
    has_cached_normal_ = true;
    return r * std::cos(theta);
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
    std::vector<std::size_t> idx(n);
    for (std::size_t i = 0; i < n; ++i) idx[i] = i;
    for (std::size_t i = n; i > 1; --i) {
        const std::size_t j = static_cast<std::size_t>(uniform_index(i));
        std::swap(idx[i - 1], idx[j]);
    }
    return idx;
}

Rng Rng::split(std::uint64_t tag) {
    // Mix the current state with the tag through splitmix so child streams
    // are decorrelated from the parent and from each other.
    std::uint64_t seed = s_[0] ^ rotl(s_[2], 13) ^ (tag * 0xd1342543de82ef95ULL);
    return Rng(splitmix64(seed));
}

}  // namespace xs::util
