#include "util/rng.h"

#include <cstdlib>
#include <limits>

namespace xs::util {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// Marsaglia–Tsang ziggurat tables for the standard normal, 128 strips.
// Strip edges descend from x[0] = R to x[127] = 0; every strip (and the
// base strip including the tail beyond R) has area kZigV. Classic constants
// R = 3.442619855899, V = 9.91256303526217e-3 (their 2000 JSS paper); the
// recursion f(x_i) = f(x_{i-1}) + V/x_{i-1} lands exactly on f = 1 at the
// 127th edge, which is pinned rather than computed (the canonical tables do
// the same — the last log would round negative).
//   x[i] — outer edge of strip i (x[0] = R … x[127] = 0)
//   f[i] — exp(-x[i]²/2)  (f[127] = 1)
//   w[i] — mantissa→x scale: strip i samples x = m·w[i], |m| < 2^51
//   k[i] — fast-accept threshold: |m| < k[i]  ⟺  |x| inside the strip core
constexpr double kZigR = 3.442619855899;
constexpr double kZigV = 9.91256303526217e-3;
constexpr double kZigM = 2251799813685248.0;  // 2^51

struct ZigguratTables {
    double x[128];
    double f[128];
    double k[128];
    double w[128];

    ZigguratTables() {
        x[0] = kZigR;
        f[0] = std::exp(-0.5 * kZigR * kZigR);
        for (int i = 1; i <= 126; ++i) {
            x[i] = std::sqrt(-2.0 * std::log(kZigV / x[i - 1] + f[i - 1]));
            f[i] = std::exp(-0.5 * x[i] * x[i]);
        }
        x[127] = 0.0;
        f[127] = 1.0;
        // Strip 0 is the base: a rectangle of effective width V/f(R) whose
        // |x| > R portion funnels into the exact tail sampler.
        const double x_base = kZigV / f[0];
        w[0] = x_base / kZigM;
        k[0] = (kZigR / x_base) * kZigM;
        // Strip i ≥ 1 spans |x| ≤ x[i-1] horizontally; accept outright when
        // |x| < x[i] (fully under the curve), else test the wedge. k[127]
        // is 0: the innermost strip always takes the wedge test.
        for (int i = 1; i < 128; ++i) {
            w[i] = x[i - 1] / kZigM;
            k[i] = (x[i] / x[i - 1]) * kZigM;
        }
    }
};

const ZigguratTables& zig() {
    static const ZigguratTables tables;
    return tables;
}

// Ziggurat slow path (tail / wedge) against an arbitrary u64 source, so the
// serial and block entry points share one implementation — any divergence
// would silently break the bit-compatibility contract between them.
// Returns NaN to signal "redraw".
template <class Pop>
double slow_path_pop(const ZigguratTables& t, Pop&& pop, double x,
                     std::size_t layer) {
    const auto uni = [&]() {
        return static_cast<double>(pop() >> 11) * 0x1.0p-53;
    };
    if (layer == 0) {
        // Tail beyond R (Marsaglia's exact exponential-rejection method).
        double xt, yt;
        do {
            double u1;
            do {
                u1 = uni();
            } while (u1 <= 1e-300);
            double u2;
            do {
                u2 = uni();
            } while (u2 <= 1e-300);
            xt = -std::log(u1) / kZigR;
            yt = -std::log(u2);
        } while (yt + yt < xt * xt);
        return x > 0 ? kZigR + xt : -(kZigR + xt);
    }
    // Wedge between the layer's rectangle and the density curve.
    const double fx = std::exp(-0.5 * x * x);
    if (t.f[layer] + uni() * (t.f[layer - 1] - t.f[layer]) < fx) return x;
    return std::numeric_limits<double>::quiet_NaN();  // redraw
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double Rng::uniform() {
    // 53 high bits -> double in [0, 1).
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::normal() {
    const ZigguratTables& t = zig();
    for (;;) {
        const std::uint64_t u = next_u64();
        // Low 7 bits pick the layer; bits 12..63 form a signed 51-bit
        // mantissa (plus sign) — disjoint bit ranges of one draw.
        const std::size_t layer = static_cast<std::size_t>(u & 127);
        const std::int64_t m = static_cast<std::int64_t>(u >> 12) -
                               static_cast<std::int64_t>(kZigM);  // [-2^51, 2^51)
        const double x = static_cast<double>(m) * t.w[layer];
        if (static_cast<double>(std::llabs(m)) < t.k[layer])
            return x;  // inside the strip core
        const double r = normal_slow_path(x, layer);
        if (r == r) return r;  // NaN signals "redraw"
    }
}

double Rng::normal_slow_path(double x, std::size_t layer) {
    return slow_path_pop(zig(), [this]() { return next_u64(); }, x, layer);
}

void Rng::normal_fill(double* out, std::size_t count) {
    const ZigguratTables& t = zig();
    constexpr int B = 16;
    std::uint64_t u[B];
    double x[B];
    bool ok[B];
    std::size_t i = 0;
    while (i < count) {
        if (count - i < static_cast<std::size_t>(B)) {
            out[i++] = normal();  // short tail: plain serial draws
            continue;
        }
        for (int b = 0; b < B; ++b) u[b] = next_u64();
        bool all = true;
        for (int b = 0; b < B; ++b) {
            const std::size_t layer = static_cast<std::size_t>(u[b] & 127);
            const std::int64_t m = static_cast<std::int64_t>(u[b] >> 12) -
                                   static_cast<std::int64_t>(kZigM);
            x[b] = static_cast<double>(m) * t.w[layer];
            ok[b] = static_cast<double>(std::llabs(m)) < t.k[layer];
            all = all && ok[b];
        }
        if (all) {
            for (int b = 0; b < B; ++b) out[i + b] = x[b];
            i += B;
            continue;
        }
        // A draw in this block needs the slow path. The buffer holds exactly
        // the next B stream values, so replaying them front-to-back — with
        // the slow path's extra uniforms pulled from the same FIFO (then the
        // live stream once it drains) — consumes every stream position in
        // the same order as B serial normal() calls: identical bits.
        int pos = 0;
        const auto pop = [&]() {
            return pos < B ? u[pos++] : next_u64();
        };
        while (pos < B && i < count) {
            double r;
            for (;;) {
                const std::uint64_t uu = pop();
                const std::size_t layer = static_cast<std::size_t>(uu & 127);
                const std::int64_t m = static_cast<std::int64_t>(uu >> 12) -
                                       static_cast<std::int64_t>(kZigM);
                const double xx = static_cast<double>(m) * t.w[layer];
                if (static_cast<double>(std::llabs(m)) < t.k[layer]) {
                    r = xx;
                    break;
                }
                r = slow_path_pop(t, pop, xx, layer);
                if (r == r) break;  // NaN signals "redraw"
            }
            out[i++] = r;
        }
    }
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
    std::vector<std::size_t> idx(n);
    for (std::size_t i = 0; i < n; ++i) idx[i] = i;
    for (std::size_t i = n; i > 1; --i) {
        const std::size_t j = static_cast<std::size_t>(uniform_index(i));
        std::swap(idx[i - 1], idx[j]);
    }
    return idx;
}

Rng Rng::split(std::uint64_t tag) {
    // Mix the current state with the tag through splitmix so child streams
    // are decorrelated from the parent and from each other.
    std::uint64_t seed = s_[0] ^ rotl(s_[2], 13) ^ (tag * 0xd1342543de82ef95ULL);
    return Rng(splitmix64(seed));
}

}  // namespace xs::util
