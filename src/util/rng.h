// Deterministic random number generation for reproducible experiments.
//
// All stochastic components in the library (weight init, dataset synthesis,
// pruning-at-init scores, device variation) draw from xs::util::Rng so that a
// single seed reproduces an entire experiment end to end.
#pragma once

#include <cstdint>
#include <cmath>
#include <vector>

namespace xs::util {

// xoshiro256** by Blackman & Vigna — fast, high-quality, and trivially
// seedable via splitmix64. Not cryptographic; fine for simulation.
class Rng {
public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

    // Re-initialize the full state from a single 64-bit seed (splitmix64).
    void reseed(std::uint64_t seed);

    // Uniform 64-bit integer.
    std::uint64_t next_u64();

    // Uniform double in [0, 1).
    double uniform();

    // Uniform double in [lo, hi).
    double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

    // Uniform integer in [0, n) for n > 0.
    std::uint64_t uniform_index(std::uint64_t n) { return next_u64() % n; }

    // Standard normal via the Marsaglia–Tsang ziggurat (128 layers): one
    // u64 draw, one table compare and one multiply on the ~98 % fast path —
    // several times faster than Box–Muller, and exact (the wedge/tail
    // rejection corrects the distribution, it does not approximate it).
    double normal();

    // Normal with mean/stddev.
    double normal(double mean, double stddev) { return mean + stddev * normal(); }

    // Fill `out` with `count` standard-normal draws, bit-identical to
    // calling normal() `count` times. Draws are produced in blocks so the
    // ~98 % fast path runs as straight-line code over independent elements
    // (the serial loop stalls on the RNG state chain and the layer-table
    // loads); a block containing a rejection replays its buffered stream
    // values in exact consumption order. Bulk consumers (device variation)
    // are several times faster through this entry point.
    void normal_fill(double* out, std::size_t count);

    // Fisher–Yates shuffle of indices [0, n).
    std::vector<std::size_t> permutation(std::size_t n);

    // Derive an independent child stream; stable for a given (state, tag).
    Rng split(std::uint64_t tag);

private:
    // Rejected ziggurat candidates re-enter the fast path here.
    double normal_slow_path(double x, std::size_t layer);

    std::uint64_t s_[4] = {};
};

}  // namespace xs::util
