#include "util/metrics.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <stdexcept>

namespace xs::util::metrics {
namespace {

// Fixed shard capacity: a counter takes 1 slot, a histogram 66 (64 buckets
// + count + sum). 4096 slots = 32 KiB per thread, room for ~60 histograms
// plus hundreds of counters — far beyond what the codebase registers.
constexpr std::size_t kMaxSlots = 4096;

struct Shard {
    std::atomic<std::uint64_t> slots[kMaxSlots];
    Shard() {
        for (std::size_t i = 0; i < kMaxSlots; ++i)
            slots[i].store(0, std::memory_order_relaxed);
    }
};

struct Definition {
    bool is_histogram = false;
    std::size_t base = 0;
};

struct Registry {
    std::mutex mutex;
    std::map<std::string, Definition> defs;
    std::size_t next_slot = 0;
    std::vector<Shard*> live;
    std::uint64_t retired[kMaxSlots] = {};
    std::atomic<bool> detail{false};
    bool detail_env_read = false;
};

// Leaked on purpose: threads may still be bumping shards during static
// destruction, and snapshot order vs. TLS destructor order is otherwise
// unsequenced.
Registry& registry() {
    static Registry* r = new Registry();
    return *r;
}

std::size_t register_slots(const std::string& name, bool is_histogram,
                           std::size_t width) {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    auto it = r.defs.find(name);
    if (it != r.defs.end()) {
        if (it->second.is_histogram != is_histogram)
            throw std::runtime_error("metric '" + name +
                                     "' registered as both counter and "
                                     "histogram");
        return it->second.base;
    }
    if (r.next_slot + width > kMaxSlots)
        throw std::runtime_error(
            "metrics registry slot capacity exhausted registering '" + name +
            "'");
    Definition def;
    def.is_histogram = is_histogram;
    def.base = r.next_slot;
    r.next_slot += width;
    r.defs.emplace(name, def);
    return def.base;
}

// Per-thread shard, retired (merged into Registry::retired) at thread exit
// so totals survive short-lived worker threads.
struct ShardOwner {
    Shard* shard = nullptr;
    ~ShardOwner() {
        if (!shard) return;
        Registry& r = registry();
        std::lock_guard<std::mutex> lock(r.mutex);
        for (std::size_t i = 0; i < kMaxSlots; ++i)
            r.retired[i] +=
                shard->slots[i].load(std::memory_order_relaxed);
        for (auto it = r.live.begin(); it != r.live.end(); ++it) {
            if (*it == shard) {
                r.live.erase(it);
                break;
            }
        }
        delete shard;
        shard = nullptr;
    }
};

thread_local ShardOwner t_shard_owner;

Shard& my_shard() {
    if (!t_shard_owner.shard) {
        Shard* s = new Shard();
        Registry& r = registry();
        std::lock_guard<std::mutex> lock(r.mutex);
        r.live.push_back(s);
        t_shard_owner.shard = s;
    }
    return *t_shard_owner.shard;
}

int bucket_index(std::uint64_t value) {
    if (value == 0) return 0;
    int width = 64 - __builtin_clzll(value);
    return width < kHistogramBuckets ? width : kHistogramBuckets - 1;
}

}  // namespace

namespace detail {

std::size_t register_counter(const std::string& name) {
    return register_slots(name, /*is_histogram=*/false, 1);
}

std::size_t register_histogram(const std::string& name) {
    return register_slots(name, /*is_histogram=*/true, kHistogramBuckets + 2);
}

void bump(std::size_t slot, std::uint64_t n) noexcept {
    my_shard().slots[slot].fetch_add(n, std::memory_order_relaxed);
}

void record_value(std::size_t base, std::uint64_t value) noexcept {
    Shard& s = my_shard();
    s.slots[base + bucket_index(value)].fetch_add(1,
                                                  std::memory_order_relaxed);
    s.slots[base + kHistogramBuckets].fetch_add(1, std::memory_order_relaxed);
    s.slots[base + kHistogramBuckets + 1].fetch_add(
        value, std::memory_order_relaxed);
}

std::uint64_t now_ns() noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

}  // namespace detail

Counter counter(const std::string& name) {
    return Counter(detail::register_counter(name));
}

Histogram histogram(const std::string& name) {
    return Histogram(detail::register_histogram(name));
}

bool detail_enabled() noexcept {
    Registry& r = registry();
    if (!r.detail_env_read) {
        std::lock_guard<std::mutex> lock(r.mutex);
        if (!r.detail_env_read) {
            const char* env = std::getenv("XS_METRICS");
            if (env != nullptr && std::strcmp(env, "detail") == 0)
                r.detail.store(true, std::memory_order_relaxed);
            r.detail_env_read = true;
        }
    }
    return r.detail.load(std::memory_order_relaxed);
}

void set_detail(bool on) {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    r.detail.store(on, std::memory_order_relaxed);
    r.detail_env_read = true;
}

Snapshot snapshot() {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    std::uint64_t totals[kMaxSlots];
    std::memcpy(totals, r.retired, sizeof(totals));
    for (const Shard* s : r.live)
        for (std::size_t i = 0; i < r.next_slot; ++i)
            totals[i] += s->slots[i].load(std::memory_order_relaxed);
    Snapshot snap;
    for (const auto& [name, def] : r.defs) {
        if (!def.is_histogram) {
            snap.counters[name] = totals[def.base];
            continue;
        }
        HistogramSnapshot h;
        h.count = totals[def.base + kHistogramBuckets];
        h.sum = totals[def.base + kHistogramBuckets + 1];
        int last = -1;
        for (int i = 0; i < kHistogramBuckets; ++i)
            if (totals[def.base + i] != 0) last = i;
        h.buckets.assign(totals + def.base, totals + def.base + last + 1);
        snap.histograms.emplace(name, std::move(h));
    }
    return snap;
}

void merge(Snapshot& into, const Snapshot& from) {
    for (const auto& [name, value] : from.counters)
        into.counters[name] += value;
    for (const auto& [name, h] : from.histograms) {
        HistogramSnapshot& dst = into.histograms[name];
        dst.count += h.count;
        dst.sum += h.sum;
        if (dst.buckets.size() < h.buckets.size())
            dst.buckets.resize(h.buckets.size(), 0);
        for (std::size_t i = 0; i < h.buckets.size(); ++i)
            dst.buckets[i] += h.buckets[i];
    }
}

void reset() {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    std::memset(r.retired, 0, sizeof(r.retired));
    for (Shard* s : r.live)
        for (std::size_t i = 0; i < kMaxSlots; ++i)
            s->slots[i].store(0, std::memory_order_relaxed);
}

namespace {

void append_json_string(std::string& out, const std::string& s) {
    out += '"';
    for (char c : s) {
        if (c == '"' || c == '\\') out += '\\';
        out += c;
    }
    out += '"';
}

// --- minimal parser for the to_json() schema -------------------------------

struct Parser {
    const char* p;
    const char* end;

    void skip_ws() {
        while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' ||
                           *p == '\r'))
            ++p;
    }
    bool consume(char c) {
        skip_ws();
        if (p < end && *p == c) {
            ++p;
            return true;
        }
        return false;
    }
    bool peek(char c) {
        skip_ws();
        return p < end && *p == c;
    }
    bool parse_string(std::string& out) {
        skip_ws();
        if (p >= end || *p != '"') return false;
        ++p;
        out.clear();
        while (p < end && *p != '"') {
            if (*p == '\\') {
                ++p;
                if (p >= end) return false;
            }
            out += *p++;
        }
        if (p >= end) return false;
        ++p;  // closing quote
        return true;
    }
    bool parse_u64(std::uint64_t& out) {
        skip_ws();
        if (p >= end || *p < '0' || *p > '9') return false;
        out = 0;
        while (p < end && *p >= '0' && *p <= '9') {
            out = out * 10 + static_cast<std::uint64_t>(*p - '0');
            ++p;
        }
        return true;
    }
};

bool parse_histogram(Parser& ps, HistogramSnapshot& h) {
    if (!ps.consume('{')) return false;
    if (ps.consume('}')) return true;
    while (true) {
        std::string key;
        if (!ps.parse_string(key) || !ps.consume(':')) return false;
        if (key == "count") {
            if (!ps.parse_u64(h.count)) return false;
        } else if (key == "sum") {
            if (!ps.parse_u64(h.sum)) return false;
        } else if (key == "buckets") {
            if (!ps.consume('[')) return false;
            if (!ps.consume(']')) {
                while (true) {
                    std::uint64_t v = 0;
                    if (!ps.parse_u64(v)) return false;
                    h.buckets.push_back(v);
                    if (ps.consume(']')) break;
                    if (!ps.consume(',')) return false;
                }
            }
        } else {
            return false;
        }
        if (ps.consume('}')) return true;
        if (!ps.consume(',')) return false;
    }
}

}  // namespace

std::string to_json(const Snapshot& snap) {
    std::string out;
    out.reserve(256 + snap.counters.size() * 32 +
                snap.histograms.size() * 256);
    out += "{\"counters\":{";
    bool first = true;
    for (const auto& [name, value] : snap.counters) {
        if (!first) out += ',';
        first = false;
        append_json_string(out, name);
        out += ':';
        out += std::to_string(value);
    }
    out += "},\"histograms\":{";
    first = true;
    for (const auto& [name, h] : snap.histograms) {
        if (!first) out += ',';
        first = false;
        append_json_string(out, name);
        out += ":{\"count\":";
        out += std::to_string(h.count);
        out += ",\"sum\":";
        out += std::to_string(h.sum);
        out += ",\"buckets\":[";
        for (std::size_t i = 0; i < h.buckets.size(); ++i) {
            if (i != 0) out += ',';
            out += std::to_string(h.buckets[i]);
        }
        out += "]}";
    }
    out += "}}";
    return out;
}

bool from_json(const std::string& json, Snapshot& out) {
    Parser ps{json.data(), json.data() + json.size()};
    Snapshot snap;
    bool saw_counters = false, saw_histograms = false;
    if (!ps.consume('{')) return false;
    while (!ps.peek('}')) {
        std::string section;
        if (!ps.parse_string(section) || !ps.consume(':')) return false;
        if (!ps.consume('{')) return false;
        if (section == "counters") {
            saw_counters = true;
            while (!ps.peek('}')) {
                std::string name;
                std::uint64_t value = 0;
                if (!ps.parse_string(name) || !ps.consume(':') ||
                    !ps.parse_u64(value))
                    return false;
                snap.counters[name] = value;
                if (!ps.peek('}') && !ps.consume(',')) return false;
            }
            if (!ps.consume('}')) return false;
        } else if (section == "histograms") {
            saw_histograms = true;
            while (!ps.peek('}')) {
                std::string name;
                if (!ps.parse_string(name) || !ps.consume(':')) return false;
                HistogramSnapshot h;
                if (!parse_histogram(ps, h)) return false;
                snap.histograms.emplace(std::move(name), std::move(h));
                if (!ps.peek('}') && !ps.consume(',')) return false;
            }
            if (!ps.consume('}')) return false;
        } else {
            return false;
        }
        if (!ps.peek('}') && !ps.consume(',')) return false;
    }
    if (!ps.consume('}')) return false;
    ps.skip_ws();
    if (ps.p != ps.end) return false;
    // to_json always emits both sections; a payload missing one is a torn
    // or foreign frame, not an empty snapshot.
    if (!saw_counters || !saw_histograms) return false;
    out = std::move(snap);
    return true;
}

}  // namespace xs::util::metrics
