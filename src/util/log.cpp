#include "util/log.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace xs::util {
namespace {

LogLevel level_from_env() {
    const char* env = std::getenv("XS_LOG");
    if (env == nullptr) return LogLevel::kInfo;
    if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
    if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
    if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
    if (std::strcmp(env, "error") == 0) return LogLevel::kError;
    std::fprintf(stderr, "[WARN] unknown XS_LOG level '%s'; using info\n",
                 env);
    return LogLevel::kInfo;
}

LogLevel g_level = level_from_env();
std::string g_prefix;
std::mutex g_mutex;

const char* level_name(LogLevel level) {
    switch (level) {
        case LogLevel::kDebug: return "DEBUG";
        case LogLevel::kInfo: return "INFO";
        case LogLevel::kWarn: return "WARN";
        case LogLevel::kError: return "ERROR";
    }
    return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

void set_log_prefix(const std::string& prefix) {
    std::lock_guard<std::mutex> lock(g_mutex);
    g_prefix = prefix;
}

void log(LogLevel level, const std::string& message) {
    if (static_cast<int>(level) < static_cast<int>(g_level)) return;
    std::lock_guard<std::mutex> lock(g_mutex);
    std::fprintf(stderr, "[%s] %s%s\n", level_name(level), g_prefix.c_str(),
                 message.c_str());
}

}  // namespace xs::util
