#include "util/faultinject.h"

#include "tensor/tensor.h"  // tensor::check

#include <chrono>
#include <csignal>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

namespace xs::util::fault {

namespace {

struct FaultSpec {
    Action action = Action::kNone;
    std::string site;
    std::int64_t index = 0;
    bool every_attempt = false;
};

using Plan = std::vector<FaultSpec>;

Action parse_action(const std::string& name) {
    if (name == "crash") return Action::kCrash;
    if (name == "hang") return Action::kHang;
    if (name == "fail") return Action::kFail;
    if (name == "truncate-manifest") return Action::kTruncate;
    if (name == "net-drop") return Action::kNetDrop;
    if (name == "net-partial-write") return Action::kNetPartialWrite;
    if (name == "net-delay") return Action::kNetDelay;
    if (name == "net-disconnect") return Action::kNetDisconnect;
    tensor::check(false, "XS_FAULT: unknown action '" + name + "'");
    return Action::kNone;
}

Plan parse_plan(const std::string& text) {
    Plan plan;
    std::size_t pos = 0;
    while (pos < text.size()) {
        auto end = text.find(',', pos);
        if (end == std::string::npos) end = text.size();
        std::string item = text.substr(pos, end - pos);
        pos = end + 1;
        // Trim surrounding spaces.
        while (!item.empty() && item.front() == ' ') item.erase(0, 1);
        while (!item.empty() && item.back() == ' ') item.pop_back();
        if (item.empty()) continue;

        FaultSpec spec;
        if (!item.empty() && item.back() == '*') {
            spec.every_attempt = true;
            item.pop_back();
        }
        const auto at_pos = item.find('@');
        if (at_pos == std::string::npos) {
            // Bare action, e.g. "truncate-manifest": index 0 at the
            // action's natural site.
            spec.action = parse_action(item);
            switch (spec.action) {
                case Action::kTruncate:
                    spec.site = "record";
                    break;
                case Action::kNetDrop:
                case Action::kNetPartialWrite:
                case Action::kNetDelay:
                case Action::kNetDisconnect:
                    spec.site = "net-send";
                    break;
                default:
                    spec.site = "cell";
            }
            spec.index = 0;
        } else {
            spec.action = parse_action(item.substr(0, at_pos));
            const std::string target = item.substr(at_pos + 1);
            const auto colon = target.find(':');
            tensor::check(colon != std::string::npos && colon + 1 < target.size(),
                          "XS_FAULT: site needs an index, got '" + item + "'");
            spec.site = target.substr(0, colon);
            char* num_end = nullptr;
            const std::string num = target.substr(colon + 1);
            spec.index = std::strtoll(num.c_str(), &num_end, 10);
            tensor::check(num_end == num.c_str() + num.size() && !num.empty(),
                          "XS_FAULT: malformed index in '" + item + "'");
        }
        plan.push_back(std::move(spec));
    }
    return plan;
}

std::mutex g_mu;
std::shared_ptr<const Plan> g_plan;  // null until first query / install
bool g_loaded = false;

std::shared_ptr<const Plan> active_plan() {
    std::lock_guard<std::mutex> lock(g_mu);
    if (!g_loaded) {
        const char* env = std::getenv("XS_FAULT");
        if (env && *env) g_plan = std::make_shared<const Plan>(parse_plan(env));
        g_loaded = true;
    }
    return g_plan;
}

}  // namespace

bool enabled() {
    const auto plan = active_plan();
    return plan && !plan->empty();
}

Action at(const char* site, std::int64_t index, std::int64_t attempt) {
    const auto plan = active_plan();
    if (!plan) return Action::kNone;
    for (const FaultSpec& spec : *plan) {
        if (spec.site != site || spec.index != index) continue;
        if (attempt == 0 || spec.every_attempt) return spec.action;
    }
    return Action::kNone;
}

void execute(Action action, const char* site, std::int64_t index) {
    switch (action) {
        case Action::kCrash:
            // Die the way a real crash does: no unwinding, no flushing, no
            // exit handlers. The supervisor sees a signal-terminated child.
            std::raise(SIGKILL);
            std::abort();  // unreachable (SIGKILL cannot be handled)
        case Action::kHang:
            for (;;) std::this_thread::sleep_for(std::chrono::seconds(3600));
        case Action::kFail:
            throw std::runtime_error("injected fault: fail@" +
                                     std::string(site) + ":" +
                                     std::to_string(index));
        case Action::kNetDelay:
            std::this_thread::sleep_for(
                std::chrono::milliseconds(net_delay_ms()));
            return;
        case Action::kNone:
        case Action::kTruncate:
        case Action::kNetDrop:
        case Action::kNetPartialWrite:
        case Action::kNetDisconnect:
            return;
    }
}

std::int64_t net_delay_ms() {
    static const std::int64_t ms = [] {
        const char* env = std::getenv("XS_FAULT_NET_DELAY_MS");
        if (env && *env) {
            char* end = nullptr;
            const long long v = std::strtoll(env, &end, 10);
            if (end != env && v >= 0) return static_cast<std::int64_t>(v);
        }
        return static_cast<std::int64_t>(1000);
    }();
    return ms;
}

void install_plan(const std::string& plan) {
    auto parsed = plan.empty()
                      ? std::shared_ptr<const Plan>()
                      : std::make_shared<const Plan>(parse_plan(plan));
    std::lock_guard<std::mutex> lock(g_mu);
    g_plan = std::move(parsed);
    g_loaded = true;
}

}  // namespace xs::util::fault
