#include "tensor/im2col.h"

#include "tensor/gemm.h"

#include <cstdint>
#include <algorithm>
#include <cstring>

namespace xs::tensor {

void im2col(const float* x, std::int64_t channels, std::int64_t height,
            std::int64_t width, std::int64_t kh, std::int64_t kw,
            std::int64_t stride, std::int64_t pad, float* col) {
    const std::int64_t out_h = conv_out_size(height, kh, stride, pad);
    const std::int64_t out_w = conv_out_size(width, kw, stride, pad);
    const std::int64_t out_hw = out_h * out_w;

    std::int64_t row = 0;
    for (std::int64_t c = 0; c < channels; ++c) {
        const float* xc = x + c * height * width;
        for (std::int64_t ki = 0; ki < kh; ++ki) {
            for (std::int64_t kj = 0; kj < kw; ++kj, ++row) {
                float* out_row = col + row * out_hw;
                // At stride 1 the interior of each output row is a contiguous
                // slice of the input row: memcpy it and zero only the padded
                // edges (the common 3×3/pad-1 conv shape hits this path).
                // Both bounds clamp into [0, out_w]: a kernel wider than
                // width+pad can push the raw lo past the row or hi negative.
                const std::int64_t lo =
                    stride == 1
                        ? std::min(out_w, std::max<std::int64_t>(0, pad - kj))
                        : 0;
                const std::int64_t hi =
                    stride == 1
                        ? std::max(lo, std::min(out_w, width + pad - kj))
                        : 0;
                for (std::int64_t oi = 0; oi < out_h; ++oi) {
                    const std::int64_t ii = oi * stride - pad + ki;
                    if (ii < 0 || ii >= height) {
                        std::memset(out_row + oi * out_w, 0,
                                    static_cast<std::size_t>(out_w) * sizeof(float));
                        continue;
                    }
                    const float* xrow = xc + ii * width;
                    float* orow = out_row + oi * out_w;
                    if (stride == 1) {
                        if (lo > 0)
                            std::memset(orow, 0,
                                        static_cast<std::size_t>(lo) * sizeof(float));
                        if (hi > lo)
                            std::memcpy(orow + lo, xrow + lo - pad + kj,
                                        static_cast<std::size_t>(hi - lo) *
                                            sizeof(float));
                        if (out_w > hi)
                            std::memset(orow + hi, 0,
                                        static_cast<std::size_t>(out_w - hi) *
                                            sizeof(float));
                        continue;
                    }
                    for (std::int64_t oj = 0; oj < out_w; ++oj) {
                        const std::int64_t jj = oj * stride - pad + kj;
                        orow[oj] = (jj >= 0 && jj < width) ? xrow[jj] : 0.0f;
                    }
                }
            }
        }
    }
}

void im2col_pack_b(const float* x, std::int64_t n_imgs, std::int64_t channels,
                   std::int64_t height, std::int64_t width,
                   std::int64_t stride_img, std::int64_t stride_c,
                   std::int64_t kh, std::int64_t kw, std::int64_t stride,
                   std::int64_t pad, float* packed, std::int64_t panel_lo,
                   std::int64_t panel_hi) {
    const std::int64_t out_h = conv_out_size(height, kh, stride, pad);
    const std::int64_t out_w = conv_out_size(width, kw, stride, pad);
    const std::int64_t out_hw = out_h * out_w;
    const std::int64_t n_cols = n_imgs * out_hw;
    const std::int64_t k = channels * kh * kw;
    const std::int64_t total_panels = packed_b_panels(n_cols);
    const std::int64_t block_panels = kPackNc / kPackNr;  // panels per n-block
    // One past the last input float — bound for the over-copy fast path.
    const float* const x_limit = x + (n_imgs - 1) * stride_img +
                                 (channels - 1) * stride_c + height * width;

    // A panel's lane → (image, output row, output col) decomposition is
    // independent of the patch row, so it is segmented into same-image
    // same-output-row runs ONCE per panel; the patch-row sweep then only
    // shifts each run by (ki, kj) — no divisions in the hot loop.
    struct Run {
        std::int64_t lane, len, oi, oj;
        const float* img_base;  // input image origin (channel 0)
    };

    for (std::int64_t g = panel_lo; g < panel_hi; ++g) {
        const std::int64_t nb = g / block_panels;       // n-block index
        const std::int64_t jp = g - nb * block_panels;  // panel within block
        const std::int64_t jb = g * kPackNr;            // first global column
        const std::int64_t blk_panels =
            std::min(block_panels, total_panels - nb * block_panels);
        float* const block = packed + nb * block_panels * k * kPackNr;

        Run runs[kPackNr];
        std::int64_t n_runs = 0;
        std::int64_t lane = 0;
        while (lane < kPackNr && jb + lane < n_cols) {
            const std::int64_t j = jb + lane;
            const std::int64_t img = j / out_hw;
            const std::int64_t pos = j - img * out_hw;
            const std::int64_t oi = pos / out_w;
            const std::int64_t oj = pos - oi * out_w;
            const std::int64_t len =
                std::min({kPackNr - lane, out_w - oj, n_cols - j});
            runs[n_runs++] = Run{lane, len, oi, oj, x + img * stride_img};
            lane += len;
        }
        const std::int64_t lane_end = lane;  // zero tail beyond this

        // --- stride-1 fast paths -------------------------------------------
        // The patch-row sweep repeats the same copy geometry for every
        // channel, so the per-(ki, kj) bounds work is hoisted into a plan
        // built ONCE per panel and replayed `channels` times with only the
        // source base changing. Two variants:
        //  · merged: channel-major input ("same" conv: out == in spatial
        //    dims) makes the panel's lanes one contiguous input span per
        //    channel — each patch row is a single shifted kPackNr-float copy
        //    plus a precomputed boundary zero-mask.
        //  · ops: otherwise each (run × patch row) becomes one precomputed
        //    {zero-pre, copy, zero-post} op.
        if (stride == 1 && kh * kw <= 16) {
            const std::int64_t kk = kh * kw;
            std::int64_t p = 0, pc = 0, kc = std::min(kPackKc, k);
            float* dst = block + jp * kc * kPackNr;
            if (stride_img == height * width && out_h == height &&
                out_w == width) {
                // Merged plan: src_off may be negative or past the channel
                // plane at the array edges; [lo, hi) clamps the copy to valid
                // input and the mask re-zeroes every lane the copy skipped
                // or that reads across a row/image boundary.
                struct MergedRow {
                    std::int64_t src_off, lo, hi;
                    std::uint32_t mask;
                };
                MergedRow rows[16];
                const std::int64_t plane = n_imgs * height * width;
                for (std::int64_t ki = 0; ki < kh; ++ki) {
                    for (std::int64_t kj = 0; kj < kw; ++kj) {
                        MergedRow& row = rows[ki * kw + kj];
                        std::uint32_t mask = 0;
                        for (std::int64_t r = 0; r < n_runs; ++r) {
                            const Run& run = runs[r];
                            const std::int64_t ii = run.oi - pad + ki;
                            if (ii < 0 || ii >= height) {
                                for (std::int64_t i = 0; i < run.len; ++i)
                                    mask |= 1u << (run.lane + i);
                                continue;
                            }
                            const std::int64_t jj0 = run.oj - pad + kj;
                            for (std::int64_t i = 0; i < run.len; ++i)
                                if (jj0 + i < 0 || jj0 + i >= width)
                                    mask |= 1u << (run.lane + i);
                        }
                        const std::int64_t off =
                            jb + (ki - pad) * width + (kj - pad);
                        const std::int64_t lo =
                            std::min(lane_end, std::max<std::int64_t>(0, -off));
                        const std::int64_t hi =
                            std::max(lo, std::min(lane_end, plane - off));
                        for (std::int64_t l = 0; l < lo; ++l) mask |= 1u << l;
                        for (std::int64_t l = hi; l < lane_end; ++l)
                            mask |= 1u << l;
                        row.src_off = off;
                        row.lo = lo;
                        row.hi = hi;
                        row.mask = mask;
                    }
                }
                for (std::int64_t c = 0; c < channels; ++c) {
                    const float* xc = x + c * stride_c;
                    for (std::int64_t q = 0; q < kk; ++q, ++p) {
                        if (p == pc + kc) {
                            pc += kc;
                            kc = std::min(kPackKc, k - pc);
                            dst = block + blk_panels * pc * kPackNr +
                                  jp * kc * kPackNr;
                        }
                        const MergedRow& row = rows[q];
                        if (row.lo == 0 && row.hi == kPackNr) {
                            std::memcpy(dst, xc + row.src_off,
                                        kPackNr * sizeof(float));
                        } else if (row.hi > row.lo) {
                            std::memcpy(dst + row.lo,
                                        xc + row.src_off + row.lo,
                                        static_cast<std::size_t>(row.hi -
                                                                 row.lo) *
                                            sizeof(float));
                        }
                        for (std::uint32_t m = row.mask; m != 0; m &= m - 1)
                            dst[__builtin_ctz(m)] = 0.0f;
                        for (std::int64_t l = lane_end; l < kPackNr; ++l)
                            dst[l] = 0.0f;
                        dst += kPackNr;
                    }
                }
                continue;
            }
            // Op plan: `base` folds the run's image origin and the row/col
            // shift; only the channel offset is added per replay.
            struct PackOp {
                const float* base;
                std::uint8_t dst, pre, len, post;
            };
            PackOp ops[16 * 16];
            std::int64_t row_start[17];
            std::int64_t n_ops = 0;
            for (std::int64_t ki = 0; ki < kh; ++ki) {
                for (std::int64_t kj = 0; kj < kw; ++kj) {
                    row_start[ki * kw + kj] = n_ops;
                    for (std::int64_t r = 0; r < n_runs; ++r) {
                        const Run& run = runs[r];
                        PackOp& op = ops[n_ops++];
                        op.dst = static_cast<std::uint8_t>(run.lane);
                        const std::int64_t ii = run.oi - pad + ki;
                        if (ii < 0 || ii >= height) {
                            op.base = run.img_base;  // unused (len 0)
                            op.pre = static_cast<std::uint8_t>(run.len);
                            op.len = 0;
                            op.post = 0;
                            continue;
                        }
                        const std::int64_t jj0 = run.oj - pad + kj;
                        const std::int64_t lo = std::min(
                            run.len, std::max<std::int64_t>(0, -jj0));
                        const std::int64_t hi =
                            std::max(lo, std::min(run.len, width - jj0));
                        op.base = run.img_base + ii * width + jj0 + lo;
                        op.pre = static_cast<std::uint8_t>(lo);
                        op.len = static_cast<std::uint8_t>(hi - lo);
                        op.post = static_cast<std::uint8_t>(run.len - hi);
                    }
                }
            }
            row_start[kk] = n_ops;
            for (std::int64_t c = 0; c < channels; ++c) {
                const std::int64_t c_off = c * stride_c;
                for (std::int64_t q = 0; q < kk; ++q, ++p) {
                    if (p == pc + kc) {
                        pc += kc;
                        kc = std::min(kPackKc, k - pc);
                        dst = block + blk_panels * pc * kPackNr +
                              jp * kc * kPackNr;
                    }
                    for (std::int64_t o = row_start[q]; o < row_start[q + 1];
                         ++o) {
                        const PackOp& op = ops[o];
                        float* out = dst + op.dst;
                        for (std::int64_t i = 0; i < op.pre; ++i)
                            out[i] = 0.0f;
                        out += op.pre;
                        if (op.len == kPackNr) {
                            std::memcpy(out, op.base + c_off,
                                        kPackNr * sizeof(float));
                        } else {
                            const float* src = op.base + c_off;
                            for (std::int64_t i = 0; i < op.len; ++i)
                                out[i] = src[i];
                        }
                        out += op.len;
                        for (std::int64_t i = 0; i < op.post; ++i)
                            out[i] = 0.0f;
                    }
                    for (std::int64_t l = lane_end; l < kPackNr; ++l)
                        dst[l] = 0.0f;
                    dst += kPackNr;
                }
            }
            continue;
        }
        // -------------------------------------------------------------------

        std::int64_t p = 0;  // row index (c, ki, kj)
        std::int64_t pc = 0, kc = std::min(kPackKc, k);
        float* dst =
            block + jp * kc * kPackNr;  // row p's 16 lanes; advances by kNr
        for (std::int64_t c = 0; c < channels; ++c) {
            const std::int64_t c_off = c * stride_c;
            for (std::int64_t ki = 0; ki < kh; ++ki) {
                for (std::int64_t kj = 0; kj < kw; ++kj, ++p) {
                    if (p == pc + kc) {  // entered the next k-block
                        pc += kc;
                        kc = std::min(kPackKc, k - pc);
                        dst = block + blk_panels * pc * kPackNr +
                              jp * kc * kPackNr;
                    }
                    for (std::int64_t r = 0; r < n_runs; ++r) {
                        const Run& run = runs[r];
                        float* out = dst + run.lane;
                        const std::int64_t ii = run.oi * stride - pad + ki;
                        if (ii < 0 || ii >= height) {
                            for (std::int64_t i = 0; i < run.len; ++i)
                                out[i] = 0.0f;
                            continue;
                        }
                        const float* xrow =
                            run.img_base + c_off + ii * width;
                        if (stride == 1) {
                            const std::int64_t jj0 = run.oj - pad + kj;
                            // Full-width interior run: fixed-size copy the
                            // compiler lowers to two vector moves (the
                            // dominant case away from the padded borders).
                            if (run.len == kPackNr && jj0 >= 0 &&
                                jj0 + kPackNr <= width) {
                                std::memcpy(out, xrow + jj0,
                                            kPackNr * sizeof(float));
                                continue;
                            }
                            // Valid input span within [jj0, jj0 + len).
                            const std::int64_t lo =
                                std::min(run.len,
                                         std::max<std::int64_t>(0, -jj0));
                            const std::int64_t hi = std::max(
                                lo, std::min(run.len, width - jj0));
                            // Short interior run (small spatial maps): copy
                            // a full fixed-size vector and let the lanes
                            // beyond the run be overwritten by the runs and
                            // rows that follow. Illegal only on the last row
                            // of a k-sub-block (the overrun would cross into
                            // another worker's panel) or past the input.
                            if (lo == 0 && hi == run.len &&
                                p - pc < kc - 1 &&
                                xrow + jj0 + kPackNr <= x_limit) {
                                std::memcpy(out, xrow + jj0,
                                            kPackNr * sizeof(float));
                                continue;
                            }
                            for (std::int64_t i = 0; i < lo; ++i)
                                out[i] = 0.0f;
                            if (hi > lo)
                                std::memcpy(out + lo, xrow + jj0 + lo,
                                            static_cast<std::size_t>(hi - lo) *
                                                sizeof(float));
                            for (std::int64_t i = hi; i < run.len; ++i)
                                out[i] = 0.0f;
                        } else {
                            for (std::int64_t i = 0; i < run.len; ++i) {
                                const std::int64_t jj =
                                    (run.oj + i) * stride - pad + kj;
                                out[i] = (jj >= 0 && jj < width) ? xrow[jj]
                                                                 : 0.0f;
                            }
                        }
                    }
                    for (std::int64_t l = lane_end; l < kPackNr; ++l)
                        dst[l] = 0.0f;
                    dst += kPackNr;
                }
            }
        }
    }
}

void col2im(const float* col, std::int64_t channels, std::int64_t height,
            std::int64_t width, std::int64_t kh, std::int64_t kw,
            std::int64_t stride, std::int64_t pad, float* x) {
    const std::int64_t out_h = conv_out_size(height, kh, stride, pad);
    const std::int64_t out_w = conv_out_size(width, kw, stride, pad);
    const std::int64_t out_hw = out_h * out_w;

    std::memset(x, 0,
                static_cast<std::size_t>(channels * height * width) * sizeof(float));

    std::int64_t row = 0;
    for (std::int64_t c = 0; c < channels; ++c) {
        float* xc = x + c * height * width;
        for (std::int64_t ki = 0; ki < kh; ++ki) {
            for (std::int64_t kj = 0; kj < kw; ++kj, ++row) {
                const float* in_row = col + row * out_hw;
                for (std::int64_t oi = 0; oi < out_h; ++oi) {
                    const std::int64_t ii = oi * stride - pad + ki;
                    if (ii < 0 || ii >= height) continue;
                    float* xrow = xc + ii * width;
                    const float* irow = in_row + oi * out_w;
                    for (std::int64_t oj = 0; oj < out_w; ++oj) {
                        const std::int64_t jj = oj * stride - pad + kj;
                        if (jj >= 0 && jj < width) xrow[jj] += irow[oj];
                    }
                }
            }
        }
    }
}

}  // namespace xs::tensor
