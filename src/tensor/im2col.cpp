#include "tensor/im2col.h"

#include <cstring>

namespace xs::tensor {

void im2col(const float* x, std::int64_t channels, std::int64_t height,
            std::int64_t width, std::int64_t kh, std::int64_t kw,
            std::int64_t stride, std::int64_t pad, float* col) {
    const std::int64_t out_h = conv_out_size(height, kh, stride, pad);
    const std::int64_t out_w = conv_out_size(width, kw, stride, pad);
    const std::int64_t out_hw = out_h * out_w;

    std::int64_t row = 0;
    for (std::int64_t c = 0; c < channels; ++c) {
        const float* xc = x + c * height * width;
        for (std::int64_t ki = 0; ki < kh; ++ki) {
            for (std::int64_t kj = 0; kj < kw; ++kj, ++row) {
                float* out_row = col + row * out_hw;
                for (std::int64_t oi = 0; oi < out_h; ++oi) {
                    const std::int64_t ii = oi * stride - pad + ki;
                    if (ii < 0 || ii >= height) {
                        std::memset(out_row + oi * out_w, 0,
                                    static_cast<std::size_t>(out_w) * sizeof(float));
                        continue;
                    }
                    const float* xrow = xc + ii * width;
                    float* orow = out_row + oi * out_w;
                    for (std::int64_t oj = 0; oj < out_w; ++oj) {
                        const std::int64_t jj = oj * stride - pad + kj;
                        orow[oj] = (jj >= 0 && jj < width) ? xrow[jj] : 0.0f;
                    }
                }
            }
        }
    }
}

void col2im(const float* col, std::int64_t channels, std::int64_t height,
            std::int64_t width, std::int64_t kh, std::int64_t kw,
            std::int64_t stride, std::int64_t pad, float* x) {
    const std::int64_t out_h = conv_out_size(height, kh, stride, pad);
    const std::int64_t out_w = conv_out_size(width, kw, stride, pad);
    const std::int64_t out_hw = out_h * out_w;

    std::memset(x, 0,
                static_cast<std::size_t>(channels * height * width) * sizeof(float));

    std::int64_t row = 0;
    for (std::int64_t c = 0; c < channels; ++c) {
        float* xc = x + c * height * width;
        for (std::int64_t ki = 0; ki < kh; ++ki) {
            for (std::int64_t kj = 0; kj < kw; ++kj, ++row) {
                const float* in_row = col + row * out_hw;
                for (std::int64_t oi = 0; oi < out_h; ++oi) {
                    const std::int64_t ii = oi * stride - pad + ki;
                    if (ii < 0 || ii >= height) continue;
                    float* xrow = xc + ii * width;
                    const float* irow = in_row + oi * out_w;
                    for (std::int64_t oj = 0; oj < out_w; ++oj) {
                        const std::int64_t jj = oj * stride - pad + kj;
                        if (jj >= 0 && jj < width) xrow[jj] += irow[oj];
                    }
                }
            }
        }
    }
}

}  // namespace xs::tensor
