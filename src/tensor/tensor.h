// Dense row-major float tensor. The whole library uses float32 storage with
// double accumulation where it matters (reductions, circuit solves).
//
// Design notes:
//  * value semantics — copies are explicit and cheap to reason about;
//  * contiguous storage only (no views/strides); reshapes are metadata-only;
//  * shape arithmetic is int64 to avoid overflow on element counting.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <stdexcept>
#include <string>
#include <vector>

namespace xs::tensor {

using Shape = std::vector<std::int64_t>;

std::string shape_to_string(const Shape& shape);
std::int64_t shape_numel(const Shape& shape);

class Tensor {
public:
    Tensor() = default;

    explicit Tensor(Shape shape, float fill = 0.0f);
    Tensor(std::initializer_list<std::int64_t> shape, float fill = 0.0f);

    // ---- shape ----
    const Shape& shape() const { return shape_; }
    std::int64_t dim(std::size_t axis) const { return shape_.at(axis); }
    std::size_t rank() const { return shape_.size(); }
    std::int64_t numel() const { return static_cast<std::int64_t>(data_.size()); }

    // Metadata-only reshape; the element count must match.
    Tensor reshaped(Shape new_shape) const;

    // In-place reshape/resize that reuses the existing storage: sets the
    // shape and resizes the buffer, never shrinking capacity. Elements below
    // the new size are preserved; any grown tail is zero. This is the
    // zero-allocation steady-state primitive behind the inference arenas and
    // im2col scratch (DESIGN.md §6) — after a warm-up pass every reset fits
    // in capacity and performs no heap allocation.
    void reset(const Shape& new_shape);
    void reset(std::int64_t d0, std::int64_t d1);
    void reset(std::int64_t d0, std::int64_t d1, std::int64_t d2,
               std::int64_t d3);

    // ---- element access ----
    float* data() { return data_.data(); }
    const float* data() const { return data_.data(); }
    float& operator[](std::int64_t i) { return data_[static_cast<std::size_t>(i)]; }
    float operator[](std::int64_t i) const { return data_[static_cast<std::size_t>(i)]; }

    // Multi-dimensional accessors for ranks 2–4 (hot paths index manually).
    float& at(std::int64_t i, std::int64_t j);
    float at(std::int64_t i, std::int64_t j) const;
    float& at(std::int64_t i, std::int64_t j, std::int64_t k, std::int64_t l);
    float at(std::int64_t i, std::int64_t j, std::int64_t k, std::int64_t l) const;

    // ---- whole-tensor helpers ----
    void fill(float value);
    void zero() { fill(0.0f); }
    bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }

    std::vector<float>& storage() { return data_; }
    const std::vector<float>& storage() const { return data_; }

private:
    Shape shape_;
    std::vector<float> data_;
};

// Throwing check used by the ops layer: library misuse, not recoverable state.
inline void check(bool condition, const std::string& what) {
    if (!condition) throw std::invalid_argument(what);
}

// Literal-message overload: no std::string is constructed unless the check
// fails, keeping hot-path validation allocation-free.
inline void check(bool condition, const char* what) {
    if (!condition) throw std::invalid_argument(what);
}

}  // namespace xs::tensor
