// Blocked single-precision GEMM: C = alpha * op(A) * op(B) + beta * C.
// This is the workhorse behind Conv2d (via im2col) and Linear layers.
#pragma once

#include "tensor/tensor.h"

namespace xs::tensor {

// C(m×n) = alpha * A(m×k) * B(k×n) + beta * C. Raw-pointer core so that the
// nn layers can call it on tensor slices without copies. May parallelize
// across row blocks for large problems.
void gemm(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
          const float* a, std::int64_t lda, const float* b, std::int64_t ldb,
          float beta, float* c, std::int64_t ldc);

// Strictly single-threaded variant for callers already running inside a
// parallel_for region (nested pool dispatch is not supported).
void gemm_serial(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
                 const float* a, std::int64_t lda, const float* b,
                 std::int64_t ldb, float beta, float* c, std::int64_t ldc);

// Reusable packed-A operand for repeated GEMMs against one left-hand matrix.
// The inference engine packs each conv layer's folded weights once per
// refresh and runs the whole batch through them as one tiled GEMM
// (gemm_prepacked_tiles, DESIGN.md §6) — the per-call sparsity scan and
// A-packing of gemm() disappear from the batch loop. A row-sparse matrix
// (pruned weights) is detected at pack time and multiplied through the
// zero-skip path instead of packed panels.
struct PackedGemmA {
    std::int64_t m = 0, k = 0;
    bool sparse = false;        // use the raw matrix via the zero-skip path
    std::vector<float> panels;  // (k-block × row-panel) layout when !sparse
};

// Analyze and pack A (m × k, leading dimension lda); reuses storage.
void gemm_pack_a(std::int64_t m, std::int64_t k, const float* a,
                 std::int64_t lda, PackedGemmA& out);

// C (m×n) = alpha·A·B + beta·C with A prepacked by gemm_pack_a: the
// single-shot form of the prepacked family (the engine's conv path uses
// gemm_prepacked_tiles below; the tests pin the two against each other).
// Serial — safe inside pool workers. `a_raw`/`lda` must describe the matrix
// that was packed (the sparse path reads it directly).
void gemm_prepacked_serial(const PackedGemmA& pa, const float* a_raw,
                           std::int64_t lda, std::int64_t n, float alpha,
                           const float* b, std::int64_t ldb, float beta,
                           float* c, std::int64_t ldc);

// ---- fully-prepacked tiled GEMM (the inference engine's conv path) ----
//
// B lives in the packed panel-block layout that im2col_pack_b emits
// directly (no separate pack_b pass): for each kNc-wide n-block, for each
// kKc-deep k-block, kNr-wide column panels, k-major inside a panel,
// zero-padded to kNr. The panel geometry is shared with tensor/im2col.cpp.
constexpr std::int64_t kPackMr = 8;     // row-panel height (micro-kernel)
constexpr std::int64_t kPackNr = 16;    // column-panel width
constexpr std::int64_t kPackKc = 256;   // k-block depth
constexpr std::int64_t kPackNc = 1024;  // n-block width

// Number of kNr-wide column panels of an n-column packed B.
inline std::int64_t packed_b_panels(std::int64_t n) {
    return (n + kPackNr - 1) / kPackNr;
}
// Total floats of a packed (k × n) B.
inline std::int64_t packed_b_size(std::int64_t k, std::int64_t n) {
    return packed_b_panels(n) * k * kPackNr;
}
// Tiles of the (row-panel × n-block) grid gemm_prepacked_tiles walks.
inline std::int64_t gemm_tile_count(std::int64_t m, std::int64_t n) {
    return ((m + kPackMr - 1) / kPackMr) * ((n + kPackNc - 1) / kPackNc);
}

// C (m×n) = A·B for the tile range [tile_lo, tile_hi), with an optional
// fused per-row bias (+ ReLU) epilogue applied while the tile is cache-hot.
// Tiles write disjoint C regions, so callers parallelize by splitting the
// tile range across workers. beta = 0 semantics (C is overwritten). A
// row-sparse A (pruned weights) runs a zero-skip kernel over the same
// packed B.
void gemm_prepacked_tiles(const PackedGemmA& pa, const float* a_raw,
                          std::int64_t lda, const float* packed_b,
                          std::int64_t n, float* c, std::int64_t ldc,
                          const float* bias, bool relu, std::int64_t tile_lo,
                          std::int64_t tile_hi);

// Convenience wrappers on rank-2 tensors.
Tensor matmul(const Tensor& a, const Tensor& b);            // A·B
Tensor matmul_tn(const Tensor& a, const Tensor& b);         // Aᵀ·B
Tensor matmul_nt(const Tensor& a, const Tensor& b);         // A·Bᵀ

// y(m) = A(m×n) · x(n)
void gemv(std::int64_t m, std::int64_t n, const float* a, const float* x, float* y);

}  // namespace xs::tensor
