// Blocked single-precision GEMM: C = alpha * op(A) * op(B) + beta * C.
// This is the workhorse behind Conv2d (via im2col) and Linear layers.
#pragma once

#include "tensor/tensor.h"

namespace xs::tensor {

// C(m×n) = alpha * A(m×k) * B(k×n) + beta * C. Raw-pointer core so that the
// nn layers can call it on tensor slices without copies. May parallelize
// across row blocks for large problems.
void gemm(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
          const float* a, std::int64_t lda, const float* b, std::int64_t ldb,
          float beta, float* c, std::int64_t ldc);

// Strictly single-threaded variant for callers already running inside a
// parallel_for region (nested pool dispatch is not supported).
void gemm_serial(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
                 const float* a, std::int64_t lda, const float* b,
                 std::int64_t ldb, float beta, float* c, std::int64_t ldc);

// Convenience wrappers on rank-2 tensors.
Tensor matmul(const Tensor& a, const Tensor& b);            // A·B
Tensor matmul_tn(const Tensor& a, const Tensor& b);         // Aᵀ·B
Tensor matmul_nt(const Tensor& a, const Tensor& b);         // A·Bᵀ

// y(m) = A(m×n) · x(n)
void gemv(std::int64_t m, std::int64_t n, const float* a, const float* x, float* y);

}  // namespace xs::tensor
