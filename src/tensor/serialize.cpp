#include "tensor/serialize.h"

#include <cstdint>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace xs::tensor {
namespace {

constexpr char kMagic[4] = {'X', 'S', 'T', 'N'};

template <typename T>
void write_pod(std::ostream& os, const T& v) {
    os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::istream& is) {
    T v{};
    is.read(reinterpret_cast<char*>(&v), sizeof(T));
    if (!is) throw std::runtime_error("tensor stream truncated");
    return v;
}

}  // namespace

void write_tensor(std::ostream& os, const Tensor& t) {
    os.write(kMagic, 4);
    write_pod<std::uint32_t>(os, static_cast<std::uint32_t>(t.rank()));
    for (const auto d : t.shape()) write_pod<std::int64_t>(os, d);
    os.write(reinterpret_cast<const char*>(t.data()),
             static_cast<std::streamsize>(t.numel() * sizeof(float)));
}

Tensor read_tensor(std::istream& is) {
    char magic[4];
    is.read(magic, 4);
    if (!is || magic[0] != 'X' || magic[1] != 'S' || magic[2] != 'T' ||
        magic[3] != 'N')
        throw std::runtime_error("bad tensor magic");
    const auto rank = read_pod<std::uint32_t>(is);
    if (rank > 8) throw std::runtime_error("implausible tensor rank");
    Shape shape(rank);
    for (auto& d : shape) {
        d = read_pod<std::int64_t>(is);
        if (d < 0 || d > (1LL << 32)) throw std::runtime_error("implausible dim");
    }
    Tensor t(shape);
    is.read(reinterpret_cast<char*>(t.data()),
            static_cast<std::streamsize>(t.numel() * sizeof(float)));
    if (!is) throw std::runtime_error("tensor data truncated");
    return t;
}

}  // namespace xs::tensor
