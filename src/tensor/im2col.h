// im2col / col2im — the unrolling that turns a convolution into the MAC
// (matrix) form that is mapped onto crossbars (paper §III: "a Python wrapper
// ... unrolls each and every convolution operation into MAC operations").
#pragma once

#include "tensor/tensor.h"

namespace xs::tensor {

// Input  x: (C, H, W) single image.
// Output col: (C*kh*kw, out_h*out_w) where each column is one receptive
// field, laid out channel-major then kernel-row then kernel-col — the same
// ordering the crossbar mapper assumes for weight-matrix rows.
void im2col(const float* x, std::int64_t channels, std::int64_t height,
            std::int64_t width, std::int64_t kh, std::int64_t kw,
            std::int64_t stride, std::int64_t pad, float* col);

// Scatter-add transpose of im2col (for convolution input gradients).
void col2im(const float* col, std::int64_t channels, std::int64_t height,
            std::int64_t width, std::int64_t kh, std::int64_t kw,
            std::int64_t stride, std::int64_t pad, float* x);

// Batched im2col straight into the packed-B panel layout consumed by
// gemm_prepacked_tiles (geometry constants in tensor/gemm.h): column
// j = img·out_h·out_w + pos of the virtual (C·kh·kw × n_imgs·out_h·out_w)
// matrix is receptive field `pos` of image `img`, so one GEMM covers the
// whole batch and the separate pack_b pass disappears. The input may be
// batch-major (NCHW: stride_img = C·H·W, stride_c = H·W) or channel-major
// (CN: stride_c = n_imgs·H·W, stride_img = H·W) — the inference engine
// keeps conv activations channel-major (DESIGN.md §6). Packs the global
// column-panel range [panel_lo, panel_hi); panels are independent, so
// callers parallelize over them.
void im2col_pack_b(const float* x, std::int64_t n_imgs, std::int64_t channels,
                   std::int64_t height, std::int64_t width,
                   std::int64_t stride_img, std::int64_t stride_c,
                   std::int64_t kh, std::int64_t kw, std::int64_t stride,
                   std::int64_t pad, float* packed, std::int64_t panel_lo,
                   std::int64_t panel_hi);

// Spatial output size for one axis.
inline std::int64_t conv_out_size(std::int64_t in, std::int64_t k,
                                  std::int64_t stride, std::int64_t pad) {
    return (in + 2 * pad - k) / stride + 1;
}

}  // namespace xs::tensor
