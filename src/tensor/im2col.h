// im2col / col2im — the unrolling that turns a convolution into the MAC
// (matrix) form that is mapped onto crossbars (paper §III: "a Python wrapper
// ... unrolls each and every convolution operation into MAC operations").
#pragma once

#include "tensor/tensor.h"

namespace xs::tensor {

// Input  x: (C, H, W) single image.
// Output col: (C*kh*kw, out_h*out_w) where each column is one receptive
// field, laid out channel-major then kernel-row then kernel-col — the same
// ordering the crossbar mapper assumes for weight-matrix rows.
void im2col(const float* x, std::int64_t channels, std::int64_t height,
            std::int64_t width, std::int64_t kh, std::int64_t kw,
            std::int64_t stride, std::int64_t pad, float* col);

// Scatter-add transpose of im2col (for convolution input gradients).
void col2im(const float* col, std::int64_t channels, std::int64_t height,
            std::int64_t width, std::int64_t kh, std::int64_t kw,
            std::int64_t stride, std::int64_t pad, float* x);

// Spatial output size for one axis.
inline std::int64_t conv_out_size(std::int64_t in, std::int64_t k,
                                  std::int64_t stride, std::int64_t pad) {
    return (in + 2 * pad - k) / stride + 1;
}

}  // namespace xs::tensor
