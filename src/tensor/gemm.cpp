#include "tensor/gemm.h"

#include "tensor/ops.h"
#include "util/parallel.h"

#include <algorithm>
#include <vector>

namespace xs::tensor {
namespace {

// Cache-blocking parameters tuned for small L2 caches; the inner kernel is a
// simple ikj loop that the compiler auto-vectorizes over j.
constexpr std::int64_t kBlockM = 64;
constexpr std::int64_t kBlockK = 256;

void gemm_rows(std::int64_t m_lo, std::int64_t m_hi, std::int64_t n,
               std::int64_t k, float alpha, const float* a, std::int64_t lda,
               const float* b, std::int64_t ldb, float beta, float* c,
               std::int64_t ldc) {
    for (std::int64_t i = m_lo; i < m_hi; ++i) {
        float* ci = c + i * ldc;
        if (beta == 0.0f) {
            std::fill(ci, ci + n, 0.0f);
        } else if (beta != 1.0f) {
            for (std::int64_t j = 0; j < n; ++j) ci[j] *= beta;
        }
    }
    for (std::int64_t k0 = 0; k0 < k; k0 += kBlockK) {
        const std::int64_t k1 = std::min(k, k0 + kBlockK);
        for (std::int64_t i = m_lo; i < m_hi; ++i) {
            const float* ai = a + i * lda;
            float* ci = c + i * ldc;
            for (std::int64_t p = k0; p < k1; ++p) {
                const float aip = alpha * ai[p];
                if (aip == 0.0f) continue;
                const float* bp = b + p * ldb;
                for (std::int64_t j = 0; j < n; ++j) ci[j] += aip * bp[j];
            }
        }
    }
}

}  // namespace

void gemm_serial(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
                 const float* a, std::int64_t lda, const float* b,
                 std::int64_t ldb, float beta, float* c, std::int64_t ldc) {
    if (m <= 0 || n <= 0) return;
    gemm_rows(0, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
}

void gemm(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
          const float* a, std::int64_t lda, const float* b, std::int64_t ldb,
          float beta, float* c, std::int64_t ldc) {
    if (m <= 0 || n <= 0) return;
    // Parallelize across row blocks when the problem is big enough to pay
    // for the fork/join.
    const std::int64_t blocks = (m + kBlockM - 1) / kBlockM;
    const bool parallel = m * n * k > (1 << 18) && blocks > 1;
    auto run_block = [&](std::size_t blk) {
        const std::int64_t lo = static_cast<std::int64_t>(blk) * kBlockM;
        const std::int64_t hi = std::min(m, lo + kBlockM);
        gemm_rows(lo, hi, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
    };
    if (parallel) {
        util::parallel_for(0, static_cast<std::size_t>(blocks), run_block);
    } else {
        gemm_rows(0, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
    }
}

Tensor matmul(const Tensor& a, const Tensor& b) {
    check(a.rank() == 2 && b.rank() == 2, "matmul expects rank-2 tensors");
    check(a.dim(1) == b.dim(0), "matmul: inner dimensions differ: " +
                                    shape_to_string(a.shape()) + " x " +
                                    shape_to_string(b.shape()));
    Tensor c({a.dim(0), b.dim(1)});
    gemm(a.dim(0), b.dim(1), a.dim(1), 1.0f, a.data(), a.dim(1), b.data(),
         b.dim(1), 0.0f, c.data(), c.dim(1));
    return c;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
    // Aᵀ·B without materializing Aᵀ would need a column-major kernel; the
    // transpose copy is cheap relative to the multiply at our sizes.
    return matmul(transpose(a), b);
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
    return matmul(a, transpose(b));
}

void gemv(std::int64_t m, std::int64_t n, const float* a, const float* x, float* y) {
    for (std::int64_t i = 0; i < m; ++i) {
        const float* ai = a + i * n;
        double acc = 0.0;
        for (std::int64_t j = 0; j < n; ++j) acc += static_cast<double>(ai[j]) * x[j];
        y[i] = static_cast<float>(acc);
    }
}

}  // namespace xs::tensor
