#include "tensor/gemm.h"

#include "tensor/ops.h"
#include "util/metrics.h"
#include "util/parallel.h"

#include <algorithm>
#include <vector>

namespace xs::tensor {
namespace {

// GotoBLAS-style blocking: B is packed into NR-wide column panels per
// (k-block × n-block), A into MR-tall row panels, and an MR×NR register-
// blocked micro-kernel runs over the packed panels. Packing buffers are
// thread-local and only grow, so the steady state allocates nothing.
// The block geometry is public (gemm.h) because im2col_pack_b emits the
// packed-B layout directly.
constexpr std::int64_t kMr = kPackMr;  // micro-kernel rows
constexpr std::int64_t kNr = kPackNr;  // micro-kernel cols (one AVX-512 vector)
constexpr std::int64_t kKc = kPackKc;  // k-block depth
constexpr std::int64_t kNc = kPackNc;  // n-block width

struct PackBuffers {
    std::vector<float> a, b;
};

PackBuffers& tls_buffers() {
    static thread_local PackBuffers p;
    return p;
}

// B(k0:k1, j0:j1) → NR-wide panels, k-major inside each panel, zero-padded.
void pack_b(const float* b, std::int64_t ldb, std::int64_t k0, std::int64_t k1,
            std::int64_t j0, std::int64_t j1, std::vector<float>& buf) {
    const std::int64_t kc = k1 - k0, nc = j1 - j0;
    const std::int64_t panels = (nc + kNr - 1) / kNr;
    buf.resize(static_cast<std::size_t>(panels * kc * kNr));
    float* dst = buf.data();
    for (std::int64_t jp = 0; jp < panels; ++jp) {
        const std::int64_t jb = j0 + jp * kNr;
        const std::int64_t w = std::min(kNr, j1 - jb);
        for (std::int64_t p = k0; p < k1; ++p) {
            const float* src = b + p * ldb + jb;
            for (std::int64_t c = 0; c < w; ++c) dst[c] = src[c];
            for (std::int64_t c = w; c < kNr; ++c) dst[c] = 0.0f;
            dst += kNr;
        }
    }
}

// A(i0:i1, k0:k1) → MR-tall panels, k-major inside each panel, zero-padded.
// Writes panels * (k1-k0) * kMr floats at dst.
void pack_a_into(const float* a, std::int64_t lda, std::int64_t i0,
                 std::int64_t i1, std::int64_t k0, std::int64_t k1, float* dst) {
    const std::int64_t panels = (i1 - i0 + kMr - 1) / kMr;
    for (std::int64_t ip = 0; ip < panels; ++ip) {
        const std::int64_t ib = i0 + ip * kMr;
        const std::int64_t h = std::min(kMr, i1 - ib);
        for (std::int64_t p = k0; p < k1; ++p) {
            for (std::int64_t r = 0; r < h; ++r) dst[r] = a[(ib + r) * lda + p];
            for (std::int64_t r = h; r < kMr; ++r) dst[r] = 0.0f;
            dst += kMr;
        }
    }
}

void pack_a(const float* a, std::int64_t lda, std::int64_t i0, std::int64_t i1,
            std::int64_t k0, std::int64_t k1, std::vector<float>& buf) {
    const std::int64_t kc = k1 - k0, mc = i1 - i0;
    const std::int64_t panels = (mc + kMr - 1) / kMr;
    buf.resize(static_cast<std::size_t>(panels * kc * kMr));
    pack_a_into(a, lda, i0, i1, k0, k1, buf.data());
}

// C(mr×nr) += alpha · Apanel · Bpanel. The accumulator tile lives in
// registers (8 × 16-float vectors); the packed operands make every load
// contiguous. GNU vector extensions pin the accumulators to vector
// registers — a plain float[8][16] spills under gcc.
#if defined(__GNUC__) || defined(__clang__)
// The vector kernel spells out its kMr accumulators and arow lanes by hand;
// retuning kMr requires rewriting it.
static_assert(kMr == 8, "micro_kernel is hand-unrolled for kMr == 8");
using Vf = float __attribute__((vector_size(kNr * sizeof(float))));

inline Vf load_vf(const float* p) {
    Vf v;
    __builtin_memcpy(&v, p, sizeof(Vf));
    return v;
}

void micro_kernel(std::int64_t kc, float alpha, const float* ap,
                  const float* bp, float* c, std::int64_t ldc, std::int64_t mr,
                  std::int64_t nr) {
    Vf a0{}, a1{}, a2{}, a3{}, a4{}, a5{}, a6{}, a7{};
    for (std::int64_t p = 0; p < kc; ++p) {
        const float* arow = ap + p * kMr;
        const Vf bv = load_vf(bp + p * kNr);
        a0 += arow[0] * bv;
        a1 += arow[1] * bv;
        a2 += arow[2] * bv;
        a3 += arow[3] * bv;
        a4 += arow[4] * bv;
        a5 += arow[5] * bv;
        a6 += arow[6] * bv;
        a7 += arow[7] * bv;
    }
    const Vf acc[kMr] = {a0, a1, a2, a3, a4, a5, a6, a7};
    if (nr == kNr) {
        for (std::int64_t r = 0; r < mr; ++r) {
            float* cr = c + r * ldc;
            Vf cv = load_vf(cr);
            cv += alpha * acc[r];
            __builtin_memcpy(cr, &cv, sizeof(Vf));
        }
    } else {
        for (std::int64_t r = 0; r < mr; ++r) {
            float* cr = c + r * ldc;
            for (std::int64_t j = 0; j < nr; ++j) cr[j] += alpha * acc[r][j];
        }
    }
}
// Writeback of one accumulator panel with the tile path's fused semantics:
// the first k-block stores (beta = 0, no C read or pre-zeroing pass), later
// k-blocks accumulate, and the last k-block applies the per-row bias and/or
// ReLU — so C is touched exactly once per k-block and the separate zeroing
// and epilogue passes over the conv output disappear.
inline void store_panel(const Vf* acc, float* c, std::int64_t ldc,
                        std::int64_t mr, std::int64_t nr, bool load_c,
                        const float* bias, bool relu) {
    const Vf zero{};
    for (std::int64_t r = 0; r < mr; ++r) {
        float* cr = c + r * ldc;
        if (nr == kNr) {
            Vf cv = acc[r];
            if (load_c) cv += load_vf(cr);
            if (bias) cv += bias[r];
            if (relu) cv = cv > zero ? cv : zero;
            __builtin_memcpy(cr, &cv, sizeof(Vf));
            continue;
        }
        // Partial panel: scalar tail — a vector C load would read past the
        // row end.
        const float add = bias ? bias[r] : 0.0f;
        for (std::int64_t j = 0; j < nr; ++j) {
            float v = acc[r][j] + add + (load_c ? cr[j] : 0.0f);
            if (relu && v < 0.0f) v = 0.0f;
            cr[j] = v;
        }
    }
}

// Dual-panel variant: one pass over the packed A panel feeds TWO adjacent B
// panels (an 8×32 register tile — 16 accumulators + 2 B vectors fit the 32
// zmm registers). The single-panel kernel is load-bound (9 loads per 8
// FMAs); amortizing the A broadcasts over two panels restores FMA-bound
// throughput. The first panel must be full width; the second may be partial.
void micro_kernel_x2(std::int64_t kc, const float* ap, const float* bp0,
                     const float* bp1, float* c, std::int64_t ldc,
                     std::int64_t mr, std::int64_t nr1, bool load_c,
                     const float* bias, bool relu) {
    Vf x0{}, x1{}, x2{}, x3{}, x4{}, x5{}, x6{}, x7{};
    Vf y0{}, y1{}, y2{}, y3{}, y4{}, y5{}, y6{}, y7{};
    for (std::int64_t p = 0; p < kc; ++p) {
        const float* arow = ap + p * kMr;
        const Vf b0 = load_vf(bp0 + p * kNr);
        const Vf b1 = load_vf(bp1 + p * kNr);
        x0 += arow[0] * b0;
        y0 += arow[0] * b1;
        x1 += arow[1] * b0;
        y1 += arow[1] * b1;
        x2 += arow[2] * b0;
        y2 += arow[2] * b1;
        x3 += arow[3] * b0;
        y3 += arow[3] * b1;
        x4 += arow[4] * b0;
        y4 += arow[4] * b1;
        x5 += arow[5] * b0;
        y5 += arow[5] * b1;
        x6 += arow[6] * b0;
        y6 += arow[6] * b1;
        x7 += arow[7] * b0;
        y7 += arow[7] * b1;
    }
    const Vf acc0[kMr] = {x0, x1, x2, x3, x4, x5, x6, x7};
    const Vf acc1[kMr] = {y0, y1, y2, y3, y4, y5, y6, y7};
    store_panel(acc0, c, ldc, mr, kNr, load_c, bias, relu);
    store_panel(acc1, c + kNr, ldc, mr, nr1, load_c, bias, relu);
}

// Single-panel kernel with the same fused store semantics.
void micro_kernel_f(std::int64_t kc, const float* ap, const float* bp,
                    float* c, std::int64_t ldc, std::int64_t mr,
                    std::int64_t nr, bool load_c, const float* bias,
                    bool relu) {
    Vf a0{}, a1{}, a2{}, a3{}, a4{}, a5{}, a6{}, a7{};
    for (std::int64_t p = 0; p < kc; ++p) {
        const float* arow = ap + p * kMr;
        const Vf bv = load_vf(bp + p * kNr);
        a0 += arow[0] * bv;
        a1 += arow[1] * bv;
        a2 += arow[2] * bv;
        a3 += arow[3] * bv;
        a4 += arow[4] * bv;
        a5 += arow[5] * bv;
        a6 += arow[6] * bv;
        a7 += arow[7] * bv;
    }
    const Vf acc[kMr] = {a0, a1, a2, a3, a4, a5, a6, a7};
    store_panel(acc, c, ldc, mr, nr, load_c, bias, relu);
}
#else
void micro_kernel(std::int64_t kc, float alpha, const float* ap,
                  const float* bp, float* c, std::int64_t ldc, std::int64_t mr,
                  std::int64_t nr) {
    float acc[kMr][kNr] = {};
    for (std::int64_t p = 0; p < kc; ++p) {
        const float* arow = ap + p * kMr;
        const float* brow = bp + p * kNr;
        for (std::int64_t r = 0; r < kMr; ++r) {
            const float av = arow[r];
            for (std::int64_t j = 0; j < kNr; ++j) acc[r][j] += av * brow[j];
        }
    }
    for (std::int64_t r = 0; r < mr; ++r) {
        float* cr = c + r * ldc;
        for (std::int64_t j = 0; j < nr; ++j) cr[j] += alpha * acc[r][j];
    }
}

void micro_kernel_f(std::int64_t kc, const float* ap, const float* bp,
                    float* c, std::int64_t ldc, std::int64_t mr,
                    std::int64_t nr, bool load_c, const float* bias,
                    bool relu) {
    float acc[kMr][kNr] = {};
    for (std::int64_t p = 0; p < kc; ++p) {
        const float* arow = ap + p * kMr;
        const float* brow = bp + p * kNr;
        for (std::int64_t r = 0; r < kMr; ++r) {
            const float av = arow[r];
            for (std::int64_t j = 0; j < kNr; ++j) acc[r][j] += av * brow[j];
        }
    }
    for (std::int64_t r = 0; r < mr; ++r) {
        float* cr = c + r * ldc;
        const float add = bias ? bias[r] : 0.0f;
        for (std::int64_t j = 0; j < nr; ++j) {
            float v = acc[r][j] + add + (load_c ? cr[j] : 0.0f);
            if (relu && v < 0.0f) v = 0.0f;
            cr[j] = v;
        }
    }
}

void micro_kernel_x2(std::int64_t kc, const float* ap, const float* bp0,
                     const float* bp1, float* c, std::int64_t ldc,
                     std::int64_t mr, std::int64_t nr1, bool load_c,
                     const float* bias, bool relu) {
    micro_kernel_f(kc, ap, bp0, c, ldc, mr, kNr, load_c, bias, relu);
    micro_kernel_f(kc, ap, bp1, c + kNr, ldc, mr, nr1, load_c, bias, relu);
}
#endif

// Row-sparse path: for heavily pruned A (this project's core workload) the
// packed kernel's dense FLOPs lose to simply skipping zero weights. The ikj
// loop pays only for non-zero A entries; below kSparseThreshold density it
// beats the ~3× dense win of the packed kernel.
constexpr double kSparseThreshold = 0.25;
constexpr std::int64_t kSparseBlockK = 256;

void gemm_rows_sparse(std::int64_t m_lo, std::int64_t m_hi, std::int64_t n,
                      std::int64_t k, float alpha, const float* a,
                      std::int64_t lda, const float* b, std::int64_t ldb,
                      float* c, std::int64_t ldc) {
    for (std::int64_t k0 = 0; k0 < k; k0 += kSparseBlockK) {
        const std::int64_t k1 = std::min(k, k0 + kSparseBlockK);
        for (std::int64_t i = m_lo; i < m_hi; ++i) {
            const float* ai = a + i * lda;
            float* ci = c + i * ldc;
            for (std::int64_t p = k0; p < k1; ++p) {
                const float aip = alpha * ai[p];
                if (aip == 0.0f) continue;
                const float* bp = b + p * ldb;
                for (std::int64_t j = 0; j < n; ++j) ci[j] += aip * bp[j];
            }
        }
    }
}

// Whether A is sparse enough for the zero-skip path. The scan is O(m·k)
// against an O(m·n·k) multiply and bails out as soon as the non-zero count
// proves the matrix dense, so fully-dense callers pay ~kSparseThreshold of
// a full scan.
bool a_is_sparse(std::int64_t m, std::int64_t k, const float* a,
                 std::int64_t lda) {
    const std::int64_t limit = static_cast<std::int64_t>(
        kSparseThreshold * static_cast<double>(m * k));
    std::int64_t nnz = 0;
    for (std::int64_t i = 0; i < m; ++i) {
        const float* ai = a + i * lda;
        for (std::int64_t p = 0; p < k; ++p) nnz += ai[p] != 0.0f;
        if (nnz >= limit) return false;
    }
    return nnz < limit;
}

void scale_c_rows(std::int64_t m_lo, std::int64_t m_hi, std::int64_t n,
                  float beta, float* c, std::int64_t ldc) {
    for (std::int64_t i = m_lo; i < m_hi; ++i) {
        float* ci = c + i * ldc;
        if (beta == 0.0f) {
            std::fill(ci, ci + n, 0.0f);
        } else if (beta != 1.0f) {
            for (std::int64_t j = 0; j < n; ++j) ci[j] *= beta;
        }
    }
}

// Multiply the row panels [panel_lo, panel_hi) of the current (pc, jc) block
// against the shared packed B. Each executor packs its own A slice into its
// thread-local buffer.
void run_row_panels(std::int64_t panel_lo, std::int64_t panel_hi,
                    std::int64_t m, std::int64_t jc, std::int64_t j1,
                    std::int64_t pc, std::int64_t k1, float alpha,
                    const float* a, std::int64_t lda, const float* packed_b,
                    float* c, std::int64_t ldc) {
    const std::int64_t i_lo = panel_lo * kMr;
    const std::int64_t i_hi = std::min(m, panel_hi * kMr);
    if (i_lo >= i_hi) return;
    const std::int64_t kc = k1 - pc;
    std::vector<float>& abuf = tls_buffers().a;
    pack_a(a, lda, i_lo, i_hi, pc, k1, abuf);
    const std::int64_t n_panels = (j1 - jc + kNr - 1) / kNr;
    const std::int64_t m_panels = (i_hi - i_lo + kMr - 1) / kMr;
    for (std::int64_t ip = 0; ip < m_panels; ++ip) {
        const std::int64_t ib = i_lo + ip * kMr;
        const std::int64_t mr = std::min(kMr, i_hi - ib);
        const float* ap = abuf.data() + ip * kc * kMr;
        for (std::int64_t jp = 0; jp < n_panels; ++jp) {
            const std::int64_t jb = jc + jp * kNr;
            const std::int64_t nr = std::min(kNr, j1 - jb);
            micro_kernel(kc, alpha, ap, packed_b + jp * kc * kNr,
                         c + ib * ldc + jb, ldc, mr, nr);
        }
    }
}

void gemm_impl(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
               const float* a, std::int64_t lda, const float* b,
               std::int64_t ldb, float beta, float* c, std::int64_t ldc,
               bool allow_parallel) {
    if (m <= 0 || n <= 0) return;
    scale_c_rows(0, m, n, beta, c, ldc);
    if (k <= 0 || alpha == 0.0f) return;

    if (m * n * k > (1 << 14) && a_is_sparse(m, k, a, lda)) {
        XS_COUNT("gemm.sparse_takes", 1);
        const bool parallel = allow_parallel && util::worker_count() > 1 &&
                              m > 1 && m * n * k > (1 << 18);
        if (parallel) {
            util::parallel_for_chunks(
                0, static_cast<std::size_t>(m),
                [&](std::size_t lo, std::size_t hi) {
                    gemm_rows_sparse(static_cast<std::int64_t>(lo),
                                     static_cast<std::int64_t>(hi), n, k, alpha,
                                     a, lda, b, ldb, c, ldc);
                });
        } else {
            gemm_rows_sparse(0, m, n, k, alpha, a, lda, b, ldb, c, ldc);
        }
        return;
    }

    std::vector<float>& bbuf = tls_buffers().b;
    const std::int64_t row_panels = (m + kMr - 1) / kMr;
    for (std::int64_t jc = 0; jc < n; jc += kNc) {
        const std::int64_t j1 = std::min(n, jc + kNc);
        for (std::int64_t pc = 0; pc < k; pc += kKc) {
            const std::int64_t k1 = std::min(k, pc + kKc);
            pack_b(b, ldb, pc, k1, jc, j1, bbuf);
            const float* packed_b = bbuf.data();
            const bool parallel =
                allow_parallel && row_panels > 1 && util::worker_count() > 1 &&
                m * (j1 - jc) * (k1 - pc) > (1 << 18);
            if (parallel) {
                util::parallel_for_chunks(
                    0, static_cast<std::size_t>(row_panels),
                    [&](std::size_t lo, std::size_t hi) {
                        run_row_panels(static_cast<std::int64_t>(lo),
                                       static_cast<std::int64_t>(hi), m, jc, j1,
                                       pc, k1, alpha, a, lda, packed_b, c, ldc);
                    });
            } else {
                run_row_panels(0, row_panels, m, jc, j1, pc, k1, alpha, a, lda,
                               packed_b, c, ldc);
            }
        }
    }
}

}  // namespace

void gemm_serial(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
                 const float* a, std::int64_t lda, const float* b,
                 std::int64_t ldb, float beta, float* c, std::int64_t ldc) {
    gemm_impl(m, n, k, alpha, a, lda, b, ldb, beta, c, ldc, false);
}

void gemm_pack_a(std::int64_t m, std::int64_t k, const float* a,
                 std::int64_t lda, PackedGemmA& out) {
    out.m = m;
    out.k = k;
    // Density decided once per pack instead of once per multiply; a pruned
    // weight matrix keeps the zero-skip multiply and needs no panels.
    out.sparse = m * k > (1 << 10) && a_is_sparse(m, k, a, lda);
    if (out.sparse) {
        XS_COUNT("gemm.pack_a.sparse", 1);
        out.panels.clear();
        return;
    }
    XS_COUNT("gemm.pack_a.dense", 1);
    const std::int64_t row_panels = (m + kMr - 1) / kMr;
    out.panels.resize(static_cast<std::size_t>(row_panels * kMr * k));
    // Block layout matches the multiply loop: consecutive k-blocks, each
    // holding every row panel for that k range.
    for (std::int64_t pc = 0; pc < k; pc += kKc) {
        const std::int64_t k1 = std::min(k, pc + kKc);
        pack_a_into(a, lda, 0, m, pc, k1,
                    out.panels.data() + row_panels * kMr * pc);
    }
}

void gemm_prepacked_serial(const PackedGemmA& pa, const float* a_raw,
                           std::int64_t lda, std::int64_t n, float alpha,
                           const float* b, std::int64_t ldb, float beta,
                           float* c, std::int64_t ldc) {
    const std::int64_t m = pa.m, k = pa.k;
    if (m <= 0 || n <= 0) return;
    scale_c_rows(0, m, n, beta, c, ldc);
    if (k <= 0 || alpha == 0.0f) return;
    if (pa.sparse) {
        gemm_rows_sparse(0, m, n, k, alpha, a_raw, lda, b, ldb, c, ldc);
        return;
    }
    std::vector<float>& bbuf = tls_buffers().b;
    const std::int64_t row_panels = (m + kMr - 1) / kMr;
    for (std::int64_t jc = 0; jc < n; jc += kNc) {
        const std::int64_t j1 = std::min(n, jc + kNc);
        const std::int64_t n_panels = (j1 - jc + kNr - 1) / kNr;
        for (std::int64_t pc = 0; pc < k; pc += kKc) {
            const std::int64_t k1 = std::min(k, pc + kKc);
            const std::int64_t kc = k1 - pc;
            pack_b(b, ldb, pc, k1, jc, j1, bbuf);
            const float* apacked = pa.panels.data() + row_panels * kMr * pc;
            for (std::int64_t ip = 0; ip < row_panels; ++ip) {
                const std::int64_t ib = ip * kMr;
                const std::int64_t mr = std::min(kMr, m - ib);
                const float* ap = apacked + ip * kc * kMr;
                for (std::int64_t jp = 0; jp < n_panels; ++jp) {
                    const std::int64_t jb = jc + jp * kNr;
                    const std::int64_t nr = std::min(kNr, j1 - jb);
                    micro_kernel(kc, alpha, ap, bbuf.data() + jp * kc * kNr,
                                 c + ib * ldc + jb, ldc, mr, nr);
                }
            }
        }
    }
}

void gemm(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
          const float* a, std::int64_t lda, const float* b, std::int64_t ldb,
          float beta, float* c, std::int64_t ldc) {
    gemm_impl(m, n, k, alpha, a, lda, b, ldb, beta, c, ldc, true);
}

void gemm_prepacked_tiles(const PackedGemmA& pa, const float* a_raw,
                          std::int64_t lda, const float* packed_b,
                          std::int64_t n, float* c, std::int64_t ldc,
                          const float* bias, bool relu, std::int64_t tile_lo,
                          std::int64_t tile_hi) {
    const std::int64_t m = pa.m, k = pa.k;
    const std::int64_t row_panels = (m + kMr - 1) / kMr;
    const std::int64_t block_panels = kNc / kNr;  // panels per full n-block
    for (std::int64_t t = tile_lo; t < tile_hi; ++t) {
        const std::int64_t nb = t / row_panels;  // n-block index
        const std::int64_t ip = t % row_panels;  // row-panel index
        const std::int64_t jc = nb * kNc;
        const std::int64_t j1 = std::min(n, jc + kNc);
        const std::int64_t ib = ip * kMr;
        const std::int64_t i_hi = std::min(m, ib + kMr);
        const std::int64_t mr = i_hi - ib;
        const std::int64_t blk_panels = (j1 - jc + kNr - 1) / kNr;
        // The n-block's packed region: full blocks before it hold
        // block_panels panels each, k rows, kNr lanes.
        const float* bblock = packed_b + nb * block_panels * k * kNr;

        if (pa.sparse) {
            // Zero-skip kernel over packed panels: pays only for non-zero
            // weights (pruned layers).
            for (std::int64_t i = ib; i < i_hi; ++i)
                std::fill(c + i * ldc + jc, c + i * ldc + j1, 0.0f);
            for (std::int64_t pc = 0; pc < k; pc += kKc) {
                const std::int64_t k1 = std::min(k, pc + kKc);
                const std::int64_t kc = k1 - pc;
                const float* bsub = bblock + blk_panels * pc * kNr;
                for (std::int64_t i = ib; i < i_hi; ++i) {
                    const float* ai = a_raw + i * lda;
                    float* ci = c + i * ldc + jc;
                    for (std::int64_t p = pc; p < k1; ++p) {
                        const float aip = ai[p];
                        if (aip == 0.0f) continue;
                        const float* brow = bsub + (p - pc) * kNr;
                        for (std::int64_t jp = 0; jp < blk_panels; ++jp) {
                            const float* bp = brow + jp * kc * kNr;
                            float* cp = ci + jp * kNr;
                            const std::int64_t nr =
                                std::min(kNr, j1 - jc - jp * kNr);
                            for (std::int64_t l = 0; l < nr; ++l)
                                cp[l] += aip * bp[l];
                        }
                    }
                }
            }
            if (bias != nullptr || relu) {
                for (std::int64_t i = ib; i < i_hi; ++i) {
                    const float add = bias ? bias[i] : 0.0f;
                    float* ci = c + i * ldc;
                    if (relu) {
                        for (std::int64_t j = jc; j < j1; ++j)
                            ci[j] = std::max(ci[j] + add, 0.0f);
                    } else {
                        for (std::int64_t j = jc; j < j1; ++j) ci[j] += add;
                    }
                }
            }
            continue;
        }

        for (std::int64_t pc = 0; pc < k; pc += kKc) {
            const std::int64_t k1 = std::min(k, pc + kKc);
            const std::int64_t kc = k1 - pc;
            // Sub-block for this k range: previous k-blocks hold
            // blk_panels · kc' · kNr floats, and Σ kc' = pc.
            const float* bsub = bblock + blk_panels * pc * kNr;
            // Fused store semantics: the first k-block stores (no C read or
            // zeroing pass), later blocks accumulate, and the last applies
            // bias/ReLU — C is touched exactly once per k-block.
            const bool load_c = pc != 0;
            const bool last = k1 == k;
            const float* bias_row = (last && bias) ? bias + ib : nullptr;
            const bool relu_here = last && relu;
            const float* ap =
                pa.panels.data() + row_panels * kMr * pc + ip * kc * kMr;
            std::int64_t jp = 0;
            for (; jp + 1 < blk_panels; jp += 2) {
                const std::int64_t jb = jc + jp * kNr;
                const std::int64_t nr1 = std::min(kNr, j1 - jb - kNr);
                micro_kernel_x2(kc, ap, bsub + jp * kc * kNr,
                                bsub + (jp + 1) * kc * kNr, c + ib * ldc + jb,
                                ldc, mr, nr1, load_c, bias_row, relu_here);
            }
            if (jp < blk_panels) {
                const std::int64_t jb = jc + jp * kNr;
                const std::int64_t nr = std::min(kNr, j1 - jb);
                micro_kernel_f(kc, ap, bsub + jp * kc * kNr,
                               c + ib * ldc + jb, ldc, mr, nr, load_c,
                               bias_row, relu_here);
            }
        }
    }
}

Tensor matmul(const Tensor& a, const Tensor& b) {
    check(a.rank() == 2 && b.rank() == 2, "matmul expects rank-2 tensors");
    check(a.dim(1) == b.dim(0), "matmul: inner dimensions differ: " +
                                    shape_to_string(a.shape()) + " x " +
                                    shape_to_string(b.shape()));
    Tensor c({a.dim(0), b.dim(1)});
    gemm(a.dim(0), b.dim(1), a.dim(1), 1.0f, a.data(), a.dim(1), b.data(),
         b.dim(1), 0.0f, c.data(), c.dim(1));
    return c;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
    // Aᵀ·B without materializing Aᵀ would need a column-major kernel; the
    // transpose copy is cheap relative to the multiply at our sizes.
    return matmul(transpose(a), b);
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
    return matmul(a, transpose(b));
}

void gemv(std::int64_t m, std::int64_t n, const float* a, const float* x, float* y) {
    const auto rows = [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
            const float* ai = a + static_cast<std::int64_t>(i) * n;
            // Four independent double accumulators keep the FMA pipeline
            // busy without giving up double-precision reduction.
            double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
            std::int64_t j = 0;
            for (; j + 4 <= n; j += 4) {
                a0 += static_cast<double>(ai[j]) * x[j];
                a1 += static_cast<double>(ai[j + 1]) * x[j + 1];
                a2 += static_cast<double>(ai[j + 2]) * x[j + 2];
                a3 += static_cast<double>(ai[j + 3]) * x[j + 3];
            }
            double acc = (a0 + a1) + (a2 + a3);
            for (; j < n; ++j) acc += static_cast<double>(ai[j]) * x[j];
            y[i] = static_cast<float>(acc);
        }
    };
    if (m * n >= (1 << 15) && util::worker_count() > 1) {
        util::parallel_for_chunks(0, static_cast<std::size_t>(m), rows);
    } else {
        rows(0, static_cast<std::size_t>(m));
    }
}

}  // namespace xs::tensor
