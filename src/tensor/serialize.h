// Binary tensor (de)serialization — used for model checkpoints so that the
// benchmark binaries can share trained models instead of retraining.
//
// Format: magic "XSTN", u32 rank, i64 dims..., f32 data (little-endian).
#pragma once

#include "tensor/tensor.h"

#include <iosfwd>

namespace xs::tensor {

void write_tensor(std::ostream& os, const Tensor& t);
Tensor read_tensor(std::istream& is);  // throws std::runtime_error on corrupt input

}  // namespace xs::tensor
