// Elementwise / reduction operations on tensors, plus random initializers.
#pragma once

#include "tensor/tensor.h"
#include "util/rng.h"

#include <cstdint>
#include <functional>

namespace xs::tensor {

// ---- elementwise (shapes must match; result has the shape of a) ----
Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);  // Hadamard product
Tensor scale(const Tensor& a, float s);
Tensor apply(const Tensor& a, const std::function<float(float)>& fn);

// In-place variants used on hot paths.
void add_inplace(Tensor& a, const Tensor& b);
void axpy_inplace(Tensor& a, float alpha, const Tensor& b);  // a += alpha*b
void scale_inplace(Tensor& a, float s);
void mul_inplace(Tensor& a, const Tensor& b);

// ---- reductions ----
double sum(const Tensor& a);
double mean(const Tensor& a);
float max_abs(const Tensor& a);
double l2_norm(const Tensor& a);
// Mean and (population) stddev of |a|; used by the column-rearranger score.
void abs_moments(const float* values, std::int64_t n, double& mu, double& sigma);

// Percentile (in (0, 1]) of the absolute values of the non-zero entries.
// Returns 0 when the tensor has no non-zero entry. Used as the outlier-robust
// weight→conductance reference scale and for the WCT cut-off.
double abs_percentile_nonzero(const Tensor& a, double percentile);

// Index of the maximum element in row `r` of a 2-D tensor.
std::int64_t argmax_row(const Tensor& a, std::int64_t r);

// ---- shape ops (rank-2) ----
Tensor transpose(const Tensor& a);

// ---- random initializers ----
void fill_uniform(Tensor& a, util::Rng& rng, float lo, float hi);
void fill_normal(Tensor& a, util::Rng& rng, float mean, float stddev);
// Kaiming/He normal for fan_in inputs (ReLU networks).
void fill_kaiming(Tensor& a, util::Rng& rng, std::int64_t fan_in);

// ---- comparisons (tests) ----
bool allclose(const Tensor& a, const Tensor& b, float atol = 1e-5f, float rtol = 1e-4f);
float max_abs_diff(const Tensor& a, const Tensor& b);

}  // namespace xs::tensor
