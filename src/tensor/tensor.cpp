#include "tensor/tensor.h"

#include <numeric>
#include <sstream>

namespace xs::tensor {

std::string shape_to_string(const Shape& shape) {
    std::ostringstream os;
    os << '[';
    for (std::size_t i = 0; i < shape.size(); ++i) {
        if (i) os << ", ";
        os << shape[i];
    }
    os << ']';
    return os.str();
}

std::int64_t shape_numel(const Shape& shape) {
    std::int64_t n = 1;
    for (const auto d : shape) {
        // Build the message lazily: this runs on every Tensor construction
        // and every arena reset, which must stay allocation-free.
        if (d < 0)
            check(false, "negative dimension in shape " + shape_to_string(shape));
        n *= d;
    }
    return n;
}

Tensor::Tensor(Shape shape, float fill)
    : shape_(std::move(shape)),
      data_(static_cast<std::size_t>(shape_numel(shape_)), fill) {}

Tensor::Tensor(std::initializer_list<std::int64_t> shape, float fill)
    : Tensor(Shape(shape), fill) {}

Tensor Tensor::reshaped(Shape new_shape) const {
    check(shape_numel(new_shape) == numel(),
          "reshape from " + shape_to_string(shape_) + " to " +
              shape_to_string(new_shape) + " changes element count");
    Tensor out = *this;
    out.shape_ = std::move(new_shape);
    return out;
}

void Tensor::reset(const Shape& new_shape) {
    shape_ = new_shape;  // vector assign reuses capacity once warmed up
    data_.resize(static_cast<std::size_t>(shape_numel(shape_)));
}

void Tensor::reset(std::int64_t d0, std::int64_t d1) {
    shape_.resize(2);
    shape_[0] = d0;
    shape_[1] = d1;
    check(d0 >= 0 && d1 >= 0, "Tensor::reset: negative dimension");
    data_.resize(static_cast<std::size_t>(d0 * d1));
}

void Tensor::reset(std::int64_t d0, std::int64_t d1, std::int64_t d2,
                   std::int64_t d3) {
    shape_.resize(4);
    shape_[0] = d0;
    shape_[1] = d1;
    shape_[2] = d2;
    shape_[3] = d3;
    check(d0 >= 0 && d1 >= 0 && d2 >= 0 && d3 >= 0,
          "Tensor::reset: negative dimension");
    data_.resize(static_cast<std::size_t>(d0 * d1 * d2 * d3));
}

float& Tensor::at(std::int64_t i, std::int64_t j) {
    return data_[static_cast<std::size_t>(i * shape_[1] + j)];
}

float Tensor::at(std::int64_t i, std::int64_t j) const {
    return data_[static_cast<std::size_t>(i * shape_[1] + j)];
}

float& Tensor::at(std::int64_t i, std::int64_t j, std::int64_t k, std::int64_t l) {
    return data_[static_cast<std::size_t>(
        ((i * shape_[1] + j) * shape_[2] + k) * shape_[3] + l)];
}

float Tensor::at(std::int64_t i, std::int64_t j, std::int64_t k, std::int64_t l) const {
    return data_[static_cast<std::size_t>(
        ((i * shape_[1] + j) * shape_[2] + k) * shape_[3] + l)];
}

void Tensor::fill(float value) {
    std::fill(data_.begin(), data_.end(), value);
}

}  // namespace xs::tensor
