#include "tensor/tensor.h"

#include <numeric>
#include <sstream>

namespace xs::tensor {

std::string shape_to_string(const Shape& shape) {
    std::ostringstream os;
    os << '[';
    for (std::size_t i = 0; i < shape.size(); ++i) {
        if (i) os << ", ";
        os << shape[i];
    }
    os << ']';
    return os.str();
}

std::int64_t shape_numel(const Shape& shape) {
    std::int64_t n = 1;
    for (const auto d : shape) {
        check(d >= 0, "negative dimension in shape " + shape_to_string(shape));
        n *= d;
    }
    return n;
}

Tensor::Tensor(Shape shape, float fill)
    : shape_(std::move(shape)),
      data_(static_cast<std::size_t>(shape_numel(shape_)), fill) {}

Tensor::Tensor(std::initializer_list<std::int64_t> shape, float fill)
    : Tensor(Shape(shape), fill) {}

Tensor Tensor::reshaped(Shape new_shape) const {
    check(shape_numel(new_shape) == numel(),
          "reshape from " + shape_to_string(shape_) + " to " +
              shape_to_string(new_shape) + " changes element count");
    Tensor out = *this;
    out.shape_ = std::move(new_shape);
    return out;
}

float& Tensor::at(std::int64_t i, std::int64_t j) {
    return data_[static_cast<std::size_t>(i * shape_[1] + j)];
}

float Tensor::at(std::int64_t i, std::int64_t j) const {
    return data_[static_cast<std::size_t>(i * shape_[1] + j)];
}

float& Tensor::at(std::int64_t i, std::int64_t j, std::int64_t k, std::int64_t l) {
    return data_[static_cast<std::size_t>(
        ((i * shape_[1] + j) * shape_[2] + k) * shape_[3] + l)];
}

float Tensor::at(std::int64_t i, std::int64_t j, std::int64_t k, std::int64_t l) const {
    return data_[static_cast<std::size_t>(
        ((i * shape_[1] + j) * shape_[2] + k) * shape_[3] + l)];
}

void Tensor::fill(float value) {
    std::fill(data_.begin(), data_.end(), value);
}

}  // namespace xs::tensor
