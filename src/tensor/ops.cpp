#include "tensor/ops.h"

#include <algorithm>
#include <cmath>

namespace xs::tensor {
namespace {

void check_same_shape(const Tensor& a, const Tensor& b, const char* op) {
    check(a.same_shape(b), std::string(op) + ": shape mismatch " +
                               shape_to_string(a.shape()) + " vs " +
                               shape_to_string(b.shape()));
}

}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
    check_same_shape(a, b, "add");
    Tensor out = a;
    add_inplace(out, b);
    return out;
}

Tensor sub(const Tensor& a, const Tensor& b) {
    check_same_shape(a, b, "sub");
    Tensor out = a;
    const float* pb = b.data();
    float* po = out.data();
    for (std::int64_t i = 0; i < out.numel(); ++i) po[i] -= pb[i];
    return out;
}

Tensor mul(const Tensor& a, const Tensor& b) {
    check_same_shape(a, b, "mul");
    Tensor out = a;
    mul_inplace(out, b);
    return out;
}

Tensor scale(const Tensor& a, float s) {
    Tensor out = a;
    scale_inplace(out, s);
    return out;
}

Tensor apply(const Tensor& a, const std::function<float(float)>& fn) {
    Tensor out = a;
    float* p = out.data();
    for (std::int64_t i = 0; i < out.numel(); ++i) p[i] = fn(p[i]);
    return out;
}

void add_inplace(Tensor& a, const Tensor& b) {
    check_same_shape(a, b, "add_inplace");
    const float* pb = b.data();
    float* pa = a.data();
    for (std::int64_t i = 0; i < a.numel(); ++i) pa[i] += pb[i];
}

void axpy_inplace(Tensor& a, float alpha, const Tensor& b) {
    check_same_shape(a, b, "axpy_inplace");
    const float* pb = b.data();
    float* pa = a.data();
    for (std::int64_t i = 0; i < a.numel(); ++i) pa[i] += alpha * pb[i];
}

void scale_inplace(Tensor& a, float s) {
    float* p = a.data();
    for (std::int64_t i = 0; i < a.numel(); ++i) p[i] *= s;
}

void mul_inplace(Tensor& a, const Tensor& b) {
    check_same_shape(a, b, "mul_inplace");
    const float* pb = b.data();
    float* pa = a.data();
    for (std::int64_t i = 0; i < a.numel(); ++i) pa[i] *= pb[i];
}

double sum(const Tensor& a) {
    double acc = 0.0;
    const float* p = a.data();
    for (std::int64_t i = 0; i < a.numel(); ++i) acc += p[i];
    return acc;
}

double mean(const Tensor& a) {
    return a.numel() == 0 ? 0.0 : sum(a) / static_cast<double>(a.numel());
}

float max_abs(const Tensor& a) {
    float m = 0.0f;
    const float* p = a.data();
    for (std::int64_t i = 0; i < a.numel(); ++i) m = std::max(m, std::fabs(p[i]));
    return m;
}

double l2_norm(const Tensor& a) {
    double acc = 0.0;
    const float* p = a.data();
    for (std::int64_t i = 0; i < a.numel(); ++i)
        acc += static_cast<double>(p[i]) * p[i];
    return std::sqrt(acc);
}

void abs_moments(const float* values, std::int64_t n, double& mu, double& sigma) {
    if (n == 0) {
        mu = sigma = 0.0;
        return;
    }
    double acc = 0.0;
    for (std::int64_t i = 0; i < n; ++i) acc += std::fabs(values[i]);
    mu = acc / static_cast<double>(n);
    double var = 0.0;
    for (std::int64_t i = 0; i < n; ++i) {
        const double d = std::fabs(values[i]) - mu;
        var += d * d;
    }
    sigma = std::sqrt(var / static_cast<double>(n));
}

double abs_percentile_nonzero(const Tensor& a, double percentile) {
    check(percentile > 0.0 && percentile <= 1.0,
          "abs_percentile_nonzero: percentile must be in (0, 1]");
    std::vector<float> mags;
    mags.reserve(static_cast<std::size_t>(a.numel()));
    const float* p = a.data();
    for (std::int64_t i = 0; i < a.numel(); ++i)
        if (p[i] != 0.0f) mags.push_back(std::fabs(p[i]));
    if (mags.empty()) return 0.0;
    auto k = static_cast<std::size_t>(percentile * static_cast<double>(mags.size()));
    if (k >= mags.size()) k = mags.size() - 1;
    std::nth_element(mags.begin(), mags.begin() + static_cast<std::ptrdiff_t>(k),
                     mags.end());
    return mags[k];
}

std::int64_t argmax_row(const Tensor& a, std::int64_t r) {
    check(a.rank() == 2, "argmax_row expects a rank-2 tensor");
    const std::int64_t cols = a.dim(1);
    const float* p = a.data() + r * cols;
    std::int64_t best = 0;
    for (std::int64_t j = 1; j < cols; ++j)
        if (p[j] > p[best]) best = j;
    return best;
}

Tensor transpose(const Tensor& a) {
    check(a.rank() == 2, "transpose expects a rank-2 tensor");
    const std::int64_t rows = a.dim(0), cols = a.dim(1);
    Tensor out({cols, rows});
    const float* pa = a.data();
    float* po = out.data();
    for (std::int64_t i = 0; i < rows; ++i)
        for (std::int64_t j = 0; j < cols; ++j)
            po[j * rows + i] = pa[i * cols + j];
    return out;
}

void fill_uniform(Tensor& a, util::Rng& rng, float lo, float hi) {
    float* p = a.data();
    for (std::int64_t i = 0; i < a.numel(); ++i)
        p[i] = static_cast<float>(rng.uniform(lo, hi));
}

void fill_normal(Tensor& a, util::Rng& rng, float mean, float stddev) {
    float* p = a.data();
    for (std::int64_t i = 0; i < a.numel(); ++i)
        p[i] = static_cast<float>(rng.normal(mean, stddev));
}

void fill_kaiming(Tensor& a, util::Rng& rng, std::int64_t fan_in) {
    check(fan_in > 0, "fill_kaiming: fan_in must be positive");
    const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
    fill_normal(a, rng, 0.0f, stddev);
}

bool allclose(const Tensor& a, const Tensor& b, float atol, float rtol) {
    if (!a.same_shape(b)) return false;
    const float* pa = a.data();
    const float* pb = b.data();
    for (std::int64_t i = 0; i < a.numel(); ++i) {
        const float diff = std::fabs(pa[i] - pb[i]);
        if (diff > atol + rtol * std::fabs(pb[i])) return false;
    }
    return true;
}

float max_abs_diff(const Tensor& a, const Tensor& b) {
    check(a.same_shape(b), "max_abs_diff: shape mismatch");
    float m = 0.0f;
    const float* pa = a.data();
    const float* pb = b.data();
    for (std::int64_t i = 0; i < a.numel(); ++i)
        m = std::max(m, std::fabs(pa[i] - pb[i]));
    return m;
}

}  // namespace xs::tensor
