// Partitioning of a MAC matrix into X×X crossbar tiles.
//
// Three schemes matching the pruning methods:
//  * dense      — contiguous row/column blocks (used for unpruned and for
//                 C/F-pruned matrices after T-compaction);
//  * XCS-packed — per row-block, the surviving (non-zero) column segments
//                 are packed side by side, so zero column segments consume
//                 no crossbar columns (paper §III T(W) for XCS);
//  * XRS-packed — symmetric packing of surviving row segments.
//
// A Tile holds the matrix indices it covers; entry (i, j) of the tile is
// matrix(rows[i], cols[j]), zero-padded beyond the index lists. This uniform
// representation lets the evaluator treat all schemes identically.
//
// Index lists are strictly ascending — every producer here emits them that
// way, and extract_tile_into/scatter_tile rely on it: their memcpy fast
// path detects contiguous columns as cols.back() − cols.front() + 1 ==
// cols.size(), which a permuted list would satisfy while needing the
// gather/scatter path. Keep new producers ascending.
#pragma once

#include "tensor/tensor.h"

#include <cstdint>
#include <vector>

namespace xs::map {

struct Tile {
    std::vector<std::int64_t> rows;  // matrix row index per tile row (≤ X)
    std::vector<std::int64_t> cols;  // matrix col index per tile col (≤ X)
};

struct Tiling {
    std::int64_t xbar_size = 0;
    std::int64_t matrix_rows = 0;
    std::int64_t matrix_cols = 0;
    std::vector<Tile> tiles;

    std::int64_t count() const { return static_cast<std::int64_t>(tiles.size()); }
};

// Dense partition of an (rows × cols) matrix: ⌈rows/X⌉·⌈cols/X⌉ tiles.
Tiling tile_dense(std::int64_t rows, std::int64_t cols, std::int64_t xbar_size);

// XCS packing: for each block of X consecutive rows, columns whose segment
// within the block is entirely zero are skipped; survivors pack into
// ⌈survivors/X⌉ tiles.
Tiling tile_xcs(const tensor::Tensor& matrix, std::int64_t xbar_size);

// XRS packing: symmetric, skipping zero row segments within column blocks.
Tiling tile_xrs(const tensor::Tensor& matrix, std::int64_t xbar_size);

// Materialize a tile as an X×X tensor (zero-padded).
tensor::Tensor extract_tile(const tensor::Tensor& matrix, const Tile& tile,
                            std::int64_t xbar_size);

// Allocation-free variant: reuses `out` when it is already X×X.
void extract_tile_into(const tensor::Tensor& matrix, const Tile& tile,
                       std::int64_t xbar_size, tensor::Tensor& out);

// Scatter an X×X tile back into the matrix (only covered entries written).
void scatter_tile(tensor::Tensor& matrix, const Tile& tile,
                  const tensor::Tensor& sub);

}  // namespace xs::map
