// Structured-compaction transform T and its inverse T⁻¹ (paper §III).
//
// For C/F-pruned layers: every all-zero column (pruned filter) and all-zero
// row (channel removed by the previous layer's pruning) of the MAC matrix is
// eliminated before partitioning; after non-ideality injection the modified
// matrix is scattered back, with eliminated entries restored as exact zeros.
#pragma once

#include "tensor/tensor.h"

#include <cstdint>
#include <vector>

namespace xs::map {

struct Compaction {
    std::int64_t orig_rows = 0;
    std::int64_t orig_cols = 0;
    std::vector<std::int64_t> rows;  // kept row indices, ascending
    std::vector<std::int64_t> cols;  // kept column indices, ascending
    tensor::Tensor matrix;           // (rows.size() × cols.size())
};

// T: drop all-zero rows and all-zero columns. Keeps at least one row and one
// column even for an all-zero matrix (degenerate but well-formed).
Compaction compact_dense(const tensor::Tensor& matrix);

// T⁻¹: place `modified` (same shape as compaction.matrix) back into a
// (orig_rows × orig_cols) matrix; eliminated entries are zero.
tensor::Tensor uncompact(const Compaction& compaction,
                         const tensor::Tensor& modified);

}  // namespace xs::map
