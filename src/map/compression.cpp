#include "map/compression.h"

#include "map/compaction.h"
#include "map/matrix_view.h"
#include "map/tiling.h"

namespace xs::map {

CrossbarBudget count_crossbars(nn::Sequential& model, prune::Method method,
                               std::int64_t xbar_size) {
    CrossbarBudget budget;
    budget.xbar_size = xbar_size;

    for (nn::Layer* layer : mappable_layers(model)) {
        const tensor::Tensor matrix = extract_matrix(*layer);
        LayerCrossbarCount entry;
        entry.layer = layer->name();
        entry.rows = matrix.dim(0);
        entry.cols = matrix.dim(1);
        entry.dense_tiles =
            tile_dense(entry.rows, entry.cols, xbar_size).count();

        switch (method) {
            case prune::Method::kNone:
            case prune::Method::kUnstructured:
                // Scattered element zeros save no crossbars.
                entry.tiles = entry.dense_tiles;
                break;
            case prune::Method::kChannelFilter: {
                const Compaction c = compact_dense(matrix);
                entry.tiles = tile_dense(c.matrix.dim(0), c.matrix.dim(1),
                                         xbar_size)
                                  .count();
                break;
            }
            case prune::Method::kXbarColumn:
                entry.tiles = tile_xcs(matrix, xbar_size).count();
                break;
            case prune::Method::kXbarRow:
                entry.tiles = tile_xrs(matrix, xbar_size).count();
                break;
        }
        budget.dense_total += entry.dense_tiles;
        budget.total += entry.tiles;
        budget.layers.push_back(std::move(entry));
    }
    return budget;
}

}  // namespace xs::map
