// First-order energy / area accounting for crossbar-mapped models — the
// resource-efficiency half of the paper's trade-off (sparser networks map to
// fewer crossbars, saving array energy and area, but lose accuracy to
// non-idealities).
//
// Analytic model (per inference MAC pass over every mapped tile):
//   * array read energy: E = Σ_cells (G⁺ + G⁻) · V_read² · t_read, padded
//     cells sitting at G_MIN on both differential arrays;
//   * peripheral energy: per-tile driver energy ∝ rows + sense ∝ cols;
//   * area: two X×X device arrays per logical tile plus row/col periphery.
#pragma once

#include "nn/sequential.h"
#include "prune/prune.h"
#include "xbar/config.h"

#include <cstdint>
#include <string>
#include <vector>

namespace xs::map {

struct EnergyConfig {
    double v_read = 0.25;               // volts
    double t_read_ns = 10.0;            // read pulse width
    double e_driver_pj_per_row = 2.0;   // DAC/driver energy per active row
    double e_sense_pj_per_col = 5.0;    // ADC/sense energy per column read
    double cell_area_um2 = 0.05;        // 1T-1R cell footprint
    double periph_area_um2_per_line = 40.0;  // driver/ADC slice per row/col
};

struct LayerEnergy {
    std::string layer;
    std::int64_t tiles = 0;
    double array_energy_pj = 0.0;
    double periph_energy_pj = 0.0;
    double area_um2 = 0.0;
};

struct EnergyReport {
    std::vector<LayerEnergy> layers;
    std::int64_t tiles = 0;
    double array_energy_pj = 0.0;
    double periph_energy_pj = 0.0;
    double area_um2 = 0.0;

    double total_energy_pj() const { return array_energy_pj + periph_energy_pj; }
};

// Estimate one full-model MAC pass under `method` mapping semantics (same
// T-compaction/tiling rules as the evaluator and count_crossbars).
EnergyReport estimate_energy(nn::Sequential& model, prune::Method method,
                             const xbar::CrossbarConfig& xbar,
                             const EnergyConfig& config);

}  // namespace xs::map
