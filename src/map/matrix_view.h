// Layer ↔ 2-D MAC-matrix conversion (the "unroll convolutions into MAC
// operations" stage of the paper's Fig. 2 framework).
//
// Orientation convention used throughout the repo: the MAC matrix is
// (rows = inputs, cols = outputs). Inputs drive crossbar rows; each output
// unit (conv filter / FC neuron) is one crossbar column. A conv layer with
// weights (Cout, Cin, k, k) therefore yields a (Cin·k·k × Cout) matrix — the
// transpose of its flattened parameter block.
#pragma once

#include "nn/sequential.h"
#include "tensor/tensor.h"

#include <string>
#include <vector>

namespace xs::map {

// True for layers that are mapped onto crossbars (Conv2d, Linear).
bool is_mappable(const nn::Layer& layer);

// All mappable layers of a model, in network order.
std::vector<nn::Layer*> mappable_layers(nn::Sequential& model);

// Extract the (rows × cols) MAC matrix of a conv/linear layer.
// Throws for non-mappable layers.
tensor::Tensor extract_matrix(const nn::Layer& layer);

// Write a (possibly modified) MAC matrix back into the layer's weights.
void inject_matrix(nn::Layer& layer, const tensor::Tensor& matrix);

}  // namespace xs::map
