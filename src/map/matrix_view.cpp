#include "map/matrix_view.h"

#include "nn/conv2d.h"
#include "nn/linear.h"
#include "tensor/ops.h"

namespace xs::map {

using tensor::check;
using tensor::Tensor;

bool is_mappable(const nn::Layer& layer) {
    return dynamic_cast<const nn::Conv2d*>(&layer) != nullptr ||
           dynamic_cast<const nn::Linear*>(&layer) != nullptr;
}

std::vector<nn::Layer*> mappable_layers(nn::Sequential& model) {
    std::vector<nn::Layer*> out;
    model.for_each([&out](nn::Layer& layer) {
        if (is_mappable(layer)) out.push_back(&layer);
    });
    return out;
}

Tensor extract_matrix(const nn::Layer& layer) {
    if (const auto* conv = dynamic_cast<const nn::Conv2d*>(&layer)) {
        const std::int64_t rows =
            conv->in_channels() * conv->kernel() * conv->kernel();
        const std::int64_t cols = conv->out_channels();
        // Parameter layout is (cols, rows); the MAC matrix is the transpose.
        return tensor::transpose(conv->weight().value.reshaped({cols, rows}));
    }
    if (const auto* fc = dynamic_cast<const nn::Linear*>(&layer)) {
        return tensor::transpose(fc->weight().value);  // (in × out)
    }
    check(false, "extract_matrix: layer '" + layer.name() + "' is not mappable");
    return Tensor();
}

void inject_matrix(nn::Layer& layer, const Tensor& matrix) {
    if (auto* conv = dynamic_cast<nn::Conv2d*>(&layer)) {
        const std::int64_t rows =
            conv->in_channels() * conv->kernel() * conv->kernel();
        const std::int64_t cols = conv->out_channels();
        check(matrix.rank() == 2 && matrix.dim(0) == rows && matrix.dim(1) == cols,
              "inject_matrix: shape mismatch for '" + layer.name() + "'");
        const Tensor back = tensor::transpose(matrix);
        conv->weight().value = back.reshaped(conv->weight().value.shape());
        return;
    }
    if (auto* fc = dynamic_cast<nn::Linear*>(&layer)) {
        check(matrix.rank() == 2 && matrix.dim(0) == fc->in_features() &&
                  matrix.dim(1) == fc->out_features(),
              "inject_matrix: shape mismatch for '" + layer.name() + "'");
        fc->weight().value = tensor::transpose(matrix);
        return;
    }
    check(false, "inject_matrix: layer '" + layer.name() + "' is not mappable");
}

}  // namespace xs::map
