// Crossbar accounting: how many X×X crossbars a model needs under each
// pruning scheme, and the crossbar-compression-rate of paper Table I
// (crossbars for the unpruned layout ÷ crossbars after T-compaction).
#pragma once

#include "nn/sequential.h"
#include "prune/prune.h"

#include <cstdint>
#include <string>
#include <vector>

namespace xs::map {

struct LayerCrossbarCount {
    std::string layer;
    std::int64_t rows = 0;        // original MAC-matrix rows
    std::int64_t cols = 0;        // original MAC-matrix cols
    std::int64_t dense_tiles = 0; // tiles for the unpruned layout
    std::int64_t tiles = 0;       // tiles after the scheme's T-compaction
};

struct CrossbarBudget {
    std::int64_t xbar_size = 0;
    std::vector<LayerCrossbarCount> layers;
    std::int64_t dense_total = 0;
    std::int64_t total = 0;

    double compression_rate() const {
        return total ? static_cast<double>(dense_total) / static_cast<double>(total)
                     : 0.0;
    }
};

// Counts crossbars for every mappable layer under `method` semantics:
//  * kNone           — dense tiling of the full matrices;
//  * kChannelFilter  — dense tiling after dropping all-zero rows/columns;
//  * kXbarColumn/Row — XCS/XRS segment packing.
CrossbarBudget count_crossbars(nn::Sequential& model, prune::Method method,
                               std::int64_t xbar_size);

}  // namespace xs::map
