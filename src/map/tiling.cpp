#include "map/tiling.h"

#include <cstring>

namespace xs::map {

using tensor::check;
using tensor::Tensor;

Tiling tile_dense(std::int64_t rows, std::int64_t cols, std::int64_t xbar_size) {
    check(rows > 0 && cols > 0 && xbar_size > 0, "tile_dense: bad dimensions");
    Tiling t;
    t.xbar_size = xbar_size;
    t.matrix_rows = rows;
    t.matrix_cols = cols;
    for (std::int64_t r0 = 0; r0 < rows; r0 += xbar_size) {
        for (std::int64_t c0 = 0; c0 < cols; c0 += xbar_size) {
            Tile tile;
            for (std::int64_t r = r0; r < std::min(rows, r0 + xbar_size); ++r)
                tile.rows.push_back(r);
            for (std::int64_t c = c0; c < std::min(cols, c0 + xbar_size); ++c)
                tile.cols.push_back(c);
            t.tiles.push_back(std::move(tile));
        }
    }
    return t;
}

Tiling tile_xcs(const Tensor& matrix, std::int64_t xbar_size) {
    check(matrix.rank() == 2, "tile_xcs: expects a rank-2 matrix");
    const std::int64_t rows = matrix.dim(0), cols = matrix.dim(1);
    Tiling t;
    t.xbar_size = xbar_size;
    t.matrix_rows = rows;
    t.matrix_cols = cols;

    for (std::int64_t r0 = 0; r0 < rows; r0 += xbar_size) {
        const std::int64_t r1 = std::min(rows, r0 + xbar_size);
        // Surviving columns: the segment [r0, r1) × {c} has a non-zero entry.
        std::vector<std::int64_t> survivors;
        for (std::int64_t c = 0; c < cols; ++c) {
            bool nonzero = false;
            for (std::int64_t r = r0; r < r1 && !nonzero; ++r)
                nonzero = matrix.at(r, c) != 0.0f;
            if (nonzero) survivors.push_back(c);
        }
        if (survivors.empty()) continue;
        for (std::size_t s0 = 0; s0 < survivors.size();
             s0 += static_cast<std::size_t>(xbar_size)) {
            Tile tile;
            for (std::int64_t r = r0; r < r1; ++r) tile.rows.push_back(r);
            const std::size_t s1 = std::min(
                survivors.size(), s0 + static_cast<std::size_t>(xbar_size));
            for (std::size_t s = s0; s < s1; ++s) tile.cols.push_back(survivors[s]);
            t.tiles.push_back(std::move(tile));
        }
    }
    return t;
}

Tiling tile_xrs(const Tensor& matrix, std::int64_t xbar_size) {
    check(matrix.rank() == 2, "tile_xrs: expects a rank-2 matrix");
    const std::int64_t rows = matrix.dim(0), cols = matrix.dim(1);
    Tiling t;
    t.xbar_size = xbar_size;
    t.matrix_rows = rows;
    t.matrix_cols = cols;

    for (std::int64_t c0 = 0; c0 < cols; c0 += xbar_size) {
        const std::int64_t c1 = std::min(cols, c0 + xbar_size);
        std::vector<std::int64_t> survivors;
        for (std::int64_t r = 0; r < rows; ++r) {
            bool nonzero = false;
            for (std::int64_t c = c0; c < c1 && !nonzero; ++c)
                nonzero = matrix.at(r, c) != 0.0f;
            if (nonzero) survivors.push_back(r);
        }
        if (survivors.empty()) continue;
        for (std::size_t s0 = 0; s0 < survivors.size();
             s0 += static_cast<std::size_t>(xbar_size)) {
            Tile tile;
            const std::size_t s1 = std::min(
                survivors.size(), s0 + static_cast<std::size_t>(xbar_size));
            for (std::size_t s = s0; s < s1; ++s) tile.rows.push_back(survivors[s]);
            for (std::int64_t c = c0; c < c1; ++c) tile.cols.push_back(c);
            t.tiles.push_back(std::move(tile));
        }
    }
    return t;
}

void extract_tile_into(const Tensor& matrix, const Tile& tile,
                       std::int64_t xbar_size, Tensor& out) {
    if (!(out.rank() == 2 && out.dim(0) == xbar_size && out.dim(1) == xbar_size))
        out = Tensor({xbar_size, xbar_size}, 0.0f);
    const std::int64_t n_rows = static_cast<std::int64_t>(tile.rows.size());
    const std::int64_t n_cols = static_cast<std::int64_t>(tile.cols.size());
    const float* src = matrix.data();
    const std::int64_t ld = matrix.dim(1);
    float* dst = out.data();
    // Index lists are ascending; consecutive columns (every dense tile, and
    // most packed ones) copy as one memcpy per row.
    const bool contiguous =
        n_cols > 0 && tile.cols.back() - tile.cols.front() + 1 == n_cols;
    for (std::int64_t i = 0; i < n_rows; ++i) {
        const float* srow = src + tile.rows[static_cast<std::size_t>(i)] * ld;
        float* drow = dst + i * xbar_size;
        if (contiguous) {
            std::memcpy(drow, srow + tile.cols.front(),
                        static_cast<std::size_t>(n_cols) * sizeof(float));
        } else {
            for (std::int64_t j = 0; j < n_cols; ++j)
                drow[j] = srow[tile.cols[static_cast<std::size_t>(j)]];
        }
        // Zero only the right padding (instead of pre-zeroing the tile).
        for (std::int64_t j = n_cols; j < xbar_size; ++j) drow[j] = 0.0f;
    }
    for (std::int64_t i = n_rows; i < xbar_size; ++i) {
        float* drow = dst + i * xbar_size;
        for (std::int64_t j = 0; j < xbar_size; ++j) drow[j] = 0.0f;
    }
}

Tensor extract_tile(const Tensor& matrix, const Tile& tile, std::int64_t xbar_size) {
    Tensor sub;
    extract_tile_into(matrix, tile, xbar_size, sub);
    return sub;
}

void scatter_tile(Tensor& matrix, const Tile& tile, const Tensor& sub) {
    const std::int64_t n_rows = static_cast<std::int64_t>(tile.rows.size());
    const std::int64_t n_cols = static_cast<std::int64_t>(tile.cols.size());
    float* dst = matrix.data();
    const std::int64_t ld = matrix.dim(1);
    const float* src = sub.data();
    const std::int64_t sld = sub.dim(1);
    const bool contiguous =
        n_cols > 0 && tile.cols.back() - tile.cols.front() + 1 == n_cols;
    for (std::int64_t i = 0; i < n_rows; ++i) {
        float* drow = dst + tile.rows[static_cast<std::size_t>(i)] * ld;
        const float* srow = src + i * sld;
        if (contiguous) {
            std::memcpy(drow + tile.cols.front(), srow,
                        static_cast<std::size_t>(n_cols) * sizeof(float));
        } else {
            for (std::int64_t j = 0; j < n_cols; ++j)
                drow[tile.cols[static_cast<std::size_t>(j)]] = srow[j];
        }
    }
}

}  // namespace xs::map
