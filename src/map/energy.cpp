#include "map/energy.h"

#include "map/compaction.h"
#include "map/matrix_view.h"
#include "map/tiling.h"
#include "tensor/ops.h"
#include "xbar/mapper.h"

#include <cmath>

namespace xs::map {

using tensor::Tensor;

namespace {

Tiling tiling_for(const Tensor& work, prune::Method method, std::int64_t size) {
    switch (method) {
        case prune::Method::kXbarColumn:
            return tile_xcs(work, size);
        case prune::Method::kXbarRow:
            return tile_xrs(work, size);
        default:
            return tile_dense(work.dim(0), work.dim(1), size);
    }
}

}  // namespace

EnergyReport estimate_energy(nn::Sequential& model, prune::Method method,
                             const xbar::CrossbarConfig& xbar,
                             const EnergyConfig& config) {
    EnergyReport report;
    const double g_min = xbar.device.g_min();
    const double joule_scale = config.v_read * config.v_read *
                               config.t_read_ns * 1e-9 * 1e12;  // -> pJ

    for (nn::Layer* layer : mappable_layers(model)) {
        Tensor matrix = extract_matrix(*layer);
        if (method == prune::Method::kChannelFilter)
            matrix = compact_dense(matrix).matrix;

        double w_ref = tensor::abs_percentile_nonzero(matrix, 0.995);
        if (w_ref <= 0.0) w_ref = 1.0;
        const xbar::ConductanceMapper mapper(xbar.device, w_ref);

        const Tiling tiling = tiling_for(matrix, method, xbar.size);

        LayerEnergy le;
        le.layer = layer->name();
        le.tiles = tiling.count();
        for (const Tile& tile : tiling.tiles) {
            // Mapped cells: G⁺ + G⁻ = 2·G_MIN + slope·|w|.
            double g_sum = 0.0;
            for (const auto r : tile.rows)
                for (const auto c : tile.cols)
                    g_sum += 2.0 * g_min +
                             mapper.slope() * std::fabs(matrix.at(r, c));
            // Padded cells idle at G_MIN on both arrays.
            const std::int64_t padded =
                xbar.size * xbar.size -
                static_cast<std::int64_t>(tile.rows.size() * tile.cols.size());
            g_sum += 2.0 * g_min * static_cast<double>(padded);

            le.array_energy_pj += g_sum * joule_scale;
            le.periph_energy_pj +=
                config.e_driver_pj_per_row * static_cast<double>(xbar.size) +
                config.e_sense_pj_per_col * static_cast<double>(xbar.size);
            le.area_um2 +=
                2.0 * static_cast<double>(xbar.size * xbar.size) *
                    config.cell_area_um2 +
                2.0 * static_cast<double>(xbar.size) * config.periph_area_um2_per_line;
        }
        report.tiles += le.tiles;
        report.array_energy_pj += le.array_energy_pj;
        report.periph_energy_pj += le.periph_energy_pj;
        report.area_um2 += le.area_um2;
        report.layers.push_back(std::move(le));
    }
    return report;
}

}  // namespace xs::map
