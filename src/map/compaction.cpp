#include "map/compaction.h"

namespace xs::map {

using tensor::check;
using tensor::Tensor;

Compaction compact_dense(const Tensor& matrix) {
    check(matrix.rank() == 2, "compact_dense: expects a rank-2 matrix");
    const std::int64_t rows = matrix.dim(0), cols = matrix.dim(1);

    Compaction c;
    c.orig_rows = rows;
    c.orig_cols = cols;
    for (std::int64_t r = 0; r < rows; ++r) {
        const float* p = matrix.data() + r * cols;
        for (std::int64_t j = 0; j < cols; ++j)
            if (p[j] != 0.0f) {
                c.rows.push_back(r);
                break;
            }
    }
    for (std::int64_t j = 0; j < cols; ++j) {
        bool nonzero = false;
        for (std::int64_t r = 0; r < rows && !nonzero; ++r)
            nonzero = matrix.at(r, j) != 0.0f;
        if (nonzero) c.cols.push_back(j);
    }
    if (c.rows.empty()) c.rows.push_back(0);
    if (c.cols.empty()) c.cols.push_back(0);

    c.matrix = Tensor({static_cast<std::int64_t>(c.rows.size()),
                       static_cast<std::int64_t>(c.cols.size())});
    for (std::size_t ri = 0; ri < c.rows.size(); ++ri)
        for (std::size_t ci = 0; ci < c.cols.size(); ++ci)
            c.matrix.at(static_cast<std::int64_t>(ri), static_cast<std::int64_t>(ci)) =
                matrix.at(c.rows[ri], c.cols[ci]);
    return c;
}

Tensor uncompact(const Compaction& compaction, const Tensor& modified) {
    check(modified.rank() == 2 &&
              modified.dim(0) == static_cast<std::int64_t>(compaction.rows.size()) &&
              modified.dim(1) == static_cast<std::int64_t>(compaction.cols.size()),
          "uncompact: modified matrix shape mismatch");
    Tensor out({compaction.orig_rows, compaction.orig_cols}, 0.0f);
    for (std::size_t ri = 0; ri < compaction.rows.size(); ++ri)
        for (std::size_t ci = 0; ci < compaction.cols.size(); ++ci)
            out.at(compaction.rows[ri], compaction.cols[ci]) =
                modified.at(static_cast<std::int64_t>(ri),
                            static_cast<std::int64_t>(ci));
    return out;
}

}  // namespace xs::map
