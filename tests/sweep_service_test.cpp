// Multi-host sweep service coverage (sweep/service.h) over loopback TCP:
// the coordinator runs in-process on a pre-bound ephemeral port while agent
// hosts are real forked copies of this binary (--agent=127.0.0.1:<port>),
// each running its own forked worker pool — three process layers deep,
// exactly the production topology of examples/sweep_serve.cpp.
//
// The invariant under test is the paper-repro one: the aggregate CSV is
// byte-identical to an uninterrupted single-process run at any host count,
// through host kills mid-cell, torn socket frames, agent disconnects with
// reconnect+replay, expired leases with late duplicate acks, and
// coordinator restarts (--resume). Faults are injected into the *agent*
// processes via their environment (XS_FAULT), never into the coordinator.
//
// This binary is its own worker AND its own agent: it provides main()
// (CMake links it without gtest_main) and re-execs itself, exactly like the
// sweep_runner driver does in production.
#include "core/experiments.h"
#include "sweep/manifest.h"
#include "sweep/net.h"
#include "sweep/runner.h"
#include "sweep/service.h"
#include "sweep/supervisor.h"
#include "util/flags.h"
#include "util/metrics.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

extern char** environ;

namespace xs::sweep {
namespace {

std::string test_dir() {
    const auto dir =
        std::filesystem::temp_directory_path() / "xs_sweep_service";
    std::filesystem::create_directories(dir);
    return dir.string();
}

// One flag list drives everything: the test-side context/spec AND the agent
// command lines, so the coordinator and every agent (and every agent's
// workers) parse identical configurations — and identical fingerprints —
// by construction.
std::vector<std::string> base_args() {
    return {"--width=0.0625",
            "--train-count=96",
            "--test-count=48",
            "--epochs=1",
            "--batch=16",
            "--sizes=16",
            "--prune=none,cf:0.8",
            "--sweep-repeats=2",
            "--out-dir=" + test_dir(),
            "--cache-dir=" + test_dir() + "/models"};
}

util::Flags tiny_flags() {
    static std::vector<std::string> args = base_args();
    std::vector<char*> argv;
    static const char* name = "sweep_service_test";
    argv.push_back(const_cast<char*>(name));
    for (auto& arg : args) argv.push_back(arg.data());
    return util::Flags(static_cast<int>(argv.size()), argv.data());
}

core::ExperimentContext& ctx() {
    static const bool cleaned = [] {
        std::filesystem::remove_all(std::filesystem::temp_directory_path() /
                                    "xs_sweep_service");
        return true;
    }();
    (void)cleaned;
    static util::Flags flags = tiny_flags();
    static core::ExperimentContext context(flags);
    return context;
}

SweepSpec tiny_spec() { return parse_sweep_spec(tiny_flags()); }

// A 12-cell variant (same models, more repeats) for the reconnect tests:
// the tiny 4-cell sweep finishes in a few hundred ms once workers are warm,
// which is faster than a severed agent can rejoin — the fault would "pass"
// by the sweep ending before the reconnect it is supposed to exercise.
std::vector<std::string> many_args() {
    auto args = base_args();
    for (std::string& a : args)
        if (a == "--sweep-repeats=2") a = "--sweep-repeats=6";
    return args;
}

SweepSpec many_spec() {
    static std::vector<std::string> args = many_args();
    std::vector<char*> argv;
    static const char* name = "sweep_service_test";
    argv.push_back(const_cast<char*>(name));
    for (auto& arg : args) argv.push_back(arg.data());
    return parse_sweep_spec(
        util::Flags(static_cast<int>(argv.size()), argv.data()));
}

std::string slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

// Uninterrupted single-process reference run (once per process): the bytes
// every service topology must reproduce — and the warm model cache every
// agent child resolves its prepared models from.
const std::string& baseline_csv() {
    static const std::string csv = [] {
        SweepOptions opts;
        opts.csv_name = "baseline.csv";
        opts.manifest_name = "baseline.jsonl";
        SweepRunner runner(ctx(), tiny_spec(), opts);
        const SweepSummary summary = runner.run();
        EXPECT_EQ(summary.cells_executed, 4);
        return slurp(summary.csv_path);
    }();
    EXPECT_FALSE(csv.empty());
    return csv;
}

// Single-process reference bytes for the 12-cell grid (reconnect tests).
const std::string& baseline_many_csv() {
    static const std::string csv = [] {
        SweepOptions opts;
        opts.csv_name = "baseline_many.csv";
        opts.manifest_name = "baseline_many.jsonl";
        SweepRunner runner(ctx(), many_spec(), opts);
        const SweepSummary summary = runner.run();
        EXPECT_EQ(summary.cells_executed, 12);
        return slurp(summary.csv_path);
    }();
    EXPECT_FALSE(csv.empty());
    return csv;
}

int count_occurrences(const std::string& hay, const std::string& needle) {
    int n = 0;
    for (auto pos = hay.find(needle); pos != std::string::npos;
         pos = hay.find(needle, pos + needle.size()))
        ++n;
    return n;
}

// Fork+exec this binary as an agent host joining 127.0.0.1:<port>. The
// fault plan travels in the child's environment only — the coordinator
// (this process) never sees it. argv/envp are fully built before fork:
// the test process is threaded, so the child runs only async-signal-safe
// calls between fork and exec.
pid_t spawn_agent(int port, std::int64_t workers,
                  const std::string& fault = "",
                  const std::string& delay_ms = "",
                  const std::vector<std::string>* base_override = nullptr,
                  const std::string& backoff_ms = "50") {
    char exe[4096];
    const ssize_t n = ::readlink("/proc/self/exe", exe, sizeof(exe) - 1);
    EXPECT_GT(n, 0);
    exe[n] = '\0';

    std::vector<std::string> args;
    args.push_back(exe);
    for (const std::string& a : base_override ? *base_override : base_args())
        args.push_back(a);
    args.push_back("--agent=127.0.0.1:" + std::to_string(port));
    args.push_back("--workers=" + std::to_string(workers));
    args.push_back("--agent-backoff-ms=" + backoff_ms);  // fast test rejoins
    args.push_back("--agent-reconnects=6");    // bounded: a dead service
                                               // must not leak a child

    std::vector<std::string> env;
    for (char** e = environ; *e != nullptr; ++e)
        if (std::string(*e).rfind("XS_FAULT", 0) != 0) env.push_back(*e);
    if (!fault.empty()) env.push_back("XS_FAULT=" + fault);
    if (!delay_ms.empty())
        env.push_back("XS_FAULT_NET_DELAY_MS=" + delay_ms);

    std::vector<char*> argv, envp;
    for (auto& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);
    for (auto& e : env) envp.push_back(e.data());
    envp.push_back(nullptr);

    const pid_t pid = ::fork();
    EXPECT_GE(pid, 0);
    if (pid == 0) {
        ::execve(argv[0], argv.data(), envp.data());
        ::_exit(127);
    }
    return pid;
}

// Owns an agent child: tests that pass collect the exit status; tests that
// throw out of run_service still reap (SIGKILL) instead of leaking it.
struct AgentProc {
    pid_t pid = -1;
    explicit AgentProc(pid_t p) : pid(p) {}
    AgentProc(AgentProc&& o) noexcept : pid(o.pid) { o.pid = -1; }
    AgentProc(const AgentProc&) = delete;
    ~AgentProc() {
        if (pid > 0) {
            ::kill(pid, SIGKILL);
            ::waitpid(pid, nullptr, 0);
        }
    }
    int wait() {
        int st = 0;
        ::waitpid(pid, &st, 0);
        pid = -1;
        return st;
    }
};

bool exited_ok(int status) {
    return WIFEXITED(status) && WEXITSTATUS(status) == 0;
}

// Service options on a fresh ephemeral port (run_service owns and closes
// the fd), tuned for test latency: fast beacons, fast re-deals, and a
// silence tolerance generous enough that scheduling jitter never declares
// a healthy loopback host dead.
ServiceOptions fast_svc(int& port) {
    ServiceOptions svc;
    std::string err;
    svc.listen_fd = net::listen_on(0, &err);
    EXPECT_GE(svc.listen_fd, 0) << err;
    port = net::bound_port(svc.listen_fd);
    EXPECT_GT(port, 0);
    svc.heartbeat_ms = 250.0;
    svc.heartbeat_misses = 8;  // 2 s of silence = dead
    svc.retry_backoff_ms = 20.0;
    return svc;
}

TEST(SweepService, SingleHostMatchesSingleProcessByteForByte) {
    baseline_csv();
    int port = 0;
    const ServiceOptions svc = fast_svc(port);
    AgentProc agent(spawn_agent(port, 2));

    SweepOptions opts;
    opts.csv_name = "svc_one.csv";
    opts.manifest_name = "svc_one.jsonl";
    const SweepSummary summary = run_service(ctx(), tiny_spec(), opts, svc);
    EXPECT_EQ(summary.cells_executed, 4);
    EXPECT_EQ(summary.cells_failed, 0);
    EXPECT_EQ(summary.hosts_joined, 1);
    EXPECT_EQ(summary.duplicate_acks, 0);
    EXPECT_EQ(slurp(summary.csv_path), baseline_csv());
    EXPECT_TRUE(exited_ok(agent.wait()));  // shut down by the service
}

TEST(SweepService, ThreeHostsMatchSingleProcessByteForByte) {
    baseline_csv();
    int port = 0;
    const ServiceOptions svc = fast_svc(port);
    std::vector<AgentProc> agents;
    for (int i = 0; i < 3; ++i)
        agents.emplace_back(spawn_agent(port, 1));

    SweepOptions opts;
    opts.csv_name = "svc_three.csv";
    opts.manifest_name = "svc_three.jsonl";
    const SweepSummary summary = run_service(ctx(), tiny_spec(), opts, svc);
    EXPECT_EQ(summary.cells_executed, 4);
    EXPECT_EQ(summary.cells_failed, 0);
    EXPECT_EQ(summary.hosts_joined, 3);
    EXPECT_EQ(slurp(summary.csv_path), baseline_csv());
    for (auto& a : agents) EXPECT_TRUE(exited_ok(a.wait()));
}

TEST(SweepService, HostKilledMidCellHasItsLeaseReDealt) {
    baseline_csv();
    int port = 0;
    const ServiceOptions svc = fast_svc(port);
    // Both agents carry the same plan, but cell 1's first deal lands on
    // exactly one of them — that whole host (workers and all) dies mid-cell
    // (SIGKILL, no goodbye), and the survivor, which never sees cell 1 at
    // attempt 0 again, finishes the sweep.
    std::vector<AgentProc> agents;
    agents.emplace_back(spawn_agent(port, 1, "crash@agent-deal:1"));
    agents.emplace_back(spawn_agent(port, 1, "crash@agent-deal:1"));

    SweepOptions opts;
    opts.csv_name = "svc_kill.csv";
    opts.manifest_name = "svc_kill.jsonl";
    const SweepSummary summary = run_service(ctx(), tiny_spec(), opts, svc);
    EXPECT_EQ(summary.cells_executed, 4);
    EXPECT_EQ(summary.cells_failed, 0);
    EXPECT_GE(summary.cell_retries, 1);  // the orphaned lease re-dealt
    EXPECT_EQ(slurp(summary.csv_path), baseline_csv());

    const int st0 = agents[0].wait();
    const int st1 = agents[1].wait();
    EXPECT_TRUE(WIFSIGNALED(st0) != WIFSIGNALED(st1))
        << "exactly one host should have died";
    EXPECT_TRUE(exited_ok(WIFSIGNALED(st0) ? st1 : st0));
}

// The two reconnect tests run the 12-cell grid (so the sweep outlives the
// rejoin), sever the faulted host's *second ack* via the net-send-ack site
// (machine load decides whether a raw frame ordinal is an ack or an idle
// heartbeat — the ack ordinal is deterministic), and reconnect on a 10 ms
// backoff so the rejoin lands while the sweep still has cells to deal.
TEST(SweepService, TornFrameDropsTheHostAndTheSweepRecovers) {
    baseline_many_csv();
    int port = 0;
    const ServiceOptions svc = fast_svc(port);
    // One agent's second ack is torn in half and its connection severed.
    // The service must read the torn prefix as a dead host, never as a
    // frame; the agent parks the ack in its outbox, reconnects with a
    // fresh join, and replays it.
    const std::vector<std::string> grid = many_args();
    std::vector<AgentProc> agents;
    agents.emplace_back(spawn_agent(port, 1,
                                    "net-partial-write@net-send-ack:1",
                                    "", &grid, "10"));
    agents.emplace_back(spawn_agent(port, 1, "", "", &grid));

    SweepOptions opts;
    opts.csv_name = "svc_torn.csv";
    opts.manifest_name = "svc_torn.jsonl";
    const SweepSummary summary = run_service(ctx(), many_spec(), opts, svc);
    EXPECT_EQ(summary.cells_executed, 12);
    EXPECT_EQ(summary.cells_failed, 0);
    EXPECT_GE(summary.hosts_joined, 3);  // 2 hosts + at least one rejoin
    EXPECT_EQ(slurp(summary.csv_path), baseline_many_csv());
    for (auto& a : agents) EXPECT_TRUE(exited_ok(a.wait()));
}

TEST(SweepService, DisconnectedAgentReconnectsAndReplaysItsOutbox) {
    baseline_many_csv();
    int port = 0;
    const ServiceOptions svc = fast_svc(port);
    // One agent's connection severs as it sends its second ack, without a
    // byte written (a network blip): the ack is parked in its outbox and
    // replayed after the reconnect handshake. The service either records
    // it (cell still unrecorded) or dedups it — both keep the CSV bytes.
    const std::vector<std::string> grid = many_args();
    std::vector<AgentProc> agents;
    agents.emplace_back(spawn_agent(port, 1, "net-disconnect@net-send-ack:1",
                                    "", &grid, "10"));
    agents.emplace_back(spawn_agent(port, 1, "", "", &grid));

    SweepOptions opts;
    opts.csv_name = "svc_blip.csv";
    opts.manifest_name = "svc_blip.jsonl";
    const SweepSummary summary = run_service(ctx(), many_spec(), opts, svc);
    EXPECT_EQ(summary.cells_executed, 12);
    EXPECT_EQ(summary.cells_failed, 0);
    EXPECT_GE(summary.hosts_joined, 3);  // 2 hosts + at least one rejoin
    EXPECT_EQ(slurp(summary.csv_path), baseline_many_csv());
    for (auto& a : agents) EXPECT_TRUE(exited_ok(a.wait()));
}

TEST(SweepService, LateDuplicateAckIsDedupedNeverDoubleRecorded) {
    baseline_csv();
    int port = 0;
    ServiceOptions svc = fast_svc(port);
    svc.heartbeat_ms = 1000.0;
    svc.heartbeat_misses = 10;  // 10 s of tolerance — the stalled host must
                                // NOT be declared dead (slow-but-alive)
    svc.max_cell_retries = 4;   // lease expiries must never reach quarantine
    // One agent stalls 5 s inside sending its first ack. The stall is
    // longer than the 1.5 s lease, and the lease clock started at the deal,
    // before the worker even finished — so the service re-deals the cell to
    // the other host whatever the timing. Whichever copy lands second (the
    // stalled ack typically arrives during the shutdown grace) must be
    // counted and dropped, never appended twice.
    std::vector<AgentProc> agents;
    agents.emplace_back(
        spawn_agent(port, 1, "net-delay@net-send-ack:0", "5000"));
    agents.emplace_back(spawn_agent(port, 1));

    SweepOptions opts;
    opts.csv_name = "svc_dup.csv";
    opts.manifest_name = "svc_dup.jsonl";
    opts.cell_budget_ms = 1500.0;  // the lease
    const SweepSummary summary = run_service(ctx(), tiny_spec(), opts, svc);
    EXPECT_EQ(summary.cells_failed, 0);
    EXPECT_GE(summary.cell_retries, 1);     // a lease expired and re-dealt
    EXPECT_GE(summary.duplicate_acks, 1);   // the late copy was deduped
    EXPECT_EQ(slurp(summary.csv_path), baseline_csv());

    // The dedup claim, verified against the bytes on disk: every cell has
    // exactly one manifest record — the first durable append won.
    const std::string manifest_raw = slurp(summary.manifest_path);
    for (const SweepCell& cell : tiny_spec().expand())
        EXPECT_EQ(count_occurrences(manifest_raw,
                                    "\"cell\":\"" + cell.id() + "\""),
                  1)
            << cell.id();
    for (auto& a : agents) EXPECT_TRUE(exited_ok(a.wait()));
}

TEST(SweepService, CoordinatorResumeIsByteIdenticalAndCarriesMetrics) {
    baseline_csv();
    util::metrics::reset();  // a clean slate makes the totals checkable

    // Run 1: the coordinator stops after 2 cells (max_cells stands in for
    // a coordinator crash — the manifest is the only state that survives
    // either way) and shuts its agent down.
    SweepOptions opts;
    opts.csv_name = "svc_resume.csv";
    opts.manifest_name = "svc_resume.jsonl";
    opts.max_cells = 2;
    {
        int port = 0;
        const ServiceOptions svc = fast_svc(port);
        AgentProc agent(spawn_agent(port, 2));
        const SweepSummary partial =
            run_service(ctx(), tiny_spec(), opts, svc);
        EXPECT_EQ(partial.cells_executed, 2);
        EXPECT_EQ(partial.cells_pending, 2);
        EXPECT_TRUE(exited_ok(agent.wait()));
    }

    // Run 2: a fresh coordinator and a fresh agent resume from the
    // manifest. In production the restarted coordinator is a new process
    // with zeroed counters; reset() gives this in-process rerun the same
    // starting point so the carried-forward totals are exact.
    util::metrics::reset();
    int port = 0;
    const ServiceOptions svc = fast_svc(port);
    AgentProc agent(spawn_agent(port, 2));
    opts.max_cells = -1;
    opts.resume = true;
    const SweepSummary resumed = run_service(ctx(), tiny_spec(), opts, svc);
    EXPECT_EQ(resumed.cells_resumed, 2);
    EXPECT_EQ(resumed.cells_executed, 2);
    EXPECT_EQ(resumed.cells_pending, 0);
    EXPECT_EQ(slurp(resumed.csv_path), baseline_csv());
    EXPECT_TRUE(exited_ok(agent.wait()));

#if XS_TELEMETRY_ENABLED
    // Satellite: the final metrics record carries the totals across the
    // restart — run 1's counts folded into run 2's, coordinator-side
    // (cells.done) and host-side (cells.executed from the agents' worker
    // pools) alike.
    ASSERT_FALSE(resumed.metrics_json.empty());
    util::metrics::Snapshot snap;
    ASSERT_TRUE(util::metrics::from_json(resumed.metrics_json, snap));
    EXPECT_EQ(snap.counters.at("sweep.cells.done"), 4u);
    EXPECT_EQ(snap.counters.at("sweep.cells.executed"), 4u);
#endif
}

TEST(SweepService, MismatchedFingerprintJoinIsRejectedLoudly) {
    baseline_csv();
    int port = 0;
    const ServiceOptions svc = fast_svc(port);
    // The imposter runs a different grid (--sweep-repeats=4) under the SAME
    // experiment config — the config fingerprint alone cannot tell them
    // apart (grid axes are spec-only), so this is exactly the join the
    // grid-hash component exists to reject: fatally, since reconnecting
    // cannot fix a wrong grid, and before any of its foreign cell ids can
    // blend into this sweep's manifest.
    std::vector<std::string> wrong = base_args();
    for (std::string& a : wrong)
        if (a == "--sweep-repeats=2") a = "--sweep-repeats=4";
    AgentProc imposter(spawn_agent(port, 1, "", "", &wrong));
    AgentProc agent(spawn_agent(port, 2));

    SweepOptions opts;
    opts.csv_name = "svc_fp.csv";
    opts.manifest_name = "svc_fp.jsonl";
    const SweepSummary summary = run_service(ctx(), tiny_spec(), opts, svc);
    EXPECT_EQ(summary.cells_executed, 4);
    EXPECT_EQ(summary.hosts_joined, 1);  // the imposter never joined
    EXPECT_EQ(slurp(summary.csv_path), baseline_csv());
    EXPECT_TRUE(exited_ok(agent.wait()));
    const int st = imposter.wait();
    EXPECT_TRUE(WIFEXITED(st) && WEXITSTATUS(st) != 0);
}

TEST(SweepService, DrainDealsNothingAndStaysResumable) {
    baseline_csv();
    SweepOptions opts;
    opts.csv_name = "svc_drain.csv";
    opts.manifest_name = "svc_drain.jsonl";
    {
        // --drain from the start (the SIGTERM path flips the same switch):
        // deal nothing, wait out in-flight leases (none), exit resumable.
        int port = 0;
        ServiceOptions svc = fast_svc(port);
        svc.drain = true;
        const SweepSummary drained =
            run_service(ctx(), tiny_spec(), opts, svc);
        EXPECT_EQ(drained.cells_executed, 0);
        EXPECT_EQ(drained.cells_pending, 4);
    }

    int port = 0;
    const ServiceOptions svc = fast_svc(port);
    AgentProc agent(spawn_agent(port, 2));
    opts.resume = true;
    const SweepSummary summary = run_service(ctx(), tiny_spec(), opts, svc);
    EXPECT_EQ(summary.cells_executed, 4);
    EXPECT_EQ(summary.cells_pending, 0);
    EXPECT_EQ(slurp(summary.csv_path), baseline_csv());
    EXPECT_TRUE(exited_ok(agent.wait()));
}

}  // namespace
}  // namespace xs::sweep

// Own main: --worker invocations become sweep worker processes, --agent
// invocations become agent hosts (the children this suite forks), and
// everything else runs gtest.
int main(int argc, char** argv) {
    for (int i = 1; i < argc; ++i)
        if (std::string(argv[i]) == "--worker") {
            const xs::util::Flags flags(argc, argv);
            xs::core::ExperimentContext ctx(flags);
            const xs::sweep::SweepSpec spec =
                xs::sweep::parse_sweep_spec(flags);
            return xs::sweep::worker_main(
                ctx, spec, static_cast<int>(flags.get_int("wire-in", -1)),
                static_cast<int>(flags.get_int("wire-out", -1)));
        }
    for (int i = 1; i < argc; ++i)
        if (std::string(argv[i]).rfind("--agent=", 0) == 0) {
            const xs::util::Flags flags(argc, argv);
            xs::core::ExperimentContext ctx(flags);
            const xs::sweep::SweepSpec spec =
                xs::sweep::parse_sweep_spec(flags);
            xs::sweep::AgentOptions a;
            if (!xs::sweep::net::parse_hostport(
                    flags.get_string("agent", ""), a.host, a.port))
                return 2;
            a.workers = flags.get_int("workers", 1);
            a.worker_cmd = xs::sweep::worker_command_from_argv(argc, argv);
            a.reconnect_backoff_ms =
                flags.get_double("agent-backoff-ms", 250.0);
            a.max_reconnects = flags.get_int("agent-reconnects", -1);
            return xs::sweep::run_agent(ctx, spec, a);
        }
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
