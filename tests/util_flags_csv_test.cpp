#include "util/csv.h"
#include "util/flags.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace xs::util {
namespace {

Flags make_flags(std::vector<std::string> args) {
    static std::vector<std::string> storage;
    storage = std::move(args);
    storage.insert(storage.begin(), "prog");
    std::vector<char*> argv;
    for (auto& s : storage) argv.push_back(s.data());
    return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(Flags, EqualsForm) {
    const Flags f = make_flags({"--alpha=3", "--name=hello"});
    EXPECT_EQ(f.get_int("alpha", 0), 3);
    EXPECT_EQ(f.get_string("name", ""), "hello");
}

TEST(Flags, SpaceForm) {
    const Flags f = make_flags({"--alpha", "42"});
    EXPECT_EQ(f.get_int("alpha", 0), 42);
}

TEST(Flags, BareFlagIsTrue) {
    const Flags f = make_flags({"--verbose"});
    EXPECT_TRUE(f.get_bool("verbose", false));
}

TEST(Flags, DefaultsWhenAbsent) {
    const Flags f = make_flags({});
    EXPECT_EQ(f.get_int("missing", 9), 9);
    EXPECT_DOUBLE_EQ(f.get_double("missing", 1.5), 1.5);
    EXPECT_FALSE(f.get_bool("missing", false));
    EXPECT_EQ(f.get_string("missing", "d"), "d");
}

TEST(Flags, DoubleParsing) {
    const Flags f = make_flags({"--rate=0.125"});
    EXPECT_DOUBLE_EQ(f.get_double("rate", 0.0), 0.125);
}

TEST(Flags, IntList) {
    const Flags f = make_flags({"--sizes=16,32,64"});
    const auto v = f.get_int_list("sizes", {});
    ASSERT_EQ(v.size(), 3u);
    EXPECT_EQ(v[0], 16);
    EXPECT_EQ(v[1], 32);
    EXPECT_EQ(v[2], 64);
}

TEST(Flags, IntListDefault) {
    const Flags f = make_flags({});
    const auto v = f.get_int_list("sizes", {8});
    ASSERT_EQ(v.size(), 1u);
    EXPECT_EQ(v[0], 8);
}

TEST(Flags, Positional) {
    const Flags f = make_flags({"input.txt", "--x=1", "more"});
    ASSERT_EQ(f.positional().size(), 2u);
    EXPECT_EQ(f.positional()[0], "input.txt");
    EXPECT_EQ(f.positional()[1], "more");
}

TEST(Flags, BoolExplicitValues) {
    const Flags f = make_flags({"--a=true", "--b=false", "--c=1", "--d=no"});
    EXPECT_TRUE(f.get_bool("a", false));
    EXPECT_FALSE(f.get_bool("b", true));
    EXPECT_TRUE(f.get_bool("c", false));
    EXPECT_FALSE(f.get_bool("d", true));
}

TEST(Csv, WritesHeaderAndRows) {
    const std::string path = testing::TempDir() + "/xs_csv_test.csv";
    {
        CsvWriter csv(path, {"a", "b", "c"});
        csv.row(1, 2.5, "x");
        csv.row("q", 7, 8);
        EXPECT_TRUE(csv.ok());
    }
    std::ifstream is(path);
    std::string line;
    std::getline(is, line);
    EXPECT_EQ(line, "a,b,c");
    std::getline(is, line);
    EXPECT_EQ(line, "1,2.5,x");
    std::getline(is, line);
    EXPECT_EQ(line, "q,7,8");
    std::remove(path.c_str());
}

TEST(TextTable, AlignsColumns) {
    TextTable t({"col", "value"});
    t.add_row({"x", "1"});
    t.add_row({"longer", "22"});
    const std::string s = t.str();
    EXPECT_NE(s.find("col"), std::string::npos);
    EXPECT_NE(s.find("longer"), std::string::npos);
    // Header separator present.
    EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(TextTable, PadsShortRows) {
    TextTable t({"a", "b", "c"});
    t.add_row({"only"});
    EXPECT_NO_THROW(t.str());
}

TEST(Fmt, FixedPrecision) {
    EXPECT_EQ(fmt(3.14159, 2), "3.14");
    EXPECT_EQ(fmt(2.0, 1), "2.0");
    EXPECT_EQ(fmt(-0.5, 3), "-0.500");
}

}  // namespace
}  // namespace xs::util
