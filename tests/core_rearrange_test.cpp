#include "core/evaluator.h"
#include "core/rearrange.h"
#include "tensor/ops.h"
#include "xbar/degrade.h"
#include "xbar/mapper.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace xs::core {
namespace {

using tensor::Tensor;

TEST(ColumnScore, SqrtMuSigma) {
    // Column 0: |values| = {1, 3} -> µ = 2, σ = 1 -> score √2.
    Tensor m({2, 2});
    m.at(0, 0) = 1.0f;
    m.at(1, 0) = -3.0f;
    m.at(0, 1) = 2.0f;
    m.at(1, 1) = 2.0f;
    EXPECT_NEAR(column_score(m, 0), std::sqrt(2.0), 1e-9);
    // Column 1: µ = 2, σ = 0 -> score 0.
    EXPECT_NEAR(column_score(m, 1), 0.0, 1e-12);
}

TEST(Rearrange, PermIsValidPermutation) {
    util::Rng rng(1);
    Tensor m({8, 13});
    tensor::fill_normal(m, rng, 0.0f, 1.0f);
    for (const auto order : {RearrangeOrder::kAscending, RearrangeOrder::kCenterOut}) {
        const Rearrangement r = compute_rearrangement(m, order);
        std::set<std::int64_t> seen(r.perm.begin(), r.perm.end());
        EXPECT_EQ(seen.size(), 13u);
        EXPECT_EQ(*seen.begin(), 0);
        EXPECT_EQ(*seen.rbegin(), 12);
    }
}

TEST(Rearrange, AscendingSortsScores) {
    util::Rng rng(2);
    Tensor m({10, 7});
    tensor::fill_normal(m, rng, 0.0f, 1.0f);
    const Rearrangement r = compute_rearrangement(m, RearrangeOrder::kAscending);
    const Tensor p = apply_columns(m, r);
    double prev = -1.0;
    for (std::int64_t c = 0; c < 7; ++c) {
        const double s = column_score(p, c);
        EXPECT_GE(s, prev - 1e-12);
        prev = s;
    }
}

TEST(Rearrange, ApplyInvertRoundTrip) {
    util::Rng rng(3);
    Tensor m({6, 9});
    tensor::fill_normal(m, rng, 0.0f, 1.0f);
    for (const auto order : {RearrangeOrder::kAscending, RearrangeOrder::kCenterOut}) {
        const Rearrangement r = compute_rearrangement(m, order);
        const Tensor round = invert_columns(apply_columns(m, r), r);
        EXPECT_TRUE(tensor::allclose(round, m, 0.0f, 0.0f));
    }
}

TEST(Rearrange, CenterOutPutsLowScoresInMiddle) {
    // Columns with strictly increasing scores: 0 lowest ... 9 highest.
    Tensor m({4, 10}, 0.0f);
    for (std::int64_t c = 0; c < 10; ++c) {
        m.at(0, c) = static_cast<float>(c + 1);        // µ grows with c
        m.at(1, c) = static_cast<float>(2 * (c + 1));  // σ > 0
    }
    const Rearrangement r = compute_rearrangement(m, RearrangeOrder::kCenterOut);
    const Tensor p = apply_columns(m, r);
    // Scores at the centre must be below scores at the edges.
    const double centre = column_score(p, 4) + column_score(p, 5);
    const double edges = column_score(p, 0) + column_score(p, 9);
    EXPECT_LT(centre, edges);
}

TEST(Rearrange, GroupingLowersMeanNf) {
    // The paper's core claim for R: grouping low-conductance columns lowers
    // the average NF across tiles. Build a matrix whose even columns are
    // high-magnitude and odd columns low-magnitude; interleaved they share
    // every tile, sorted they separate into hot and cold tiles.
    const std::int64_t n = 16, cols = 32;
    util::Rng rng(4);
    Tensor m({n, cols});
    for (std::int64_t r = 0; r < n; ++r)
        for (std::int64_t c = 0; c < cols; ++c) {
            const bool hot = (c % 2) == 0;
            const double mag = hot ? rng.uniform(0.6, 1.0) : rng.uniform(0.01, 0.1);
            m.at(r, c) = static_cast<float>(rng.uniform() < 0.5 ? -mag : mag);
        }

    xbar::CrossbarConfig config;
    config.size = n;
    config.device.sigma_variation = 0.0;

    auto mean_nf = [&](const Tensor& matrix) {
        const xbar::ConductanceMapper mapper(config.device, 1.0);
        double nf_sum = 0.0;
        int tiles = 0;
        for (std::int64_t c0 = 0; c0 < cols; c0 += n) {
            Tensor sub({n, n});
            for (std::int64_t r = 0; r < n; ++r)
                for (std::int64_t c = 0; c < n; ++c)
                    sub.at(r, c) = matrix.at(r, c0 + c);
            Tensor gp, gn;
            mapper.to_differential(sub, gp, gn);
            nf_sum += xbar::degrade_tile(gp, config).nf;
            nf_sum += xbar::degrade_tile(gn, config).nf;
            tiles += 2;
        }
        return nf_sum / tiles;
    };

    const double nf_interleaved = mean_nf(m);
    const Rearrangement r = compute_rearrangement(m, RearrangeOrder::kAscending);
    const double nf_sorted = mean_nf(apply_columns(m, r));
    EXPECT_LT(nf_sorted, nf_interleaved);
}

TEST(Rearrange, RearrangedEvaluationPreservesLogicalOrder) {
    // With ideal crossbars (no parasitics/variation) R∘degrade∘R⁻¹ must be
    // numerically identity on the weights.
    util::Rng rng(5);
    Tensor m({24, 24});
    tensor::fill_normal(m, rng, 0.0f, 0.5f);

    EvalConfig config;
    config.xbar.size = 8;
    config.include_parasitics = false;
    config.include_variation = false;
    config.rearrange = true;

    DegradeStats stats;
    util::Rng rng2(6);
    // w_ref must cover the weight range or mapping clamps at G_MAX.
    const double w_ref = tensor::max_abs(m);
    const Tensor out = degrade_mac_matrix(m, config, w_ref, rng2, stats);
    EXPECT_TRUE(tensor::allclose(out, m, 2e-3f, 2e-2f))
        << "max diff " << tensor::max_abs_diff(out, m);
}

TEST(Rearrange, SingleColumnMatrix) {
    Tensor m({4, 1}, 1.0f);
    const Rearrangement r = compute_rearrangement(m, RearrangeOrder::kAscending);
    ASSERT_EQ(r.perm.size(), 1u);
    EXPECT_EQ(r.perm[0], 0);
    EXPECT_TRUE(tensor::allclose(apply_columns(m, r), m, 0.0f, 0.0f));
}

}  // namespace
}  // namespace xs::core
