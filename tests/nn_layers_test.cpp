#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/layers_basic.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/sequential.h"
#include "tensor/ops.h"

#include <gtest/gtest.h>

#include <cmath>

namespace xs::nn {
namespace {

using tensor::Tensor;

TEST(Conv2d, ForwardMatchesDirectConvolution) {
    util::Rng rng(1);
    Conv2d conv(2, 3, 3, 1, 1, rng, /*bias=*/true);
    Tensor x({1, 2, 5, 5});
    tensor::fill_normal(x, rng, 0.0f, 1.0f);
    const Tensor y = conv.forward(x, false);
    ASSERT_EQ(y.shape(), (tensor::Shape{1, 3, 5, 5}));

    // Direct reference at a few positions.
    const Tensor& w = conv.weight().value;
    for (const auto& [f, oi, oj] : {std::tuple{0L, 0L, 0L}, {1L, 2L, 3L}, {2L, 4L, 4L}}) {
        double acc = conv.bias().value[f];
        for (std::int64_t c = 0; c < 2; ++c)
            for (std::int64_t ki = 0; ki < 3; ++ki)
                for (std::int64_t kj = 0; kj < 3; ++kj) {
                    const std::int64_t ii = oi - 1 + ki, jj = oj - 1 + kj;
                    if (ii < 0 || ii >= 5 || jj < 0 || jj >= 5) continue;
                    acc += static_cast<double>(w.at(f, c, ki, kj)) *
                           x.at(0, c, ii, jj);
                }
        EXPECT_NEAR(y.at(0, f, oi, oj), acc, 1e-4);
    }
}

TEST(Conv2d, BatchIndependence) {
    // Each image in a batch must be processed independently.
    util::Rng rng(2);
    Conv2d conv(1, 2, 3, 1, 1, rng);
    Tensor x2({2, 1, 4, 4});
    tensor::fill_normal(x2, rng, 0.0f, 1.0f);
    const Tensor y2 = conv.forward(x2, false);

    Tensor x1({1, 1, 4, 4});
    for (std::int64_t i = 0; i < 16; ++i) x1[i] = x2[16 + i];
    const Tensor y1 = conv.forward(x1, false);
    for (std::int64_t i = 0; i < y1.numel(); ++i)
        EXPECT_FLOAT_EQ(y1[i], y2[y1.numel() + i]);
}

TEST(Linear, ForwardIsAffine) {
    util::Rng rng(3);
    Linear fc(4, 3, rng);
    Tensor x({2, 4});
    tensor::fill_normal(x, rng, 0.0f, 1.0f);
    const Tensor y = fc.forward(x, false);
    for (std::int64_t i = 0; i < 2; ++i)
        for (std::int64_t o = 0; o < 3; ++o) {
            double acc = fc.bias().value[o];
            for (std::int64_t j = 0; j < 4; ++j)
                acc += static_cast<double>(fc.weight().value.at(o, j)) * x.at(i, j);
            EXPECT_NEAR(y.at(i, o), acc, 1e-5);
        }
}

TEST(ReLU, ClampsNegatives) {
    ReLU relu;
    Tensor x({4});
    x[0] = -1.0f;
    x[1] = 0.0f;
    x[2] = 2.0f;
    x[3] = -0.5f;
    const Tensor y = relu.forward(x, true);
    EXPECT_FLOAT_EQ(y[0], 0.0f);
    EXPECT_FLOAT_EQ(y[1], 0.0f);
    EXPECT_FLOAT_EQ(y[2], 2.0f);
    EXPECT_FLOAT_EQ(y[3], 0.0f);
}

TEST(MaxPool2d, PicksMaxima) {
    MaxPool2d pool(2);
    Tensor x({1, 1, 4, 4});
    for (std::int64_t i = 0; i < 16; ++i) x[i] = static_cast<float>(i);
    const Tensor y = pool.forward(x, false);
    ASSERT_EQ(y.shape(), (tensor::Shape{1, 1, 2, 2}));
    EXPECT_FLOAT_EQ(y[0], 5.0f);
    EXPECT_FLOAT_EQ(y[1], 7.0f);
    EXPECT_FLOAT_EQ(y[2], 13.0f);
    EXPECT_FLOAT_EQ(y[3], 15.0f);
}

TEST(MaxPool2d, BackwardRoutesToArgmax) {
    MaxPool2d pool(2);
    Tensor x({1, 1, 2, 2});
    x[0] = 1.0f;
    x[1] = 4.0f;
    x[2] = 2.0f;
    x[3] = 3.0f;
    pool.forward(x, true);
    Tensor dy({1, 1, 1, 1}, 1.0f);
    const Tensor dx = pool.backward(dy);
    EXPECT_FLOAT_EQ(dx[0], 0.0f);
    EXPECT_FLOAT_EQ(dx[1], 1.0f);
    EXPECT_FLOAT_EQ(dx[2], 0.0f);
    EXPECT_FLOAT_EQ(dx[3], 0.0f);
}

TEST(AvgPool2d, Averages) {
    AvgPool2d pool(2);
    Tensor x({1, 1, 2, 2});
    x[0] = 1.0f;
    x[1] = 2.0f;
    x[2] = 3.0f;
    x[3] = 6.0f;
    const Tensor y = pool.forward(x, false);
    EXPECT_FLOAT_EQ(y[0], 3.0f);
}

TEST(BatchNorm2d, NormalizesBatchStatistics) {
    BatchNorm2d bn(2);
    util::Rng rng(5);
    Tensor x({8, 2, 4, 4});
    tensor::fill_normal(x, rng, 3.0f, 2.0f);
    const Tensor y = bn.forward(x, true);
    // Per-channel mean ≈ 0, var ≈ 1 after normalization (gamma=1, beta=0).
    for (std::int64_t c = 0; c < 2; ++c) {
        double sum = 0.0, sq = 0.0;
        std::int64_t count = 0;
        for (std::int64_t i = 0; i < 8; ++i)
            for (std::int64_t q = 0; q < 16; ++q) {
                const double v = y[(i * 2 + c) * 16 + q];
                sum += v;
                sq += v * v;
                ++count;
            }
        const double mean = sum / count;
        EXPECT_NEAR(mean, 0.0, 1e-3);
        EXPECT_NEAR(sq / count - mean * mean, 1.0, 1e-2);
    }
}

TEST(BatchNorm2d, InferenceUsesRunningStats) {
    BatchNorm2d bn(1);
    util::Rng rng(6);
    // Train forward a few times to populate running stats.
    for (int it = 0; it < 20; ++it) {
        Tensor x({4, 1, 2, 2});
        tensor::fill_normal(x, rng, 1.0f, 0.5f);
        bn.forward(x, true);
    }
    // In eval mode an input equal to the running mean maps near beta (0).
    Tensor probe({1, 1, 2, 2}, bn.running_mean()[0]);
    const Tensor y = bn.forward(probe, false);
    EXPECT_NEAR(y[0], 0.0f, 1e-2f);
}

TEST(Flatten, RoundTrip) {
    Flatten flat;
    Tensor x({2, 3, 4, 5});
    util::Rng rng(7);
    tensor::fill_normal(x, rng, 0.0f, 1.0f);
    const Tensor y = flat.forward(x, false);
    ASSERT_EQ(y.shape(), (tensor::Shape{2, 60}));
    const Tensor back = flat.backward(y);
    EXPECT_TRUE(tensor::allclose(back, x, 0.0f, 0.0f));
}

TEST(Dropout, InferenceIsIdentity) {
    util::Rng rng(8);
    Dropout drop(0.5f, rng);
    Tensor x({100});
    tensor::fill_normal(x, rng, 0.0f, 1.0f);
    const Tensor y = drop.forward(x, false);
    EXPECT_TRUE(tensor::allclose(y, x, 0.0f, 0.0f));
}

TEST(Dropout, TrainingPreservesExpectation) {
    util::Rng rng(9);
    Dropout drop(0.3f, rng);
    Tensor x({20000}, 1.0f);
    const Tensor y = drop.forward(x, true);
    EXPECT_NEAR(tensor::mean(y), 1.0, 0.05);
    // Kept entries are scaled by 1/(1-p).
    for (std::int64_t i = 0; i < 100; ++i)
        EXPECT_TRUE(y[i] == 0.0f || std::fabs(y[i] - 1.0f / 0.7f) < 1e-5f);
}

TEST(Softmax, RowsSumToOne) {
    util::Rng rng(10);
    Tensor logits({4, 7});
    tensor::fill_normal(logits, rng, 0.0f, 3.0f);
    const Tensor p = softmax(logits);
    for (std::int64_t i = 0; i < 4; ++i) {
        double s = 0.0;
        for (std::int64_t j = 0; j < 7; ++j) {
            EXPECT_GE(p.at(i, j), 0.0f);
            s += p.at(i, j);
        }
        EXPECT_NEAR(s, 1.0, 1e-5);
    }
}

TEST(Loss, CrossEntropyUniformBaseline) {
    Tensor logits({2, 10}, 0.0f);
    const LossResult r = softmax_cross_entropy(logits, {3, 7});
    EXPECT_NEAR(r.loss, std::log(10.0), 1e-5);
}

TEST(Loss, GradientSumsToZeroPerRow) {
    util::Rng rng(11);
    Tensor logits({3, 5});
    tensor::fill_normal(logits, rng, 0.0f, 2.0f);
    const LossResult r = softmax_cross_entropy(logits, {0, 2, 4});
    for (std::int64_t i = 0; i < 3; ++i) {
        double s = 0.0;
        for (std::int64_t j = 0; j < 5; ++j) s += r.grad.at(i, j);
        EXPECT_NEAR(s, 0.0, 1e-6);
    }
}

TEST(Loss, CountsCorrect) {
    Tensor logits({2, 3}, 0.0f);
    logits.at(0, 1) = 5.0f;  // predicts 1
    logits.at(1, 0) = 5.0f;  // predicts 0
    const LossResult r = softmax_cross_entropy(logits, {1, 2});
    EXPECT_EQ(r.correct, 1);
}

TEST(Sequential, NamesAndLookup) {
    util::Rng rng(12);
    Sequential model;
    model.add(std::make_unique<Conv2d>(1, 2, 3, 1, 1, rng), "conv1");
    model.add(std::make_unique<ReLU>());
    EXPECT_NE(model.find("conv1"), nullptr);
    EXPECT_EQ(model.find("nope"), nullptr);
    EXPECT_EQ(model.layer(0).name(), "conv1");
    EXPECT_EQ(model.size(), 2u);
}

TEST(Sequential, DuplicateNameThrows) {
    util::Rng rng(13);
    Sequential model;
    model.add(std::make_unique<ReLU>(), "r");
    EXPECT_THROW(model.add(std::make_unique<ReLU>(), "r"), std::invalid_argument);
}

TEST(Sequential, NamedParamsQualified) {
    util::Rng rng(14);
    Sequential model;
    model.add(std::make_unique<Conv2d>(1, 2, 3, 1, 1, rng, false), "conv1");
    model.add(std::make_unique<Linear>(8, 4, rng), "fc1");
    const auto named = model.named_params();
    ASSERT_EQ(named.size(), 3u);
    EXPECT_EQ(named[0].qualified_name, "conv1.weight");
    EXPECT_EQ(named[1].qualified_name, "fc1.weight");
    EXPECT_EQ(named[2].qualified_name, "fc1.bias");
}

}  // namespace
}  // namespace xs::nn
