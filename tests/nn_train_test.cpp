#include "nn/conv2d.h"
#include "nn/layers_basic.h"
#include "nn/linear.h"
#include "nn/model_io.h"
#include "nn/trainer.h"
#include "nn/vgg.h"
#include "tensor/ops.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>

namespace xs::nn {
namespace {

using tensor::Tensor;

// A linearly separable 2-class toy problem on 8-dim inputs.
Dataset toy_dataset(std::int64_t n, std::uint64_t seed) {
    util::Rng rng(seed);
    Dataset d;
    d.num_classes = 2;
    d.images = Tensor({n, 8});
    d.labels.resize(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) {
        const std::int64_t label = static_cast<std::int64_t>(rng.uniform_index(2));
        d.labels[static_cast<std::size_t>(i)] = label;
        for (std::int64_t j = 0; j < 8; ++j)
            d.images[i * 8 + j] = static_cast<float>(
                rng.normal(label == 0 ? -1.0 : 1.0, 0.6));
    }
    return d;
}

Sequential toy_model(std::uint64_t seed) {
    util::Rng rng(seed);
    Sequential m;
    m.add(std::make_unique<Linear>(8, 16, rng), "fc1");
    m.add(std::make_unique<ReLU>(), "relu1");
    m.add(std::make_unique<Linear>(16, 2, rng), "fc2");
    return m;
}

// Small helper so tests read naturally while using the library's train().
std::vector<EpochStats> train_(Sequential& model, const Dataset& tr,
                               const Dataset& te, const TrainConfig& config,
                               const StepHook& hook = {}) {
    return train(model, tr, &te, config, hook);
}

TEST(Trainer, AdamLearnsToySeparation) {
    Sequential model = toy_model(1);
    const Dataset train = toy_dataset(256, 2), test = toy_dataset(128, 3);
    TrainConfig config;
    config.epochs = 8;
    config.batch_size = 16;
    const auto history = train_(model, train, test, config);
    EXPECT_GT(history.back().test_acc, 90.0);
    EXPECT_LT(history.back().train_loss, history.front().train_loss);
}

TEST(Trainer, SgdLearnsToySeparation) {
    Sequential model = toy_model(4);
    const Dataset train_data = toy_dataset(256, 5), test = toy_dataset(128, 6);
    TrainConfig config;
    config.epochs = 8;
    config.batch_size = 16;
    config.optimizer = "sgd";
    config.lr = 0.05f;
    const auto history = train_(model, train_data, test, config);
    EXPECT_GT(history.back().test_acc, 95.0);
}

TEST(Trainer, HookRunsEveryStepAndAtInit) {
    Sequential model = toy_model(7);
    const Dataset train_data = toy_dataset(64, 8);
    TrainConfig config;
    config.epochs = 2;
    config.batch_size = 16;
    int calls = 0;
    train(model, train_data, nullptr, config, [&calls](Sequential&) { ++calls; });
    // 64/16 = 4 steps × 2 epochs + 1 initial application.
    EXPECT_EQ(calls, 9);
}

TEST(Trainer, DeterministicGivenSeed) {
    Sequential m1 = toy_model(10), m2 = toy_model(10);
    const Dataset train_data = toy_dataset(128, 11);
    TrainConfig config;
    config.epochs = 2;
    train(m1, train_data, nullptr, config);
    train(m2, train_data, nullptr, config);
    const auto p1 = m1.params(), p2 = m2.params();
    for (std::size_t i = 0; i < p1.size(); ++i)
        EXPECT_TRUE(tensor::allclose(p1[i]->value, p2[i]->value, 0.0f, 0.0f));
}

TEST(Trainer, EvaluateCountsTop1) {
    Sequential model = toy_model(12);
    const Dataset test = toy_dataset(64, 13);
    const double acc = evaluate(model, test);
    EXPECT_GE(acc, 0.0);
    EXPECT_LE(acc, 100.0);
}

TEST(Vgg, BuildsAndRunsForward) {
    VggConfig config;
    config.width = 0.0625;  // minimal channels
    util::Rng rng(14);
    Sequential model = build_vgg(config, rng);
    Tensor x({2, 3, 32, 32});
    tensor::fill_normal(x, rng, 0.0f, 1.0f);
    const Tensor y = model.forward(x, false);
    EXPECT_EQ(y.shape(), (tensor::Shape{2, 10}));
}

TEST(Vgg, Vgg16HasThirteenConvs) {
    VggConfig config;
    config.variant = "vgg16";
    config.width = 0.0625;
    EXPECT_EQ(vgg_conv_names(config).size(), 13u);
    EXPECT_EQ(vgg_channels(config).size(), 13u);
}

TEST(Vgg, Vgg11HasEightConvs) {
    VggConfig config;
    EXPECT_EQ(vgg_conv_names(config).size(), 8u);
}

TEST(Vgg, WidthScalesChannels) {
    VggConfig half;
    half.width = 0.5;
    half.min_channels = 1;
    const auto c = vgg_channels(half);
    EXPECT_EQ(c.front(), 32);  // 64 × 0.5
    EXPECT_EQ(c.back(), 256);  // 512 × 0.5
}

TEST(Vgg, MinChannelsFloor) {
    VggConfig tiny;
    tiny.width = 0.01;
    tiny.min_channels = 8;
    for (const auto c : vgg_channels(tiny)) EXPECT_GE(c, 8);
}

TEST(Vgg, UnknownVariantThrows) {
    VggConfig bad;
    bad.variant = "vgg19";
    util::Rng rng(15);
    EXPECT_THROW(build_vgg(bad, rng), std::invalid_argument);
}

TEST(ModelIo, SaveLoadRoundTrip) {
    VggConfig config;
    config.width = 0.0625;
    util::Rng rng(16);
    Sequential a = build_vgg(config, rng);

    const std::string path = testing::TempDir() + "/xs_model_test.bin";
    save_model(a, path);

    util::Rng rng2(17);  // different init
    Sequential b = build_vgg(config, rng2);
    ASSERT_TRUE(load_model(b, path));

    Tensor x({1, 3, 32, 32});
    tensor::fill_normal(x, rng, 0.0f, 1.0f);
    const Tensor ya = a.forward(x, false);
    const Tensor yb = b.forward(x, false);
    EXPECT_TRUE(tensor::allclose(ya, yb, 1e-6f, 1e-6f));
    std::remove(path.c_str());
}

TEST(ModelIo, MissingFileReturnsFalse) {
    VggConfig config;
    config.width = 0.0625;
    util::Rng rng(18);
    Sequential m = build_vgg(config, rng);
    EXPECT_FALSE(load_model(m, "/nonexistent/path/model.bin"));
}

TEST(Optimizer, SgdMomentumAccumulates) {
    Param p("w", Tensor({1}, 0.0f));
    p.grad[0] = 1.0f;
    Sgd sgd({&p}, 0.1f, 0.9f, 0.0f);
    sgd.step();
    EXPECT_NEAR(p.value[0], -0.1f, 1e-6f);
    p.grad[0] = 1.0f;
    sgd.step();  // velocity = 0.9·1 + 1 = 1.9
    EXPECT_NEAR(p.value[0], -0.1f - 0.19f, 1e-6f);
}

TEST(Optimizer, AdamStepsTowardMinimum) {
    // Minimize (w-3)² with gradient 2(w-3).
    Param p("w", Tensor({1}, 0.0f));
    Adam adam({&p}, 0.1f);
    for (int i = 0; i < 200; ++i) {
        p.grad[0] = 2.0f * (p.value[0] - 3.0f);
        adam.step();
    }
    EXPECT_NEAR(p.value[0], 3.0f, 0.1f);
}

TEST(Optimizer, WeightDecayShrinksWeights) {
    Param p("w", Tensor({1}, 1.0f));
    p.grad[0] = 0.0f;
    Sgd sgd({&p}, 0.1f, 0.0f, 0.5f);
    sgd.step();
    EXPECT_LT(p.value[0], 1.0f);
}

}  // namespace
}  // namespace xs::nn
