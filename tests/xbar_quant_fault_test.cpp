#include "tensor/ops.h"
#include "xbar/faults.h"
#include "xbar/quantize.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace xs::xbar {
namespace {

using tensor::Tensor;

TEST(Quantize, EndpointsArePreserved) {
    DeviceConfig dev;
    Tensor g({2});
    g[0] = static_cast<float>(dev.g_min());
    g[1] = static_cast<float>(dev.g_max());
    quantize_conductance(g, dev, 16);
    EXPECT_FLOAT_EQ(g[0], static_cast<float>(dev.g_min()));
    EXPECT_FLOAT_EQ(g[1], static_cast<float>(dev.g_max()));
}

TEST(Quantize, ProducesAtMostLevelsDistinctValues) {
    DeviceConfig dev;
    util::Rng rng(1);
    Tensor g({1000});
    for (std::int64_t i = 0; i < g.numel(); ++i)
        g[i] = static_cast<float>(rng.uniform(dev.g_min(), dev.g_max()));
    quantize_conductance(g, dev, 8);
    std::set<float> values(g.data(), g.data() + g.numel());
    EXPECT_LE(values.size(), 8u);
    EXPECT_GE(values.size(), 6u);  // the draw should hit most levels
}

TEST(Quantize, IsIdempotent) {
    DeviceConfig dev;
    util::Rng rng(2);
    Tensor g({100});
    for (std::int64_t i = 0; i < g.numel(); ++i)
        g[i] = static_cast<float>(rng.uniform(dev.g_min(), dev.g_max()));
    quantize_conductance(g, dev, 16);
    Tensor again = g;
    quantize_conductance(again, dev, 16);
    EXPECT_TRUE(tensor::allclose(again, g, 0.0f, 0.0f));
}

TEST(Quantize, ErrorBoundedByHalfStep) {
    DeviceConfig dev;
    util::Rng rng(3);
    const std::int64_t levels = 32;
    const double step = conductance_step(dev, levels);
    Tensor g({500});
    for (std::int64_t i = 0; i < g.numel(); ++i)
        g[i] = static_cast<float>(rng.uniform(dev.g_min(), dev.g_max()));
    const Tensor before = g;
    quantize_conductance(g, dev, levels);
    for (std::int64_t i = 0; i < g.numel(); ++i)
        EXPECT_LE(std::fabs(g[i] - before[i]), step / 2.0 + 1e-12);
}

TEST(Quantize, ClampsOutOfRange) {
    DeviceConfig dev;
    Tensor g({2});
    g[0] = 0.0f;
    g[1] = 1.0f;  // way above g_max
    quantize_conductance(g, dev, 4);
    EXPECT_FLOAT_EQ(g[0], static_cast<float>(dev.g_min()));
    EXPECT_FLOAT_EQ(g[1], static_cast<float>(dev.g_max()));
}

TEST(Quantize, TooFewLevelsThrows) {
    DeviceConfig dev;
    Tensor g({4}, 1e-5f);
    EXPECT_THROW(quantize_conductance(g, dev, 1), std::invalid_argument);
}

TEST(Quantize, MonotonePreserving) {
    DeviceConfig dev;
    Tensor g({3});
    g[0] = 6e-6f;
    g[1] = 20e-6f;
    g[2] = 45e-6f;
    quantize_conductance(g, dev, 16);
    EXPECT_LE(g[0], g[1]);
    EXPECT_LE(g[1], g[2]);
}

TEST(Faults, NoFaultsIsNoop) {
    DeviceConfig dev;
    util::Rng rng(4);
    Tensor g({64}, 20e-6f);
    const Tensor before = g;
    FaultConfig faults;  // both rates zero
    EXPECT_EQ(apply_stuck_faults(g, dev, faults, rng), 0);
    EXPECT_TRUE(tensor::allclose(g, before, 0.0f, 0.0f));
}

TEST(Faults, RatesApproximatelyRespected) {
    DeviceConfig dev;
    util::Rng rng(5);
    Tensor g({100, 100}, 20e-6f);
    FaultConfig faults;
    faults.p_stuck_min = 0.05;
    faults.p_stuck_max = 0.02;
    const std::int64_t faulted = apply_stuck_faults(g, dev, faults, rng);
    EXPECT_NEAR(static_cast<double>(faulted) / 1e4, 0.07, 0.01);

    std::int64_t at_min = 0, at_max = 0;
    for (std::int64_t i = 0; i < g.numel(); ++i) {
        if (g[i] == static_cast<float>(dev.g_min())) ++at_min;
        if (g[i] == static_cast<float>(dev.g_max())) ++at_max;
    }
    EXPECT_NEAR(static_cast<double>(at_min) / 1e4, 0.05, 0.01);
    EXPECT_NEAR(static_cast<double>(at_max) / 1e4, 0.02, 0.01);
}

TEST(Faults, DeterministicPerRngState) {
    DeviceConfig dev;
    FaultConfig faults;
    faults.p_stuck_min = 0.1;
    Tensor a({200}, 20e-6f), b({200}, 20e-6f);
    util::Rng r1(6), r2(6);
    apply_stuck_faults(a, dev, faults, r1);
    apply_stuck_faults(b, dev, faults, r2);
    EXPECT_TRUE(tensor::allclose(a, b, 0.0f, 0.0f));
}

TEST(Faults, InvalidRatesThrow) {
    DeviceConfig dev;
    util::Rng rng(7);
    Tensor g({4}, 1e-5f);
    FaultConfig faults;
    faults.p_stuck_min = 0.8;
    faults.p_stuck_max = 0.5;  // sum > 1
    EXPECT_THROW(apply_stuck_faults(g, dev, faults, rng), std::invalid_argument);
}

TEST(Faults, AnyFlag) {
    FaultConfig f;
    EXPECT_FALSE(f.any());
    f.p_stuck_max = 0.01;
    EXPECT_TRUE(f.any());
}

}  // namespace
}  // namespace xs::xbar
