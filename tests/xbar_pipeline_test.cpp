// The stage pipeline and backend seam (xbar/pipeline.h, xbar/backend.h):
//
//  * a golden test pinning the circuit backend through the stage pipeline
//    bit-identical to the pre-refactor evaluator's straight-line tile loop
//    (replicated verbatim below), for the full stage combination and the
//    XCS-packed tiling;
//  * fast-vs-circuit agreement (G′ and NF tolerances) and the fast
//    backend's cache determinism;
//  * the ideal backend's exact pass-through;
//  * a counting-operator-new proof that the pipeline steady state performs
//    no heap allocation for the circuit and fast backends.
#include "core/evaluator.h"
#include "map/tiling.h"
#include "tensor/ops.h"
#include "xbar/backend.h"
#include "xbar/mapper.h"
#include "xbar/pipeline.h"
#include "xbar/quantize.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

namespace {

std::atomic<long> g_alloc_count{0};

}  // namespace

void* operator new(std::size_t size) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size)) return p;
    throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace xs::xbar {
namespace {

using tensor::Tensor;

Tensor random_g(std::int64_t n, std::uint64_t seed, const DeviceConfig& dev) {
    util::Rng rng(seed);
    Tensor g({n, n});
    for (std::int64_t i = 0; i < g.numel(); ++i)
        g[i] = static_cast<float>(rng.uniform(dev.g_min(), dev.g_max()));
    return g;
}

TEST(Backend, NamesRoundTrip) {
    for (const auto kind : {BackendKind::kCircuit, BackendKind::kFast,
                            BackendKind::kIdeal})
        EXPECT_EQ(backend_from_name(backend_name(kind)), kind);
    EXPECT_THROW(backend_from_name("frobnicate"), std::exception);
}

TEST(Backend, IdealIsExactPassThrough) {
    CrossbarConfig config;
    config.size = 16;
    const IdealBackend backend(config);
    const Tensor g = random_g(16, 1, config.device);
    DegradeWorkspace ws;
    TileDegradeResult out;
    backend.degrade(g, ws, out);
    EXPECT_TRUE(tensor::allclose(out.g_eff, g, 0.0f, 0.0f));
    EXPECT_EQ(out.nf, 0.0);
    EXPECT_TRUE(out.converged);
}

TEST(Backend, FastTracksCircuitPerTile) {
    CrossbarConfig config;
    config.size = 32;
    const CircuitBackend circuit(config, /*warm_start=*/false);
    const FastBackend fast(config);
    DegradeWorkspace ws;
    TileDegradeResult exact, approx;
    for (const std::uint64_t seed : {2u, 3u, 4u}) {
        const Tensor g = random_g(32, seed, config.device);
        circuit.degrade(g, ws, exact);
        fast.degrade(g, ws, approx);
        ASSERT_TRUE(exact.converged);
        EXPECT_TRUE(approx.converged);
        // The surrogate's NF must sit near the exact solve's (both are a few
        // percent in this regime), and the folded conductances must agree to
        // a few percent of G_MAX.
        EXPECT_NEAR(approx.nf, exact.nf, 0.25 * exact.nf + 1e-4)
            << "seed " << seed;
        EXPECT_TRUE(tensor::allclose(
            approx.g_eff, exact.g_eff,
            /*atol=*/static_cast<float>(0.02 * config.device.g_max()),
            /*rtol=*/0.05f))
            << "seed " << seed << " max diff "
            << tensor::max_abs_diff(approx.g_eff, exact.g_eff);
    }
    // Three same-composition tiles share one calibration bucket.
    EXPECT_LE(fast.calibrations(), 2);
}

TEST(Backend, FastCalibrationDependsOnlyOnBucket) {
    CrossbarConfig config;
    config.size = 16;
    // Two different tiles whose means sit safely inside the same bucket:
    // constant mid-bucket level plus small zero-mean jitter.
    const double lo = config.device.g_min() * 0.5;
    const double step = (config.device.g_max() * 2.0 - lo) / 16.0;
    const double center = lo + 4.5 * step;
    util::Rng rng(5);
    Tensor g_a({16, 16}), g_b({16, 16});
    for (std::int64_t i = 0; i < g_a.numel(); ++i) {
        g_a[i] = static_cast<float>(center * (1.0 + 0.05 * rng.normal()));
        g_b[i] = static_cast<float>(center * (1.0 + 0.05 * rng.normal()));
    }
    DegradeWorkspace ws;
    TileDegradeResult a, b;
    const FastBackend fast(config, /*buckets=*/16);  // matches `step` above
    fast.degrade(g_a, ws, a);
    fast.degrade(g_b, ws, b);
    // The implied α = G′/G must be the same field for both tiles — the
    // calibration is a function of the bucket center, never of whichever
    // tile (or thread) happened to populate the cache.
    for (std::int64_t i = 0; i < g_a.numel(); ++i) {
        const double alpha_a = static_cast<double>(a.g_eff[i]) / g_a[i];
        const double alpha_b = static_cast<double>(b.g_eff[i]) / g_b[i];
        ASSERT_NEAR(alpha_a, alpha_b, 1e-5) << "entry " << i;
    }
    // Two identically-configured backends share one calibration cache.
    const FastBackend twin(config, /*buckets=*/16);
    EXPECT_EQ(twin.calibrations(), fast.calibrations());
}

// ---- golden test: the pre-refactor evaluator tile loop, verbatim ----

// The exact per-tile stage ladder core::degrade_mac_matrix hard-coded before
// the pipeline refactor (evaluator.cpp @ PR 4), including the double-
// precision column compensation. Any bit drift between this and the staged
// pipeline is a regression.
void reference_compensate(Tensor& g_eff, const Tensor& g_before,
                          std::int64_t n) {
    std::vector<double> col_before(static_cast<std::size_t>(n), 0.0);
    std::vector<double> col_after(static_cast<std::size_t>(n), 0.0);
    const float* gb = g_before.data();
    float* ge = g_eff.data();
    for (std::int64_t i = 0; i < n; ++i) {
        const float* gbi = gb + i * n;
        const float* gei = ge + i * n;
        for (std::int64_t j = 0; j < n; ++j) {
            col_before[static_cast<std::size_t>(j)] += gbi[j];
            col_after[static_cast<std::size_t>(j)] += gei[j];
        }
    }
    for (std::int64_t j = 0; j < n; ++j) {
        const double after = col_after[static_cast<std::size_t>(j)];
        col_after[static_cast<std::size_t>(j)] =
            after <= 0.0 ? 1.0
                         : col_before[static_cast<std::size_t>(j)] / after;
    }
    for (std::int64_t i = 0; i < n; ++i) {
        float* gei = ge + i * n;
        for (std::int64_t j = 0; j < n; ++j)
            gei[j] *= static_cast<float>(col_after[static_cast<std::size_t>(j)]);
    }
}

Tensor reference_degrade(const Tensor& matrix, const map::Tiling& tiling,
                         const core::EvalConfig& config, double w_ref,
                         util::Rng& rng) {
    const std::int64_t n = config.xbar.size;
    const ConductanceMapper mapper(config.xbar.device, w_ref);
    const CircuitSolver solver(config.xbar);

    Tensor degraded = matrix;
    std::vector<util::Rng> tile_rngs;
    for (std::size_t t = 0; t < tiling.tiles.size(); ++t)
        tile_rngs.push_back(rng.split(static_cast<std::uint64_t>(t) + 1));

    DegradeWorkspace ws;
    TileDegradeResult pos, neg;
    Tensor sub, g_pos, g_neg, tile_w;
    for (std::size_t t = 0; t < tiling.tiles.size(); ++t) {
        const map::Tile& tile = tiling.tiles[t];
        map::extract_tile_into(matrix, tile, n, sub);
        mapper.to_differential(sub, g_pos, g_neg);
        if (config.conductance_levels >= 2) {
            quantize_conductance(g_pos, config.xbar.device,
                                 config.conductance_levels);
            quantize_conductance(g_neg, config.xbar.device,
                                 config.conductance_levels);
        }
        if (config.include_variation) {
            apply_variation(g_pos, config.xbar.device, tile_rngs[t]);
            apply_variation(g_neg, config.xbar.device, tile_rngs[t]);
        }
        if (config.faults.any()) {
            apply_stuck_faults(g_pos, config.xbar.device, config.faults,
                               tile_rngs[t]);
            apply_stuck_faults(g_neg, config.xbar.device, config.faults,
                               tile_rngs[t]);
        }
        if (config.include_parasitics) {
            ws.solve.invalidate();  // config.warm_start_solves = false
            degrade_tile(g_pos, solver, ws, pos);
            ws.solve.invalidate();
            degrade_tile(g_neg, solver, ws, neg);
            if (config.compensate_columns) {
                reference_compensate(pos.g_eff, g_pos, n);
                reference_compensate(neg.g_eff, g_neg, n);
            }
            mapper.from_differential_into(pos.g_eff, neg.g_eff, tile_w);
        } else {
            mapper.from_differential_into(g_pos, g_neg, tile_w);
        }
        map::scatter_tile(degraded, tile, tile_w);
    }
    return degraded;
}

TEST(PipelineGolden, CircuitBackendBitIdenticalToPreRefactorLoop) {
    util::Rng rng(11);
    Tensor m({40, 24});
    tensor::fill_normal(m, rng, 0.0f, 0.4f);

    core::EvalConfig config;
    config.xbar.size = 16;
    config.warm_start_solves = false;  // partition-independent, exact
    config.conductance_levels = 33;
    config.faults.p_stuck_min = 0.02;
    config.faults.p_stuck_max = 0.01;
    config.compensate_columns = true;

    core::DegradeStats stats;
    util::Rng vr1(42), vr2(42);
    const Tensor got = core::degrade_mac_matrix(m, config, 1.6, vr1, stats);
    const map::Tiling tiling = map::tile_dense(40, 24, 16);
    const Tensor want = reference_degrade(m, tiling, config, 1.6, vr2);
    EXPECT_TRUE(tensor::allclose(got, want, 0.0f, 0.0f))
        << "max diff " << tensor::max_abs_diff(got, want);
    EXPECT_EQ(stats.tiles, tiling.count());
}

TEST(PipelineGolden, XcsTilingBitIdenticalToPreRefactorLoop) {
    util::Rng rng(12);
    Tensor m({32, 16});
    tensor::fill_normal(m, rng, 0.0f, 0.4f);
    for (std::int64_t r = 0; r < 16; ++r) m.at(r, 2) = 0.0f;  // zero segment

    core::EvalConfig config;
    config.xbar.size = 8;
    config.method = prune::Method::kXbarColumn;
    config.warm_start_solves = false;

    core::DegradeStats stats;
    util::Rng vr1(7), vr2(7);
    const Tensor got = core::degrade_mac_matrix(m, config, 1.6, vr1, stats);
    const map::Tiling tiling = map::tile_xcs(m, 8);
    const Tensor want = reference_degrade(m, tiling, config, 1.6, vr2);
    EXPECT_TRUE(tensor::allclose(got, want, 0.0f, 0.0f))
        << "max diff " << tensor::max_abs_diff(got, want);
}

// ---- zero-allocation steady state ----

TEST(PipelineAllocation, CircuitSteadyStateAllocatesNothing) {
    PipelineSpec spec;
    spec.xbar.size = 32;
    spec.faults.p_stuck_min = 0.01;
    spec.compensate_columns = true;
    const TilePipeline pipeline = build_tile_pipeline(spec);
    EXPECT_EQ(pipeline.describe(),
              "variation|faults|parasitics[circuit]|compensate");

    Tensor pos, neg;
    util::Rng rng(8);
    TileStageContext ctx;
    const ConductanceMapper mapper(spec.xbar.device, 1.0);
    Tensor w({32, 32});
    tensor::fill_normal(w, rng, 0.0f, 0.3f);
    // Warm-up provisions every buffer (differential pair, G′, workspace,
    // column sums).
    mapper.to_differential(w, pos, neg);
    ctx.begin_tile(pos, neg, rng);
    pipeline.run(ctx);

    const long before = g_alloc_count.load();
    for (int rep = 0; rep < 10; ++rep) {
        mapper.to_differential(w, pos, neg);
        ctx.begin_tile(pos, neg, rng);
        pipeline.run(ctx);
    }
    EXPECT_EQ(g_alloc_count.load(), before);
    EXPECT_TRUE(ctx.converged);
    EXPECT_GT(ctx.nf, 0.0);
}

TEST(PipelineAllocation, FastSteadyStateAllocatesNothing) {
    PipelineSpec spec;
    spec.xbar.size = 32;
    spec.include_variation = false;  // fixed tile mean → fixed bucket
    spec.backend = BackendKind::kFast;
    const TilePipeline pipeline = build_tile_pipeline(spec);
    EXPECT_EQ(pipeline.describe(), "parasitics[fast]");

    Tensor pos, neg;
    util::Rng rng(9);
    TileStageContext ctx;
    const ConductanceMapper mapper(spec.xbar.device, 1.0);
    Tensor w({32, 32});
    tensor::fill_normal(w, rng, 0.0f, 0.3f);
    mapper.to_differential(w, pos, neg);
    ctx.begin_tile(pos, neg, rng);
    pipeline.run(ctx);  // warm-up: calibrates the bucket, grows buffers

    const long before = g_alloc_count.load();
    for (int rep = 0; rep < 10; ++rep) {
        mapper.to_differential(w, pos, neg);
        ctx.begin_tile(pos, neg, rng);
        pipeline.run(ctx);
    }
    EXPECT_EQ(g_alloc_count.load(), before);
    EXPECT_TRUE(ctx.converged);
    EXPECT_GT(ctx.nf, 0.0);
}

// ---- matrix level: fast and ideal through the evaluator ----

TEST(PipelineBackends, IdealBackendMatchesParasiticFreeConfig) {
    util::Rng rng(13);
    Tensor m({24, 24});
    tensor::fill_normal(m, rng, 0.0f, 0.4f);

    core::EvalConfig ideal_backend;
    ideal_backend.xbar.size = 16;
    ideal_backend.backend = BackendKind::kIdeal;
    core::EvalConfig no_parasitics;
    no_parasitics.xbar.size = 16;
    no_parasitics.include_parasitics = false;

    core::DegradeStats s1, s2;
    util::Rng r1(3), r2(3);
    const Tensor a = core::degrade_mac_matrix(m, ideal_backend, 1.6, r1, s1);
    const Tensor b = core::degrade_mac_matrix(m, no_parasitics, 1.6, r2, s2);
    EXPECT_TRUE(tensor::allclose(a, b, 0.0f, 0.0f));
    EXPECT_EQ(s1.nf_sum, 0.0);
}

TEST(PipelineBackends, FastBackendTracksCircuitOnMacMatrix) {
    util::Rng rng(14);
    Tensor m({64, 48});
    tensor::fill_normal(m, rng, 0.0f, 0.15f);

    core::EvalConfig circuit;
    circuit.xbar.size = 32;
    circuit.warm_start_solves = false;
    core::EvalConfig fast = circuit;
    fast.backend = BackendKind::kFast;

    core::DegradeStats sc, sf;
    util::Rng r1(5), r2(5);
    const Tensor wc = core::degrade_mac_matrix(m, circuit, 0.5, r1, sc);
    const Tensor wf = core::degrade_mac_matrix(m, fast, 0.5, r2, sf);
    // Same seeds → same variation draws; the gap is pure surrogate error.
    EXPECT_NEAR(sf.nf_mean(), sc.nf_mean(), 0.25 * sc.nf_mean() + 1e-4);
    EXPECT_TRUE(tensor::allclose(wf, wc, /*atol=*/0.03f, /*rtol=*/0.1f))
        << "max diff " << tensor::max_abs_diff(wf, wc);
    EXPECT_EQ(sf.unconverged, 0);
}

}  // namespace
}  // namespace xs::xbar
