// Golden equivalence suite for the optimized iterative solver: the
// workspace/warm-start/SOR fast path must reproduce the dense MNA reference
// within tight tolerance on random conductance tiles, including stuck-fault
// and high-parasitic configurations, so the performance rewrite cannot
// silently change the numerics. Also pins down the `converged` reporting.
#include "tensor/ops.h"
#include "xbar/config.h"
#include "xbar/faults.h"
#include "xbar/solver.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace xs::xbar {
namespace {

using tensor::Tensor;

CrossbarConfig config_of(std::int64_t size, double rd, double rwr, double rwc,
                         double rs) {
    CrossbarConfig c;
    c.size = size;
    c.parasitics.r_driver = rd;
    c.parasitics.r_wire_row = rwr;
    c.parasitics.r_wire_col = rwc;
    c.parasitics.r_sense = rs;
    return c;
}

Tensor random_g(std::int64_t n, std::uint64_t seed, const DeviceConfig& dev) {
    util::Rng rng(seed);
    Tensor g({n, n});
    for (std::int64_t i = 0; i < g.numel(); ++i)
        g[i] = static_cast<float>(rng.uniform(dev.g_min(), dev.g_max()));
    return g;
}

void expect_matches_dense(const CircuitSolver& solver, const Tensor& g,
                          const std::vector<double>& v, SolveWorkspace& ws,
                          const std::string& label) {
    const std::int64_t n = solver.config().size;
    ASSERT_TRUE(solver.solve(g, v.data(), ws)) << label << ": not converged";
    const SolveResult dense = solver.solve_dense(g, v);
    for (std::int64_t j = 0; j < n; ++j) {
        const double ref = dense.currents[static_cast<std::size_t>(j)];
        EXPECT_NEAR(ws.currents[static_cast<std::size_t>(j)], ref,
                    std::fabs(ref) * 1e-6 + 1e-15)
            << label << ": column " << j;
    }
    for (std::int64_t i = 0; i < n; ++i)
        for (std::int64_t j = 0; j < n; ++j) {
            EXPECT_NEAR(ws.vr[static_cast<std::size_t>(i * n + j)],
                        dense.v_row.at(i, j), 1e-6)
                << label << ": v_row(" << i << "," << j << ")";
            EXPECT_NEAR(ws.vc[static_cast<std::size_t>(i * n + j)],
                        dense.v_col.at(i, j), 1e-6)
                << label << ": v_col(" << i << "," << j << ")";
        }
}

TEST(SolverEquivalence, WorkspaceMatchesDenseAcrossSizes) {
    SolveWorkspace ws;
    for (const std::int64_t n : {2, 4, 8, 12}) {
        for (const std::uint64_t seed : {11ull, 22ull, 33ull}) {
            const CrossbarConfig c = config_of(n, 60, 2, 2, 60);
            const Tensor g = random_g(n, seed, c.device);
            util::Rng rng(seed + 99);
            std::vector<double> v(static_cast<std::size_t>(n));
            for (auto& vi : v) vi = rng.uniform(0.0, 0.3);
            const CircuitSolver solver(c);
            // The workspace is reused (and warm-started) across all cases.
            expect_matches_dense(solver, g, v, ws,
                                 "n=" + std::to_string(n) +
                                     " seed=" + std::to_string(seed));
        }
    }
}

TEST(SolverEquivalence, HighParasiticConfigs) {
    SolveWorkspace ws;
    // Strong IR drop: 10 Ω wire segments and 200 Ω terminations.
    const CrossbarConfig c = config_of(8, 200, 10, 10, 200);
    const CircuitSolver solver(c);
    for (const std::uint64_t seed : {5ull, 6ull}) {
        const Tensor g = random_g(8, seed, c.device);
        const std::vector<double> v(8, 0.25);
        expect_matches_dense(solver, g, v, ws, "high-parasitic seed=" +
                                                   std::to_string(seed));
    }
}

TEST(SolverEquivalence, StuckFaultTiles) {
    SolveWorkspace ws;
    const CrossbarConfig c = config_of(8, 60, 2, 2, 60);
    const CircuitSolver solver(c);
    FaultConfig faults;
    faults.p_stuck_min = 0.1;
    faults.p_stuck_max = 0.1;
    for (const std::uint64_t seed : {7ull, 8ull}) {
        Tensor g = random_g(8, seed, c.device);
        util::Rng frng(seed * 31);
        apply_stuck_faults(g, c.device, faults, frng);
        const std::vector<double> v(8, 0.25);
        expect_matches_dense(solver, g, v, ws,
                             "faulted seed=" + std::to_string(seed));
    }
}

TEST(SolverEquivalence, SorRelaxationMatchesDense) {
    SolveWorkspace ws;
    const CrossbarConfig c = config_of(8, 60, 2, 2, 60);
    CircuitSolver solver(c);
    solver.set_relaxation(1.3);
    const Tensor g = random_g(8, 17, c.device);
    const std::vector<double> v(8, 0.25);
    expect_matches_dense(solver, g, v, ws, "sor");
}

TEST(SolverEquivalence, WarmStartReproducesColdResult) {
    const CrossbarConfig c = config_of(16, 60, 2, 2, 60);
    const CircuitSolver solver(c);
    const Tensor g_a = random_g(16, 41, c.device);
    const Tensor g_b = random_g(16, 42, c.device);
    const std::vector<double> v(16, 0.25);

    SolveWorkspace cold;
    ASSERT_TRUE(solver.solve(g_b, v.data(), cold));
    const std::vector<double> cold_currents = cold.currents;
    const int cold_sweeps = cold.iterations;

    // Warm path: solve a different tile first, then g_b from its voltages.
    SolveWorkspace warm;
    ASSERT_TRUE(solver.solve(g_a, v.data(), warm));
    ASSERT_TRUE(solver.solve(g_b, v.data(), warm));
    for (std::size_t j = 0; j < cold_currents.size(); ++j)
        EXPECT_NEAR(warm.currents[j], cold_currents[j],
                    std::fabs(cold_currents[j]) * 1e-8 + 1e-15);
    // Warm starting must not take more sweeps than the cold start.
    EXPECT_LE(warm.iterations, cold_sweeps);
}

TEST(SolverEquivalence, LegacySolveReportsConvergence) {
    const CrossbarConfig c = config_of(8, 60, 2, 2, 60);
    const CircuitSolver solver(c);
    const Tensor g = random_g(8, 3, c.device);
    const SolveResult sol = solver.solve(g, std::vector<double>(8, 0.25));
    EXPECT_TRUE(sol.converged);
    EXPECT_LT(sol.max_delta, solver.tolerance());
}

TEST(SolverEquivalence, ExhaustedSweepsSurfaceAsNotConverged) {
    const CrossbarConfig c = config_of(16, 60, 2, 2, 60);
    CircuitSolver solver(c);
    solver.set_max_sweeps(1);
    const Tensor g = random_g(16, 4, c.device);
    const SolveResult sol = solver.solve(g, std::vector<double>(16, 0.25));
    EXPECT_FALSE(sol.converged);
    EXPECT_EQ(sol.iterations, 1);
    EXPECT_GE(sol.max_delta, solver.tolerance());

    SolveWorkspace ws;
    EXPECT_FALSE(solver.solve(g, std::vector<double>(16, 0.25).data(), ws));
    EXPECT_FALSE(ws.converged);
}

}  // namespace
}  // namespace xs::xbar
