#include "tensor/ops.h"
#include "xbar/config.h"
#include "xbar/solver.h"

#include <gtest/gtest.h>

#include <cmath>

namespace xs::xbar {
namespace {

using tensor::Tensor;

CrossbarConfig config_of(std::int64_t size, double rd, double rwr, double rwc,
                         double rs) {
    CrossbarConfig c;
    c.size = size;
    c.parasitics.r_driver = rd;
    c.parasitics.r_wire_row = rwr;
    c.parasitics.r_wire_col = rwc;
    c.parasitics.r_sense = rs;
    return c;
}

Tensor random_g(std::int64_t n, std::uint64_t seed, const DeviceConfig& dev) {
    util::Rng rng(seed);
    Tensor g({n, n});
    for (std::int64_t i = 0; i < g.numel(); ++i)
        g[i] = static_cast<float>(rng.uniform(dev.g_min(), dev.g_max()));
    return g;
}

TEST(IdealCurrents, MatchesDotProduct) {
    const CrossbarConfig c = config_of(4, 100, 2, 2, 100);
    Tensor g({4, 4}, 10e-6f);
    g.at(1, 2) = 40e-6f;
    const std::vector<double> v = {0.1, 0.2, 0.3, 0.4};
    const CircuitSolver solver(c);
    const auto currents = solver.ideal_currents(g, v);
    // Column 2 has one larger device on row 1.
    const double expected2 = 10e-6 * (0.1 + 0.3 + 0.4) + 40e-6 * 0.2;
    EXPECT_NEAR(currents[2], expected2, 1e-12);
    const double expected0 = 10e-6 * (0.1 + 0.2 + 0.3 + 0.4);
    EXPECT_NEAR(currents[0], expected0, 1e-12);
}

TEST(Solver, NearZeroParasiticsGiveIdealCurrents) {
    const CrossbarConfig c = config_of(8, 0.0, 0.0, 0.0, 0.0);
    const Tensor g = random_g(8, 1, c.device);
    const std::vector<double> v(8, 0.25);
    const CircuitSolver solver(c);
    const auto sol = solver.solve(g, v);
    const auto ideal = solver.ideal_currents(g, v);
    for (std::size_t j = 0; j < 8; ++j)
        EXPECT_NEAR(sol.currents[j], ideal[j], ideal[j] * 1e-3);
}

TEST(Solver, NonIdealCurrentsAreReduced) {
    const CrossbarConfig c = config_of(16, 100, 2, 2, 100);
    const Tensor g = random_g(16, 2, c.device);
    const std::vector<double> v(16, 0.25);
    const CircuitSolver solver(c);
    const auto sol = solver.solve(g, v);
    const auto ideal = solver.ideal_currents(g, v);
    for (std::size_t j = 0; j < 16; ++j) {
        EXPECT_LT(sol.currents[j], ideal[j]);
        EXPECT_GT(sol.currents[j], 0.0);
    }
}

class SolverVsDense
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(SolverVsDense, LineRelaxationMatchesDenseMna) {
    const auto [size, seed] = GetParam();
    const CrossbarConfig c = config_of(size, 60, 2, 2, 60);
    const Tensor g = random_g(size, seed, c.device);
    util::Rng rng(seed + 99);
    std::vector<double> v(static_cast<std::size_t>(size));
    for (auto& vi : v) vi = rng.uniform(0.0, 0.3);

    const CircuitSolver solver(c);
    const auto fast = solver.solve(g, v);
    const auto dense = solver.solve_dense(g, v);
    for (std::size_t j = 0; j < static_cast<std::size_t>(size); ++j)
        EXPECT_NEAR(fast.currents[j], dense.currents[j],
                    std::fabs(dense.currents[j]) * 1e-6 + 1e-15)
            << "column " << j;
    // Node voltages agree too.
    EXPECT_LT(tensor::max_abs_diff(fast.v_row, dense.v_row), 1e-6f);
    EXPECT_LT(tensor::max_abs_diff(fast.v_col, dense.v_col), 1e-6f);
}

INSTANTIATE_TEST_SUITE_P(
    SizesSeeds, SolverVsDense,
    ::testing::Combine(::testing::Values(2, 4, 8),
                       ::testing::Values(11ull, 22ull, 33ull)));

TEST(Solver, KclHoldsAtSenseNode) {
    // Sum of device currents into a column equals the sensed current.
    const CrossbarConfig c = config_of(8, 60, 2, 2, 60);
    const Tensor g = random_g(8, 5, c.device);
    const std::vector<double> v(8, 0.25);
    const CircuitSolver solver(c);
    const auto sol = solver.solve(g, v);
    for (std::int64_t j = 0; j < 8; ++j) {
        double device_sum = 0.0;
        for (std::int64_t i = 0; i < 8; ++i)
            device_sum += static_cast<double>(g.at(i, j)) *
                          (static_cast<double>(sol.v_row.at(i, j)) -
                           sol.v_col.at(i, j));
        EXPECT_NEAR(device_sum, sol.currents[static_cast<std::size_t>(j)],
                    std::fabs(sol.currents[static_cast<std::size_t>(j)]) * 1e-5);
    }
}

TEST(Solver, VoltagesBoundedByInput) {
    const CrossbarConfig c = config_of(16, 100, 5, 5, 100);
    const Tensor g = random_g(16, 6, c.device);
    const std::vector<double> v(16, 0.25);
    const CircuitSolver solver(c);
    const auto sol = solver.solve(g, v);
    for (std::int64_t i = 0; i < 16; ++i)
        for (std::int64_t j = 0; j < 16; ++j) {
            EXPECT_LE(sol.v_row.at(i, j), 0.25f + 1e-6f);
            EXPECT_GE(sol.v_row.at(i, j), -1e-6f);
            EXPECT_GE(sol.v_col.at(i, j), -1e-6f);
            EXPECT_LE(sol.v_col.at(i, j), 0.25f + 1e-6f);
        }
}

TEST(Solver, RowVoltageDecreasesAlongWire) {
    // With uniform devices, the row voltage must fall monotonically with
    // distance from the driver.
    const CrossbarConfig c = config_of(16, 100, 5, 5, 100);
    Tensor g({16, 16}, 30e-6f);
    const std::vector<double> v(16, 0.25);
    const CircuitSolver solver(c);
    const auto sol = solver.solve(g, v);
    for (std::int64_t j = 1; j < 16; ++j)
        EXPECT_LE(sol.v_row.at(0, j), sol.v_row.at(0, j - 1) + 1e-9f);
}

TEST(Solver, ColumnVoltageIncreasesTowardSense) {
    const CrossbarConfig c = config_of(16, 100, 5, 5, 100);
    Tensor g({16, 16}, 30e-6f);
    const std::vector<double> v(16, 0.25);
    const CircuitSolver solver(c);
    const auto sol = solver.solve(g, v);
    // Current flows downward; potential drops toward ground at the bottom,
    // so V_col must decrease from top to bottom? No: the sense node is the
    // lowest potential; current flows from device nodes down. Check
    // monotone decrease toward the sense end.
    for (std::int64_t i = 1; i < 16; ++i)
        EXPECT_LE(sol.v_col.at(i, 0), sol.v_col.at(i - 1, 0) + 1e-9f);
}

TEST(Solver, ZeroInputGivesZeroOutput) {
    const CrossbarConfig c = config_of(8, 60, 2, 2, 60);
    const Tensor g = random_g(8, 7, c.device);
    const std::vector<double> v(8, 0.0);
    const CircuitSolver solver(c);
    const auto sol = solver.solve(g, v);
    for (const auto i : sol.currents) EXPECT_NEAR(i, 0.0, 1e-15);
}

TEST(Solver, LinearInInputVoltage) {
    const CrossbarConfig c = config_of(8, 60, 2, 2, 60);
    const Tensor g = random_g(8, 8, c.device);
    const CircuitSolver solver(c);
    const auto sol1 = solver.solve(g, std::vector<double>(8, 0.1));
    const auto sol2 = solver.solve(g, std::vector<double>(8, 0.2));
    for (std::size_t j = 0; j < 8; ++j)
        EXPECT_NEAR(sol2.currents[j], 2.0 * sol1.currents[j],
                    std::fabs(sol1.currents[j]) * 1e-6);
}

TEST(Solver, ShapeMismatchThrows) {
    const CrossbarConfig c = config_of(8, 60, 2, 2, 60);
    const CircuitSolver solver(c);
    Tensor g({4, 4}, 1e-5f);
    EXPECT_THROW(solver.solve(g, std::vector<double>(8, 0.1)),
                 std::invalid_argument);
    Tensor g8({8, 8}, 1e-5f);
    EXPECT_THROW(solver.solve(g8, std::vector<double>(4, 0.1)),
                 std::invalid_argument);
}

TEST(Config, DeviceDerivedQuantities) {
    DeviceConfig d;
    EXPECT_NEAR(d.g_max(), 50e-6, 1e-12);
    EXPECT_NEAR(d.g_min(), 5e-6, 1e-12);
    EXPECT_NEAR(d.on_off_ratio(), 10.0, 1e-12);
}

TEST(Config, IdealParasiticsAreZero) {
    const ParasiticsConfig p = ParasiticsConfig::ideal();
    EXPECT_EQ(p.r_driver, 0.0);
    EXPECT_EQ(p.r_wire_row, 0.0);
    EXPECT_EQ(p.r_wire_col, 0.0);
    EXPECT_EQ(p.r_sense, 0.0);
}

}  // namespace
}  // namespace xs::xbar
