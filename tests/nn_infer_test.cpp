// Inference-engine pins (DESIGN.md §6):
//  * steady-state forwards allocate nothing (counting operator new);
//  * the folded/fused path matches the reference layer-by-layer forward;
//  * MAC-matrix overrides match inject_matrix semantics;
//  * evaluate_on_crossbars stays deterministic under the overlapped
//    repeat pipeline.
#include "core/evaluator.h"
#include "map/matrix_view.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/infer.h"
#include "nn/layers_basic.h"
#include "nn/linear.h"
#include "nn/trainer.h"
#include "nn/vgg.h"
#include "tensor/ops.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>

namespace {

// Per-thread allocation counter. Worker threads grow thread-local GEMM pack
// buffers on first contact with a layer, and the pool's part→thread claim
// order is nondeterministic — so a global count would be flaky by design.
// Every engine-owned allocation (arenas, shapes, scratch growth, dispatch)
// happens on the calling thread, which is exactly what this pins. With a
// single-core pool everything runs inline and the pin covers the whole path.
thread_local long t_alloc_count = 0;

}  // namespace

void* operator new(std::size_t size) {
    ++t_alloc_count;
    if (void* p = std::malloc(size)) return p;
    throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace xs::nn {
namespace {

using tensor::Tensor;

// Covers every fused/specialized step kind: conv+BN+ReLU (fused triple),
// conv with bias and no BN, max/avg pooling, dropout (skipped), flatten,
// and a fused linear classifier.
Sequential small_model(util::Rng& rng) {
    Sequential model;
    model.add(std::make_unique<Conv2d>(3, 8, 3, 1, 1, rng, /*bias=*/false),
              "conv1");
    model.add(std::make_unique<BatchNorm2d>(8), "bn1");
    model.add(std::make_unique<ReLU>(), "relu1");
    model.add(std::make_unique<MaxPool2d>(2), "pool1");
    model.add(std::make_unique<Conv2d>(8, 12, 3, 1, 1, rng, /*bias=*/true),
              "conv2");
    model.add(std::make_unique<ReLU>(), "relu2");
    model.add(std::make_unique<AvgPool2d>(2), "pool2");
    model.add(std::make_unique<Dropout>(0.5f, rng), "drop1");
    model.add(std::make_unique<Flatten>(), "flatten");
    model.add(std::make_unique<Linear>(12 * 4 * 4, 10, rng), "fc1");
    return model;
}

// Populate BN running stats so folding has non-trivial statistics.
void warm_batchnorm(Sequential& model, util::Rng& rng,
                    std::int64_t spatial = 16) {
    for (int it = 0; it < 4; ++it) {
        Tensor x({4, 3, spatial, spatial});
        tensor::fill_normal(x, rng, 0.5f, 1.5f);
        model.forward(x, /*training=*/true);
    }
}

TEST(InferenceEngine, SteadyStateAllocatesNothing) {
    util::Rng rng(1);
    Sequential model = small_model(rng);
    warm_batchnorm(model, rng);
    InferenceEngine engine(model);

    Tensor x({8, 3, 16, 16});
    tensor::fill_normal(x, rng, 0.0f, 1.0f);
    // Warm-up: grows arenas, shapes, im2col scratch, and pack buffers.
    engine.forward(x);
    engine.forward(x);

    const long before = t_alloc_count;
    for (int rep = 0; rep < 5; ++rep) engine.forward(x);
    EXPECT_EQ(t_alloc_count, before);
}

TEST(InferenceEngine, FoldedForwardMatchesReference) {
    util::Rng rng(2);
    Sequential model = small_model(rng);
    warm_batchnorm(model, rng);
    InferenceEngine engine(model);

    Tensor x({5, 3, 16, 16});
    tensor::fill_normal(x, rng, 0.0f, 1.0f);
    const Tensor reference = model.forward(x, /*training=*/false);
    const Tensor& fused = engine.forward(x);
    ASSERT_EQ(fused.shape(), reference.shape());
    EXPECT_TRUE(tensor::allclose(fused, reference, 1e-4f, 1e-3f))
        << "max diff " << tensor::max_abs_diff(fused, reference);
}

TEST(InferenceEngine, VggForwardMatchesReference) {
    VggConfig vc;
    vc.width = 0.0625;
    vc.classifier_dropout = 0.3f;  // exercises the dropout skip
    util::Rng rng(3);
    Sequential model = build_vgg(vc, rng);
    warm_batchnorm(model, rng, /*spatial=*/32);
    InferenceEngine engine(model);

    Tensor x({4, 3, 32, 32});
    tensor::fill_normal(x, rng, 0.0f, 1.0f);
    const Tensor reference = model.forward(x, /*training=*/false);
    const Tensor& fused = engine.forward(x);
    ASSERT_EQ(fused.shape(), reference.shape());
    EXPECT_TRUE(tensor::allclose(fused, reference, 1e-4f, 1e-3f))
        << "max diff " << tensor::max_abs_diff(fused, reference);
}

// A layer type the engine has no specialized step for: must route through
// the generic Layer::forward fallback with identical results.
class ScaleLayer : public Layer {
public:
    Tensor forward(const Tensor& x, bool /*training*/) override {
        return tensor::scale(x, 2.0f);
    }
    Tensor backward(const Tensor& dy) override { return dy; }
    std::string type() const override { return "Scale"; }
};

TEST(InferenceEngine, GenericFallbackMatchesReference) {
    util::Rng rng(4);
    Sequential model;
    model.add(std::make_unique<Conv2d>(2, 4, 3, 1, 1, rng), "conv1");
    model.add(std::make_unique<ScaleLayer>(), "scale1");
    model.add(std::make_unique<ReLU>(), "relu1");
    model.add(std::make_unique<Flatten>(), "flatten");
    model.add(std::make_unique<Linear>(4 * 8 * 8, 3, rng), "fc1");
    InferenceEngine engine(model);

    Tensor x({2, 2, 8, 8});
    tensor::fill_normal(x, rng, 0.0f, 1.0f);
    const Tensor reference = model.forward(x, /*training=*/false);
    const Tensor& fused = engine.forward(x);
    ASSERT_EQ(fused.shape(), reference.shape());
    EXPECT_TRUE(tensor::allclose(fused, reference, 1e-4f, 1e-3f));
}

TEST(InferenceEngine, MacOverridesMatchInjectedWeights) {
    util::Rng rng(5);
    Sequential model = small_model(rng);
    warm_batchnorm(model, rng);

    Tensor x({3, 3, 16, 16});
    tensor::fill_normal(x, rng, 0.0f, 1.0f);

    // Perturbed MAC matrices standing in for degraded crossbar weights W′.
    const auto layers = map::mappable_layers(model);
    std::vector<Tensor> originals, degraded;
    for (nn::Layer* l : layers) {
        originals.push_back(map::extract_matrix(*l));
        Tensor d = originals.back();
        for (std::int64_t i = 0; i < d.numel(); ++i)
            d[i] *= 0.9f + 0.2f * static_cast<float>(rng.uniform());
        degraded.push_back(std::move(d));
    }

    // Path A (seed semantics): inject W′ into the model, forward, restore.
    for (std::size_t i = 0; i < layers.size(); ++i)
        map::inject_matrix(*layers[i], degraded[i]);
    InferenceEngine injected(model);
    const Tensor via_inject = injected.forward(x);
    for (std::size_t i = 0; i < layers.size(); ++i)
        map::inject_matrix(*layers[i], originals[i]);

    // Path B: the model keeps its weights; W′ arrives as refresh overrides.
    InferenceEngine engine(model);
    std::vector<const Tensor*> overrides;
    for (const Tensor& d : degraded) overrides.push_back(&d);
    ASSERT_EQ(engine.mappable_count(), overrides.size());
    engine.refresh(overrides);
    const Tensor& via_override = engine.forward(x);

    EXPECT_TRUE(tensor::allclose(via_override, via_inject, 1e-5f, 1e-4f))
        << "max diff " << tensor::max_abs_diff(via_override, via_inject);

    // And refresh() without overrides must return to the clean weights.
    engine.refresh();
    const Tensor reference = model.forward(x, /*training=*/false);
    EXPECT_TRUE(tensor::allclose(engine.forward(x), reference, 1e-4f, 1e-3f));
}

// Lane r of forward_batched must be bit-identical to refresh()ing the
// engine with lane r's MAC overrides and running a scalar forward — the
// contract the repeat-batched evaluator relies on for byte-identical CSVs.
TEST(InferenceEngine, BatchedForwardMatchesScalarPerInstanceBitExact) {
    util::Rng rng(7);
    Sequential model = small_model(rng);
    warm_batchnorm(model, rng);
    InferenceEngine engine(model);

    Tensor x({6, 3, 16, 16});
    tensor::fill_normal(x, rng, 0.0f, 1.0f);

    const auto layers = map::mappable_layers(model);
    const std::size_t lanes = 3;
    std::vector<std::vector<Tensor>> degraded(lanes);
    for (std::size_t r = 0; r < lanes; ++r)
        for (nn::Layer* l : layers) {
            Tensor d = map::extract_matrix(*l);
            for (std::int64_t i = 0; i < d.numel(); ++i)
                d[i] *= 0.85f + 0.3f * static_cast<float>(rng.uniform());
            degraded[r].push_back(std::move(d));
        }

    std::vector<CompiledInstance> insts(lanes);
    std::vector<const CompiledInstance*> ptrs;
    for (std::size_t r = 0; r < lanes; ++r) {
        std::vector<const Tensor*> ov;
        for (const Tensor& d : degraded[r]) ov.push_back(&d);
        engine.compile_instance(ov, insts[r]);
        ptrs.push_back(&insts[r]);
    }

    const Tensor& stacked =
        engine.forward_batched(x.data(), x.shape(), ptrs.data(), lanes);
    ASSERT_EQ(stacked.dim(0), static_cast<std::int64_t>(lanes) * x.dim(0));
    // Copy out: the next scalar forward reuses engine arenas.
    const Tensor got = stacked;

    const std::int64_t block = got.numel() / static_cast<std::int64_t>(lanes);
    for (std::size_t r = 0; r < lanes; ++r) {
        std::vector<const Tensor*> ov;
        for (const Tensor& d : degraded[r]) ov.push_back(&d);
        engine.refresh(ov);
        const Tensor& ref = engine.forward(x);
        ASSERT_EQ(ref.numel(), block);
        const float* gp = got.data() + static_cast<std::int64_t>(r) * block;
        for (std::int64_t i = 0; i < block; ++i)
            ASSERT_EQ(gp[i], ref[i]) << "lane " << r << " element " << i;
    }
}

TEST(InferenceEngine, BatchedForwardGenericFallbackMatchesScalar) {
    util::Rng rng(8);
    Sequential model;
    model.add(std::make_unique<Conv2d>(2, 4, 3, 1, 1, rng), "conv1");
    model.add(std::make_unique<ScaleLayer>(), "scale1");
    model.add(std::make_unique<ReLU>(), "relu1");
    model.add(std::make_unique<Flatten>(), "flatten");
    model.add(std::make_unique<Linear>(4 * 8 * 8, 3, rng), "fc1");
    InferenceEngine engine(model);

    Tensor x({2, 2, 8, 8});
    tensor::fill_normal(x, rng, 0.0f, 1.0f);

    CompiledInstance inst;
    engine.compile_instance({}, inst);
    const CompiledInstance* ptrs[2] = {&inst, &inst};
    const Tensor got = engine.forward_batched(x.data(), x.shape(), ptrs, 2);
    const Tensor& ref = engine.forward(x);
    ASSERT_EQ(got.numel(), 2 * ref.numel());
    for (std::int64_t i = 0; i < ref.numel(); ++i) {
        ASSERT_EQ(got[i], ref[i]) << "lane 0 element " << i;
        ASSERT_EQ(got[ref.numel() + i], ref[i]) << "lane 1 element " << i;
    }
}

TEST(InferenceEngine, BatchedForwardSteadyStateAllocatesNothing) {
    util::Rng rng(9);
    Sequential model = small_model(rng);
    warm_batchnorm(model, rng);
    InferenceEngine engine(model);

    Tensor x({8, 3, 16, 16});
    tensor::fill_normal(x, rng, 0.0f, 1.0f);

    std::vector<CompiledInstance> insts(4);
    std::vector<const CompiledInstance*> ptrs;
    for (auto& inst : insts) {
        engine.compile_instance({}, inst);
        ptrs.push_back(&inst);
    }

    // Warm-up grows the batch arenas and pack scratch.
    engine.forward_batched(x.data(), x.shape(), ptrs.data(), ptrs.size());
    engine.forward_batched(x.data(), x.shape(), ptrs.data(), ptrs.size());

    const long before = t_alloc_count;
    for (int rep = 0; rep < 5; ++rep)
        engine.forward_batched(x.data(), x.shape(), ptrs.data(), ptrs.size());
    // Recompiling an already-shaped instance must also be allocation-free.
    for (std::size_t slot = 0; slot < engine.mappable_count(); ++slot)
        engine.compile_instance_slot(slot, nullptr, insts[0]);
    EXPECT_EQ(t_alloc_count, before);
}

TEST(InferenceEngine, OverlappedRepeatsAreDeterministic) {
    VggConfig vc;
    vc.width = 0.0625;
    util::Rng rng(6);
    Sequential model = build_vgg(vc, rng);

    Dataset test;
    test.num_classes = 10;
    test.images = Tensor({12, 3, 32, 32});
    tensor::fill_normal(test.images, rng, 0.0f, 1.0f);
    test.labels.resize(12);
    for (std::size_t i = 0; i < 12; ++i)
        test.labels[i] = static_cast<std::int64_t>(i % 10);

    core::EvalConfig config;
    config.xbar.size = 32;
    config.repeats = 3;
    const core::EvalResult a = core::evaluate_on_crossbars(model, test, config);
    const core::EvalResult b = core::evaluate_on_crossbars(model, test, config);
    EXPECT_EQ(a.accuracy, b.accuracy);
    EXPECT_EQ(a.nf_mean, b.nf_mean);
    EXPECT_EQ(a.total_tiles, b.total_tiles);
}

}  // namespace
}  // namespace xs::nn
