#include "util/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

namespace xs::util {
namespace {

TEST(Parallel, CoversRangeExactlyOnce) {
    std::vector<std::atomic<int>> hits(1000);
    parallel_for(0, 1000, [&](std::size_t i) { hits[i]++; });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Parallel, EmptyRangeIsNoop) {
    std::atomic<int> count{0};
    parallel_for(5, 5, [&](std::size_t) { count++; });
    EXPECT_EQ(count.load(), 0);
}

TEST(Parallel, SingleElement) {
    std::atomic<int> count{0};
    parallel_for(3, 4, [&](std::size_t i) {
        EXPECT_EQ(i, 3u);
        count++;
    });
    EXPECT_EQ(count.load(), 1);
}

TEST(Parallel, ChunksPartitionRange) {
    std::vector<std::atomic<int>> hits(777);
    parallel_for_chunks(0, 777, [&](std::size_t lo, std::size_t hi) {
        EXPECT_LE(lo, hi);
        for (std::size_t i = lo; i < hi; ++i) hits[i]++;
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Parallel, NestedCallsRunInline) {
    std::atomic<int> total{0};
    parallel_for(0, 4, [&](std::size_t) {
        // A nested dispatch must not deadlock; it runs inline.
        parallel_for(0, 10, [&](std::size_t) { total++; });
    });
    EXPECT_EQ(total.load(), 40);
}

TEST(Parallel, RepeatedDispatches) {
    for (int round = 0; round < 50; ++round) {
        std::atomic<long> sum{0};
        parallel_for(0, 100, [&](std::size_t i) {
            sum += static_cast<long>(i);
        });
        EXPECT_EQ(sum.load(), 4950);
    }
}

TEST(Parallel, WorkerCountPositive) {
    EXPECT_GE(worker_count(), 1u);
}

TEST(Parallel, WorkersPartitionRangeWithValidSlots) {
    std::vector<std::atomic<int>> hits(512);
    std::atomic<int> bad_slots{0};
    parallel_for_workers(0, 512, [&](std::size_t worker, std::size_t lo,
                                     std::size_t hi) {
        if (worker >= worker_count()) bad_slots++;
        EXPECT_LE(lo, hi);
        for (std::size_t i = lo; i < hi; ++i) hits[i]++;
    });
    EXPECT_EQ(bad_slots.load(), 0);
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Parallel, WorkerSlotsAreNeverUsedConcurrently) {
    // Per-slot "in use" flags: a second concurrent entry on the same slot
    // would trip the exchange check.
    std::vector<std::atomic<int>> in_use(worker_count());
    std::atomic<int> collisions{0};
    for (int round = 0; round < 20; ++round) {
        parallel_for_workers(0, 64, [&](std::size_t worker, std::size_t lo,
                                        std::size_t hi) {
            if (in_use[worker].exchange(1) != 0) collisions++;
            volatile std::size_t sink = 0;
            for (std::size_t i = lo; i < hi; ++i) sink += i;
            in_use[worker].store(0);
        });
    }
    EXPECT_EQ(collisions.load(), 0);
}

TEST(Parallel, ConcurrentTopLevelDispatchesAreSerialized) {
    // Two application threads dispatching at once must not corrupt the
    // pool's single task slot (dispatches are serialized internally).
    std::vector<std::atomic<int>> hits(2000);
    std::thread t1([&] {
        for (int r = 0; r < 20; ++r)
            parallel_for(0, 1000, [&](std::size_t i) { hits[i]++; });
    });
    std::thread t2([&] {
        for (int r = 0; r < 20; ++r)
            parallel_for(1000, 2000, [&](std::size_t i) { hits[i]++; });
    });
    t1.join();
    t2.join();
    for (const auto& h : hits) EXPECT_EQ(h.load(), 20);
}

TEST(Parallel, LargeRangeSum) {
    const std::size_t n = 100000;
    std::vector<long> partial(n);
    parallel_for(0, n, [&](std::size_t i) { partial[i] = static_cast<long>(i); });
    const long sum = std::accumulate(partial.begin(), partial.end(), 0L);
    EXPECT_EQ(sum, static_cast<long>(n * (n - 1) / 2));
}

}  // namespace
}  // namespace xs::util
