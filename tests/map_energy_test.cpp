#include "map/energy.h"
#include "nn/vgg.h"
#include "prune/prune.h"

#include <gtest/gtest.h>

namespace xs::map {
namespace {

nn::Sequential tiny_model(std::uint64_t seed) {
    nn::VggConfig vc;
    vc.width = 0.0625;
    util::Rng rng(seed);
    return nn::build_vgg(vc, rng);
}

TEST(Energy, ReportTotalsMatchLayerSums) {
    nn::Sequential model = tiny_model(1);
    xbar::CrossbarConfig xc;
    xc.size = 32;
    const EnergyReport r =
        estimate_energy(model, prune::Method::kNone, xc, EnergyConfig{});
    double array = 0.0, periph = 0.0, area = 0.0;
    std::int64_t tiles = 0;
    for (const auto& l : r.layers) {
        array += l.array_energy_pj;
        periph += l.periph_energy_pj;
        area += l.area_um2;
        tiles += l.tiles;
    }
    EXPECT_NEAR(r.array_energy_pj, array, 1e-9);
    EXPECT_NEAR(r.periph_energy_pj, periph, 1e-9);
    EXPECT_NEAR(r.area_um2, area, 1e-9);
    EXPECT_EQ(r.tiles, tiles);
    EXPECT_GT(r.total_energy_pj(), 0.0);
}

TEST(Energy, PrunedModelUsesLessEnergyAndArea) {
    nn::Sequential model = tiny_model(2);
    prune::PruneConfig pc;
    pc.method = prune::Method::kChannelFilter;
    pc.sparsity = 0.6;
    prune::prune_at_init(model, pc);

    xbar::CrossbarConfig xc;
    xc.size = 16;
    const EnergyReport dense =
        estimate_energy(model, prune::Method::kNone, xc, EnergyConfig{});
    const EnergyReport compact =
        estimate_energy(model, prune::Method::kChannelFilter, xc, EnergyConfig{});
    EXPECT_LT(compact.tiles, dense.tiles);
    EXPECT_LT(compact.total_energy_pj(), dense.total_energy_pj());
    EXPECT_LT(compact.area_um2, dense.area_um2);
}

TEST(Energy, AreaScalesWithTileCount) {
    nn::Sequential model = tiny_model(3);
    xbar::CrossbarConfig xc;
    xc.size = 32;
    const EnergyConfig config;
    const EnergyReport r =
        estimate_energy(model, prune::Method::kNone, xc, config);
    const double per_tile =
        2.0 * 32 * 32 * config.cell_area_um2 +
        2.0 * 32 * config.periph_area_um2_per_line;
    EXPECT_NEAR(r.area_um2, per_tile * static_cast<double>(r.tiles), 1e-6);
}

TEST(Energy, LargerReadVoltageCostsQuadratically) {
    nn::Sequential model = tiny_model(4);
    xbar::CrossbarConfig xc;
    xc.size = 16;
    EnergyConfig low;
    low.v_read = 0.1;
    EnergyConfig high;
    high.v_read = 0.2;
    const double e_low =
        estimate_energy(model, prune::Method::kNone, xc, low).array_energy_pj;
    const double e_high =
        estimate_energy(model, prune::Method::kNone, xc, high).array_energy_pj;
    EXPECT_NEAR(e_high / e_low, 4.0, 1e-6);
}

TEST(Energy, XcsPackingReducesPeripheralEnergy) {
    nn::Sequential model = tiny_model(5);
    prune::PruneConfig pc;
    pc.method = prune::Method::kXbarColumn;
    pc.sparsity = 0.7;
    pc.segment_size = 16;
    prune::prune_at_init(model, pc);

    xbar::CrossbarConfig xc;
    xc.size = 16;
    const EnergyReport packed =
        estimate_energy(model, prune::Method::kXbarColumn, xc, EnergyConfig{});
    const EnergyReport dense =
        estimate_energy(model, prune::Method::kNone, xc, EnergyConfig{});
    EXPECT_LT(packed.tiles, dense.tiles);
    EXPECT_LT(packed.periph_energy_pj, dense.periph_energy_pj);
}

}  // namespace
}  // namespace xs::map
