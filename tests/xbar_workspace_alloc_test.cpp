// Pins the zero-allocation guarantee of the workspace solve pipeline: after
// a warm-up call, repeated degrade_tile / solve calls with a reused
// workspace must perform no heap allocation. The global operator new/delete
// pair below counts every allocation in this test binary.
#include "xbar/degrade.h"
#include "xbar/solver.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

namespace {

std::atomic<long> g_alloc_count{0};

}  // namespace

void* operator new(std::size_t size) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size)) return p;
    throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace xs::xbar {
namespace {

using tensor::Tensor;

Tensor random_g(std::int64_t n, std::uint64_t seed, const DeviceConfig& dev) {
    util::Rng rng(seed);
    Tensor g({n, n});
    for (std::int64_t i = 0; i < g.numel(); ++i)
        g[i] = static_cast<float>(rng.uniform(dev.g_min(), dev.g_max()));
    return g;
}

TEST(WorkspaceAllocation, SolveSteadyStateAllocatesNothing) {
    CrossbarConfig config;
    config.size = 32;
    const CircuitSolver solver(config);
    const Tensor g = random_g(32, 1, config.device);
    const std::vector<double> v(32, 0.25);

    SolveWorkspace ws;
    solver.solve(g, v.data(), ws);  // warm-up provisions all buffers

    const long before = g_alloc_count.load();
    for (int rep = 0; rep < 10; ++rep) solver.solve(g, v.data(), ws);
    EXPECT_EQ(g_alloc_count.load(), before);
}

TEST(WorkspaceAllocation, DegradeTileSteadyStateAllocatesNothing) {
    CrossbarConfig config;
    config.size = 32;
    const CircuitSolver solver(config);
    // Alternate between two tiles to mimic the pipeline's tile stream.
    const Tensor g_a = random_g(32, 2, config.device);
    const Tensor g_b = random_g(32, 3, config.device);

    DegradeWorkspace ws;
    TileDegradeResult out;
    degrade_tile(g_a, solver, ws, out);  // warm-up

    const long before = g_alloc_count.load();
    for (int rep = 0; rep < 10; ++rep) {
        degrade_tile(g_a, solver, ws, out);
        degrade_tile(g_b, solver, ws, out);
    }
    EXPECT_EQ(g_alloc_count.load(), before);
    EXPECT_TRUE(out.converged);
    EXPECT_GT(out.nf, 0.0);
}

}  // namespace
}  // namespace xs::xbar
