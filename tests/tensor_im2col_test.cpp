#include "tensor/gemm.h"
#include "tensor/im2col.h"
#include "tensor/ops.h"

#include <gtest/gtest.h>

#include <tuple>

namespace xs::tensor {
namespace {

// Direct convolution reference: y[f, oi, oj] = Σ_c Σ_ki Σ_kj w[f,c,ki,kj] ·
// x[c, oi*s - p + ki, oj*s - p + kj]
Tensor ref_conv(const Tensor& x, const Tensor& w, std::int64_t stride,
                std::int64_t pad) {
    const std::int64_t c = x.dim(0), h = x.dim(1), wd = x.dim(2);
    const std::int64_t f = w.dim(0), k = w.dim(2);
    const std::int64_t oh = conv_out_size(h, k, stride, pad);
    const std::int64_t ow = conv_out_size(wd, k, stride, pad);
    Tensor y({f, oh, ow});
    for (std::int64_t fo = 0; fo < f; ++fo)
        for (std::int64_t oi = 0; oi < oh; ++oi)
            for (std::int64_t oj = 0; oj < ow; ++oj) {
                double acc = 0.0;
                for (std::int64_t ci = 0; ci < c; ++ci)
                    for (std::int64_t ki = 0; ki < k; ++ki)
                        for (std::int64_t kj = 0; kj < k; ++kj) {
                            const std::int64_t ii = oi * stride - pad + ki;
                            const std::int64_t jj = oj * stride - pad + kj;
                            if (ii < 0 || ii >= h || jj < 0 || jj >= wd) continue;
                            acc += static_cast<double>(
                                       w[((fo * c + ci) * k + ki) * k + kj]) *
                                   x[(ci * h + ii) * wd + jj];
                        }
                y[(fo * oh + oi) * ow + oj] = static_cast<float>(acc);
            }
    return y;
}

class Im2colConfig
    : public ::testing::TestWithParam<std::tuple<int, int, int, int, int>> {};

TEST_P(Im2colConfig, GemmEqualsDirectConv) {
    const auto [channels, size, kernel, stride, pad] = GetParam();
    util::Rng rng(static_cast<std::uint64_t>(channels * 31 + size * 7 + kernel));
    Tensor x({channels, size, size});
    fill_normal(x, rng, 0.0f, 1.0f);
    const std::int64_t filters = 4;
    Tensor w({filters, channels, kernel, kernel});
    fill_normal(w, rng, 0.0f, 0.5f);

    const std::int64_t oh = conv_out_size(size, kernel, stride, pad);
    const std::int64_t ow = conv_out_size(size, kernel, stride, pad);
    const std::int64_t patch = channels * kernel * kernel;
    Tensor col({patch, oh * ow});
    im2col(x.data(), channels, size, size, kernel, kernel, stride, pad, col.data());

    // y = W_mat (filters × patch) · col
    const Tensor wmat = w.reshaped({filters, patch});
    const Tensor y = matmul(wmat, col);
    const Tensor ref = ref_conv(x, w, stride, pad).reshaped({filters, oh * ow});
    EXPECT_TRUE(allclose(y, ref, 1e-3f, 1e-3f))
        << "max diff " << max_abs_diff(y, ref);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, Im2colConfig,
    ::testing::Values(std::make_tuple(1, 5, 3, 1, 1), std::make_tuple(3, 8, 3, 1, 1),
                      std::make_tuple(2, 6, 3, 2, 1), std::make_tuple(4, 7, 1, 1, 0),
                      std::make_tuple(2, 9, 5, 1, 2), std::make_tuple(3, 8, 3, 1, 0),
                      std::make_tuple(1, 4, 2, 2, 0)));

TEST(Im2col, Col2imIsAdjoint) {
    // ⟨im2col(x), y⟩ == ⟨x, col2im(y)⟩ — the defining adjointness property
    // that makes the conv backward pass correct.
    util::Rng rng(41);
    const std::int64_t c = 3, s = 6, k = 3, stride = 1, pad = 1;
    const std::int64_t oh = conv_out_size(s, k, stride, pad);
    const std::int64_t patch = c * k * k;

    Tensor x({c, s, s});
    fill_normal(x, rng, 0.0f, 1.0f);
    Tensor y({patch, oh * oh});
    fill_normal(y, rng, 0.0f, 1.0f);

    Tensor cx({patch, oh * oh});
    im2col(x.data(), c, s, s, k, k, stride, pad, cx.data());
    Tensor ay({c, s, s});
    col2im(y.data(), c, s, s, k, k, stride, pad, ay.data());

    double lhs = 0.0, rhs = 0.0;
    for (std::int64_t i = 0; i < cx.numel(); ++i)
        lhs += static_cast<double>(cx[i]) * y[i];
    for (std::int64_t i = 0; i < x.numel(); ++i)
        rhs += static_cast<double>(x[i]) * ay[i];
    EXPECT_NEAR(lhs, rhs, 1e-3);
}

TEST(Im2col, PaddingProducesZeros) {
    const std::int64_t c = 1, s = 2, k = 3, stride = 1, pad = 1;
    Tensor x({c, s, s}, 1.0f);
    const std::int64_t oh = conv_out_size(s, k, stride, pad);
    Tensor col({c * k * k, oh * oh});
    im2col(x.data(), c, s, s, k, k, stride, pad, col.data());
    // Top-left output's top-left kernel tap reads padding (0).
    EXPECT_FLOAT_EQ(col.at(0, 0), 0.0f);
    // Centre taps read real pixels (1).
    EXPECT_FLOAT_EQ(col.at(4, 0), 1.0f);
}

TEST(Im2colPackB, MatchesPlainIm2colInPanelLayout) {
    // The packed emitter must agree with plain per-image im2col for every
    // panel lane, across image boundaries mid-panel (out_hw not a multiple
    // of 16), both input layouts, and a strided kernel.
    struct Case {
        std::int64_t n, c, s, k, stride, pad;
        bool cn;
    };
    for (const Case& cs : {Case{3, 2, 6, 3, 1, 1, false},
                           Case{3, 2, 6, 3, 1, 1, true},
                           Case{2, 3, 9, 3, 2, 1, false},
                           Case{5, 1, 4, 2, 2, 0, true}}) {
        util::Rng rng(static_cast<std::uint64_t>(cs.n * 100 + cs.s + cs.k));
        const std::int64_t hw = cs.s * cs.s;
        Tensor x({cs.n * cs.c * hw});
        fill_normal(x, rng, 0.0f, 1.0f);
        const std::int64_t s_img = cs.cn ? hw : cs.c * hw;
        const std::int64_t s_c = cs.cn ? cs.n * hw : hw;

        const std::int64_t oh = conv_out_size(cs.s, cs.k, cs.stride, cs.pad);
        const std::int64_t ow = conv_out_size(cs.s, cs.k, cs.stride, cs.pad);
        const std::int64_t out_hw = oh * ow;
        const std::int64_t patch = cs.c * cs.k * cs.k;
        const std::int64_t n_cols = cs.n * out_hw;

        std::vector<float> packed(
            static_cast<std::size_t>(packed_b_size(patch, n_cols)), -1.0f);
        im2col_pack_b(x.data(), cs.n, cs.c, cs.s, cs.s, s_img, s_c, cs.k,
                      cs.k, cs.stride, cs.pad, packed.data(), 0,
                      packed_b_panels(n_cols));

        // Reference: per-image im2col, gathered through the same strides.
        Tensor img({cs.c, cs.s, cs.s});
        Tensor col({patch, out_hw});
        const std::int64_t block_panels = kPackNc / kPackNr;
        for (std::int64_t i = 0; i < cs.n; ++i) {
            for (std::int64_t ch = 0; ch < cs.c; ++ch)
                for (std::int64_t q = 0; q < hw; ++q)
                    img[ch * hw + q] = x[i * s_img + ch * s_c + q];
            im2col(img.data(), cs.c, cs.s, cs.s, cs.k, cs.k, cs.stride,
                   cs.pad, col.data());
            for (std::int64_t p = 0; p < patch; ++p)
                for (std::int64_t pos = 0; pos < out_hw; ++pos) {
                    const std::int64_t j = i * out_hw + pos;  // global column
                    const std::int64_t g = j / kPackNr, l = j % kPackNr;
                    const std::int64_t nb = g / block_panels;
                    const std::int64_t jp = g - nb * block_panels;
                    const std::int64_t blk_panels = std::min(
                        block_panels, packed_b_panels(n_cols) -
                                          nb * block_panels);
                    const std::int64_t pc = (p / kPackKc) * kPackKc;
                    const std::int64_t kc = std::min(kPackKc, patch - pc);
                    const float got =
                        packed[static_cast<std::size_t>(
                            nb * block_panels * patch * kPackNr +
                            blk_panels * pc * kPackNr + jp * kc * kPackNr +
                            (p - pc) * kPackNr + l)];
                    EXPECT_EQ(got, col.at(p, pos))
                        << "img " << i << " p " << p << " pos " << pos;
                }
        }
    }
}

TEST(Im2col, KernelWiderThanInputPlusPad) {
    // Regression: the stride-1 fast path must clamp its edge bounds — a
    // kernel wider than width+pad pushes the raw interior span negative
    // (or past out_w), which used to memset outside the row.
    const std::int64_t h = 3, w = 3, k = 7, pad = 4;
    const std::int64_t out = conv_out_size(w, k, 1, pad);
    util::Rng rng(77);
    Tensor x({1, h, w});
    fill_normal(x, rng, 0.0f, 1.0f);
    Tensor col({k * k, out * out});
    im2col(x.data(), 1, h, w, k, k, 1, pad, col.data());
    std::int64_t row = 0;
    for (std::int64_t ki = 0; ki < k; ++ki)
        for (std::int64_t kj = 0; kj < k; ++kj, ++row)
            for (std::int64_t oi = 0; oi < out; ++oi)
                for (std::int64_t oj = 0; oj < out; ++oj) {
                    const std::int64_t ii = oi - pad + ki, jj = oj - pad + kj;
                    const float expect =
                        (ii >= 0 && ii < h && jj >= 0 && jj < w)
                            ? x[ii * w + jj]
                            : 0.0f;
                    EXPECT_EQ(col.at(row, oi * out + oj), expect)
                        << ki << "," << kj << "," << oi << "," << oj;
                }
}

TEST(Im2col, OutSizeFormula) {
    EXPECT_EQ(conv_out_size(32, 3, 1, 1), 32);
    EXPECT_EQ(conv_out_size(32, 3, 2, 1), 16);
    EXPECT_EQ(conv_out_size(5, 3, 1, 0), 3);
    EXPECT_EQ(conv_out_size(7, 1, 1, 0), 7);
}

}  // namespace
}  // namespace xs::tensor
